package vsd

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/experiments"
)

// TestCorpusMatchesFiles keeps the two copies of the example admission
// corpus in sync: examples/corpus/*.click (used by vsdverify -batch,
// vsdserve -smoke, and the store-roundtrip CI job) and
// experiments.Corpus() (used by the B1 benchmark). Equality is by
// pipeline fingerprint, so formatting and comments may differ but the
// verified artifact may not.
func TestCorpusMatchesFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "corpus", "*.click"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	builtin := experiments.Corpus()
	if len(files) != len(builtin) {
		t.Fatalf("examples/corpus has %d .click files, experiments.Corpus has %d entries", len(files), len(builtin))
	}
	byName := map[string]string{}
	for _, c := range builtin {
		p, err := click.Parse(elements.Default(), c.Src)
		if err != nil {
			t.Fatalf("builtin %s: %v", c.Name, err)
		}
		byName[c.Name] = p.Fingerprint().String()
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := click.Parse(elements.Default(), string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		name := filepath.Base(f)
		want, ok := byName[name]
		if !ok {
			t.Errorf("%s has no experiments.Corpus counterpart", name)
			continue
		}
		if got := p.Fingerprint().String(); got != want {
			t.Errorf("%s diverges from experiments.Corpus (%s vs %s)", name, got, want)
		}
	}
}
