// Package vsd's root benchmark harness regenerates every result of the
// paper's evaluation. One benchmark per experiment (see DESIGN.md §4 and
// EXPERIMENTS.md); custom metrics carry the quantities the paper
// reports (path counts, segment counts, instruction bounds) alongside
// wall time.
//
// Run everything:
//
//	go test -bench=. -benchmem -benchtime=1x
package vsd

import (
	"fmt"
	"testing"

	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/experiments"
	"vsd/internal/expr"
	"vsd/internal/packet"
	"vsd/internal/smt"
	"vsd/internal/symbex"
	"vsd/internal/verify"
	"vsd/internal/workload"
)

// BenchmarkF1ToyProgram symbolically executes the paper's Fig. 1 toy
// program: three feasible paths, one crashing.
func BenchmarkF1ToyProgram(b *testing.B) {
	prog, err := elements.ToyE2("")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng := symbex.New(smt.New(smt.Options{}), symbex.Options{})
		segs, err := eng.Run(prog, symbex.DefaultInput(1, 64))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(segs)), "segments")
		}
	}
}

// BenchmarkF2ToyPipeline verifies the Fig. 2 pipeline end to end:
// suspect found, composed crash paths discharged, crash freedom proved.
func BenchmarkF2ToyPipeline(b *testing.B) {
	src := `
		src :: InfiniteSource;
		src -> ToyE1 -> ToyE2 -> Discard;`
	for i := 0; i < b.N; i++ {
		p := experiments.MustParse(src)
		v := verify.New(verify.Options{MinLen: 1, MaxLen: 64})
		rep, err := v.CrashFreedom(p)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Verified {
			b.Fatal("Fig. 2 pipeline must verify")
		}
		if i == 0 {
			st := v.Stats()
			b.ReportMetric(float64(st.Suspects), "suspects")
			b.ReportMetric(float64(st.ComposedInfeasible), "discharged")
		}
	}
}

// BenchmarkE1CrashFreedomIPRouter proves crash freedom for pipelines
// built from the IP-router element set (paper: "any pipeline that
// consists of these elements will not crash for any input").
func BenchmarkE1CrashFreedomIPRouter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E1CrashFreedom(benchMaxLen, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Verified {
				b.Fatalf("%s did not verify", r.Pipeline)
			}
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "pipelines")
			var agg smt.Stats
			for _, r := range rows {
				agg.AssumptionSolves += r.Solver.AssumptionSolves
				agg.ClausesReused += r.Solver.ClausesReused
				agg.SessionsOpened += r.Solver.SessionsOpened
				agg.SatCalls += r.Solver.SatCalls
				agg.CNFVars += r.Solver.CNFVars
				agg.CNFClauses += r.Solver.CNFClauses
				agg.GateCacheHits += r.Solver.GateCacheHits
				agg.MinimizedLits += r.Solver.MinimizedLits
				agg.BinaryProps += r.Solver.BinaryProps
				agg.GlueSum += r.Solver.GlueSum
				agg.LearntClauses += r.Solver.LearntClauses
			}
			b.ReportMetric(float64(agg.AssumptionSolves), "assumption-solves")
			b.ReportMetric(float64(agg.ClausesReused), "reused-clauses")
			b.ReportMetric(float64(agg.SessionsOpened), "sessions")
			// CNF shrink per query and SAT-core heuristic counters (the
			// PR-2 minimization stack).
			if agg.SatCalls > 0 {
				b.ReportMetric(float64(agg.CNFVars)/float64(agg.SatCalls), "cnf-vars/query")
				b.ReportMetric(float64(agg.CNFClauses)/float64(agg.SatCalls), "cnf-clauses/query")
			}
			b.ReportMetric(float64(agg.GateCacheHits), "gate-cache-hits")
			b.ReportMetric(float64(agg.MinimizedLits), "minimized-lits")
			b.ReportMetric(float64(agg.BinaryProps), "binary-props")
			if agg.LearntClauses > 0 {
				b.ReportMetric(float64(agg.GlueSum)/float64(agg.LearntClauses), "avg-glue")
			}
		}
	}
}

// benchMaxLen bounds the symbolic packet length for the benchmarks: it
// admits IP options (IHL up to 7 words at 48, more at larger values),
// which is what drives verification cost. EXPERIMENTS.md reports larger
// sweeps.
const benchMaxLen = 48

// BenchmarkE2InstructionBound computes the per-packet instruction bound
// of the full router and the witness packet attaining it (paper: "up to
// about 3600 instructions per packet").
func BenchmarkE2InstructionBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2InstructionBound(benchMaxLen, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.MaxSteps), "bound-stmts")
			b.ReportMetric(float64(res.StaticBound), "static-max")
			b.ReportMetric(float64(res.WitnessSteps), "witness-stmts")
		}
	}
}

// BenchmarkE3ComposedVsMonolithic compares compositional verification
// against whole-pipeline symbolic execution over growing chains (paper:
// 18 minutes vs not finishing in 12 hours). The monolithic side runs
// under a path budget; the "x" suffix benchmarks report its blow-up.
func BenchmarkE3ComposedVsMonolithic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E3ComposedVsMonolithic(4, 5, 1<<14, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.ComposedTime.Microseconds()), "composed-us")
			b.ReportMetric(float64(last.MonoTime.Microseconds()), "mono-us")
			b.ReportMetric(last.Speedup, "speedup")
			b.ReportMetric(float64(last.Solver.AssumptionSolves), "assumption-solves")
			b.ReportMetric(float64(last.Solver.ClausesReused), "reused-clauses")
		}
	}
}

// BenchmarkA1PathScaling measures the §3 analysis directly: composed
// work ~ k·2^n, monolithic paths ~ 2^(k·n).
func BenchmarkA1PathScaling(b *testing.B) {
	for k := 1; k <= 4; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.A1PathScaling(3, k, 0)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					last := rows[len(rows)-1]
					b.ReportMetric(float64(last.ComposedSegs), "composed-segs")
					b.ReportMetric(float64(last.MonoPaths), "mono-paths")
				}
			}
		})
	}
}

// BenchmarkA2LoopDecomposition compares loop strategies on the IP
// options element (paper: unrolled ≈ millions of segments/months,
// decomposed ≈ minutes).
func BenchmarkA2LoopDecomposition(b *testing.B) {
	modes := []struct {
		name string
		mode symbex.LoopMode
	}{
		{"merge", symbex.LoopMerge},
		{"unroll-budgeted", symbex.LoopUnroll},
	}
	prog, err := elements.IPOptions("")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := symbex.New(smt.New(smt.Options{}), symbex.Options{
					LoopMode: m.mode,
					// Budgets so the unroll baseline terminates quickly:
					// its blow-up happens between segment emissions (in
					// feasibility checks over the multiplying paths), so
					// the statement budget is the effective bound.
					MaxSegments: 1 << 9,
					MaxSteps:    1 << 13,
				})
				segs, err := eng.Run(prog, symbex.DefaultInput(14, benchMaxLen))
				if err != nil && m.mode != symbex.LoopUnroll {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(segs)), "segments")
					b.ReportMetric(float64(eng.Stats().StepsSymbex), "sym-stmts")
				}
			}
		})
	}
}

// BenchmarkA3StatefulElements verifies the stateful pipelines (NetFlow,
// NAT, counters) through the data-structure model.
func BenchmarkA3StatefulElements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.A3StatefulElements(benchMaxLen, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			verified := 0
			for _, r := range rows {
				if r.Verified {
					verified++
				}
			}
			b.ReportMetric(float64(verified), "verified")
			b.ReportMetric(float64(len(rows)-verified), "rejected")
		}
	}
}

// BenchmarkAblationIntervals measures the interval pre-pass: the same
// query batch with and without it.
func BenchmarkAblationIntervals(b *testing.B) {
	prog, err := elements.CheckIPHeader("NOCHECKSUM")
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "intervals-on"
		if disable {
			name = "intervals-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver := smt.New(smt.Options{DisableIntervals: disable})
				eng := symbex.New(solver, symbex.Options{})
				if _, err := eng.Run(prog, symbex.DefaultInput(14, benchMaxLen)); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					st := solver.Stats()
					b.ReportMetric(float64(st.IntervalDecided), "interval-decided")
					b.ReportMetric(float64(st.SatCalls), "sat-calls")
				}
			}
		})
	}
}

// BenchmarkAblationSummaryCache measures Step-1 summary reuse: the same
// element class at several pipeline positions, with and without the
// cache ("we process each element once").
func BenchmarkAblationSummaryCache(b *testing.B) {
	src := `
		src :: InfiniteSource;
		src -> Strip(7) -> Strip(7) -> a :: CheckIPHeader(NOCHECKSUM);
		a[0] -> b :: CheckIPHeader(NOCHECKSUM); a[1] -> Discard;
		b[1] -> Discard;`
	for _, disable := range []bool{false, true} {
		name := "cache-on"
		if disable {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := experiments.MustParse(src)
				v := verify.New(verify.Options{
					MinLen: packet.MinFrame, MaxLen: benchMaxLen,
					DisableSummaryCache: disable,
				})
				if _, err := v.CrashFreedom(p); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(v.Stats().ElementsSummarized), "summarized")
				}
			}
		})
	}
}

// BenchmarkAblationIncrementalSAT replays a stitching-shaped query log —
// monotonically growing constraint prefixes with a fresh branch atom per
// step, exactly the pattern segment composition produces — through the
// one-shot Solver.Check and through an IncrementalSession. The custom
// metrics expose what the session reuses: assumption solves instead of
// CNF rebuilds, and learnt clauses carried across queries.
func BenchmarkAblationIncrementalSAT(b *testing.B) {
	queries := stitchingQueryLog(40)
	b.Run("oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := smt.New(smt.Options{DisableIntervals: true})
			for _, q := range queries {
				solver.Check(q)
			}
			if i == 0 {
				st := solver.Stats()
				b.ReportMetric(float64(st.SatCalls), "sat-calls")
				b.ReportMetric(float64(st.SatConflicts), "conflicts")
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := smt.New(smt.Options{DisableIntervals: true})
			sess := solver.NewSession()
			for _, q := range queries {
				sess.Check(q)
			}
			if i == 0 {
				st := solver.Stats()
				b.ReportMetric(float64(st.AssumptionSolves), "assumption-solves")
				b.ReportMetric(float64(st.ClausesReused), "reused-clauses")
				b.ReportMetric(float64(st.SessionsOpened), "sessions")
				b.ReportMetric(float64(st.SatConflicts), "conflicts")
			}
		}
	})
}

// stitchingQueryLog builds n queries over a shared symbolic packet: each
// extends a common prefix by one parser-style byte constraint and adds a
// query-specific branch atom (so the verdict cache cannot short-circuit
// the comparison).
func stitchingQueryLog(n int) [][]*expr.Expr {
	pkt := expr.BaseArray(symbex.PktArrayName)
	var prefix []*expr.Expr
	queries := make([][]*expr.Expr, 0, n)
	for i := 0; i < n; i++ {
		byteI := expr.Select(pkt, expr.Const(32, uint64(i)))
		prefix = append(prefix, expr.Ult(byteI, expr.Const(8, uint64(200-(i%64)))))
		sum := expr.Add(byteI, expr.Select(pkt, expr.Const(32, uint64((i+1)%16))))
		branch := expr.Eq(sum, expr.Const(8, uint64(3*i%251)))
		q := append(append([]*expr.Expr{}, prefix...), branch)
		queries = append(queries, q)
	}
	return queries
}

// BenchmarkAblationParallelism verifies the full router with a single
// walker versus one per core. On multicore hosts the gap is the point;
// on single-core hosts the two coincide (the pool degrades to a DFS).
func BenchmarkAblationParallelism(b *testing.B) {
	for _, par := range []int{1, 0} {
		name := fmt.Sprintf("parallel=%d", par)
		if par == 0 {
			name = "parallel=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := experiments.MustParse(experiments.IPRouterConfig(false))
				v := verify.New(verify.Options{
					MinLen: packet.MinFrame, MaxLen: benchMaxLen, Parallelism: par,
				})
				rep, err := v.CrashFreedom(p)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Verified {
					b.Fatal("router must verify")
				}
				if i == 0 {
					st := v.Stats()
					b.ReportMetric(float64(st.Solver.AssumptionSolves), "assumption-solves")
					b.ReportMetric(float64(st.Solver.SessionsOpened), "sessions")
				}
			}
		})
	}
}

// BenchmarkDataplaneForwarding measures the concrete runtime on the
// full router (checksum verification on), for scale context:
// verification happens offline, forwarding is the per-packet hot path.
func BenchmarkDataplaneForwarding(b *testing.B) {
	p := experiments.MustParse(experiments.IPRouterConfig(true))
	runner := dataplane.NewRunner(p)
	g := workload.New(workload.Spec{Seed: 99})
	pkts := g.Mix(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := pkts[i%len(pkts)].Clone()
		res := runner.Process(buf)
		if res.Crash != nil {
			b.Fatalf("verified router crashed: %v", res.Crash)
		}
	}
}
