// Command vsdrun executes a Click configuration over a synthetic packet
// trace and prints per-element counters — the concrete half of the
// verify-then-run story: the IR vsdverify proves properties about is
// the IR vsdrun forwards packets with.
//
// Two execution tiers share that IR's semantics: the tree-walking
// interpreter (the reference) and the compiled bytecode VM (the fast
// path, DESIGN.md §10). -compiled selects the fast tier; -compare runs
// BOTH tiers over the trace and fails loudly unless every observable —
// disposition, egress port, output bytes, metadata, element-private
// state, and exact step counts — is identical packet for packet, which
// is the differential oracle that keeps the fast tier honest.
//
// Usage:
//
//	vsdrun [flags] config.click
//
//	-n N        number of packets to generate (default 1000)
//	-seed S     trace generator seed
//	-workload   mix|ipv4|random|adversarial
//	-compiled   forward on the compiled VM tier instead of the interpreter
//	-compare    run interpreter AND compiled tiers, fail on any divergence
//	-opprofile  with -compiled: print per-opcode dispatch counts and
//	            attributed step cost after the run (adds one branch per
//	            dispatch; leave off when measuring throughput)
package main

import (
	"flag"
	"fmt"
	"os"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/workload"
)

func main() {
	n := flag.Int("n", 1000, "number of packets")
	seed := flag.Int64("seed", 1, "trace seed")
	wl := flag.String("workload", "mix", "workload: mix, ipv4, random, or adversarial")
	compiled := flag.Bool("compiled", false, "execute on the compiled bytecode VM tier")
	compare := flag.Bool("compare", false, "differential mode: run both tiers, fail on any divergence")
	opProfile := flag.Bool("opprofile", false, "with -compiled: print per-opcode dispatch counts and step cost")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vsdrun [flags] config.click")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pipeline, err := click.Parse(elements.Default(), string(src))
	if err != nil {
		fatal(err)
	}
	g := workload.New(workload.Spec{Seed: *seed})
	var pkts []*packet.Buffer
	switch *wl {
	case "mix":
		pkts = g.Mix(*n)
	case "ipv4":
		for i := 0; i < *n; i++ {
			pkts = append(pkts, g.IPv4())
		}
	case "random":
		for i := 0; i < *n; i++ {
			pkts = append(pkts, g.Random(256))
		}
	case "adversarial":
		for i := 0; i < *n; i++ {
			pkts = append(pkts, g.Adversarial())
		}
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	if *compare {
		rep, err := dataplane.Compare(pipeline, pkts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsdrun: DIVERGENCE:", err)
			os.Exit(1)
		}
		fmt.Printf("tiers agree on %d packets: %d forwarded, %d dropped, %d crashed, %d steps\n",
			rep.Packets, rep.Emitted, rep.Dropped, rep.Crashed, rep.Steps)
		fmt.Println("interpreted, compiled, and batched execution produced identical dispositions, egress, bytes, meta, state, and step counts")
		return
	}

	var sum dataplane.Summary
	var counters, opProf string
	if *compiled {
		runner, err := dataplane.NewCompiled(pipeline)
		if err != nil {
			fatal(err)
		}
		if *opProfile {
			runner.EnableOpProfile()
		}
		sum = runner.RunTrace(pkts)
		counters = runner.FormatCounters()
		opProf = runner.FormatOpProfile(20)
	} else {
		if *opProfile {
			fatal(fmt.Errorf("-opprofile requires -compiled (only the VM tier dispatches opcodes)"))
		}
		runner := dataplane.NewRunner(pipeline)
		sum = runner.RunTrace(pkts)
		counters = runner.FormatCounters()
	}
	fmt.Printf("processed %d packets: %d forwarded, %d dropped, %d crashed\n",
		sum.Packets, sum.Emitted, sum.Dropped, sum.Crashed)
	for egress, count := range sum.PerEgress {
		fmt.Printf("  egress %-20s %d\n", pipeline.EgressName(egress), count)
	}
	fmt.Println()
	fmt.Print(counters)
	if opProf != "" {
		fmt.Printf("\nopcode profile (top 20 by dispatches):\n%s", opProf)
	}
	if sum.FirstCrash != nil {
		fmt.Printf("\nFIRST CRASH at element %s: %v\n", sum.FirstCrash.CrashAt, sum.FirstCrash.Crash)
		fmt.Println("run vsdverify on this configuration to obtain a minimal witness")
	}
	if sum.Crashed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdrun:", err)
	os.Exit(1)
}
