// Command vsdrun executes a Click configuration over a synthetic packet
// trace and prints per-element counters — the concrete half of the
// verify-then-run story: the IR vsdverify proves properties about is
// the IR vsdrun forwards packets with.
//
// Usage:
//
//	vsdrun [flags] config.click
//
//	-n N        number of packets to generate (default 1000)
//	-seed S     trace generator seed
//	-workload   mix|ipv4|random|adversarial
package main

import (
	"flag"
	"fmt"
	"os"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/trace"
)

func main() {
	n := flag.Int("n", 1000, "number of packets")
	seed := flag.Int64("seed", 1, "trace seed")
	workload := flag.String("workload", "mix", "workload: mix, ipv4, random, or adversarial")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vsdrun [flags] config.click")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pipeline, err := click.Parse(elements.Default(), string(src))
	if err != nil {
		fatal(err)
	}
	g := trace.New(trace.Spec{Seed: *seed})
	var pkts []*packet.Buffer
	switch *workload {
	case "mix":
		pkts = g.Mix(*n)
	case "ipv4":
		for i := 0; i < *n; i++ {
			pkts = append(pkts, g.IPv4())
		}
	case "random":
		for i := 0; i < *n; i++ {
			pkts = append(pkts, g.Random(256))
		}
	case "adversarial":
		for i := 0; i < *n; i++ {
			pkts = append(pkts, g.Adversarial())
		}
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	runner := dataplane.NewRunner(pipeline)
	sum := runner.RunTrace(pkts)
	fmt.Printf("processed %d packets: %d forwarded, %d dropped, %d crashed\n",
		sum.Packets, sum.Emitted, sum.Dropped, sum.Crashed)
	for egress, count := range sum.PerEgress {
		fmt.Printf("  egress %-20s %d\n", pipeline.EgressName(egress), count)
	}
	fmt.Println()
	fmt.Print(runner.FormatCounters())
	if sum.FirstCrash != nil {
		fmt.Printf("\nFIRST CRASH at element %s: %v\n", sum.FirstCrash.CrashAt, sum.FirstCrash.Crash)
		fmt.Println("run vsdverify on this configuration to obtain a minimal witness")
	}
	if sum.Crashed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdrun:", err)
	os.Exit(1)
}
