// Command vsdbench regenerates the paper's evaluation as printed tables
// (see EXPERIMENTS.md for the mapping to the paper's claims).
//
// Usage:
//
//	vsdbench -experiment all|e1|e2|e3|a1|a2|a3 [-maxlen N]
package main

import (
	"flag"
	"fmt"
	"os"

	"vsd/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: e1, e2, e3, a1, a2, a3, or all")
	maxLen := flag.Uint64("maxlen", 48, "maximum packet length for the symbolic packet")
	flag.Parse()

	run := func(name string) bool { return *experiment == "all" || *experiment == name }

	if run("e1") {
		fmt.Println("== E1: crash freedom of IP-router pipelines ==")
		fmt.Println("paper: \"any pipeline that consists of these elements will not crash for any input\"")
		rows, err := experiments.E1CrashFreedom(*maxLen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-22s %-9s %9s %9s %11s %12s\n",
			"pipeline", "verdict", "suspects", "composed", "infeasible", "time")
		for _, r := range rows {
			verdict := "VERIFIED"
			if !r.Verified {
				verdict = "FAILED"
			}
			fmt.Printf("%-22s %-9s %9d %9d %11d %12v\n",
				r.Pipeline, verdict, r.Suspects, r.Composed, r.Infeasib, r.Duration.Round(1e6))
		}
		fmt.Println()
	}

	if run("e2") {
		fmt.Println("== E2: per-packet instruction bound of the full router ==")
		fmt.Println("paper: \"executes up to about 3600 instructions per packet, and we also identified the packet\"")
		res, err := experiments.E2InstructionBound(*maxLen)
		if err != nil {
			fatal(err)
		}
		kind := "upper bound (loop merging active)"
		if res.Exact {
			kind = "exact maximum"
		}
		fmt.Printf("bound: %d IR statements per packet (%s)\n", res.MaxSteps, kind)
		fmt.Printf("static worst case of the inlined pipeline: %d\n", res.StaticBound)
		fmt.Printf("witness packet: %d bytes, concretely executes %d statements\n", res.WitnessLen, res.WitnessSteps)
		fmt.Printf("computed in %v\n\n", res.Duration.Round(1e6))
	}

	if run("e3") {
		fmt.Println("== E3: compositional vs monolithic verification ==")
		fmt.Println("paper: \"verification time was about 18 minutes; [monolithic] did not complete within 12 hours\"")
		rows, err := experiments.E3ComposedVsMonolithic(4, 6, 1<<14)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%3s %14s %14s %12s %10s\n", "k", "composed", "monolithic", "mono-paths", "speedup")
		for _, r := range rows {
			done := ""
			if !r.MonoDone {
				done = " (budget!)"
			}
			fmt.Printf("%3d %14v %14v %12d %9.1fx%s\n",
				r.Elements, r.ComposedTime.Round(1e5), r.MonoTime.Round(1e5), r.MonoPaths, r.Speedup, done)
		}
		fmt.Println()
	}

	if run("a1") {
		fmt.Println("== A1: path scaling (paper §3: k·2^n composed vs 2^(k·n) monolithic) ==")
		rows, err := experiments.A1PathScaling(3, 5)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%3s %6s %15s %15s %12s\n", "k", "n", "composed-segs", "composed-paths", "mono-paths")
		for _, r := range rows {
			fmt.Printf("%3d %6d %15d %15d %12d\n",
				r.Elements, r.Branches, r.ComposedSegs, r.ComposedPaths, r.MonoPaths)
		}
		fmt.Println()
	}

	if run("a2") {
		fmt.Println("== A2: loop decomposition on the IP options element ==")
		fmt.Println("paper: unrolled \"millions of segments ... months\"; decomposed: minutes")
		rows, err := experiments.A2LoopDecomposition([]uint64{40, *maxLen}, 1<<9)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %8s %10s %12s %10s %12s %s\n",
			"mode", "maxlen", "segments", "sym-stmts", "checks", "time", "")
		for _, r := range rows {
			note := ""
			if r.Aborted {
				note = "ABORTED (budget)"
			}
			fmt.Printf("%-8s %8d %10d %12d %10d %12v %s\n",
				r.Mode, r.MaxLen, r.Segments, r.Steps, r.Checks, r.Duration.Round(1e6), note)
		}
		fmt.Println()
	}

	if run("a3") {
		fmt.Println("== A3: stateful elements through the data-structure model ==")
		rows, err := experiments.A3StatefulElements(*maxLen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-20s %-9s %11s %12s\n", "pipeline", "verdict", "discharged", "time")
		for _, r := range rows {
			verdict := "VERIFIED"
			if !r.Verified {
				verdict = "REJECTED"
			}
			fmt.Printf("%-20s %-9s %11d %12v\n", r.Pipeline, verdict, r.Discharged, r.Duration.Round(1e6))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdbench:", err)
	os.Exit(1)
}
