// Command vsdbench regenerates the paper's evaluation as printed tables
// (see EXPERIMENTS.md for the mapping to the paper's claims).
//
// Usage:
//
//	vsdbench -experiment all|e1|e2|e3|a1|a2|a3|f1|b1 [-maxlen N] [-parallel N] [-json]
//	         [-store DIR]
//
// With -json the results are emitted as a JSON array of records — one
// per benchmark row — in the BENCH_*.json shape: benchmark name, wall
// time, and a flat map of custom metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vsd/internal/experiments"
	"vsd/internal/smt"
)

// benchRecord is one BENCH_*.json-compatible result row.
type benchRecord struct {
	Name       string             `json:"name"`
	WallTimeNS int64              `json:"wall_time_ns"`
	Metrics    map[string]float64 `json:"metrics"`
}

func solverMetrics(m map[string]float64, st smt.Stats) {
	m["sat-calls"] = float64(st.SatCalls)
	m["sat-conflicts"] = float64(st.SatConflicts)
	m["cache-hits"] = float64(st.CacheHits)
	m["interval-decided"] = float64(st.IntervalDecided)
	m["sessions-opened"] = float64(st.SessionsOpened)
	m["assumption-solves"] = float64(st.AssumptionSolves)
	m["reused-clauses"] = float64(st.ClausesReused)
	// CNF-minimization counters: emitted formula size, structural gate
	// cache, equality substitution (per-query averages are size/sat-calls).
	m["cnf-vars"] = float64(st.CNFVars)
	m["cnf-clauses"] = float64(st.CNFClauses)
	m["gate-cache-hits"] = float64(st.GateCacheHits)
	m["eq-atoms-rewritten"] = float64(st.EqAtomsRewritten)
	m["eq-decided-unsat"] = float64(st.EqDecidedUnsat)
	// SAT-core heuristics: learnt-clause minimization, glue distribution,
	// binary-clause propagation, Luby restarts.
	m["minimized-lits"] = float64(st.MinimizedLits)
	m["learnt-clauses"] = float64(st.LearntClauses)
	m["learnt-lits"] = float64(st.LearntLits)
	m["glue-sum"] = float64(st.GlueSum)
	m["low-glue"] = float64(st.LowGlue)
	m["binary-props"] = float64(st.BinaryProps)
	m["propagations"] = float64(st.Propagations)
	m["assum-levels"] = float64(st.AssumLevels)
	m["decisions"] = float64(st.Decisions)
	m["restarts"] = float64(st.Restarts)
}

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: e1, e2, e3, a1, a2, a3, f1, b1, or all")
	maxLen := flag.Uint64("maxlen", 48, "maximum packet length for the symbolic packet")
	parallel := flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "summary store directory for b1 (empty = fresh temp dir)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array of benchmark records")
	flag.Parse()

	switch *experiment {
	case "all", "e1", "e2", "e3", "a1", "a2", "a3", "f1", "b1":
	default:
		fatal(fmt.Errorf("unknown experiment %q (want e1, e2, e3, a1, a2, a3, f1, b1, or all)", *experiment))
	}
	run := func(name string) bool { return *experiment == "all" || *experiment == name }
	records := []benchRecord{}
	quiet := *jsonOut
	printf := func(format string, args ...any) {
		if !quiet {
			fmt.Printf(format, args...)
		}
	}

	if run("e1") {
		printf("== E1: crash freedom of IP-router pipelines ==\n")
		printf("paper: \"any pipeline that consists of these elements will not crash for any input\"\n")
		rows, err := experiments.E1CrashFreedom(*maxLen, *parallel)
		if err != nil {
			fatal(err)
		}
		printf("%-22s %-9s %9s %9s %11s %13s %13s %12s\n",
			"pipeline", "verdict", "suspects", "composed", "infeasible", "assume-solve", "reused-cls", "time")
		for _, r := range rows {
			verdict := "VERIFIED"
			if !r.Verified {
				verdict = "FAILED"
			}
			printf("%-22s %-9s %9d %9d %11d %13d %13d %12v\n",
				r.Pipeline, verdict, r.Suspects, r.Composed, r.Infeasib,
				r.Solver.AssumptionSolves, r.Solver.ClausesReused, r.Duration.Round(1e6))
			m := map[string]float64{
				"suspects":   float64(r.Suspects),
				"composed":   float64(r.Composed),
				"infeasible": float64(r.Infeasib),
				"verified":   b2f(r.Verified),
			}
			solverMetrics(m, r.Solver)
			records = append(records, benchRecord{
				Name: "e1/" + r.Pipeline, WallTimeNS: int64(r.Duration), Metrics: m,
			})
		}
		printf("\n")
	}

	if run("e2") {
		printf("== E2: per-packet instruction bound of the full router ==\n")
		printf("paper: \"executes up to about 3600 instructions per packet, and we also identified the packet\"\n")
		res, err := experiments.E2InstructionBound(*maxLen, *parallel)
		if err != nil {
			fatal(err)
		}
		kind := "upper bound (loop merging active)"
		if res.Exact {
			kind = "exact maximum"
		}
		printf("bound: %d IR statements per packet (%s)\n", res.MaxSteps, kind)
		printf("static worst case of the inlined pipeline: %d\n", res.StaticBound)
		printf("witness packet: %d bytes, concretely executes %d statements\n", res.WitnessLen, res.WitnessSteps)
		printf("computed in %v\n\n", res.Duration.Round(1e6))
		records = append(records, benchRecord{
			Name: "e2/instruction-bound", WallTimeNS: int64(res.Duration),
			Metrics: map[string]float64{
				"bound-stmts":   float64(res.MaxSteps),
				"static-max":    float64(res.StaticBound),
				"witness-stmts": float64(res.WitnessSteps),
				"exact":         b2f(res.Exact),
			},
		})
	}

	if run("e3") {
		printf("== E3: compositional vs monolithic verification ==\n")
		printf("paper: \"verification time was about 18 minutes; [monolithic] did not complete within 12 hours\"\n")
		rows, err := experiments.E3ComposedVsMonolithic(4, 6, 1<<14, *parallel)
		if err != nil {
			fatal(err)
		}
		printf("%3s %14s %14s %12s %10s\n", "k", "composed", "monolithic", "mono-paths", "speedup")
		for _, r := range rows {
			done := ""
			if !r.MonoDone {
				done = " (budget!)"
			}
			printf("%3d %14v %14v %12d %9.1fx%s\n",
				r.Elements, r.ComposedTime.Round(1e5), r.MonoTime.Round(1e5), r.MonoPaths, r.Speedup, done)
			m := map[string]float64{
				"elements":   float64(r.Elements),
				"mono-ns":    float64(r.MonoTime),
				"mono-paths": float64(r.MonoPaths),
				"speedup":    r.Speedup,
			}
			solverMetrics(m, r.Solver)
			records = append(records, benchRecord{
				Name: fmt.Sprintf("e3/k=%d", r.Elements), WallTimeNS: int64(r.ComposedTime), Metrics: m,
			})
		}
		printf("\n")
	}

	if run("a1") {
		printf("== A1: path scaling (paper §3: k·2^n composed vs 2^(k·n) monolithic) ==\n")
		start := time.Now()
		rows, err := experiments.A1PathScaling(3, 5, *parallel)
		if err != nil {
			fatal(err)
		}
		dur := time.Since(start)
		printf("%3s %6s %15s %15s %12s\n", "k", "n", "composed-segs", "composed-paths", "mono-paths")
		for _, r := range rows {
			printf("%3d %6d %15d %15d %12d\n",
				r.Elements, r.Branches, r.ComposedSegs, r.ComposedPaths, r.MonoPaths)
		}
		printf("\n")
		last := rows[len(rows)-1]
		records = append(records, benchRecord{
			Name: "a1/path-scaling", WallTimeNS: int64(dur),
			Metrics: map[string]float64{
				"composed-segs":  float64(last.ComposedSegs),
				"composed-paths": float64(last.ComposedPaths),
				"mono-paths":     float64(last.MonoPaths),
			},
		})
	}

	if run("a2") {
		printf("== A2: loop decomposition on the IP options element ==\n")
		printf("paper: unrolled \"millions of segments ... months\"; decomposed: minutes\n")
		rows, err := experiments.A2LoopDecomposition([]uint64{40, *maxLen}, 1<<9)
		if err != nil {
			fatal(err)
		}
		printf("%-8s %8s %10s %12s %10s %12s %s\n",
			"mode", "maxlen", "segments", "sym-stmts", "checks", "time", "")
		for _, r := range rows {
			note := ""
			if r.Aborted {
				note = "ABORTED (budget)"
			}
			printf("%-8s %8d %10d %12d %10d %12v %s\n",
				r.Mode, r.MaxLen, r.Segments, r.Steps, r.Checks, r.Duration.Round(1e6), note)
			records = append(records, benchRecord{
				Name: fmt.Sprintf("a2/%s/maxlen=%d", r.Mode, r.MaxLen), WallTimeNS: int64(r.Duration),
				Metrics: map[string]float64{
					"segments":  float64(r.Segments),
					"sym-stmts": float64(r.Steps),
					"checks":    float64(r.Checks),
					"aborted":   b2f(r.Aborted),
				},
			})
		}
		printf("\n")
	}

	if run("a3") {
		printf("== A3: stateful elements through the data-structure model ==\n")
		rows, err := experiments.A3StatefulElements(*maxLen, *parallel)
		if err != nil {
			fatal(err)
		}
		printf("%-20s %-9s %11s %12s\n", "pipeline", "verdict", "discharged", "time")
		for _, r := range rows {
			verdict := "VERIFIED"
			if !r.Verified {
				verdict = "REJECTED"
			}
			printf("%-20s %-9s %11d %12v\n", r.Pipeline, verdict, r.Discharged, r.Duration.Round(1e6))
			records = append(records, benchRecord{
				Name: "a3/" + r.Pipeline, WallTimeNS: int64(r.Duration),
				Metrics: map[string]float64{
					"verified":   b2f(r.Verified),
					"discharged": float64(r.Discharged),
				},
			})
		}
		printf("\n")
	}

	if run("f1") {
		printf("== F1: functional property specs (DESIGN.md §6) ==\n")
		printf("paper: \"bounded execution or filtering correctness\" — input/output contracts per spec family\n")
		rows, err := experiments.F1FunctionalSpecs(*maxLen, *parallel)
		if err != nil {
			fatal(err)
		}
		printf("%-22s %-14s %-9s %12s %8s %8s %10s %12s\n",
			"spec", "pipeline", "verdict", "obligations", "proved", "trivial", "witnesses", "time")
		for _, r := range rows {
			verdict := "VERIFIED"
			if !r.Verified {
				verdict = "FAILED"
			}
			// Rows always match their designed verdict — F1FunctionalSpecs
			// errors out otherwise — so a FAILED row is a demonstration.
			note := ""
			if !r.Verified {
				note = " (as designed)"
			}
			printf("%-22s %-14s %-9s %12d %8d %8d %10d %12v%s\n",
				r.Spec, r.Pipeline, verdict, r.Obligations, r.Proved, r.Trivial,
				r.Witnesses, r.Duration.Round(1e6), note)
			m := map[string]float64{
				"verified":    b2f(r.Verified),
				"expected":    b2f(r.Expected),
				"obligations": float64(r.Obligations),
				"proved":      float64(r.Proved),
				"trivial":     float64(r.Trivial),
				"witnesses":   float64(r.Witnesses),
			}
			solverMetrics(m, r.Solver)
			records = append(records, benchRecord{
				Name: fmt.Sprintf("f1/%s/%s", r.Spec, r.Pipeline), WallTimeNS: int64(r.Duration), Metrics: m,
			})
		}
		printf("\n")
	}

	if run("b1") {
		printf("== B1: batch admission against the persistent summary store (DESIGN.md §7) ==\n")
		printf("the example corpus verified twice against one store: warm must do zero Step-1 engine runs\n")
		rows, err := experiments.B1BatchStore(*maxLen, *parallel, *storeDir)
		if err != nil {
			fatal(err)
		}
		printf("%-6s %10s %10s %12s %12s %11s %11s %12s\n",
			"run", "pipelines", "certified", "engine-runs", "store-hits", "cache-hits", "artifacts", "time")
		var coldNS int64
		for _, r := range rows {
			printf("%-6s %10d %10d %12d %12d %11d %11d %12v\n",
				r.Run, r.Pipelines, r.Certified, r.EngineRuns, r.StoreHits,
				r.CacheHits, r.StoreFiles, r.Duration.Round(1e6))
			m := map[string]float64{
				"pipelines":    float64(r.Pipelines),
				"certified":    float64(r.Certified),
				"engine-runs":  float64(r.EngineRuns),
				"store-hits":   float64(r.StoreHits),
				"store-misses": float64(r.StoreMisses),
				"cache-hits":   float64(r.CacheHits),
				"artifacts":    float64(r.StoreFiles),
			}
			if total := r.StoreHits + r.StoreMisses; total > 0 {
				m["store-hit-rate"] = float64(r.StoreHits) / float64(total)
			}
			if r.Run == "cold" {
				coldNS = int64(r.Duration)
			} else if r.Duration > 0 {
				m["warm-speedup"] = float64(coldNS) / float64(r.Duration)
			}
			solverMetrics(m, r.Solver)
			records = append(records, benchRecord{
				Name: "b1/" + r.Run, WallTimeNS: int64(r.Duration), Metrics: m,
			})
		}
		if len(rows) == 2 && rows[1].Duration > 0 {
			printf("warm speedup: %.1fx (store hit rate %d/%d)\n",
				float64(rows[0].Duration)/float64(rows[1].Duration),
				rows[1].StoreHits, rows[1].StoreHits+rows[1].StoreMisses)
		}
		printf("\n")
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fatal(err)
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdbench:", err)
	os.Exit(1)
}
