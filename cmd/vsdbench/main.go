// Command vsdbench regenerates the paper's evaluation as printed tables
// (see EXPERIMENTS.md for the mapping to the paper's claims).
//
// Usage:
//
//	vsdbench -experiment all|list|NAME [-maxlen N] [-parallel N] [-json]
//	         [-store DIR] [-trace FILE]
//
// -trace writes a Chrome trace-event JSON of the whole experiment run
// (verification phases, per-path walks, per-obligation SAT solves);
// open it in https://ui.perfetto.dev. Records gain solve-time
// distribution fields (solve-ns-min/p50/p99/max) where the verifier
// runs, so BENCH diffs catch tail regressions, not just mean shifts.
//
// The experiment catalogue lives in ONE place — the experiments table
// below — so `vsdbench -experiment list` always prints the current
// set with a one-line description of each; the flag help and the name
// validation derive from the same table.
//
// With -json the results are emitted as a JSON array of records — one
// per benchmark row — in the BENCH_*.json shape: benchmark name, wall
// time, and a flat map of custom metrics. Every record also carries the
// measuring host's GOMAXPROCS, GOARCH, and Go version, so BENCH files
// from different hosts compare honestly (the tput cells especially are
// meaningless without them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"vsd/internal/experiments"
	"vsd/internal/smt"
	"vsd/internal/telemetry"
)

// benchRecord is one BENCH_*.json-compatible result row. The three
// environment fields are stamped centrally on every record (see
// main's record closure): cross-host numbers only compare when the
// host that produced them is part of the record.
type benchRecord struct {
	Name       string             `json:"name"`
	WallTimeNS int64              `json:"wall_time_ns"`
	GoVersion  string             `json:"go_version"`
	GoArch     string             `json:"goarch"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchCtx carries the flag values and output sinks one experiment run
// needs: printf is silenced under -json, record collects BENCH rows,
// keep is the -bench cell filter over full cell names ("e1/full-router").
type benchCtx struct {
	maxLen   uint64
	parallel int
	storeDir string
	printf   func(format string, args ...any)
	record   func(benchRecord)
	keep     func(cell string) bool
}

// keepCell curries the -bench filter for one experiment's cells: the
// experiments package sees bare cell names, the regexp sees the full
// "<experiment>/<cell>" benchmark name. Returns nil (run everything)
// when no filter is set, so experiments skip the indirection.
func (ctx *benchCtx) keepCell(exp string) func(string) bool {
	if ctx.keep == nil {
		return nil
	}
	return func(cell string) bool { return ctx.keep(exp + "/" + cell) }
}

// experiment is one registry row: adding an experiment here is the
// whole registration — usage text, -experiment validation, `list`
// output, and the `all` run order all read this table.
type experiment struct {
	name  string
	title string
	run   func(*benchCtx) error
}

var experimentTable = []experiment{
	{"e1", "crash freedom of IP-router pipelines", runE1},
	{"e2", "per-packet instruction bound of the full router", runE2},
	{"e3", "compositional vs monolithic verification", runE3},
	{"a1", "path scaling (paper §3: k·2^n composed vs 2^(k·n) monolithic)", runA1},
	{"a2", "loop decomposition on the IP options element", runA2},
	{"a3", "stateful elements through the data-structure model", runA3},
	{"f1", "functional property specs (DESIGN.md §6)", runF1},
	{"b1", "batch admission against the persistent summary store (DESIGN.md §7)", runB1},
	{"s1", "multi-packet state verification: k-induction vs bounded unrolling (DESIGN.md §8)", runS1},
	{"r1", "degradation ladder under injected disk and solver faults (DESIGN.md §9)", runR1},
	{"tput", "forwarding throughput: interpreter vs compiled VM vs batched, plus the differential fuzz gate (DESIGN.md §10)", runTput},
}

func experimentNames() []string {
	names := make([]string, len(experimentTable))
	for i, e := range experimentTable {
		names[i] = e.name
	}
	return names
}

func solverMetrics(m map[string]float64, st smt.Stats) {
	m["sat-calls"] = float64(st.SatCalls)
	m["sat-conflicts"] = float64(st.SatConflicts)
	m["cache-hits"] = float64(st.CacheHits)
	m["interval-decided"] = float64(st.IntervalDecided)
	m["sessions-opened"] = float64(st.SessionsOpened)
	m["assumption-solves"] = float64(st.AssumptionSolves)
	m["reused-clauses"] = float64(st.ClausesReused)
	// CNF-minimization counters: emitted formula size, structural gate
	// cache, equality substitution (per-query averages are size/sat-calls).
	m["cnf-vars"] = float64(st.CNFVars)
	m["cnf-clauses"] = float64(st.CNFClauses)
	m["gate-cache-hits"] = float64(st.GateCacheHits)
	m["eq-atoms-rewritten"] = float64(st.EqAtomsRewritten)
	m["eq-decided-unsat"] = float64(st.EqDecidedUnsat)
	// SAT-core heuristics: learnt-clause minimization, glue distribution,
	// binary-clause propagation, Luby restarts.
	m["minimized-lits"] = float64(st.MinimizedLits)
	m["learnt-clauses"] = float64(st.LearntClauses)
	m["learnt-lits"] = float64(st.LearntLits)
	m["glue-sum"] = float64(st.GlueSum)
	m["low-glue"] = float64(st.LowGlue)
	m["binary-props"] = float64(st.BinaryProps)
	m["propagations"] = float64(st.Propagations)
	m["assum-levels"] = float64(st.AssumLevels)
	m["decisions"] = float64(st.Decisions)
	m["restarts"] = float64(st.Restarts)
	// PR-6 performance layer: CNF preprocessing, the portfolio race, and
	// glue-filtered learnt-clause sharing.
	m["preprocess-runs"] = float64(st.PreprocessRuns)
	m["vars-eliminated"] = float64(st.VarsEliminated)
	m["clauses-subsumed"] = float64(st.ClausesSubsumed)
	m["lits-strengthened"] = float64(st.LitsStrengthened)
	m["clauses-published"] = float64(st.ClausesPublished)
	m["clauses-imported"] = float64(st.ClausesImported)
	m["portfolio-races"] = float64(st.PortfolioRaces)
	m["portfolio-wins"] = float64(st.PortfolioWins)
	m["unknowns"] = float64(st.Unknowns)
}

// solveTimeMetrics folds a per-query solve-time distribution into the
// record: min/p50/p99/max expose tail regressions that a single
// wall-time number averages away (BENCH_10+ diffs watch these).
func solveTimeMetrics(m map[string]float64, h telemetry.HistSummary) {
	if h.Count == 0 {
		return
	}
	m["solve-count"] = float64(h.Count)
	m["solve-ns-min"] = float64(h.Min)
	m["solve-ns-p50"] = float64(h.P50)
	m["solve-ns-p99"] = float64(h.P99)
	m["solve-ns-max"] = float64(h.Max)
}

func main() {
	expHelp := fmt.Sprintf("which experiment to run: %s, all, or list", strings.Join(experimentNames(), ", "))
	experimentFlag := flag.String("experiment", "all", expHelp)
	maxLen := flag.Uint64("maxlen", 48, "maximum packet length for the symbolic packet")
	parallel := flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "summary store directory for b1 (empty = fresh temp dir)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array of benchmark records")
	benchFlag := flag.String("bench", "", "regexp over benchmark cell names (e.g. e1/full-router); only matching cells run")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the experiment run to this file (open in Perfetto)")
	flag.Parse()

	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.New(telemetry.Opts{})
		experiments.SetTelemetry(tracer, nil)
	}

	var benchRE *regexp.Regexp
	if *benchFlag != "" {
		re, err := regexp.Compile(*benchFlag)
		if err != nil {
			fatal(fmt.Errorf("bad -bench regexp: %w", err))
		}
		benchRE = re
	}

	if *experimentFlag == "list" {
		for _, e := range experimentTable {
			fmt.Printf("%-4s %s\n", e.name, e.title)
		}
		return
	}
	var selected []experiment
	for _, e := range experimentTable {
		if *experimentFlag == "all" || *experimentFlag == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("unknown experiment %q (want %s, all, or list)",
			*experimentFlag, strings.Join(experimentNames(), ", ")))
	}

	records := []benchRecord{}
	quiet := *jsonOut
	ctx := &benchCtx{
		maxLen:   *maxLen,
		parallel: *parallel,
		storeDir: *storeDir,
		printf: func(format string, args ...any) {
			if !quiet {
				fmt.Printf(format, args...)
			}
		},
		record: func(r benchRecord) {
			// Defense in depth for experiments without cell plumbing: a
			// filtered-out cell that ran anyway still stays out of the JSON.
			if benchRE == nil || benchRE.MatchString(r.Name) {
				r.GoVersion = runtime.Version()
				r.GoArch = runtime.GOARCH
				r.GoMaxProcs = runtime.GOMAXPROCS(0)
				records = append(records, r)
			}
		},
	}
	if benchRE != nil {
		ctx.keep = benchRE.MatchString
	}
	for _, e := range selected {
		ctx.printf("== %s: %s ==\n", strings.ToUpper(e.name), e.title)
		if err := e.run(ctx); err != nil {
			fatal(err)
		}
		ctx.printf("\n")
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fatal(err)
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
}

func runE1(ctx *benchCtx) error {
	ctx.printf("paper: \"any pipeline that consists of these elements will not crash for any input\"\n")
	rows, err := experiments.E1CrashFreedom(ctx.maxLen, ctx.parallel, ctx.keepCell("e1"))
	if err != nil {
		return err
	}
	ctx.printf("%-22s %-9s %9s %9s %11s %13s %13s %12s\n",
		"pipeline", "verdict", "suspects", "composed", "infeasible", "assume-solve", "reused-cls", "time")
	for _, r := range rows {
		verdict := "VERIFIED"
		if !r.Verified {
			verdict = "FAILED"
		}
		ctx.printf("%-22s %-9s %9d %9d %11d %13d %13d %12v\n",
			r.Pipeline, verdict, r.Suspects, r.Composed, r.Infeasib,
			r.Solver.AssumptionSolves, r.Solver.ClausesReused, r.Duration.Round(1e6))
		m := map[string]float64{
			"suspects":   float64(r.Suspects),
			"composed":   float64(r.Composed),
			"infeasible": float64(r.Infeasib),
			"verified":   b2f(r.Verified),
		}
		solverMetrics(m, r.Solver)
		solveTimeMetrics(m, r.SolveTimes)
		ctx.record(benchRecord{
			Name: "e1/" + r.Pipeline, WallTimeNS: int64(r.Duration), Metrics: m,
		})
	}
	return nil
}

func runE2(ctx *benchCtx) error {
	ctx.printf("paper: \"executes up to about 3600 instructions per packet, and we also identified the packet\"\n")
	res, err := experiments.E2InstructionBound(ctx.maxLen, ctx.parallel)
	if err != nil {
		return err
	}
	kind := "upper bound (loop merging active)"
	if res.Exact {
		kind = "exact maximum"
	}
	ctx.printf("bound: %d IR statements per packet (%s)\n", res.MaxSteps, kind)
	ctx.printf("static worst case of the inlined pipeline: %d\n", res.StaticBound)
	ctx.printf("witness packet: %d bytes, concretely executes %d statements\n", res.WitnessLen, res.WitnessSteps)
	ctx.printf("computed in %v\n", res.Duration.Round(1e6))
	ctx.record(benchRecord{
		Name: "e2/instruction-bound", WallTimeNS: int64(res.Duration),
		Metrics: map[string]float64{
			"bound-stmts":   float64(res.MaxSteps),
			"static-max":    float64(res.StaticBound),
			"witness-stmts": float64(res.WitnessSteps),
			"exact":         b2f(res.Exact),
		},
	})
	return nil
}

func runE3(ctx *benchCtx) error {
	ctx.printf("paper: \"verification time was about 18 minutes; [monolithic] did not complete within 12 hours\"\n")
	rows, err := experiments.E3ComposedVsMonolithic(4, 6, 1<<14, ctx.parallel)
	if err != nil {
		return err
	}
	ctx.printf("%3s %14s %14s %12s %10s\n", "k", "composed", "monolithic", "mono-paths", "speedup")
	for _, r := range rows {
		done := ""
		if !r.MonoDone {
			done = " (budget!)"
		}
		ctx.printf("%3d %14v %14v %12d %9.1fx%s\n",
			r.Elements, r.ComposedTime.Round(1e5), r.MonoTime.Round(1e5), r.MonoPaths, r.Speedup, done)
		m := map[string]float64{
			"elements":   float64(r.Elements),
			"mono-ns":    float64(r.MonoTime),
			"mono-paths": float64(r.MonoPaths),
			"speedup":    r.Speedup,
		}
		solverMetrics(m, r.Solver)
		ctx.record(benchRecord{
			Name: fmt.Sprintf("e3/k=%d", r.Elements), WallTimeNS: int64(r.ComposedTime), Metrics: m,
		})
	}
	return nil
}

func runA1(ctx *benchCtx) error {
	start := time.Now()
	rows, err := experiments.A1PathScaling(3, 5, ctx.parallel)
	if err != nil {
		return err
	}
	dur := time.Since(start)
	ctx.printf("%3s %6s %15s %15s %12s\n", "k", "n", "composed-segs", "composed-paths", "mono-paths")
	for _, r := range rows {
		ctx.printf("%3d %6d %15d %15d %12d\n",
			r.Elements, r.Branches, r.ComposedSegs, r.ComposedPaths, r.MonoPaths)
	}
	last := rows[len(rows)-1]
	ctx.record(benchRecord{
		Name: "a1/path-scaling", WallTimeNS: int64(dur),
		Metrics: map[string]float64{
			"composed-segs":  float64(last.ComposedSegs),
			"composed-paths": float64(last.ComposedPaths),
			"mono-paths":     float64(last.MonoPaths),
		},
	})
	return nil
}

func runA2(ctx *benchCtx) error {
	ctx.printf("paper: unrolled \"millions of segments ... months\"; decomposed: minutes\n")
	rows, err := experiments.A2LoopDecomposition([]uint64{40, ctx.maxLen}, 1<<9, ctx.keepCell("a2"))
	if err != nil {
		return err
	}
	ctx.printf("%-8s %8s %10s %12s %10s %12s %s\n",
		"mode", "maxlen", "segments", "sym-stmts", "checks", "time", "")
	for _, r := range rows {
		note := ""
		if r.Aborted {
			note = "ABORTED (budget)"
		}
		ctx.printf("%-8s %8d %10d %12d %10d %12v %s\n",
			r.Mode, r.MaxLen, r.Segments, r.Steps, r.Checks, r.Duration.Round(1e6), note)
		ctx.record(benchRecord{
			Name: fmt.Sprintf("a2/%s/maxlen=%d", r.Mode, r.MaxLen), WallTimeNS: int64(r.Duration),
			Metrics: map[string]float64{
				"segments":  float64(r.Segments),
				"sym-stmts": float64(r.Steps),
				"checks":    float64(r.Checks),
				"aborted":   b2f(r.Aborted),
			},
		})
	}
	return nil
}

func runA3(ctx *benchCtx) error {
	rows, err := experiments.A3StatefulElements(ctx.maxLen, ctx.parallel)
	if err != nil {
		return err
	}
	ctx.printf("%-20s %-9s %11s %12s\n", "pipeline", "verdict", "discharged", "time")
	for _, r := range rows {
		verdict := "VERIFIED"
		if !r.Verified {
			verdict = "REJECTED"
		}
		ctx.printf("%-20s %-9s %11d %12v\n", r.Pipeline, verdict, r.Discharged, r.Duration.Round(1e6))
		ctx.record(benchRecord{
			Name: "a3/" + r.Pipeline, WallTimeNS: int64(r.Duration),
			Metrics: map[string]float64{
				"verified":   b2f(r.Verified),
				"discharged": float64(r.Discharged),
			},
		})
	}
	return nil
}

func runF1(ctx *benchCtx) error {
	ctx.printf("paper: \"bounded execution or filtering correctness\" — input/output contracts per spec family\n")
	rows, err := experiments.F1FunctionalSpecs(ctx.maxLen, ctx.parallel)
	if err != nil {
		return err
	}
	ctx.printf("%-22s %-14s %-9s %12s %8s %8s %10s %12s\n",
		"spec", "pipeline", "verdict", "obligations", "proved", "trivial", "witnesses", "time")
	for _, r := range rows {
		verdict := "VERIFIED"
		if !r.Verified {
			verdict = "FAILED"
		}
		// Rows always match their designed verdict — F1FunctionalSpecs
		// errors out otherwise — so a FAILED row is a demonstration.
		note := ""
		if !r.Verified {
			note = " (as designed)"
		}
		ctx.printf("%-22s %-14s %-9s %12d %8d %8d %10d %12v%s\n",
			r.Spec, r.Pipeline, verdict, r.Obligations, r.Proved, r.Trivial,
			r.Witnesses, r.Duration.Round(1e6), note)
		m := map[string]float64{
			"verified":    b2f(r.Verified),
			"expected":    b2f(r.Expected),
			"obligations": float64(r.Obligations),
			"proved":      float64(r.Proved),
			"trivial":     float64(r.Trivial),
			"witnesses":   float64(r.Witnesses),
		}
		solverMetrics(m, r.Solver)
		solveTimeMetrics(m, r.SolveTimes)
		ctx.record(benchRecord{
			Name: fmt.Sprintf("f1/%s/%s", r.Spec, r.Pipeline), WallTimeNS: int64(r.Duration), Metrics: m,
		})
	}
	return nil
}

func runB1(ctx *benchCtx) error {
	ctx.printf("the example corpus verified twice against one store: warm must do zero Step-1 engine runs\n")
	rows, err := experiments.B1BatchStore(ctx.maxLen, ctx.parallel, ctx.storeDir)
	if err != nil {
		return err
	}
	ctx.printf("%-6s %10s %10s %12s %12s %11s %11s %12s\n",
		"run", "pipelines", "certified", "engine-runs", "store-hits", "cache-hits", "artifacts", "time")
	var coldNS int64
	for _, r := range rows {
		ctx.printf("%-6s %10d %10d %12d %12d %11d %11d %12v\n",
			r.Run, r.Pipelines, r.Certified, r.EngineRuns, r.StoreHits,
			r.CacheHits, r.StoreFiles, r.Duration.Round(1e6))
		m := map[string]float64{
			"pipelines":    float64(r.Pipelines),
			"certified":    float64(r.Certified),
			"engine-runs":  float64(r.EngineRuns),
			"store-hits":   float64(r.StoreHits),
			"store-misses": float64(r.StoreMisses),
			"cache-hits":   float64(r.CacheHits),
			"artifacts":    float64(r.StoreFiles),
		}
		if total := r.StoreHits + r.StoreMisses; total > 0 {
			m["store-hit-rate"] = float64(r.StoreHits) / float64(total)
		}
		if r.Run == "cold" {
			coldNS = int64(r.Duration)
		} else if r.Duration > 0 {
			m["warm-speedup"] = float64(coldNS) / float64(r.Duration)
		}
		solverMetrics(m, r.Solver)
		ctx.record(benchRecord{
			Name: "b1/" + r.Run, WallTimeNS: int64(r.Duration), Metrics: m,
		})
	}
	if len(rows) == 2 && rows[1].Duration > 0 {
		ctx.printf("warm speedup: %.1fx (store hit rate %d/%d)\n",
			float64(rows[0].Duration)/float64(rows[1].Duration),
			rows[1].StoreHits, rows[1].StoreHits+rows[1].StoreMisses)
	}
	return nil
}

func runS1(ctx *benchCtx) error {
	ctx.printf("bounded sequence unrolling grows with depth; the k-induction proof is flat AND unbounded\n")
	rows, err := experiments.S1Induction(ctx.maxLen, ctx.parallel)
	if err != nil {
		return err
	}
	ctx.printf("%-10s %-20s %6s %10s %8s %-9s %12s\n",
		"mode", "pipeline", "depth", "sequences", "queries", "verdict", "time")
	for _, r := range rows {
		verdict := "no-crash"
		switch {
		case r.Proved:
			verdict = "PROVED"
		case r.Refuted:
			verdict = "REFUTED"
		case r.CTI:
			verdict = fmt.Sprintf("CTI(%dpkt)", r.WitnessPackets)
		}
		ctx.printf("%-10s %-20s %6d %10d %8d %-9s %12v\n",
			r.Mode, r.Pipeline, r.Depth, r.Sequences, r.SolverQueries, verdict, r.Duration.Round(1e6))
		m := map[string]float64{
			"depth":           float64(r.Depth),
			"sequences":       float64(r.Sequences),
			"solver-queries":  float64(r.SolverQueries),
			"proved":          b2f(r.Proved),
			"refuted":         b2f(r.Refuted),
			"cti":             b2f(r.CTI),
			"witness-packets": float64(r.WitnessPackets),
		}
		solverMetrics(m, r.Solver)
		name := fmt.Sprintf("s1/%s/%s", r.Mode, r.Pipeline)
		if r.Mode == "unroll" {
			name = fmt.Sprintf("%s/depth=%d", name, r.Depth)
		}
		ctx.record(benchRecord{Name: name, WallTimeNS: int64(r.Duration), Metrics: m})
	}
	return nil
}

// tputPackets/tputFuzzPackets size the tput cells: enough packets that
// per-call overhead vanishes, and ≥1M fuzzed packets so the quoted
// speedup rides on a meaningful equivalence sample.
const (
	tputPackets     = 2_000_000
	tputFuzzPackets = 1_000_000
	tputSeed        = 0x7d9
)

func runTput(ctx *benchCtx) error {
	ctx.printf("paper: a dataplane that is verified AND fast — three tiers, one semantics, machine-checked equal\n")
	res, err := experiments.Tput(tputPackets, tputFuzzPackets, tputSeed)
	if err != nil {
		return err
	}
	ctx.printf("%-16s %12s %10s %10s %9s %11s %12s\n",
		"tier", "packets", "Mpps", "ns/pkt", "speedup", "steps/pkt", "allocs/pkt")
	for _, r := range res.Rows {
		ctx.printf("%-16s %12d %10.3f %10.1f %8.2fx %11.1f %12.4f\n",
			r.Tier, r.Packets, r.Mpps, r.NsPerPkt, r.Speedup, r.StepsPerPkt, r.AllocsPerPkt)
		ctx.record(benchRecord{
			Name: "tput/" + r.Tier, WallTimeNS: int64(r.Duration),
			Metrics: map[string]float64{
				"packets":        float64(r.Packets),
				"mpps":           r.Mpps,
				"ns-per-pkt":     r.NsPerPkt,
				"speedup":        r.Speedup,
				"steps-per-pkt":  r.StepsPerPkt,
				"allocs-per-pkt": r.AllocsPerPkt,
			},
		})
	}
	ctx.printf("fuzz gate: %d packets over %d corpus pipelines, zero divergences (%v)\n",
		res.FuzzPackets, res.FuzzPipelines, res.FuzzDuration.Round(1e6))
	ctx.record(benchRecord{
		Name: "tput/fuzz-gate", WallTimeNS: int64(res.FuzzDuration),
		Metrics: map[string]float64{
			"packets":     float64(res.FuzzPackets),
			"pipelines":   float64(res.FuzzPipelines),
			"divergences": 0, // Tput errors out on any divergence
		},
	})
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdbench:", err)
	os.Exit(1)
}

// r1Seed fixes the fault script; the row is deterministic given the
// corpus, so CI can diff the JSON like any other benchmark cell.
const r1Seed = 0xc0ffee

func runR1(ctx *benchCtx) error {
	ctx.printf("the corpus admitted clean, then under injected faults: certifications must not flip\n")
	rows, err := experiments.R1Degradation(ctx.maxLen, r1Seed)
	if err != nil {
		return err
	}
	ctx.printf("%-8s %10s %10s %11s %9s %9s %9s %12s\n",
		"run", "pipelines", "certified", "unresolved", "faults", "panics", "corrupt", "time")
	for _, r := range rows {
		ctx.printf("%-8s %10d %10d %11d %9d %9d %9d %12v\n",
			r.Run, r.Pipelines, r.Certified, r.Unresolved, r.FaultsInjected,
			r.PanicsRecovered, r.StoreCorrupt, r.Duration.Round(1e6))
		m := map[string]float64{
			"pipelines":        float64(r.Pipelines),
			"certified":        float64(r.Certified),
			"unresolved":       float64(r.Unresolved),
			"faults-injected":  float64(r.FaultsInjected),
			"solver-panics":    float64(r.SolverPanics),
			"panics-recovered": float64(r.PanicsRecovered),
			"store-corrupt":    float64(r.StoreCorrupt),
		}
		solverMetrics(m, r.Solver)
		ctx.record(benchRecord{Name: "r1/" + r.Run, WallTimeNS: int64(r.Duration), Metrics: m})
	}
	ctx.printf("every injected panic contained; certified verdicts byte-identical to the clean pass\n")
	return nil
}
