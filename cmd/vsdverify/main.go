// Command vsdverify is the dataplane verification tool the paper
// proposes: it reads a Click configuration and proves (or refutes, with
// witness packets) crash freedom, bounded execution, and optional
// reachability properties.
//
// Usage:
//
//	vsdverify [flags] config.click
//
//	-property crash|bound|all   property to verify (default all)
//	-maxlen N                   maximum packet length considered
//	-parallel N                 verification worker pool size (0 = GOMAXPROCS)
//	-monolithic                 also run the whole-pipeline baseline
//	-dump-ir                    print each element's IR before verifying
//	-stats                      print verification statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/verify"
)

func main() {
	property := flag.String("property", "all", "property to verify: crash, bound, or all")
	maxLen := flag.Uint64("maxlen", 256, "maximum packet length considered")
	parallel := flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
	monolithic := flag.Bool("monolithic", false, "also run the whole-pipeline baseline")
	dumpIR := flag.Bool("dump-ir", false, "print each element's IR")
	stats := flag.Bool("stats", false, "print verification statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vsdverify [flags] config.click")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pipeline, err := click.Parse(elements.Default(), string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline (%d elements):\n%s\n", len(pipeline.Elements), pipeline)
	if *dumpIR {
		for _, e := range pipeline.Elements {
			fmt.Println(e.Program())
		}
	}

	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: *maxLen, Parallelism: *parallel})
	failed := false

	if *property == "crash" || *property == "all" {
		start := time.Now()
		rep, err := v.CrashFreedom(pipeline)
		if err != nil {
			fatal(err)
		}
		if rep.Verified {
			fmt.Printf("crash freedom: VERIFIED in %v (no packet of length %d..%d can crash this pipeline)\n",
				time.Since(start).Round(time.Millisecond), packet.MinFrame, *maxLen)
			if rep.Discharged > 0 {
				fmt.Printf("  %d stateful suspect path(s) discharged by the bad-value analysis\n", rep.Discharged)
			}
		} else {
			failed = true
			fmt.Printf("crash freedom: FAILED in %v — %d witness(es):\n",
				time.Since(start).Round(time.Millisecond), len(rep.Witnesses))
			for _, w := range rep.Witnesses {
				fmt.Print(verify.FormatWitness(w))
			}
		}
	}

	if *property == "bound" || *property == "all" {
		start := time.Now()
		rep, err := v.BoundedInstructions(pipeline)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bounded execution: max %d IR statements per packet (computed in %v)\n",
			rep.MaxSteps, time.Since(start).Round(time.Millisecond))
		if rep.CrashPossible {
			fmt.Println("  note: some inputs crash the pipeline; the bound covers non-crashing executions")
		}
		if rep.Witness.Packet != nil {
			fmt.Println("  worst-case packet:")
			fmt.Print(verify.FormatWitness(rep.Witness))
		}
	}

	if *monolithic {
		start := time.Now()
		rep, err := verify.Monolithic(pipeline, verify.Options{MinLen: packet.MinFrame, MaxLen: *maxLen})
		if err != nil {
			fatal(err)
		}
		if rep.Completed {
			fmt.Printf("monolithic baseline: %d paths, %d crashing, max %d statements, in %v\n",
				rep.Paths, rep.Crashes, rep.MaxSteps, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("monolithic baseline: DID NOT COMPLETE (%s) after %v\n",
				rep.BudgetReached, time.Since(start).Round(time.Millisecond))
		}
	}

	if *stats {
		fmt.Printf("stats: %+v\n", v.Stats())
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdverify:", err)
	os.Exit(1)
}
