// Command vsdverify is the dataplane verification tool the paper
// proposes: it reads a Click configuration and proves (or refutes, with
// witness packets) crash freedom, bounded execution, and functional
// properties.
//
// Usage:
//
//	vsdverify [flags] config.click
//	vsdverify -batch dir [flags]
//
//	-property crash|bound|all   property to verify (default all)
//	-spec LIST                  functional specs to verify (see below)
//	-seq K                      sequence mode (DESIGN.md §8): explore packet
//	                            sequences of up to K packets from boot state
//	                            and report reachable crashes
//	-invariant                  with -seq: prove crash freedom for UNBOUNDED
//	                            packet sequences by k-induction (max depth K)
//	                            instead of bounded unrolling
//	-seqspec LIST               sequence contracts to verify (see below)
//	-ipoff N                    IPv4 header offset assumed by -spec (default 14)
//	-maxlen N                   maximum packet length considered
//	-parallel N                 verification worker pool size (0 = GOMAXPROCS)
//	-store DIR                  persistent summary store directory (DESIGN.md §7)
//	-batch DIR                  batch admission: verify every .click file in DIR,
//	                            printing one verdict JSON line per file to stdout
//	-batch-stats FILE           write batch run statistics (engine runs, store
//	                            hits, ...) as JSON to FILE
//	-monolithic                 also run the whole-pipeline baseline
//	-dump-ir                    print each element's IR before verifying
//	-stats                      print verification statistics
//	-trace FILE                 write a Chrome trace-event JSON of the run
//	                            (phases, per-path walks, per-obligation SAT
//	                            solves); open it in https://ui.perfetto.dev
//	-profile                    print the costliest proof obligations by wall
//	                            time, SAT conflicts, and CNF size
//	-profile-top N              rows per -profile section (default 10)
//	-validate-trace FILE        validate a -trace file and exit (the CI smoke
//	                            gate: well-formed JSON, monotone timestamps,
//	                            balanced spans)
//
// Batch mode is the admission-service form of the tool: all submissions
// share one verifier (summary cache, solver sessions, and, with -store,
// the on-disk summary store), identical pipelines are deduplicated by
// content fingerprint, and the verdict lines are deterministic — two
// runs over the same corpus produce byte-identical output, which is how
// the warm-store CI job asserts store correctness. Timing and counters
// go to stderr / -batch-stats, never into the verdict stream.
//
// -spec takes a comma-separated list of kind@element entries from the
// functional-spec library (internal/specs, DESIGN.md §6):
//
//	ttl@ELEM        TTL decremented by one on packets emitted at ELEM
//	checksum@ELEM   RFC 1624 checksum patch holds on packets emitted at ELEM
//	filter@ELEM     drop-iff-filter-match for the IPFilter instance ELEM
//	nat@ELEM        source-rewrite consistency for the IPRewriter instance ELEM
//	roundtrip@ELEM  header offset restored at egress ELEM, and every byte
//	                past the fixed IPv4 header untouched
//
// e.g. vsdverify -spec ttl@encap,filter@flt router.click
//
// -seqspec takes the same kind@element syntax from the sequence-contract
// half of the library (multi-packet relations, DESIGN.md §8):
//
//	counter@ELEM    the Counter instance ELEM never decreases across the
//	                explored sequences (-seq packets; default 3)
//	nat@ELEM        mapping stability: same-flow packets i and j leave the
//	                NAT instance ELEM with the SAME rewritten source
//	seqrate@ELEM    burst bound of the TokenBucket instance ELEM: at most
//	                CAPACITY packets of any sequence pass its port 0
//
// Refuted sequence properties print a multi-packet witness — the packets
// in arrival order plus, for counterexamples to induction, the seeded
// state — and every witness from boot state is replayed on the concrete
// dataplane before it is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/specs"
	"vsd/internal/telemetry"
	"vsd/internal/verify"
)

// buildSpecs parses the -spec list against the pipeline: kinds that
// state an element's contract (filter, nat) read that instance's
// configuration, so the spec always matches what was actually deployed.
func buildSpecs(p *click.Pipeline, list string, ipOff, maxLen uint64) ([]verify.FuncSpec, error) {
	find := func(name string) (*click.Instance, error) {
		for _, e := range p.Elements {
			if e.Name() == name {
				return e, nil
			}
		}
		return nil, fmt.Errorf("pipeline has no element named %q", name)
	}
	var out []verify.FuncSpec
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, elem, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("bad -spec entry %q (want kind@element)", entry)
		}
		inst, err := find(elem)
		if err != nil {
			return nil, fmt.Errorf("-spec %s: %w", entry, err)
		}
		switch kind {
		case "ttl":
			out = append(out, specs.TTLDecrement(ipOff, elem))
		case "checksum":
			out = append(out, specs.ChecksumPatched(ipOff, elem))
		case "filter":
			if inst.Class() != "IPFilter" {
				return nil, fmt.Errorf("-spec %s: %s is a %s, want IPFilter", entry, elem, inst.Class())
			}
			s, err := specs.DropIffFilter(inst.Config(), ipOff, elem)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case "nat":
			if inst.Class() != "IPRewriter" {
				return nil, fmt.Errorf("-spec %s: %s is a %s, want IPRewriter", entry, elem, inst.Class())
			}
			s, err := specs.NATRewrite(inst.Config(), ipOff, elem)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case "roundtrip":
			// The unchanged window starts past the fixed IPv4 header: the
			// pipeline may legitimately rewrite header fields (TTL,
			// checksum, NAT addresses), and the spec's claim is that the
			// encapsulation round-trip leaves the rest of the packet alone.
			out = append(out, specs.StripRoundTrip(ipOff+packet.IPv4MinHeaderLen, maxLen, elem))
		default:
			return nil, fmt.Errorf("unknown spec kind %q (want ttl, checksum, filter, nat, or roundtrip)", kind)
		}
	}
	return out, nil
}

// buildSeqSpecs parses the -seqspec list against the pipeline: the
// sequence-contract half of the library (DESIGN.md §8). steps is the
// -seq flag (how many packets each contract explores; 0 picks a
// per-kind default).
func buildSeqSpecs(p *click.Pipeline, list string, ipOff uint64, steps int) ([]verify.SeqSpec, error) {
	find := func(name string) (*click.Instance, error) {
		for _, e := range p.Elements {
			if e.Name() == name {
				return e, nil
			}
		}
		return nil, fmt.Errorf("pipeline has no element named %q", name)
	}
	if steps <= 0 {
		steps = 3 // the shortest length that can refute eviction bugs (A, B, A)
	}
	var out []verify.SeqSpec
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, elem, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("bad -seqspec entry %q (want kind@element)", entry)
		}
		inst, err := find(elem)
		if err != nil {
			return nil, fmt.Errorf("-seqspec %s: %w", entry, err)
		}
		switch kind {
		case "counter":
			if inst.Class() != "Counter" {
				return nil, fmt.Errorf("-seqspec %s: %s is a %s, want Counter", entry, elem, inst.Class())
			}
			out = append(out, specs.CounterMonotone(elem, steps))
		case "nat":
			// Mapping stability is vacuously true of any element that never
			// rewrites the source bytes, so a wrong instance must be an
			// error, not a hollow VERIFIED.
			if c := inst.Class(); c != "IPRewriter" && c != "LeakyNAT" {
				return nil, fmt.Errorf("-seqspec %s: %s is a %s, want IPRewriter or LeakyNAT", entry, elem, c)
			}
			out = append(out, specs.NATMappingStable(ipOff, elem, steps))
		case "seqrate":
			if inst.Class() != "TokenBucket" {
				return nil, fmt.Errorf("-seqspec %s: %s is a %s, want TokenBucket", entry, elem, inst.Class())
			}
			capacity := uint64(elements.TokenBucketDefaultCapacity)
			if cfg := strings.TrimSpace(inst.Config()); cfg != "" {
				capacity, err = strconv.ParseUint(cfg, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("-seqspec %s: bad TokenBucket capacity %q", entry, cfg)
				}
			}
			out = append(out, specs.RateLimiterBound(capacity, elem))
		default:
			return nil, fmt.Errorf("unknown sequence spec kind %q (want counter, nat, or seqrate)", kind)
		}
	}
	return out, nil
}

func main() {
	property := flag.String("property", "all", "property to verify: crash, bound, or all")
	specList := flag.String("spec", "", "comma-separated functional specs to verify (kind@element; see package doc)")
	seqK := flag.Int("seq", 0, "sequence mode: explore packet sequences of up to K packets (0 = off; DESIGN.md §8)")
	invariant := flag.Bool("invariant", false, "with -seq: prove unbounded crash freedom by k-induction instead of bounded unrolling")
	seqSpecList := flag.String("seqspec", "", "comma-separated sequence contracts to verify (kind@element; see package doc)")
	ipOff := flag.Uint64("ipoff", packet.EthernetHeaderLen, "IPv4 header offset assumed by -spec entries")
	maxLen := flag.Uint64("maxlen", 256, "maximum packet length considered")
	parallel := flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "persistent summary store directory (empty = in-memory only)")
	batchDir := flag.String("batch", "", "batch admission: verify every .click file in this directory")
	batchStats := flag.String("batch-stats", "", "write batch statistics JSON to this file")
	monolithic := flag.Bool("monolithic", false, "also run the whole-pipeline baseline")
	dumpIR := flag.Bool("dump-ir", false, "print each element's IR")
	stats := flag.Bool("stats", false, "print verification statistics")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
	profile := flag.Bool("profile", false, "print the costliest proof obligations (wall time, conflicts, CNF size)")
	profileK := flag.Int("profile-top", 10, "rows per section in the -profile tables")
	validateTrace := flag.String("validate-trace", "", "validate a -trace JSON file (well-formed, ordered, balanced spans) and exit")
	flag.Parse()

	if *validateTrace != "" {
		data, err := os.ReadFile(*validateTrace)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.ValidateTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *validateTrace, err))
		}
		fmt.Printf("trace %s: OK\n", *validateTrace)
		return
	}

	opts := verify.Options{MinLen: packet.MinFrame, MaxLen: *maxLen, Parallelism: *parallel, Profile: *profile}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.New(telemetry.Opts{})
		opts.Trace = tracer
	}
	if *storeDir != "" {
		store, err := verify.NewDiskStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		opts.Store = store
	}

	if *batchDir != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: vsdverify -batch dir [flags] (no positional config)")
			os.Exit(2)
		}
		runBatch(*batchDir, *batchStats, opts)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vsdverify [flags] config.click")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pipeline, err := click.Parse(elements.Default(), string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline (%d elements):\n%s\n", len(pipeline.Elements), pipeline)
	if *dumpIR {
		for _, e := range pipeline.Elements {
			fmt.Println(e.Program())
		}
	}

	v := verify.New(opts)
	failed := false

	if *property == "crash" || *property == "all" {
		start := time.Now()
		rep, err := v.CrashFreedom(pipeline)
		if err != nil {
			fatal(err)
		}
		if rep.Verified {
			fmt.Printf("crash freedom: VERIFIED in %v (no packet of length %d..%d can crash this pipeline)\n",
				time.Since(start).Round(time.Millisecond), packet.MinFrame, *maxLen)
			if rep.Discharged > 0 {
				fmt.Printf("  %d stateful suspect path(s) discharged by the bad-value analysis\n", rep.Discharged)
			}
		} else {
			failed = true
			fmt.Printf("crash freedom: FAILED in %v — %d witness(es):\n",
				time.Since(start).Round(time.Millisecond), len(rep.Witnesses))
			for _, w := range rep.Witnesses {
				fmt.Print(verify.FormatWitness(w))
			}
		}
	}

	if *property == "bound" || *property == "all" {
		start := time.Now()
		rep, err := v.BoundedInstructions(pipeline)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bounded execution: max %d IR statements per packet (computed in %v)\n",
			rep.MaxSteps, time.Since(start).Round(time.Millisecond))
		if rep.CrashPossible {
			fmt.Println("  note: some inputs crash the pipeline; the bound covers non-crashing executions")
		}
		if rep.Witness.Packet != nil {
			fmt.Println("  worst-case packet:")
			fmt.Print(verify.FormatWitness(rep.Witness))
		}
	}

	if *specList != "" {
		fspecs, err := buildSpecs(pipeline, *specList, *ipOff, *maxLen)
		if err != nil {
			fatal(err)
		}
		for _, spec := range fspecs {
			start := time.Now()
			rep, err := v.VerifyFunc(pipeline, spec)
			if err != nil {
				fatal(err)
			}
			if rep.Verified {
				fmt.Printf("spec %s: VERIFIED in %v (%d obligation(s) proved, %d trivially)\n",
					rep.Spec, time.Since(start).Round(time.Millisecond), rep.Proved, rep.Trivial)
			} else {
				failed = true
				fmt.Printf("spec %s: FAILED in %v — %d witness(es):\n",
					rep.Spec, time.Since(start).Round(time.Millisecond), len(rep.Witnesses))
				for _, w := range rep.Witnesses {
					fmt.Print(verify.FormatWitness(w))
				}
			}
		}
	}

	if *invariant && *seqK == 0 {
		fatal(fmt.Errorf("-invariant requires -seq K"))
	}
	if *seqK > 0 {
		if *invariant {
			start := time.Now()
			rep, err := v.SeqCrashFreedom(pipeline, verify.SeqOptions{MaxK: *seqK})
			if err != nil {
				fatal(err)
			}
			switch {
			case rep.Proved:
				fmt.Printf("sequence crash freedom: PROVED for UNBOUNDED packet sequences by %d-induction in %v (%d sequence prefixes explored)\n",
					rep.K, time.Since(start).Round(time.Millisecond), rep.Sequences)
			case rep.Refuted:
				failed = true
				fmt.Printf("sequence crash freedom: REFUTED in %v — a %d-packet sequence from boot state crashes the pipeline:\n",
					time.Since(start).Round(time.Millisecond), len(rep.Witness.Packets))
				replayAndPrint(pipeline, rep.Witness)
			case rep.CTI:
				failed = true
				fmt.Printf("sequence crash freedom: NOT PROVED within k=%d in %v — counterexample to induction (no unbounded guarantee; the violation needs a seeded state):\n",
					rep.K, time.Since(start).Round(time.Millisecond))
				replayAndPrint(pipeline, rep.Witness)
			}
		} else {
			start := time.Now()
			rep, err := v.SeqCrashBounded(pipeline, *seqK, verify.SeqOptions{})
			if err != nil {
				fatal(err)
			}
			if rep.Refuted {
				failed = true
				fmt.Printf("bounded sequences (depth %d): CRASH REACHABLE in %v — %d sequences explored:\n",
					*seqK, time.Since(start).Round(time.Millisecond), rep.Sequences)
				replayAndPrint(pipeline, rep.Witness)
			} else {
				fmt.Printf("bounded sequences (depth %d): no crash reachable from boot state in %v (%d sequences explored; unbounded lengths need -invariant)\n",
					*seqK, time.Since(start).Round(time.Millisecond), rep.Sequences)
			}
		}
	}

	if *seqSpecList != "" {
		sspecs, err := buildSeqSpecs(pipeline, *seqSpecList, *ipOff, *seqK)
		if err != nil {
			fatal(err)
		}
		for _, spec := range sspecs {
			start := time.Now()
			rep, err := v.VerifySeq(pipeline, spec)
			if err != nil {
				fatal(err)
			}
			if rep.Verified {
				fmt.Printf("seqspec %s: VERIFIED over all %d-packet sequences in %v (%d sequences, %d obligation(s) proved, %d trivially)\n",
					rep.Spec, rep.Steps, time.Since(start).Round(time.Millisecond), rep.Sequences, rep.Proved, rep.Trivial)
			} else {
				failed = true
				fmt.Printf("seqspec %s: FAILED in %v — %d witness(es):\n",
					rep.Spec, time.Since(start).Round(time.Millisecond), len(rep.Witnesses))
				for _, w := range rep.Witnesses {
					replayAndPrint(pipeline, w)
				}
			}
		}
	}

	if *monolithic {
		start := time.Now()
		rep, err := verify.Monolithic(pipeline, verify.Options{MinLen: packet.MinFrame, MaxLen: *maxLen})
		if err != nil {
			fatal(err)
		}
		if rep.Completed {
			fmt.Printf("monolithic baseline: %d paths, %d crashing, max %d statements, in %v\n",
				rep.Paths, rep.Crashes, rep.MaxSteps, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("monolithic baseline: DID NOT COMPLETE (%s) after %v\n",
				rep.BudgetReached, time.Since(start).Round(time.Millisecond))
		}
	}

	if *stats {
		fmt.Printf("stats: %+v\n", v.Stats())
	}
	if *profile {
		fmt.Printf("\nobligation profile:\n%s", verify.FormatObligationProfile(v.ObligationProfile(), *profileK))
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
	if failed {
		os.Exit(1)
	}
}

// replayAndPrint prints a multi-packet witness after replaying it on a
// fresh concrete dataplane — the oracle check that the symbolic
// sequence is real. A divergence is an internal error worth dying
// loudly over, never a property verdict.
func replayAndPrint(p *click.Pipeline, w *verify.MultiWitness) {
	if err := verify.ReplaySeq(p, w); err != nil {
		fatal(err)
	}
	fmt.Print(verify.FormatMultiWitness(w))
	fmt.Println("  replay: the sequence reproduces byte-for-byte on the concrete dataplane (both the interpreter and the compiled VM tier)")
}

// runBatch is the admission-service mode: every .click file in dir is a
// submission, verdicts stream to stdout as JSON lines (deterministic:
// no timing, schedule-independent ordering), and run statistics go to
// stderr and optionally a JSON file.
func runBatch(dir, statsFile string, opts verify.Options) {
	names, err := filepath.Glob(filepath.Join(dir, "*.click"))
	if err != nil {
		fatal(err)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("batch: no .click files in %s", dir))
	}
	sort.Strings(names)
	var items []verify.BatchItem
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		p, err := click.Parse(elements.Default(), string(src))
		if err != nil {
			fatal(fmt.Errorf("batch: %s: %w", name, err))
		}
		items = append(items, verify.BatchItem{Name: filepath.Base(name), Pipeline: p})
	}
	verdicts, st, dur := verify.Batch(items, opts)
	out := json.NewEncoder(os.Stdout)
	certified, rejected := 0, 0
	for _, vd := range verdicts {
		if err := out.Encode(vd); err != nil {
			fatal(err)
		}
		if vd.Certified {
			certified++
		} else {
			rejected++
		}
	}
	fmt.Fprintf(os.Stderr,
		"batch: %d submission(s): %d certified, %d rejected; engine runs %d, store hits %d, cache hits %d, in %v\n",
		len(verdicts), certified, rejected,
		st.ElementsSummarized, st.StoreHits, st.SummaryCacheHits, dur.Round(time.Millisecond))
	if statsFile != "" {
		rec := map[string]any{
			"submissions":          len(verdicts),
			"certified":            certified,
			"rejected":             rejected,
			"elements_summarized":  st.ElementsSummarized,
			"store_hits":           st.StoreHits,
			"store_misses":         st.StoreMisses,
			"summary_cache_hits":   st.SummaryCacheHits,
			"refinement_truncated": st.RefinementTruncated,
			"wall_ms":              dur.Milliseconds(),
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(statsFile, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsdverify:", err)
	os.Exit(1)
}
