// Command vsdserve is the admission service the paper's element
// marketplace needs: a daemon that certifies a stream of submitted
// dataplane configurations. POST a Click config and get back an
// admission verdict — crash freedom, the worst-case instruction bound,
// the latency delta against the operator's baseline pipeline, and
// concrete witness packets for rejections — as JSON.
//
// All requests share one verifier: Step-1 summaries, incremental solver
// sessions, and (with -store) the persistent content-addressed summary
// store, so a submission reusing known element programs verifies
// without re-running the symbolic engine (DESIGN.md §7).
//
// With -queue, submissions pass through a crash-safe journaled queue
// (DESIGN.md §9): each accepted job is fsynced to the journal before
// the verdict is computed, a bounded depth turns overload into an
// explicit 503 + Retry-After instead of unbounded memory growth, and a
// kill -9 mid-batch loses nothing — the journal replays on restart and
// the verdict log converges to the same set. SIGINT/SIGTERM drain
// gracefully within -drain-timeout; undrained jobs stay journaled.
//
// Usage:
//
//	vsdserve [-addr :8847] [-store dir] [-maxlen N] [-parallel N]
//	         [-baseline config.click] [-queue dir] [-drain-timeout d]
//	         [-job-timeout d] [-watchdog d] [-smoke dir]
//	         [-chaos dir] [-chaos-seed N]
//
// Endpoints:
//
//	POST /verify    body: a Click configuration (text).
//	                response: admission verdict JSON (see verify.BatchVerdict),
//	                plus latency_delta_steps when -baseline is set and wall_ms.
//	                413 when the body exceeds 1 MiB; 503 + Retry-After when
//	                the submission queue is at capacity or draining.
//	GET  /stats     cumulative verifier statistics JSON, including the
//	                "robustness" degradation-ladder counters, service
//	                uptime, build info, and admission/solve latency
//	                percentiles.
//	GET  /metrics   Prometheus text exposition: admission-latency,
//	                solve-time and summarize-time histograms, store and
//	                queue counters, uptime.
//	GET  /debug/pprof/  the standard net/http/pprof profiling endpoints
//	                (heap, goroutine, CPU profile, execution trace).
//	GET  /healthz   liveness probe ("ok").
//
// -smoke dir runs the self-test used by `make serve-smoke`: the server
// starts on an ephemeral port, submits every .click file in dir to
// itself over HTTP, prints each verdict line, and exits non-zero if any
// request fails or any submission is rejected.
//
// -chaos dir runs the fault-injection self-test used by
// `make chaos-smoke` (see chaos.go): a clean pass, a faulted pass
// through the durable queue, and a simulated kill -9 replay, asserting
// zero crashes and zero verdict flips.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/faultinject"
	"vsd/internal/packet"
	"vsd/internal/queue"
	"vsd/internal/smt"
	"vsd/internal/telemetry"
	"vsd/internal/verify"
)

// maxConfigBytes bounds request bodies; Click configurations are tiny.
const maxConfigBytes = 1 << 20

// doneKeep bounds the completed-verdict cache that answers handlers who
// attach to a deduplicated job after its verdict was already delivered.
const doneKeep = 1024

// server is the shared admission state.
type server struct {
	verifier *verify.Verifier
	store    *verify.DiskStore // nil without -store
	// baselineBound is the operator pipeline's instruction bound, for
	// the latency-delta assessment (nil without -baseline).
	baselineBound *int64

	// queue is the durable submission queue (nil without -queue): the
	// handler journals the job, a worker verifies it, and the handler
	// waits for that job's verdict.
	queue *queue.Queue
	// maxAttempts mirrors the queue's retry budget so process knows
	// when a degraded verdict is final rather than retryable.
	maxAttempts int
	// jobBudget is the per-job verification watchdog (0 = off).
	jobBudget time.Duration
	// verdictLog is the append-only verdicts.jsonl path ("" = off) —
	// the durable record kill -9 convergence is judged by.
	verdictLog string
	// injector is set in chaos mode so /stats exposes injected-fault
	// counts alongside the degradation counters they must match.
	injector *faultinject.Injector
	// metrics backs GET /metrics; the verifier and queue register their
	// families on it, admitHist records end-to-end admission latency.
	metrics   *telemetry.Registry
	admitHist *telemetry.Histogram
	started   time.Time

	wmu     sync.Mutex
	waiters map[uint64][]chan response
	done    map[uint64]response
	doneIDs []uint64
	logMu   sync.Mutex
}

// response is one admission reply: the batch verdict plus service
// fields.
type response struct {
	verify.BatchVerdict
	// LatencyDeltaSteps is BoundSteps minus the -baseline pipeline's
	// bound: the "maximum increase in latency" the paper describes
	// operators quoting to customers.
	LatencyDeltaSteps *int64 `json:"latency_delta_steps,omitempty"`
	WallMS            int64  `json:"wall_ms"`
}

// jsonSubmission is the application/json request form of /verify, and
// doubles as the journaled job payload.
type jsonSubmission struct {
	Name   string `json:"name"`
	Config string `json:"config"`
}

// initTelemetry wires the registry behind GET /metrics: the admission
// latency histogram and a process-uptime gauge here, plus whatever
// families the verifier and queue register on the same registry.
// Histogram values are nanoseconds; unitDiv 1e9 exposes seconds, the
// Prometheus base unit.
func (s *server) initTelemetry() *telemetry.Registry {
	s.metrics = telemetry.NewRegistry()
	s.started = time.Now()
	s.admitHist = s.metrics.Histogram("vsd_admission_latency_seconds",
		"wall-clock verification latency per admitted submission", 1e9)
	s.metrics.GaugeFunc("vsd_uptime_seconds", "seconds since the service started",
		func() float64 { return time.Since(s.started).Seconds() })
	return s.metrics
}

// buildInfo identifies the serving binary in /stats: the Go version
// plus the VCS stamp the toolchain embeds at build time.
func buildInfo() map[string]string {
	b := map[string]string{"go": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		b["module"] = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				b[kv.Key] = kv.Value
			}
		}
	}
	return b
}

// admit runs one submission through the verifier, under the watchdog
// when a job budget is set. A watchdog interrupt surfaces inside the
// verdict as unresolved obligations — degraded, never fabricated.
func (s *server) admit(name string, p *click.Pipeline) response {
	start := time.Now()
	var verdict verify.BatchVerdict
	run := func() error {
		verdict = s.verifier.Batch([]verify.BatchItem{{Name: name, Pipeline: p}})[0]
		return nil
	}
	if s.jobBudget > 0 {
		s.verifier.WithWatchdog(s.jobBudget, run)
	} else {
		run()
	}
	s.admitHist.Record(int64(time.Since(start)))
	resp := response{BatchVerdict: verdict, WallMS: time.Since(start).Milliseconds()}
	if s.baselineBound != nil && verdict.Error == "" {
		delta := verdict.BoundSteps - *s.baselineBound
		resp.LatencyDeltaSteps = &delta
	}
	return resp
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a Click configuration to /verify", http.StatusMethodNotAllowed)
		return
	}
	// Oversized bodies are refused outright (413), not silently
	// truncated into a different — and then wrongly certified — config.
	r.Body = http.MaxBytesReader(w, r.Body, maxConfigBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("submission exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.URL.Query().Get("name")
	config := string(body)
	// JSON submissions carry the name inline; malformed JSON is a client
	// error (400), distinct from a well-formed submission whose Click
	// configuration does not parse (422).
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var sub jsonSubmission
		if err := json.Unmarshal(body, &sub); err != nil {
			http.Error(w, "bad JSON submission: "+err.Error(), http.StatusBadRequest)
			return
		}
		if sub.Config == "" {
			http.Error(w, `bad JSON submission: "config" is required`, http.StatusBadRequest)
			return
		}
		config = sub.Config
		if sub.Name != "" {
			name = sub.Name
		}
	}
	if name == "" {
		name = "submission"
	}
	if strings.TrimSpace(config) == "" {
		http.Error(w, "empty submission", http.StatusBadRequest)
		return
	}
	p, err := click.Parse(elements.Default(), config)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if s.queue == nil {
		writeJSON(w, http.StatusOK, s.admit(name, p))
		return
	}
	s.enqueueAndWait(w, r, name, config, p)
}

// enqueueAndWait journals the submission and blocks until its verdict
// is delivered by the worker. The pipeline fingerprint is the
// idempotency key: resubmitting a pending pipeline attaches to the
// existing job instead of double-verifying it.
func (s *server) enqueueAndWait(w http.ResponseWriter, r *http.Request, name, config string, p *click.Pipeline) {
	payload, err := json.Marshal(jsonSubmission{Name: name, Config: config})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	job, err := s.queue.Enqueue(p.Fingerprint().String(), payload)
	switch {
	case errors.Is(err, queue.ErrOverloaded):
		// The bounded queue turns overload into explicit backpressure,
		// not unbounded memory growth.
		w.Header().Set("Retry-After", "2")
		http.Error(w, "verification queue at capacity; retry later", http.StatusServiceUnavailable)
		return
	case errors.Is(err, queue.ErrClosed):
		w.Header().Set("Retry-After", "30")
		http.Error(w, "service draining; journaled jobs resume on restart", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ch := s.waitFor(job.ID)
	select {
	case resp := <-ch:
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client gone; the journaled job completes regardless and its
		// verdict lands in the verdict log.
		s.dropWaiter(job.ID, ch)
	}
}

// waitFor registers for job id's verdict. Completed verdicts are
// answered from the done cache: a handler that deduplicated onto a job
// finishing concurrently must not wait forever.
func (s *server) waitFor(id uint64) chan response {
	ch := make(chan response, 1)
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if resp, ok := s.done[id]; ok {
		ch <- resp
		return ch
	}
	if s.waiters == nil {
		s.waiters = make(map[uint64][]chan response)
	}
	s.waiters[id] = append(s.waiters[id], ch)
	return ch
}

func (s *server) dropWaiter(id uint64, ch chan response) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	kept := s.waiters[id][:0]
	for _, c := range s.waiters[id] {
		if c != ch {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		delete(s.waiters, id)
	} else {
		s.waiters[id] = kept
	}
}

func (s *server) deliver(id uint64, resp response) {
	s.wmu.Lock()
	chans := s.waiters[id]
	delete(s.waiters, id)
	if s.done == nil {
		s.done = make(map[uint64]response)
	}
	s.done[id] = resp
	s.doneIDs = append(s.doneIDs, id)
	if len(s.doneIDs) > doneKeep {
		delete(s.done, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
	s.wmu.Unlock()
	for _, ch := range chans {
		ch <- resp
	}
}

// process is the queue worker's job body: decode, verify, and either
// complete the job or ask for a retry when the verdict degraded —
// transient faults (solver budget, contained panic, torn artifact)
// often clear on a later attempt, which is how the service converges
// back to the clean verdict instead of surfacing the fault.
func (s *server) process(_ context.Context, job *queue.Job) error {
	var sub jsonSubmission
	if err := json.Unmarshal(job.Payload, &sub); err != nil {
		// A payload that does not decode never will; no retry.
		s.complete(job, response{BatchVerdict: verify.BatchVerdict{
			Name: "journal-entry", Error: "corrupt journal payload: " + err.Error()}})
		return nil
	}
	p, err := click.Parse(elements.Default(), sub.Config)
	if err != nil {
		s.complete(job, response{BatchVerdict: verify.BatchVerdict{
			Name: sub.Name, Error: "parse: " + err.Error()}})
		return nil
	}
	resp := s.admit(sub.Name, p)
	degraded := resp.Error != "" || resp.Unresolved > 0
	if degraded && job.Attempts < s.maxAttempts {
		return fmt.Errorf("degraded verdict (unresolved %d, error %q)", resp.Unresolved, resp.Error)
	}
	s.complete(job, resp)
	return nil
}

// exhausted retires a job whose retry or deadline budget ran out; its
// waiters get the failure, never a fabricated verdict.
func (s *server) exhausted(job *queue.Job, err error) {
	s.complete(job, response{BatchVerdict: verify.BatchVerdict{
		Error: fmt.Sprintf("queue: retired after %d attempt(s): %v", job.Attempts, err)}})
}

// complete records a job's terminal verdict — durably in the verdict
// log, then to every waiting handler.
func (s *server) complete(job *queue.Job, resp response) {
	if s.verdictLog != "" {
		s.logMu.Lock()
		if err := appendVerdict(s.verdictLog, job.Key, resp.BatchVerdict); err != nil {
			log.Printf("vsdserve: verdict log: %v", err)
		}
		s.logMu.Unlock()
	}
	s.deliver(job.ID, resp)
}

// verdictRecord is one verdicts.jsonl line. WallMS and the latency
// delta stay out: the record must be a pure function of the submission
// so clean, faulted, and replayed runs compare byte for byte.
type verdictRecord struct {
	Key     string              `json:"key"`
	Verdict verify.BatchVerdict `json:"verdict"`
}

func appendVerdict(path, key string, v verify.BatchVerdict) error {
	line, err := json.Marshal(verdictRecord{Key: key, Verdict: v})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.verifier.Stats()
	out := map[string]any{
		"verifier": st,
		// Operator-facing counters under stable names: how much of the
		// stateful refinement was skipped (suspects left standing
		// because their bad-value search was truncated) and what the
		// sequence/induction engine has done (DESIGN.md §8).
		"counters": map[string]int{
			"refinement_truncated": st.RefinementTruncated,
			"seq_sequences":        st.SeqSequences,
			"seq_infeasible":       st.SeqInfeasible,
			"induction_depth":      st.InductionDepth,
			"induction_proved":     st.InductionProved,
			"induction_refuted":    st.InductionRefuted,
			"seq_spec_refuted":     st.SeqSpecRefuted,
		},
	}
	// The degradation ladder, observable (DESIGN.md §9): every rung the
	// service stepped down — contained panics, watchdog interrupts,
	// rejected artifacts, queue retries — is a counter here, so an
	// operator can tell "degraded under faults" from "healthy".
	robust := map[string]int64{
		"panics_recovered": int64(st.PanicsRecovered),
		"watchdog_fired":   int64(st.WatchdogFired),
	}
	if s.store != nil {
		out["store"] = s.store.Stats()
		robust["store_corrupt"] = s.store.Stats().Corrupt
	}
	if s.queue != nil {
		qs := s.queue.Stats()
		robust["queue_depth"] = int64(s.queue.Depth())
		robust["queue_enqueued"] = qs.Enqueued
		robust["queue_deduped"] = qs.Deduped
		robust["queue_overflows"] = qs.Overflows
		robust["queue_replayed"] = qs.Replayed
		robust["queue_quarantined"] = qs.Quarantined
		robust["queue_completed"] = qs.Completed
		robust["queue_retries"] = qs.Retries
		robust["queue_exhausted"] = qs.Exhausted
	}
	out["robustness"] = robust
	if s.injector != nil {
		out["faults_injected"] = s.injector.Stats()
	}
	// Service identity and latency spread. The histograms carry
	// nanosecond values (HistSummary fields are ns); /metrics exposes
	// the same data in seconds for Prometheus.
	if !s.started.IsZero() {
		out["uptime_seconds"] = time.Since(s.started).Seconds()
	}
	out["build"] = buildInfo()
	out["latency"] = map[string]telemetry.HistSummary{
		"admission_ns": s.admitHist.Summary(),
		"solve_ns":     st.SolveTimes,
		"summarize_ns": st.SummarizeTimes,
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the Prometheus text exposition of every family
// registered on the server's registry — admission latency, solver and
// summarizer histograms, store and queue counters.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("vsdserve: writing response: %v", err)
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Registered explicitly (not via the net/http/pprof init side
	// effect) because this mux is not http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newHTTPServer wraps the mux in a server with read/write timeouts so
// a stuck or trickling client cannot wedge the daemon's connections.
// The generous write timeout covers long verifications.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

func main() {
	addr := flag.String("addr", ":8847", "listen address")
	storeDir := flag.String("store", "", "persistent summary store directory (empty = in-memory only)")
	maxLen := flag.Uint64("maxlen", 256, "maximum packet length considered")
	parallel := flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
	baseline := flag.String("baseline", "", "operator baseline pipeline for the latency-delta report")
	smoke := flag.String("smoke", "", "self-test: serve on an ephemeral port, submit every .click file in this directory, exit")
	solverTimeout := flag.Duration("solver-timeout", 0, "per-obligation wall budget (0 = none); exceeded obligations report unresolved, never a verdict")
	queueDir := flag.String("queue", "", "crash-safe submission queue journal directory (empty = synchronous, no journal)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests and queued jobs; undrained jobs stay journaled")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall deadline in the queue (0 = none)")
	watchdog := flag.Duration("watchdog", 0, "per-job verification watchdog budget (0 = off); interrupted obligations report unresolved, never a verdict")
	chaos := flag.String("chaos", "", "chaos smoke: run the fault-injection self-test over every .click file in this directory, exit")
	chaosSeed := flag.Uint64("chaos-seed", 0xc0ffee, "deterministic seed for -chaos")
	flag.Parse()

	if *chaos != "" {
		if err := runChaos(*chaos, *chaosSeed, *maxLen); err != nil {
			log.Fatal(err)
		}
		return
	}

	// A long-lived admission service opts into the process-wide clause
	// exchange: learnt clauses from one submission accelerate the next
	// when their element programs blast to the same CNF.
	opts := verify.Options{MinLen: packet.MinFrame, MaxLen: *maxLen, Parallelism: *parallel,
		SolverTimeout: *solverTimeout, SolverExchange: smt.SharedExchange()}
	s := &server{jobBudget: *watchdog}
	opts.Metrics = s.initTelemetry()
	if *storeDir != "" {
		store, err := verify.NewDiskStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		s.store = store
		opts.Store = store
	}
	s.verifier = verify.New(opts)
	if *baseline != "" {
		src, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		p, err := click.Parse(elements.Default(), string(src))
		if err != nil {
			log.Fatalf("vsdserve: baseline: %v", err)
		}
		rep, err := s.verifier.BoundedInstructions(p)
		if err != nil {
			log.Fatalf("vsdserve: baseline bound: %v", err)
		}
		s.baselineBound = &rep.MaxSteps
		log.Printf("vsdserve: baseline bound %d IR statements (%s)", rep.MaxSteps, *baseline)
	}

	if *smoke != "" {
		if err := runSmoke(s, *smoke); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *queueDir != "" {
		q, err := queue.Open(queue.Options{Dir: *queueDir, JobTimeout: *jobTimeout, Metrics: s.metrics})
		if err != nil {
			log.Fatal(err)
		}
		s.queue = q
		s.maxAttempts = 3 // the queue.Options default retry budget
		s.verdictLog = filepath.Join(*queueDir, "verdicts.jsonl")
		if qs := q.Stats(); qs.Replayed > 0 || qs.Quarantined > 0 {
			log.Printf("vsdserve: journal replayed %d job(s), quarantined %d", qs.Replayed, qs.Quarantined)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	workerCtx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	var workers sync.WaitGroup
	if s.queue != nil {
		workers.Add(1)
		go func() {
			defer workers.Done()
			s.queue.Run(workerCtx, s.process, s.exhausted)
		}()
	}

	srv := newHTTPServer(*addr, s.mux())
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("vsdserve: admission service listening on %s (maxlen %d)", *addr, *maxLen)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: stop accepting, let in-flight requests and queued
	// jobs finish within the budget. Whatever does not drain stays in
	// the journal for the next start — shutdown loses no submission.
	log.Printf("vsdserve: shutting down (drain budget %v)", *drainTimeout)
	shutCtx, cancelShut := context.WithTimeout(context.Background(), *drainTimeout)
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("vsdserve: http shutdown: %v", err)
	}
	cancelShut()
	if s.queue != nil {
		if s.queue.Drain(*drainTimeout) {
			log.Printf("vsdserve: queue drained")
		} else {
			log.Printf("vsdserve: %d job(s) still journaled; they replay on restart", s.queue.Depth())
		}
	}
	cancelWorkers()
	workers.Wait()
}

// runSmoke drives the server end to end over real HTTP: every .click
// file in dir is POSTed to a freshly bound ephemeral port, and every
// submission must come back certified.
func runSmoke(s *server, dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "*.click"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("smoke: no .click files in %s", dir)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", s.mux())
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	var hc http.Client
	res, err := hc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("smoke: healthz: %w", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: healthz returned %s", res.Status)
	}

	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := hc.Post(base+"/verify?name="+filepath.Base(name), "text/plain", strings.NewReader(string(src)))
		if err != nil {
			return fmt.Errorf("smoke: %s: %w", name, err)
		}
		body, rerr := io.ReadAll(res.Body)
		res.Body.Close()
		if rerr != nil {
			return fmt.Errorf("smoke: %s: reading response: %w", name, rerr)
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke: %s: %s: %s", name, res.Status, body)
		}
		var resp response
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("smoke: %s: bad response JSON: %w", name, err)
		}
		if resp.Error != "" {
			return fmt.Errorf("smoke: %s: verification error: %s", name, resp.Error)
		}
		if !resp.Certified {
			return fmt.Errorf("smoke: %s: submission rejected (crash_free=%v specs_failed=%v)",
				name, resp.CrashFree, resp.SpecsFailed)
		}
		fmt.Printf("smoke: %-16s certified, bound %d steps, %v\n",
			filepath.Base(name), resp.BoundSteps, time.Since(start).Round(time.Millisecond))
	}
	// The observability surface is part of the smoke contract: after
	// real submissions, /metrics must expose the admission and solver
	// histograms with nonzero counts, /stats must report uptime, and
	// /debug/pprof must answer.
	if err := checkEndpoint(&hc, base+"/metrics", func(body string) error {
		for _, family := range []string{
			"vsd_admission_latency_seconds", "vsd_solve_duration_seconds",
			"vsd_summarize_duration_seconds", "vsd_uptime_seconds",
		} {
			if !strings.Contains(body, family) {
				return fmt.Errorf("family %s missing", family)
			}
		}
		if !strings.Contains(body, "vsd_admission_latency_seconds_count") {
			return fmt.Errorf("admission histogram has no _count series")
		}
		return nil
	}); err != nil {
		return fmt.Errorf("smoke: /metrics: %w", err)
	}
	if err := checkEndpoint(&hc, base+"/stats", func(body string) error {
		for _, key := range []string{`"uptime_seconds"`, `"build"`, `"latency"`} {
			if !strings.Contains(body, key) {
				return fmt.Errorf("key %s missing", key)
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("smoke: /stats: %w", err)
	}
	if err := checkEndpoint(&hc, base+"/debug/pprof/cmdline", func(string) error { return nil }); err != nil {
		return fmt.Errorf("smoke: pprof: %w", err)
	}
	fmt.Println("smoke: /metrics, /stats, and /debug/pprof answered")
	fmt.Printf("smoke: all %d submission(s) certified\n", len(names))
	return nil
}

// checkEndpoint GETs url, requires 200, and hands the body to check.
func checkEndpoint(hc *http.Client, url string, check func(body string) error) error {
	res, err := hc.Get(url)
	if err != nil {
		return err
	}
	body, rerr := io.ReadAll(res.Body)
	res.Body.Close()
	if rerr != nil {
		return rerr
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", res.Status)
	}
	return check(string(body))
}
