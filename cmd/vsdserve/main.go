// Command vsdserve is the admission service the paper's element
// marketplace needs: a daemon that certifies a stream of submitted
// dataplane configurations. POST a Click config and get back an
// admission verdict — crash freedom, the worst-case instruction bound,
// the latency delta against the operator's baseline pipeline, and
// concrete witness packets for rejections — as JSON.
//
// All requests share one verifier: Step-1 summaries, incremental solver
// sessions, and (with -store) the persistent content-addressed summary
// store, so a submission reusing known element programs verifies
// without re-running the symbolic engine (DESIGN.md §7).
//
// Usage:
//
//	vsdserve [-addr :8847] [-store dir] [-maxlen N] [-parallel N]
//	         [-baseline config.click] [-smoke dir]
//
// Endpoints:
//
//	POST /verify    body: a Click configuration (text).
//	                response: admission verdict JSON (see verify.BatchVerdict),
//	                plus latency_delta_steps when -baseline is set and wall_ms.
//	GET  /stats     cumulative verifier statistics JSON.
//	GET  /healthz   liveness probe ("ok").
//
// -smoke dir runs the self-test used by `make serve-smoke`: the server
// starts on an ephemeral port, submits every .click file in dir to
// itself over HTTP, prints each verdict line, and exits non-zero if any
// request fails or any submission is rejected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/smt"
	"vsd/internal/verify"
)

// maxConfigBytes bounds request bodies; Click configurations are tiny.
const maxConfigBytes = 1 << 20

// server is the shared admission state.
type server struct {
	verifier *verify.Verifier
	store    *verify.DiskStore // nil without -store
	// baselineBound is the operator pipeline's instruction bound, for
	// the latency-delta assessment (nil without -baseline).
	baselineBound *int64
}

// response is one admission reply: the batch verdict plus service
// fields.
type response struct {
	verify.BatchVerdict
	// LatencyDeltaSteps is BoundSteps minus the -baseline pipeline's
	// bound: the "maximum increase in latency" the paper describes
	// operators quoting to customers.
	LatencyDeltaSteps *int64 `json:"latency_delta_steps,omitempty"`
	WallMS            int64  `json:"wall_ms"`
}

// jsonSubmission is the application/json request form of /verify.
type jsonSubmission struct {
	Name   string `json:"name"`
	Config string `json:"config"`
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a Click configuration to /verify", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxConfigBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.URL.Query().Get("name")
	config := string(body)
	// JSON submissions carry the name inline; malformed JSON is a client
	// error (400), distinct from a well-formed submission whose Click
	// configuration does not parse (422).
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var sub jsonSubmission
		if err := json.Unmarshal(body, &sub); err != nil {
			http.Error(w, "bad JSON submission: "+err.Error(), http.StatusBadRequest)
			return
		}
		if sub.Config == "" {
			http.Error(w, `bad JSON submission: "config" is required`, http.StatusBadRequest)
			return
		}
		config = sub.Config
		if sub.Name != "" {
			name = sub.Name
		}
	}
	if name == "" {
		name = "submission"
	}
	if strings.TrimSpace(config) == "" {
		http.Error(w, "empty submission", http.StatusBadRequest)
		return
	}
	p, err := click.Parse(elements.Default(), config)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	start := time.Now()
	verdict := s.verifier.Batch([]verify.BatchItem{{Name: name, Pipeline: p}})[0]
	resp := response{BatchVerdict: verdict, WallMS: time.Since(start).Milliseconds()}
	if s.baselineBound != nil && verdict.Error == "" {
		delta := verdict.BoundSteps - *s.baselineBound
		resp.LatencyDeltaSteps = &delta
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.verifier.Stats()
	out := map[string]any{
		"verifier": st,
		// Operator-facing counters under stable names: how much of the
		// stateful refinement was skipped (suspects left standing
		// because their bad-value search was truncated) and what the
		// sequence/induction engine has done (DESIGN.md §8).
		"counters": map[string]int{
			"refinement_truncated": st.RefinementTruncated,
			"seq_sequences":        st.SeqSequences,
			"seq_infeasible":       st.SeqInfeasible,
			"induction_depth":      st.InductionDepth,
			"induction_proved":     st.InductionProved,
			"induction_refuted":    st.InductionRefuted,
			"seq_spec_refuted":     st.SeqSpecRefuted,
		},
	}
	if s.store != nil {
		out["store"] = s.store.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("vsdserve: writing response: %v", err)
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func main() {
	addr := flag.String("addr", ":8847", "listen address")
	storeDir := flag.String("store", "", "persistent summary store directory (empty = in-memory only)")
	maxLen := flag.Uint64("maxlen", 256, "maximum packet length considered")
	parallel := flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
	baseline := flag.String("baseline", "", "operator baseline pipeline for the latency-delta report")
	smoke := flag.String("smoke", "", "self-test: serve on an ephemeral port, submit every .click file in this directory, exit")
	solverTimeout := flag.Duration("solver-timeout", 0, "per-obligation wall budget (0 = none); exceeded obligations report unresolved, never a verdict")
	flag.Parse()

	// A long-lived admission service opts into the process-wide clause
	// exchange: learnt clauses from one submission accelerate the next
	// when their element programs blast to the same CNF.
	opts := verify.Options{MinLen: packet.MinFrame, MaxLen: *maxLen, Parallelism: *parallel,
		SolverTimeout: *solverTimeout, SolverExchange: smt.SharedExchange()}
	s := &server{}
	if *storeDir != "" {
		store, err := verify.NewDiskStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		s.store = store
		opts.Store = store
	}
	s.verifier = verify.New(opts)
	if *baseline != "" {
		src, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		p, err := click.Parse(elements.Default(), string(src))
		if err != nil {
			log.Fatalf("vsdserve: baseline: %v", err)
		}
		rep, err := s.verifier.BoundedInstructions(p)
		if err != nil {
			log.Fatalf("vsdserve: baseline bound: %v", err)
		}
		s.baselineBound = &rep.MaxSteps
		log.Printf("vsdserve: baseline bound %d IR statements (%s)", rep.MaxSteps, *baseline)
	}

	if *smoke != "" {
		if err := runSmoke(s, *smoke); err != nil {
			log.Fatal(err)
		}
		return
	}

	log.Printf("vsdserve: admission service listening on %s (maxlen %d)", *addr, *maxLen)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

// runSmoke drives the server end to end over real HTTP: every .click
// file in dir is POSTed to a freshly bound ephemeral port, and every
// submission must come back certified.
func runSmoke(s *server, dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "*.click"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("smoke: no .click files in %s", dir)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.mux()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	var hc http.Client
	res, err := hc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("smoke: healthz: %w", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: healthz returned %s", res.Status)
	}

	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := hc.Post(base+"/verify?name="+filepath.Base(name), "text/plain", strings.NewReader(string(src)))
		if err != nil {
			return fmt.Errorf("smoke: %s: %w", name, err)
		}
		body, rerr := io.ReadAll(res.Body)
		res.Body.Close()
		if rerr != nil {
			return fmt.Errorf("smoke: %s: reading response: %w", name, rerr)
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke: %s: %s: %s", name, res.Status, body)
		}
		var resp response
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("smoke: %s: bad response JSON: %w", name, err)
		}
		if resp.Error != "" {
			return fmt.Errorf("smoke: %s: verification error: %s", name, resp.Error)
		}
		if !resp.Certified {
			return fmt.Errorf("smoke: %s: submission rejected (crash_free=%v specs_failed=%v)",
				name, resp.CrashFree, resp.SpecsFailed)
		}
		fmt.Printf("smoke: %-16s certified, bound %d steps, %v\n",
			filepath.Base(name), resp.BoundSteps, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("smoke: all %d submission(s) certified\n", len(names))
	return nil
}
