package main

// Handler-level tests for the admission daemon: before these, the
// daemon was only exercised end to end by -smoke, which drives the
// happy path exclusively. Here the mux is hit directly with the
// malformed traffic a public endpoint actually sees.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vsd/internal/verify"
)

func testServer() *server {
	return &server{verifier: verify.New(verify.Options{MinLen: 14, MaxLen: 48})}
}

const validConfig = `
	src :: InfiniteSource;
	src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
	chk[0] -> Discard; chk[1] -> Discard;`

func do(t *testing.T, s *server, method, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, req)
	return rec
}

func TestVerifyRejectsNonPOST(t *testing.T) {
	s := testServer()
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		rec := do(t, s, method, "/verify", "", "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /verify = %d, want 405", method, rec.Code)
		}
		if method == http.MethodGet && rec.Header().Get("Allow") != http.MethodPost {
			t.Errorf("405 without Allow header")
		}
	}
}

func TestVerifyRejectsMalformedJSON(t *testing.T) {
	s := testServer()
	cases := []struct {
		name, body string
	}{
		{"truncated object", `{"name": "x", "config": "src ::`},
		{"not json at all", `src :: InfiniteSource; src -> Discard;`},
		{"missing config", `{"name": "x"}`},
	}
	for _, c := range cases {
		rec := do(t, s, http.MethodPost, "/verify", "application/json", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (body: %s)", c.name, rec.Code, rec.Body.String())
		}
	}
}

func TestVerifyRejectsUnparsableConfig(t *testing.T) {
	s := testServer()
	rec := do(t, s, http.MethodPost, "/verify", "text/plain", "src :: NoSuchElement; src -> Discard;")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad config = %d, want 422", rec.Code)
	}
	rec = do(t, s, http.MethodPost, "/verify", "text/plain", "   ")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty body = %d, want 400", rec.Code)
	}
}

func TestVerifyAcceptsTextAndJSONSubmissions(t *testing.T) {
	s := testServer()
	rec := do(t, s, http.MethodPost, "/verify?name=t.click", "text/plain", validConfig)
	if rec.Code != http.StatusOK {
		t.Fatalf("text submission = %d: %s", rec.Code, rec.Body.String())
	}
	var textResp response
	if err := json.Unmarshal(rec.Body.Bytes(), &textResp); err != nil {
		t.Fatal(err)
	}
	if !textResp.Certified || textResp.Name != "t.click" {
		t.Errorf("text verdict: %+v", textResp.BatchVerdict)
	}

	body, _ := json.Marshal(jsonSubmission{Name: "j.click", Config: validConfig})
	rec = do(t, s, http.MethodPost, "/verify", "application/json", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("json submission = %d: %s", rec.Code, rec.Body.String())
	}
	var jsonResp response
	if err := json.Unmarshal(rec.Body.Bytes(), &jsonResp); err != nil {
		t.Fatal(err)
	}
	if !jsonResp.Certified || jsonResp.Name != "j.click" {
		t.Errorf("json verdict: %+v", jsonResp.BatchVerdict)
	}
	if jsonResp.Fingerprint != textResp.Fingerprint {
		t.Error("same pipeline, different fingerprints across encodings")
	}
}

func TestVerifyReportsInductionForStatefulPipelines(t *testing.T) {
	s := testServer()
	rec := do(t, s, http.MethodPost, "/verify?name=cnt.click", "text/plain", `
		src :: InfiniteSource;
		cnt :: Counter(SATURATE);
		src -> cnt -> Discard;`)
	if rec.Code != http.StatusOK {
		t.Fatalf("got %d: %s", rec.Code, rec.Body.String())
	}
	var resp response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Induction) != 1 || !resp.Induction[0].Proved {
		t.Fatalf("induction results missing from verdict: %+v", resp.BatchVerdict)
	}
}

func TestStatsExposesRefinementAndInductionCounters(t *testing.T) {
	s := testServer()
	// Drive a stateful submission so the induction counters move.
	if rec := do(t, s, http.MethodPost, "/verify", "text/plain", `
		src :: InfiniteSource;
		cnt :: Counter(SATURATE);
		src -> cnt -> Discard;`); rec.Code != http.StatusOK {
		t.Fatalf("submission failed: %d", rec.Code)
	}
	rec := do(t, s, http.MethodGet, "/stats", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var out struct {
		Counters map[string]int `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"refinement_truncated", "induction_proved", "induction_depth", "seq_sequences", "seq_spec_refuted"} {
		if _, ok := out.Counters[key]; !ok {
			t.Errorf("/stats counters missing %q", key)
		}
	}
	if out.Counters["induction_proved"] != 1 {
		t.Errorf("induction_proved = %d, want 1", out.Counters["induction_proved"])
	}
}

func TestHealthz(t *testing.T) {
	rec := do(t, testServer(), http.MethodGet, "/healthz", "", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}
