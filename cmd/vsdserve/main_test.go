package main

// Handler-level tests for the admission daemon: before these, the
// daemon was only exercised end to end by -smoke, which drives the
// happy path exclusively. Here the mux is hit directly with the
// malformed traffic a public endpoint actually sees.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vsd/internal/queue"
	"vsd/internal/verify"
)

func testServer() *server {
	return &server{verifier: verify.New(verify.Options{MinLen: 14, MaxLen: 48})}
}

const validConfig = `
	src :: InfiniteSource;
	src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
	chk[0] -> Discard; chk[1] -> Discard;`

func do(t *testing.T, s *server, method, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, req)
	return rec
}

func TestVerifyRejectsNonPOST(t *testing.T) {
	s := testServer()
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		rec := do(t, s, method, "/verify", "", "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /verify = %d, want 405", method, rec.Code)
		}
		if method == http.MethodGet && rec.Header().Get("Allow") != http.MethodPost {
			t.Errorf("405 without Allow header")
		}
	}
}

func TestVerifyRejectsMalformedJSON(t *testing.T) {
	s := testServer()
	cases := []struct {
		name, body string
	}{
		{"truncated object", `{"name": "x", "config": "src ::`},
		{"not json at all", `src :: InfiniteSource; src -> Discard;`},
		{"missing config", `{"name": "x"}`},
	}
	for _, c := range cases {
		rec := do(t, s, http.MethodPost, "/verify", "application/json", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (body: %s)", c.name, rec.Code, rec.Body.String())
		}
	}
}

func TestVerifyRejectsUnparsableConfig(t *testing.T) {
	s := testServer()
	rec := do(t, s, http.MethodPost, "/verify", "text/plain", "src :: NoSuchElement; src -> Discard;")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad config = %d, want 422", rec.Code)
	}
	rec = do(t, s, http.MethodPost, "/verify", "text/plain", "   ")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty body = %d, want 400", rec.Code)
	}
}

func TestVerifyAcceptsTextAndJSONSubmissions(t *testing.T) {
	s := testServer()
	rec := do(t, s, http.MethodPost, "/verify?name=t.click", "text/plain", validConfig)
	if rec.Code != http.StatusOK {
		t.Fatalf("text submission = %d: %s", rec.Code, rec.Body.String())
	}
	var textResp response
	if err := json.Unmarshal(rec.Body.Bytes(), &textResp); err != nil {
		t.Fatal(err)
	}
	if !textResp.Certified || textResp.Name != "t.click" {
		t.Errorf("text verdict: %+v", textResp.BatchVerdict)
	}

	body, _ := json.Marshal(jsonSubmission{Name: "j.click", Config: validConfig})
	rec = do(t, s, http.MethodPost, "/verify", "application/json", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("json submission = %d: %s", rec.Code, rec.Body.String())
	}
	var jsonResp response
	if err := json.Unmarshal(rec.Body.Bytes(), &jsonResp); err != nil {
		t.Fatal(err)
	}
	if !jsonResp.Certified || jsonResp.Name != "j.click" {
		t.Errorf("json verdict: %+v", jsonResp.BatchVerdict)
	}
	if jsonResp.Fingerprint != textResp.Fingerprint {
		t.Error("same pipeline, different fingerprints across encodings")
	}
}

func TestVerifyReportsInductionForStatefulPipelines(t *testing.T) {
	s := testServer()
	rec := do(t, s, http.MethodPost, "/verify?name=cnt.click", "text/plain", `
		src :: InfiniteSource;
		cnt :: Counter(SATURATE);
		src -> cnt -> Discard;`)
	if rec.Code != http.StatusOK {
		t.Fatalf("got %d: %s", rec.Code, rec.Body.String())
	}
	var resp response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Induction) != 1 || !resp.Induction[0].Proved {
		t.Fatalf("induction results missing from verdict: %+v", resp.BatchVerdict)
	}
}

func TestStatsExposesRefinementAndInductionCounters(t *testing.T) {
	s := testServer()
	// Drive a stateful submission so the induction counters move.
	if rec := do(t, s, http.MethodPost, "/verify", "text/plain", `
		src :: InfiniteSource;
		cnt :: Counter(SATURATE);
		src -> cnt -> Discard;`); rec.Code != http.StatusOK {
		t.Fatalf("submission failed: %d", rec.Code)
	}
	rec := do(t, s, http.MethodGet, "/stats", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var out struct {
		Counters map[string]int `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"refinement_truncated", "induction_proved", "induction_depth", "seq_sequences", "seq_spec_refuted"} {
		if _, ok := out.Counters[key]; !ok {
			t.Errorf("/stats counters missing %q", key)
		}
	}
	if out.Counters["induction_proved"] != 1 {
		t.Errorf("induction_proved = %d, want 1", out.Counters["induction_proved"])
	}
}

// queuedServer builds a server backed by a durable queue in a fresh
// journal directory (no worker running yet).
func queuedServer(t *testing.T, depth int) *server {
	t.Helper()
	dir := t.TempDir()
	q, err := queue.Open(queue.Options{Dir: dir, MaxDepth: depth, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer()
	s.queue = q
	s.maxAttempts = 3
	s.verdictLog = filepath.Join(dir, "verdicts.jsonl")
	return s
}

func TestVerifyRejectsOversizedBody(t *testing.T) {
	s := testServer()
	big := strings.Repeat("x", maxConfigBytes+1)
	rec := do(t, s, http.MethodPost, "/verify", "text/plain", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", rec.Code)
	}
}

func TestQueuedVerifyDeliversVerdictAndLogsIt(t *testing.T) {
	s := queuedServer(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.queue.Run(ctx, s.process, s.exhausted)

	rec := do(t, s, http.MethodPost, "/verify?name=q.click", "text/plain", validConfig)
	if rec.Code != http.StatusOK {
		t.Fatalf("queued submission = %d: %s", rec.Code, rec.Body.String())
	}
	var resp response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Certified || resp.Name != "q.click" {
		t.Errorf("queued verdict: %+v", resp.BatchVerdict)
	}
	// The verdict is durably logged under the submission's fingerprint.
	var rc struct {
		Key     string              `json:"key"`
		Verdict verify.BatchVerdict `json:"verdict"`
	}
	readLog := func() bool {
		data, err := os.ReadFile(s.verdictLog)
		if err != nil || len(data) == 0 {
			return false
		}
		if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(string(data)), "\n")[0]), &rc); err != nil {
			t.Fatal(err)
		}
		return true
	}
	deadline := time.Now().Add(5 * time.Second)
	for !readLog() {
		if time.Now().After(deadline) {
			t.Fatal("verdict log never written")
		}
		time.Sleep(time.Millisecond)
	}
	if rc.Key != resp.Fingerprint || !rc.Verdict.Certified {
		t.Errorf("verdict log: key %q verdict %+v", rc.Key, rc.Verdict)
	}
}

func TestOverloadReturns503WithRetryAfter(t *testing.T) {
	s := queuedServer(t, 1)
	// Fill the single slot directly; no worker runs, so it stays pending.
	if _, err := s.queue.Enqueue("occupied", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, http.MethodPost, "/verify", "text/plain", validConfig)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded queue = %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
}

// TestDrainRefusesNewWorkAndKeepsJournal is the graceful-shutdown
// contract at the handler level: after the drain starts, new
// submissions get an explicit 503, and whatever did not drain is still
// journaled for the next start.
func TestDrainRefusesNewWorkAndKeepsJournal(t *testing.T) {
	s := queuedServer(t, 8)
	if _, err := s.queue.Enqueue("stuck", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// No worker is running, so the drain must time out with the job
	// still pending.
	if s.queue.Drain(20 * time.Millisecond) {
		t.Fatal("drain reported success with a pending job and no worker")
	}
	rec := do(t, s, http.MethodPost, "/verify", "text/plain", validConfig)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining service = %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After header")
	}
	// Restart: the undrained job replays from the journal.
	q2, err := queue.Open(queue.Options{Dir: filepath.Dir(s.verdictLog)})
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Stats().Replayed; got != 1 {
		t.Fatalf("restart replayed %d job(s), want 1", got)
	}
}

func TestStatsExposesRobustnessCounters(t *testing.T) {
	s := queuedServer(t, 8)
	rec := do(t, s, http.MethodGet, "/stats", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var out struct {
		Robustness map[string]int64 `json:"robustness"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"panics_recovered", "watchdog_fired", "queue_depth",
		"queue_enqueued", "queue_replayed", "queue_quarantined", "queue_retries", "queue_exhausted"} {
		if _, ok := out.Robustness[key]; !ok {
			t.Errorf("/stats robustness missing %q", key)
		}
	}
}

// TestHTTPServerHasTimeouts pins the header/read/write timeouts a
// public daemon needs so one stuck client cannot wedge it.
func TestHTTPServerHasTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 {
		t.Fatalf("server missing timeouts: header=%v read=%v write=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout)
	}
}

func TestHealthz(t *testing.T) {
	rec := do(t, testServer(), http.MethodGet, "/healthz", "", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}
