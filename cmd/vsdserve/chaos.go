package main

// The -chaos smoke: the degradation ladder exercised end to end
// against the real service wiring (DESIGN.md §9). Three passes over
// the same corpus:
//
//  1. clean     — a fault-free serial run; its verdicts are the
//                 reference.
//  2. faulted   — the full service (durable queue, HTTP ingress,
//                 retries) with the fault injector wired into the
//                 summary store and the solver. Must crash nothing,
//                 contain every injected panic, and converge — via the
//                 queue's retry ladder — to verdicts byte-identical to
//                 the clean pass. Zero flips.
//  3. kill -9   — jobs journaled, the worker "killed" after one job,
//                 the journal reopened and replayed. The verdict log
//                 must converge to the same verdict set.
//
// Everything is deterministic for a given corpus and -chaos-seed:
// verification is serial (Parallelism 1, one queue worker) and every
// fault decision comes from the injector's seeded stream.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/faultinject"
	"vsd/internal/packet"
	"vsd/internal/queue"
	"vsd/internal/verify"
)

// chaosRates is the fixed fault script: frequent disk corruption plus
// a burst of solver faults. Disk faults never touch verdicts (they
// degrade to cache misses), so they run unbounded; solver faults are
// capped by chaosSolverBudget.
var chaosRates = faultinject.Rates{
	SolverPanic:   0.05,
	SolverUnknown: 0.05,
	TornWrite:     0.5,
	Stale:         0.25,
}

// chaosSolverBudget and chaosMaxAttempts carry the convergence proof:
// every degraded attempt consumes at least one budgeted solver fault
// (the only fault kind that can degrade a verdict), so at most
// chaosSolverBudget attempts can fail across the whole pass — strictly
// fewer than any one submission's retry budget. Every submission is
// therefore guaranteed a fault-free attempt, and the faulted pass must
// converge to the clean verdicts exactly.
const (
	chaosSolverBudget = 8
	chaosMaxAttempts  = chaosSolverBudget + 2
)

// chaosVerifier builds the serial verifier every chaos pass uses; a
// shared clause exchange or parallel workers would make fault draws
// order-dependent.
func chaosVerifier(maxLen uint64, store verify.SummaryStore, hook *faultinject.Injector) *verify.Verifier {
	opts := verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: 1, Store: store}
	if hook != nil {
		opts.SolverFaultHook = hook.SolverHook()
	}
	return verify.New(opts)
}

func loadCorpus(dir string) ([]jsonSubmission, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.click"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("chaos: no .click files in %s", dir)
	}
	subs := make([]jsonSubmission, 0, len(names))
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		subs = append(subs, jsonSubmission{Name: filepath.Base(name), Config: string(src)})
	}
	return subs, nil
}

// marshalVerdict is the byte-level comparison form of a verdict.
func marshalVerdict(v verify.BatchVerdict) string {
	blob, _ := json.Marshal(v)
	return string(blob)
}

func runChaos(dir string, seed, maxLen uint64) error {
	subs, err := loadCorpus(dir)
	if err != nil {
		return err
	}

	// Pass 1: clean reference verdicts.
	cleanStore, err := verify.NewDiskStore(mkChaosDir("store-clean"))
	if err != nil {
		return err
	}
	clean := &server{verifier: chaosVerifier(maxLen, cleanStore, nil)}
	cleanByName := make(map[string]string, len(subs))
	for _, sub := range subs {
		p, err := click.Parse(elements.Default(), sub.Config)
		if err != nil {
			return fmt.Errorf("chaos: %s: %v", sub.Name, err)
		}
		verdict := clean.admit(sub.Name, p).BatchVerdict
		cleanByName[sub.Name] = marshalVerdict(verdict)
		fmt.Printf("chaos: clean    %-16s certified=%v bound=%d\n", sub.Name, verdict.Certified, verdict.BoundSteps)
	}

	if err := chaosFaultedPass(subs, cleanByName, seed, maxLen); err != nil {
		return err
	}
	if err := chaosReplayPass(subs, cleanByName, maxLen); err != nil {
		return err
	}
	fmt.Printf("chaos: all %d submission(s) survived faults and replay with zero crashes and zero verdict flips (seed %#x)\n",
		len(subs), seed)
	return nil
}

// mkChaosDir allocates a scratch directory; chaos runs are throwaway.
func mkChaosDir(kind string) string {
	dir, err := os.MkdirTemp("", "vsd-chaos-"+kind+"-")
	if err != nil {
		panic(err)
	}
	return dir
}

// chaosFaultedPass runs the real service — queue, worker, HTTP — with
// the injector attached, and checks the ladder's contract.
func chaosFaultedPass(subs []jsonSubmission, cleanByName map[string]string, seed, maxLen uint64) error {
	in := faultinject.New(seed, chaosRates)
	in.SolverBudget = chaosSolverBudget
	disk, err := verify.NewDiskStore(mkChaosDir("store-fault"))
	if err != nil {
		return err
	}
	qdir := mkChaosDir("queue-fault")
	q, err := queue.Open(queue.Options{Dir: qdir, Seed: seed, MaxAttempts: chaosMaxAttempts,
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	s := &server{
		verifier:    chaosVerifier(maxLen, faultinject.WrapStore(in, disk), in),
		queue:       q,
		maxAttempts: chaosMaxAttempts,
		verdictLog:  filepath.Join(qdir, "verdicts.jsonl"),
		injector:    in,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); q.Run(ctx, s.process, s.exhausted) }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := newHTTPServer("", s.mux())
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	var hc http.Client
	for _, sub := range subs {
		payload, _ := json.Marshal(sub)
		res, err := hc.Post(base+"/verify", "application/json", bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("chaos: faulted %s: %w", sub.Name, err)
		}
		body, rerr := io.ReadAll(res.Body)
		res.Body.Close()
		if rerr != nil {
			return fmt.Errorf("chaos: faulted %s: reading response: %w", sub.Name, rerr)
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("chaos: faulted %s: %s: %s", sub.Name, res.Status, body)
		}
		var resp response
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("chaos: faulted %s: bad response JSON: %w", sub.Name, err)
		}
		got := marshalVerdict(resp.BatchVerdict)
		if got != cleanByName[sub.Name] {
			return fmt.Errorf("chaos: faulted %s: verdict flipped under faults\nclean:  %s\nfaulty: %s",
				sub.Name, cleanByName[sub.Name], got)
		}
		fmt.Printf("chaos: faulted  %-16s converged (attempts led to the clean verdict)\n", sub.Name)
	}

	// The ladder's accounting must balance: something was injected, and
	// every injected solver panic was contained by the verify layer —
	// the daemon is still here to check it.
	ist := in.Stats()
	if ist.Total() == 0 {
		return fmt.Errorf("chaos: injector fired no faults; raise the rates or change the seed (%#x)", seed)
	}
	vst := s.verifier.Stats()
	if vst.PanicsRecovered != int(ist.SolverPanics) {
		return fmt.Errorf("chaos: recovered %d panics for %d injected — a panic escaped or was double-counted",
			vst.PanicsRecovered, ist.SolverPanics)
	}
	qs := q.Stats()
	fmt.Printf("chaos: faulted pass injected %d fault(s) (%d solver panics contained), %d queue retrie(s)\n",
		ist.Total(), ist.SolverPanics, qs.Retries)
	cancel()
	<-done
	return nil
}

// chaosReplayPass simulates kill -9 mid-batch: every job journaled,
// one processed, the queue abandoned without drain, then reopened. The
// replayed run's verdict log must converge to the clean verdict set.
func chaosReplayPass(subs []jsonSubmission, cleanByName map[string]string, maxLen uint64) error {
	qdir := mkChaosDir("queue-replay")
	verdictLog := filepath.Join(qdir, "verdicts.jsonl")

	q1, err := queue.Open(queue.Options{Dir: qdir, BaseBackoff: time.Millisecond})
	if err != nil {
		return err
	}
	keyToName := map[string]string{}
	for _, sub := range subs {
		p, err := click.Parse(elements.Default(), sub.Config)
		if err != nil {
			return err
		}
		payload, _ := json.Marshal(sub)
		key := p.Fingerprint().String()
		keyToName[key] = sub.Name
		if _, err := q1.Enqueue(key, payload); err != nil {
			return fmt.Errorf("chaos: replay enqueue %s: %w", sub.Name, err)
		}
	}
	s1 := &server{verifier: chaosVerifier(maxLen, nil, nil), maxAttempts: 3, verdictLog: verdictLog}
	ctx1, cancel1 := context.WithCancel(context.Background())
	processed := 0
	q1.Run(ctx1, func(ctx context.Context, job *queue.Job) error {
		err := s1.process(ctx, job)
		if processed++; processed >= 1 {
			cancel1() // the "kill": the worker dies here, no drain, no close
		}
		return err
	}, s1.exhausted)
	cancel1()

	// Restart: a fresh queue over the same journal directory must
	// replay exactly the unprocessed jobs.
	q2, err := queue.Open(queue.Options{Dir: qdir, BaseBackoff: time.Millisecond})
	if err != nil {
		return err
	}
	if got, want := int(q2.Stats().Replayed), len(subs)-processed; got != want {
		return fmt.Errorf("chaos: replay recovered %d journaled job(s), want %d", got, want)
	}
	s2 := &server{verifier: chaosVerifier(maxLen, nil, nil), maxAttempts: 3, verdictLog: verdictLog}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); q2.Run(ctx2, s2.process, s2.exhausted) }()
	if !q2.Drain(time.Minute) {
		cancel2()
		return fmt.Errorf("chaos: replayed queue did not drain")
	}
	cancel2()
	<-done

	// The verdict log (pre-kill lines plus replayed lines) must cover
	// every submission with the clean run's exact verdict bytes.
	data, err := os.ReadFile(verdictLog)
	if err != nil {
		return fmt.Errorf("chaos: replay verdict log: %w", err)
	}
	final := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec verdictRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("chaos: replay verdict log line %q: %w", line, err)
		}
		final[keyToName[rec.Key]] = marshalVerdict(rec.Verdict)
	}
	for _, sub := range subs {
		got, ok := final[sub.Name]
		if !ok {
			return fmt.Errorf("chaos: replay lost %s: no verdict after restart", sub.Name)
		}
		if got != cleanByName[sub.Name] {
			return fmt.Errorf("chaos: replay %s: verdict diverged after restart\nclean:    %s\nreplayed: %s",
				sub.Name, cleanByName[sub.Name], got)
		}
	}
	fmt.Printf("chaos: replay pass killed the worker after %d job(s); restart replayed %d and converged\n",
		processed, len(subs)-processed)
	return nil
}
