package smt

import (
	"math/rand"
	"testing"

	"vsd/internal/bv"
	"vsd/internal/expr"
)

func checkSat(t *testing.T, s *Solver, cons []*expr.Expr) *expr.Assignment {
	t.Helper()
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("Check = %v, want sat (constraints: %v)", r, cons)
	}
	for _, c := range cons {
		if !expr.Eval(c, m).IsTrue() {
			t.Fatalf("model does not satisfy %s (model vars: %v)", c, m.Vars)
		}
	}
	return m
}

func checkUnsat(t *testing.T, s *Solver, cons []*expr.Expr) {
	t.Helper()
	if r, _ := s.Check(cons); r != Unsat {
		t.Fatalf("Check = %v, want unsat (constraints: %v)", r, cons)
	}
}

func TestCheckTrivial(t *testing.T) {
	s := New(Options{})
	checkSat(t, s, nil)
	checkSat(t, s, []*expr.Expr{expr.True()})
	checkUnsat(t, s, []*expr.Expr{expr.False()})
}

func TestCheckSimpleArith(t *testing.T) {
	s := New(Options{})
	x := expr.Var("x", 8)
	// x + 1 == 0  ->  x == 255
	m := checkSat(t, s, []*expr.Expr{expr.Eq(expr.Add(x, expr.Const(8, 1)), expr.Const(8, 0))})
	if m.Vars["x"].U != 255 {
		t.Errorf("x = %v, want 255", m.Vars["x"])
	}
	// x < 5 && x > 9 is unsat.
	checkUnsat(t, s, []*expr.Expr{
		expr.Ult(x, expr.Const(8, 5)),
		expr.Ult(expr.Const(8, 9), x),
	})
}

func TestIntervalFastPathDecides(t *testing.T) {
	s := New(Options{})
	x := expr.Var("x", 32)
	// The paper's stitched constraint shape: (x < 10) && (x >= 10).
	checkUnsat(t, s, []*expr.Expr{
		expr.Ult(x, expr.Const(32, 10)),
		expr.Not(expr.Ult(x, expr.Const(32, 10))),
	})
	st := s.Stats()
	if st.IntervalDecided+st.FoldedDecided == 0 {
		t.Errorf("expected the cheap passes to decide, stats = %+v", st)
	}
	if st.SatCalls != 0 {
		t.Errorf("SAT core reached unnecessarily, stats = %+v", st)
	}
}

func TestIntervalsDisabledStillCorrect(t *testing.T) {
	s := New(Options{DisableIntervals: true})
	x := expr.Var("x", 16)
	checkUnsat(t, s, []*expr.Expr{
		expr.Ult(x, expr.Const(16, 5)),
		expr.Ult(expr.Const(16, 9), x),
	})
	if s.Stats().SatCalls == 0 {
		t.Error("expected SAT call with intervals disabled")
	}
}

func TestMultiplication(t *testing.T) {
	s := New(Options{})
	x := expr.Var("x", 16)
	y := expr.Var("y", 16)
	// x * y == 77, x > 1, y > 1: factorization 7 * 11.
	m := checkSat(t, s, []*expr.Expr{
		expr.Eq(expr.Mul(x, y), expr.Const(16, 77)),
		expr.Ult(expr.Const(16, 1), x),
		expr.Ult(expr.Const(16, 1), y),
		expr.Ult(x, expr.Const(16, 77)),
		expr.Ult(y, expr.Const(16, 77)),
	})
	got := m.Vars["x"].U * m.Vars["y"].U & 0xffff
	if got != 77 {
		t.Errorf("x*y = %d, want 77", got)
	}
}

func TestDivisionSemantics(t *testing.T) {
	s := New(Options{DisableIntervals: true})
	x := expr.Var("x", 8)
	// x / 0 == 255 must be valid for all x: its negation is unsat.
	checkUnsat(t, s, []*expr.Expr{
		expr.Ne(expr.UDiv(x, expr.Const(8, 0)), expr.Const(8, 255)),
	})
	// x / 3 == 5 -> x in [15,17].
	m := checkSat(t, s, []*expr.Expr{
		expr.Eq(expr.UDiv(x, expr.Const(8, 3)), expr.Const(8, 5)),
	})
	if v := m.Vars["x"].U; v < 15 || v > 17 {
		t.Errorf("x = %d, want in [15,17]", v)
	}
}

func TestShiftBySymbolicAmount(t *testing.T) {
	s := New(Options{})
	x := expr.Var("x", 8)
	k := expr.Var("k", 8)
	// (1 << k) == 16 forces k == 4.
	m := checkSat(t, s, []*expr.Expr{
		expr.Eq(expr.Shl(expr.Const(8, 1), k), expr.Const(8, 16)),
	})
	if m.Vars["k"].U != 4 {
		t.Errorf("k = %v, want 4", m.Vars["k"])
	}
	// Shifting any x by >= 8 yields 0.
	checkUnsat(t, s, []*expr.Expr{
		expr.Ule(expr.Const(8, 8), k),
		expr.Ne(expr.Shl(x, k), expr.Const(8, 0)),
	})
}

func TestSignedComparison(t *testing.T) {
	s := New(Options{})
	x := expr.Var("x", 8)
	// x <s 0 && x >u 200: satisfiable (e.g. 201 = -55).
	m := checkSat(t, s, []*expr.Expr{
		expr.Bin(expr.OpSlt, x, expr.Const(8, 0)),
		expr.Ult(expr.Const(8, 200), x),
	})
	if m.Vars["x"].Signed() >= 0 {
		t.Errorf("x = %v not negative", m.Vars["x"])
	}
}

func TestArrayConstraints(t *testing.T) {
	s := New(Options{})
	pkt := expr.BaseArray("pkt")
	b0 := expr.Select(pkt, expr.Const(32, 0))
	b1 := expr.Select(pkt, expr.Const(32, 1))
	// pkt[0] == 0x45 && pkt[1] != pkt[0]
	m := checkSat(t, s, []*expr.Expr{
		expr.Eq(b0, expr.Const(8, 0x45)),
		expr.Ne(b1, b0),
	})
	if len(m.Arrays["pkt"]) < 2 || m.Arrays["pkt"][0] != 0x45 {
		t.Fatalf("array model = %v", m.Arrays["pkt"])
	}
	if m.Arrays["pkt"][1] == 0x45 {
		t.Error("pkt[1] should differ from pkt[0]")
	}
}

func TestArrayFunctionalConsistency(t *testing.T) {
	s := New(Options{})
	pkt := expr.BaseArray("pkt")
	i := expr.Var("i", 32)
	j := expr.Var("j", 32)
	ri := expr.Select(pkt, i)
	rj := expr.Select(pkt, j)
	// i == j but pkt[i] != pkt[j] must be unsat (Ackermann consistency).
	checkUnsat(t, s, []*expr.Expr{
		expr.Eq(i, j),
		expr.Ne(ri, rj),
	})
	// i != j allows different bytes.
	m := checkSat(t, s, []*expr.Expr{
		expr.Ne(i, j),
		expr.Ne(ri, rj),
		expr.Ult(i, expr.Const(32, 64)),
		expr.Ult(j, expr.Const(32, 64)),
	})
	iv, jv := m.Vars["i"].Int(), m.Vars["j"].Int()
	if iv == jv {
		t.Errorf("model has i == j == %d", iv)
	}
}

func TestSymbolicStoreThenSelect(t *testing.T) {
	s := New(Options{})
	pkt := expr.BaseArray("pkt")
	k := expr.Var("k", 32)
	// Write 0x42 at symbolic k, then require reading 7 at index 3 while
	// k == 3: contradiction.
	a := expr.Store(pkt, k, expr.Const(8, 0x42))
	read := expr.Select(a, expr.Const(32, 3))
	checkUnsat(t, s, []*expr.Expr{
		expr.Eq(k, expr.Const(32, 3)),
		expr.Eq(read, expr.Const(8, 7)),
	})
	// Without pinning k the read can see the base array.
	checkSat(t, s, []*expr.Expr{expr.Eq(read, expr.Const(8, 7))})
}

func TestUnknownOnBudgetExhaustion(t *testing.T) {
	s := New(Options{MaxConflicts: 1, DisableIntervals: true})
	// A multiplication puzzle the SAT core cannot finish in one conflict:
	// x*y == product of two primes with nontrivial factors required.
	x := expr.Var("x", 24)
	y := expr.Var("y", 24)
	cons := []*expr.Expr{
		expr.Eq(expr.Mul(x, y), expr.Const(24, 7919*6101&0xffffff)),
		expr.Ult(expr.Const(24, 1), x),
		expr.Ult(expr.Const(24, 1), y),
	}
	r, _ := s.Check(cons)
	if r == Sat {
		// A lucky first decision could satisfy it; accept Sat but verify.
		t.Skip("budget test got lucky; acceptable")
	}
	if r != Unknown && r != Unsat {
		t.Fatalf("Check = %v", r)
	}
}

// TestRandomFormulasAgainstEnumeration cross-checks the full solver stack
// against brute-force evaluation of random formulas over two 4-bit
// variables (256 assignments).
func TestRandomFormulasAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ops := []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpUDiv, expr.OpURem,
		expr.OpAnd, expr.OpOr, expr.OpXor, expr.OpShl, expr.OpLShr, expr.OpAShr}
	cmps := []expr.Op{expr.OpEq, expr.OpNe, expr.OpUlt, expr.OpUle, expr.OpSlt, expr.OpSle}
	var gen func(depth int) *expr.Expr
	gen = func(depth int) *expr.Expr {
		if depth == 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return expr.Const(4, uint64(r.Intn(16)))
			case 1:
				return expr.Var("x", 4)
			default:
				return expr.Var("y", 4)
			}
		}
		return expr.Bin(ops[r.Intn(len(ops))], gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 120; trial++ {
		cons := []*expr.Expr{}
		for n := 0; n < 1+r.Intn(3); n++ {
			cons = append(cons, expr.Bin(cmps[r.Intn(len(cmps))], gen(2), gen(2)))
		}
		want := false
		for xv := 0; xv < 16 && !want; xv++ {
			for yv := 0; yv < 16; yv++ {
				a := expr.NewAssignment()
				a.Vars["x"] = bv.New(4, uint64(xv))
				a.Vars["y"] = bv.New(4, uint64(yv))
				ok := true
				for _, c := range cons {
					if !expr.Eval(c, a).IsTrue() {
						ok = false
						break
					}
				}
				if ok {
					want = true
					break
				}
			}
		}
		for _, disable := range []bool{false, true} {
			s := New(Options{DisableIntervals: disable})
			got, m := s.Check(cons)
			if (got == Sat) != want {
				t.Fatalf("trial %d (intervals off=%v): Check = %v, brute force sat=%v, cons=%v",
					trial, disable, got, want, cons)
			}
			if got == Sat {
				for _, c := range cons {
					if !expr.Eval(c, m).IsTrue() {
						t.Fatalf("trial %d: model fails %s", trial, c)
					}
				}
			}
		}
	}
}

func TestWidePacketFieldQuery(t *testing.T) {
	// A realistic dataplane query: the IPv4 destination (4 bytes, big
	// endian) must be 10.1.2.3 and TTL 16 bits... (8-bit) must be >= 2.
	s := New(Options{})
	pkt := expr.BaseArray("pkt")
	dst := expr.SelectWide(pkt, expr.Const(32, 30), 4)
	ttl := expr.Select(pkt, expr.Const(32, 22))
	m := checkSat(t, s, []*expr.Expr{
		expr.Eq(dst, expr.Const(32, 0x0a010203)),
		expr.Ule(expr.Const(8, 2), ttl),
	})
	p := m.Arrays["pkt"]
	if len(p) < 34 {
		t.Fatalf("packet model too short: %d bytes", len(p))
	}
	if p[30] != 0x0a || p[31] != 0x01 || p[32] != 0x02 || p[33] != 0x03 {
		t.Errorf("dst bytes = % x, want 0a 01 02 03", p[30:34])
	}
	if p[22] < 2 {
		t.Errorf("ttl byte = %d, want >= 2", p[22])
	}
}
