package smt

import (
	"math/bits"
	"sync"

	"vsd/internal/bv"
	"vsd/internal/expr"
)

// interval is an inclusive unsigned range [Lo, Hi] of values of some
// width. Intervals never wrap; analyses that could wrap return the full
// range instead. The analysis is sound for refutation: if any constraint
// evaluates to the definitely-false interval, the conjunction is
// unsatisfiable.
type interval struct {
	Lo, Hi uint64
}

func fullRange(w bv.Width) interval { return interval{0, w.Mask()} }

func single(u uint64) interval { return interval{u, u} }

func (iv interval) isSingle() bool { return iv.Lo == iv.Hi }

// intersect returns the intersection and whether it is non-empty.
func (iv interval) intersect(o interval) (interval, bool) {
	lo, hi := max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)
	return interval{lo, hi}, lo <= hi
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// intervalAnalysis holds per-variable refinements discovered from the
// conjuncts of a query.
// Refinements are keyed by leaf node: KVar nodes and KSelect nodes
// (packet-byte reads). Treating each select as an independent
// pseudo-variable ignores aliasing between reads, which over-approximates
// the solution set — sound for the Unsat answer, and exactly the case
// (byte-compare chains from classifiers and parsers) that dominates the
// symbolic executor's pruning queries. The Sat fast path stays restricted
// to select-free formulas, where no aliasing exists.
type intervalAnalysis struct {
	leaves  map[*expr.Expr]interval
	memo    map[*expr.Expr]interval
	changed bool // set by narrow when some range shrinks
}

// iaPool recycles analyses: one runs per solver query, and the two maps
// were a measurable share of per-query allocation churn.
var iaPool = sync.Pool{New: func() any {
	return &intervalAnalysis{leaves: map[*expr.Expr]interval{}, memo: map[*expr.Expr]interval{}}
}}

func newIntervalAnalysis() *intervalAnalysis {
	ia := iaPool.Get().(*intervalAnalysis)
	clear(ia.leaves)
	clear(ia.memo)
	ia.changed = false
	return ia
}

// rangeOf computes a sound over-approximation of e's value range given
// the current variable refinements.
func (ia *intervalAnalysis) rangeOf(e *expr.Expr) interval {
	if iv, ok := ia.memo[e]; ok {
		return iv
	}
	iv := ia.computeRange(e)
	ia.memo[e] = iv
	return iv
}

func (ia *intervalAnalysis) computeRange(e *expr.Expr) interval {
	w := e.Width()
	full := fullRange(w)
	switch e.Kind {
	case expr.KConst:
		return single(e.Val.U)
	case expr.KVar:
		if iv, ok := ia.leaves[e]; ok {
			return iv
		}
		return full
	case expr.KSelect:
		if iv, ok := ia.leaves[e]; ok {
			return iv
		}
		return interval{0, 0xff}
	case expr.KNot:
		a := ia.rangeOf(e.A)
		return interval{w.Mask() - a.Hi, w.Mask() - a.Lo}
	case expr.KNeg:
		a := ia.rangeOf(e.A)
		if a.isSingle() {
			return single(bv.Neg(bv.New(w, a.Lo)).U)
		}
		return full
	case expr.KZExt:
		return ia.rangeOf(e.A)
	case expr.KSExt:
		a := ia.rangeOf(e.A)
		srcW := e.A.Width()
		if a.Hi < uint64(1)<<(srcW-1) { // provably non-negative
			return a
		}
		return full
	case expr.KTrunc, expr.KExtract:
		if e.Kind == expr.KExtract && e.Lo != 0 {
			a := ia.rangeOf(e.A)
			if a.isSingle() {
				return single(bv.Extract(bv.New(e.A.Width(), a.Lo), e.Lo, w).U)
			}
			return full
		}
		a := ia.rangeOf(e.A)
		if a.Hi <= w.Mask() {
			return a
		}
		return full
	case expr.KIte:
		c := ia.rangeOf(e.Cond)
		if c == single(1) {
			return ia.rangeOf(e.A)
		}
		if c == single(0) {
			return ia.rangeOf(e.B)
		}
		a, b := ia.rangeOf(e.A), ia.rangeOf(e.B)
		return interval{min64(a.Lo, b.Lo), max64(a.Hi, b.Hi)}
	case expr.KBin:
		a, b := ia.rangeOf(e.A), ia.rangeOf(e.B)
		return binRange(e.Op, w, a, b)
	}
	return full
}

func binRange(op expr.Op, w bv.Width, a, b interval) interval {
	full := fullRange(w)
	switch op {
	case expr.OpAdd:
		hi, carry := bits.Add64(a.Hi, b.Hi, 0)
		if carry == 0 && hi <= w.Mask() {
			return interval{a.Lo + b.Lo, hi}
		}
		return full
	case expr.OpSub:
		if a.Lo >= b.Hi {
			return interval{a.Lo - b.Hi, a.Hi - b.Lo}
		}
		return full
	case expr.OpMul:
		hiHi, hiLo := bits.Mul64(a.Hi, b.Hi)
		if hiHi == 0 && hiLo <= w.Mask() {
			return interval{a.Lo * b.Lo, hiLo}
		}
		return full
	case expr.OpUDiv:
		if b.Lo > 0 {
			return interval{a.Lo / b.Hi, a.Hi / b.Lo}
		}
		return full // divisor may be zero -> all-ones possible
	case expr.OpURem:
		if b.Lo > 0 {
			return interval{0, min64(a.Hi, b.Hi-1)}
		}
		return full
	case expr.OpAnd:
		return interval{0, min64(a.Hi, b.Hi)}
	case expr.OpOr:
		hi, carry := bits.Add64(a.Hi, b.Hi, 0)
		if carry != 0 || hi > w.Mask() {
			hi = w.Mask()
		}
		return interval{max64(a.Lo, b.Lo), hi}
	case expr.OpXor:
		hi, carry := bits.Add64(a.Hi, b.Hi, 0)
		if carry != 0 || hi > w.Mask() {
			hi = w.Mask()
		}
		return interval{0, hi}
	case expr.OpShl:
		if b.isSingle() && b.Lo < 64 && a.Hi <= w.Mask()>>b.Lo {
			return interval{a.Lo << b.Lo, a.Hi << b.Lo}
		}
		return full
	case expr.OpLShr:
		if b.isSingle() {
			if b.Lo >= uint64(w) {
				return single(0)
			}
			return interval{a.Lo >> b.Lo, a.Hi >> b.Lo}
		}
		return interval{0, a.Hi}
	case expr.OpAShr:
		return full
	case expr.OpEq:
		if a.isSingle() && b.isSingle() {
			if a.Lo == b.Lo {
				return single(1)
			}
			return single(0)
		}
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return single(0)
		}
		return interval{0, 1}
	case expr.OpNe:
		eq := binRange(expr.OpEq, w, a, b)
		if eq.isSingle() {
			return single(1 - eq.Lo)
		}
		return interval{0, 1}
	case expr.OpUlt:
		if a.Hi < b.Lo {
			return single(1)
		}
		if a.Lo >= b.Hi {
			return single(0)
		}
		return interval{0, 1}
	case expr.OpUle:
		if a.Hi <= b.Lo {
			return single(1)
		}
		if a.Lo > b.Hi {
			return single(0)
		}
		return interval{0, 1}
	case expr.OpSlt, expr.OpSle:
		return interval{0, 1}
	}
	return full
}

// refineFromAtom tightens variable ranges using simple atom shapes:
// comparisons between a (possibly zero-extended) variable and a constant.
// It returns false if a refinement empties some variable's range, i.e.
// the conjunction is unsatisfiable.
func (ia *intervalAnalysis) refineFromAtom(atom *expr.Expr, positive bool) bool {
	if atom.Kind == expr.KNot {
		return ia.refineFromAtom(atom.A, !positive)
	}
	if atom.Kind == expr.KVar && atom.Width() == 1 {
		if positive {
			return ia.narrow(atom, single(1))
		}
		return ia.narrow(atom, single(0))
	}
	if atom.Kind != expr.KBin {
		return true
	}
	// Identify leaf-vs-const shape on either side.
	leaf, c, varLeft, ok := splitLeafConst(atom.A, atom.B)
	if !ok {
		return true
	}
	op := atom.Op
	if !positive {
		// Negate the comparison.
		switch op {
		case expr.OpEq:
			op = expr.OpNe
		case expr.OpNe:
			op = expr.OpEq
		case expr.OpUlt: // !(a < b) -> b <= a
			op = expr.OpUle
			varLeft = !varLeft
		case expr.OpUle: // !(a <= b) -> b < a
			op = expr.OpUlt
			varLeft = !varLeft
		default:
			return true
		}
	}
	switch op {
	case expr.OpEq:
		return ia.narrow(leaf, single(c))
	case expr.OpNe:
		if iv, okv := ia.leaves[leaf]; okv && iv.isSingle() && iv.Lo == c {
			return false
		}
		return true
	case expr.OpUlt:
		if varLeft { // x < c
			if c == 0 {
				return false
			}
			return ia.narrow(leaf, interval{0, c - 1})
		}
		// c < x
		if c == ^uint64(0) {
			return false
		}
		return ia.narrow(leaf, interval{c + 1, ^uint64(0)})
	case expr.OpUle:
		if varLeft { // x <= c
			return ia.narrow(leaf, interval{0, c})
		}
		return ia.narrow(leaf, interval{c, ^uint64(0)})
	}
	return true
}

// splitLeafConst recognizes (leaf, const) or (zext leaf, const) pairs in
// either operand order, where a leaf is a variable or a packet-byte
// select. It returns the leaf node, the constant, and whether the leaf
// is the left operand.
func splitLeafConst(a, b *expr.Expr) (leaf *expr.Expr, c uint64, varLeft, ok bool) {
	if n, okv := asLeaf(a); okv {
		if v, okc := b.IsConst(); okc {
			return n, v.U, true, true
		}
	}
	if n, okv := asLeaf(b); okv {
		if v, okc := a.IsConst(); okc {
			return n, v.U, false, true
		}
	}
	return nil, 0, false, false
}

func asLeaf(e *expr.Expr) (*expr.Expr, bool) {
	if e.Kind == expr.KVar || e.Kind == expr.KSelect {
		return e, true
	}
	if e.Kind == expr.KZExt && (e.A.Kind == expr.KVar || e.A.Kind == expr.KSelect) {
		return e.A, true
	}
	return nil, false
}

func (ia *intervalAnalysis) narrow(leaf *expr.Expr, iv interval) bool {
	cur, ok := ia.leaves[leaf]
	if !ok {
		cur = fullRange(leaf.Width())
	}
	nw, nonEmpty := cur.intersect(iv)
	if !nonEmpty {
		return false
	}
	if nw != cur {
		ia.leaves[leaf] = nw
		ia.memo = map[*expr.Expr]interval{} // ranges changed; drop memo
		ia.changed = true
	}
	return true
}

// intervalVerdict is the outcome of the interval pre-pass.
type intervalVerdict int8

const (
	intervalMaybe intervalVerdict = iota
	intervalUnsat
	intervalSat // only reported for select-free formulas
)

// preAnalyze runs the interval pre-pass over the conjunction of atoms.
// It may decide Unsat (some atom definitely false under refinements) or,
// for select-free formulas, Sat (every atom definitely true), producing
// a model from the refined ranges.
func preAnalyze(atoms []*expr.Expr) (intervalVerdict, *expr.Assignment) {
	ia := newIntervalAnalysis()
	defer iaPool.Put(ia)
	// Refine to fixpoint (ranges only shrink; cap rounds defensively).
	for round := 0; round < 8; round++ {
		ia.changed = false
		for _, a := range atoms {
			if !ia.refineFromAtom(a, true) {
				return intervalUnsat, nil
			}
		}
		if !ia.changed {
			break
		}
	}
	allTrue := true
	hasSelect := false
	for _, a := range atoms {
		if len(expr.SelectsOf(a, nil)) > 0 {
			hasSelect = true
		}
		switch ia.rangeOf(a) {
		case single(0):
			return intervalUnsat, nil
		case single(1):
		default:
			allTrue = false
		}
	}
	if allTrue && !hasSelect {
		// Every atom holds for all values in the refined ranges, so any
		// point works: take each variable's low endpoint.
		asn := expr.NewAssignment()
		var vars []*expr.Expr
		for _, a := range atoms {
			vars = expr.Vars(a, vars)
		}
		for _, v := range vars {
			iv, ok := ia.leaves[v]
			if !ok {
				iv = fullRange(v.Width())
			}
			asn.Vars[v.Name] = bv.New(v.Width(), iv.Lo)
		}
		return intervalSat, asn
	}
	return intervalMaybe, nil
}
