// Package smt implements the constraint solver behind the dataplane
// verifier: a quantifier-free bitvector (QF_BV) decision procedure with
// byte-array (packet) support.
//
// The pipeline is the classical eager one:
//
//  1. an interval/constant pre-analysis that decides many queries
//     produced by segment stitching without touching the SAT core;
//  2. Ackermann-style elimination of packet-array reads;
//  3. bit-blasting of the remaining bitvector formula to CNF;
//  4. a CDCL SAT solver (two-watched-literal propagation, first-UIP
//     conflict analysis, VSIDS-style activities, phase saving, geometric
//     restarts);
//  5. model reconstruction back to bitvector variables and packet bytes.
//
// This file implements the SAT core. It is deliberately self-contained:
// literals, clauses and the trail use the MiniSat conventions, which keeps
// the implementation auditable against the literature.
package smt

// A Lit is a literal: variable index shifted left once, low bit = negation.
type Lit int32

// MkLit builds a literal for variable v (0-based); neg selects ¬v.
func MkLit(v int32, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int32 { return int32(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

// lbool follows the MiniSat encoding: true and false differ only in the
// low bit, so value(l) is a single xor with the literal's sign — the
// hottest operation in unit propagation. The assignment array stores
// only lTrue/lFalse/lUndef; xor against a negated literal can surface
// lUndef as 3, so undefined results must be tested with >= lUndef (or by
// falling through a lTrue/lFalse switch), never ==.
type lbool uint8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// SatResult is the verdict of a SAT call.
type SatResult int8

// SAT solver verdicts.
const (
	SatUnknown SatResult = iota
	SatSat
	SatUnsat
)

func (r SatResult) String() string {
	switch r {
	case SatSat:
		return "sat"
	case SatUnsat:
		return "unsat"
	}
	return "unknown"
}

// SatSolver is a CDCL SAT solver. The zero value is not usable; call
// NewSatSolver.
type SatSolver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assign    []lbool // indexed by variable
	level     []int32
	reason    []*clause
	trail     []Lit
	trailLim  []int32
	qhead     int
	activity  []float64
	varInc    float64
	claInc    float64
	polarity  []bool // phase saving
	order     *varHeap
	seen      []bool
	ok        bool // false once a top-level conflict is found
	conflicts int64
	decisions int64
	propags   int64

	// MaxConflicts bounds the search; <=0 means unbounded. When the
	// budget is exhausted Solve returns SatUnknown.
	MaxConflicts int64
}

// NewSatSolver returns an empty solver.
func NewSatSolver() *SatSolver {
	s := &SatSolver{varInc: 1, claInc: 1, ok: true}
	s.order = &varHeap{act: &s.activity}
	return s
}

// NewVar introduces a fresh variable and returns its index.
func (s *SatSolver) NewVar() int32 {
	v := int32(len(s.assign))
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables allocated.
func (s *SatSolver) NumVars() int { return len(s.assign) }

// NumLearnts returns the number of learnt clauses currently retained.
// Incremental sessions report this as "clauses reused": conflict clauses
// carried into a later assumption solve.
func (s *SatSolver) NumLearnts() int { return len(s.learnts) }

// Stats returns the number of decisions, propagations and conflicts seen.
func (s *SatSolver) Stats() (decisions, propagations, conflicts int64) {
	return s.decisions, s.propags, s.conflicts
}

func (s *SatSolver) value(l Lit) lbool { return s.assign[l.Var()] ^ lbool(l&1) }

// AddClause adds a clause; it returns false if the formula is already
// unsatisfiable at the top level. Clauses may be added between Solve
// calls (the incremental Session does); the trail is first rewound to
// level 0 so simplification never consults stale search assignments.
// The solver takes ownership of the literal slice (bit-blasting emits
// millions of small clauses; the in-place simplify avoids a second
// allocation per clause).
func (s *SatSolver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Simplify: remove duplicates and false literals; detect tautology.
	out := lits[:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false
			}
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Flip() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		if conf := s.propagate(); conf != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

func (s *SatSolver) watchClause(c *clause) {
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], watcher{c, c.lits[0]})
}

func (s *SatSolver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = lbool(l & 1) // positive literal -> lTrue(0), negated -> lFalse(1)
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *SatSolver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propags++
		pf := p.Flip()
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			lits := c.lits
			if lits[0] == pf {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Flip()] = append(s.watches[lits[1].Flip()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(first) == lFalse {
				// Conflict: keep the remaining watchers, restore and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *SatSolver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *SatSolver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= int(s.trailLim[lvl]); i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *SatSolver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *SatSolver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *SatSolver) analyze(conf *clause) ([]Lit, int32) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conf
	for {
		s.bumpClause(c)
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
		// Move p to lits[0] position semantics: reason clauses always have
		// the implied literal at index 0, so skipping index 0 is correct.
	}
	learnt[0] = p.Flip()
	// Compute backtrack level: max level among learnt[1:].
	bt := int32(0)
	maxI := 1
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] > bt {
			bt = s.level[learnt[i].Var()]
			maxI = i
		}
	}
	if len(learnt) > 1 {
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

func (s *SatSolver) record(learnt []Lit) {
	switch len(learnt) {
	case 1:
		s.enqueue(learnt[0], nil)
	default:
		c := &clause{lits: learnt, learnt: true, act: s.claInc}
		s.learnts = append(s.learnts, c)
		s.watchClause(c)
		s.enqueue(learnt[0], c)
	}
}

// reduceDB removes half of the learnt clauses with lowest activity.
func (s *SatSolver) reduceDB() {
	if len(s.learnts) < 100 {
		return
	}
	// Partial selection: keep clauses above median activity or binary.
	sum := 0.0
	for _, c := range s.learnts {
		sum += c.act
	}
	lim := sum / float64(len(s.learnts))
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || c.act >= lim || s.isReason(c) {
			kept = append(kept, c)
		} else {
			c.deleted = true
		}
	}
	s.learnts = kept
}

func (s *SatSolver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == c
}

// Solve runs the CDCL search. assumptions, if any, are enqueued as
// level-1+ decisions first (used for incremental queries).
func (s *SatSolver) Solve(assumptions ...Lit) SatResult {
	if !s.ok {
		return SatUnsat
	}
	s.cancelUntil(0)
	restartLimit := int64(100)
	conflictsAtStart := s.conflicts
	learntLimit := len(s.clauses)/3 + 100
	for {
		conf := s.propagate()
		if conf != nil {
			s.conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return SatUnsat
			}
			learnt, bt := s.analyze(conf)
			s.cancelUntil(bt)
			s.record(learnt)
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}
		if s.MaxConflicts > 0 && s.conflicts-conflictsAtStart > s.MaxConflicts {
			s.cancelUntil(0)
			return SatUnknown
		}
		if s.conflicts-conflictsAtStart > restartLimit {
			restartLimit = restartLimit*3/2 + 50
			s.cancelUntil(0)
			continue
		}
		if len(s.learnts) > learntLimit {
			learntLimit = learntLimit*11/10 + 10
			s.reduceDB()
		}
		// Re-apply assumptions under the current trail.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: open an empty decision level so the
				// index keeps advancing.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				return SatUnsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.enqueue(a, nil)
			}
			continue
		}
		// Decide.
		v := s.pickBranchVar()
		if v < 0 {
			return SatSat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(MkLit(v, !s.polarity[v]), nil)
	}
}

func (s *SatSolver) pickBranchVar() int32 {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// ModelValue returns the assignment of variable v after a Sat answer.
// Unassigned variables (possible after elimination) read as false.
func (s *SatSolver) ModelValue(v int32) bool { return s.assign[v] == lTrue }

// varHeap is a max-heap on variable activity with lazy deletion. The
// position index is a dense slice (variables are small consecutive
// integers): heap maintenance runs on every propagate/backtrack cycle,
// and a map here dominated whole-verification profiles.
type varHeap struct {
	act   *[]float64
	items []int32
	pos   []int32 // pos[v] = index of v in items, -1 when absent
}

func (h *varHeap) less(a, b int32) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) push(v int32) {
	for int32(len(h.pos)) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.items = append(h.items, v)
	h.pos[v] = int32(len(h.items) - 1)
	h.up(len(h.items) - 1)
}

func (h *varHeap) pop() (int32, bool) {
	if len(h.items) == 0 {
		return -1, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

func (h *varHeap) update(v int32) {
	if int32(len(h.pos)) > v && h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		h.pos[h.items[i]] = int32(i)
		h.pos[h.items[p]] = int32(p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && h.less(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		h.pos[h.items[i]] = int32(i)
		h.pos[h.items[m]] = int32(m)
		i = m
	}
}
