// Package smt implements the constraint solver behind the dataplane
// verifier: a quantifier-free bitvector (QF_BV) decision procedure with
// byte-array (packet) support.
//
// The pipeline is the classical eager one:
//
//  1. an interval/constant pre-analysis that decides many queries
//     produced by segment stitching without touching the SAT core;
//  2. a word-level equality-substitution pass that propagates var=const
//     and var=var atoms through the remaining atoms;
//  3. Ackermann-style elimination of packet-array reads;
//  4. bit-blasting of the remaining bitvector formula to CNF through a
//     structurally-hashed gate cache;
//  5. a CDCL SAT solver (two-watched-literal propagation with dedicated
//     binary-clause watch lists, first-UIP conflict analysis with
//     recursive learnt-clause minimization, VSIDS-style activities,
//     phase saving, LBD-aware clause-database reduction, Luby restarts);
//  6. model reconstruction back to bitvector variables and packet bytes.
//
// This file implements the SAT core. It is deliberately self-contained:
// literals, clauses and the trail use the MiniSat conventions, which keeps
// the implementation auditable against the literature.
//
// Storage is arena-based: clause headers live in one flat slice, their
// literals in another, and every clause reference is an int32 index
// (cref). Nothing in the clause database holds a pointer, which keeps
// the GC out of propagation entirely and halves watcher size versus a
// pointer-based layout — unit propagation is memory-bound at
// verification scale, so locality here is worth more than any heuristic
// tweak.
package smt

import (
	"sort"
	"sync/atomic"
	"time"
)

// A Lit is a literal: variable index shifted left once, low bit = negation.
type Lit int32

// MkLit builds a literal for variable v (0-based); neg selects ¬v.
func MkLit(v int32, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int32 { return int32(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

// lbool follows the MiniSat encoding: true and false differ only in the
// low bit, so value(l) is a single xor with the literal's sign — the
// hottest operation in unit propagation. The assignment array stores
// only lTrue/lFalse/lUndef; xor against a negated literal can surface
// lUndef as 3, so undefined results must be tested with >= lUndef (or by
// falling through a lTrue/lFalse switch), never ==.
type lbool uint8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

// cref indexes a clause header in SatSolver.cdb; crefNil means "no
// clause" (decision and assumption reasons).
type cref int32

const crefNil cref = -1

// clause is a header into the literal arena: the clause's literals are
// SatSolver.larena[off : off+n]. Headers are plain values in a flat
// slice; code must never hold a *clause across an append to cdb.
type clause struct {
	off     int32
	n       int32
	act     float32
	lbd     int32 // literal-block distance ("glue"); learnt clauses only
	learnt  bool
	deleted bool
}

// watcher is a two-watched-literal entry. blocker is a literal whose
// truth satisfies the clause without touching clause memory.
type watcher struct {
	c       cref
	blocker Lit
}

// binWatch is a binary-clause watch: when the watched literal becomes
// false, other is implied directly — no clause lookup, no search for a
// replacement watch. The cref is only needed to record the implication
// reason or report a conflict.
type binWatch struct {
	other Lit
	c     cref
}

// SatResult is the verdict of a SAT call.
type SatResult int8

// SAT solver verdicts.
const (
	SatUnknown SatResult = iota
	SatSat
	SatUnsat
)

func (r SatResult) String() string {
	switch r {
	case SatSat:
		return "sat"
	case SatUnsat:
		return "unsat"
	}
	return "unknown"
}

// SatCounters is a snapshot of the core's work counters. Callers that
// interleave solves on a shared instance (incremental sessions) subtract
// snapshots to attribute work to individual queries.
type SatCounters struct {
	Decisions     int64
	Propagations  int64
	BinaryProps   int64 // propagations served by the binary watch lists
	Conflicts     int64
	Restarts      int64
	MinimizedLits int64 // literals removed by recursive learnt-clause minimization
	LearntLits    int64 // literals in learnt clauses after minimization
	Learnts       int64 // learnt clauses recorded
	GlueSum       int64 // sum of learnt-clause LBDs at recording time
	LowGlue       int64 // learnt clauses recorded with LBD <= 2 ("glue" clauses)
	ClausesAdded  int64 // problem clauses accepted by AddClause (incl. units)
	AssumLevels   int64 // assumption literals passed to Solve, summed

	// Preprocessing (preprocess.go).
	PreprocessRuns   int64
	VarsEliminated   int64 // variables removed by bounded variable elimination
	ClausesSubsumed  int64 // clauses deleted by (backward) subsumption
	LitsStrengthened int64 // literals removed by self-subsumption strengthening

	// Clause exchange (exchange.go).
	ClausesPublished int64 // low-glue learnt clauses offered to the exchange
	ClausesImported  int64 // foreign learnt clauses attached by ImportLearnt
}

// SatSolver is a CDCL SAT solver. The zero value is not usable; call
// NewSatSolver.
type SatSolver struct {
	cdb     []clause // clause headers, problem and learnt
	larena  []Lit    // literal arena backing every clause
	clauses []cref
	learnts []cref

	watches    [][]watcher // indexed by literal; clauses of length >= 3
	binWatches [][]binWatch

	assign     []lbool // indexed by variable
	level      []int32
	reason     []cref
	trail      []Lit
	trailLim   []int32
	qhead      int
	activity   []float64
	varInc     float64
	claInc     float64
	polarity   []bool // phase saving
	order      *varHeap
	orderStale bool // heap dropped by a bulk cancel; rebuild before deciding
	seen       []bool
	ok         bool // false once a top-level conflict is found

	// Conflict-analysis scratch (reused across conflicts).
	learntBuf    []Lit
	analyzeStack []Lit
	importBuf    []Lit // ImportLearnt scratch (exchange clauses are shared)
	toClear      []int32
	lbdSeen      []int64 // per-level stamp for LBD computation
	lbdStamp     int64

	cnt SatCounters

	// deadLits counts arena literals belonging to deleted clauses; when
	// they dominate, reduceDB compacts the arenas.
	deadLits int

	// restartBase, reduceMin and compactMin scale the Luby restart
	// schedule, the reduceDB floor, and the arena-compaction floor.
	// Tests lower them so small instances reach the restart, deletion,
	// and compaction machinery.
	restartBase int64
	reduceMin   int
	compactMin  int

	// MaxConflicts bounds the search; <=0 means unbounded. When the
	// budget is exhausted Solve returns SatUnknown.
	MaxConflicts int64

	// Deadline, when nonzero, bounds the search's wall time; Stop, when
	// non-nil, is an external cancellation flag (a portfolio winner
	// cancelling its losers). Either makes Solve return SatUnknown.
	// Interrupt is a second, caller-owned cancellation flag with the same
	// effect: it outlives any single race (the watchdog's lever), so it
	// must not be overwritten by portfolio plumbing the way Stop is.
	Deadline  time.Time
	Stop      *atomic.Bool
	Interrupt *atomic.Bool

	// model is the assignment snapshot of the last SatSat answer, with
	// eliminated variables reconstructed from elimStack. Kept separate
	// from assign so the incremental trail is never polluted by
	// reconstruction values.
	model []lbool

	// elim marks variables removed by bounded variable elimination; they
	// are never decided and never re-occur in added clauses. elimStack
	// remembers the clauses each elimination removed, in order, for model
	// reconstruction. varDecay is the VSIDS decay (a portfolio
	// diversification knob; 0.95 classically).
	elim      []bool
	elimStack []elimRecord
	varDecay  float64

	// preClauses is the problem-clause count at the last preprocessing
	// run (0 = never ran); NeedPreprocess compares against it.
	preClauses int

	// fp is the running construction fingerprint: an order-sensitive hash
	// of every NewVar and AddClause event (and of the clause database
	// after a preprocessing rewrite). Two solvers with equal fingerprints
	// hold bit-identical problem CNFs, which scopes the clause exchange.
	fp uint64

	// exchID is this solver's publisher identity on a ClauseExchange
	// (assigned at first attach; 0 = none). It survives reset — identity
	// only needs to be unique, and a recycled solver may keep it.
	exchID uint32

	// onLearnt, if set, observes every learnt clause at recording time
	// (the exchange publishes low-glue ones). The slice aliases solver
	// scratch: observers must copy. onRestart, if set, runs at each
	// restart boundary (the exchange imports there); it may call
	// ImportLearnt but must not call Solve.
	onLearnt  func(lits []Lit, lbd int32)
	onRestart func()
}

// NewSatSolver returns an empty solver.
func NewSatSolver() *SatSolver {
	s := &SatSolver{varInc: 1, claInc: 1, ok: true, varDecay: defaultVarDecay,
		restartBase: lubyRestartBase, reduceMin: reduceDBMin, compactMin: compactDBMin,
		fp: fpOffset}
	s.order = &varHeap{act: &s.activity}
	return s
}

// reset returns the solver to its empty state while keeping every
// allocation (arenas, per-variable slices, watch lists, scratch) warm,
// so pooled blasters stop paying per-query construction cost.
func (s *SatSolver) reset() {
	s.cdb = s.cdb[:0]
	s.larena = s.larena[:0]
	s.clauses = s.clauses[:0]
	s.learnts = s.learnts[:0]
	// Truncate the outer watch slices but keep the inner ones: NewVar
	// re-extends into the capacity and empties them in place, preserving
	// each literal's watcher storage across queries.
	s.watches = s.watches[:0]
	s.binWatches = s.binWatches[:0]
	s.assign = s.assign[:0]
	s.level = s.level[:0]
	s.reason = s.reason[:0]
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.activity = s.activity[:0]
	s.varInc = 1
	s.claInc = 1
	s.polarity = s.polarity[:0]
	s.order.reset()
	s.orderStale = false
	s.seen = s.seen[:0]
	s.ok = true
	s.cnt = SatCounters{}
	s.deadLits = 0
	s.restartBase = lubyRestartBase
	s.reduceMin = reduceDBMin
	s.compactMin = compactDBMin
	s.MaxConflicts = 0
	s.Deadline = time.Time{}
	s.Stop = nil
	s.Interrupt = nil
	s.model = s.model[:0]
	s.elim = s.elim[:0]
	s.elimStack = s.elimStack[:0]
	s.varDecay = defaultVarDecay
	s.preClauses = 0
	s.fp = fpOffset
	s.onLearnt = nil
	s.onRestart = nil
}

// Construction-fingerprint mixing (FNV-1a over 64-bit words).
const (
	fpOffset = 0xcbf29ce484222325
	fpPrime  = 0x00000100000001b3
)

func (s *SatSolver) fpMix(x uint64) {
	s.fp = (s.fp ^ x) * fpPrime
}

// Fingerprint identifies the problem CNF built so far (variables and
// clauses, order-sensitive; rewritten after preprocessing). Learnt and
// imported clauses do not contribute: they are implied, so two solvers
// with equal fingerprints may exchange learnt clauses in either
// direction.
func (s *SatSolver) Fingerprint() uint64 { return s.fp }

// lits returns clause c's literals (aliasing the arena).
func (s *SatSolver) lits(c cref) []Lit {
	h := &s.cdb[c]
	return s.larena[h.off : h.off+h.n]
}

// alloc copies lits into the arena and returns the new clause's cref.
func (s *SatSolver) alloc(lits []Lit, learnt bool) cref {
	off := int32(len(s.larena))
	s.larena = append(s.larena, lits...)
	c := cref(len(s.cdb))
	s.cdb = append(s.cdb, clause{off: off, n: int32(len(lits)), learnt: learnt})
	return c
}

// NewVar introduces a fresh variable and returns its index.
func (s *SatSolver) NewVar() int32 {
	v := int32(len(s.assign))
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefNil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.seen = append(s.seen, false)
	s.elim = append(s.elim, false)
	s.watches = extendWatches(s.watches)
	s.binWatches = extendWatches(s.binWatches)
	s.order.push(v)
	s.fpMix(0x9e3779b97f4a7c15) // variable-allocation event
	return v
}

// extendWatches grows a per-literal watch table by two slots, reusing
// (and emptying) slots retained by a previous reset instead of
// discarding their backing arrays.
func extendWatches[T any](w [][]T) [][]T {
	n := len(w)
	if cap(w) >= n+2 {
		w = w[:n+2]
		w[n] = w[n][:0]
		w[n+1] = w[n+1][:0]
		return w
	}
	return append(w, nil, nil)
}

// NumVars returns the number of variables allocated.
func (s *SatSolver) NumVars() int { return len(s.assign) }

// NumLearnts returns the number of learnt clauses currently retained.
// Incremental sessions report this as "clauses reused": conflict clauses
// carried into a later assumption solve.
func (s *SatSolver) NumLearnts() int { return len(s.learnts) }

// Stats returns the number of decisions, propagations and conflicts seen.
func (s *SatSolver) Stats() (decisions, propagations, conflicts int64) {
	return s.cnt.Decisions, s.cnt.Propagations, s.cnt.Conflicts
}

// Counters returns a snapshot of all work counters.
func (s *SatSolver) Counters() SatCounters { return s.cnt }

func (s *SatSolver) value(l Lit) lbool { return s.assign[l.Var()] ^ lbool(l&1) }

// AddClause adds a clause; it returns false if the formula is already
// unsatisfiable at the top level. Clauses may be added between Solve
// calls (the incremental Session does) and, except for units, without
// rewinding the search trail: simplification consults only permanent
// (level-0) assignments, and the watch pair is chosen so the
// two-watched-literal invariant holds under whatever trail is standing.
// The literal slice is copied into the solver's arena; small variadic
// argument slices stay on the caller's stack.
func (s *SatSolver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.fpMix(uint64(len(lits))<<32 | 0xc1a05e)
	for _, l := range lits {
		s.fpMix(uint64(uint32(l)))
	}
	if !s.addClause(lits, false) {
		return false
	}
	s.cnt.ClausesAdded++
	return true
}

// ImportLearnt attaches a clause learnt by a solver with an equal
// fingerprint (so the clause is implied by this solver's problem CNF) as
// a learnt clause. Clauses mentioning eliminated variables are refused:
// eliminated variables are never decided here, so such a clause could go
// permanently unserviced. Safe to call between solves and — from an
// onRestart hook — during one. Reports whether the solver is still
// consistent (an imported unit can expose top-level unsatisfiability).
func (s *SatSolver) ImportLearnt(lits []Lit) bool {
	if !s.ok {
		return false
	}
	for _, l := range lits {
		if v := l.Var(); int(v) >= len(s.assign) || s.elim[v] {
			return true // incompatible with local eliminations; skip
		}
	}
	s.importBuf = append(s.importBuf[:0], lits...)
	if !s.addClause(s.importBuf, true) {
		return false
	}
	s.cnt.ClausesImported++
	return true
}

// addClause simplifies and attaches one clause (problem or learnt),
// mutating lits in place. It returns false if the formula became
// unsatisfiable at the top level.
func (s *SatSolver) addClause(lits []Lit, learnt bool) bool {
	// Simplify: remove permanently-false literals and duplicates; detect
	// tautologies and permanently-satisfied clauses.
	out := lits[:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				return true // satisfied at level 0
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false
			}
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Flip() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		// A unit must hold from level 0 on; this is the one case that
		// has to rewind the trail.
		s.cancelUntil(0)
		if !s.enqueue(out[0], crefNil) {
			s.ok = false
			return false
		}
		if conf := s.propagate(); conf != crefNil {
			s.ok = false
			return false
		}
		return true
	}
	// Move the two best watch candidates to the front: non-false
	// literals first, then false literals assigned at the highest level.
	rank := func(l Lit) int32 {
		if s.value(l) != lFalse {
			return 1 << 30
		}
		return s.level[l.Var()]
	}
	for i := 0; i < 2; i++ {
		best := i
		for k := i + 1; k < len(out); k++ {
			if rank(out[k]) > rank(out[best]) {
				best = k
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if s.value(out[0]) == lFalse {
		// Conflicting under the current trail (the new clause contradicts
		// the standing model): rewind fully, after which every literal is
		// unassigned and any watch pair is valid.
		s.cancelUntil(0)
	}
	c := s.alloc(out, learnt)
	if s.value(out[1]) == lFalse && s.value(out[0]) >= lUndef {
		// Unit under the current trail: imply the remaining literal now
		// so the falsified watch is never left unserved. The implication
		// is propagated lazily by the next Solve.
		s.enqueue(s.lits(c)[0], c)
	}
	if learnt {
		// Imported clauses start with pessimistic glue (their recording
		// LBD is meaningless under this trail); a conflict involving them
		// refreshes it, and reduceDB may drop the unused ones.
		s.cdb[c].act = float32(s.claInc)
		s.cdb[c].lbd = int32(len(out))
		s.learnts = append(s.learnts, c)
	} else {
		s.clauses = append(s.clauses, c)
	}
	s.watchClause(c)
	return true
}

func (s *SatSolver) watchClause(c cref) {
	lits := s.lits(c)
	if len(lits) == 2 {
		s.binWatches[lits[0].Flip()] = append(s.binWatches[lits[0].Flip()], binWatch{lits[1], c})
		s.binWatches[lits[1].Flip()] = append(s.binWatches[lits[1].Flip()], binWatch{lits[0], c})
		return
	}
	s.watches[lits[0].Flip()] = append(s.watches[lits[0].Flip()], watcher{c, lits[1]})
	s.watches[lits[1].Flip()] = append(s.watches[lits[1].Flip()], watcher{c, lits[0]})
}

func (s *SatSolver) enqueue(l Lit, from cref) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = lbool(l & 1) // positive literal -> lTrue(0), negated -> lFalse(1)
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *SatSolver) propagate() cref {
	// Propagations is counted by queue positions consumed (maintained on
	// every exit path); per-literal counter updates are too hot here.
	start := s.qhead
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		// Binary clauses first: the implied literal is stored in the
		// watch itself, so each entry is a value test plus (at most) an
		// enqueue — no clause memory is touched on the fast path.
		for _, bw := range s.binWatches[p] {
			switch s.value(bw.other) {
			case lTrue:
				continue
			case lFalse:
				s.cnt.Propagations += int64(s.qhead - start)
				s.qhead = len(s.trail)
				return bw.c
			}
			s.cnt.BinaryProps++
			s.enqueue(bw.other, bw.c)
		}
		pf := p.Flip()
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			h := &s.cdb[w.c]
			if h.deleted {
				continue
			}
			lits := s.larena[h.off : h.off+h.n]
			// Ensure the false literal is lits[1].
			if lits[0] == pf {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Flip()] = append(s.watches[lits[1].Flip()], watcher{w.c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(first) == lFalse {
				// Conflict: keep the remaining watchers, restore and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.cnt.Propagations += int64(s.qhead - start)
				s.qhead = len(s.trail)
				return w.c
			}
			s.enqueue(first, w.c)
		}
		s.watches[p] = kept
	}
	s.cnt.Propagations += int64(s.qhead - start)
	return crefNil
}

func (s *SatSolver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *SatSolver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	// Unwinding a large trail slice pushes every variable back into the
	// decision heap at O(log n) apiece; past a threshold it is cheaper to
	// drop the heap and rebuild it lazily in one O(n) heapify at the next
	// decision (pickBranchVar).
	bulk := (len(s.trail)-int(s.trailLim[lvl]))*16 > len(s.assign)
	for i := len(s.trail) - 1; i >= int(s.trailLim[lvl]); i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = crefNil
		if !bulk {
			s.order.push(v)
		}
	}
	if bulk {
		s.orderStale = true
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *SatSolver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *SatSolver) bumpClause(c cref) {
	s.cdb[c].act += float32(s.claInc)
	if s.cdb[c].act > 1e20 {
		for _, l := range s.learnts {
			s.cdb[l].act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// computeLBD returns the literal-block distance of lits: the number of
// distinct (non-root) decision levels among them. Low-LBD clauses link
// few decision blocks and empirically stay useful, so reduceDB protects
// them (Audemard & Simon's "glue").
func (s *SatSolver) computeLBD(lits []Lit) int32 {
	s.lbdStamp++
	lbd := int32(0)
	for _, l := range lits {
		lvl := s.level[l.Var()]
		if lvl == 0 {
			continue
		}
		for int32(len(s.lbdSeen)) <= lvl {
			s.lbdSeen = append(s.lbdSeen, 0)
		}
		if s.lbdSeen[lvl] != s.lbdStamp {
			s.lbdSeen[lvl] = s.lbdStamp
			lbd++
		}
	}
	return lbd
}

// abstractLevel maps a variable's decision level onto a 32-bit signature
// used to cheaply prune the redundancy search in litRedundant.
func (s *SatSolver) abstractLevel(v int32) uint32 { return 1 << (uint(s.level[v]) & 31) }

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first, recursively minimized), the backtrack
// level, and the clause's LBD. The returned slice aliases the solver's
// scratch buffer; record copies it into the arena.
func (s *SatSolver) analyze(conf cref) ([]Lit, int32, int32) {
	learnt := append(s.learntBuf[:0], 0) // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	s.toClear = s.toClear[:0]
	c := conf
	for {
		if s.cdb[c].learnt {
			s.bumpClause(c)
			// Glucose-style LBD refresh: a learnt clause involved in a new
			// conflict gets its glue re-evaluated under the current trail,
			// so clauses that became structurally tighter gain protection.
			if s.cdb[c].lbd > 2 {
				if nl := s.computeLBD(s.lits(c)); nl < s.cdb[c].lbd {
					s.cdb[c].lbd = nl
				}
			}
		}
		pv := int32(-1)
		if p != -1 {
			pv = p.Var()
		}
		for _, q := range s.lits(c) {
			v := q.Var()
			if v != pv && !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.toClear = append(s.toClear, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
		// The implied literal of the reason clause is skipped by variable
		// (pv): binary reasons keep their blast-time literal order.
	}
	learnt[0] = p.Flip()

	// Recursive (MiniSat ccmin) minimization: a literal whose reason
	// chain bottoms out in other learnt literals (or root assignments)
	// is implied by the rest of the clause and can be dropped.
	var abstract uint32
	for _, q := range learnt[1:] {
		abstract |= s.abstractLevel(q.Var())
	}
	kept := learnt[:1]
	for _, q := range learnt[1:] {
		if s.reason[q.Var()] == crefNil || !s.litRedundant(q, abstract) {
			kept = append(kept, q)
		}
	}
	s.cnt.MinimizedLits += int64(len(learnt) - len(kept))
	learnt = kept

	lbd := s.computeLBD(learnt)
	// Compute backtrack level: max level among learnt[1:].
	bt := int32(0)
	maxI := 1
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] > bt {
			bt = s.level[learnt[i].Var()]
			maxI = i
		}
	}
	if len(learnt) > 1 {
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	}
	for _, v := range s.toClear {
		s.seen[v] = false
	}
	s.learntBuf = learnt
	return learnt, bt, lbd
}

// litRedundant reports whether p is implied by the remaining learnt
// literals: every path through its implication-graph ancestry ends in a
// seen literal or a root-level assignment. Any new literal marked seen
// during the walk is recorded in toClear (and unwound on failure), so
// one analyze-wide clearing pass suffices.
func (s *SatSolver) litRedundant(p Lit, abstract uint32) bool {
	s.analyzeStack = append(s.analyzeStack[:0], p)
	top := len(s.toClear)
	for len(s.analyzeStack) > 0 {
		q := s.analyzeStack[len(s.analyzeStack)-1]
		qv := q.Var()
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		for _, l := range s.lits(s.reason[qv]) {
			v := l.Var()
			if v == qv || s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == crefNil || s.abstractLevel(v)&abstract == 0 {
				// A decision (or a level outside the clause's signature)
				// was reached: p is not redundant. Unwind the marks.
				for len(s.toClear) > top {
					s.seen[s.toClear[len(s.toClear)-1]] = false
					s.toClear = s.toClear[:len(s.toClear)-1]
				}
				return false
			}
			s.seen[v] = true
			s.toClear = append(s.toClear, v)
			s.analyzeStack = append(s.analyzeStack, l)
		}
	}
	return true
}

func (s *SatSolver) record(learnt []Lit, lbd int32) {
	s.cnt.Learnts++
	s.cnt.LearntLits += int64(len(learnt))
	s.cnt.GlueSum += int64(lbd)
	if lbd <= 2 {
		s.cnt.LowGlue++
	}
	if s.onLearnt != nil {
		s.onLearnt(learnt, lbd)
	}
	switch len(learnt) {
	case 1:
		s.enqueue(learnt[0], crefNil)
	default:
		c := s.alloc(learnt, true)
		s.cdb[c].act = float32(s.claInc)
		s.cdb[c].lbd = lbd
		s.learnts = append(s.learnts, c)
		s.watchClause(c)
		s.enqueue(s.lits(c)[0], c)
	}
}

// reduceDB removes roughly half of the learnt clauses, keeping the ones
// most likely to prune future search: binary clauses, low-LBD ("glue")
// clauses, clauses currently locked as reasons, and — among the rest —
// the half with the best (lowest LBD, then highest activity) rank.
func (s *SatSolver) reduceDB() {
	if len(s.learnts) < s.reduceMin {
		return
	}
	sort.Slice(s.learnts, func(i, j int) bool {
		ci, cj := &s.cdb[s.learnts[i]], &s.cdb[s.learnts[j]]
		if ci.lbd != cj.lbd {
			return ci.lbd > cj.lbd // worst (highest glue) first
		}
		return ci.act < cj.act
	})
	limit := len(s.learnts) / 2
	removed := 0
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		h := &s.cdb[c]
		if removed < limit && h.n > 2 && h.lbd > 2 && !s.isReason(c) {
			h.deleted = true
			s.deadLits += int(h.n)
			removed++
		} else {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	// Deleted clauses are only marked: their headers and literals stay in
	// the arenas (and stale entries linger in watch lists). Once the dead
	// literals dominate, compact — long incremental sessions otherwise
	// accumulate every clause ever learnt.
	if s.deadLits*2 > len(s.larena) && len(s.larena) > s.compactMin {
		s.compact()
	}
}

// compact rewrites the clause database without the deleted clauses,
// sliding live literals down the arena and rebuilding the watch lists
// (which also drops stale watchers of deleted clauses). Reasons are
// remapped; reason clauses are never deleted, so every remap target is
// live. Only called from reduceDB — no cref may be held across it.
func (s *SatSolver) compact() {
	remap := make([]cref, len(s.cdb))
	nl, nc := int32(0), 0
	for i := range s.cdb {
		h := s.cdb[i]
		if h.deleted {
			remap[i] = crefNil
			continue
		}
		copy(s.larena[nl:], s.larena[h.off:h.off+h.n])
		h.off = nl
		nl += h.n
		remap[i] = cref(nc)
		s.cdb[nc] = h
		nc++
	}
	s.cdb = s.cdb[:nc]
	s.larena = s.larena[:nl]
	for i, c := range s.clauses {
		s.clauses[i] = remap[c]
	}
	for i, c := range s.learnts {
		s.learnts[i] = remap[c]
	}
	for v, r := range s.reason {
		if r != crefNil {
			s.reason[v] = remap[r]
		}
	}
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for i := range s.binWatches {
		s.binWatches[i] = s.binWatches[i][:0]
	}
	// Re-watching lits[0]/lits[1] preserves the two-watched-literal
	// invariant: propagate maintains exactly that pair as the watches.
	for _, c := range s.clauses {
		s.watchClause(c)
	}
	for _, c := range s.learnts {
		s.watchClause(c)
	}
	s.deadLits = 0
}

func (s *SatSolver) isReason(c cref) bool {
	v := s.larena[s.cdb[c].off].Var()
	return s.assign[v] != lUndef && s.reason[v] == c
}

// lubyRestartBase scales the Luby sequence into conflict budgets;
// reduceDBMin is the learnt-clause floor below which reduceDB is a
// no-op.
const (
	lubyRestartBase = 100
	reduceDBMin     = 100
	compactDBMin    = 1 << 16
	defaultVarDecay = 0.95
)

// luby returns the i-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,… — the universally near-optimal
// restart schedule.
func luby(i int64) int64 {
	size, seq := int64(1), 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i %= size
	}
	return 1 << uint(seq)
}

// Solve runs the CDCL search. assumptions, if any, are enqueued as
// level-1+ decisions first (used for incremental queries). Restarts
// rewind to the assumption prefix rather than to level 0: the
// assumption levels are forced anyway and re-propagating them is pure
// waste.
func (s *SatSolver) Solve(assumptions ...Lit) SatResult {
	if !s.ok {
		return SatUnsat
	}
	s.cancelUntil(0)
	s.cnt.AssumLevels += int64(len(assumptions))
	restartNum := int64(0)
	restartLimit := luby(restartNum) * s.restartBase
	conflictsAtStart := s.cnt.Conflicts
	conflictsAtRestart := s.cnt.Conflicts
	learntLimit := len(s.clauses)/3 + 100
	ticks := 0
	for {
		conf := s.propagate()
		if conf != crefNil {
			s.cnt.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return SatUnsat
			}
			learnt, bt, lbd := s.analyze(conf)
			s.cancelUntil(bt)
			s.record(learnt, lbd)
			s.varInc /= s.varDecay
			s.claInc /= 0.999
			continue
		}
		if s.MaxConflicts > 0 && s.cnt.Conflicts-conflictsAtStart > s.MaxConflicts {
			s.cancelUntil(0)
			return SatUnknown
		}
		// External cancellation: an atomic flag every iteration, the
		// clock only every few hundred (a time read per decision would be
		// measurable on propagation-bound instances).
		if s.Stop != nil && s.Stop.Load() {
			s.cancelUntil(0)
			return SatUnknown
		}
		if s.Interrupt != nil && s.Interrupt.Load() {
			s.cancelUntil(0)
			return SatUnknown
		}
		if ticks++; ticks&255 == 0 && !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			s.cancelUntil(0)
			return SatUnknown
		}
		if s.cnt.Conflicts-conflictsAtRestart > restartLimit {
			restartNum++
			s.cnt.Restarts++
			restartLimit = luby(restartNum) * s.restartBase
			conflictsAtRestart = s.cnt.Conflicts
			keep := s.decisionLevel()
			if keep > int32(len(assumptions)) {
				keep = int32(len(assumptions))
			}
			s.cancelUntil(keep)
			if s.onRestart != nil {
				// Exchange import point: new clauses attach against the
				// standing assumption prefix (a conflicting one rewinds to
				// level 0, after which the loop re-applies assumptions).
				s.onRestart()
				if !s.ok {
					return SatUnsat
				}
			}
			continue
		}
		if len(s.learnts) > learntLimit {
			learntLimit = learntLimit*11/10 + 10
			s.reduceDB()
		}
		// Re-apply assumptions under the current trail.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: open an empty decision level so the
				// index keeps advancing.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				return SatUnsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.enqueue(a, crefNil)
			}
			continue
		}
		// Decide.
		v := s.pickBranchVar()
		if v < 0 {
			s.captureModel()
			return SatSat
		}
		s.cnt.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(MkLit(v, !s.polarity[v]), crefNil)
	}
}

func (s *SatSolver) pickBranchVar() int32 {
	if s.orderStale {
		s.orderStale = false
		s.order.rebuild(s.assign, s.elim)
	}
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef && !s.elim[v] {
			return v
		}
	}
}

// captureModel snapshots the satisfying assignment and reconstructs
// values for eliminated variables by replaying elimStack in reverse:
// each record's saved clauses (which mention only the record's variable
// and variables live at its elimination time) pick the value that keeps
// every one satisfied. MiniSat/SatELite's model extension.
func (s *SatSolver) captureModel() {
	s.model = append(s.model[:0], s.assign...)
	// Give unassigned variables (the eliminated ones) a definite default
	// first: the satisfaction tests below and ModelValue must read the
	// same value, or a clause satisfied under the final reading could
	// force a contradictory reconstruction.
	for v, m := range s.model {
		if m >= lUndef {
			s.model[v] = lFalse
		}
	}
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		rec := &s.elimStack[i]
		start := int32(0)
		for _, end := range rec.ends {
			cl := rec.lits[start:end]
			start = end
			sat := false
			var vlit Lit = -1
			for _, l := range cl {
				if l.Var() == rec.v {
					vlit = l
					continue
				}
				if s.model[l.Var()]^lbool(l&1) == lTrue {
					sat = true
					break
				}
			}
			if !sat && vlit >= 0 {
				// The clause must be satisfied through the eliminated
				// variable's own literal.
				s.model[rec.v] = lbool(vlit & 1)
			}
		}
	}
}

// ModelValue returns the assignment of variable v after a Sat answer.
// Unassigned variables read as false.
func (s *SatSolver) ModelValue(v int32) bool {
	return int(v) < len(s.model) && s.model[v] == lTrue
}

// varHeap is a max-heap on variable activity with lazy deletion. The
// position index is a dense slice (variables are small consecutive
// integers): heap maintenance runs on every propagate/backtrack cycle,
// and a map here dominated whole-verification profiles.
type varHeap struct {
	act   *[]float64
	items []int32
	pos   []int32 // pos[v] = index of v in items, -1 when absent
}

func (h *varHeap) less(a, b int32) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) reset() {
	h.items = h.items[:0]
	h.pos = h.pos[:0]
}

// rebuild reconstitutes the heap from every unassigned, uneliminated
// variable in one O(n) heapify — the counterpart of a bulk cancelUntil,
// which skips the per-variable pushes.
func (h *varHeap) rebuild(assign []lbool, elim []bool) {
	h.items = h.items[:0]
	for len(h.pos) < len(assign) {
		h.pos = append(h.pos, -1)
	}
	for v, a := range assign {
		if a == lUndef && !elim[v] {
			h.pos[v] = int32(len(h.items))
			h.items = append(h.items, int32(v))
		} else {
			h.pos[v] = -1
		}
	}
	// Stale tail positions (a pooled instance may have shrunk) and the
	// heap order are restored in O(n).
	for i := len(assign); i < len(h.pos); i++ {
		h.pos[i] = -1
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) push(v int32) {
	for int32(len(h.pos)) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.items = append(h.items, v)
	h.pos[v] = int32(len(h.items) - 1)
	h.up(len(h.items) - 1)
}

func (h *varHeap) pop() (int32, bool) {
	if len(h.items) == 0 {
		return -1, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

func (h *varHeap) update(v int32) {
	if int32(len(h.pos)) > v && h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		h.pos[h.items[i]] = int32(i)
		h.pos[h.items[p]] = int32(p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && h.less(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		h.pos[h.items[i]] = int32(i)
		h.pos[h.items[m]] = int32(m)
		i = m
	}
}
