package smt

import "vsd/internal/expr"

// This file implements the word-level equality-substitution pre-pass:
// var = const and var = var atoms are propagated through the remaining
// atom set before bit-blasting, using the interned-expression rewriter
// (expr.Subst). Constraints produced by segment stitching are full of
// such atoms — branch conditions pin metadata and state-read variables
// to constants — and substituting them lets the expression layer's
// constant folding collapse whole atoms that would otherwise reach the
// SAT core as word-wide equality ladders.
//
// The pass is shared by the one-shot Solver.Check and the incremental
// session (both call it from preSolve). Defining atoms (the equalities
// the bindings came from) are kept unsubstituted so the blasted formula
// stays logically equivalent to the original conjunction and models
// remain complete.

// maxEqSubstRounds bounds propagation to fixpoint: substituting one
// binding can fold another atom into var = const shape, which the next
// round picks up. Chains longer than this are not worth chasing.
const maxEqSubstRounds = 8

// eqUnionFind tracks equality classes of variables (by name) with an
// optional constant binding per class. Roots are the lexicographically
// smallest member, so representatives — and therefore the rewritten
// atoms — are deterministic regardless of atom order.
type eqUnionFind struct {
	parent map[string]string
	vars   map[string]*expr.Expr // name -> variable node
	consts map[string]*expr.Expr // root name -> bound constant
}

func newEqUnionFind() *eqUnionFind {
	return &eqUnionFind{
		parent: map[string]string{},
		vars:   map[string]*expr.Expr{},
		consts: map[string]*expr.Expr{},
	}
}

func (u *eqUnionFind) addVar(v *expr.Expr) {
	if _, ok := u.parent[v.Name]; !ok {
		u.parent[v.Name] = v.Name
		u.vars[v.Name] = v
	}
}

func (u *eqUnionFind) find(n string) string {
	for u.parent[n] != n {
		u.parent[n] = u.parent[u.parent[n]] // path halving
		n = u.parent[n]
	}
	return n
}

// union merges the classes of variables a and b. It reports false when
// the merged class would carry two different constants — the query is
// unsatisfiable.
func (u *eqUnionFind) union(a, b *expr.Expr) bool {
	u.addVar(a)
	u.addVar(b)
	ra, rb := u.find(a.Name), u.find(b.Name)
	if ra == rb {
		return true
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	ca, okA := u.consts[ra]
	cb, okB := u.consts[rb]
	if okA && okB && ca != cb {
		return false
	}
	u.parent[rb] = ra
	if okB {
		u.consts[ra] = cb
		delete(u.consts, rb)
	}
	return true
}

// bindConst pins v's class to the constant c. It reports false when the
// class already carries a different constant.
func (u *eqUnionFind) bindConst(v, c *expr.Expr) bool {
	u.addVar(v)
	r := u.find(v.Name)
	if old, ok := u.consts[r]; ok {
		return old == c
	}
	u.consts[r] = c
	return true
}

// substEqualities propagates var = const and var = var atoms through the
// atom set. It returns the rewritten atoms (defining equalities kept, so
// the conjunction stays equivalent and models complete), the number of
// atoms rewritten, and whether a contradiction was found (two different
// constants forced on one class, or an atom folding to false) — in which
// case the query is unsatisfiable and the returned atoms are nil.
//
// The input slice is not modified; atoms must already be flattened (each
// 1-bit, no top-level conjunctions).
func substEqualities(atoms []*expr.Expr) (out []*expr.Expr, rewritten int64, contradiction bool) {
	out = atoms
	for round := 0; round < maxEqSubstRounds; round++ {
		// Gather bindings. Both structures allocate lazily: most queries
		// in the non-stitching paths carry no equality atoms at all.
		var uf *eqUnionFind
		var defining map[*expr.Expr]bool
		mark := func(a *expr.Expr) {
			if uf == nil {
				uf = newEqUnionFind()
				defining = map[*expr.Expr]bool{}
			}
			defining[a] = true
		}
		for _, a := range out {
			switch {
			case a.Kind == expr.KVar:
				// A bare 1-bit variable asserted true (1-bit v == 1 folds
				// to v at construction).
				mark(a)
				if !uf.bindConst(a, expr.True()) {
					return nil, rewritten, true
				}
			case a.Kind == expr.KNot && a.A.Kind == expr.KVar:
				mark(a)
				if !uf.bindConst(a.A, expr.False()) {
					return nil, rewritten, true
				}
			case a.Kind == expr.KBin && a.Op == expr.OpEq:
				x, y := a.A, a.B
				switch {
				case x.Kind == expr.KVar && y.Kind == expr.KConst:
					mark(a)
					if !uf.bindConst(x, y) {
						return nil, rewritten, true
					}
				case y.Kind == expr.KVar && x.Kind == expr.KConst:
					mark(a)
					if !uf.bindConst(y, x) {
						return nil, rewritten, true
					}
				case x.Kind == expr.KVar && y.Kind == expr.KVar:
					mark(a)
					if !uf.union(x, y) {
						return nil, rewritten, true
					}
				}
			}
		}
		if uf == nil {
			return out, rewritten, false
		}
		// Build the substitution: every variable in a class maps to the
		// class constant, or to the class representative when no constant
		// is known.
		sub := expr.NewSubst()
		bindings := 0
		for name, v := range uf.vars {
			root := uf.find(name)
			target, ok := uf.consts[root]
			if !ok {
				target = uf.vars[root]
			}
			if target != v {
				sub.BindVar(name, target)
				bindings++
			}
		}
		if bindings == 0 {
			return out, rewritten, false
		}
		// Apply to every non-defining atom; the expression constructors
		// re-simplify, so substituted atoms often fold to constants.
		changed := false
		next := make([]*expr.Expr, 0, len(out))
		for _, a := range out {
			if defining[a] {
				next = append(next, a)
				continue
			}
			r := sub.Apply(a)
			if r.IsTrue() {
				changed = true
				rewritten++
				continue
			}
			if r.IsFalse() {
				return nil, rewritten + 1, true
			}
			if r != a {
				changed = true
				rewritten++
			}
			next = append(next, r)
		}
		out = next
		if !changed {
			return out, rewritten, false
		}
	}
	return out, rewritten, false
}
