package smt

import "time"

// SolveInfo attributes one incremental query: its verdict, wall time,
// and — when the SAT core actually ran — the search-effort and
// CNF-growth deltas of exactly that query, computed from the session's
// blaster-counter snapshots. The cheap pre-solve passes (constant
// folding, verdict cache, intervals, equality substitution) decide
// most queries without touching the core; those report SATCore false
// with zeroed effort counters, which is itself the interesting signal
// for the obligation profiler: an expensive obligation is one where
// the core engaged.
type SolveInfo struct {
	Result       Result
	Duration     time.Duration
	SATCore      bool // true when the SAT core ran (not decided pre-solve)
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnts      int64
	CNFVars      int64 // CNF variables allocated by this query
	CNFClauses   int64 // CNF clauses added by this query
}

// LastSolve returns the attribution of the most recent Check on this
// session. Valid until the next Check; the session owner (one worker
// goroutine) reads it immediately after Check returns.
func (sess *IncrementalSession) LastSolve() SolveInfo { return sess.lastSolve }
