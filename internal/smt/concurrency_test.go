package smt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vsd/internal/expr"
)

// TestSolverConcurrentCheck hammers one Solver from many goroutines
// (run under -race): queries share the verdict cache and statistics, and
// every goroutine must read verdicts consistent with a sequential
// reference run.
func TestSolverConcurrentCheck(t *testing.T) {
	const goroutines = 8
	const queriesPer = 60
	pkt := expr.BaseArray("cpkt")
	mkQuery := func(seed int) []*expr.Expr {
		r := rand.New(rand.NewSource(int64(seed)))
		x := expr.Var(fmt.Sprintf("cx%d", seed%7), 8)
		b := expr.Select(pkt, expr.Const(32, uint64(r.Intn(4))))
		return []*expr.Expr{
			expr.Ult(x, expr.Const(8, uint64(1+r.Intn(255)))),
			expr.Eq(expr.Add(x, b), expr.Const(8, uint64(r.Intn(256)))),
		}
	}
	// Sequential reference.
	ref := New(Options{})
	want := make([]Result, goroutines*queriesPer)
	for i := range want {
		want[i], _ = ref.Check(mkQuery(i % 97))
	}
	solver := New(Options{})
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < queriesPer; q++ {
				i := g*queriesPer + q
				got, m := solver.Check(mkQuery(i % 97))
				if got != want[i] {
					errs <- fmt.Sprintf("query %d: got %v want %v", i, got, want[i])
					return
				}
				if got == Sat {
					for _, c := range mkQuery(i % 97) {
						if !expr.Eval(c, m).IsTrue() {
							errs <- fmt.Sprintf("query %d: model violates %s", i, c)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if st := solver.Stats(); st.Queries != goroutines*queriesPer {
		t.Errorf("queries = %d, want %d", st.Queries, goroutines*queriesPer)
	}
}

// TestIncrementalSessionQueryLogEquivalence replays a recorded,
// stitching-shaped query log — growing prefixes, branch atoms, and
// non-superset jumps back to shorter prefixes — through an
// IncrementalSession and through one-shot Check on an independent
// solver. Verdicts must match query by query, and every Sat model must
// satisfy its query (model equivalence up to the solution set).
func TestIncrementalSessionQueryLogEquivalence(t *testing.T) {
	pkt := expr.BaseArray("qlpkt")
	x := expr.Var("qlx", 16)
	var log [][]*expr.Expr
	var prefix []*expr.Expr
	for i := 0; i < 30; i++ {
		b := expr.Select(pkt, expr.Const(32, uint64(i%6)))
		prefix = append(prefix, expr.Ule(expr.ZExt(b, 16), expr.Add(x, expr.Const(16, uint64(i)))))
		// The growing-prefix query with a per-step branch atom.
		branch := expr.Eq(
			expr.Add(expr.ZExt(b, 16), x),
			expr.Const(16, uint64(37*i%1024)),
		)
		log = append(log, append(append([]*expr.Expr{}, prefix...), branch))
		// Every third step, jump to a non-superset: a short slice of the
		// prefix plus a contradictory-looking pair that exercises guard
		// deactivation (atoms from the longer query must not leak in).
		if i%3 == 2 {
			short := append([]*expr.Expr{}, prefix[:1+i/3]...)
			short = append(short,
				expr.Ult(x, expr.Const(16, 40)),
				expr.Ult(expr.Const(16, uint64(20+i)), x),
			)
			log = append(log, short)
		}
	}
	solver := New(Options{})
	sess := solver.NewSession()
	for qi, q := range log {
		rs, ms := sess.Check(q)
		ro, _ := New(Options{}).Check(q) // fresh solver: no cache crosstalk
		if rs != ro {
			t.Fatalf("query %d: session=%v oneshot=%v", qi, rs, ro)
		}
		if rs == Sat {
			for _, c := range q {
				if !expr.Eval(c, ms).IsTrue() {
					t.Fatalf("query %d: session model violates %s", qi, c)
				}
			}
		}
	}
	st := solver.Stats()
	if st.AssumptionSolves == 0 {
		t.Error("expected assumption solves on the incremental path")
	}
	if st.SessionsOpened == 0 {
		t.Error("expected a session to be counted")
	}
}

// TestSessionRecycleKeepsVerdicts forces the guard-count recycle by
// issuing many distinct single-atom queries and checks the session stays
// correct across the internal SAT-instance swap.
func TestSessionRecycleKeepsVerdicts(t *testing.T) {
	// Intervals off so every query exercises the (recycled) SAT core.
	solver := New(Options{DisableIntervals: true})
	sess := solver.NewSession()
	x := expr.Var("rcx", 32)
	// A mix the session must keep deciding correctly; the recycle bound
	// is large, so rather than crossing it organically we call recycle
	// directly mid-stream to prove the swap is verdict-preserving.
	for i := 0; i < 50; i++ {
		if i == 25 {
			sess.recycle()
		}
		lo := uint64(i * 10)
		r, m := sess.Check([]*expr.Expr{
			expr.Ule(expr.Const(32, lo), x),
			expr.Ult(x, expr.Const(32, lo+5)),
		})
		if r != Sat {
			t.Fatalf("i=%d: %v", i, r)
		}
		if got := m.Vars["rcx"].U; got < lo || got >= lo+5 {
			t.Fatalf("i=%d: model %d outside [%d,%d)", i, got, lo, lo+5)
		}
		r, _ = sess.Check([]*expr.Expr{
			expr.Ult(x, expr.Const(32, lo)),
			expr.Ule(expr.Const(32, lo+5), x),
		})
		if r != Unsat {
			t.Fatalf("i=%d: contradiction not detected", i)
		}
	}
	if n := solver.Stats().SessionsOpened; n != 2 {
		t.Errorf("sessions opened = %d, want 2 (initial + recycle)", n)
	}
}
