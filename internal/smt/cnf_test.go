package smt

import (
	"testing"

	"vsd/internal/expr"
)

// TestGateCacheHitIdentity verifies the structural gate cache: building
// the same gate twice — directly or through blasting structurally equal
// subterms — must return identical literals without allocating new SAT
// variables.
func TestGateCacheHitIdentity(t *testing.T) {
	b := newBlaster()
	defer b.release()
	x := b.fresh()
	y := b.fresh()

	and1 := b.mkAnd(x, y)
	mid := b.sat.NumVars()
	and2 := b.mkAnd(x, y)
	and3 := b.mkAnd(y, x) // commuted operands share the canonical key
	if and1 != and2 || and1 != and3 {
		t.Fatalf("mkAnd not hash-consed: %v %v %v", and1, and2, and3)
	}
	if b.sat.NumVars() != mid {
		t.Fatalf("cached mkAnd allocated variables: %d -> %d", mid, b.sat.NumVars())
	}

	xor1 := b.mkXor(x, y)
	mid = b.sat.NumVars()
	if got := b.mkXor(y, x); got != xor1 {
		t.Fatalf("commuted mkXor not cached: %v vs %v", got, xor1)
	}
	// Complemented operands fold onto the same gate with an output flip.
	if got := b.mkXor(x.Flip(), y); got != xor1.Flip() {
		t.Fatalf("complemented mkXor not normalized: %v vs %v", got, xor1.Flip())
	}
	if got := b.mkXor(x.Flip(), y.Flip()); got != xor1 {
		t.Fatalf("doubly-complemented mkXor not normalized: %v vs %v", got, xor1)
	}
	if b.sat.NumVars() != mid {
		t.Fatalf("cached mkXor allocated variables: %d -> %d", mid, b.sat.NumVars())
	}
	if b.gateHits == 0 {
		t.Fatal("gate cache recorded no hits")
	}
}

// TestBlastMemoIdentity verifies that blasting the same (interned)
// subterm twice returns the identical literal vector, and that a second
// expression containing the shared subterm adds no gates for it.
func TestBlastMemoIdentity(t *testing.T) {
	b := newBlaster()
	defer b.release()
	x := expr.Var("x", 16)
	y := expr.Var("y", 16)
	sum := expr.Add(x, y)

	bits1 := b.blast(sum)
	vars := b.sat.NumVars()
	bits2 := b.blast(sum)
	if b.sat.NumVars() != vars {
		t.Fatalf("re-blasting interned subterm allocated variables: %d -> %d", vars, b.sat.NumVars())
	}
	for i := range bits1 {
		if bits1[i] != bits2[i] {
			t.Fatalf("bit %d differs across blasts: %v vs %v", i, bits1[i], bits2[i])
		}
	}
	// A new expression over the same subterm reuses its literals.
	cmp := expr.Ult(sum, expr.Const(16, 500))
	b.blast(cmp)
	// Another comparison over the same sum: the eqBits/ultBits chains
	// differ, but the adder itself must not be rebuilt — variable growth
	// stays far below a fresh 16-bit adder (~5 gates/bit).
	grow := b.sat.NumVars()
	b.blast(expr.Eq(sum, expr.Const(16, 77)))
	if added := b.sat.NumVars() - grow; added > 40 {
		t.Fatalf("blasting second comparison over shared adder added %d vars", added)
	}
}

// cnfCeiling is one benchmark expression with recorded size ceilings.
// The ceilings are ~25%% above the sizes measured when the structural
// gate cache landed; a regression that re-expands shared structure
// (lost canonicalization, memo misses, encoding blow-ups) trips them.
type cnfCeiling struct {
	name       string
	build      func() *expr.Expr
	maxVars    int
	maxClauses int64
}

func cnfCeilings() []cnfCeiling {
	x32 := expr.Var("x", 32)
	y32 := expr.Var("y", 32)
	b8 := expr.Var("b", 8)
	return []cnfCeiling{
		{
			name:       "add-eq",
			build:      func() *expr.Expr { return expr.Eq(expr.Add(x32, y32), expr.Const(32, 0xDEADBEEF)) },
			maxVars:    320,
			maxClauses: 800,
		},
		{
			name: "parser-bound",
			// The CheckIPHeader shape: header-length scaling plus a bound
			// check against a length variable.
			build: func() *expr.Expr {
				ihl := expr.ZExt(expr.BvAnd(b8, expr.Const(8, 15)), 32)
				return expr.Ule(expr.Add(expr.Mul(ihl, expr.Const(32, 4)), expr.Const(32, 14)), y32)
			},
			maxVars:    120,
			maxClauses: 220,
		},
		{
			name: "mux-tree",
			build: func() *expr.Expr {
				c1 := expr.Eq(b8, expr.Const(8, 1))
				c2 := expr.Ult(b8, expr.Const(8, 40))
				v := expr.Ite(c1, x32, expr.Ite(c2, y32, expr.Add(x32, y32)))
				return expr.Ult(v, expr.Const(32, 1<<20))
			},
			maxVars:    560,
			maxClauses: 1500,
		},
		{
			name: "shared-checksum-words",
			// Two 16-bit words folded into a sum twice — the second use
			// must come from the memo/gate cache, not a fresh adder.
			build: func() *expr.Expr {
				w1 := expr.Extract(x32, 0, 16)
				w2 := expr.Extract(x32, 16, 16)
				s := expr.Add(expr.ZExt(w1, 32), expr.ZExt(w2, 32))
				return expr.And(
					expr.Ult(s, expr.Const(32, 1<<17)),
					expr.Ne(s, expr.Const(32, 0xFFFF)),
				)
			},
			maxVars:    160,
			maxClauses: 400,
		},
	}
}

// TestCNFSizeCeilings blasts fixed benchmark expressions and asserts the
// emitted variable and clause counts stay under the recorded ceilings.
func TestCNFSizeCeilings(t *testing.T) {
	for _, c := range cnfCeilings() {
		t.Run(c.name, func(t *testing.T) {
			b := newBlaster()
			defer b.release()
			b.assertTrue(c.build())
			vars := b.sat.NumVars()
			clauses := b.sat.Counters().ClausesAdded
			t.Logf("%s: %d vars, %d clauses, %d gate-cache hits", c.name, vars, clauses, b.gateHits)
			if vars > c.maxVars {
				t.Errorf("%s: %d vars exceeds ceiling %d", c.name, vars, c.maxVars)
			}
			if clauses > c.maxClauses {
				t.Errorf("%s: %d clauses exceeds ceiling %d", c.name, clauses, c.maxClauses)
			}
		})
	}
}

// TestEqualitySubstitution covers the word-level pre-pass: constants and
// aliases propagate through the atom set, contradictions are detected,
// and verdicts (with models) agree with the substitution disabled.
func TestEqualitySubstitution(t *testing.T) {
	x := expr.Var("x", 16)
	y := expr.Var("y", 16)
	z := expr.Var("z", 16)

	t.Run("const-propagation-decides", func(t *testing.T) {
		s := New(Options{})
		// x = 5 ∧ x + y = 12 ∧ y ≠ 7 is unsat; substitution folds it
		// without any SAT search.
		res, _ := s.Check([]*expr.Expr{
			expr.Eq(x, expr.Const(16, 5)),
			expr.Eq(expr.Add(x, y), expr.Const(16, 12)),
			expr.Ne(y, expr.Const(16, 7)),
		})
		if res != Unsat {
			t.Fatalf("got %v, want unsat", res)
		}
		if st := s.Stats(); st.EqAtomsRewritten == 0 {
			t.Error("equality substitution did not fire")
		}
	})

	t.Run("alias-and-const", func(t *testing.T) {
		s := New(Options{})
		res, m := s.Check([]*expr.Expr{
			expr.Eq(x, y),
			expr.Eq(y, z),
			expr.Eq(z, expr.Const(16, 500)),
			expr.Ult(x, expr.Const(16, 501)),
		})
		if res != Sat {
			t.Fatalf("got %v, want sat", res)
		}
		for _, v := range []*expr.Expr{x, y, z} {
			if got := m.Vars[v.Name].Int(); got != 500 {
				t.Errorf("model %s = %d, want 500", v.Name, got)
			}
		}
	})

	t.Run("conflicting-consts", func(t *testing.T) {
		s := New(Options{DisableIntervals: true})
		res, _ := s.Check([]*expr.Expr{
			expr.Eq(x, y),
			expr.Eq(x, expr.Const(16, 1)),
			expr.Eq(y, expr.Const(16, 2)),
		})
		if res != Unsat {
			t.Fatalf("got %v, want unsat", res)
		}
	})

	t.Run("agrees-with-disabled", func(t *testing.T) {
		queries := [][]*expr.Expr{
			{expr.Eq(x, expr.Const(16, 9)), expr.Ult(expr.Mul(x, y), expr.Const(16, 100))},
			{expr.Eq(x, y), expr.Ult(expr.Add(x, y), expr.Const(16, 3))},
			{expr.Eq(expr.BvXor(x, y), expr.Const(16, 0)), expr.Ne(x, y)},
		}
		for i, q := range queries {
			on := New(Options{})
			off := New(Options{DisableEqSubst: true})
			r1, _ := on.Check(q)
			r2, _ := off.Check(q)
			if r1 != r2 {
				t.Errorf("query %d: subst-on %v != subst-off %v", i, r1, r2)
			}
		}
	})
}
