package smt

import (
	"math/rand"
	"testing"
)

// This file fuzzes the CDCL core against brute-force enumeration on
// random CNFs over up to 16 variables. Widths 1..5 produce unit chains
// (binary watch lists) and quick top-level conflicts; the hard-search
// test generates 3-CNF at the satisfiability phase transition with the
// restart and clause-deletion thresholds lowered, so recursive
// minimization, LBD tracking, Luby restarts, reduceDB, and arena
// compaction all run on instances small enough to cross-check by
// enumeration. Repeated solves with assumption sets stress the
// incremental path over a shared instance.

// randCNF returns a random CNF over nv variables.
func randCNF(r *rand.Rand, nv int) [][]Lit {
	nc := 1 + r.Intn(8*nv)
	cnf := make([][]Lit, 0, nc)
	for i := 0; i < nc; i++ {
		width := 1 + r.Intn(5)
		cl := make([]Lit, width)
		for j := range cl {
			cl[j] = MkLit(int32(r.Intn(nv)), r.Intn(2) == 1)
		}
		cnf = append(cnf, cl)
	}
	return cnf
}

// bruteForceSatUnder checks satisfiability of cnf under forced literal
// assignments (assumptions) by enumeration.
func bruteForceSatUnder(nv int, cnf [][]Lit, assumptions []Lit) bool {
	for m := 0; m < 1<<nv; m++ {
		ok := true
		for _, a := range assumptions {
			val := m>>uint(a.Var())&1 == 1
			if a.Neg() {
				val = !val
			}
			if !val {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func checkModel(t *testing.T, s *SatSolver, cnf [][]Lit, trial int) {
	t.Helper()
	for _, cl := range cnf {
		sat := false
		for _, l := range cl {
			val := s.ModelValue(l.Var())
			if l.Neg() {
				val = !val
			}
			if val {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("trial %d: model does not satisfy clause %v", trial, cl)
		}
	}
}

// TestSatFuzzOneShot cross-checks single solves on random CNFs over up
// to 16 variables against enumeration.
func TestSatFuzzOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		nv := 2 + r.Intn(15) // 2..16 vars
		cnf := randCNF(r, nv)
		s := NewSatSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		early := false
		for _, cl := range cnf {
			// AddClause owns nothing (arena copy), but simplifies the
			// argument slice in place: pass a copy to keep cnf intact for
			// the brute-force cross-check.
			if !s.AddClause(append([]Lit{}, cl...)...) {
				early = true
				break
			}
		}
		want := bruteForceSatUnder(nv, cnf, nil)
		if early {
			if want {
				t.Fatalf("trial %d: AddClause declared unsat but formula is sat: %v", trial, cnf)
			}
			continue
		}
		got := s.Solve()
		if (got == SatSat) != want {
			t.Fatalf("trial %d: Solve = %v, brute force = %v, cnf = %v", trial, got, want, cnf)
		}
		if got == SatSat {
			checkModel(t, s, cnf, trial)
		}
	}
}

// TestSatFuzzAssumptions cross-checks repeated assumption solves over a
// single shared instance — the incremental-session usage pattern — with
// random assumption sets per round, including rounds that add clauses
// between solves (exercising the trail-preserving AddClause attach).
func TestSatFuzzAssumptions(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 120; trial++ {
		nv := 3 + r.Intn(14) // 3..16 vars
		s := NewSatSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		var cnf [][]Lit
		addBatch := func(n int) bool {
			for i := 0; i < n; i++ {
				width := 1 + r.Intn(5)
				cl := make([]Lit, width)
				for j := range cl {
					cl[j] = MkLit(int32(r.Intn(nv)), r.Intn(2) == 1)
				}
				cnf = append(cnf, cl)
				if !s.AddClause(append([]Lit{}, cl...)...) {
					return false
				}
			}
			return true
		}
		dead := !addBatch(1 + r.Intn(4*nv))
		for round := 0; round < 6; round++ {
			// Random assumptions over distinct variables.
			var assumptions []Lit
			for v := 0; v < nv; v++ {
				if r.Intn(4) == 0 {
					assumptions = append(assumptions, MkLit(int32(v), r.Intn(2) == 1))
				}
			}
			want := bruteForceSatUnder(nv, cnf, assumptions)
			if dead {
				// The instance hit a top-level conflict during AddClause;
				// everything afterwards must answer unsat.
				if want {
					t.Fatalf("trial %d round %d: dead instance but formula+assumptions sat", trial, round)
				}
				if got := s.Solve(assumptions...); got != SatUnsat {
					t.Fatalf("trial %d round %d: dead instance Solve = %v", trial, round, got)
				}
				continue
			}
			got := s.Solve(assumptions...)
			if (got == SatSat) != want {
				t.Fatalf("trial %d round %d: Solve = %v, brute force = %v, cnf = %v assumptions = %v",
					trial, round, got, want, cnf, assumptions)
			}
			if got == SatSat {
				checkModel(t, s, cnf, trial)
				for _, a := range assumptions {
					val := s.ModelValue(a.Var())
					if a.Neg() {
						val = !val
					}
					if !val {
						t.Fatalf("trial %d round %d: model violates assumption %v", trial, round, a)
					}
				}
			}
			// Grow the instance mid-session half the time: clauses attach
			// against whatever trail the previous solve left standing.
			if r.Intn(2) == 0 {
				if !addBatch(1 + r.Intn(nv)) {
					dead = true
				}
			}
		}
	}
}

// TestSatFuzzPooledReset runs fuzz rounds through one solver instance
// with reset between formulas, validating that pooled blaster reuse
// (warm arenas, truncated state) cannot leak state across queries.
func TestSatFuzzPooledReset(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := NewSatSolver()
	for trial := 0; trial < 200; trial++ {
		s.reset()
		nv := 2 + r.Intn(15)
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		cnf := randCNF(r, nv)
		early := false
		for _, cl := range cnf {
			if !s.AddClause(append([]Lit{}, cl...)...) {
				early = true
				break
			}
		}
		want := bruteForceSatUnder(nv, cnf, nil)
		if early {
			if want {
				t.Fatalf("trial %d: AddClause declared unsat but formula is sat", trial)
			}
			continue
		}
		if got := s.Solve(); (got == SatSat) != want {
			t.Fatalf("trial %d: Solve = %v, brute force = %v, cnf = %v", trial, got, want, cnf)
		}
	}
}

// TestSatFuzzHardSearch generates random 3-CNF at the phase-transition
// clause ratio (~4.3), where search is genuinely hard, with restart and
// reduceDB thresholds lowered so the deep CDCL machinery (Luby
// restarts, clause deletion, arena compaction, ccmin on long conflict
// chains) runs on enumerable instances. Aggregate counters assert the
// machinery actually engaged.
func TestSatFuzzHardSearch(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	var conflicts, restarts, minimized int64
	for trial := 0; trial < 150; trial++ {
		nv := 10 + r.Intn(7) // 10..16 vars
		nc := int(4.3 * float64(nv))
		cnf := make([][]Lit, 0, nc)
		for i := 0; i < nc; i++ {
			cl := make([]Lit, 3)
			perm := r.Perm(nv)
			for j := range cl {
				cl[j] = MkLit(int32(perm[j]), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := NewSatSolver()
		s.restartBase = 4 // force frequent Luby restarts
		s.reduceMin = 8   // force clause-database reduction
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		early := false
		for _, cl := range cnf {
			if !s.AddClause(append([]Lit{}, cl...)...) {
				early = true
				break
			}
		}
		want := bruteForceSatUnder(nv, cnf, nil)
		if early {
			if want {
				t.Fatalf("trial %d: AddClause declared unsat but formula is sat", trial)
			}
			continue
		}
		// Two assumption rounds after the plain solve keep the instance
		// shared across searches.
		if got := s.Solve(); (got == SatSat) != want {
			t.Fatalf("trial %d: Solve = %v, brute force = %v, cnf = %v", trial, got, want, cnf)
		}
		for round := 0; round < 2; round++ {
			var assumptions []Lit
			for v := 0; v < nv; v++ {
				if r.Intn(5) == 0 {
					assumptions = append(assumptions, MkLit(int32(v), r.Intn(2) == 1))
				}
			}
			want := bruteForceSatUnder(nv, cnf, assumptions)
			got := s.Solve(assumptions...)
			if s.ok && (got == SatSat) != want {
				t.Fatalf("trial %d round %d: Solve = %v, brute force = %v", trial, round, got, want)
			}
			if got == SatSat {
				checkModel(t, s, cnf, trial)
			}
		}
		c := s.Counters()
		conflicts += c.Conflicts
		restarts += c.Restarts
		minimized += c.MinimizedLits
	}
	t.Logf("aggregate: %d conflicts, %d restarts, %d minimized literals", conflicts, restarts, minimized)
	if conflicts < 500 {
		t.Errorf("phase-transition instances produced only %d conflicts; search machinery not exercised", conflicts)
	}
	if restarts == 0 {
		t.Error("no restarts fired despite lowered restartBase")
	}
	if minimized == 0 {
		t.Error("learnt-clause minimization removed no literals")
	}
}

// TestSatCompaction drives one instance through enough learning and
// reduction cycles that the arena compacts, then re-checks the verdict
// and model validity on the compacted database.
func TestSatCompaction(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	s := NewSatSolver()
	s.restartBase = 4
	s.reduceMin = 8
	s.compactMin = 64 // compact as soon as dead literals dominate
	nv := 16
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	var cnf [][]Lit
	maxArena := 0
	for batch := 0; batch < 60 && s.ok; batch++ {
		for i := 0; i < 8; i++ {
			cl := make([]Lit, 3)
			perm := r.Perm(nv)
			for j := range cl {
				cl[j] = MkLit(int32(perm[j]), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
			if !s.AddClause(append([]Lit{}, cl...)...) {
				break
			}
		}
		want := bruteForceSatUnder(nv, cnf, nil)
		got := s.Solve()
		if s.ok && (got == SatSat) != want {
			t.Fatalf("batch %d: Solve = %v, brute force = %v", batch, got, want)
		}
		if !s.ok && want {
			t.Fatalf("batch %d: instance died but formula is sat", batch)
		}
		if got == SatSat {
			checkModel(t, s, cnf, batch)
		}
		if len(s.larena) > maxArena {
			maxArena = len(s.larena)
		}
	}
	// Compaction must have run (the arena shrank below its high-water
	// mark at least once) and left no deleted clause behind.
	if len(s.larena) >= maxArena && s.deadLits > 0 {
		t.Errorf("arena never compacted: len=%d high-water=%d deadLits=%d", len(s.larena), maxArena, s.deadLits)
	}
	for _, c := range append(append([]cref{}, s.clauses...), s.learnts...) {
		if s.cdb[c].deleted {
			t.Fatal("deleted clause left in live lists after compaction")
		}
	}
}

// TestSatFuzzDifferentialPreprocess is the preprocessing half of the
// differential oracle: every random instance is solved plain and with a
// Preprocess pass (BVE + subsumption) in front, asserting identical
// verdicts against each other and against enumeration, and that the
// preprocessed solver's model — after eliminated-variable
// reconstruction — still satisfies the ORIGINAL clauses.
func TestSatFuzzDifferentialPreprocess(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 400; trial++ {
		nv := 2 + r.Intn(15)
		cnf := randCNF(r, nv)
		plain, pre := NewSatSolver(), NewSatSolver()
		for i := 0; i < nv; i++ {
			plain.NewVar()
			pre.NewVar()
		}
		deadPlain, deadPre := false, false
		for _, cl := range cnf {
			if !plain.AddClause(append([]Lit{}, cl...)...) {
				deadPlain = true
			}
			if !pre.AddClause(append([]Lit{}, cl...)...) {
				deadPre = true
			}
		}
		if deadPlain != deadPre {
			t.Fatalf("trial %d: AddClause divergence plain=%v pre=%v", trial, deadPlain, deadPre)
		}
		want := bruteForceSatUnder(nv, cnf, nil)
		if deadPlain {
			if want {
				t.Fatalf("trial %d: AddClause declared unsat but formula is sat", trial)
			}
			continue
		}
		preOK := pre.Preprocess(nil, trial%4 != 3) // mostly full BVE, sometimes subsumption-only
		if !preOK {
			if want {
				t.Fatalf("trial %d: Preprocess declared unsat but formula is sat: %v", trial, cnf)
			}
			if got := pre.Solve(); got != SatUnsat {
				t.Fatalf("trial %d: dead preprocessed instance Solve = %v", trial, got)
			}
			continue
		}
		gotPlain := plain.Solve()
		gotPre := pre.Solve()
		if gotPlain != gotPre {
			t.Fatalf("trial %d: verdict divergence plain=%v pre=%v cnf=%v", trial, gotPlain, gotPre, cnf)
		}
		if (gotPre == SatSat) != want {
			t.Fatalf("trial %d: preprocessed Solve = %v, brute force = %v, cnf = %v", trial, gotPre, want, cnf)
		}
		if gotPre == SatSat {
			checkModel(t, pre, cnf, trial) // reconstruction vs the original clauses
		}
	}
}

// TestSatFuzzPreprocessIncremental drives the preprocessed solver the
// way sessions do: a frozen interface (assumption variables), repeated
// assumption solves, clause additions over frozen + freshly created
// variables between solves, and mid-stream re-preprocessing. Verdicts
// and reconstructed models are cross-checked by enumeration each round.
func TestSatFuzzPreprocessIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 150; trial++ {
		nv := 6 + r.Intn(7) // 6..12 initial vars
		s := NewSatSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		// Freeze a random prefix: those are the variables assumptions and
		// future clauses may mention alongside new variables.
		nFrozen := 2 + r.Intn(nv-2)
		frozen := make([]bool, nv)
		for i := 0; i < nFrozen; i++ {
			frozen[i] = true
		}
		var cnf [][]Lit
		dead := false
		addOver := func(pool []int32, n int) {
			for i := 0; i < n; i++ {
				width := 1 + r.Intn(4)
				cl := make([]Lit, width)
				for j := range cl {
					cl[j] = MkLit(pool[r.Intn(len(pool))], r.Intn(2) == 1)
				}
				cnf = append(cnf, cl)
				if !s.AddClause(append([]Lit{}, cl...)...) {
					dead = true
				}
			}
		}
		all := make([]int32, nv)
		for i := range all {
			all[i] = int32(i)
		}
		addOver(all, 2+r.Intn(3*nv))
		if !dead && !s.Preprocess(frozen, true) {
			dead = true
		}
		legal := all[:nFrozen] // frozen prefix; grows with fresh vars
		for round := 0; round < 5; round++ {
			if r.Intn(2) == 0 && len(s.assign) < 16 {
				v := s.NewVar()
				legal = append(legal, v)
				frozen = append(make([]bool, 0, int(v)+1), frozen...)
				for int32(len(frozen)) <= v {
					frozen = append(frozen, true)
				}
			}
			if !dead {
				addOver(legal, 1+r.Intn(4))
			}
			if !dead && r.Intn(3) == 0 && !s.Preprocess(frozen, round%2 == 0) {
				dead = true
			}
			var assumptions []Lit
			for _, v := range legal {
				if r.Intn(4) == 0 {
					assumptions = append(assumptions, MkLit(v, r.Intn(2) == 1))
				}
			}
			want := bruteForceSatUnder(len(s.assign), cnf, assumptions)
			if dead {
				if want {
					t.Fatalf("trial %d round %d: dead but formula+assumptions sat", trial, round)
				}
				if got := s.Solve(assumptions...); got != SatUnsat {
					t.Fatalf("trial %d round %d: dead instance Solve = %v", trial, round, got)
				}
				continue
			}
			got := s.Solve(assumptions...)
			if (got == SatSat) != want {
				t.Fatalf("trial %d round %d: Solve = %v, brute force = %v, cnf = %v assumptions = %v elim = %v",
					trial, round, got, want, cnf, assumptions, s.elim)
			}
			if got == SatSat {
				checkModel(t, s, cnf, trial)
				for _, a := range assumptions {
					val := s.ModelValue(a.Var())
					if a.Neg() {
						val = !val
					}
					if !val {
						t.Fatalf("trial %d round %d: model violates assumption %v", trial, round, a)
					}
				}
			}
		}
	}
}
