package smt

import (
	"sync"
	"sync/atomic"
)

// ClauseExchange shares low-glue learnt clauses between solver instances
// whose problem CNFs are bit-identical. It is the safe successor to the
// reverted cross-query trail-reuse experiment (PR 2): instead of reusing
// search *state* (whose stale decision prefixes blocked fresh learnt
// clauses from strengthening propagation), it shares only *implied
// clauses*, and only between solvers that provably talk about the same
// CNF:
//
//   - Fingerprint scoping. Pools are keyed by the construction
//     fingerprint (an order-sensitive hash of every NewVar/AddClause
//     event, rewritten after preprocessing). Sessions blast
//     deterministically, so workers verifying the same element sequence
//     reach identical fingerprints — and a clause learnt during a solve
//     is implied by the solve-start CNF, hence sound in any solver with
//     that exact fingerprint. Solvers with different fingerprints can
//     never exchange a single literal.
//
//   - Glue filtering. Only clauses recorded with LBD <= maxGlue are
//     published. Low-glue clauses link few decision blocks and stay
//     useful across searches (Audemard & Simon); everything else is
//     noise that would bloat importers' databases.
//
// Pools are append-only with content dedup, so importers track a cursor
// per fingerprint and receive each clause once. All methods are safe for
// concurrent use by the verifier's parallel walkers.
type ClauseExchange struct {
	maxGlue int32
	maxPool int // per-pool clause cap

	mu    sync.Mutex
	pools map[uint64]*exchangePool

	// nextID hands out publisher identities so a solver never re-imports
	// its own publications.
	nextID atomic.Uint32
}

// poolClause is one shared clause plus the identity of its publisher.
type poolClause struct {
	lits  []Lit // immutable once stored
	owner uint32
}

type exchangePool struct {
	mu      sync.Mutex
	clauses []poolClause // append-only
	seen    map[uint64]struct{}
}

// Exchange defaults: glue cap (a notch above the LowGlue counter's <=2 so
// ternary-block clauses still travel), per-pool cap, and a pool-count cap
// that bounds process-wide memory (distinct fingerprints beyond it are
// simply not shared).
const (
	DefaultExchangeGlue = 3
	defaultExchangePool = 1 << 13
	maxExchangePools    = 1 << 10
)

// NewClauseExchange returns an exchange publishing clauses with LBD <=
// maxGlue, at most maxPool per fingerprint (0 picks the defaults).
func NewClauseExchange(maxGlue int32, maxPool int) *ClauseExchange {
	if maxGlue <= 0 {
		maxGlue = DefaultExchangeGlue
	}
	if maxPool <= 0 {
		maxPool = defaultExchangePool
	}
	return &ClauseExchange{maxGlue: maxGlue, maxPool: maxPool, pools: map[uint64]*exchangePool{}}
}

// sharedExchange is the process-wide exchange: every verifier in the
// process publishes into it, so sequential bench cells (and the
// monolithic baseline's engine, when enabled) reuse each other's work
// whenever their CNF construction traces coincide.
var (
	sharedExchange     *ClauseExchange
	sharedExchangeOnce sync.Once
)

// SharedExchange returns the process-wide clause exchange.
func SharedExchange() *ClauseExchange {
	sharedExchangeOnce.Do(func() { sharedExchange = NewClauseExchange(0, 0) })
	return sharedExchange
}

// MaxGlue returns the publication LBD cap.
func (e *ClauseExchange) MaxGlue() int32 { return e.maxGlue }

func (e *ClauseExchange) pool(fp uint64, create bool) *exchangePool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := e.pools[fp]
	if p == nil && create && len(e.pools) < maxExchangePools {
		p = &exchangePool{seen: map[uint64]struct{}{}}
		e.pools[fp] = p
	}
	return p
}

// clauseKey hashes a clause order-insensitively (commutative mix of
// per-literal hashes) for dedup. Collisions only suppress sharing a
// clause, never break soundness.
func clauseKey(lits []Lit) uint64 {
	var sum, xor uint64
	for _, l := range lits {
		h := (uint64(uint32(l)) + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		h ^= h >> 29
		sum += h
		xor ^= h
	}
	return sum ^ (xor * fpPrime) ^ uint64(len(lits))<<56
}

// Publish offers a learnt clause (glue = its recording LBD) to the pool
// of fingerprint fp on behalf of publisher owner. The slice is copied.
// Reports whether the clause was actually stored (fresh, under the glue
// and pool caps).
func (e *ClauseExchange) Publish(fp uint64, lits []Lit, glue int32, owner uint32) bool {
	if glue > e.maxGlue || len(lits) == 0 {
		return false
	}
	p := e.pool(fp, true)
	if p == nil {
		return false
	}
	key := clauseKey(lits)
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.clauses) >= e.maxPool {
		return false
	}
	if _, dup := p.seen[key]; dup {
		return false
	}
	p.seen[key] = struct{}{}
	p.clauses = append(p.clauses, poolClause{lits: append([]Lit(nil), lits...), owner: owner})
	return true
}

// ImportSince returns the pool clauses published after cursor (the value
// a previous call returned; start at 0) by publishers other than owner,
// plus the new cursor. The returned slices are shared and immutable —
// callers must copy before mutating (SatSolver.ImportLearnt does).
func (e *ClauseExchange) ImportSince(fp uint64, cursor int, owner uint32) ([][]Lit, int) {
	p := e.pool(fp, false)
	if p == nil {
		return nil, cursor
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cursor >= len(p.clauses) {
		return nil, cursor
	}
	var out [][]Lit
	for _, pc := range p.clauses[cursor:] {
		if pc.owner != owner {
			out = append(out, pc.lits)
		}
	}
	return out, len(p.clauses)
}

// PoolSize reports how many clauses fingerprint fp's pool holds.
func (e *ClauseExchange) PoolSize(fp uint64) int {
	p := e.pool(fp, false)
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clauses)
}

// attachExchange wires a solver to the exchange for one Solve: learnt
// clauses under the glue cap are published as they are recorded, and
// fresh pool clauses are imported now and at every restart boundary.
// cursors maps fingerprint -> import cursor and persists across solves
// (the session owns it). The returned detach func must run when the
// solve finishes; the fingerprint is pinned at attach time because the
// problem CNF cannot change during a Solve.
func (e *ClauseExchange) attach(s *SatSolver, cursors map[uint64]int) (detach func()) {
	if s.exchID == 0 {
		s.exchID = e.nextID.Add(1)
	}
	fp := s.Fingerprint()
	importNew := func() {
		cls, next := e.ImportSince(fp, cursors[fp], s.exchID)
		for _, cl := range cls {
			if !s.ImportLearnt(cl) {
				break
			}
		}
		cursors[fp] = next
	}
	importNew()
	s.onLearnt = func(lits []Lit, lbd int32) {
		if e.Publish(fp, lits, lbd, s.exchID) {
			s.cnt.ClausesPublished++
		}
	}
	s.onRestart = importNew
	return func() {
		s.onLearnt = nil
		s.onRestart = nil
	}
}
