package smt

import (
	"fmt"
	"sync"

	"vsd/internal/bv"
	"vsd/internal/expr"
)

// gateKey identifies a Tseitin gate structurally: operator plus the
// canonicalized operand pair. AND and XOR cover every gate the blaster
// emits (OR is AND over flipped literals, IFF is flipped XOR, MUX lowers
// to AND/OR), so two gates with equal keys always denote the same
// function and may share one output literal.
type gateKey struct {
	xor  bool
	x, y Lit
}

// blaster translates bitvector expressions into CNF over a SatSolver.
// Each expression node maps to a little-endian vector of literals (bit 0
// first). Variable 0 of the solver is pinned true so that constant bits
// are ordinary literals.
//
// Gates are hash-consed (AIG style): before allocating a fresh Tseitin
// variable, mkAnd/mkXor canonicalize their operand pair and look it up
// in the gate cache, so syntactically repeated structure — parallel
// adders over shared inputs, the equality ladders that segment stitching
// emits — reaches the SAT core as one gate instead of many.
type blaster struct {
	sat      *SatSolver
	tru      Lit // literal that is always true
	exprMem  map[*expr.Expr][]Lit
	varBits  map[string][]Lit
	divMem   map[divModKey]divModResult
	gates    map[gateKey]Lit
	gateHits int64
}

// blasterPool recycles blasters (and their SAT instances) across
// queries: one-shot Solver.Check used to rebuild variable 0, the
// constant clauses, and every per-variable slice per query; a pooled
// blaster resets in place and keeps its allocations warm.
var blasterPool sync.Pool

func newBlaster() *blaster {
	if v := blasterPool.Get(); v != nil {
		b := v.(*blaster)
		b.reset()
		return b
	}
	b := &blaster{
		sat:     NewSatSolver(),
		exprMem: map[*expr.Expr][]Lit{},
		varBits: map[string][]Lit{},
		divMem:  map[divModKey]divModResult{},
		gates:   map[gateKey]Lit{},
	}
	b.pinConstants()
	return b
}

// release returns the blaster to the pool. The caller must not use it
// (or literals/models read from it) afterwards.
func (b *blaster) release() {
	blasterPool.Put(b)
}

func (b *blaster) reset() {
	b.sat.reset()
	b.sat.MaxConflicts = 0
	clear(b.exprMem)
	clear(b.varBits)
	clear(b.divMem)
	clear(b.gates)
	b.gateHits = 0
	b.pinConstants()
}

// dropStructuralCaches clears every cache that can hand out literals
// over variables a CNF rewrite may eliminate: the Tseitin gate cache,
// the per-expression memo, and the division memo. varBits survives —
// model extraction reads named bits through it, and the session freezes
// every variable it holds so preprocessing can never eliminate them.
// Called immediately before SatSolver.Preprocess.
func (b *blaster) dropStructuralCaches() {
	clear(b.exprMem)
	clear(b.divMem)
	clear(b.gates)
}

// frozenVars marks in mask (growing it as needed) every variable
// preprocessing must preserve on this blaster: the pinned constant and
// each named bitvector bit.
func (b *blaster) frozenVars(mask []bool) []bool {
	for len(mask) < b.sat.NumVars() {
		mask = append(mask, false)
	}
	mask[b.tru.Var()] = true
	for _, bits := range b.varBits {
		for _, l := range bits {
			mask[l.Var()] = true
		}
	}
	return mask
}

// pinConstants allocates variable 0 and pins it true so constant bits
// are ordinary literals.
func (b *blaster) pinConstants() {
	v := b.sat.NewVar()
	b.tru = MkLit(v, false)
	b.sat.AddClause(b.tru)
}

func (b *blaster) fls() Lit { return b.tru.Flip() }

func (b *blaster) isConst(l Lit) (bool, bool) {
	if l == b.tru {
		return true, true
	}
	if l == b.fls() {
		return false, true
	}
	return false, false
}

func (b *blaster) fresh() Lit { return MkLit(b.sat.NewVar(), false) }

// gate constructors with constant propagation and structural hashing

func (b *blaster) mkAnd(x, y Lit) Lit {
	if v, ok := b.isConst(x); ok {
		if v {
			return y
		}
		return b.fls()
	}
	if v, ok := b.isConst(y); ok {
		if v {
			return x
		}
		return b.fls()
	}
	if x == y { // idempotence: x ∧ x → x
		return x
	}
	if x == y.Flip() { // complement: x ∧ ¬x → ⊥
		return b.fls()
	}
	// Canonical operand order, then the structural cache.
	if y < x {
		x, y = y, x
	}
	key := gateKey{false, x, y}
	if z, ok := b.gates[key]; ok {
		b.gateHits++
		return z
	}
	z := b.fresh()
	b.sat.AddClause(z.Flip(), x)
	b.sat.AddClause(z.Flip(), y)
	b.sat.AddClause(z, x.Flip(), y.Flip())
	b.gates[key] = z
	return z
}

func (b *blaster) mkOr(x, y Lit) Lit { return b.mkAnd(x.Flip(), y.Flip()).Flip() }

func (b *blaster) mkXor(x, y Lit) Lit {
	if v, ok := b.isConst(x); ok {
		if v {
			return y.Flip()
		}
		return y
	}
	if v, ok := b.isConst(y); ok {
		if v {
			return x.Flip()
		}
		return x
	}
	if x == y {
		return b.fls()
	}
	if x == y.Flip() {
		return b.tru
	}
	// XOR absorbs operand complements into an output flip, so the cache
	// key uses sign-stripped operands: x⊕y, ¬x⊕y, x⊕¬y, ¬x⊕¬y all share
	// one gate.
	flip := false
	if x.Neg() {
		flip = !flip
		x = x.Flip()
	}
	if y.Neg() {
		flip = !flip
		y = y.Flip()
	}
	if y < x {
		x, y = y, x
	}
	key := gateKey{true, x, y}
	if z, ok := b.gates[key]; ok {
		b.gateHits++
		if flip {
			return z.Flip()
		}
		return z
	}
	z := b.fresh()
	b.sat.AddClause(z.Flip(), x, y)
	b.sat.AddClause(z.Flip(), x.Flip(), y.Flip())
	b.sat.AddClause(z, x.Flip(), y)
	b.sat.AddClause(z, x, y.Flip())
	b.gates[key] = z
	if flip {
		return z.Flip()
	}
	return z
}

func (b *blaster) mkIff(x, y Lit) Lit { return b.mkXor(x, y).Flip() }

// mkMux returns c ? x : y.
func (b *blaster) mkMux(c, x, y Lit) Lit {
	if v, ok := b.isConst(c); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	return b.mkOr(b.mkAnd(c, x), b.mkAnd(c.Flip(), y))
}

// vector helpers

func (b *blaster) constBits(v bv.V) []Lit {
	out := make([]Lit, v.W)
	for i := range out {
		if v.Bit(i) {
			out[i] = b.tru
		} else {
			out[i] = b.fls()
		}
	}
	return out
}

func (b *blaster) zeros(n int) []Lit {
	out := make([]Lit, n)
	for i := range out {
		out[i] = b.fls()
	}
	return out
}

func (b *blaster) addBits(x, y []Lit, cin Lit) (sum []Lit, cout Lit) {
	if len(x) != len(y) {
		panic("smt: addBits width mismatch")
	}
	sum = make([]Lit, len(x))
	c := cin
	for i := range x {
		axb := b.mkXor(x[i], y[i])
		sum[i] = b.mkXor(axb, c)
		c = b.mkOr(b.mkAnd(x[i], y[i]), b.mkAnd(axb, c))
	}
	return sum, c
}

func (b *blaster) negBits(x []Lit) []Lit {
	inv := make([]Lit, len(x))
	for i := range x {
		inv[i] = x[i].Flip()
	}
	one := b.zeros(len(x))
	one[0] = b.tru
	s, _ := b.addBits(inv, one, b.fls())
	return s
}

func (b *blaster) subBits(x, y []Lit) []Lit {
	inv := make([]Lit, len(y))
	for i := range y {
		inv[i] = y[i].Flip()
	}
	s, _ := b.addBits(x, inv, b.tru)
	return s
}

func (b *blaster) mulBits(x, y []Lit) []Lit {
	n := len(x)
	acc := b.zeros(n)
	for i := 0; i < n; i++ {
		// Partial product: (x << i) gated by y[i].
		pp := b.zeros(n)
		for j := 0; i+j < n; j++ {
			pp[i+j] = b.mkAnd(x[j], y[i])
		}
		acc, _ = b.addBits(acc, pp, b.fls())
	}
	return acc
}

// mulConst multiplies a literal vector by a constant via shift-adds on
// the constant's set bits.
func (b *blaster) mulConst(x []Lit, c uint64) []Lit {
	n := len(x)
	acc := b.zeros(n)
	for i := 0; i < n; i++ {
		if c>>uint(i)&1 == 0 {
			continue
		}
		pp := b.zeros(n)
		copy(pp[i:], x[:n-i])
		acc, _ = b.addBits(acc, pp, b.fls())
	}
	return acc
}

func (b *blaster) eqBits(x, y []Lit) Lit {
	r := b.tru
	for i := range x {
		r = b.mkAnd(r, b.mkIff(x[i], y[i]))
	}
	return r
}

// ultBits computes unsigned x < y via a borrow chain.
func (b *blaster) ultBits(x, y []Lit) Lit {
	lt := b.fls()
	for i := 0; i < len(x); i++ {
		bitLt := b.mkAnd(x[i].Flip(), y[i])
		eq := b.mkIff(x[i], y[i])
		lt = b.mkOr(bitLt, b.mkAnd(eq, lt))
	}
	return lt
}

func (b *blaster) muxBits(c Lit, x, y []Lit) []Lit {
	out := make([]Lit, len(x))
	for i := range x {
		out[i] = b.mkMux(c, x[i], y[i])
	}
	return out
}

// shiftBits builds a barrel shifter. dir: "shl", "lshr", or "ashr".
// Stages where the stride meets or exceeds the width saturate to the
// fill value, which makes oversized shift amounts behave per bv
// semantics (zero, or sign-fill for ashr).
func (b *blaster) shiftBits(dir string, x, amt []Lit) []Lit {
	n := len(x)
	fill := b.fls()
	if dir == "ashr" {
		fill = x[n-1]
	}
	cur := x
	for s := 0; s < len(amt); s++ {
		shifted := make([]Lit, n)
		if s >= 30 || 1<<uint(s) >= n {
			// This stage's stride meets or exceeds the width: the whole
			// vector becomes fill when the amount bit is set.
			for i := range shifted {
				shifted[i] = fill
			}
		} else {
			stride := 1 << uint(s)
			for i := 0; i < n; i++ {
				src := i + stride
				if dir == "shl" {
					src = i - stride
				}
				if src < 0 || src >= n {
					shifted[i] = fill
				} else {
					shifted[i] = cur[src]
				}
			}
		}
		cur = b.muxBits(amt[s], shifted, cur)
	}
	return cur
}

// blast returns the literal vector for e, memoized.
func (b *blaster) blast(e *expr.Expr) []Lit {
	if bits, ok := b.exprMem[e]; ok {
		return bits
	}
	bits := b.blastNode(e)
	if len(bits) != int(e.Width()) {
		panic(fmt.Sprintf("smt: blasted %d bits for width-%d node", len(bits), e.Width()))
	}
	b.exprMem[e] = bits
	return bits
}

func (b *blaster) varLits(name string, w bv.Width) []Lit {
	if bits, ok := b.varBits[name]; ok {
		if len(bits) != int(w) {
			panic(fmt.Sprintf("smt: variable %s used at widths %d and %d", name, len(bits), w))
		}
		return bits
	}
	bits := make([]Lit, w)
	for i := range bits {
		bits[i] = b.fresh()
	}
	b.varBits[name] = bits
	return bits
}

func (b *blaster) blastNode(e *expr.Expr) []Lit {
	switch e.Kind {
	case expr.KConst:
		return b.constBits(e.Val)
	case expr.KVar:
		return b.varLits(e.Name, e.Width())
	case expr.KNot:
		x := b.blast(e.A)
		out := make([]Lit, len(x))
		for i := range x {
			out[i] = x[i].Flip()
		}
		return out
	case expr.KNeg:
		return b.negBits(b.blast(e.A))
	case expr.KZExt:
		x := b.blast(e.A)
		out := append([]Lit{}, x...)
		for len(out) < int(e.Width()) {
			out = append(out, b.fls())
		}
		return out
	case expr.KSExt:
		x := b.blast(e.A)
		out := append([]Lit{}, x...)
		sign := x[len(x)-1]
		for len(out) < int(e.Width()) {
			out = append(out, sign)
		}
		return out
	case expr.KTrunc:
		return b.blast(e.A)[:e.Width()]
	case expr.KExtract:
		x := b.blast(e.A)
		return x[e.Lo : e.Lo+int(e.Width())]
	case expr.KIte:
		c := b.blast(e.Cond)[0]
		return b.muxBits(c, b.blast(e.A), b.blast(e.B))
	case expr.KSelect:
		panic("smt: select reached bit-blaster; Ackermannization must run first")
	case expr.KBin:
		x, y := b.blast(e.A), b.blast(e.B)
		switch e.Op {
		case expr.OpAdd:
			s, _ := b.addBits(x, y, b.fls())
			return s
		case expr.OpSub:
			return b.subBits(x, y)
		case expr.OpMul:
			// Multiplication by a constant reduces to shift-adds over the
			// constant's set bits — packet code multiplies by 2 and 4
			// (header-length scaling) constantly, and the generic
			// shift-add array is needlessly large for that.
			if v, ok := e.A.IsConst(); ok {
				return b.mulConst(y, v.U)
			}
			if v, ok := e.B.IsConst(); ok {
				return b.mulConst(x, v.U)
			}
			return b.mulBits(x, y)
		case expr.OpUDiv:
			q, _ := b.blastDivMod(e.A, e.B, x, y)
			return q
		case expr.OpURem:
			_, r := b.blastDivMod(e.A, e.B, x, y)
			return r
		case expr.OpAnd:
			out := make([]Lit, len(x))
			for i := range x {
				out[i] = b.mkAnd(x[i], y[i])
			}
			return out
		case expr.OpOr:
			out := make([]Lit, len(x))
			for i := range x {
				out[i] = b.mkOr(x[i], y[i])
			}
			return out
		case expr.OpXor:
			out := make([]Lit, len(x))
			for i := range x {
				out[i] = b.mkXor(x[i], y[i])
			}
			return out
		case expr.OpShl:
			return b.shiftBits("shl", x, y)
		case expr.OpLShr:
			return b.shiftBits("lshr", x, y)
		case expr.OpAShr:
			return b.shiftBits("ashr", x, y)
		case expr.OpEq:
			return []Lit{b.eqBits(x, y)}
		case expr.OpNe:
			return []Lit{b.eqBits(x, y).Flip()}
		case expr.OpUlt:
			return []Lit{b.ultBits(x, y)}
		case expr.OpUle:
			return []Lit{b.ultBits(y, x).Flip()}
		case expr.OpSlt:
			return []Lit{b.ultBits(b.flipSign(x), b.flipSign(y))}
		case expr.OpSle:
			return []Lit{b.ultBits(b.flipSign(y), b.flipSign(x)).Flip()}
		}
	}
	panic("smt: unhandled node kind in bit-blaster")
}

// flipSign inverts the sign bit, mapping signed comparison onto unsigned.
func (b *blaster) flipSign(x []Lit) []Lit {
	out := append([]Lit{}, x...)
	out[len(out)-1] = out[len(out)-1].Flip()
	return out
}

// divModKey keys on the operand expression pair so that a udiv and a
// urem over the same operands share one encoding.
type divModKey struct{ a, b *expr.Expr }

// blastDivMod encodes unsigned division and remainder with fresh result
// vectors q and r constrained by:
//
//	b == 0  ->  q == all-ones  &&  r == a
//	b != 0  ->  zext(q)*zext(b) + zext(r) == zext(a)  (in 2w bits)
//	            &&  r < b
//
// The 2w-bit equation cannot wrap because q, b < 2^w.
func (b *blaster) blastDivMod(ea, eb *expr.Expr, x, y []Lit) (q, r []Lit) {
	key := divModKey{ea, eb}
	if got, ok := b.divMem[key]; ok {
		return got.q, got.r
	}
	n := len(x)
	q = make([]Lit, n)
	r = make([]Lit, n)
	for i := 0; i < n; i++ {
		q[i] = b.fresh()
		r[i] = b.fresh()
	}
	ext := func(v []Lit) []Lit {
		out := append([]Lit{}, v...)
		for len(out) < 2*n {
			out = append(out, b.fls())
		}
		return out
	}
	prod := b.mulBits(ext(q), ext(y))
	sum, _ := b.addBits(prod, ext(r), b.fls())
	eqn := b.eqBits(sum, ext(x))
	rLtB := b.ultBits(r, y)
	bZero := b.eqBits(y, b.zeros(n))
	qOnes := b.eqBits(q, b.constBits(bv.New(bv.Width(n), bv.Width(n).Mask())))
	rEqA := b.eqBits(r, x)
	zeroCase := b.mkAnd(qOnes, rEqA)
	posCase := b.mkAnd(eqn, rLtB)
	b.sat.AddClause(b.mkMux(bZero, zeroCase, posCase))
	b.divMem[key] = divModResult{q, r}
	return q, r
}

type divModResult struct{ q, r []Lit }

// assertTrue constrains the 1-bit expression e to hold.
func (b *blaster) assertTrue(e *expr.Expr) {
	if e.Width() != 1 {
		panic("smt: asserting non-boolean")
	}
	b.sat.AddClause(b.blast(e)[0])
}

// modelVar reads back the model value of a named variable; variables the
// formula never mentioned read as zero.
func (b *blaster) modelVar(name string, w bv.Width) bv.V {
	bits, ok := b.varBits[name]
	if !ok {
		return bv.New(w, 0)
	}
	var u uint64
	for i, l := range bits {
		val := b.sat.ModelValue(l.Var())
		if l.Neg() {
			val = !val
		}
		if val {
			u |= 1 << uint(i)
		}
	}
	return bv.New(w, u)
}
