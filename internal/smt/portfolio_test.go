package smt

import (
	"math/rand"
	"testing"
	"time"

	"vsd/internal/expr"
)

// TestSatFuzzDifferentialPortfolio is the portfolio half of the
// differential oracle: every random instance is solved by a portfolio
// race (2..5 diversified clones, optionally behind a Preprocess pass,
// so all four preprocess×portfolio combinations occur across trials)
// and the verdict is asserted against brute-force enumeration. When the
// race reports Sat, the model adopted back into the base solver must
// satisfy the ORIGINAL clauses and every assumption.
func TestSatFuzzDifferentialPortfolio(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		nv := 2 + r.Intn(15)
		cnf := randCNF(r, nv)
		s := NewSatSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		dead := false
		for _, cl := range cnf {
			if !s.AddClause(append([]Lit{}, cl...)...) {
				dead = true
				break
			}
		}
		var assumptions []Lit
		for v := 0; v < nv; v++ {
			if r.Intn(5) == 0 {
				assumptions = append(assumptions, MkLit(int32(v), r.Intn(2) == 1))
			}
		}
		want := bruteForceSatUnder(nv, cnf, assumptions)
		if dead {
			if want {
				t.Fatalf("trial %d: AddClause declared unsat but formula is sat", trial)
			}
			continue
		}
		if trial%2 == 1 {
			frozen := make([]bool, nv)
			for _, a := range assumptions {
				frozen[a.Var()] = true
			}
			if !s.Preprocess(frozen, trial%4 == 1) {
				if want {
					t.Fatalf("trial %d: Preprocess declared unsat but formula is sat", trial)
				}
				continue
			}
		}
		seats := 2 + trial%4
		var ex *ClauseExchange
		if trial%3 == 0 {
			ex = NewClauseExchange(0, 0)
		}
		verdict, winner, _ := racePortfolio(s, assumptions, seats, -1, time.Time{}, ex)
		if winner == nil || verdict == SatUnknown {
			t.Fatalf("trial %d: unbounded race returned no verdict", trial)
		}
		s.adoptRaceResult(winner, verdict)
		if (verdict == SatSat) != want {
			t.Fatalf("trial %d: race verdict %v, brute force %v, cnf %v assumptions %v",
				trial, verdict, want, cnf, assumptions)
		}
		if verdict == SatSat {
			checkModel(t, s, cnf, trial)
			for _, a := range assumptions {
				val := s.ModelValue(a.Var())
				if a.Neg() {
					val = !val
				}
				if !val {
					t.Fatalf("trial %d: adopted model violates assumption %v", trial, a)
				}
			}
		}
	}
}

// TestPortfolioSeatsDeterministic asserts that diversification uses no
// runtime randomness: cloning the same base twice with the same seat
// yields identical activity orderings and polarities.
func TestPortfolioSeatsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := NewSatSolver()
	for i := 0; i < 12; i++ {
		s.NewVar()
	}
	for _, cl := range randCNF(r, 12) {
		if !s.AddClause(append([]Lit{}, cl...)...) {
			t.Skip("instance died at the top level")
		}
	}
	for seat := range portfolioSeats {
		a := s.cloneAt0(portfolioSeats[seat])
		b := s.cloneAt0(portfolioSeats[seat])
		for v := range a.activity {
			if a.activity[v] != b.activity[v] {
				t.Fatalf("seat %d: activity[%d] differs between identical clones", seat, v)
			}
			if a.polarity[v] != b.polarity[v] {
				t.Fatalf("seat %d: polarity[%d] differs between identical clones", seat, v)
			}
		}
	}
}

// php encodes the pigeonhole principle PHP(p, p-1) — p pigeons into p-1
// holes, unsatisfiable and exponentially hard for resolution — as the
// budget tests' reliably conflict-heavy instance.
func php(s *SatSolver, pigeons int) {
	holes := pigeons - 1
	vars := make([][]Lit, pigeons)
	for i := range vars {
		vars[i] = make([]Lit, holes)
		for j := range vars[i] {
			vars[i][j] = MkLit(s.NewVar(), false)
		}
	}
	for i := 0; i < pigeons; i++ {
		s.AddClause(vars[i]...) // each pigeon sits somewhere
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(vars[i][j].Flip(), vars[k][j].Flip())
			}
		}
	}
}

// TestSolveConflictBudgetUnknown asserts the budget contract: a search
// cut off by MaxConflicts reports SatUnknown — never a verdict — and
// the same instance solves to SatUnsat once the budget is lifted.
func TestSolveConflictBudgetUnknown(t *testing.T) {
	s := NewSatSolver()
	php(s, 7)
	s.MaxConflicts = 5
	if got := s.Solve(); got != SatUnknown {
		t.Fatalf("budgeted solve = %v, want SatUnknown", got)
	}
	s.MaxConflicts = 0
	if got := s.Solve(); got != SatUnsat {
		t.Fatalf("unbounded solve = %v, want SatUnsat", got)
	}
}

// TestSolveDeadlineUnknown asserts the wall-clock budget: an expired
// Deadline yields SatUnknown without fabricating a verdict.
func TestSolveDeadlineUnknown(t *testing.T) {
	s := NewSatSolver()
	php(s, 9)
	s.Deadline = time.Now().Add(-time.Second)
	if got := s.Solve(); got != SatUnknown {
		t.Fatalf("expired-deadline solve = %v, want SatUnknown", got)
	}
}

// TestSessionBudgetUnknown exercises the budget through an incremental
// session: a conflict-capped Check on a hard factoring formula returns
// Unknown with no model, and Stats counts the unresolved search.
func TestSessionBudgetUnknown(t *testing.T) {
	s := New(Options{MaxConflicts: 2, DisableIntervals: true})
	sess := s.NewSession()
	x := expr.Var("x", 24)
	y := expr.Var("y", 24)
	res, m := sess.Check([]*expr.Expr{
		expr.Eq(expr.Mul(x, y), expr.Const(24, 7919*6101&0xffffff)),
		expr.Ult(expr.Const(24, 1), x),
		expr.Ult(expr.Const(24, 1), y),
	})
	if res == Sat {
		t.Skip("budget test got lucky; acceptable")
	}
	if res != Unknown {
		t.Fatalf("budgeted session Check = %v, want Unknown", res)
	}
	if m != nil {
		t.Fatal("Unknown must carry no model")
	}
	if s.Stats().Unknowns == 0 {
		t.Fatal("Stats().Unknowns not incremented")
	}
}
