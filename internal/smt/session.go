package smt

import (
	"fmt"
	"time"

	"vsd/internal/expr"
)

// IncrementalSession is an incremental solving context: one persistent
// SAT instance into which constraint atoms are asserted once, guarded by
// activation literals, and queried under assumption sets. Conflict
// clauses learnt by one query accelerate the next — essential for
// symbolic execution and composition, which issue thousands of queries
// over monotonically growing constraint prefixes.
//
// Queries need NOT be supersets of each other: an atom asserted for one
// query is disabled in the next simply by omitting its activation
// literal from the assumption set, so no invalidation pass is required
// when the atom set shrinks or diverges. What does grow monotonically is
// the underlying CNF; sessions therefore recycle their SAT instance when
// the guarded-atom count exceeds sessionMaxGuards, which bounds memory
// at the cost of relearning.
//
// An IncrementalSession is not safe for concurrent use — each worker
// owns one (the owning Solver hands them out via NewSession, and the
// verifier pools them per walker goroutine). Cheap per-query passes
// (constant folding, the interval analysis, the owning Solver's verdict
// cache) still run first; the incremental core only sees queries those
// passes cannot decide.
type IncrementalSession struct {
	owner    *Solver
	bl       *blaster
	lastCnts blasterCounters
	// guards maps an asserted (select-free, rewritten) atom to its
	// activation literal.
	guards map[*expr.Expr]Lit
	// Session-global Ackermann state: every distinct select node seen so
	// far, its rewritten index, and its fresh variable name.
	selRepl map[*expr.Expr]*expr.Expr // select node -> fresh var
	selInfo []selectInfo
	selVars []string
	rwMemo  map[*expr.Expr]*expr.Expr
	// varsMemo caches the free-variable list of each queried atom: model
	// extraction runs per Sat verdict over the whole (mostly unchanged)
	// atom set, and re-walking the DAGs dominated profiles.
	varsMemo map[*expr.Expr][]*expr.Expr
	// exchCursors tracks, per CNF fingerprint, how far into the clause
	// exchange's pool this session has imported.
	exchCursors map[uint64]int
	// lastSolve attributes the most recent Check (see LastSolve).
	lastSolve SolveInfo
}

// sessionMaxGuards bounds a session's guarded-atom count before its SAT
// instance is recycled (fresh CNF, learnt clauses dropped). Exploration
// along one path rarely needs more than a few thousand distinct atoms;
// the bound exists so a long-lived session cannot grow without limit.
const sessionMaxGuards = 1 << 14

// NewSession returns an incremental context backed by this solver's
// options, statistics, and verdict cache.
func (s *Solver) NewSession() *IncrementalSession {
	sess := &IncrementalSession{owner: s}
	sess.recycle()
	return sess
}

// recycle (re)initializes the SAT instance and every piece of state tied
// to it. Counted under SessionsOpened: a recycle opens a fresh
// underlying solver instance.
func (sess *IncrementalSession) recycle() {
	sess.owner.stats.sessions.Add(1)
	if sess.bl != nil {
		sess.bl.release()
	}
	sess.bl = newBlaster()
	sess.bl.sat.MaxConflicts = sess.owner.Opts.maxConflicts()
	sess.lastCnts = blasterCounters{}
	sess.guards = map[*expr.Expr]Lit{}
	sess.selRepl = map[*expr.Expr]*expr.Expr{}
	sess.selInfo = sess.selInfo[:0]
	sess.selVars = sess.selVars[:0]
	sess.rwMemo = map[*expr.Expr]*expr.Expr{}
	sess.varsMemo = map[*expr.Expr][]*expr.Expr{}
	sess.exchCursors = map[uint64]int{}
}

// Reset recycles the session's SAT instance and every piece of state
// tied to it. It exists for callers that contained a panic mid-query
// (DESIGN.md §9): a search that unwound partway through asserting atoms
// may have left the instance with a guard literal whose defining clause
// set is incomplete, and a later solve over that instance could return
// a wrong Unsat. After Reset the session is equivalent to a freshly
// opened one (learnt clauses are dropped — relearning is the price of
// not trusting poisoned state).
func (sess *IncrementalSession) Reset() { sess.recycle() }

// rewriteSelects rewrites an expression replacing every select node by
// its session variable, registering new selects (and their pairwise
// functional-consistency axioms) as they appear.
func (sess *IncrementalSession) rewriteSelects(e *expr.Expr) *expr.Expr {
	if r, ok := sess.rwMemo[e]; ok {
		return r
	}
	var r *expr.Expr
	if v, ok := sess.selRepl[e]; ok {
		r = v
	} else {
		switch e.Kind {
		case expr.KConst, expr.KVar:
			r = e
		case expr.KSelect:
			// New select: allocate its variable, rewrite its index, and
			// assert consistency with every earlier select of the same
			// base array. The axioms are unconditionally true, so they
			// are added unguarded.
			name := fmt.Sprintf("§s%d", len(sess.selVars))
			v := expr.Var(name, 8)
			sess.selRepl[e] = v
			idx := sess.rewriteSelects(e.B)
			for i, prev := range sess.selInfo {
				if prev.sel.Arr.BaseName() != e.Arr.BaseName() {
					continue
				}
				ax := expr.Implies(expr.Eq(idx, prev.idx), expr.Eq(v, expr.Var(sess.selVars[i], 8)))
				if !ax.IsTrue() {
					sess.bl.assertTrue(ax)
				}
			}
			sess.selInfo = append(sess.selInfo, selectInfo{sel: e, idx: idx})
			sess.selVars = append(sess.selVars, name)
			r = v
		case expr.KBin:
			r = expr.Bin(e.Op, sess.rewriteSelects(e.A), sess.rewriteSelects(e.B))
		case expr.KNot:
			r = expr.Not(sess.rewriteSelects(e.A))
		case expr.KNeg:
			r = expr.Neg(sess.rewriteSelects(e.A))
		case expr.KIte:
			r = expr.Ite(sess.rewriteSelects(e.Cond), sess.rewriteSelects(e.A), sess.rewriteSelects(e.B))
		case expr.KZExt:
			r = expr.ZExt(sess.rewriteSelects(e.A), e.Width())
		case expr.KSExt:
			r = expr.SExt(sess.rewriteSelects(e.A), e.Width())
		case expr.KTrunc:
			r = expr.Trunc(sess.rewriteSelects(e.A), e.Width())
		case expr.KExtract:
			r = expr.Extract(sess.rewriteSelects(e.A), e.Lo, e.Width())
		default:
			panic("smt: unexpected node in session rewriting")
		}
	}
	sess.rwMemo[e] = r
	return r
}

// guardFor asserts the atom (guarded) if new and returns its activation
// literal.
func (sess *IncrementalSession) guardFor(atom *expr.Expr) Lit {
	if g, ok := sess.guards[atom]; ok {
		return g
	}
	rw := sess.rewriteSelects(atom)
	g := MkLit(sess.bl.sat.NewVar(), false)
	lit := sess.bl.blast(rw)[0]
	sess.bl.sat.AddClause(g.Flip(), lit)
	sess.guards[atom] = g
	return g
}

// varsOf returns the free variables of a queried atom, memoized for the
// session's lifetime.
func (sess *IncrementalSession) varsOf(a *expr.Expr) []*expr.Expr {
	if vs, ok := sess.varsMemo[a]; ok {
		return vs
	}
	vs := expr.Vars(a, nil)
	sess.varsMemo[a] = vs
	return vs
}

// Check decides satisfiability of the conjunction incrementally. The
// result contract matches Solver.Check.
func (sess *IncrementalSession) Check(constraints []*expr.Expr) (Result, *expr.Assignment) {
	s := sess.owner
	start := time.Now()
	pq, res, m, done := s.preSolve(constraints)
	if done {
		sess.lastSolve = SolveInfo{Result: res, Duration: time.Since(start)}
		return res, m
	}
	if len(sess.guards)+len(pq.atoms) > sessionMaxGuards {
		sess.recycle()
	}
	s.stats.satCalls.Add(1)
	s.stats.assumptionSolves.Add(1)
	s.stats.clausesReused.Add(int64(sess.bl.sat.NumLearnts()))
	assumptions := make([]Lit, len(pq.atoms))
	for i, a := range pq.atoms {
		assumptions[i] = sess.guardFor(a)
	}
	// In-session preprocessing runs without BVE: subsumption and
	// strengthening preserve equivalence, so the blaster's structural
	// caches and the accumulated learnts stay valid. (Measured: BVE here
	// forces cache invalidation, which re-blasts shared structure and
	// grows the CNF ~35%, an order-of-magnitude search regression.)
	if s.Opts.Preprocess && sess.bl.sat.NeedPreprocess() {
		sess.bl.sat.Preprocess(nil, false)
	}
	verdict := s.satSolve(sess.bl.sat, sess.exchCursors, assumptions...)
	prev := sess.lastCnts
	sess.lastCnts = s.foldBlasterCounters(sess.bl, sess.lastCnts)
	cur := sess.lastCnts
	sess.lastSolve = SolveInfo{
		SATCore:      true,
		Duration:     time.Since(start),
		Conflicts:    cur.sat.Conflicts - prev.sat.Conflicts,
		Decisions:    cur.sat.Decisions - prev.sat.Decisions,
		Propagations: cur.sat.Propagations - prev.sat.Propagations,
		Learnts:      cur.sat.Learnts - prev.sat.Learnts,
		CNFVars:      cur.vars - prev.vars,
		CNFClauses:   cur.sat.ClausesAdded - prev.sat.ClausesAdded,
	}
	switch verdict {
	case SatUnsat:
		sess.lastSolve.Result = Unsat
		s.cachePut(pq.key, pq.cacheAtoms, Unsat, nil)
		return Unsat, nil
	case SatUnknown:
		sess.lastSolve.Result = Unknown
		return Unknown, nil
	}
	sess.lastSolve.Result = Sat
	// Models are extracted over the original atoms: equality substitution
	// can fold a variable out of the solved set, and the witness must
	// still assign it.
	asn := sess.extractModel(pq.cacheAtoms)
	s.cachePut(pq.key, pq.cacheAtoms, Sat, asn)
	return Sat, asn
}

// extractModel reads back values for the variables of the queried atoms
// and array bytes for every select the session has seen. Including all
// session selects (not just the queried ones) is harmless: extra bytes
// only make the witness more concrete.
func (sess *IncrementalSession) extractModel(atoms []*expr.Expr) *expr.Assignment {
	asn := expr.NewAssignment()
	for _, a := range atoms {
		for _, v := range sess.varsOf(a) {
			if _, ok := asn.Vars[v.Name]; !ok {
				asn.Vars[v.Name] = sess.bl.modelVar(v.Name, v.Width())
			}
		}
	}
	// Select variables referenced by the queried atoms' rewrites are
	// found transitively; simply materialize every session select whose
	// guard context makes it meaningful. Unconstrained ones read as 0,
	// which is a valid completion.
	const maxModelIndex = 1 << 20
	tmp := expr.NewAssignment()
	for i, info := range sess.selInfo {
		name := info.sel.Arr.BaseName()
		// The index may mention select variables; resolve them through
		// the blaster's model too.
		for _, v := range sess.varsOf(info.idx) {
			tmp.Vars[v.Name] = sess.bl.modelVar(v.Name, v.Width())
		}
		idx := expr.Eval(info.idx, tmp).Int()
		if idx >= maxModelIndex {
			continue
		}
		val := byte(sess.bl.modelVar(sess.selVars[i], 8).Int())
		content := asn.Arrays[name]
		for uint64(len(content)) <= idx {
			content = append(content, 0)
		}
		content[idx] = val
		asn.Arrays[name] = content
	}
	return asn
}

// flattenAtoms splits conjunctions and folds constants. The second
// result is Sat when everything folded away, Unsat when some atom is
// false, and Unknown otherwise.
func flattenAtoms(constraints []*expr.Expr) ([]*expr.Expr, Result) {
	var atoms []*expr.Expr
	var flatten func(e *expr.Expr)
	flatten = func(e *expr.Expr) {
		if e.Kind == expr.KBin && e.Op == expr.OpAnd && e.Width() == 1 {
			flatten(e.A)
			flatten(e.B)
			return
		}
		atoms = append(atoms, e)
	}
	for _, c := range constraints {
		if c.Width() != 1 {
			panic(fmt.Sprintf("smt: non-boolean constraint %s", c))
		}
		flatten(c)
	}
	out := atoms[:0]
	for _, a := range atoms {
		if a.IsTrue() {
			continue
		}
		if a.IsFalse() {
			return nil, Unsat
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, Sat
	}
	return out, Unknown
}

func dedupAtoms(atoms []*expr.Expr) []*expr.Expr {
	out := atoms[:0]
	for i, a := range atoms {
		if i == 0 || atoms[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}
