package smt

import (
	"math/rand"
	"testing"
)

func TestSatTrivial(t *testing.T) {
	s := NewSatSolver()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != SatSat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if !s.ModelValue(a) {
		t.Error("model does not satisfy unit clause")
	}
}

func TestSatContradiction(t *testing.T) {
	s := NewSatSolver()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != SatUnsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestSatPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes is unsatisfiable. A classic
	// hard-for-resolution family; n=5 exercises conflict analysis,
	// learning, and restarts without taking long.
	n := 5
	s := NewSatSolver()
	vars := make([][]int32, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int32, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	if got := s.Solve(); got != SatUnsat {
		t.Fatalf("pigeonhole Solve = %v, want unsat", got)
	}
}

func TestSatGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable: satisfiable with a valid model.
	const nodes, colors = 5, 3
	s := NewSatSolver()
	v := make([][]int32, nodes)
	for i := range v {
		v[i] = make([]int32, colors)
		for c := range v[i] {
			v[i][c] = s.NewVar()
		}
	}
	for i := 0; i < nodes; i++ {
		lits := make([]Lit, colors)
		for c := 0; c < colors; c++ {
			lits[c] = MkLit(v[i][c], false)
		}
		s.AddClause(lits...)
		for c1 := 0; c1 < colors; c1++ {
			for c2 := c1 + 1; c2 < colors; c2++ {
				s.AddClause(MkLit(v[i][c1], true), MkLit(v[i][c2], true))
			}
		}
	}
	for i := 0; i < nodes; i++ {
		j := (i + 1) % nodes
		for c := 0; c < colors; c++ {
			s.AddClause(MkLit(v[i][c], true), MkLit(v[j][c], true))
		}
	}
	if got := s.Solve(); got != SatSat {
		t.Fatalf("5-cycle 3-coloring = %v, want sat", got)
	}
	// Verify the model is a proper coloring.
	color := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		color[i] = -1
		for c := 0; c < colors; c++ {
			if s.ModelValue(v[i][c]) {
				color[i] = c
				break
			}
		}
		if color[i] < 0 {
			t.Fatalf("node %d has no color in model", i)
		}
	}
	for i := 0; i < nodes; i++ {
		if color[i] == color[(i+1)%nodes] {
			t.Fatalf("adjacent nodes %d,%d share color %d", i, (i+1)%nodes, color[i])
		}
	}
}

// bruteForceSat checks satisfiability of a CNF over nv variables by
// enumeration (nv must be small).
func bruteForceSat(nv int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nv; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestSatAgainstBruteForceRandom3CNF(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nv := 3 + r.Intn(8) // 3..10 vars
		nc := 1 + r.Intn(5*nv)
		var cnf [][]Lit
		for i := 0; i < nc; i++ {
			width := 1 + r.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(int32(r.Intn(nv)), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := NewSatSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		early := false
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				early = true
				break
			}
		}
		want := bruteForceSat(nv, cnf)
		if early {
			if want {
				t.Fatalf("trial %d: AddClause found unsat but formula is sat: %v", trial, cnf)
			}
			continue
		}
		got := s.Solve()
		if (got == SatSat) != want {
			t.Fatalf("trial %d: Solve = %v, brute force = %v, cnf = %v", trial, got, want, cnf)
		}
		if got == SatSat {
			// Verify the model.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					val := s.ModelValue(l.Var())
					if l.Neg() {
						val = !val
					}
					if val {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, cl)
				}
			}
		}
	}
}

func TestSatAssumptions(t *testing.T) {
	s := NewSatSolver()
	a, b := s.NewVar(), s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if got := s.Solve(MkLit(a, false), MkLit(b, true)); got != SatUnsat {
		t.Fatalf("assumptions a, !b with a->b: got %v, want unsat", got)
	}
	// Solver must remain usable for compatible assumptions.
	if got := s.Solve(MkLit(a, false), MkLit(b, false)); got != SatSat {
		t.Fatalf("assumptions a, b: got %v, want sat", got)
	}
	if !s.ModelValue(a) || !s.ModelValue(b) {
		t.Error("model violates assumptions")
	}
}

func TestSatConflictBudget(t *testing.T) {
	// Pigeonhole with a tiny budget must return unknown, not loop.
	n := 7
	s := NewSatSolver()
	s.MaxConflicts = 10
	vars := make([][]int32, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int32, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	if got := s.Solve(); got != SatUnknown {
		t.Fatalf("budgeted Solve = %v, want unknown", got)
	}
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Neg() {
		t.Errorf("MkLit(5,true): var=%d neg=%v", l.Var(), l.Neg())
	}
	if l.Flip().Neg() || l.Flip().Var() != 5 {
		t.Error("Flip broken")
	}
}
