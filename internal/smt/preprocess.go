package smt

import "sort"

// This file implements SatELite-style CNF preprocessing (Eén & Biere):
// backward subsumption, self-subsumption strengthening, and bounded
// variable elimination (BVE) by clause distribution. Subsumption and
// strengthening preserve logical equivalence and are always sound;
// elimination only preserves equisatisfiability, so it
//
//   - never touches frozen variables (the incremental session freezes
//     every variable the outside world can still name: activation
//     guards, bitvector variable bits, and the pinned constant), and
//   - records the removed clauses on elimStack so captureModel can
//     reconstruct values for eliminated variables, keeping SAT
//     witnesses replayable.
//
// The pass runs between solves at decision level 0. It operates in
// detached mode: watch lists are ignored and rebuilt wholesale at the
// end (via compact), unit consequences are applied through the
// occurrence lists instead of propagate, and qhead rewinds to 0 so the
// next Solve re-derives the closure through the fresh watches.

// Preprocessing tunables. The occurrence and resolvent caps follow
// MiniSat-simp's defaults closely; the clause floors keep the pass away
// from instances too small to repay a database rewrite.
const (
	preMinClauses      = 512 // below this a pass cannot pay for itself
	preGrowthFactor    = 4   // re-preprocess when the CNF grew this much
	bveMaxOcc          = 24  // skip variables with more occurrences per polarity
	bveMaxResolventLen = 20  // never distribute resolvents longer than this
	subMaxClauseLen    = 20  // longer clauses are not tried as subsumers
	subMaxOcc          = 800 // skip backward scans over longer occurrence lists
	prePassLimit       = 3   // subsumption/elimination alternations
)

// elimRecord remembers the clauses removed when eliminating variable v:
// the flattened literal runs lits[ends[i-1]:ends[i]]. Every run contains
// v. Records are immutable once pushed (portfolio clones alias them).
type elimRecord struct {
	v    int32
	lits []Lit
	ends []int32
}

// NeedPreprocess reports whether the problem CNF has grown enough since
// the last preprocessing run (or since construction) for another pass.
func (s *SatSolver) NeedPreprocess() bool {
	n := len(s.clauses)
	return n >= preMinClauses && n >= s.preClauses*preGrowthFactor
}

// NumProblemClauses returns the number of live problem clauses.
func (s *SatSolver) NumProblemClauses() int { return len(s.clauses) }

// NumEliminated returns how many variables BVE has removed.
func (s *SatSolver) NumEliminated() int {
	n := 0
	for _, e := range s.elim {
		if e {
			n++
		}
	}
	return n
}

// preprocessor is the transient state of one Preprocess call.
type preprocessor struct {
	s      *SatSolver
	frozen []bool
	occ    [][]cref // per literal: problem clauses registered at creation (may hold stale entries)
	sig    []uint64 // per cref: variable-based 64-bit clause signature
	inSub  []bool   // per cref: queued for subsumption
	subQ   []cref
	uhead  int // trail prefix whose consequences are applied to the DB
}

// Preprocess simplifies the problem CNF. frozen marks variables that
// must survive (nil = none). bve enables variable elimination; without
// it only the equivalence-preserving passes run (unit application,
// subsumption, self-subsumption strengthening), which is the mode
// incremental sessions use: every entailment of the original CNF is
// preserved, so Tseitin literals cached by the blaster stay sound and
// no structural cache needs invalidating. Elimination is reserved for
// one-shot solves, where nothing blasts against the CNF afterwards.
// It reports false when the formula is discovered unsatisfiable at the
// top level (the solver is then dead, like after a failed AddClause).
func (s *SatSolver) Preprocess(frozen []bool, bve bool) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if conf := s.propagate(); conf != crefNil {
		s.ok = false
		return false
	}
	s.cnt.PreprocessRuns++
	p := &preprocessor{s: s, frozen: frozen}
	p.init()
	if p.applyUnits() {
		for pass := 0; pass < prePassLimit && s.ok; pass++ {
			changed := p.subsumptionPass()
			if !s.ok || !p.applyUnits() {
				break
			}
			if bve && p.bvePass() {
				changed = true
			}
			if !s.ok || !p.applyUnits() {
				break
			}
			if !changed {
				break
			}
		}
	}
	if s.ok {
		p.finish()
	}
	return s.ok
}

func (p *preprocessor) init() {
	s := p.s
	p.occ = make([][]cref, 2*len(s.assign))
	p.sig = make([]uint64, len(s.cdb))
	p.inSub = make([]bool, len(s.cdb))
	for _, c := range s.clauses {
		if s.cdb[c].deleted {
			continue
		}
		p.register(c)
	}
}

// register computes the clause's signature, adds it to the occurrence
// lists, and queues it for subsumption.
func (p *preprocessor) register(c cref) {
	s := p.s
	for int(c) >= len(p.sig) {
		p.sig = append(p.sig, 0)
		p.inSub = append(p.inSub, false)
	}
	var sig uint64
	for _, l := range s.lits(c) {
		sig |= 1 << (uint(l.Var()) & 63)
		p.occ[l] = append(p.occ[l], c)
	}
	p.sig[c] = sig
	if !p.inSub[c] {
		p.inSub[c] = true
		p.subQ = append(p.subQ, c)
	}
}

func (p *preprocessor) isFrozen(v int32) bool {
	return p.frozen != nil && int(v) < len(p.frozen) && p.frozen[v]
}

// deleteClause marks a problem clause deleted (lazily: occurrence
// entries stay and are filtered by the deleted flag).
func (p *preprocessor) deleteClause(c cref) {
	h := &p.s.cdb[c]
	if h.deleted {
		return
	}
	h.deleted = true
	p.s.deadLits += int(h.n)
}

// findLit returns the index of l in clause c's literals, or -1.
func (p *preprocessor) findLit(c cref, l Lit) int {
	for i, x := range p.s.lits(c) {
		if x == l {
			return i
		}
	}
	return -1
}

// strengthen removes literal l from clause c in place (self-subsumption
// or a false literal under a level-0 unit). Returns false on top-level
// unsatisfiability.
func (p *preprocessor) strengthen(c cref, l Lit) bool {
	s := p.s
	h := &s.cdb[c]
	if h.deleted {
		return true
	}
	i := p.findLit(c, l)
	if i < 0 {
		return true // stale occurrence entry
	}
	lits := s.lits(c)
	lits[i] = lits[len(lits)-1]
	h.n--
	s.deadLits++
	s.cnt.LitsStrengthened++
	switch h.n {
	case 0:
		s.ok = false
		return false
	case 1:
		u := s.lits(c)[0]
		p.deleteClause(c) // the unit moves to the trail
		switch s.value(u) {
		case lTrue:
			return true
		case lFalse:
			s.ok = false
			return false
		}
		return s.enqueue(u, crefNil)
	}
	// Recompute the signature (it can only shrink) and requeue.
	var sig uint64
	for _, x := range s.lits(c) {
		sig |= 1 << (uint(x.Var()) & 63)
	}
	p.sig[c] = sig
	if !p.inSub[c] {
		p.inSub[c] = true
		p.subQ = append(p.subQ, c)
	}
	return true
}

// applyUnits applies every pending level-0 assignment to the problem
// clause database through the occurrence lists: clauses containing the
// true literal are deleted, clauses containing its negation are
// strengthened (possibly yielding further units, which extend the trail
// and keep the loop going). This is complete unit propagation over the
// problem clauses without touching watch lists.
func (p *preprocessor) applyUnits() bool {
	s := p.s
	for p.uhead < len(s.trail) {
		l := s.trail[p.uhead]
		p.uhead++
		for _, c := range p.occ[l] {
			if !s.cdb[c].deleted && p.findLit(c, l) >= 0 {
				p.deleteClause(c)
			}
		}
		for _, c := range p.occ[l.Flip()] {
			if !p.strengthen(c, l.Flip()) {
				return false
			}
		}
	}
	return true
}

// subsumes checks whether every literal of c occurs in d, allowing at
// most one to occur negated. It returns (false, 0) when c does not
// subsume d, (true, -1) for plain subsumption, and (true, l) when
// exactly one literal occurs negated as l in d — the self-subsumption
// case: resolving c and d on l yields d without l, so d may be
// strengthened by removing l.
func (p *preprocessor) subsumes(c, d cref) (bool, Lit) {
	dl := p.s.lits(d)
	var flipped Lit = -1
	for _, lc := range p.s.lits(c) {
		found := false
		for _, ld := range dl {
			if ld == lc {
				found = true
				break
			}
			if ld == lc.Flip() {
				if flipped != -1 {
					return false, 0
				}
				flipped = ld
				found = true
				break
			}
		}
		if !found {
			return false, 0
		}
	}
	return true, flipped
}

// subsumptionPass drains the subsumption queue: each queued clause is
// tried as a (self-)subsumer against the clauses sharing its rarest
// literal (in either polarity, so strengthening on that literal is not
// missed). Reports whether anything changed.
func (p *preprocessor) subsumptionPass() bool {
	s := p.s
	changed := false
	for len(p.subQ) > 0 {
		c := p.subQ[len(p.subQ)-1]
		p.subQ = p.subQ[:len(p.subQ)-1]
		p.inSub[c] = false
		h := &s.cdb[c]
		if h.deleted || int(h.n) > subMaxClauseLen {
			continue
		}
		var best Lit = -1
		for _, l := range s.lits(c) {
			if best < 0 || len(p.occ[l])+len(p.occ[l.Flip()]) < len(p.occ[best])+len(p.occ[best.Flip()]) {
				best = l
			}
		}
		if best < 0 || len(p.occ[best])+len(p.occ[best.Flip()]) > subMaxOcc {
			continue
		}
		for pol := 0; pol < 2; pol++ {
			cand := p.occ[best]
			if pol == 1 {
				cand = p.occ[best.Flip()]
			}
			for _, d := range cand {
				if d == c || s.cdb[d].deleted || s.cdb[c].deleted {
					continue
				}
				if s.cdb[d].n < s.cdb[c].n || p.sig[c]&^p.sig[d] != 0 {
					continue
				}
				ok, flipped := p.subsumes(c, d)
				if !ok {
					continue
				}
				if flipped == -1 {
					p.deleteClause(d)
					s.cnt.ClausesSubsumed++
					changed = true
				} else if !p.strengthen(d, flipped) {
					return changed
				} else {
					changed = true
				}
			}
		}
	}
	return changed
}

// bvePass tries to eliminate every unfrozen, unassigned variable,
// cheapest (fewest occurrences) first. Reports whether any variable was
// eliminated.
func (p *preprocessor) bvePass() bool {
	s := p.s
	type cand struct {
		v int32
		n int
	}
	var cands []cand
	for v := int32(0); v < int32(len(s.assign)); v++ {
		if s.elim[v] || s.assign[v] != lUndef || p.isFrozen(v) {
			continue
		}
		n := len(p.occ[MkLit(v, false)]) + len(p.occ[MkLit(v, true)])
		if n > 0 {
			cands = append(cands, cand{v, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n < cands[j].n
		}
		return cands[i].v < cands[j].v
	})
	changed := false
	for _, cd := range cands {
		if !s.ok {
			break
		}
		if s.assign[cd.v] != lUndef || s.elim[cd.v] {
			continue
		}
		if p.tryEliminate(cd.v) {
			changed = true
			if !p.applyUnits() {
				break
			}
		}
	}
	return changed
}

// liveOcc gathers the live clauses that really contain l (compacting
// the occurrence list in passing).
func (p *preprocessor) liveOcc(l Lit) []cref {
	s := p.s
	kept := p.occ[l][:0]
	for _, c := range p.occ[l] {
		if !s.cdb[c].deleted && p.findLit(c, l) >= 0 {
			kept = append(kept, c)
		}
	}
	p.occ[l] = kept
	return kept
}

// resolventLen returns the length of the resolvent of cp and cn on v,
// or -1 when it is a tautology.
func (p *preprocessor) resolventLen(cp, cn cref, v int32) int {
	s := p.s
	n := 0
	pl := s.lits(cp)
	nl := s.lits(cn)
	for _, l := range pl {
		if l.Var() != v {
			n++
		}
	}
	for _, l := range nl {
		if l.Var() == v {
			continue
		}
		dup := false
		for _, x := range pl {
			if x.Var() == v {
				continue
			}
			if x == l {
				dup = true
				break
			}
			if x == l.Flip() {
				return -1
			}
		}
		if !dup {
			n++
		}
	}
	return n
}

// tryEliminate eliminates v by clause distribution when the resolvent
// set is no larger than the clauses it replaces (and every resolvent is
// short enough). Returns whether v was eliminated.
func (p *preprocessor) tryEliminate(v int32) bool {
	s := p.s
	pos := p.liveOcc(MkLit(v, false))
	neg := p.liveOcc(MkLit(v, true))
	if len(pos)+len(neg) == 0 || len(pos) > bveMaxOcc || len(neg) > bveMaxOcc {
		return false
	}
	limit := len(pos) + len(neg)
	resolvents := 0
	for _, cp := range pos {
		for _, cn := range neg {
			n := p.resolventLen(cp, cn, v)
			if n < 0 {
				continue
			}
			if n > bveMaxResolventLen {
				return false
			}
			if resolvents++; resolvents > limit {
				return false
			}
		}
	}
	// Commit: save the removed clauses for model reconstruction, then
	// distribute the resolvents and delete the originals. The occurrence
	// lists were compacted by liveOcc, so pos/neg are exactly the live
	// clauses mentioning v.
	rec := elimRecord{v: v}
	for _, c := range append(append([]cref{}, pos...), neg...) {
		rec.lits = append(rec.lits, s.lits(c)...)
		rec.ends = append(rec.ends, int32(len(rec.lits)))
	}
	s.elimStack = append(s.elimStack, rec)
	s.elim[v] = true
	s.cnt.VarsEliminated++
	var buf []Lit
	for _, cp := range pos {
		for _, cn := range neg {
			if p.resolventLen(cp, cn, v) < 0 {
				continue
			}
			buf = buf[:0]
			for _, l := range s.lits(cp) {
				if l.Var() != v {
					buf = append(buf, l)
				}
			}
		outer:
			for _, l := range s.lits(cn) {
				if l.Var() == v {
					continue
				}
				for _, x := range buf {
					if x == l {
						continue outer
					}
				}
				buf = append(buf, l)
			}
			if !p.addResolvent(buf) {
				return true // UNSAT discovered; v is still eliminated
			}
		}
	}
	for _, c := range pos {
		p.deleteClause(c)
	}
	for _, c := range neg {
		p.deleteClause(c)
	}
	return true
}

// addResolvent simplifies a resolvent against the level-0 assignment
// and attaches it as a problem clause. Returns false on top-level
// unsatisfiability.
func (p *preprocessor) addResolvent(lits []Lit) bool {
	s := p.s
	out := lits[:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		switch s.value(out[0]) {
		case lTrue:
			return true
		case lFalse:
			s.ok = false
			return false
		}
		return s.enqueue(out[0], crefNil)
	}
	c := s.alloc(out, false)
	s.clauses = append(s.clauses, c)
	p.register(c)
	return true
}

// finish cleans the learnt database (dropping clauses that mention
// eliminated variables, deleting satisfied ones, and stripping false
// literals), rewrites the arenas without the deleted clauses, rebuilds
// the watch lists, and rewinds propagation so the next Solve re-derives
// the closure under the new database. The construction fingerprint is
// recomputed from the surviving CNF: preprocessing changes which learnt
// clauses are mutually sound to exchange, so pre- and post-rewrite
// solvers must land in different exchange pools.
func (p *preprocessor) finish() {
	s := p.s
	for {
		if !p.applyUnits() {
			return
		}
		again := false
		for _, c := range s.learnts {
			h := &s.cdb[c]
			if h.deleted {
				continue
			}
			drop := false
			for _, l := range s.lits(c) {
				if s.elim[l.Var()] || s.value(l) == lTrue {
					drop = true
					break
				}
			}
			if drop {
				p.deleteClause(c)
				continue
			}
			lits := s.lits(c)
			for i := 0; i < len(lits); {
				if s.value(lits[i]) == lFalse {
					lits[i] = lits[len(lits)-1]
					lits = lits[:len(lits)-1]
					h.n--
					s.deadLits++
				} else {
					i++
				}
			}
			switch h.n {
			case 0:
				s.ok = false
				return
			case 1:
				u := s.lits(c)[0]
				p.deleteClause(c)
				if !s.enqueue(u, crefNil) {
					s.ok = false
					return
				}
				again = true
			}
		}
		if !again {
			break
		}
	}
	// Live learnt lists must drop deleted entries before compact.
	keptL := s.learnts[:0]
	for _, c := range s.learnts {
		if !s.cdb[c].deleted {
			keptL = append(keptL, c)
		}
	}
	s.learnts = keptL
	keptC := s.clauses[:0]
	for _, c := range s.clauses {
		if !s.cdb[c].deleted {
			keptC = append(keptC, c)
		}
	}
	s.clauses = keptC
	// Every standing assignment is level 0; reasons are never consulted
	// there, and some may point at deleted clauses.
	for _, l := range s.trail {
		s.reason[l.Var()] = crefNil
	}
	s.compact()
	s.qhead = 0
	s.orderStale = true
	s.preClauses = len(s.clauses)
	// Refingerprint from the surviving database.
	s.fp = fpOffset
	s.fpMix(uint64(len(s.assign)))
	s.fpMix(uint64(len(s.elimStack)))
	for _, c := range s.clauses {
		lits := s.lits(c)
		s.fpMix(uint64(len(lits))<<32 | 0xbe5)
		for _, l := range lits {
			s.fpMix(uint64(uint32(l)))
		}
	}
}
