package smt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vsd/internal/expr"
)

// Result is the verdict of a satisfiability query.
type Result int8

// Query verdicts.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Options configures a Solver. The zero value enables every technique;
// the Disable* knobs exist for the ablation benchmarks.
type Options struct {
	// DisableIntervals turns off the interval/constant pre-analysis, so
	// every query goes through bit-blasting.
	DisableIntervals bool
	// MaxConflicts bounds each SAT search; 0 means the default budget.
	MaxConflicts int64
}

// DefaultMaxConflicts bounds a single SAT search unless overridden.
const DefaultMaxConflicts = 2_000_000

// Stats counts solver work, for the evaluation harness.
type Stats struct {
	Queries         int64 // total Check calls
	FoldedDecided   int64 // decided by constant folding alone
	IntervalDecided int64 // decided by the interval pre-pass
	SatCalls        int64 // queries that reached the SAT core
	SatConflicts    int64 // conflicts accumulated across SAT calls
	CacheHits       int64 // queries answered from the verdict cache
	// Incremental-session counters.
	SessionsOpened   int64 // IncrementalSession instances created (incl. recycles)
	AssumptionSolves int64 // SAT calls made under assumptions by sessions
	ClausesReused    int64 // learnt clauses carried into assumption solves
}

// Solver decides satisfiability of conjunctions of 1-bit bitvector
// expressions, producing models (including packet-array contents) for
// satisfiable queries. A Solver is safe for concurrent use; each query
// builds an independent SAT instance.
//
// Verdicts are cached by the (order-insensitive) atom set: symbolic
// execution and composition re-issue structurally identical queries —
// the same loop prefix reached through different downstream branches —
// and expression interning makes the atom-set key exact.
type Solver struct {
	Opts  Options
	stats struct {
		queries, folded, interval, satCalls, satConflicts, cacheHits atomic.Int64
		sessions, assumptionSolves, clausesReused                    atomic.Int64
	}
	mu    sync.Mutex
	cache map[uint64][]cacheEntry
}

type cacheEntry struct {
	atoms []*expr.Expr // sorted by pointer for exact matching
	res   Result
	model *expr.Assignment
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	return &Solver{Opts: opts, cache: map[uint64][]cacheEntry{}}
}

// cacheKey hashes the atom set from the per-node structural hashes
// memoized at construction (no DAG re-walking); atoms must be sorted by
// ID so the key is order-insensitive.
func cacheKey(atoms []*expr.Expr) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, a := range atoms {
		h ^= (a.Hash() ^ a.ID()) * 0x100000001b3
		h *= 0xff51afd7ed558ccd
	}
	return h
}

func sortAtoms(atoms []*expr.Expr) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].ID() < atoms[j].ID() })
}

func sameAtoms(a, b []*expr.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Solver) cacheGet(key uint64, atoms []*expr.Expr) (Result, *expr.Assignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.cache[key] {
		if sameAtoms(e.atoms, atoms) {
			return e.res, e.model, true
		}
	}
	return Unknown, nil, false
}

// cacheMaxEntries bounds memory; the cache resets wholesale when full
// (simple and effective at verification scale).
const cacheMaxEntries = 1 << 16

func (s *Solver) cachePut(key uint64, atoms []*expr.Expr, res Result, m *expr.Assignment) {
	// Copy here, on the insert path only: callers reuse their atom slices
	// and the hit path must not pay for a defensive copy.
	stored := append([]*expr.Expr{}, atoms...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) >= cacheMaxEntries {
		s.cache = map[uint64][]cacheEntry{}
	}
	s.cache[key] = append(s.cache[key], cacheEntry{atoms: stored, res: res, model: m})
}

// Stats returns a snapshot of the work counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Queries:          s.stats.queries.Load(),
		FoldedDecided:    s.stats.folded.Load(),
		IntervalDecided:  s.stats.interval.Load(),
		SatCalls:         s.stats.satCalls.Load(),
		SatConflicts:     s.stats.satConflicts.Load(),
		CacheHits:        s.stats.cacheHits.Load(),
		SessionsOpened:   s.stats.sessions.Load(),
		AssumptionSolves: s.stats.assumptionSolves.Load(),
		ClausesReused:    s.stats.clausesReused.Load(),
	}
}

// preSolve runs the cheap per-query passes shared by the one-shot Check
// and the incremental session: flattening and constant folding,
// canonical ordering and deduplication, the verdict cache, and the
// interval pre-analysis. When done is true the query is decided and
// res/m hold the verdict; otherwise atoms is the canonical undecided
// atom set and key its cache key (the caller must cachePut its verdict).
// The returned atoms slice may alias the caller's scratch space — it is
// only valid until the next preSolve call on the same goroutine.
func (s *Solver) preSolve(constraints []*expr.Expr) (atoms []*expr.Expr, key uint64, res Result, m *expr.Assignment, done bool) {
	s.stats.queries.Add(1)
	atoms, early := flattenAtoms(constraints)
	if early != Unknown {
		s.stats.folded.Add(1)
		if early == Sat {
			return nil, 0, Sat, expr.NewAssignment(), true
		}
		return nil, 0, Unsat, nil, true
	}
	sortAtoms(atoms)
	atoms = dedupAtoms(atoms)
	key = cacheKey(atoms)
	if r, cm, ok := s.cacheGet(key, atoms); ok {
		s.stats.cacheHits.Add(1)
		return nil, 0, r, cm, true
	}
	if !s.Opts.DisableIntervals {
		switch verdict, model := preAnalyze(atoms); verdict {
		case intervalUnsat:
			s.stats.interval.Add(1)
			s.cachePut(key, atoms, Unsat, nil)
			return nil, 0, Unsat, nil, true
		case intervalSat:
			s.stats.interval.Add(1)
			s.cachePut(key, atoms, Sat, model)
			return nil, 0, Sat, model, true
		}
	}
	return atoms, key, Unknown, nil, false
}

// Check decides whether the conjunction of the given 1-bit expressions is
// satisfiable. On Sat it returns a model assigning every free variable
// and the bytes of every base array mentioned by the constraints.
func (s *Solver) Check(constraints []*expr.Expr) (Result, *expr.Assignment) {
	// 1.-2. Flattening, folding, dedup, verdict cache, intervals.
	atoms, key, res, m, done := s.preSolve(constraints)
	if done {
		return res, m
	}

	// 3. Ackermannize packet-array reads.
	queryAtoms := atoms
	atoms, selects, selVars := ackermannize(atoms)

	// 4. Bit-blast and solve.
	s.stats.satCalls.Add(1)
	b := newBlaster()
	b.sat.MaxConflicts = s.Opts.MaxConflicts
	if b.sat.MaxConflicts == 0 {
		b.sat.MaxConflicts = DefaultMaxConflicts
	}
	for _, a := range atoms {
		b.assertTrue(a)
	}
	verdict := b.sat.Solve()
	_, _, conflicts := b.sat.Stats()
	s.stats.satConflicts.Add(conflicts)
	switch verdict {
	case SatUnsat:
		s.cachePut(key, queryAtoms, Unsat, nil)
		return Unsat, nil
	case SatUnknown:
		return Unknown, nil
	}

	// 5. Reconstruct the model.
	asn := expr.NewAssignment()
	var vars []*expr.Expr
	for _, a := range atoms {
		vars = expr.Vars(a, vars)
	}
	for _, v := range vars {
		asn.Vars[v.Name] = b.modelVar(v.Name, v.Width())
	}
	// Array contents: evaluate each select's (rewritten) index under the
	// model, then place the select variable's value at that index. The
	// Ackermann constraints guarantee consistency.
	// Indices are capped defensively: the IR guards every packet access
	// with a bounds assertion, so genuine models never index past the
	// maximum packet size, but a caller-supplied unguarded query must not
	// make us allocate gigabytes.
	const maxModelIndex = 1 << 20
	for i, sel := range selects {
		name := sel.sel.Arr.BaseName()
		idx := expr.Eval(sel.idx, asn).Int()
		if idx >= maxModelIndex {
			continue
		}
		val := byte(asn.Vars[selVars[i]].Int())
		content := asn.Arrays[name]
		for uint64(len(content)) <= idx {
			content = append(content, 0)
		}
		content[idx] = val
		asn.Arrays[name] = content
	}
	// Drop the internal Ackermann variables from the reported model.
	for _, n := range selVars {
		delete(asn.Vars, n)
	}
	s.cachePut(key, queryAtoms, Sat, asn)
	return Sat, asn
}

// selectInfo pairs a KSelect node with its select-free rewritten index.
type selectInfo struct {
	sel *expr.Expr
	idx *expr.Expr
}

// ackermannize replaces every KSelect node in the atoms with a fresh
// 8-bit variable and appends functional-consistency constraints: for any
// two reads of the same base array, equal indices force equal values.
// It returns the rewritten atoms, the select descriptors, and the fresh
// variable names (parallel slices).
func ackermannize(atoms []*expr.Expr) ([]*expr.Expr, []selectInfo, []string) {
	var sels []*expr.Expr
	for _, a := range atoms {
		sels = expr.SelectsOf(a, sels)
	}
	if len(sels) == 0 {
		return atoms, nil, nil
	}
	// Deterministic order for reproducible encodings.
	sort.Slice(sels, func(i, j int) bool {
		si, sj := sels[i], sels[j]
		if si.Arr.BaseName() != sj.Arr.BaseName() {
			return si.Arr.BaseName() < sj.Arr.BaseName()
		}
		return si.B.String() < sj.B.String()
	})
	repl := map[*expr.Expr]*expr.Expr{}
	names := make([]string, len(sels))
	for i, sel := range sels {
		names[i] = fmt.Sprintf("§sel%d", i)
		repl[sel] = expr.Var(names[i], 8)
	}
	// Rewrite: replace selects bottom-up (an index expression may itself
	// contain selects).
	memo := map[*expr.Expr]*expr.Expr{}
	var rw func(e *expr.Expr) *expr.Expr
	rw = func(e *expr.Expr) *expr.Expr {
		if e == nil {
			return nil
		}
		if r, ok := memo[e]; ok {
			return r
		}
		var r *expr.Expr
		if v, ok := repl[e]; ok {
			r = v
		} else {
			switch e.Kind {
			case expr.KConst, expr.KVar:
				r = e
			case expr.KBin:
				r = expr.Bin(e.Op, rw(e.A), rw(e.B))
			case expr.KNot:
				r = expr.Not(rw(e.A))
			case expr.KNeg:
				r = expr.Neg(rw(e.A))
			case expr.KIte:
				r = expr.Ite(rw(e.Cond), rw(e.A), rw(e.B))
			case expr.KZExt:
				r = expr.ZExt(rw(e.A), e.Width())
			case expr.KSExt:
				r = expr.SExt(rw(e.A), e.Width())
			case expr.KTrunc:
				r = expr.Trunc(rw(e.A), e.Width())
			case expr.KExtract:
				r = expr.Extract(rw(e.A), e.Lo, e.Width())
			default:
				panic("smt: unexpected node during Ackermannization")
			}
		}
		memo[e] = r
		return r
	}
	infos := make([]selectInfo, len(sels))
	outAtoms := make([]*expr.Expr, 0, len(atoms)+len(sels)*(len(sels)-1)/2)
	for _, a := range atoms {
		outAtoms = append(outAtoms, rw(a))
	}
	for i, sel := range sels {
		infos[i] = selectInfo{sel: sel, idx: rw(sel.B)}
	}
	// Functional consistency.
	for i := 0; i < len(sels); i++ {
		for j := i + 1; j < len(sels); j++ {
			if sels[i].Arr.BaseName() != sels[j].Arr.BaseName() {
				continue
			}
			vi, vj := expr.Var(names[i], 8), expr.Var(names[j], 8)
			c := expr.Implies(expr.Eq(infos[i].idx, infos[j].idx), expr.Eq(vi, vj))
			if !c.IsTrue() {
				outAtoms = append(outAtoms, c)
			}
		}
	}
	return outAtoms, infos, names
}
