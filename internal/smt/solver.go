package smt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vsd/internal/expr"
)

// Result is the verdict of a satisfiability query.
type Result int8

// Query verdicts.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Options configures a Solver. The zero value enables every technique;
// the Disable* knobs exist for the ablation benchmarks.
type Options struct {
	// DisableIntervals turns off the interval/constant pre-analysis, so
	// every query goes through bit-blasting.
	DisableIntervals bool
	// MaxConflicts bounds each SAT search; 0 means the default budget.
	MaxConflicts int64
}

// DefaultMaxConflicts bounds a single SAT search unless overridden.
const DefaultMaxConflicts = 2_000_000

// Stats counts solver work, for the evaluation harness.
type Stats struct {
	Queries         int64 // total Check calls
	FoldedDecided   int64 // decided by constant folding alone
	IntervalDecided int64 // decided by the interval pre-pass
	SatCalls        int64 // queries that reached the SAT core
	SatConflicts    int64 // conflicts accumulated across SAT calls
	CacheHits       int64 // queries answered from the verdict cache
}

// Solver decides satisfiability of conjunctions of 1-bit bitvector
// expressions, producing models (including packet-array contents) for
// satisfiable queries. A Solver is safe for concurrent use; each query
// builds an independent SAT instance.
//
// Verdicts are cached by the (order-insensitive) atom set: symbolic
// execution and composition re-issue structurally identical queries —
// the same loop prefix reached through different downstream branches —
// and expression interning makes the atom-set key exact.
type Solver struct {
	Opts  Options
	stats struct {
		queries, folded, interval, satCalls, satConflicts, cacheHits atomic.Int64
	}
	mu    sync.Mutex
	cache map[uint64][]cacheEntry
}

type cacheEntry struct {
	atoms []*expr.Expr // sorted by pointer for exact matching
	res   Result
	model *expr.Assignment
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	return &Solver{Opts: opts, cache: map[uint64][]cacheEntry{}}
}

// cacheKey hashes the atom set; atoms must be sorted by ID so the key
// is order-insensitive.
func cacheKey(atoms []*expr.Expr) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, a := range atoms {
		h ^= a.ID() * 0x100000001b3
		h *= 0xff51afd7ed558ccd
	}
	return h
}

func sortAtoms(atoms []*expr.Expr) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].ID() < atoms[j].ID() })
}

func sameAtoms(a, b []*expr.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Solver) cacheGet(key uint64, atoms []*expr.Expr) (Result, *expr.Assignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.cache[key] {
		if sameAtoms(e.atoms, atoms) {
			return e.res, e.model, true
		}
	}
	return Unknown, nil, false
}

// cacheMaxEntries bounds memory; the cache resets wholesale when full
// (simple and effective at verification scale).
const cacheMaxEntries = 1 << 16

func (s *Solver) cachePut(key uint64, atoms []*expr.Expr, res Result, m *expr.Assignment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) >= cacheMaxEntries {
		s.cache = map[uint64][]cacheEntry{}
	}
	s.cache[key] = append(s.cache[key], cacheEntry{atoms: atoms, res: res, model: m})
}

// Stats returns a snapshot of the work counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Queries:         s.stats.queries.Load(),
		FoldedDecided:   s.stats.folded.Load(),
		IntervalDecided: s.stats.interval.Load(),
		SatCalls:        s.stats.satCalls.Load(),
		SatConflicts:    s.stats.satConflicts.Load(),
		CacheHits:       s.stats.cacheHits.Load(),
	}
}

// Check decides whether the conjunction of the given 1-bit expressions is
// satisfiable. On Sat it returns a model assigning every free variable
// and the bytes of every base array mentioned by the constraints.
func (s *Solver) Check(constraints []*expr.Expr) (Result, *expr.Assignment) {
	s.stats.queries.Add(1)
	// 1. Flatten conjunctions and fold constants.
	atoms := make([]*expr.Expr, 0, len(constraints))
	var flatten func(e *expr.Expr)
	flatten = func(e *expr.Expr) {
		if e.Kind == expr.KBin && e.Op == expr.OpAnd && e.Width() == 1 {
			flatten(e.A)
			flatten(e.B)
			return
		}
		atoms = append(atoms, e)
	}
	for _, c := range constraints {
		if c.Width() != 1 {
			panic(fmt.Sprintf("smt: non-boolean constraint %s", c))
		}
		flatten(c)
	}
	out := atoms[:0]
	for _, a := range atoms {
		if a.IsTrue() {
			continue
		}
		if a.IsFalse() {
			s.stats.folded.Add(1)
			return Unsat, nil
		}
		out = append(out, a)
	}
	atoms = out
	if len(atoms) == 0 {
		s.stats.folded.Add(1)
		return Sat, expr.NewAssignment()
	}
	// Deduplicate and canonically order the atom set, then consult the
	// verdict cache.
	sortAtoms(atoms)
	dedup := atoms[:0]
	for i, a := range atoms {
		if i == 0 || atoms[i-1] != a {
			dedup = append(dedup, a)
		}
	}
	atoms = dedup
	key := cacheKey(atoms)
	atomsCopy := append([]*expr.Expr{}, atoms...)
	if res, m, ok := s.cacheGet(key, atomsCopy); ok {
		s.stats.cacheHits.Add(1)
		return res, m
	}

	// 2. Interval pre-analysis.
	if !s.Opts.DisableIntervals {
		switch verdict, model := preAnalyze(atoms); verdict {
		case intervalUnsat:
			s.stats.interval.Add(1)
			s.cachePut(key, atomsCopy, Unsat, nil)
			return Unsat, nil
		case intervalSat:
			s.stats.interval.Add(1)
			s.cachePut(key, atomsCopy, Sat, model)
			return Sat, model
		}
	}

	// 3. Ackermannize packet-array reads.
	atoms, selects, selVars := ackermannize(atoms)

	// 4. Bit-blast and solve.
	s.stats.satCalls.Add(1)
	b := newBlaster()
	b.sat.MaxConflicts = s.Opts.MaxConflicts
	if b.sat.MaxConflicts == 0 {
		b.sat.MaxConflicts = DefaultMaxConflicts
	}
	for _, a := range atoms {
		b.assertTrue(a)
	}
	verdict := b.sat.Solve()
	_, _, conflicts := b.sat.Stats()
	s.stats.satConflicts.Add(conflicts)
	switch verdict {
	case SatUnsat:
		s.cachePut(key, atomsCopy, Unsat, nil)
		return Unsat, nil
	case SatUnknown:
		return Unknown, nil
	}

	// 5. Reconstruct the model.
	asn := expr.NewAssignment()
	var vars []*expr.Expr
	for _, a := range atoms {
		vars = expr.Vars(a, vars)
	}
	for _, v := range vars {
		asn.Vars[v.Name] = b.modelVar(v.Name, v.Width())
	}
	// Array contents: evaluate each select's (rewritten) index under the
	// model, then place the select variable's value at that index. The
	// Ackermann constraints guarantee consistency.
	// Indices are capped defensively: the IR guards every packet access
	// with a bounds assertion, so genuine models never index past the
	// maximum packet size, but a caller-supplied unguarded query must not
	// make us allocate gigabytes.
	const maxModelIndex = 1 << 20
	for i, sel := range selects {
		name := sel.sel.Arr.BaseName()
		idx := expr.Eval(sel.idx, asn).Int()
		if idx >= maxModelIndex {
			continue
		}
		val := byte(asn.Vars[selVars[i]].Int())
		content := asn.Arrays[name]
		for uint64(len(content)) <= idx {
			content = append(content, 0)
		}
		content[idx] = val
		asn.Arrays[name] = content
	}
	// Drop the internal Ackermann variables from the reported model.
	for _, n := range selVars {
		delete(asn.Vars, n)
	}
	s.cachePut(key, atomsCopy, Sat, asn)
	return Sat, asn
}

// selectInfo pairs a KSelect node with its select-free rewritten index.
type selectInfo struct {
	sel *expr.Expr
	idx *expr.Expr
}

// ackermannize replaces every KSelect node in the atoms with a fresh
// 8-bit variable and appends functional-consistency constraints: for any
// two reads of the same base array, equal indices force equal values.
// It returns the rewritten atoms, the select descriptors, and the fresh
// variable names (parallel slices).
func ackermannize(atoms []*expr.Expr) ([]*expr.Expr, []selectInfo, []string) {
	var sels []*expr.Expr
	for _, a := range atoms {
		sels = expr.SelectsOf(a, sels)
	}
	if len(sels) == 0 {
		return atoms, nil, nil
	}
	// Deterministic order for reproducible encodings.
	sort.Slice(sels, func(i, j int) bool {
		si, sj := sels[i], sels[j]
		if si.Arr.BaseName() != sj.Arr.BaseName() {
			return si.Arr.BaseName() < sj.Arr.BaseName()
		}
		return si.B.String() < sj.B.String()
	})
	repl := map[*expr.Expr]*expr.Expr{}
	names := make([]string, len(sels))
	for i, sel := range sels {
		names[i] = fmt.Sprintf("§sel%d", i)
		repl[sel] = expr.Var(names[i], 8)
	}
	// Rewrite: replace selects bottom-up (an index expression may itself
	// contain selects).
	memo := map[*expr.Expr]*expr.Expr{}
	var rw func(e *expr.Expr) *expr.Expr
	rw = func(e *expr.Expr) *expr.Expr {
		if e == nil {
			return nil
		}
		if r, ok := memo[e]; ok {
			return r
		}
		var r *expr.Expr
		if v, ok := repl[e]; ok {
			r = v
		} else {
			switch e.Kind {
			case expr.KConst, expr.KVar:
				r = e
			case expr.KBin:
				r = expr.Bin(e.Op, rw(e.A), rw(e.B))
			case expr.KNot:
				r = expr.Not(rw(e.A))
			case expr.KNeg:
				r = expr.Neg(rw(e.A))
			case expr.KIte:
				r = expr.Ite(rw(e.Cond), rw(e.A), rw(e.B))
			case expr.KZExt:
				r = expr.ZExt(rw(e.A), e.Width())
			case expr.KSExt:
				r = expr.SExt(rw(e.A), e.Width())
			case expr.KTrunc:
				r = expr.Trunc(rw(e.A), e.Width())
			case expr.KExtract:
				r = expr.Extract(rw(e.A), e.Lo, e.Width())
			default:
				panic("smt: unexpected node during Ackermannization")
			}
		}
		memo[e] = r
		return r
	}
	infos := make([]selectInfo, len(sels))
	outAtoms := make([]*expr.Expr, 0, len(atoms)+len(sels)*(len(sels)-1)/2)
	for _, a := range atoms {
		outAtoms = append(outAtoms, rw(a))
	}
	for i, sel := range sels {
		infos[i] = selectInfo{sel: sel, idx: rw(sel.B)}
	}
	// Functional consistency.
	for i := 0; i < len(sels); i++ {
		for j := i + 1; j < len(sels); j++ {
			if sels[i].Arr.BaseName() != sels[j].Arr.BaseName() {
				continue
			}
			vi, vj := expr.Var(names[i], 8), expr.Var(names[j], 8)
			c := expr.Implies(expr.Eq(infos[i].idx, infos[j].idx), expr.Eq(vi, vj))
			if !c.IsTrue() {
				outAtoms = append(outAtoms, c)
			}
		}
	}
	return outAtoms, infos, names
}
