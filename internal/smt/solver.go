package smt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsd/internal/expr"
)

// Result is the verdict of a satisfiability query.
type Result int8

// Query verdicts.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Options configures a Solver. The zero value enables every technique;
// the Disable* knobs exist for the ablation benchmarks.
type Options struct {
	// DisableIntervals turns off the interval/constant pre-analysis, so
	// every query goes through bit-blasting.
	DisableIntervals bool
	// DisableEqSubst turns off the word-level equality-substitution
	// pre-pass (var = const / var = var propagation before blasting).
	DisableEqSubst bool
	// MaxConflicts bounds each SAT search; 0 means the default budget.
	MaxConflicts int64
	// QueryTimeout bounds each SAT search's wall time; 0 means none. An
	// exhausted deadline yields Unknown, never a false verdict.
	QueryTimeout time.Duration
	// Preprocess enables SatELite-style CNF preprocessing (bounded
	// variable elimination, subsumption, self-subsumption) before the
	// first SAT search of each instance, re-run when the CNF has grown
	// enough since the last pass.
	Preprocess bool
	// Portfolio, when >= 2, races that many diversified solver clones on
	// any obligation whose first solve exceeds PortfolioAfter conflicts;
	// the first decisive clone cancels the rest.
	Portfolio int
	// PortfolioAfter is the first-solve conflict budget that triggers a
	// portfolio race; 0 picks DefaultPortfolioAfter.
	PortfolioAfter int64
	// Exchange, when non-nil, shares low-glue learnt clauses between
	// solver instances whose CNF fingerprints coincide (publish at
	// recording, import at restart boundaries).
	Exchange *ClauseExchange
	// Interrupt, when non-nil, is an external cancellation flag checked
	// during every SAT search (including portfolio seats): setting it
	// makes in-flight and future solves return Unknown. It is the
	// watchdog's lever — a job that exceeds its wall budget is cancelled
	// here even when QueryTimeout is unset or the search is stuck in a
	// propagation storm between deadline checks.
	Interrupt *atomic.Bool
	// FaultHook, when non-nil, is consulted before each SAT search by the
	// fault-injection harness (internal/faultinject): it may force the
	// search to return Unknown, to behave as if its deadline expired, or
	// to panic — exercising the degradation ladder without real faults.
	// Production configurations leave it nil.
	FaultHook func() SolveFault
}

// SolveFault is a fault-injection directive for one SAT search.
type SolveFault int8

// Solver-level injectable faults.
const (
	// NoFault runs the search normally.
	NoFault SolveFault = iota
	// ForceUnknown makes the search return Unknown immediately, as if
	// its conflict budget were exhausted.
	ForceUnknown
	// ForceTimeout makes the search return Unknown as if its wall
	// deadline had expired.
	ForceTimeout
	// ForcePanic makes the search panic, exercising the engine-panic
	// containment (recover in verify workers, never a downed daemon).
	ForcePanic
)

// DefaultMaxConflicts bounds a single SAT search unless overridden.
const DefaultMaxConflicts = 2_000_000

// maxConflicts resolves the per-search conflict budget: 0 selects the
// default, negative values mean unbounded. Shared by the one-shot Check
// and IncrementalSession so the two paths cannot drift.
func (o Options) maxConflicts() int64 {
	if o.MaxConflicts != 0 {
		return o.MaxConflicts
	}
	return DefaultMaxConflicts
}

// Stats counts solver work, for the evaluation harness.
type Stats struct {
	Queries         int64 // total Check calls
	FoldedDecided   int64 // decided by constant folding alone
	IntervalDecided int64 // decided by the interval pre-pass
	SatCalls        int64 // queries that reached the SAT core
	SatConflicts    int64 // conflicts accumulated across SAT calls
	CacheHits       int64 // queries answered from the verdict cache
	// Incremental-session counters.
	SessionsOpened   int64 // IncrementalSession instances created (incl. recycles)
	AssumptionSolves int64 // SAT calls made under assumptions by sessions
	ClausesReused    int64 // learnt clauses carried into assumption solves
	// CNF-minimization counters: the equality-substitution pre-pass, the
	// blaster's structural gate cache, and the emitted formula size.
	EqAtomsRewritten int64 // atoms rewritten by equality substitution
	EqDecidedUnsat   int64 // queries decided unsat by equality substitution alone
	GateCacheHits    int64 // Tseitin gates served from the structural cache
	CNFVars          int64 // SAT variables allocated, summed over blasted queries
	CNFClauses       int64 // problem clauses emitted, summed over blasted queries
	// SAT-core heuristics counters.
	MinimizedLits int64 // literals removed by recursive learnt-clause minimization
	LearntLits    int64 // literals in recorded learnt clauses (after minimization)
	LearntClauses int64 // learnt clauses recorded
	GlueSum       int64 // sum of learnt-clause LBDs; avg glue = GlueSum/LearntClauses
	LowGlue       int64 // learnt clauses with LBD <= 2 ("glue" clauses)
	BinaryProps   int64 // unit propagations served by the binary watch lists
	Propagations  int64 // trail literals propagated by the SAT core
	AssumLevels   int64 // assumption literals passed to SAT solves, summed
	Decisions     int64 // decisions made by the SAT core
	Restarts      int64 // Luby restarts performed
	// Preprocessing, portfolio, and clause-exchange counters.
	PreprocessRuns   int64 // CNF preprocessing passes executed
	VarsEliminated   int64 // variables removed by bounded variable elimination
	ClausesSubsumed  int64 // clauses deleted by backward subsumption
	LitsStrengthened int64 // literals removed by self-subsumption strengthening
	ClausesPublished int64 // low-glue learnt clauses published to the exchange
	ClausesImported  int64 // foreign learnt clauses imported from the exchange
	PortfolioRaces   int64 // obligations escalated to a portfolio race
	PortfolioWins    int64 // races some clone decided (the rest hit the budget)
	Unknowns         int64 // SAT searches ending Unknown (budget/deadline/cancel)
	// Robustness counters (DESIGN.md §9).
	InjectedFaults int64 // searches redirected by Options.FaultHook
	SeatPanics     int64 // portfolio seats that panicked and were contained
	Interrupted    int64 // searches cancelled through Options.Interrupt
}

// Solver decides satisfiability of conjunctions of 1-bit bitvector
// expressions, producing models (including packet-array contents) for
// satisfiable queries. A Solver is safe for concurrent use; each query
// builds an independent SAT instance.
//
// Verdicts are cached by the (order-insensitive) atom set: symbolic
// execution and composition re-issue structurally identical queries —
// the same loop prefix reached through different downstream branches —
// and expression interning makes the atom-set key exact.
type Solver struct {
	Opts  Options
	stats struct {
		queries, folded, interval, satCalls, satConflicts, cacheHits atomic.Int64
		sessions, assumptionSolves, clausesReused                    atomic.Int64
		eqRewritten, eqUnsat, gateHits, cnfVars, cnfClauses          atomic.Int64
		minimizedLits, learntLits, learnts, glueSum, lowGlue         atomic.Int64
		binaryProps, propagations, decisions, restarts, assumLevels  atomic.Int64
		preRuns, varsElim, subsumed, strengthened                    atomic.Int64
		published, imported, races, raceWins, unknowns               atomic.Int64
		injected, seatPanics, interrupted                            atomic.Int64
	}
	mu    sync.Mutex
	cache map[uint64][]cacheEntry
}

type cacheEntry struct {
	atoms []*expr.Expr // sorted by pointer for exact matching
	res   Result
	model *expr.Assignment
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	return &Solver{Opts: opts, cache: map[uint64][]cacheEntry{}}
}

// cacheKey hashes the atom set from the per-node structural hashes
// memoized at construction (no DAG re-walking); atoms must be sorted by
// ID so the key is order-insensitive.
func cacheKey(atoms []*expr.Expr) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, a := range atoms {
		h ^= (a.Hash() ^ a.ID()) * 0x100000001b3
		h *= 0xff51afd7ed558ccd
	}
	return h
}

func sortAtoms(atoms []*expr.Expr) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].ID() < atoms[j].ID() })
}

func sameAtoms(a, b []*expr.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Solver) cacheGet(key uint64, atoms []*expr.Expr) (Result, *expr.Assignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.cache[key] {
		if sameAtoms(e.atoms, atoms) {
			return e.res, e.model, true
		}
	}
	return Unknown, nil, false
}

// cacheMaxEntries bounds memory; the cache resets wholesale when full
// (simple and effective at verification scale).
const cacheMaxEntries = 1 << 16

func (s *Solver) cachePut(key uint64, atoms []*expr.Expr, res Result, m *expr.Assignment) {
	// Copy here, on the insert path only: callers reuse their atom slices
	// and the hit path must not pay for a defensive copy.
	stored := append([]*expr.Expr{}, atoms...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) >= cacheMaxEntries {
		s.cache = map[uint64][]cacheEntry{}
	}
	s.cache[key] = append(s.cache[key], cacheEntry{atoms: stored, res: res, model: m})
}

// Stats returns a snapshot of the work counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Queries:          s.stats.queries.Load(),
		FoldedDecided:    s.stats.folded.Load(),
		IntervalDecided:  s.stats.interval.Load(),
		SatCalls:         s.stats.satCalls.Load(),
		SatConflicts:     s.stats.satConflicts.Load(),
		CacheHits:        s.stats.cacheHits.Load(),
		SessionsOpened:   s.stats.sessions.Load(),
		AssumptionSolves: s.stats.assumptionSolves.Load(),
		ClausesReused:    s.stats.clausesReused.Load(),
		EqAtomsRewritten: s.stats.eqRewritten.Load(),
		EqDecidedUnsat:   s.stats.eqUnsat.Load(),
		GateCacheHits:    s.stats.gateHits.Load(),
		CNFVars:          s.stats.cnfVars.Load(),
		CNFClauses:       s.stats.cnfClauses.Load(),
		MinimizedLits:    s.stats.minimizedLits.Load(),
		LearntLits:       s.stats.learntLits.Load(),
		LearntClauses:    s.stats.learnts.Load(),
		GlueSum:          s.stats.glueSum.Load(),
		LowGlue:          s.stats.lowGlue.Load(),
		BinaryProps:      s.stats.binaryProps.Load(),
		Propagations:     s.stats.propagations.Load(),
		AssumLevels:      s.stats.assumLevels.Load(),
		Decisions:        s.stats.decisions.Load(),
		Restarts:         s.stats.restarts.Load(),
		PreprocessRuns:   s.stats.preRuns.Load(),
		VarsEliminated:   s.stats.varsElim.Load(),
		ClausesSubsumed:  s.stats.subsumed.Load(),
		LitsStrengthened: s.stats.strengthened.Load(),
		ClausesPublished: s.stats.published.Load(),
		ClausesImported:  s.stats.imported.Load(),
		PortfolioRaces:   s.stats.races.Load(),
		PortfolioWins:    s.stats.raceWins.Load(),
		Unknowns:         s.stats.unknowns.Load(),
		InjectedFaults:   s.stats.injected.Load(),
		SeatPanics:       s.stats.seatPanics.Load(),
		Interrupted:      s.stats.interrupted.Load(),
	}
}

// blasterCounters snapshots a blaster's CNF and SAT-core counters so
// interleaved solves on a shared instance (incremental sessions) can
// attribute deltas to individual queries.
type blasterCounters struct {
	sat      SatCounters
	gateHits int64
	vars     int64
}

// foldBlasterCounters adds the blaster's counter growth since prev to
// the solver statistics and returns the new snapshot. Safe for
// concurrent use (the statistics are atomics).
func (s *Solver) foldBlasterCounters(b *blaster, prev blasterCounters) blasterCounters {
	cur := blasterCounters{
		sat:      b.sat.Counters(),
		gateHits: b.gateHits,
		vars:     int64(b.sat.NumVars()),
	}
	s.stats.satConflicts.Add(cur.sat.Conflicts - prev.sat.Conflicts)
	s.stats.minimizedLits.Add(cur.sat.MinimizedLits - prev.sat.MinimizedLits)
	s.stats.learntLits.Add(cur.sat.LearntLits - prev.sat.LearntLits)
	s.stats.learnts.Add(cur.sat.Learnts - prev.sat.Learnts)
	s.stats.glueSum.Add(cur.sat.GlueSum - prev.sat.GlueSum)
	s.stats.lowGlue.Add(cur.sat.LowGlue - prev.sat.LowGlue)
	s.stats.binaryProps.Add(cur.sat.BinaryProps - prev.sat.BinaryProps)
	s.stats.propagations.Add(cur.sat.Propagations - prev.sat.Propagations)
	s.stats.assumLevels.Add(cur.sat.AssumLevels - prev.sat.AssumLevels)
	s.stats.decisions.Add(cur.sat.Decisions - prev.sat.Decisions)
	s.stats.restarts.Add(cur.sat.Restarts - prev.sat.Restarts)
	s.stats.cnfVars.Add(cur.vars - prev.vars)
	s.stats.cnfClauses.Add(cur.sat.ClausesAdded - prev.sat.ClausesAdded)
	s.stats.gateHits.Add(cur.gateHits - prev.gateHits)
	s.stats.preRuns.Add(cur.sat.PreprocessRuns - prev.sat.PreprocessRuns)
	s.stats.varsElim.Add(cur.sat.VarsEliminated - prev.sat.VarsEliminated)
	s.stats.subsumed.Add(cur.sat.ClausesSubsumed - prev.sat.ClausesSubsumed)
	s.stats.strengthened.Add(cur.sat.LitsStrengthened - prev.sat.LitsStrengthened)
	s.stats.published.Add(cur.sat.ClausesPublished - prev.sat.ClausesPublished)
	s.stats.imported.Add(cur.sat.ClausesImported - prev.sat.ClausesImported)
	return cur
}

// preprocessIfDue runs CNF preprocessing on the blaster's SAT instance
// when enabled and the CNF has grown enough to repay a pass. The
// blaster's structural caches are dropped first: they could otherwise
// hand future blasting a literal over an eliminated variable. frozen
// marks the externally visible variables; the blaster's own (constant,
// named bits) are always added.
func (s *Solver) preprocessIfDue(b *blaster, frozen []bool) {
	if !s.Opts.Preprocess || !b.sat.NeedPreprocess() {
		return
	}
	b.dropStructuralCaches()
	b.sat.Preprocess(b.frozenVars(frozen), true)
}

// satSolve runs one SAT search under the configured budgets: the
// conflict cap and wall deadline from Options, the clause exchange when
// one is configured (cursors is the caller's per-fingerprint import
// state), and — when the first bounded attempt comes back Unknown with
// budget to spare — a portfolio race of diversified clones whose winner
// is merged back into sat. The verdict is exact (Sat/Unsat) or Unknown;
// budget exhaustion never fabricates a verdict.
func (s *Solver) satSolve(sat *SatSolver, cursors map[uint64]int, assumptions ...Lit) SatResult {
	// Fault injection first: a forced verdict must not consume budget or
	// touch the exchange, so an injected fault reproduces identically
	// regardless of solver state.
	if s.Opts.FaultHook != nil {
		switch s.Opts.FaultHook() {
		case ForceUnknown, ForceTimeout:
			s.stats.injected.Add(1)
			s.stats.unknowns.Add(1)
			return SatUnknown
		case ForcePanic:
			s.stats.injected.Add(1)
			panic("smt: injected solver panic (faultinject)")
		}
	}
	if s.Opts.Interrupt != nil && s.Opts.Interrupt.Load() {
		s.stats.interrupted.Add(1)
		s.stats.unknowns.Add(1)
		return SatUnknown
	}
	sat.Interrupt = s.Opts.Interrupt
	budget := s.Opts.maxConflicts()
	sat.Deadline = time.Time{}
	if s.Opts.QueryTimeout > 0 {
		sat.Deadline = time.Now().Add(s.Opts.QueryTimeout)
	}
	racing := s.Opts.Portfolio >= 2
	first := budget
	if racing {
		after := s.Opts.PortfolioAfter
		if after <= 0 {
			after = DefaultPortfolioAfter
		}
		if budget <= 0 || after < budget {
			first = after
		}
	}
	var detach func()
	if s.Opts.Exchange != nil {
		detach = s.Opts.Exchange.attach(sat, cursors)
	}
	sat.MaxConflicts = first
	verdict := sat.Solve(assumptions...)
	if detach != nil {
		detach()
	}
	if verdict == SatUnknown && racing {
		remaining := int64(-1) // unbounded
		if budget > 0 {
			remaining = budget - first
		}
		expired := s.Opts.QueryTimeout > 0 && !time.Now().Before(sat.Deadline)
		if (budget <= 0 || remaining > 0) && !expired {
			s.stats.races.Add(1)
			raced, winner, seatPanics := racePortfolio(sat, assumptions, s.Opts.Portfolio, remaining, sat.Deadline, s.Opts.Exchange)
			s.stats.seatPanics.Add(seatPanics)
			if winner != nil {
				s.stats.raceWins.Add(1)
				sat.adoptRaceResult(winner, raced)
			}
			verdict = raced
		}
	}
	if verdict == SatUnknown {
		s.stats.unknowns.Add(1)
		if s.Opts.Interrupt != nil && s.Opts.Interrupt.Load() {
			s.stats.interrupted.Add(1)
		}
	}
	return verdict
}

// preQuery is the outcome of preSolve for an undecided query: the atom
// set to solve (equality-substituted) and the canonical original atom
// set with its cache key (the caller must cachePut its verdict under
// cacheAtoms/key, never under the substituted atoms).
type preQuery struct {
	atoms      []*expr.Expr // atoms to blast and solve
	cacheAtoms []*expr.Expr // canonical original atoms (cache identity)
	key        uint64
}

// preSolve runs the cheap per-query passes shared by the one-shot Check
// and the incremental session: flattening and constant folding,
// canonical ordering and deduplication, the verdict cache, the
// equality-substitution pass, and the interval pre-analysis. When done
// is true the query is decided and res/m hold the verdict; otherwise pq
// describes the undecided query. The returned slices may alias the
// caller's scratch space — they are only valid until the next preSolve
// call on the same goroutine.
func (s *Solver) preSolve(constraints []*expr.Expr) (pq preQuery, res Result, m *expr.Assignment, done bool) {
	s.stats.queries.Add(1)
	atoms, early := flattenAtoms(constraints)
	if early != Unknown {
		s.stats.folded.Add(1)
		if early == Sat {
			return preQuery{}, Sat, expr.NewAssignment(), true
		}
		return preQuery{}, Unsat, nil, true
	}
	sortAtoms(atoms)
	atoms = dedupAtoms(atoms)
	key := cacheKey(atoms)
	if r, cm, ok := s.cacheGet(key, atoms); ok {
		s.stats.cacheHits.Add(1)
		return preQuery{}, r, cm, true
	}
	solveAtoms := atoms
	if !s.Opts.DisableEqSubst {
		sub, rewritten, contradiction := substEqualities(atoms)
		s.stats.eqRewritten.Add(rewritten)
		if contradiction {
			s.stats.eqUnsat.Add(1)
			s.cachePut(key, atoms, Unsat, nil)
			return preQuery{}, Unsat, nil, true
		}
		solveAtoms = sub
	}
	if !s.Opts.DisableIntervals {
		// Running intervals after substitution lets the analysis see the
		// propagated constants, which decides strictly more queries.
		switch verdict, model := preAnalyze(solveAtoms); verdict {
		case intervalUnsat:
			s.stats.interval.Add(1)
			s.cachePut(key, atoms, Unsat, nil)
			return preQuery{}, Unsat, nil, true
		case intervalSat:
			s.stats.interval.Add(1)
			s.cachePut(key, atoms, Sat, model)
			return preQuery{}, Sat, model, true
		}
	}
	return preQuery{atoms: solveAtoms, cacheAtoms: atoms, key: key}, Unknown, nil, false
}

// Check decides whether the conjunction of the given 1-bit expressions is
// satisfiable. On Sat it returns a model assigning every free variable
// and the bytes of every base array mentioned by the constraints.
func (s *Solver) Check(constraints []*expr.Expr) (Result, *expr.Assignment) {
	// 1.-2. Flattening, folding, dedup, verdict cache, equality
	// substitution, intervals.
	pq, res, m, done := s.preSolve(constraints)
	if done {
		return res, m
	}

	// 3. Ackermannize packet-array reads.
	atoms, selects, selVars := ackermannize(pq.atoms)

	// 4. Bit-blast and solve on a pooled blaster.
	s.stats.satCalls.Add(1)
	b := newBlaster()
	defer b.release()
	for _, a := range atoms {
		b.assertTrue(a)
	}
	s.preprocessIfDue(b, nil)
	verdict := s.satSolve(b.sat, map[uint64]int{})
	s.foldBlasterCounters(b, blasterCounters{})
	switch verdict {
	case SatUnsat:
		s.cachePut(pq.key, pq.cacheAtoms, Unsat, nil)
		return Unsat, nil
	case SatUnknown:
		return Unknown, nil
	}

	// 5. Reconstruct the model. Variables are collected from the
	// original atoms as well: equality substitution can fold a variable
	// out of every solved atom, and the model must still assign it (its
	// kept defining equality pins the value).
	asn := expr.NewAssignment()
	var vars []*expr.Expr
	for _, a := range atoms {
		vars = expr.Vars(a, vars)
	}
	for _, a := range pq.cacheAtoms {
		vars = expr.Vars(a, vars)
	}
	for _, v := range vars {
		if _, ok := asn.Vars[v.Name]; !ok {
			asn.Vars[v.Name] = b.modelVar(v.Name, v.Width())
		}
	}
	// Array contents: evaluate each select's (rewritten) index under the
	// model, then place the select variable's value at that index. The
	// Ackermann constraints guarantee consistency.
	// Indices are capped defensively: the IR guards every packet access
	// with a bounds assertion, so genuine models never index past the
	// maximum packet size, but a caller-supplied unguarded query must not
	// make us allocate gigabytes.
	const maxModelIndex = 1 << 20
	for i, sel := range selects {
		name := sel.sel.Arr.BaseName()
		idx := expr.Eval(sel.idx, asn).Int()
		if idx >= maxModelIndex {
			continue
		}
		val := byte(asn.Vars[selVars[i]].Int())
		content := asn.Arrays[name]
		for uint64(len(content)) <= idx {
			content = append(content, 0)
		}
		content[idx] = val
		asn.Arrays[name] = content
	}
	// Drop the internal Ackermann variables from the reported model.
	for _, n := range selVars {
		delete(asn.Vars, n)
	}
	s.cachePut(pq.key, pq.cacheAtoms, Sat, asn)
	return Sat, asn
}

// selectInfo pairs a KSelect node with its select-free rewritten index.
type selectInfo struct {
	sel *expr.Expr
	idx *expr.Expr
}

// ackermannize replaces every KSelect node in the atoms with a fresh
// 8-bit variable and appends functional-consistency constraints: for any
// two reads of the same base array, equal indices force equal values.
// It returns the rewritten atoms, the select descriptors, and the fresh
// variable names (parallel slices).
func ackermannize(atoms []*expr.Expr) ([]*expr.Expr, []selectInfo, []string) {
	var sels []*expr.Expr
	for _, a := range atoms {
		sels = expr.SelectsOf(a, sels)
	}
	if len(sels) == 0 {
		return atoms, nil, nil
	}
	// Deterministic order for reproducible encodings.
	sort.Slice(sels, func(i, j int) bool {
		si, sj := sels[i], sels[j]
		if si.Arr.BaseName() != sj.Arr.BaseName() {
			return si.Arr.BaseName() < sj.Arr.BaseName()
		}
		return si.B.String() < sj.B.String()
	})
	repl := map[*expr.Expr]*expr.Expr{}
	names := make([]string, len(sels))
	for i, sel := range sels {
		names[i] = fmt.Sprintf("§sel%d", i)
		repl[sel] = expr.Var(names[i], 8)
	}
	// Rewrite: replace selects bottom-up (an index expression may itself
	// contain selects).
	memo := map[*expr.Expr]*expr.Expr{}
	var rw func(e *expr.Expr) *expr.Expr
	rw = func(e *expr.Expr) *expr.Expr {
		if e == nil {
			return nil
		}
		if r, ok := memo[e]; ok {
			return r
		}
		var r *expr.Expr
		if v, ok := repl[e]; ok {
			r = v
		} else {
			switch e.Kind {
			case expr.KConst, expr.KVar:
				r = e
			case expr.KBin:
				r = expr.Bin(e.Op, rw(e.A), rw(e.B))
			case expr.KNot:
				r = expr.Not(rw(e.A))
			case expr.KNeg:
				r = expr.Neg(rw(e.A))
			case expr.KIte:
				r = expr.Ite(rw(e.Cond), rw(e.A), rw(e.B))
			case expr.KZExt:
				r = expr.ZExt(rw(e.A), e.Width())
			case expr.KSExt:
				r = expr.SExt(rw(e.A), e.Width())
			case expr.KTrunc:
				r = expr.Trunc(rw(e.A), e.Width())
			case expr.KExtract:
				r = expr.Extract(rw(e.A), e.Lo, e.Width())
			default:
				panic("smt: unexpected node during Ackermannization")
			}
		}
		memo[e] = r
		return r
	}
	infos := make([]selectInfo, len(sels))
	outAtoms := make([]*expr.Expr, 0, len(atoms)+len(sels)*(len(sels)-1)/2)
	for _, a := range atoms {
		outAtoms = append(outAtoms, rw(a))
	}
	for i, sel := range sels {
		infos[i] = selectInfo{sel: sel, idx: rw(sel.B)}
	}
	// Functional consistency.
	for i := 0; i < len(sels); i++ {
		for j := i + 1; j < len(sels); j++ {
			if sels[i].Arr.BaseName() != sels[j].Arr.BaseName() {
				continue
			}
			vi, vj := expr.Var(names[i], 8), expr.Var(names[j], 8)
			c := expr.Implies(expr.Eq(infos[i].idx, infos[j].idx), expr.Eq(vi, vj))
			if !c.IsTrue() {
				outAtoms = append(outAtoms, c)
			}
		}
	}
	return outAtoms, infos, names
}
