package smt

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestExchangePublishImport covers the pool contract: glue filtering,
// order-insensitive dedup, cursor advancement, and the publisher-id
// filter (a solver never re-imports its own publications).
func TestExchangePublishImport(t *testing.T) {
	e := NewClauseExchange(2, 8)
	const fp = uint64(0xfeed)
	a := MkLit(1, false)
	b := MkLit(2, true)
	c := MkLit(3, false)
	if e.Publish(fp, []Lit{a, b}, 3, 1) {
		t.Fatal("clause above the glue cap must not publish")
	}
	if !e.Publish(fp, []Lit{a, b}, 2, 1) {
		t.Fatal("low-glue clause must publish")
	}
	if e.Publish(fp, []Lit{b, a}, 1, 2) {
		t.Fatal("permuted duplicate must dedup")
	}
	if !e.Publish(fp, []Lit{a, b, c}, 1, 2) {
		t.Fatal("distinct clause must publish")
	}
	// Publisher 1 sees only publisher 2's clause and vice versa.
	got, cur := e.ImportSince(fp, 0, 1)
	if len(got) != 1 || cur != 2 {
		t.Fatalf("owner 1 import = %d clauses, cursor %d; want 1, 2", len(got), cur)
	}
	if len(got[0]) != 3 {
		t.Fatalf("owner 1 imported its own clause")
	}
	got, cur = e.ImportSince(fp, 0, 2)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("owner 2 import = %v", got)
	}
	// Cursor semantics: nothing new since the last call.
	if got, _ := e.ImportSince(fp, cur, 2); len(got) != 0 {
		t.Fatalf("stale cursor re-delivered %d clauses", len(got))
	}
	if e.PoolSize(fp) != 2 {
		t.Fatalf("PoolSize = %d, want 2", e.PoolSize(fp))
	}
}

// TestExchangeFingerprintIsolation asserts the scoping invariant the
// whole design rests on: pools are keyed by CNF fingerprint, so solvers
// with different fingerprints can never exchange a single clause.
func TestExchangeFingerprintIsolation(t *testing.T) {
	e := NewClauseExchange(0, 0)
	lits := []Lit{MkLit(0, false), MkLit(1, true)}
	if !e.Publish(0x1111, lits, 1, 1) {
		t.Fatal("publish failed")
	}
	if got, _ := e.ImportSince(0x2222, 0, 2); len(got) != 0 {
		t.Fatalf("fingerprint 0x2222 imported %d clauses published under 0x1111", len(got))
	}
	if e.PoolSize(0x2222) != 0 {
		t.Fatal("foreign pool not empty")
	}
}

// TestExchangeSolversDifferentCNFs drives the isolation end to end: two
// solvers with different problem CNFs attached to one exchange must
// never import each other's learnt clauses, while two solvers with
// identical construction traces share them.
func TestExchangeSolversDifferentCNFs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	build := func(extra bool) *SatSolver {
		s := NewSatSolver()
		rr := rand.New(rand.NewSource(1234)) // identical construction trace
		for i := 0; i < 12; i++ {
			s.NewVar()
		}
		for _, cl := range randCNF(rr, 12) {
			s.AddClause(append([]Lit{}, cl...)...)
		}
		if extra {
			s.AddClause(MkLit(int32(r.Intn(12)), true), MkLit(int32(r.Intn(12)), false))
		}
		return s
	}
	same1, same2, diff := build(false), build(false), build(true)
	if same1.Fingerprint() != same2.Fingerprint() {
		t.Fatal("identical construction traces must fingerprint equal")
	}
	if same1.Fingerprint() == diff.Fingerprint() {
		t.Skip("extra clause collided; fingerprints equal by construction")
	}
	e := NewClauseExchange(0, 0)
	for _, s := range []*SatSolver{same1, same2, diff} {
		detach := e.attach(s, map[uint64]int{})
		s.Solve()
		detach()
	}
	if diff.cnt.ClausesImported != 0 {
		t.Fatalf("solver with a different CNF imported %d clauses", diff.cnt.ClausesImported)
	}
	if e.PoolSize(same1.Fingerprint()) > 0 && same2.cnt.ClausesImported == 0 {
		// same2 attached after same1 solved, so anything same1 published
		// was visible to it at attach time.
		t.Fatal("identical-fingerprint solver imported nothing despite a populated pool")
	}
}

// TestExchangeConcurrent hammers one exchange from many goroutines —
// publishers and importers interleaved over a handful of fingerprints —
// under `go test -race`. Each importer asserts it never receives its own
// publications and that every received clause was actually published
// under its fingerprint.
func TestExchangeConcurrent(t *testing.T) {
	e := NewClauseExchange(3, 1<<10)
	fps := []uint64{0xa, 0xb, 0xc}
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := uint32(w + 1)
			r := rand.New(rand.NewSource(int64(w)))
			cursors := map[uint64]int{}
			for i := 0; i < rounds; i++ {
				fp := fps[r.Intn(len(fps))]
				// Tag the clause with its fingerprint (literal width) so
				// cross-pool leaks are detectable, and with its owner.
				cl := []Lit{
					MkLit(int32(fp), false),
					MkLit(int32(owner)+16, r.Intn(2) == 1),
					MkLit(int32(r.Intn(1<<12))+64, true),
				}
				e.Publish(fp, cl, int32(1+r.Intn(4)), owner)
				got, next := e.ImportSince(fp, cursors[fp], owner)
				cursors[fp] = next
				for _, cl := range got {
					if cl[0] != MkLit(int32(fp), false) {
						t.Errorf("worker %d: clause from pool %#x tagged %v", w, fp, cl[0])
					}
					if cl[1].Var() == int32(owner)+16 {
						t.Errorf("worker %d: re-imported own clause", w)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, fp := range fps {
		total += e.PoolSize(fp)
	}
	if total == 0 {
		t.Fatal("nothing was shared")
	}
}

// TestExchangeRacingSolvers runs real portfolio races wired to one
// exchange under the race detector: concurrent clones publishing and
// importing through attach/detach while the race is cancelled mid-way
// by the winning seat.
func TestExchangeRacingSolvers(t *testing.T) {
	r := rand.New(rand.NewSource(1222))
	e := NewClauseExchange(0, 0)
	for trial := 0; trial < 30; trial++ {
		nv := 8 + r.Intn(8)
		cnf := randCNF(r, nv)
		s := NewSatSolver()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		dead := false
		for _, cl := range cnf {
			if !s.AddClause(append([]Lit{}, cl...)...) {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		want := bruteForceSatUnder(nv, cnf, nil)
		verdict, winner, _ := racePortfolio(s, nil, 4, -1, time.Time{}, e)
		if winner == nil {
			t.Fatalf("trial %d: no winner", trial)
		}
		if (verdict == SatSat) != want {
			t.Fatalf("trial %d: raced verdict %v, brute force %v", trial, verdict, want)
		}
	}
}
