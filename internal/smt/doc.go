// Package smt implements the QF_BV satisfiability solver behind every
// verification verdict: a decision procedure for conjunctions of
// bitvector constraints over internal/expr terms, built as a layered
// pipeline of cheap passes in front of a CDCL SAT core.
//
// A query runs through (Solver.preSolve, shared by the one-shot and
// incremental paths):
//
//  1. conjunction flattening and constant folding — most symbolic-
//     execution queries die here;
//  2. canonical ordering + dedup and an order-insensitive verdict cache
//     keyed by the terms' memoized structural hashes;
//  3. word-level equality substitution — var=const / var=var
//     propagation with union-find, often folding the rest of the query
//     (eqsubst.go, DESIGN.md §4.2);
//  4. an interval pre-analysis that decides many comparisons without
//     blasting (intervals.go);
//  5. structurally-hashed bit-blasting to CNF with AIG-style gate
//     sharing (cnf.go, DESIGN.md §4.1) and a MiniSat/glucose-flavored
//     CDCL core: arena clause storage, binary watch lists, recursive
//     learnt-clause minimization, LBD-based clause-DB reduction, Luby
//     restarts (sat.go, DESIGN.md §4.3).
//
// IncrementalSession (DESIGN.md §2) keeps one persistent SAT instance
// per caller: each distinct atom is blasted once behind an activation
// guard, queries assert their atom set as assumptions, and learnt
// clauses carry over between queries. The verifier's workers and the
// symbolic-execution engines each own a session; the Solver itself is
// safe for concurrent use by many sessions.
//
// Sat verdicts come with a model (expr.Assignment) that the verifier
// turns into concrete witness packets; Stats counters flow up into
// verify.Stats and the vsdbench -json records (EXPERIMENTS.md).
package smt
