package smt

// Robustness tests (DESIGN.md §9): the fault-injection hook, the
// watchdog interrupt, and portfolio-seat panic containment. The
// contract under test is uniform — a failed or cancelled search may
// only ever degrade to Unknown, never to a fabricated verdict and never
// to a downed process.

import (
	"sync/atomic"
	"testing"
	"time"

	"vsd/internal/expr"
)

// hardQuery returns constraints that reach the SAT core (the interval
// and equality pre-passes cannot decide multiplication).
func hardQuery() []*expr.Expr {
	x := expr.Var("x", 16)
	y := expr.Var("y", 16)
	return []*expr.Expr{
		expr.Eq(expr.Mul(x, y), expr.Const(16, 0x2a3)),
		expr.Ult(expr.Const(16, 1), x),
		expr.Ult(expr.Const(16, 1), y),
	}
}

func TestFaultHookForcesUnknown(t *testing.T) {
	for _, fault := range []SolveFault{ForceUnknown, ForceTimeout} {
		s := New(Options{FaultHook: func() SolveFault { return fault }})
		r, m := s.Check(hardQuery())
		if r != Unknown || m != nil {
			t.Fatalf("fault %v: Check = %v (model %v), want Unknown", fault, r, m)
		}
		st := s.Stats()
		if st.InjectedFaults == 0 || st.Unknowns == 0 {
			t.Fatalf("fault %v: counters not bumped: %+v", fault, st)
		}
	}
}

func TestFaultHookPanicPropagates(t *testing.T) {
	// The smt layer itself does NOT contain an injected panic: that is
	// the verify workers' job (containment there is what keeps a daemon
	// alive). Here the panic must actually fire.
	s := New(Options{FaultHook: func() SolveFault { return ForcePanic }})
	defer func() {
		if recover() == nil {
			t.Fatal("ForcePanic did not panic")
		}
	}()
	s.Check(hardQuery())
}

func TestFaultHookOneShotThenClean(t *testing.T) {
	// A transient fault: first search forced Unknown, retry decides.
	// This is the queue's retry ladder in miniature.
	var fired atomic.Bool
	s := New(Options{FaultHook: func() SolveFault {
		if fired.CompareAndSwap(false, true) {
			return ForceUnknown
		}
		return NoFault
	}})
	if r, _ := s.Check(hardQuery()); r != Unknown {
		t.Fatalf("first Check = %v, want Unknown", r)
	}
	r, m := s.Check(hardQuery())
	if r != Sat || m == nil {
		t.Fatalf("retry Check = %v, want Sat with model", r)
	}
	for _, c := range hardQuery() {
		if !expr.Eval(c, m).IsTrue() {
			t.Fatalf("retry model violates %s", c)
		}
	}
}

func TestInterruptCancelsSearches(t *testing.T) {
	var interrupt atomic.Bool
	s := New(Options{Interrupt: &interrupt})
	interrupt.Store(true)
	if r, _ := s.Check(hardQuery()); r != Unknown {
		t.Fatalf("interrupted Check = %v, want Unknown", r)
	}
	if st := s.Stats(); st.Interrupted == 0 {
		t.Fatalf("Interrupted counter not bumped: %+v", st)
	}
	// Clearing the flag restores service — the watchdog's Resume path.
	interrupt.Store(false)
	if r, m := s.Check(hardQuery()); r != Sat || m == nil {
		t.Fatalf("post-resume Check = %v, want Sat", r)
	}
}

func TestInterruptCancelsIncrementalSessions(t *testing.T) {
	var interrupt atomic.Bool
	s := New(Options{Interrupt: &interrupt})
	sess := s.NewSession()
	q := hardQuery()
	if r, _ := sess.Check(q); r != Sat {
		t.Fatalf("clean session Check = %v, want Sat", r)
	}
	interrupt.Store(true)
	// A structurally different query (the verdict cache must miss).
	x := expr.Var("x", 16)
	q2 := []*expr.Expr{expr.Eq(expr.Mul(x, x), expr.Const(16, 0x39))}
	if r, _ := sess.Check(q2); r != Unknown {
		t.Fatalf("interrupted session Check = %v, want Unknown", r)
	}
}

func TestRaceContainsSeatPanics(t *testing.T) {
	defer func() { seatStartHook = nil }()
	// A small satisfiable instance: (v0 ∨ v1) ∧ (¬v0 ∨ v1).
	s := NewSatSolver()
	v0, v1 := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(v0, false), MkLit(v1, false))
	s.AddClause(MkLit(v0, true), MkLit(v1, false))

	// Every seat but 0 panics at start; the race must survive, count the
	// panics, and still return seat 0's correct verdict.
	seatStartHook = func(seat int) {
		if seat != 0 {
			panic("injected seat panic")
		}
	}
	verdict, winner, panics := racePortfolio(s, nil, 3, -1, time.Time{}, nil)
	if panics != 2 {
		t.Fatalf("panics = %d, want 2", panics)
	}
	if verdict != SatSat || winner == nil {
		t.Fatalf("race verdict = %v (winner %v), want Sat from the surviving seat", verdict, winner != nil)
	}

	// All seats panic: the race degrades to Unknown — never a verdict
	// from a dead seat, never a crash.
	seatStartHook = func(int) { panic("injected seat panic") }
	verdict, winner, panics = racePortfolio(s, nil, 3, -1, time.Time{}, nil)
	if verdict != SatUnknown || winner != nil || panics != 3 {
		t.Fatalf("all-dead race = %v (winner %v, panics %d), want Unknown/nil/3", verdict, winner != nil, panics)
	}
}
