package smt

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements portfolio solving: obligations whose first solve
// exhausts a conflict budget are re-attacked by K diversified clones of
// the stuck solver racing on goroutines, first decisive verdict wins,
// losers are cancelled through a shared stop flag. Diversification is
// deterministic — restart cadence, branching polarity, VSIDS decay, and
// a splitmix64-scrambled initial activity ordering per seat — never
// runtime randomness, so a race's clone population is reproducible.

// DefaultPortfolioAfter is the first-solve conflict budget that flags an
// obligation as hard enough to race.
const DefaultPortfolioAfter = 4096

// portfolioSeat describes one clone's search-heuristic variation.
type portfolioSeat struct {
	restartBase  int64
	varDecay     float64
	flipPolarity bool
	shuffleSeed  uint64 // 0 = keep the base activity ordering
}

// portfolioSeats is the fixed seat table; seat i of a race takes entry
// i mod len. Seat 0 is a near-baseline continuation (fresh restart
// schedule only); the others progressively diverge.
var portfolioSeats = []portfolioSeat{
	{restartBase: lubyRestartBase, varDecay: 0.95},
	{restartBase: 32, varDecay: 0.90, shuffleSeed: 0x9e3779b97f4a7c15},
	{restartBase: 256, varDecay: 0.99, flipPolarity: true},
	{restartBase: 64, varDecay: 0.95, flipPolarity: true, shuffleSeed: 0xbf58476d1ce4e5b9},
	{restartBase: 16, varDecay: 0.85, shuffleSeed: 0x94d049bb133111eb},
}

// seatStartHook is a test seam: when non-nil it runs at the start of
// every seat goroutine, inside the recover scope, so tests can make a
// seat panic and pin the containment behavior. Always nil in production.
var seatStartHook func(seat int)

// splitmix64 is the standard deterministic 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cloneAt0 deep-copies the solver at decision level 0 (the caller must
// have rewound; a Solve that returned SatUnknown already has). The clone
// shares nothing mutable with the base except the immutable elimRecord
// contents, so base and clones may solve concurrently.
func (s *SatSolver) cloneAt0(seat portfolioSeat) *SatSolver {
	c := NewSatSolver()
	c.cdb = append(c.cdb, s.cdb...)
	c.larena = append(c.larena, s.larena...)
	c.clauses = append(c.clauses, s.clauses...)
	c.learnts = append(c.learnts, s.learnts...)
	c.watches = make([][]watcher, len(s.watches))
	for i, w := range s.watches {
		c.watches[i] = append([]watcher(nil), w...)
	}
	c.binWatches = make([][]binWatch, len(s.binWatches))
	for i, w := range s.binWatches {
		c.binWatches[i] = append([]binWatch(nil), w...)
	}
	c.assign = append(c.assign, s.assign...)
	c.level = append(c.level, s.level...)
	c.reason = append(c.reason, s.reason...)
	c.trail = append(c.trail, s.trail...)
	c.qhead = s.qhead
	c.activity = append(c.activity, s.activity...)
	c.varInc = s.varInc
	c.claInc = s.claInc
	c.polarity = append(c.polarity, s.polarity...)
	c.seen = make([]bool, len(s.seen))
	c.elim = append(c.elim, s.elim...)
	c.elimStack = append(c.elimStack, s.elimStack...) // records are immutable
	c.ok = s.ok
	c.deadLits = s.deadLits
	c.reduceMin = s.reduceMin
	c.compactMin = s.compactMin
	c.preClauses = s.preClauses
	c.fp = s.fp
	c.orderStale = true

	c.restartBase = seat.restartBase
	c.varDecay = seat.varDecay
	if seat.flipPolarity {
		for v := range c.polarity {
			c.polarity[v] = !c.polarity[v]
		}
	}
	if seat.shuffleSeed != 0 {
		// Scramble the initial decision ordering: blend each activity with
		// a deterministic per-variable perturbation scaled to the current
		// activity range, so the clone explores from a different corner
		// without forgetting everything VSIDS learnt.
		maxAct := 1.0
		for _, a := range c.activity {
			if a > maxAct {
				maxAct = a
			}
		}
		for v := range c.activity {
			jitter := float64(splitmix64(seat.shuffleSeed^uint64(v))>>11) / (1 << 53)
			c.activity[v] = c.activity[v]*0.5 + maxAct*jitter*0.5
		}
	}
	return c
}

// racePortfolio races n clones of base under the given assumptions, each
// with conflict budget (<=0 unbounded) and deadline (zero = none). The
// first decisive clone cancels the rest. It returns the verdict, the
// winning clone (nil when every seat came back unknown), and the number
// of seats whose search panicked. When ex is non-nil the clones share
// learnt clauses through it mid-race, under the base solver's
// fingerprint.
//
// A seat goroutine panicking must never take the process down: seats
// run engine code under injectable faults (and, in principle, engine
// bugs), and the race's contract is that a dead seat simply counts as
// Unknown — a lost opportunity, never a lost daemon or a verdict.
func racePortfolio(base *SatSolver, assumptions []Lit, n int, budget int64, deadline time.Time, ex *ClauseExchange) (SatResult, *SatSolver, int64) {
	if n > len(portfolioSeats) {
		n = len(portfolioSeats)
	}
	var stop atomic.Bool
	var panics atomic.Int64
	type seatResult struct {
		verdict SatResult
		clone   *SatSolver
	}
	results := make([]seatResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		clone := base.cloneAt0(portfolioSeats[i])
		clone.MaxConflicts = budget
		clone.Deadline = deadline
		clone.Stop = &stop
		clone.Interrupt = base.Interrupt
		var detach func()
		if ex != nil {
			detach = ex.attach(clone, map[uint64]int{})
		}
		results[i].clone = clone
		wg.Add(1)
		go func(i int, clone *SatSolver) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Containment: the seat's verdict stays SatUnknown and
					// its (possibly inconsistent) clone must never win, so
					// the race result is exactly as if the seat had hit its
					// budget.
					panics.Add(1)
				}
				if detach != nil {
					detach()
				}
			}()
			if seatStartHook != nil {
				seatStartHook(i)
			}
			v := clone.Solve(assumptions...)
			results[i].verdict = v
			if v != SatUnknown {
				stop.Store(true)
			}
		}(i, clone)
	}
	wg.Wait()
	// Lowest decisive seat wins, which keeps the outcome as reproducible
	// as a race can be (verdicts can never disagree, only model choice).
	for i := range results {
		if results[i].verdict != SatUnknown {
			return results[i].verdict, results[i].clone, panics.Load()
		}
	}
	return SatUnknown, nil, panics.Load()
}

// raceImportGlue is the per-race cap on learnt clauses merged back from
// the winning clone into the stuck base solver.
const raceImportGlue = 2048

// adoptRaceResult merges a winning clone back into the base solver: the
// model (for Sat), top-level inconsistency (the clone refuted the CNF
// itself), and the winner's low-glue learnt clauses, so the base — which
// keeps serving the session afterwards — profits from the race's work.
func (s *SatSolver) adoptRaceResult(winner *SatSolver, verdict SatResult) {
	if verdict == SatSat {
		s.model = append(s.model[:0], winner.model...)
	}
	if !winner.ok {
		s.ok = false
	}
	imported := 0
	for _, c := range winner.learnts {
		h := &winner.cdb[c]
		if h.deleted || h.lbd > DefaultExchangeGlue {
			continue
		}
		if !s.ImportLearnt(winner.larena[h.off : h.off+h.n]) {
			return
		}
		if imported++; imported >= raceImportGlue {
			return
		}
	}
}
