package smt

import (
	"math/rand"
	"testing"

	"vsd/internal/expr"
)

func TestSessionBasic(t *testing.T) {
	s := New(Options{})
	sess := s.NewSession()
	x := expr.Var("sx", 8)
	r, m := sess.Check([]*expr.Expr{expr.Eq(expr.Add(x, expr.Const(8, 1)), expr.Const(8, 0))})
	if r != Sat || m.Vars["sx"].U != 255 {
		t.Fatalf("r=%v m=%v", r, m)
	}
	// A contradictory follow-up on the same session.
	r, _ = sess.Check([]*expr.Expr{
		expr.Ult(x, expr.Const(8, 5)),
		expr.Ult(expr.Const(8, 9), x),
	})
	if r != Unsat {
		t.Fatalf("r=%v, want unsat", r)
	}
	// And a satisfiable one again: the session must stay usable.
	r, m = sess.Check([]*expr.Expr{expr.Ult(x, expr.Const(8, 5))})
	if r != Sat || m.Vars["sx"].U >= 5 {
		t.Fatalf("r=%v m=%v", r, m)
	}
}

// TestSessionClauseAdditionAfterSat is the regression test for the
// stale-trail bug: clauses asserted after a Sat answer (whose search
// assignments are still on the trail) must not be dropped as
// "already satisfied".
func TestSessionClauseAdditionAfterSat(t *testing.T) {
	s := New(Options{DisableIntervals: true})
	sess := s.NewSession()
	x := expr.Var("stale", 8)
	// First query leaves x assigned in the SAT core (say x = v).
	r, m := sess.Check([]*expr.Expr{expr.Ult(x, expr.Const(8, 200))})
	if r != Sat {
		t.Fatal(r)
	}
	got := m.Vars["stale"].U
	// Second query asserts x == got+1; if the new clause were simplified
	// against the stale assignment x=got, it could be mishandled.
	want := (got + 1) % 200
	r, m2 := sess.Check([]*expr.Expr{
		expr.Ult(x, expr.Const(8, 200)),
		expr.Eq(x, expr.Const(8, want)),
	})
	if r != Sat {
		t.Fatalf("second query unsat")
	}
	if m2.Vars["stale"].U != want {
		t.Fatalf("x = %d, want %d", m2.Vars["stale"].U, want)
	}
	// Third: force the complement of everything seen so far.
	r, _ = sess.Check([]*expr.Expr{
		expr.Eq(x, expr.Const(8, want)),
		expr.Eq(x, expr.Const(8, (want+7)%256)),
	})
	if r != Unsat {
		t.Fatalf("contradiction not detected: %v", r)
	}
}

// TestSessionAgainstStatelessSolver cross-checks the incremental path
// against the stateless Check on random query sequences sharing
// variables and packet-array selects.
func TestSessionAgainstStatelessSolver(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	pkt := expr.BaseArray("spkt")
	vars := []*expr.Expr{expr.Var("sa", 8), expr.Var("sb", 8)}
	leaf := func() *expr.Expr {
		switch r.Intn(4) {
		case 0:
			return expr.Const(8, uint64(r.Intn(256)))
		case 1:
			return expr.Select(pkt, expr.Const(32, uint64(r.Intn(4))))
		default:
			return vars[r.Intn(len(vars))]
		}
	}
	atom := func() *expr.Expr {
		ops := []expr.Op{expr.OpEq, expr.OpNe, expr.OpUlt, expr.OpUle}
		a := leaf()
		if r.Intn(2) == 0 {
			a = expr.Add(a, leaf())
		}
		return expr.Bin(ops[r.Intn(len(ops))], a, leaf())
	}
	solver := New(Options{})
	sess := solver.NewSession()
	stateless := New(Options{})
	for q := 0; q < 120; q++ {
		n := 1 + r.Intn(4)
		cons := make([]*expr.Expr, n)
		for i := range cons {
			cons[i] = atom()
		}
		rs, ms := sess.Check(cons)
		rp, _ := stateless.Check(cons)
		if rs != rp {
			t.Fatalf("query %d: session=%v stateless=%v cons=%v", q, rs, rp, cons)
		}
		if rs == Sat {
			for _, c := range cons {
				if !expr.Eval(c, ms).IsTrue() {
					t.Fatalf("query %d: session model violates %s", q, c)
				}
			}
		}
	}
}
