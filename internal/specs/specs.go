// Package specs is the reusable functional-spec library (DESIGN.md §6):
// for each transform element of the library, a verify.FuncSpec stating
// its input/output contract — TTL decremented by one, checksum patched
// per RFC 1624, drop-iff-filter-match, NAT source-rewrite consistency,
// strip/encap round-trip, paint, and element transparency.
//
// Specs are built against element semantics exposed by
// internal/elements (FilterAllowExpr, SNATNewSrc, ChecksumPatchExpr),
// so they restate what the configuration *means* independently of the
// IR the element compiled to; the verifier then proves the two agree on
// every feasible composed path, or produces a concrete input/output
// witness pair where they do not (see elements.BuggyDecIPTTL).
//
// All constructors take the concrete IPv4 header offset the pipeline
// establishes before the element runs (14 after the usual Strip(14)).
// Each spec states obligations only for the paths it constrains —
// postconditions return nil for unrelated drops and egresses, so those
// paths stay unconstrained.
//
// seqspecs.go is the multi-packet half (DESIGN.md §8): verify.SeqSpec
// contracts relating different packets of one sequence (CounterMonotone,
// NATMappingStable, RateLimiterBound) and the verify.StateInvariant
// companions proved for unbounded sequences by k-induction
// (TokenBucketLevel).
package specs

import (
	"vsd/internal/elements"
	"vsd/internal/expr"
	"vsd/internal/packet"
	"vsd/internal/symbex"
	"vsd/internal/verify"
)

// TTLDecrement states that every packet emitted at egressElem left with
// its IPv4 TTL decremented by exactly one: out[ttl] = in[ttl] - 1. This
// is the forwarding-correctness half of DecIPTTL's contract (the
// checksum half is ChecksumPatched).
func TTLDecrement(ipOff uint64, egressElem string) verify.FuncSpec {
	return verify.FuncSpec{
		Name: "ttl-decrement",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() || pi.EgressElem() != egressElem {
				return nil
			}
			ttlOff := ipOff + 8
			return expr.Eq(pi.Out(ttlOff, 1), expr.Sub(pi.In(ttlOff, 1), expr.Const(8, 1)))
		},
	}
}

// ChecksumPatched states that every packet emitted at egressElem
// carries the RFC 1624 incremental checksum update for whatever the
// pipeline did to the TTL/protocol halfword. It constrains the checksum
// *relation* rather than a concrete value, so it holds for any rewrite
// of that halfword that patches correctly — including BuggyDecIPTTL,
// whose bug TTLDecrement catches instead.
func ChecksumPatched(ipOff uint64, egressElem string) verify.FuncSpec {
	return verify.FuncSpec{
		Name: "checksum-patched",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() || pi.EgressElem() != egressElem {
				return nil
			}
			want := elements.ChecksumPatchExpr(pi.In(ipOff+10, 2), pi.In(ipOff+8, 2), pi.Out(ipOff+8, 2))
			return expr.Eq(pi.Out(ipOff+10, 2), want)
		},
	}
}

// DropIffFilter states filtering correctness for the IPFilter instance
// fltElem (configured with cfg, the same rule string the element was
// built from): a path that drops inside the filter implies the
// first-match predicate denies the packet, and a path emitted after
// traversing the filter implies the predicate allows it — drop iff
// filter match, the property the paper names.
func DropIffFilter(cfg string, ipOff uint64, fltElem string) (verify.FuncSpec, error) {
	// The predicate only mentions the entry packet and length, which are
	// the same terms on every path — build it once and close over it.
	allow, err := elements.FilterAllowExpr(cfg,
		expr.BaseArray(symbex.PktArrayName), expr.Var(symbex.PktLenVar, 32), ipOff)
	if err != nil {
		return verify.FuncSpec{}, err
	}
	return verify.FuncSpec{
		Name: "drop-iff-filter-match",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			switch {
			case pi.Dropped() && pi.LastElem() == fltElem:
				return expr.Not(allow)
			case pi.Emitted() && pi.Visited(fltElem):
				return allow
			}
			return nil
		},
	}, nil
}

// NATRewrite states source-NAT consistency for the IPRewriter instance
// natElem (configured with cfg, "SNAT NEWSRC"): every packet emitted
// after traversing the rewriter has its source address equal to NEWSRC
// and its destination address untouched.
func NATRewrite(cfg string, ipOff uint64, natElem string) (verify.FuncSpec, error) {
	newSrc, err := elements.SNATNewSrc(cfg)
	if err != nil {
		return verify.FuncSpec{}, err
	}
	return verify.FuncSpec{
		Name: "nat-rewrite",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() || !pi.Visited(natElem) {
				return nil
			}
			return expr.And(
				expr.Eq(pi.Out(ipOff+12, 4), expr.Const(32, uint64(newSrc))),
				expr.Eq(pi.Out(ipOff+16, 4), pi.In(ipOff+16, 4)))
		},
	}, nil
}

// StripRoundTrip states that strip/encap round-trips: every packet
// emitted at egressElem has its header-offset annotation back at zero
// and the bytes in [lo, hi) — the region past the rewritten
// encapsulation header — unchanged. Byte equalities are guarded by the
// symbolic length, so the window may exceed the shortest packets.
func StripRoundTrip(lo, hi uint64, egressElem string) verify.FuncSpec {
	return verify.FuncSpec{
		Name: "strip-roundtrip",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() || pi.EgressElem() != egressElem {
				return nil
			}
			hoff := pi.Meta(packet.MetaHeaderOffset)
			if hoff == nil {
				// No element moved the header offset: nothing to round-trip.
				hoff = expr.Const(32, 0)
			}
			conj := []*expr.Expr{expr.Eq(hoff, expr.Const(32, 0))}
			conj = append(conj, unchangedBytes(pi, lo, hi)...)
			return expr.And(conj...)
		},
	}
}

// Transparent states that an element is a pure observer: every packet
// emitted after traversing elem has the bytes in [lo, hi) unchanged.
// The app-market example uses it to certify that a telemetry probe
// cannot tamper with traffic.
func Transparent(lo, hi uint64, elem string) verify.FuncSpec {
	return verify.FuncSpec{
		Name: "transparent",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() || !pi.Visited(elem) {
				return nil
			}
			return expr.And(unchangedBytes(pi, lo, hi)...)
		},
	}
}

// unchangedBytes builds the guarded per-byte equalities out[i] = in[i]
// for i in [lo, hi), each conditioned on i being within the packet.
func unchangedBytes(pi *verify.PathInfo, lo, hi uint64) []*expr.Expr {
	var conj []*expr.Expr
	for i := lo; i < hi; i++ {
		inLen := expr.Ult(expr.Const(32, i), pi.Len())
		conj = append(conj, expr.Implies(inLen, expr.Eq(pi.Out(i, 1), pi.In(i, 1))))
	}
	return conj
}

// Paint states that every packet emitted at egressElem carries paint
// annotation color — the paint half of a paint/strip round-trip.
func Paint(color uint64, egressElem string) verify.FuncSpec {
	return verify.FuncSpec{
		Name: "paint",
		Post: func(pi *verify.PathInfo) *expr.Expr {
			if !pi.Emitted() || pi.EgressElem() != egressElem {
				return nil
			}
			paint := pi.Meta(packet.MetaPaint)
			if paint == nil {
				// No element paints: the annotation keeps its zero default.
				paint = expr.Const(8, 0)
			}
			return expr.Eq(paint, expr.Const(8, color))
		},
	}
}
