package specs_test

import (
	"testing"

	"vsd/internal/specs"
	"vsd/internal/verify"
)

// leakyNATConfig routes validated IPv4 traffic through the designed-
// buggy translator; conforming packets leave at the NAT's egress.
const leakyNATConfig = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	nat :: LeakyNAT(100.64.0.0);

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> nat;
	chk [1] -> Discard;
`

// ipRewriterConfig is the same pipeline over the correct NAT.
const ipRewriterConfig = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	nat :: IPRewriter(SNAT 100.64.0.1);

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> nat;
	chk [1] -> Discard;
`

// The LeakyNAT bug needs exactly three packets: two-packet sequences
// verify (any interleaving-free pair of one flow maps consistently),
// and the three-packet check refutes with a witness that replays on the
// concrete dataplane byte for byte.
func TestLeakyNATRefutedOnlyByThreePackets(t *testing.T) {
	p := mustParse(t, leakyNATConfig)
	v := newVerifier(48)

	rep2, err := v.VerifySeq(p, specs.NATMappingStable(14, "nat", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Verified {
		t.Fatalf("2-packet mapping stability refuted:\n%s", verify.FormatMultiWitness(rep2.Witnesses[0]))
	}

	rep3, err := v.VerifySeq(p, specs.NATMappingStable(14, "nat", 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Verified {
		t.Fatal("3-packet mapping stability verified — the designed eviction bug is gone")
	}
	if len(rep3.Witnesses) == 0 {
		t.Fatal("refuted without witnesses")
	}
	w := rep3.Witnesses[0]
	if len(w.Packets) != 3 {
		t.Fatalf("witness has %d packets, want 3", len(w.Packets))
	}
	if len(w.InitState) != 0 {
		t.Fatalf("boot-state refutation should not seed state, got %v", w.InitState)
	}
	if err := verify.ReplaySeq(p, w); err != nil {
		t.Fatalf("dataplane replay diverged from the witness: %v", err)
	}
}

// The correct NAT keeps mappings stable at the same depth.
func TestIPRewriterMappingStable(t *testing.T) {
	p := mustParse(t, ipRewriterConfig)
	v := newVerifier(48)
	rep, err := v.VerifySeq(p, specs.NATMappingStable(14, "nat", 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("IPRewriter mapping stability refuted:\n%s", verify.FormatMultiWitness(rep.Witnesses[0]))
	}
}

// The saturating counter's count is monotone across packets.
func TestCounterMonotoneSpec(t *testing.T) {
	p := mustParse(t, `
		src :: InfiniteSource;
		cnt :: Counter(SATURATE);
		src -> cnt -> Discard;`)
	v := newVerifier(48)
	rep, err := v.VerifySeq(p, specs.CounterMonotone("cnt", 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("counter monotonicity refuted:\n%s", verify.FormatMultiWitness(rep.Witnesses[0]))
	}
	// From boot state the threaded counts are concrete, so the
	// obligations fold to true — that folding is the proof, but the spec
	// must not be vacuous (Post must have produced obligations).
	if rep.Obligations+rep.Trivial == 0 {
		t.Fatal("postcondition never produced an obligation; the spec is vacuous")
	}
}

// The token bucket's burst bound: capacity+1 packets cannot all pass,
// and the unbounded level invariant closes by induction.
func TestRateLimiterBoundAndLevelInvariant(t *testing.T) {
	p := mustParse(t, `
		src :: InfiniteSource;
		tb :: TokenBucket(2);
		src -> tb; tb[1] -> Discard;`)
	v := newVerifier(48)
	rep, err := v.VerifySeq(p, specs.RateLimiterBound(2, "tb"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("burst bound refuted:\n%s", verify.FormatMultiWitness(rep.Witnesses[0]))
	}
	inv, err := v.ProveInvariant(p, specs.TokenBucketLevel("tb", 2), verify.SeqOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Proved {
		t.Fatalf("token level invariant not proved: %+v", inv)
	}
	// A looser bucket does violate the 2-bound: sanity-check the spec is
	// not vacuously true.
	p4 := mustParse(t, `
		src :: InfiniteSource;
		tb :: TokenBucket(4);
		src -> tb; tb[1] -> Discard;`)
	rep4, err := newVerifier(48).VerifySeq(p4, specs.RateLimiterBound(2, "tb"))
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Verified {
		t.Fatal("capacity-4 bucket satisfied the 2-packet burst bound")
	}
	if w := rep4.Witnesses[0]; len(w.Packets) != 3 {
		t.Fatalf("violating burst has %d packets, want 3", len(w.Packets))
	} else if err := verify.ReplaySeq(p4, w); err != nil {
		t.Fatalf("burst witness replay diverged: %v", err)
	}
}
