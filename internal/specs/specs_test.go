package specs_test

import (
	"bytes"
	"testing"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/specs"
	"vsd/internal/verify"
)

func mustParse(t *testing.T, src string) *click.Pipeline {
	t.Helper()
	p, err := click.Parse(elements.Default(), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newVerifier(maxLen uint64) *verify.Verifier {
	return verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen})
}

// routerConfig is the IP-router pipeline without IPOptions (kept out to
// hold test times down; the options loop is covered by the experiments).
func routerConfig(ttlClass string) string {
	return `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1);
		ttl :: ` + ttlClass + `;
		encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> rt;
		chk [1] -> Discard;
		rt [0] -> ttl;
		rt [1] -> ttl;
		ttl [0] -> encap;
		ttl [1] -> Discard;
	`
}

func TestTTLAndChecksumSpecsVerify(t *testing.T) {
	p := mustParse(t, routerConfig("DecIPTTL"))
	v := newVerifier(48)
	for _, spec := range []verify.FuncSpec{
		specs.TTLDecrement(14, "encap"),
		specs.ChecksumPatched(14, "encap"),
		// The round-trip window starts past the header fields DecIPTTL
		// rewrites (TTL at 22, checksum at 24-25).
		specs.StripRoundTrip(26, 48, "encap"),
	} {
		rep, err := v.VerifyFunc(p, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !rep.Verified {
			t.Fatalf("%s: expected VERIFIED, got %d witness(es):\n%s",
				spec.Name, len(rep.Witnesses), verify.FormatWitness(rep.Witnesses[0]))
		}
		if rep.Obligations+rep.Trivial == 0 {
			t.Fatalf("%s: no obligations stated — spec is vacuous", spec.Name)
		}
		if rep.Proved < rep.Obligations {
			t.Fatalf("%s: %d obligations but only %d proved",
				spec.Name, rep.Obligations, rep.Proved)
		}
	}
}

// TestBuggyTTLProducesWitness is the deliberately-broken-element story:
// BuggyDecIPTTL decrements by two, the TTL spec refutes it with a
// concrete input/output pair, and the concrete dataplane confirms the
// predicted output byte for byte.
func TestBuggyTTLProducesWitness(t *testing.T) {
	p := mustParse(t, routerConfig("BuggyDecIPTTL"))
	v := newVerifier(48)

	rep, err := v.VerifyFunc(p, specs.TTLDecrement(14, "encap"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("ttl-decrement verified a pipeline that decrements by two")
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("violation reported without witnesses")
	}
	w := rep.Witnesses[0]
	if w.Output == nil {
		t.Fatal("spec witness missing the output packet")
	}
	inTTL, outTTL := w.Packet[22], w.Output[22]
	if outTTL != inTTL-2 {
		t.Fatalf("witness TTL went %d -> %d, want the buggy -2", inTTL, outTTL)
	}

	// Replay: the concrete dataplane must produce exactly the output
	// packet the symbolic witness predicts.
	runner := dataplane.NewRunner(p)
	buf := packet.NewBuffer(append([]byte{}, w.Packet...))
	res := runner.Process(buf)
	if res.Disposition != ir.Emitted {
		t.Fatalf("witness did not reach an egress: %+v", res)
	}
	if !bytes.Equal(buf.Data, w.Output) {
		t.Fatalf("concrete output differs from witness prediction:\n got %x\nwant %x", buf.Data, w.Output)
	}

	// The checksum spec still holds: the buggy element patches correctly
	// for what it wrote.
	rep2, err := v.VerifyFunc(p, specs.ChecksumPatched(14, "encap"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Verified {
		t.Fatalf("checksum-patched should hold for BuggyDecIPTTL:\n%s",
			verify.FormatWitness(rep2.Witnesses[0]))
	}
}

const filterConfig = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	flt :: IPFilter(allow proto udp dport 53, deny dst 10.0.0.0/8, allow proto tcp);

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> flt;
	chk [1] -> Discard;
`

func TestDropIffFilterMatch(t *testing.T) {
	p := mustParse(t, filterConfig)
	v := newVerifier(48)
	spec, err := specs.DropIffFilter("allow proto udp dport 53, deny dst 10.0.0.0/8, allow proto tcp", 14, "flt")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.VerifyFunc(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("drop-iff-filter-match failed:\n%s", verify.FormatWitness(rep.Witnesses[0]))
	}
	if rep.Obligations == 0 {
		t.Fatal("no obligations checked — spec is vacuous")
	}
}

// TestFilterSpecMismatch checks the adversarial direction: a spec built
// from DIFFERENT rules than the element must be refuted with a witness.
func TestFilterSpecMismatch(t *testing.T) {
	p := mustParse(t, filterConfig)
	v := newVerifier(48)
	spec, err := specs.DropIffFilter("allow proto udp dport 53, allow proto icmp", 14, "flt")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.VerifyFunc(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("spec with mismatched rules verified against the element")
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("mismatch reported without a witness")
	}
}

func TestNATRewriteSpec(t *testing.T) {
	p := mustParse(t, `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		nat :: IPRewriter(SNAT 100.64.0.1);
		encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> nat -> encap;
		chk [1] -> Discard;
	`)
	v := newVerifier(48)
	spec, err := specs.NATRewrite("SNAT 100.64.0.1", 14, "nat")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.VerifyFunc(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("nat-rewrite failed:\n%s", verify.FormatWitness(rep.Witnesses[0]))
	}
	// The rewriter stores constants at concrete offsets, so the
	// postcondition typically folds to true syntactically (Trivial)
	// rather than reaching the solver — either way it must be stated.
	if rep.Obligations+rep.Trivial == 0 {
		t.Fatal("no obligations stated — spec is vacuous")
	}

	// And the adversarial direction: claiming a different rewrite target
	// must be refuted with an input/output witness.
	wrong, err := specs.NATRewrite("SNAT 100.64.0.2", 14, "nat")
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := v.VerifyFunc(p, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verified {
		t.Fatal("nat-rewrite for the wrong target verified")
	}
	if len(rep2.Witnesses) == 0 || rep2.Witnesses[0].Output == nil {
		t.Fatal("nat mismatch reported without an input/output witness")
	}
	if got := rep2.Witnesses[0].Output[26:30]; got[0] != 100 || got[1] != 64 || got[2] != 0 || got[3] != 1 {
		t.Fatalf("witness output source is %v, want 100.64.0.1", got)
	}
}

func TestPaintSpec(t *testing.T) {
	p := mustParse(t, `
		src :: InfiniteSource;
		paint :: Paint(7);
		chk :: CheckLength(100);
		src -> paint -> chk;
		chk [1] -> Discard;
	`)
	v := newVerifier(48)
	rep, err := v.VerifyFunc(p, specs.Paint(7, "chk"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("paint spec failed:\n%s", verify.FormatWitness(rep.Witnesses[0]))
	}

	// Wrong color must be refuted.
	rep2, err := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 48}).
		VerifyFunc(p, specs.Paint(3, "chk"))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verified {
		t.Fatal("paint spec for the wrong color verified")
	}
}

// TestSpecParallelDeterminism runs a violated spec with a parallel
// walker and checks the report matches the sequential one.
func TestSpecParallelDeterminism(t *testing.T) {
	seqRep := runBuggy(t, 1)
	parRep := runBuggy(t, 4)
	if seqRep.Verified != parRep.Verified || len(seqRep.Witnesses) != len(parRep.Witnesses) {
		t.Fatalf("parallel report diverges: seq=%+v par=%+v", seqRep, parRep)
	}
	for i := range seqRep.Witnesses {
		if seqRep.Witnesses[i].Path != parRep.Witnesses[i].Path {
			t.Fatalf("witness %d path differs: %q vs %q",
				i, seqRep.Witnesses[i].Path, parRep.Witnesses[i].Path)
		}
	}
}

func runBuggy(t *testing.T, parallelism int) *verify.FuncReport {
	t.Helper()
	p := mustParse(t, routerConfig("BuggyDecIPTTL"))
	v := verify.New(verify.Options{MinLen: packet.MinFrame, MaxLen: 32, Parallelism: parallelism})
	rep, err := v.VerifyFunc(p, specs.TTLDecrement(14, "encap"))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
