package specs

// Sequence contracts (DESIGN.md §8): the multi-packet half of the spec
// library. A verify.SeqSpec relates DIFFERENT packets of one flow of
// traffic through the stateful elements — properties no single-packet
// FuncSpec can state — and a verify.StateInvariant is its unbounded
// companion, proved by k-induction. The designed counterexample here is
// elements.LeakyNAT: correct packet by packet, correct for any two
// same-flow packets back to back, and refuted only by a three-packet
// witness (flow A, interloper B, flow A again) that replays on the
// concrete dataplane.

import (
	"vsd/internal/expr"
	"vsd/internal/verify"
)

// CounterMonotone states that a Counter instance's count never
// decreases across a packet sequence: for consecutive steps, the value
// after step t is at least the value after step t-1. Holds for
// Counter(SATURATE); the plain Counter crashes before it could wrap, so
// the property is about the saturating fix's semantics.
func CounterMonotone(cntElem string, steps int) verify.SeqSpec {
	key := expr.Const(8, 0)
	store := cntElem + ".count"
	return verify.SeqSpec{
		Name:  "counter-monotone",
		Steps: steps,
		Post: func(si *verify.SeqInfo) *expr.Expr {
			var conj []*expr.Expr
			for t := 1; t < si.Steps(); t++ {
				conj = append(conj, expr.Ule(
					si.StateAfter(t-1, store, key),
					si.StateAfter(t, store, key)))
			}
			if len(conj) == 0 {
				return nil
			}
			return expr.And(conj...)
		},
	}
}

// NATMappingStable states translation stability for the NAT instance
// natElem: whenever packets i and j of a sequence carry the same flow
// (the source address at ipOff+12, the key our NAT elements map on) and
// both leave the pipeline through the NAT, they must leave with the
// SAME rewritten source address. IPRewriter satisfies it trivially;
// elements.LeakyNAT violates it, but only once a third packet evicts
// the mapping in between — the canonical multi-packet refutation.
func NATMappingStable(ipOff uint64, natElem string, steps int) verify.SeqSpec {
	return verify.SeqSpec{
		Name:  "nat-mapping-stable",
		Steps: steps,
		Post: func(si *verify.SeqInfo) *expr.Expr {
			var conj []*expr.Expr
			for i := 0; i < si.Steps(); i++ {
				if !si.Emitted(i) || !si.Visited(i, natElem) {
					continue
				}
				for j := i + 1; j < si.Steps(); j++ {
					if !si.Emitted(j) || !si.Visited(j, natElem) {
						continue
					}
					sameFlow := expr.Eq(si.In(i, ipOff+12, 4), si.In(j, ipOff+12, 4))
					sameMap := expr.Eq(si.Out(i, ipOff+12, 4), si.Out(j, ipOff+12, 4))
					conj = append(conj, expr.Implies(sameFlow, sameMap))
				}
			}
			if len(conj) == 0 {
				return nil
			}
			return expr.And(conj...)
		},
	}
}

// RateLimiterBound states the burst bound of a TokenBucket instance:
// in ANY sequence of capacity+1 packets, they cannot all pass through
// the bucket's conforming port 0. The obligation for an all-conforming
// sequence is False — i.e. the proof shows such sequences are
// infeasible from boot state.
func RateLimiterBound(capacity uint64, tbElem string) verify.SeqSpec {
	return verify.SeqSpec{
		Name:  "rate-limiter-bound",
		Steps: int(capacity) + 1,
		Post: func(si *verify.SeqInfo) *expr.Expr {
			passed := 0
			for t := 0; t < si.Steps(); t++ {
				if si.Emitted(t) && si.EgressElem(t) == tbElem && si.EgressPort(t) == 0 {
					passed++
				}
			}
			if passed <= int(capacity) {
				return nil
			}
			return expr.False()
		},
	}
}

// TokenBucketLevel is the unbounded companion of RateLimiterBound: the
// invariant "the token count never exceeds the capacity", preserved by
// every packet and hence — by k-induction — true for sequences of any
// length. It is what makes the bucket's burst bound hold forever, not
// just for the explored prefix.
func TokenBucketLevel(tbElem string, capacity uint64) verify.StateInvariant {
	key := expr.Const(8, 0)
	store := tbElem + ".tokens"
	return verify.StateInvariant{
		Name: "token-bucket-level",
		Pred: func(sv *verify.StateView) *expr.Expr {
			return expr.Ule(sv.Read(store, key), expr.Const(32, capacity))
		},
	}
}
