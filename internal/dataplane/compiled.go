package dataplane

import (
	"fmt"
	"slices"

	"vsd/internal/bv"
	"vsd/internal/click"
	"vsd/internal/dataplane/compile"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// Compiled is the fast-tier runner: the same pipeline semantics as
// Runner, executed as flat bytecode on the compile package's GC-free VM
// instead of by walking the IR tree. Construction pays for everything
// the interpreter does per packet — name resolution, metadata hashing,
// register-file allocation — so the steady-state forwarding loop
// performs zero heap allocations.
//
// Equivalence with Runner is not assumed, it is machine-checked: the
// differential oracle (Compare, vsdrun -compare, the tput fuzz cell)
// drives both tiers over the same traffic and requires identical
// dispositions, egress, bytes, metadata, private state, and step
// counts (DESIGN.md §10).
type Compiled struct {
	pipeline *click.Pipeline
	layout   *packet.MetaLayout
	vms      []*compile.VM        // one per element: register file reuse
	states   []*compile.ElemState // per-instance private state
	counters []ElementCounters
	// topo is the topological element order the batch scheduler walks;
	// nil when the pipeline is not a DAG (hand-assembled graphs bypass
	// click.Build's acyclicity check), in which case batches fall back
	// to per-packet walks and the maxHops guard.
	topo []int
	// queues[i] holds the frame indices waiting at element i during a
	// batch; reused across batches.
	queues [][]int32
	// egrID/egrName cache Pipeline.EgressID/EgressName per [elem][port]
	// so the hot loop never touches the pipeline's egress map.
	egrID   [][]int
	egrName [][]string
	// frames is the frame pool RunTrace draws from; Process and
	// ProcessBatch alias caller buffers instead.
	frames []*compile.Frame
	// procFrame is the scratch frame Process reuses.
	procFrame compile.Frame
	// opProf, when enabled, is the opcode profile shared by every
	// element VM (the runner is single-goroutine, so no locking).
	opProf *compile.OpProfile
}

// NewCompiled compiles every element of the pipeline and prepares a
// runner with empty private state. Elements with content-identical
// programs share one compiled Program (each keeps its own VM and
// state).
func NewCompiled(p *click.Pipeline) (*Compiled, error) {
	progs := make([]*ir.Program, len(p.Elements))
	for i, e := range p.Elements {
		progs[i] = e.Program()
	}
	lay, err := compile.BuildLayout(progs)
	if err != nil {
		return nil, err
	}
	r := &Compiled{
		pipeline: p,
		layout:   lay,
		vms:      make([]*compile.VM, len(p.Elements)),
		states:   make([]*compile.ElemState, len(p.Elements)),
		counters: make([]ElementCounters, len(p.Elements)),
		queues:   make([][]int32, len(p.Elements)),
	}
	shared := map[ir.Fingerprint]*compile.Program{}
	for i, prog := range progs {
		fp := prog.Fingerprint()
		cp, ok := shared[fp]
		if !ok {
			cp, err = compile.Compile(prog, lay)
			if err != nil {
				return nil, err
			}
			shared[fp] = cp
		}
		r.vms[i] = compile.NewVM(cp)
		r.states[i] = compile.NewElemState(cp)
	}
	r.procFrame.MetaVals = make([]uint64, lay.NumSlots())
	r.topo = topoOrder(p)
	r.egrID = make([][]int, len(p.Elements))
	r.egrName = make([][]string, len(p.Elements))
	for i, edges := range p.Edges {
		r.egrID[i] = make([]int, len(edges))
		r.egrName[i] = make([]string, len(edges))
		for port, e := range edges {
			if e.To < 0 {
				id := p.EgressID(i, port)
				r.egrID[i][port] = id
				r.egrName[i][port] = p.EgressName(id)
			} else {
				r.egrID[i][port] = -1
			}
		}
	}
	return r, nil
}

// topoOrder returns a topological order of the pipeline's elements, or
// nil when the graph has a cycle.
func topoOrder(p *click.Pipeline) []int {
	indeg := make([]int, len(p.Elements))
	for _, edges := range p.Edges {
		for _, e := range edges {
			if e.To >= 0 {
				indeg[e.To]++
			}
		}
	}
	order := make([]int, 0, len(p.Elements))
	for i, d := range indeg {
		if d == 0 {
			order = append(order, i)
		}
	}
	for i := 0; i < len(order); i++ {
		for _, e := range p.Edges[order[i]] {
			if e.To >= 0 {
				if indeg[e.To]--; indeg[e.To] == 0 {
					order = append(order, e.To)
				}
			}
		}
	}
	if len(order) != len(p.Elements) {
		return nil
	}
	return order
}

// Layout returns the pipeline-wide metadata slot layout.
func (r *Compiled) Layout() *packet.MetaLayout { return r.layout }

// EnableOpProfile turns on per-opcode dispatch profiling across every
// element VM (idempotent). Profiling adds one predictable branch per
// dispatch; leave it off for throughput measurement.
func (r *Compiled) EnableOpProfile() {
	if r.opProf == nil {
		r.opProf = &compile.OpProfile{}
		for _, vm := range r.vms {
			vm.SetProfile(r.opProf)
		}
	}
}

// OpProfile returns the accumulated opcode profile, or nil when
// EnableOpProfile was never called.
func (r *Compiled) OpProfile() *compile.OpProfile { return r.opProf }

// FormatOpProfile renders the top-k opcodes by dispatch count ("" when
// profiling is off).
func (r *Compiled) FormatOpProfile(k int) string {
	if r.opProf == nil {
		return ""
	}
	return r.opProf.Format(k)
}

// Counters returns the per-element counters, indexed like
// pipeline.Elements.
func (r *Compiled) Counters() []ElementCounters { return r.counters }

// FormatCounters renders the per-element counters as a table.
func (r *Compiled) FormatCounters() string {
	return formatCounters(r.pipeline, r.counters)
}

// SeedState pre-populates one entry of the named element instance's
// private store, honoring the capacity bound exactly like Runner's.
func (r *Compiled) SeedState(inst, store string, key, val uint64) error {
	for i, e := range r.pipeline.Elements {
		if e.Name() != inst {
			continue
		}
		if r.states[i].Seed(store, key, val) != nil {
			// Same message as Runner.SeedState, so callers (witness
			// replay) see one error surface across tiers.
			return fmt.Errorf("dataplane: element %s has no store %q", inst, store)
		}
		return nil
	}
	return fmt.Errorf("dataplane: no element instance %q", inst)
}

// stateSnapshot returns element i's private state in interpreter form,
// for the differential oracle.
func (r *Compiled) stateSnapshot(i int) ir.State { return r.states[i].Snapshot() }

// Process forwards one packet through the compiled pipeline. The
// buffer is mutated in place, exactly like Runner.Process: packet
// bytes are written through, and final metadata annotations are
// exported back into buf.Meta.
func (r *Compiled) Process(buf *packet.Buffer) Result {
	if buf.Meta == nil {
		buf.Meta = map[string]bv.V{}
	}
	fr := &r.procFrame
	fr.Data = buf.Data
	fr.MetaPresent = r.layout.Import(buf.Meta, fr.MetaVals)
	res := r.walk(fr)
	r.layout.Export(fr.MetaVals, fr.MetaPresent, buf.Meta)
	fr.Data = nil
	return res
}

// walk runs one frame element by element — the compiled analogue of
// Runner.Process's hop loop, sharing its hop limit.
func (r *Compiled) walk(fr *compile.Frame) Result {
	res := Result{Egress: -1}
	elem := r.pipeline.Entry
	for {
		if res.Hops++; res.Hops > maxHops {
			panic("dataplane: hop limit exceeded (pipeline not a DAG?)")
		}
		r.counters[elem].In++
		out := r.vms[elem].Run(fr, r.states[elem])
		res.Steps += out.Steps
		switch out.Disposition {
		case ir.Crashed:
			r.counters[elem].Crashed++
			res.Disposition = ir.Crashed
			res.Crash = out.Crash
			res.CrashAt = r.pipeline.Elements[elem].Name()
			return res
		case ir.Dropped:
			r.counters[elem].Dropped++
			res.Disposition = ir.Dropped
			return res
		case ir.Emitted:
			edge := r.pipeline.Edges[elem][out.Port]
			if edge.To < 0 {
				res.Disposition = ir.Emitted
				res.Egress = r.egrID[elem][out.Port]
				res.EgressName = r.egrName[elem][out.Port]
				return res
			}
			elem = edge.To
		}
	}
}

// ProcessBatch forwards a batch of packets, writing one Result per
// packet into out (which must be at least len(bufs) long). Buffers are
// mutated in place like Process.
//
// Batching amortizes pipeline dispatch: packets advance through the
// element DAG in topological order, so each element's VM runs over
// every packet queued at it before the scheduler moves on. Per-element
// queues are kept in packet-index order, which makes batch execution
// observationally identical to processing the packets one at a time —
// element-private state is the only cross-packet channel, and each
// element still sees its visitors in the same order (the differential
// oracle checks this tier too).
func (r *Compiled) ProcessBatch(bufs []*packet.Buffer, out []Result) {
	if len(bufs) == 0 {
		return
	}
	r.growFrames(len(bufs))
	for i, buf := range bufs {
		if buf.Meta == nil {
			buf.Meta = map[string]bv.V{}
		}
		fr := r.frames[i]
		fr.Data = buf.Data // alias: mutate the caller's bytes in place
		fr.MetaPresent = r.layout.Import(buf.Meta, fr.MetaVals)
	}
	r.runFrames(len(bufs), out)
	for i, buf := range bufs {
		fr := r.frames[i]
		r.layout.Export(fr.MetaVals, fr.MetaPresent, buf.Meta)
		fr.Data = nil
	}
}

// growFrames ensures the pool holds at least n frames.
func (r *Compiled) growFrames(n int) {
	for len(r.frames) < n {
		r.frames = append(r.frames, compile.NewFrame(r.layout.NumSlots()))
	}
}

// runFrames executes frames[0:n], writing Results into out. Frames must
// already carry their packet bytes and metadata.
func (r *Compiled) runFrames(n int, out []Result) {
	for i := 0; i < n; i++ {
		out[i] = Result{Egress: -1}
	}
	if r.topo == nil {
		// Not a DAG: per-packet walks, so the hop guard fires exactly
		// as it would under Process.
		for i := 0; i < n; i++ {
			out[i] = r.walk(r.frames[i])
		}
		return
	}
	entryQ := r.queues[r.pipeline.Entry][:0]
	for i := 0; i < n; i++ {
		entryQ = append(entryQ, int32(i))
	}
	r.queues[r.pipeline.Entry] = entryQ
	for _, elem := range r.topo {
		q := r.queues[elem]
		if len(q) == 0 {
			continue
		}
		// Upstream elements append in topo order; restore packet-index
		// order so per-element state sees the sequential interleaving.
		slices.Sort(q)
		vm, st := r.vms[elem], r.states[elem]
		edges := r.pipeline.Edges[elem]
		for _, fi := range q {
			fr := r.frames[fi]
			res := &out[fi]
			res.Hops++
			r.counters[elem].In++
			o := vm.Run(fr, st)
			res.Steps += o.Steps
			switch o.Disposition {
			case ir.Crashed:
				r.counters[elem].Crashed++
				res.Disposition = ir.Crashed
				res.Crash = o.Crash
				res.CrashAt = r.pipeline.Elements[elem].Name()
			case ir.Dropped:
				r.counters[elem].Dropped++
				res.Disposition = ir.Dropped
			case ir.Emitted:
				edge := edges[o.Port]
				if edge.To < 0 {
					res.Disposition = ir.Emitted
					res.Egress = r.egrID[elem][o.Port]
					res.EgressName = r.egrName[elem][o.Port]
				} else {
					r.queues[edge.To] = append(r.queues[edge.To], fi)
				}
			}
		}
		r.queues[elem] = q[:0]
	}
}

// batchSize is the RunTrace chunk size: large enough to amortize
// dispatch, small enough to keep the working set in cache.
const batchSize = 256

// RunTrace processes each packet of a trace through the compiled tier
// and aggregates the results. Originals are not disturbed: packets are
// copied into pooled frames (the only steady-state byte copies the
// tier makes).
func (r *Compiled) RunTrace(trace []*packet.Buffer) Summary {
	s := Summary{PerEgress: map[int]int64{}}
	r.growFrames(batchSize)
	var results [batchSize]Result
	for start := 0; start < len(trace); start += batchSize {
		chunk := trace[start:min(start+batchSize, len(trace))]
		for i, buf := range chunk {
			r.frames[i].ResetFrom(r.layout, buf)
		}
		r.runFrames(len(chunk), results[:])
		for i := range chunk {
			res := results[i]
			s.Packets++
			s.Steps += res.Steps
			switch res.Disposition {
			case ir.Emitted:
				s.Emitted++
				s.PerEgress[res.Egress]++
			case ir.Dropped:
				s.Dropped++
			case ir.Crashed:
				s.Crashed++
				if s.FirstCrash == nil {
					c := res
					s.FirstCrash = &c
				}
			}
		}
	}
	return s
}
