// Package dataplane is the concrete runtime: it forwards real packets
// through a click.Pipeline by interpreting each element's IR.
//
// It exists for three reasons. It is the system under verification — the
// IR the verifier reasons about is exactly the IR executed here, the
// paper's premise. It is the oracle for witnesses — every crash witness
// the verifier produces is replayed here and must actually crash (the
// integration tests enforce this). And it powers the runnable examples
// and the vsdrun CLI, standing in for the paper's SMPClick testbed.
package dataplane

import (
	"fmt"

	"vsd/internal/bv"
	"vsd/internal/click"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// ElementCounters tracks per-element activity.
type ElementCounters struct {
	In      int64
	Dropped int64
	Crashed int64
}

// Result describes one packet's journey through the pipeline.
type Result struct {
	Disposition ir.Disposition
	Egress      int    // egress id when Emitted
	EgressName  string // rendered egress for reports
	Crash       *ir.CrashInfo
	CrashAt     string // element that crashed
	Steps       int64  // total dynamic statements across elements
	Hops        int    // elements traversed
}

// Runner executes packets through a pipeline, keeping per-element
// private state across packets (the paper's private state class: it
// persists, and only its owner touches it).
type Runner struct {
	pipeline *click.Pipeline
	states   []ir.State
	counters []ElementCounters
	// execs holds one reusable interpreter per element so the hop loop
	// never allocates a register file.
	execs []*ir.Executor
	// env is the ExecEnv Process reuses across hops and packets.
	env ir.ExecEnv
	// scratch is the one pooled buffer RunTrace copies each packet into;
	// its Meta map is allocated here, at runner setup, so the per-packet
	// path never hits Process's nil-Meta branch.
	scratch *packet.Buffer
}

// NewRunner prepares a runner with empty private state.
func NewRunner(p *click.Pipeline) *Runner {
	r := &Runner{
		pipeline: p,
		states:   make([]ir.State, len(p.Elements)),
		counters: make([]ElementCounters, len(p.Elements)),
		execs:    make([]*ir.Executor, len(p.Elements)),
		scratch:  &packet.Buffer{Meta: map[string]bv.V{}},
	}
	for i := range r.states {
		r.states[i] = ir.NewState()
		r.execs[i] = ir.NewExecutor(p.Elements[i].Program())
	}
	return r
}

// Counters returns the per-element counters, indexed like
// pipeline.Elements.
func (r *Runner) Counters() []ElementCounters { return r.counters }

// SeedState pre-populates one entry of the named element instance's
// private store. Multi-packet counterexamples from the verifier's
// k-induction (verify.ReplaySeq) start from an arbitrary reachable
// state rather than boot state; seeding lets the replay oracle
// reproduce them concretely. Seeding honors the store's capacity bound
// exactly like a regular write.
func (r *Runner) SeedState(inst, store string, key, val uint64) error {
	for i, e := range r.pipeline.Elements {
		if e.Name() != inst {
			continue
		}
		d, ok := e.Program().StateDeclByName(store)
		if !ok {
			return fmt.Errorf("dataplane: element %s has no store %q", inst, store)
		}
		r.states[i].Write(d, key, val)
		return nil
	}
	return fmt.Errorf("dataplane: no element instance %q", inst)
}

// maxHops caps the element traversal defensively; the pipeline DAG
// bounds it structurally.
const maxHops = 1 << 12

// Process forwards one packet. The buffer is mutated in place (packet
// state is owned by the pipeline for the duration of the call).
func (r *Runner) Process(buf *packet.Buffer) Result {
	res := Result{Egress: -1}
	if buf.Meta == nil {
		buf.Meta = map[string]bv.V{}
	}
	elem := r.pipeline.Entry
	for {
		if res.Hops++; res.Hops > maxHops {
			panic("dataplane: hop limit exceeded (pipeline not a DAG?)")
		}
		inst := r.pipeline.Elements[elem]
		r.counters[elem].In++
		r.env.Pkt, r.env.Meta, r.env.State = buf.Data, buf.Meta, r.states[elem]
		out := r.execs[elem].Run(&r.env)
		buf.Data = r.env.Pkt
		res.Steps += out.Steps
		switch out.Disposition {
		case ir.Crashed:
			r.counters[elem].Crashed++
			res.Disposition = ir.Crashed
			res.Crash = out.Crash
			res.CrashAt = inst.Name()
			return res
		case ir.Dropped:
			r.counters[elem].Dropped++
			res.Disposition = ir.Dropped
			return res
		case ir.Emitted:
			edge := r.pipeline.Edges[elem][out.Port]
			if edge.To < 0 {
				res.Disposition = ir.Emitted
				res.Egress = r.pipeline.EgressID(elem, out.Port)
				res.EgressName = r.pipeline.EgressName(res.Egress)
				return res
			}
			elem = edge.To
		}
	}
}

// Summary aggregates a run for reports.
type Summary struct {
	Packets int64
	Emitted int64
	Dropped int64
	Crashed int64
	// Steps is the total dynamic IR statements across all packets.
	Steps int64
	// PerEgress counts packets per pipeline exit.
	PerEgress map[int]int64
	// FirstCrash records the first crashing packet, if any.
	FirstCrash *Result
}

// RunTrace processes each packet of a trace and aggregates the results.
// Originals are not disturbed: each packet is copied into the runner's
// one pooled scratch buffer (reusing its storage), so the steady-state
// loop performs zero heap allocations instead of cloning per packet.
func (r *Runner) RunTrace(trace []*packet.Buffer) Summary {
	s := Summary{PerEgress: map[int]int64{}}
	for _, buf := range trace {
		r.scratch.CopyFrom(buf)
		res := r.Process(r.scratch)
		s.Packets++
		s.Steps += res.Steps
		switch res.Disposition {
		case ir.Emitted:
			s.Emitted++
			s.PerEgress[res.Egress]++
		case ir.Dropped:
			s.Dropped++
		case ir.Crashed:
			s.Crashed++
			if s.FirstCrash == nil {
				c := res
				s.FirstCrash = &c
			}
		}
	}
	return s
}

// FormatCounters renders the per-element counters as a table.
func (r *Runner) FormatCounters() string {
	return formatCounters(r.pipeline, r.counters)
}

func formatCounters(p *click.Pipeline, counters []ElementCounters) string {
	out := fmt.Sprintf("%-24s %10s %10s %10s\n", "element", "in", "dropped", "crashed")
	for i, e := range p.Elements {
		c := counters[i]
		out += fmt.Sprintf("%-24s %10d %10d %10d\n",
			e.Name()+" :: "+e.Class(), c.In, c.Dropped, c.Crashed)
	}
	return out
}
