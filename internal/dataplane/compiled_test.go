package dataplane

import (
	"strings"
	"testing"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/workload"
)

// differentialConfigs mirrors the admission corpus (plus the
// checksum-enabled router this package already tests) without importing
// the experiments package, which depends on dataplane.
var differentialConfigs = []struct {
	name string
	src  string
}{
	{"router-checksum", routerSrc},
	{"nat", `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		nat :: IPRewriter(SNAT 100.64.0.1);
		encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> nat -> encap;
		chk [1] -> Discard;
	`},
	{"counter", `
		s :: InfiniteSource; s -> c :: Counter(SATURATE) -> n :: NetFlow(4) -> Discard;
	`},
	{"crashy", `
		s :: InfiniteSource; s -> u :: UnsafeReader(16) -> Discard;
	`},
}

// TestCompiledDifferentialCorpus is the in-tree slice of the
// differential fuzzer: every config above, every workload shape, fixed
// seeds, with Compare demanding the interpreted, compiled, and batched
// tiers agree on every observable per packet — including crashes.
func TestCompiledDifferentialCorpus(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 300
	}
	for _, cfg := range differentialConfigs {
		p, err := click.Parse(elements.Default(), cfg.src)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		for _, wl := range []string{"mix", "ipv4", "random", "adversarial"} {
			g := workload.New(workload.Spec{Seed: 7})
			var pkts []*packet.Buffer
			switch wl {
			case "mix":
				pkts = g.Mix(n)
			case "ipv4":
				for i := 0; i < n; i++ {
					pkts = append(pkts, g.IPv4())
				}
			case "random":
				for i := 0; i < n; i++ {
					pkts = append(pkts, g.Random(96))
				}
			case "adversarial":
				for i := 0; i < n; i++ {
					pkts = append(pkts, g.Adversarial())
				}
			}
			rep, err := Compare(p, pkts)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.name, wl, err)
			}
			if rep.Packets != int64(n) {
				t.Errorf("%s/%s: compared %d packets, want %d", cfg.name, wl, rep.Packets, n)
			}
		}
	}
}

// TestCompiledMatchesResultFields spot-checks the compiled tier against
// known interpreter behavior on a forwarding packet, not just against
// the interpreter.
func TestCompiledMatchesResultFields(t *testing.T) {
	p := buildRouter(t)
	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := packet.BuildIPv4(packet.IPv4Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(192, 168, 3, 4),
		TTL: 64, Protocol: packet.ProtoUDP, Payload: make([]byte, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rc.Process(buf)
	if res.Disposition != ir.Emitted {
		t.Fatalf("result %+v", res)
	}
	if !strings.HasPrefix(res.EgressName, "encap") {
		t.Errorf("egress = %s, want the encap exit", res.EgressName)
	}
	ip, err := packet.IPv4At(buf.Data, packet.EthernetHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL() != 63 {
		t.Errorf("TTL = %d, want 63 (bytes must be written through)", ip.TTL())
	}
}

// TestCompiledZeroAllocsPerPacket enforces the PR's headline budget:
// after warmup, the compiled tier's per-packet and batched paths
// perform zero heap allocations.
func TestCompiledZeroAllocsPerPacket(t *testing.T) {
	p := buildRouter(t)
	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	pkts := workload.New(workload.Spec{Seed: 3}).Mix(256)

	scratch := packet.NewBuffer(nil)
	i := 0
	perPacket := func() {
		scratch.CopyFrom(pkts[i%len(pkts)])
		rc.Process(scratch)
		i++
	}
	// Warm over the whole working set so the scratch buffer reaches the
	// trace's largest packet before the measured runs.
	for range pkts {
		perPacket()
	}
	if allocs := testing.AllocsPerRun(500, perPacket); allocs != 0 {
		t.Errorf("compiled Process: %v allocs/packet, want 0", allocs)
	}

	// Batched path over caller-owned buffers and a caller-owned result
	// slice: everything the scheduler needs (frames, queues) is pooled.
	bufs := make([]*packet.Buffer, len(pkts))
	for j, pkt := range pkts {
		bufs[j] = pkt.Clone()
	}
	out := make([]Result, len(bufs))
	batch := func() { rc.ProcessBatch(bufs, out) }
	batch() // warmup
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Errorf("compiled ProcessBatch: %v allocs/batch of %d, want 0", allocs, len(bufs))
	}
}

// TestRunnerRunTraceAllocations pins the interpreter-tier fix: RunTrace
// no longer clones every packet with a fresh metadata map; steady-state
// forwarding through Process is allocation-free, and a whole RunTrace
// pass costs only its Summary.
func TestRunnerRunTraceAllocations(t *testing.T) {
	p := buildRouter(t)
	r := NewRunner(p)
	pkts := workload.New(workload.Spec{Seed: 3}).Mix(256)

	// Per-packet path: zero allocations once the scratch buffer has
	// grown to the trace's largest packet.
	r.RunTrace(pkts) // warmup
	i := 0
	perPacket := func() {
		r.scratch.CopyFrom(pkts[i%len(pkts)])
		r.Process(r.scratch)
		i++
	}
	if allocs := testing.AllocsPerRun(500, perPacket); allocs != 0 {
		t.Errorf("interpreter Process: %v allocs/packet, want 0", allocs)
	}

	// Whole-trace path: the only allocations are the Summary and its
	// per-egress map — a handful per call, NOT per packet.
	allocs := testing.AllocsPerRun(10, func() { r.RunTrace(pkts) })
	if perPkt := allocs / float64(len(pkts)); perPkt > 0.05 {
		t.Errorf("interpreter RunTrace: %v allocs for %d packets (%.3f/packet), want O(1) per trace",
			allocs, len(pkts), perPkt)
	}
}

// emitOnly builds a trivial 1-in/1-out element that always emits, for
// hand-assembled pipeline graphs.
func emitOnly(name string) *click.Instance {
	b := ir.NewBuilder(name, 1, 1)
	b.Emit(0)
	return click.NewInstance(name, "Fwd", "", b.MustBuild())
}

// cyclicPipeline hand-assembles a -> b -> a, bypassing click.Build's
// acyclicity check, to exercise the defensive hop limit.
func cyclicPipeline() *click.Pipeline {
	return &click.Pipeline{
		Elements: []*click.Instance{emitOnly("a"), emitOnly("b")},
		Edges: [][]click.Edge{
			{{To: 1}},
			{{To: 0}},
		},
		Entry: 0,
	}
}

// TestHopLimitPanicsBothTiers: a non-DAG graph must trip the maxHops
// guard with the same panic on the interpreted and compiled tiers — in
// per-packet AND batched mode (whose scheduler falls back to walking
// when no topological order exists).
func TestHopLimitPanicsBothTiers(t *testing.T) {
	const wantPanic = "dataplane: hop limit exceeded (pipeline not a DAG?)"
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if got := recover(); got != wantPanic {
				t.Errorf("%s: panic = %v, want %q", name, got, wantPanic)
			}
		}()
		f()
	}

	p := cyclicPipeline()
	ri := NewRunner(p)
	mustPanic("interpreter", func() { ri.Process(packet.NewBuffer(make([]byte, 20))) })

	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	if rc.topo != nil {
		t.Fatal("compiled runner found a topological order in a cyclic graph")
	}
	mustPanic("compiled", func() { rc.Process(packet.NewBuffer(make([]byte, 20))) })
	mustPanic("compiled-batch", func() {
		bufs := []*packet.Buffer{packet.NewBuffer(make([]byte, 20))}
		rc.ProcessBatch(bufs, make([]Result, 1))
	})
}

// TestEgressNamingMultiPort: a pipeline with several unconnected exits
// must report the same egress id and rendered name ("elem[port]") on
// both tiers.
func TestEgressNamingMultiPort(t *testing.T) {
	p, err := click.Parse(elements.Default(), `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> rt;
		chk [1] -> Discard;
	`)
	if err != nil {
		t.Fatal(err)
	}
	ri := NewRunner(p)
	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dst  [4]byte
		want string
	}{
		{[4]byte{10, 1, 2, 3}, "rt[0]"},
		{[4]byte{192, 168, 9, 9}, "rt[1]"},
		{[4]byte{8, 8, 8, 8}, "rt[2]"},
	}
	for _, c := range cases {
		buf, err := packet.BuildIPv4(packet.IPv4Spec{
			SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(c.dst[0], c.dst[1], c.dst[2], c.dst[3]),
			TTL: 9, Protocol: packet.ProtoUDP, Payload: make([]byte, 8),
		})
		if err != nil {
			t.Fatal(err)
		}
		resI := ri.Process(buf.Clone())
		resC := rc.Process(buf.Clone())
		if resI.EgressName != c.want {
			t.Errorf("interpreter egress for %v = %q, want %q", c.dst, resI.EgressName, c.want)
		}
		if resC.EgressName != resI.EgressName || resC.Egress != resI.Egress {
			t.Errorf("tiers disagree on egress for %v: interp (%d,%q) vs compiled (%d,%q)",
				c.dst, resI.Egress, resI.EgressName, resC.Egress, resC.EgressName)
		}
	}
}

// TestSeedStateParity: seeding must honor the store's capacity bound
// identically on both tiers — including over-capacity seeds being
// dropped — and surface identical errors for unknown stores/instances.
func TestSeedStateParity(t *testing.T) {
	src := `s :: InfiniteSource; s -> n :: NetFlow(2) -> Discard;`
	p, err := click.Parse(elements.Default(), src)
	if err != nil {
		t.Fatal(err)
	}
	ri := NewRunner(p)
	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 2: the third distinct key must be dropped by both tiers,
	// and updating an existing key must still work.
	for _, tier := range []func(inst, store string, key, val uint64) error{ri.SeedState, rc.SeedState} {
		for _, s := range []struct{ key, val uint64 }{{1, 10}, {2, 20}, {3, 30}, {1, 11}} {
			if err := tier("n", "flows", s.key, s.val); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := map[uint64]uint64{1: 11, 2: 20}
	si := ri.states[1]["flows"]
	sc := rc.stateSnapshot(1)["flows"]
	for name, got := range map[string]map[uint64]uint64{"interpreter": si, "compiled": sc} {
		if len(got) != len(want) {
			t.Fatalf("%s state = %v, want %v", name, got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s state[%d] = %d, want %d", name, k, got[k], v)
			}
		}
	}

	// Error surfaces must match byte for byte.
	for _, bad := range []struct{ inst, store string }{{"n", "nosuch"}, {"ghost", "flows"}} {
		ei := ri.SeedState(bad.inst, bad.store, 0, 0)
		ec := rc.SeedState(bad.inst, bad.store, 0, 0)
		if ei == nil || ec == nil || ei.Error() != ec.Error() {
			t.Errorf("SeedState(%q,%q): interp err %v vs compiled err %v", bad.inst, bad.store, ei, ec)
		}
	}
}

// TestCompiledCrashParity: a guaranteed crash must surface the same
// site, kind, and formatted message on both tiers.
func TestCompiledCrashParity(t *testing.T) {
	p, err := click.Parse(elements.Default(),
		"s :: InfiniteSource; s -> u :: UnsafeReader(16) -> Discard;")
	if err != nil {
		t.Fatal(err)
	}
	ri := NewRunner(p)
	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := packet.NewBuffer(make([]byte, 14))
	resI := ri.Process(buf.Clone())
	resC := rc.Process(buf.Clone())
	if resI.Disposition != ir.Crashed || resC.Disposition != ir.Crashed {
		t.Fatalf("dispositions: interp %v, compiled %v", resI.Disposition, resC.Disposition)
	}
	if resI.CrashAt != resC.CrashAt || resI.Crash.Kind != resC.Crash.Kind || resI.Crash.Msg != resC.Crash.Msg {
		t.Errorf("crash mismatch:\n  interp:   at=%s %v: %s\n  compiled: at=%s %v: %s",
			resI.CrashAt, resI.Crash.Kind, resI.Crash.Msg,
			resC.CrashAt, resC.Crash.Kind, resC.Crash.Msg)
	}
	if resI.Steps != resC.Steps {
		t.Errorf("crash step counts differ: interp %d, compiled %d", resI.Steps, resC.Steps)
	}
}

// TestCompiledCountersMatchInterpreter: after the same trace, both
// tiers' per-element counters and summaries must be identical.
func TestCompiledCountersMatchInterpreter(t *testing.T) {
	p := buildRouter(t)
	ri := NewRunner(p)
	rc, err := NewCompiled(p)
	if err != nil {
		t.Fatal(err)
	}
	pkts := workload.New(workload.Spec{Seed: 11}).Mix(400)
	si := ri.RunTrace(pkts)
	sc := rc.RunTrace(pkts)
	if si.Packets != sc.Packets || si.Emitted != sc.Emitted ||
		si.Dropped != sc.Dropped || si.Crashed != sc.Crashed || si.Steps != sc.Steps {
		t.Fatalf("summaries differ:\n  interp:   %+v\n  compiled: %+v", si, sc)
	}
	for eg, n := range si.PerEgress {
		if sc.PerEgress[eg] != n {
			t.Errorf("egress %d: interp %d, compiled %d", eg, n, sc.PerEgress[eg])
		}
	}
	ci, cc := ri.Counters(), rc.Counters()
	for i := range ci {
		if ci[i] != cc[i] {
			t.Errorf("element %d counters: interp %+v, compiled %+v", i, ci[i], cc[i])
		}
	}
	if ri.FormatCounters() != rc.FormatCounters() {
		t.Error("FormatCounters output differs between tiers")
	}
}
