package dataplane

import (
	"strings"
	"testing"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/workload"
)

const routerSrc = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader;
	opt :: IPOptions;
	rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
	ttl :: DecIPTTL;
	encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
	bad :: Discard;

	src -> cls;
	cls [0] -> strip -> chk;
	cls [1] -> Discard;
	chk [0] -> opt;
	chk [1] -> bad;
	opt [0] -> rt;
	opt [1] -> bad;
	rt [0] -> ttl;
	rt [1] -> ttl;
	rt [2] -> ttl;
	ttl [0] -> encap;
	ttl [1] -> Discard;
`

func routerPipeline() (*click.Pipeline, error) {
	return click.Parse(elements.Default(), routerSrc)
}

func buildRouter(t *testing.T) *click.Pipeline {
	t.Helper()
	p, err := routerPipeline()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRouterForwardsValidPacket(t *testing.T) {
	p := buildRouter(t)
	r := NewRunner(p)
	buf, err := packet.BuildIPv4(packet.IPv4Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(192, 168, 3, 4),
		TTL: 64, Protocol: packet.ProtoUDP, Payload: make([]byte, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Process(buf)
	if res.Disposition != ir.Emitted {
		t.Fatalf("result %+v", res)
	}
	if !strings.HasPrefix(res.EgressName, "encap") {
		t.Errorf("egress = %s, want the encap exit", res.EgressName)
	}
	// The forwarded packet is re-encapsulated with the router's MACs
	// and has a decremented TTL and a valid checksum.
	ip, err := packet.IPv4At(buf.Data, packet.EthernetHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL() != 63 {
		t.Errorf("TTL = %d, want 63", ip.TTL())
	}
	want, err := ip.ComputeChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if ip.Checksum() != want {
		t.Errorf("checksum invalid after forwarding")
	}
	eth, err := packet.EthernetAt(buf.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Src()[5] != 0x01 || eth.Dst()[5] != 0x02 {
		t.Errorf("MACs not rewritten: % x -> % x", eth.Src(), eth.Dst())
	}
}

func TestRouterDropsGarbageWithoutCrashing(t *testing.T) {
	p := buildRouter(t)
	r := NewRunner(p)
	g := workload.New(workload.Spec{Seed: 42})
	sum := r.RunTrace(g.Mix(500))
	if sum.Crashed != 0 {
		t.Fatalf("router crashed on the mixed trace: %+v", sum.FirstCrash)
	}
	if sum.Emitted == 0 {
		t.Error("no packets forwarded")
	}
	if sum.Dropped == 0 {
		t.Error("no packets dropped (adversarial share should be)")
	}
	if sum.Packets != 500 {
		t.Errorf("packets = %d", sum.Packets)
	}
	out := r.FormatCounters()
	if !strings.Contains(out, "cls :: Classifier") {
		t.Errorf("counters table missing elements:\n%s", out)
	}
}

func TestRouterExpiredTTL(t *testing.T) {
	p := buildRouter(t)
	r := NewRunner(p)
	buf, err := packet.BuildIPv4(packet.IPv4Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 0, 0, 2),
		TTL: 1, Protocol: packet.ProtoUDP, Payload: make([]byte, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Process(buf)
	// ttl[1] -> Discard: the packet is dropped, not forwarded.
	if res.Disposition != ir.Dropped {
		t.Fatalf("expired TTL: %+v, want drop", res)
	}
}

func TestRunnerKeepsPrivateStateAcrossPackets(t *testing.T) {
	p, err := click.Parse(elements.Default(),
		"s :: InfiniteSource; s -> c :: Counter(SATURATE) -> Discard;")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)
	for i := 0; i < 5; i++ {
		r.Process(packet.NewBuffer(make([]byte, 20)))
	}
	// Element index of the counter is 1 (after the source).
	counts := r.Counters()
	if counts[1].In != 5 {
		t.Errorf("counter saw %d packets, want 5", counts[1].In)
	}
}

func TestCrashSurfacesElementName(t *testing.T) {
	p, err := click.Parse(elements.Default(),
		"s :: InfiniteSource; s -> u :: UnsafeReader(16) -> Discard;")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)
	res := r.Process(packet.NewBuffer(make([]byte, 14)))
	if res.Disposition != ir.Crashed {
		t.Fatalf("result %+v", res)
	}
	if res.CrashAt != "u" {
		t.Errorf("CrashAt = %q, want u", res.CrashAt)
	}
	if res.Crash.Kind != ir.CrashOOB {
		t.Errorf("crash kind = %v", res.Crash.Kind)
	}
}
