package dataplane

import (
	"bytes"
	"fmt"
	"maps"

	"vsd/internal/click"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// Divergence reports one packet on which the interpreted and compiled
// tiers disagreed — by construction a soundness bug in the compiler or
// VM, never in the workload.
type Divergence struct {
	Packet int    // index into the trace
	Field  string // which observable differed
	Interp string // interpreter-tier value
	Comp   string // compiled-tier value
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("dataplane: tiers diverge on packet %d: %s: interpreted=%s compiled=%s",
		d.Packet, d.Field, d.Interp, d.Comp)
}

// CompareReport summarizes one differential run over a trace.
type CompareReport struct {
	Packets int64
	Emitted int64
	Dropped int64
	Crashed int64
	Steps   int64 // total dynamic statements (identical across tiers)
}

// stateCheckInterval spaces out full private-state comparisons: state
// grows with traffic (a NAT table holds thousands of flows), so
// checking every packet would make the fuzzer quadratic. Cheap
// per-packet observables still catch a divergence the moment it leaks
// into behavior; the periodic sweep catches silent state skew within
// the window. Must stay a multiple of batchSize so checkpoints land on
// chunk boundaries, where all tiers have consumed equal packet counts.
const stateCheckInterval = 1024

var _ = [1]struct{}{}[stateCheckInterval%batchSize] // multiple-of-batchSize guard

// Compare drives the same trace through three executions of the
// pipeline — interpreted (Runner), compiled per-packet
// (Compiled.Process), and compiled batched (Compiled.ProcessBatch) —
// with each tier keeping its own persistent private state, and demands
// they agree packet by packet on every observable: disposition, egress
// port and name, crash site/kind/message, step and hop counts, output
// bytes, final metadata, and (periodically and at the end) all private
// state. It returns the first divergence found, or a summary if there
// is none.
//
// This is the soundness oracle behind `vsdrun -compare` and the tput
// fuzz cell: the compiled tier is fast because it proves, millions of
// packets at a time, that it is not wrong.
func Compare(p *click.Pipeline, trace []*packet.Buffer) (CompareReport, error) {
	ri := NewRunner(p)
	rc, err := NewCompiled(p)
	if err != nil {
		return CompareReport{}, err
	}
	rb, err := NewCompiled(p)
	if err != nil {
		return CompareReport{}, err
	}
	var rep CompareReport

	// The batched tier runs in lockstep with the per-packet loop: each
	// chunk is processed just before the loop reaches it, so at any
	// state checkpoint all three tiers have consumed exactly the same
	// number of packets (stateful elements would otherwise legitimately
	// differ — a NAT table that has seen the whole trace is ahead of one
	// that has seen a quarter of it).
	bbufs := make([]*packet.Buffer, len(trace))
	for i, b := range trace {
		bbufs[i] = b.Clone()
	}
	bress := make([]Result, len(trace))

	for i, orig := range trace {
		if i%batchSize == 0 {
			end := min(i+batchSize, len(trace))
			rb.ProcessBatch(bbufs[i:end], bress[i:end])
		}
		bi := orig.Clone()
		bc := orig.Clone()
		resI := ri.Process(bi)
		resC := rc.Process(bc)
		if d := diffResults(i, &resI, &resC, "compiled"); d != nil {
			return rep, d
		}
		if !bytes.Equal(bi.Data, bc.Data) {
			return rep, &Divergence{i, "output bytes (compiled)", fmt.Sprintf("%x", bi.Data), fmt.Sprintf("%x", bc.Data)}
		}
		if !maps.Equal(bi.Meta, bc.Meta) {
			return rep, &Divergence{i, "final metadata (compiled)", fmt.Sprintf("%v", bi.Meta), fmt.Sprintf("%v", bc.Meta)}
		}
		if d := diffResults(i, &resI, &bress[i], "batched"); d != nil {
			return rep, d
		}
		if !bytes.Equal(bi.Data, bbufs[i].Data) {
			return rep, &Divergence{i, "output bytes (batched)", fmt.Sprintf("%x", bi.Data), fmt.Sprintf("%x", bbufs[i].Data)}
		}
		if !maps.Equal(bi.Meta, bbufs[i].Meta) {
			return rep, &Divergence{i, "final metadata (batched)", fmt.Sprintf("%v", bi.Meta), fmt.Sprintf("%v", bbufs[i].Meta)}
		}
		rep.Packets++
		rep.Steps += resI.Steps
		switch resI.Disposition {
		case ir.Emitted:
			rep.Emitted++
		case ir.Dropped:
			rep.Dropped++
		case ir.Crashed:
			rep.Crashed++
		}
		if (i+1)%stateCheckInterval == 0 {
			if d := diffState(i, ri, rc, rb); d != nil {
				return rep, d
			}
		}
	}
	if d := diffState(len(trace)-1, ri, rc, rb); d != nil {
		return rep, d
	}
	return rep, nil
}

// diffResults compares every observable of two Results; tier names the
// compiled execution mode for the report.
func diffResults(pkt int, a, b *Result, tier string) *Divergence {
	f := func(field, av, bv string) *Divergence {
		return &Divergence{pkt, field + " (" + tier + ")", av, bv}
	}
	if a.Disposition != b.Disposition {
		return f("disposition", a.Disposition.String(), b.Disposition.String())
	}
	if a.Egress != b.Egress {
		return f("egress", fmt.Sprint(a.Egress), fmt.Sprint(b.Egress))
	}
	if a.EgressName != b.EgressName {
		return f("egress name", a.EgressName, b.EgressName)
	}
	if a.CrashAt != b.CrashAt {
		return f("crash site", a.CrashAt, b.CrashAt)
	}
	if (a.Crash == nil) != (b.Crash == nil) {
		return f("crash presence", fmt.Sprint(a.Crash), fmt.Sprint(b.Crash))
	}
	if a.Crash != nil {
		if a.Crash.Kind != b.Crash.Kind {
			return f("crash kind", a.Crash.Kind.String(), b.Crash.Kind.String())
		}
		if a.Crash.Msg != b.Crash.Msg {
			return f("crash message", a.Crash.Msg, b.Crash.Msg)
		}
	}
	if a.Steps != b.Steps {
		return f("step count", fmt.Sprint(a.Steps), fmt.Sprint(b.Steps))
	}
	if a.Hops != b.Hops {
		return f("hop count", fmt.Sprint(a.Hops), fmt.Sprint(b.Hops))
	}
	return nil
}

// diffState compares every element's private state across the three
// tiers. An empty store and an absent one are the same state.
func diffState(pkt int, ri *Runner, rc, rb *Compiled) *Divergence {
	for i := range ri.states {
		si := ri.states[i]
		for tier, r := range map[string]*Compiled{"compiled": rc, "batched": rb} {
			sc := r.stateSnapshot(i)
			if !statesEqual(si, sc) {
				return &Divergence{pkt, fmt.Sprintf("private state of element %d (%s)", i, tier),
					fmt.Sprintf("%v", si), fmt.Sprintf("%v", sc)}
			}
		}
	}
	return nil
}

// statesEqual treats empty maps as absent, matching how the
// interpreter lazily materializes stores.
func statesEqual(a, b ir.State) bool {
	for name, m := range a {
		if len(m) == 0 {
			continue
		}
		if !maps.Equal(m, b[name]) {
			return false
		}
	}
	for name, m := range b {
		if len(m) == 0 {
			continue
		}
		// Non-empty a[name] was already matched above; only an absent or
		// empty counterpart remains to catch.
		if len(a[name]) == 0 {
			return false
		}
	}
	return true
}
