package compile

import (
	"bytes"
	"fmt"
	"maps"
	"testing"

	"vsd/internal/bv"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// pin is one parity input: packet bytes plus entry metadata.
type pin struct {
	data []byte
	meta map[string]bv.V
}

// runParity executes p on the tree-walking interpreter and on the
// compiled VM over the same inputs (with private state persisting
// across packets on both tiers) and fails on any observable
// difference: disposition, egress port, crash kind/message, exact step
// count, output bytes, exported metadata, and private state.
func runParity(t *testing.T, p *ir.Program, inputs []pin) {
	t.Helper()
	lay, err := BuildLayout([]*ir.Program{p})
	if err != nil {
		t.Fatalf("BuildLayout: %v", err)
	}
	cp, err := Compile(p, lay)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	vm := NewVM(cp)
	es := NewElemState(cp)
	fr := NewFrame(lay.NumSlots())
	ist := ir.NewState()
	for i, in := range inputs {
		env := &ir.ExecEnv{
			Pkt:   append([]byte(nil), in.data...),
			Meta:  maps.Clone(in.meta),
			State: ist,
		}
		if env.Meta == nil {
			env.Meta = map[string]bv.V{}
		}
		iout := ir.Exec(p, env)

		buf := &packet.Buffer{Data: append([]byte(nil), in.data...), Meta: in.meta}
		fr.ResetFrom(lay, buf)
		cout := vm.Run(fr, es)

		ctx := fmt.Sprintf("input %d (%x)", i, in.data)
		if iout.Disposition != cout.Disposition {
			t.Fatalf("%s: disposition interp=%v compiled=%v", ctx, iout.Disposition, cout.Disposition)
		}
		if iout.Disposition == ir.Emitted && iout.Port != cout.Port {
			t.Fatalf("%s: port interp=%d compiled=%d", ctx, iout.Port, cout.Port)
		}
		if (iout.Crash == nil) != (cout.Crash == nil) {
			t.Fatalf("%s: crash interp=%v compiled=%v", ctx, iout.Crash, cout.Crash)
		}
		if iout.Crash != nil &&
			(iout.Crash.Kind != cout.Crash.Kind || iout.Crash.Msg != cout.Crash.Msg) {
			t.Fatalf("%s: crash interp=%q compiled=%q", ctx, iout.Crash.Error(), cout.Crash.Error())
		}
		if iout.Steps != cout.Steps {
			t.Fatalf("%s: steps interp=%d compiled=%d", ctx, iout.Steps, cout.Steps)
		}
		if !bytes.Equal(env.Pkt, fr.Data) {
			t.Fatalf("%s: bytes interp=%x compiled=%x", ctx, env.Pkt, fr.Data)
		}
		cm := map[string]bv.V{}
		lay.Export(fr.MetaVals, fr.MetaPresent, cm)
		if !maps.Equal(env.Meta, cm) {
			t.Fatalf("%s: meta interp=%v compiled=%v", ctx, env.Meta, cm)
		}
		if !stateEq(ist, es.Snapshot()) {
			t.Fatalf("%s: state interp=%v compiled=%v", ctx, ist, es.Snapshot())
		}
	}
}

// stateEq compares private state treating empty stores as absent —
// the interpreter materializes stores lazily.
func stateEq(a, b ir.State) bool {
	for name, m := range a {
		if len(m) > 0 && !maps.Equal(m, b[name]) {
			return false
		}
	}
	for name, m := range b {
		if len(m) > 0 && len(a[name]) == 0 {
			return false
		}
	}
	return true
}

// rng is a tiny deterministic generator so failures reproduce.
type rng uint64

func (r *rng) next() uint64 {
	*r ^= *r << 13
	*r ^= *r >> 7
	*r ^= *r << 17
	return uint64(*r)
}

func (r *rng) bytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.next())
	}
	return b
}

// fuzzInputs mixes lengths from empty through 64 bytes so OOB crash
// paths, loop exits, and the happy path all get hit.
func fuzzInputs(seed rng, n int, meta func(i int) map[string]bv.V) []pin {
	r := seed
	var in []pin
	for i := 0; i < n; i++ {
		var m map[string]bv.V
		if meta != nil {
			m = meta(i)
		}
		in = append(in, pin{data: r.bytes(int(r.next() % 65)), meta: m})
	}
	in = append(in, pin{data: nil}, pin{data: []byte{0}}, pin{data: []byte{0xff}})
	return in
}

// checksumProg mirrors the CheckIPHeader checksum idiom — a counted
// accumulate loop with a data-dependent Break — which is the shape the
// optimizer inverts and fuses into the whole-loop superinstruction.
func checksumProg() *ir.Program {
	b := ir.NewBuilder("chk", 1, 2)
	hoff := b.MetaLoad(packet.MetaHeaderOffset, 32)
	n := b.ZExt(b.LoadPkt(hoff, 1), 32) // halfword count taken from the packet
	sum := b.Mov(b.ConstU(32, 0))
	j := b.Mov(b.ConstU(32, 0))
	b.Loop(30, func() {
		b.If(b.Bin(ir.Ule, n, j), func() { b.Break() }, nil)
		hw := b.LoadPkt(b.Bin(ir.Add, hoff, b.BinC(ir.Mul, j, 2)), 2)
		b.SetReg(sum, b.Bin(ir.Add, sum, b.ZExt(hw, 32)))
		b.SetReg(j, b.BinC(ir.Add, j, 1))
	})
	b.If(b.BinC(ir.Ult, sum, 0x80000), func() { b.Emit(0) }, func() { b.Emit(1) })
	return b.MustBuild()
}

// arithProg covers division crashes, casts, Select, Assert, packet
// stores, and metadata writes.
func arithProg() *ir.Program {
	b := ir.NewBuilder("arith", 1, 2)
	x := b.LoadPktC(0, 1)
	y := b.LoadPktC(1, 1)
	b.Assert(b.BinC(ir.Ne, x, 0xee), "x is the poison byte")
	q := b.Bin(ir.UDiv, x, y) // crashes when y == 0
	r := b.Bin(ir.URem, x, y)
	s := b.SExt(b.Trunc(b.ZExt(q, 32), 8), 16)
	cond := b.BinC(ir.Ult, x, 128)
	sel := b.Select(cond, b.ZExt(r, 16), b.BinC(ir.Xor, s, 0xff))
	b.StorePkt(b.ConstU(32, 2), b.Trunc(sel, 8), 1)
	b.MetaStore("arith.out", sel)
	b.If(cond, func() { b.Emit(0) }, func() { b.Emit(1) })
	return b.MustBuild()
}

// stateProg covers StateRead/StateWrite with a small capacity bound
// and a non-zero default, keyed by packet bytes.
func stateProg() *ir.Program {
	b := ir.NewBuilder("st", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "tbl", KeyW: 8, ValW: 16, Default: 7, Capacity: 2})
	k := b.LoadPktC(0, 1)
	v := b.StateRead("tbl", k)
	b.StateWrite("tbl", k, b.BinC(ir.Add, v, 1))
	k2 := b.LoadPktC(1, 1)
	b.MetaStore("st.v", v)
	b.MetaStore("st.v2", b.StateRead("tbl", k2))
	b.Emit(0)
	return b.MustBuild()
}

// tableProg covers static range-table lookups and byte stores.
func tableProg() *ir.Program {
	b := ir.NewBuilder("tbl", 1, 1)
	b.DeclareTable(&ir.StaticTable{
		Name: "cls", KeyW: 8, ValW: 8, Default: 9,
		Entries: []ir.RangeEntry{{Lo: 0, Hi: 63, Val: 1}, {Lo: 64, Hi: 127, Val: 2}, {Lo: 192, Hi: 255, Val: 3}},
	})
	v := b.StaticLookup("cls", b.LoadPktC(0, 1))
	b.StorePkt(b.ConstU(32, 1), v, 1)
	b.Emit(0)
	return b.MustBuild()
}

// oobProg loads and stores at packet-controlled offsets so both OOB
// crash sites (read and write) are exercised, plus wide accesses.
func oobProg() *ir.Program {
	b := ir.NewBuilder("oob", 1, 1)
	off := b.ZExt(b.LoadPktC(0, 1), 32)
	w := b.LoadPkt(off, 2)
	b.StorePkt(b.ZExt(b.LoadPktC(1, 1), 32), w, 2)
	b.StorePkt(b.ConstU(32, 4), b.LoadPkt(b.BinC(ir.Add, off, 2), 4), 4)
	b.Drop()
	return b.MustBuild()
}

func TestParityHandBuilt(t *testing.T) {
	metaOff := func(i int) map[string]bv.V {
		if i%3 == 0 {
			return nil // exercise the absent-slot default path
		}
		return map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, uint64(i%5))}
	}
	cases := []struct {
		name string
		prog *ir.Program
		in   []pin
	}{
		{"checksum", checksumProg(), fuzzInputs(1, 200, metaOff)},
		{"arith", arithProg(), append(fuzzInputs(2, 100, nil),
			pin{data: []byte{0xee, 1, 0}}, pin{data: []byte{5, 0, 0}})},
		{"state", stateProg(), fuzzInputs(3, 200, nil)},
		{"table", tableProg(), fuzzInputs(4, 100, nil)},
		{"oob", oobProg(), fuzzInputs(5, 200, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runParity(t, tc.prog, tc.in) })
	}
}

// TestParityCheckIPHeader pins the optimizer's headline result: the
// real CheckIPHeader element must compile with its checksum loop fused
// into the whole-loop superinstruction, prove definite assignment (no
// per-packet register clear), and still agree with the interpreter on
// every observable — including crash position and step count when the
// loop runs off a truncated packet.
func TestParityCheckIPHeader(t *testing.T) {
	p, err := elements.CheckIPHeader("")
	if err != nil {
		t.Fatal(err)
	}
	lay, err := BuildLayout([]*ir.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(p, lay)
	if err != nil {
		t.Fatal(err)
	}
	fused := false
	for i := range cp.code {
		if cp.code[i].op == opLoad2AddLoop {
			fused = true
		}
	}
	if !fused {
		t.Error("checksum loop did not fuse into opLoad2AddLoop")
	}
	if cp.clearRegs {
		t.Error("lowered CheckIPHeader failed the definitely-assigned proof")
	}

	// A well-formed 20-byte IPv4 header with a correct checksum.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00,
		0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
		0x0a, 0x00, 0x00, 0x02,
	}
	csum := uint32(0)
	for i := 0; i < len(hdr); i += 2 {
		csum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	csum = (csum & 0xffff) + csum>>16
	csum = (csum & 0xffff) + csum>>16
	hdr[10] = byte(^csum >> 8)
	hdr[11] = byte(^csum)

	bad := append([]byte(nil), hdr...)
	bad[8]++ // breaks the checksum
	truncated := hdr[:12]
	var ihl15 []byte
	ihl15 = append(ihl15, hdr...)
	ihl15[0] = 0x4f // claims a 60-byte header: length check fails
	inputs := []pin{
		{data: hdr, meta: map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, 0)}},
		{data: bad, meta: map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, 0)}},
		{data: truncated, meta: map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, 0)}},
		{data: ihl15, meta: map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, 0)}},
		{data: hdr, meta: map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, 9)}},
		{data: nil},
	}
	inputs = append(inputs, fuzzInputs(6, 200, func(i int) map[string]bv.V {
		return map[string]bv.V{packet.MetaHeaderOffset: bv.New(32, uint64(i%4))}
	})...)
	runParity(t, p, inputs)
}

// TestDefAssignLowered checks that lowering's own output always
// proves definitely-assigned, so compiled programs skip the register
// clear.
func TestDefAssignLowered(t *testing.T) {
	progs := []*ir.Program{checksumProg(), arithProg(), stateProg(), tableProg(), oobProg()}
	for _, mk := range []func(string) (*ir.Program, error){elements.CheckIPHeader, elements.DecIPTTL} {
		p, err := mk("")
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	for _, p := range progs {
		lay, err := BuildLayout([]*ir.Program{p})
		if err != nil {
			t.Fatal(err)
		}
		cp, err := Compile(p, lay)
		if err != nil {
			t.Fatal(err)
		}
		if cp.clearRegs {
			t.Errorf("%s: lowered code failed the definitely-assigned proof", p.Name)
		}
		if !definitelyAssigned(cp.code, cp.numRegs) {
			t.Errorf("%s: definitelyAssigned disagrees with clearRegs", p.Name)
		}
	}
}

// TestDefAssignBytecode exercises the analysis on hand-assembled
// bytecode, including the branch-join case the proof exists for: a
// register written on only one arm of a branch is NOT definitely
// assigned at the join.
func TestDefAssignBytecode(t *testing.T) {
	cases := []struct {
		name string
		code []instr
		regs int
		want bool
	}{
		{"read before write", []instr{
			{op: opMov, dst: 1, a: 0},
			{op: opDrop},
		}, 2, false},
		{"write then read", []instr{
			{op: opConst, dst: 0, imm: 1},
			{op: opMov, dst: 1, a: 0},
			{op: opDrop},
		}, 2, true},
		{"written on one arm only", []instr{
			{op: opConst, dst: 0, imm: 1},
			{op: opBrIf, a: 0, aux: 3},
			{op: opConst, dst: 1, imm: 5},
			{op: opMov, dst: 2, a: 1}, // join: reg 1 unwritten on the taken path
			{op: opDrop},
		}, 3, false},
		{"written on both arms", []instr{
			{op: opConst, dst: 0, imm: 1},
			{op: opBrIf, a: 0, aux: 4},
			{op: opConst, dst: 1, imm: 5},
			{op: opJump, aux: 5},
			{op: opConst, dst: 1, imm: 6},
			{op: opMov, dst: 2, a: 1},
			{op: opDrop},
		}, 3, true},
		{"no registers", []instr{{op: opDrop}}, 0, true},
	}
	for _, tc := range cases {
		if got := definitelyAssigned(tc.code, tc.regs); got != tc.want {
			t.Errorf("%s: definitelyAssigned = %v, want %v", tc.name, got, tc.want)
		}
	}
}
