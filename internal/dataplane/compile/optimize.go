package compile

import "math"

// The peephole optimizer fuses adjacent instruction pairs into
// superinstructions: a constant feeding its single use becomes an
// immediate operand, a compare feeding only a branch becomes a fused
// conditional branch, address arithmetic folds into the load or store
// it feeds, and the width-widening copies the lowering emits (Mov,
// or-with-zero) disappear into their producers. Dispatch overhead
// dominates a bytecode VM, so executing fewer, fatter instructions is
// the main throughput lever; a constant-sinking pass moves single-use
// constants next to their consumer so the pair rules can see them.
//
// Fusion is invisible to every observable the differential oracle
// checks. In particular the step count is preserved exactly: a fused
// instruction's cost field carries the summed IR-statement cost of the
// pair, and the VM adds cost (not 1) per dispatch. A pair is only fused
// when (a) no jump targets the second instruction, so control can never
// enter the middle of the pair, and (b) for value fusions, the
// intermediate register is written and read exactly once in the whole
// program, so dropping the write cannot change any other instruction's
// input (loops re-execute the fused pair as a unit, which re-executes
// the same two statements the interpreter would).
//
// Width correctness leans on the VM's register invariant — regs[r] <=
// masks[r] at all times — and on truncation being a congruence for
// power-of-two masks: (x&m + y)&m == (x+y)&m, so an intermediate mask
// can be dropped whenever producer and consumer share a width.

// optimize runs sinking and fusion passes to a fixpoint, then inverts
// counted loops whose header is a simple exit test.
func optimize(code []instr, masks []uint64) []instr {
	fix := func() {
		for {
			c1 := sinkConsts(code, masks)
			next, c2 := fusePass(code, masks)
			code = next
			if !c1 && !c2 {
				break
			}
		}
	}
	fix()
	// Inversion exposes one more shape — a single-instruction loop body
	// followed by its own back edge — so fusion runs once more over it.
	invertLoops(code)
	fix()
	return code
}

// invertLoops rewrites back edges whose header is the shape
//
//	H:   BrUgt limit, i -> body
//	H+1: Break -> exit
//
// into opLoopNext/opLoopBackUgt, which replicate the test so the
// steady-state iteration never revisits the header (the header stays
// for loop entry, and exit is the back edge's fallthrough — the Break's
// target, which the lowering places right after the back edge). The
// rewrite is in place: no instruction moves, so no branch retargeting.
func invertLoops(code []instr) {
	for i := range code {
		in := &code[i]
		if in.op != opAddImmLoopBack && in.op != opLoopBack {
			continue
		}
		h := in.aux
		if int(h)+1 >= len(code) {
			continue
		}
		hb, br := &code[h], &code[h+1]
		if hb.op != opBrUgt || br.op != opBreak || br.aux != int32(i)+1 {
			continue
		}
		costs := uint64(hb.cost)<<40 | uint64(br.cost)<<48
		if in.op == opAddImmLoopBack {
			// The increment must be in place (dst==a frees the a field
			// for the limit register) and the test must watch the
			// incremented register.
			if in.dst != in.a || hb.b != in.dst || in.imm >= 1<<40 {
				continue
			}
			in.op = opLoopNext
			in.a = hb.a
			in.imm |= costs
		} else {
			in.op = opLoopBackUgt
			in.dst = hb.b
			in.b = hb.a
			in.imm = costs
		}
		in.aux = hb.aux
	}
}

// fusePass performs one left-to-right fusion sweep, rewriting jump
// targets for the compacted layout.
func fusePass(code []instr, masks []uint64) ([]instr, bool) {
	reads, writes := countRegRefs(code, len(masks))
	targeted := branchTargets(code)

	out := make([]instr, 0, len(code))
	oldToNew := make([]int32, len(code)+1)
	changed := false
	for i := 0; i < len(code); i++ {
		oldToNew[i] = int32(len(out))
		if i+2 < len(code) && !targeted[i+1] && !targeted[i+2] {
			if f, ok := fuse3(&code[i], &code[i+1], &code[i+2], reads, writes); ok {
				f.cost = code[i].cost + code[i+1].cost + code[i+2].cost
				out = append(out, f)
				oldToNew[i+1] = int32(len(out) - 1)
				oldToNew[i+2] = int32(len(out) - 1)
				i += 2
				changed = true
				continue
			}
		}
		if i+1 < len(code) && !targeted[i+1] &&
			code[i].op == opLoad2SAdd && code[i+1].op == opLoopNext &&
			code[i+1].aux == int32(i) {
			if f, ok := fuseChkLoop(&code[i], &code[i+1]); ok {
				f.cost = code[i].cost + code[i+1].cost
				out = append(out, f)
				oldToNew[i+1] = int32(len(out) - 1)
				i++
				changed = true
				continue
			}
		}
		if i+1 < len(code) && !targeted[i+1] {
			if f, ok := fuse(&code[i], &code[i+1], reads, writes, masks); ok {
				f.cost = code[i].cost + code[i+1].cost
				out = append(out, f)
				oldToNew[i+1] = int32(len(out) - 1)
				i++
				changed = true
				continue
			}
		}
		out = append(out, code[i])
	}
	oldToNew[len(code)] = int32(len(out))
	if changed {
		for j := range out {
			if isBranch(out[j].op) {
				out[j].aux = oldToNew[out[j].aux]
			}
		}
	}
	return out, changed
}

// sinkConsts moves a single-use opConst down to sit immediately before
// its consumer, so fusePass can fold it. Legal only within a basic
// block (no branches, branch targets, or terminators in between — on a
// path that bypassed or left early, the move would change which
// instructions execute) and never across an instruction that can
// crash, where the step count is observable mid-block. Rotating within
// the block leaves all other indices fixed, so no branch retargeting
// is needed. Operates in place.
func sinkConsts(code []instr, masks []uint64) bool {
	reads, writes := countRegRefs(code, len(masks))
	targeted := branchTargets(code)
	changed := false
	for i := 0; i < len(code); i++ {
		if code[i].op != opConst || !single(code[i].dst, reads, writes) {
			continue
		}
		k := code[i].dst
		j := i + 1
		for ; j < len(code); j++ {
			if targeted[j] || readsReg(&code[j], k) {
				break
			}
			if isBranch(code[j].op) || isTerminator(code[j].op) || canCrash(code[j].op) {
				j = -1
				break
			}
		}
		if j <= i+1 || j >= len(code) || targeted[j] || !readsReg(&code[j], k) {
			continue
		}
		// Rotate the const from i down to j-1.
		c := code[i]
		copy(code[i:j-1], code[i+1:j])
		code[j-1] = c
		changed = true
		i = j - 1
	}
	return changed
}

// readsReg reports whether in reads register k (per the same field
// conventions as countRegRefs).
func readsReg(in *instr, k int32) bool {
	switch in.op {
	case opAdd, opSub, opMul, opUDiv, opURem, opAnd, opOr, opXor,
		opShl, opLShr, opAShr, opEq, opNe, opUlt, opUle, opSlt, opSle,
		opStore1, opStore2, opStore4, opStateWrite, opMulAddImm,
		opBrNe, opBrEq, opBrUge, opBrUgt, opBrSge, opBrSgt,
		opBrLtU, opBrLeU, opBrLtS, opBrLeS,
		opStore1O, opStore2O, opStore4O,
		opLoad1S, opLoad2S, opLoad4S, opAddImmLoopBack:
		return in.a == k || in.b == k
	case opLoad2SAdd, opLoopNext, opLoopBackUgt:
		return in.a == k || in.b == k || in.dst == k
	case opLoad2AddLoop:
		return in.a == k || in.b == k || in.dst == k || in.aux == k ||
			int32(in.imm>>24&0xff) == k
	case opSel:
		return in.a == k || in.b == k || in.aux == k
	case opStore1C, opStore2C, opStore4C:
		return in.b == k
	case opNot, opMov, opTrunc, opSExt, opLoad1, opLoad2, opLoad4,
		opStateRead, opLookup, opMetaStore, opAssert, opBr, opLoopBack,
		opAddImm, opSubImm, opMulImm, opAndImm, opOrImm, opXorImm,
		opShlImm, opLShrImm, opAShrImm, opEqImm, opNeImm, opUltImm,
		opUleImm, opSltImm, opSleImm,
		opBrNeImm, opBrEqImm, opBrUgeImm, opBrUgtImm, opBrSgeImm, opBrSgtImm,
		opBrIf, opBrLtUImm, opBrLeUImm, opBrLtSImm, opBrLeSImm,
		opStore1V, opStore2V, opStore4V, opStore1VO, opStore2VO, opStore4VO,
		opStoreV2P, opAndShrAdd:
		return in.a == k
	}
	return false
}

// isBranch reports whether in.aux is a jump target.
func isBranch(o op) bool {
	switch o {
	case opBr, opJump, opBreak, opLoopBack, opAddImmLoopBack,
		opLoopNext, opLoopBackUgt,
		opBrNe, opBrEq, opBrUge, opBrUgt, opBrSge, opBrSgt,
		opBrNeImm, opBrEqImm, opBrUgeImm, opBrUgtImm, opBrSgeImm, opBrSgtImm,
		opBrIf, opBrLtU, opBrLeU, opBrLtS, opBrLeS,
		opBrLtUImm, opBrLeUImm, opBrLtSImm, opBrLeSImm:
		return true
	}
	return false
}

// isTerminator reports whether o ends execution of the element.
func isTerminator(o op) bool {
	return o == opEmit || o == opDrop || o == opCrashEnd
}

// canCrash reports whether o can abort with a crash outcome, making
// the step count observable at its position.
func canCrash(o op) bool {
	switch o {
	case opUDiv, opURem, opAssert,
		opLoad1, opLoad2, opLoad4, opStore1, opStore2, opStore4,
		opLoad1C, opLoad2C, opLoad4C, opStore1C, opStore2C, opStore4C,
		opLoad1O, opLoad2O, opLoad4O, opStore1O, opStore2O, opStore4O,
		opLoad1S, opLoad2S, opLoad4S,
		opStore1V, opStore2V, opStore4V, opStore1VO, opStore2VO, opStore4VO,
		opLoad2SAdd, opStoreV2P, opLoad2AddLoop:
		return true
	}
	return false
}

// branchTargets marks every instruction index some branch jumps to.
func branchTargets(code []instr) []bool {
	t := make([]bool, len(code)+1)
	for i := range code {
		if isBranch(code[i].op) {
			t[code[i].aux] = true
		}
	}
	return t
}

// countRegRefs tallies, per register, how many instructions read it and
// how many write it, using the regRefs table.
func countRegRefs(code []instr, numRegs int) (reads, writes []int) {
	reads = make([]int, numRegs)
	writes = make([]int, numRegs)
	var rbuf, wbuf [4]int32
	for i := range code {
		r, w := regRefs(&code[i], rbuf[:0], wbuf[:0])
		for _, k := range r {
			reads[k]++
		}
		for _, k := range w {
			writes[k]++
		}
	}
	return reads, writes
}

// single reports whether register k is written and read exactly once in
// the whole program — the condition under which its defining
// instruction can be folded into its one consumer.
func single(k int32, reads, writes []int) bool {
	return reads[k] == 1 && writes[k] == 1
}

// fuse tries to combine a (at pc) followed by b (at pc+1) into one
// superinstruction, trying each rule family in turn.
func fuse(a, b *instr, reads, writes []int, masks []uint64) (instr, bool) {
	if f, ok := fuseCopy(a, b, reads, writes, masks); ok {
		return f, true
	}
	if a.op == opConst {
		if f, ok := fuseConst(a, b, reads, writes, masks); ok {
			return f, true
		}
	}
	if b.op == opBr || b.op == opBrIf {
		if f, ok := fuseCmpBr(a, b, reads, writes, masks); ok {
			return f, true
		}
	}
	if a.op == opAddImm {
		if f, ok := fuseAddr(a, b, reads, writes); ok {
			return f, true
		}
	}
	if a.op == opMulImm && b.op == opAdd {
		if f, ok := fuseMulAdd(a, b, reads, writes, masks); ok {
			return f, true
		}
	}
	if a.op == opMulAddImm {
		if f, ok := fuseScaled(a, b, reads, writes); ok {
			return f, true
		}
	}
	if b.op == opAndImm {
		if f, ok := fuseMaskId(a, b, reads, writes); ok {
			return f, true
		}
	}
	if a.op == opLoad2S && b.op == opAdd {
		if f, ok := fuseLoadAcc(a, b, reads, writes); ok {
			return f, true
		}
	}
	if a.op == opAddImm && b.op == opLoopBack {
		// Glue fusion (nothing eliminated): the handler runs both effects
		// in order, so any register aliasing keeps sequential semantics.
		return instr{op: opAddImmLoopBack, dst: a.dst, a: a.a, b: b.a,
			aux: b.aux, imm: a.imm}, true
	}
	if a.op == opStore1VO && b.op == opStore1VO &&
		a.a == b.a && masks[a.aux] == masks[b.aux] {
		// Two constant byte stores off the same base at the same address
		// width pair up regardless of their displacements; the handler
		// performs them in order with each offset masked as before, and
		// keeps the second store's cost for a fault at the first.
		return instr{op: opStoreV2P, a: a.a, dst: a.dst, b: b.dst, aux: a.aux,
			trail: b.cost, imm: (a.imm&0xff)<<8 | b.imm&0xff}, true
	}
	return instr{}, false
}

// fuse3 tries the one three-instruction rule: the ones-complement
// checksum fold (s & m) + (s >> k), lowered as two single-use
// intermediates feeding an Add. Both orders of the And/Shr pair occur.
func fuse3(a, b, c *instr, reads, writes []int) (instr, bool) {
	if c.op != opAdd {
		return instr{}, false
	}
	var and, shr *instr
	switch {
	case a.op == opAndImm && b.op == opLShrImm:
		and, shr = a, b
	case a.op == opLShrImm && b.op == opAndImm:
		and, shr = b, a
	default:
		return instr{}, false
	}
	if and.a != shr.a ||
		!single(and.dst, reads, writes) || !single(shr.dst, reads, writes) {
		return instr{}, false
	}
	if !(c.a == and.dst && c.b == shr.dst) && !(c.a == shr.dst && c.b == and.dst) {
		return instr{}, false
	}
	return instr{op: opAndShrAdd, dst: c.dst, a: and.a,
		aux: int32(shr.imm), imm: and.imm}, true
}

// fuseLoadAcc folds a scaled load into a following in-place accumulate:
// t = load2(base+idx*c); s = s + t becomes s += load2(base+idx*c) — the
// checksum inner loop. The add's cost moves to trail so a load fault
// reports exactly the statements that ran.
func fuseLoadAcc(a, b *instr, reads, writes []int) (instr, bool) {
	t := a.dst
	if !single(t, reads, writes) {
		return instr{}, false
	}
	if !(b.a == t && b.b == b.dst) && !(b.b == t && b.a == b.dst) {
		return instr{}, false
	}
	f := *a
	f.op = opLoad2SAdd
	f.dst = b.dst
	f.trail = a.trail + b.cost
	return f, true
}

// fuseChkLoop folds a whole counted loop into one dispatch: after
// inversion, the checksum inner loop is a single opLoad2SAdd body at h
// followed by an opLoopNext back edge targeting h. The fused handler
// iterates internally, replaying the pair's per-iteration step
// accounting bit for bit. Glue fusion: nothing is eliminated, so no
// single-use requirement — only that every packed field fits its 8-bit
// imm slot (the latch's own jump is the sole way into the back edge,
// which fusePass's untargeted check guarantees; jumps into the body
// land at the fused op, which starts with the load, as before).
func fuseChkLoop(a, b *instr) (instr, bool) {
	scale := a.imm
	inc := b.imm & (1<<40 - 1)
	test := b.imm >> 40 & 0xff
	brk := b.imm >> 48 & 0xff
	cont := uint64(b.cost) + test + uint64(a.cost)
	fail := uint64(b.cost) + test + brk
	if b.dst != a.a || // latch must step the load's index register
		scale > 0xff || inc > 0xff || a.aux > 0xff || b.a > 0xff ||
		cont > 0xff || fail > 0xff {
		return instr{}, false
	}
	return instr{op: opLoad2AddLoop, dst: a.dst, a: a.a, b: a.b, aux: b.b,
		trail: a.trail, // a load fault skips the body's trailing statements
		imm: scale | inc<<8 | uint64(a.aux)<<16 | uint64(b.a)<<24 |
			cont<<40 | fail<<48 | uint64(b.cost)<<56}, true
}

// valBound returns a tight upper bound on the value an opcode can
// produce, independent of its destination width, for the opcodes where
// one is known: byte/halfword/word loads and boolean compares.
func valBound(o op) (uint64, bool) {
	switch o {
	case opLoad1, opLoad1C, opLoad1O, opLoad1S:
		return 0xff, true
	case opLoad2, opLoad2C, opLoad2O, opLoad2S:
		return 0xffff, true
	case opLoad4, opLoad4C, opLoad4O, opLoad4S:
		return 0xffffffff, true
	case opEq, opNe, opUlt, opUle, opSlt, opSle,
		opEqImm, opNeImm, opUltImm, opUleImm, opSltImm, opSleImm:
		return 1, true
	}
	return 0, false
}

// fuseMaskId eliminates an AndImm that cannot clear any bit its
// producer can set — the width-normalizing masks the lowering emits
// after byte loads. The And degenerates to a copy, so the producer is
// redirected to its destination (value-bounded, so any width is fine).
func fuseMaskId(a, b *instr, reads, writes []int) (instr, bool) {
	bound, ok := valBound(a.op)
	if !ok || b.a != a.dst || b.imm&bound != bound || !single(a.dst, reads, writes) {
		return instr{}, false
	}
	f := *a
	f.dst = b.dst
	f.trail = a.trail + b.cost // the degenerate And trails a's fault point
	return f, true
}

// masksDst marks opcodes whose handler truncates the result with
// masks[dst]; redirecting their destination is only sound when the
// widths match. Every other register-writing opcode produces a value
// already bounded by the source width, so a widening redirect is safe.
var masksDst = map[op]bool{
	opAdd: true, opSub: true, opMul: true, opShl: true, opAShr: true,
	opNot: true, opTrunc: true, opSExt: true,
	opAddImm: true, opSubImm: true, opMulImm: true,
	opShlImm: true, opAShrImm: true, opMulAddImm: true, opAndShrAdd: true,
}

// writesDst marks opcodes whose dst field is a plain result register
// (excluding opLoopInit, whose dst is the reserved loop counter).
func writesDst(o op) bool {
	switch o {
	case opConst, opPktLen, opMetaLoad,
		opAdd, opSub, opMul, opUDiv, opURem, opAnd, opOr, opXor,
		opShl, opLShr, opAShr, opEq, opNe, opUlt, opUle, opSlt, opSle,
		opNot, opMov, opTrunc, opSExt, opSel,
		opLoad1, opLoad2, opLoad4, opStateRead, opLookup,
		opAddImm, opSubImm, opMulImm, opAndImm, opOrImm, opXorImm,
		opShlImm, opLShrImm, opAShrImm, opEqImm, opNeImm, opUltImm,
		opUleImm, opSltImm, opSleImm,
		opLoad1C, opLoad2C, opLoad4C,
		opLoad1O, opLoad2O, opLoad4O, opLoad1S, opLoad2S, opLoad4S,
		opMulAddImm, opAndShrAdd:
		return true
	}
	return false
}

// isCopy reports whether b is a pure register copy of its a operand:
// an explicit Mov (zero-extending; widths only grow) or an identity
// immediate op the lowering emits for loop-variable updates. Or/Xor
// with zero never truncate; Add/Sub with zero truncate to the dst
// width, which the register invariant makes a no-op for equal or
// growing widths.
func isCopy(b *instr) bool {
	switch b.op {
	case opMov:
		return true
	case opOrImm, opXorImm, opAddImm, opSubImm:
		return b.imm == 0
	case opShlImm, opLShrImm:
		return b.imm == 0
	}
	return false
}

// fuseCopy redirects a producer's destination through a trailing copy,
// eliminating the copy: X(t); copy(d<-t) => X(d).
func fuseCopy(a, b *instr, reads, writes []int, masks []uint64) (instr, bool) {
	if !isCopy(b) || b.a != a.dst || !writesDst(a.op) || !single(a.dst, reads, writes) {
		return instr{}, false
	}
	if masksDst[a.op] && masks[a.dst] != masks[b.dst] {
		return instr{}, false
	}
	f := *a
	f.dst = b.dst
	f.trail = a.trail + b.cost // the copy trails a's fault point
	return f, true
}

// immALU maps a binary opcode to its immediate form for a constant
// second operand.
var immALU = map[op]op{
	opAdd: opAddImm, opSub: opSubImm, opMul: opMulImm,
	opAnd: opAndImm, opOr: opOrImm, opXor: opXorImm,
	opEq: opEqImm, opNe: opNeImm, opUlt: opUltImm, opUle: opUleImm,
}

// commutative marks ALU ops where a constant FIRST operand can also be
// folded (by swapping).
var commutative = map[op]bool{
	opAdd: true, opMul: true, opAnd: true, opOr: true, opXor: true,
	opEq: true, opNe: true,
}

func fuseConst(a, b *instr, reads, writes []int, masks []uint64) (instr, bool) {
	k := a.dst
	if !single(k, reads, writes) {
		return instr{}, false
	}
	c := a.imm
	if o, ok := immALU[b.op]; ok {
		switch {
		case b.b == k && b.a != k:
			return instr{op: o, dst: b.dst, a: b.a, imm: c}, true
		case b.a == k && b.b != k && commutative[b.op]:
			return instr{op: o, dst: b.dst, a: b.b, imm: c}, true
		}
		return instr{}, false
	}
	if v, ok := foldConst(c, b, masks); ok && b.a == k {
		return instr{op: opConst, dst: b.dst, imm: v}, true
	}
	switch b.op {
	case opShl, opLShr, opAShr:
		// b.imm is the operand width; only fuse in-range shift amounts,
		// so the handlers need no overshift branch.
		if b.b == k && b.a != k && c < b.imm {
			o := opShlImm
			if b.op == opLShr {
				o = opLShrImm
			} else if b.op == opAShr {
				o = opAShrImm
			}
			return instr{op: o, dst: b.dst, a: b.a, imm: c}, true
		}
	case opSlt, opSle:
		// b.imm is 64-width; pre-sign-extend the constant.
		if b.b == k && b.a != k {
			o := opSltImm
			if b.op == opSle {
				o = opSleImm
			}
			sh := b.imm
			return instr{op: o, dst: b.dst, a: b.a, aux: int32(sh),
				imm: uint64(int64(c<<sh) >> sh)}, true
		}
	case opLoad1, opLoad2, opLoad4:
		if b.a == k {
			o := opLoad1C
			if b.op == opLoad2 {
				o = opLoad2C
			} else if b.op == opLoad4 {
				o = opLoad4C
			}
			return instr{op: o, dst: b.dst, trail: b.trail, imm: c}, true
		}
	case opStore1, opStore2, opStore4:
		if b.a == k && b.b != k {
			o := opStore1C
			if b.op == opStore2 {
				o = opStore2C
			} else if b.op == opStore4 {
				o = opStore4C
			}
			return instr{op: o, b: b.b, trail: b.trail, imm: c}, true
		}
		if b.b == k && b.a != k {
			o := opStore1V
			if b.op == opStore2 {
				o = opStore2V
			} else if b.op == opStore4 {
				o = opStore4V
			}
			return instr{op: o, a: b.a, trail: b.trail, imm: c}, true
		}
	case opMetaStore:
		if b.a == k {
			return instr{op: opMetaStoreImm, aux: b.aux, imm: c}, true
		}
	}
	return instr{}, false
}

// foldConst evaluates a unary or immediate-form op applied to the
// constant c, mirroring the VM handlers exactly.
func foldConst(c uint64, b *instr, masks []uint64) (uint64, bool) {
	m := masks[b.dst]
	switch b.op {
	case opMov:
		return c, true
	case opTrunc:
		return c & m, true
	case opNot:
		return ^c & m, true
	case opSExt:
		// b.imm is the source-width mask.
		v := c
		if v&((b.imm>>1)+1) != 0 {
			v |= ^b.imm
		}
		return v & m, true
	case opAddImm:
		return (c + b.imm) & m, true
	case opSubImm:
		return (c - b.imm) & m, true
	case opMulImm:
		return (c * b.imm) & m, true
	case opAndImm:
		return c & b.imm, true
	case opOrImm:
		return c | b.imm, true
	case opXorImm:
		return c ^ b.imm, true
	case opShlImm:
		return (c << b.imm) & m, true
	case opLShrImm:
		return c >> b.imm, true
	case opAShrImm:
		u := c >> b.imm
		if c&((m>>1)+1) != 0 {
			u |= m &^ (m >> b.imm)
		}
		return u, true
	case opEqImm:
		return b2u(c == b.imm), true
	case opNeImm:
		return b2u(c != b.imm), true
	case opUltImm:
		return b2u(c < b.imm), true
	case opUleImm:
		return b2u(c <= b.imm), true
	case opSltImm:
		sh := uint64(b.aux)
		return b2u(int64(c<<sh)>>sh < int64(b.imm)), true
	case opSleImm:
		sh := uint64(b.aux)
		return b2u(int64(c<<sh)>>sh <= int64(b.imm)), true
	}
	return 0, false
}

// brFused maps a compare opcode to the fused branch taken when the
// compare is FALSE (opBr's convention).
var brFused = map[op]op{
	opEq: opBrNe, opNe: opBrEq, opUlt: opBrUge, opUle: opBrUgt,
	opSlt: opBrSge, opSle: opBrSgt,
	opEqImm: opBrNeImm, opNeImm: opBrEqImm,
	opUltImm: opBrUgeImm, opUleImm: opBrUgtImm,
	opSltImm: opBrSgeImm, opSleImm: opBrSgtImm,
}

// brFusedPos maps a compare opcode to the fused branch taken when the
// compare is TRUE (opBrIf's convention, after a Not was folded away).
var brFusedPos = map[op]op{
	opEq: opBrEq, opNe: opBrNe, opUlt: opBrLtU, opUle: opBrLeU,
	opSlt: opBrLtS, opSle: opBrLeS,
	opEqImm: opBrEqImm, opNeImm: opBrNeImm,
	opUltImm: opBrLtUImm, opUleImm: opBrLeUImm,
	opSltImm: opBrLtSImm, opSleImm: opBrLeSImm,
}

func fuseCmpBr(a, b *instr, reads, writes []int, masks []uint64) (instr, bool) {
	// A boolean Not folds into either branch form by flipping it.
	if a.op == opNot && b.a == a.dst && single(a.dst, reads, writes) && masks[a.a] == 1 {
		o := opBrIf
		if b.op == opBrIf {
			o = opBr
		}
		return instr{op: o, a: a.a, aux: b.aux}, true
	}
	table := brFused
	if b.op == opBrIf {
		table = brFusedPos
	}
	o, ok := table[a.op]
	if !ok || b.a != a.dst || !single(a.dst, reads, writes) {
		return instr{}, false
	}
	switch a.op {
	case opEq, opNe, opUlt, opUle:
		return instr{op: o, a: a.a, b: a.b, aux: b.aux}, true
	case opSlt, opSle:
		// The compare kept 64-width in imm; the branch keeps it in dst
		// (its aux is the jump target).
		return instr{op: o, a: a.a, b: a.b, dst: int32(a.imm), aux: b.aux}, true
	case opEqImm, opNeImm, opUltImm, opUleImm:
		return instr{op: o, a: a.a, imm: a.imm, aux: b.aux}, true
	case opSltImm, opSleImm:
		return instr{op: o, a: a.a, imm: a.imm, dst: a.aux, aux: b.aux}, true
	}
	return instr{}, false
}

// fuseAddr folds an AddImm address computation into the memory access
// it feeds. The intermediate register's index rides along in aux so
// the handler can reproduce the AddImm's width mask exactly.
func fuseAddr(a, b *instr, reads, writes []int) (instr, bool) {
	t := a.dst
	if !single(t, reads, writes) {
		return instr{}, false
	}
	switch b.op {
	case opLoad1, opLoad2, opLoad4:
		if b.a == t {
			o := opLoad1O
			if b.op == opLoad2 {
				o = opLoad2O
			} else if b.op == opLoad4 {
				o = opLoad4O
			}
			return instr{op: o, dst: b.dst, a: a.a, aux: t, trail: b.trail, imm: a.imm}, true
		}
	case opStore1, opStore2, opStore4:
		if b.a == t && b.b != t {
			o := opStore1O
			if b.op == opStore2 {
				o = opStore2O
			} else if b.op == opStore4 {
				o = opStore4O
			}
			return instr{op: o, a: a.a, b: b.b, aux: t, trail: b.trail, imm: a.imm}, true
		}
	case opStore1V, opStore2V, opStore4V:
		if b.a == t && a.imm <= math.MaxInt32 {
			o := opStore1VO
			if b.op == opStore2V {
				o = opStore2VO
			} else if b.op == opStore4V {
				o = opStore4VO
			}
			return instr{op: o, a: a.a, dst: int32(a.imm), aux: t, trail: b.trail, imm: b.imm}, true
		}
	}
	return instr{}, false
}

// fuseMulAdd folds MulImm into a following Add: t = x*c; d = y+t
// becomes d = y + x*c. Dropping the intermediate mask is sound only at
// equal widths (mod-2^w congruence).
func fuseMulAdd(a, b *instr, reads, writes []int, masks []uint64) (instr, bool) {
	t := a.dst
	if !single(t, reads, writes) || masks[t] != masks[b.dst] {
		return instr{}, false
	}
	switch {
	case b.b == t && b.a != t:
		return instr{op: opMulAddImm, dst: b.dst, a: a.a, b: b.a, imm: a.imm}, true
	case b.a == t && b.b != t:
		return instr{op: opMulAddImm, dst: b.dst, a: a.a, b: b.b, imm: a.imm}, true
	}
	return instr{}, false
}

// fuseScaled folds a MulAddImm address computation into the load it
// feeds: t = base + idx*c; d = data[t] becomes a scaled-index load.
func fuseScaled(a, b *instr, reads, writes []int) (instr, bool) {
	t := a.dst
	if !single(t, reads, writes) {
		return instr{}, false
	}
	switch b.op {
	case opLoad1, opLoad2, opLoad4:
		if b.a == t {
			o := opLoad1S
			if b.op == opLoad2 {
				o = opLoad2S
			} else if b.op == opLoad4 {
				o = opLoad4S
			}
			return instr{op: o, dst: b.dst, a: a.a, b: a.b, aux: t, trail: b.trail, imm: a.imm}, true
		}
	}
	return instr{}, false
}
