package compile

import (
	"fmt"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// Frame is the packet state a VM executes over: raw bytes plus the
// slot-indexed metadata array of the pipeline's packet.MetaLayout.
// Frames are pooled by the runner; Reset reuses their storage.
type Frame struct {
	Data        []byte
	MetaVals    []uint64
	MetaPresent uint64
}

// NewFrame allocates a frame for a layout with n metadata slots.
func NewFrame(n int) *Frame {
	return &Frame{MetaVals: make([]uint64, n)}
}

// ResetFrom loads the frame with a copy of buf's bytes and metadata,
// reusing the frame's storage; it allocates only when the data capacity
// must grow.
func (fr *Frame) ResetFrom(lay *packet.MetaLayout, buf *packet.Buffer) {
	if cap(fr.Data) < len(buf.Data) {
		fr.Data = make([]byte, len(buf.Data))
	} else {
		fr.Data = fr.Data[:len(buf.Data)]
	}
	copy(fr.Data, buf.Data)
	fr.MetaPresent = lay.Import(buf.Meta, fr.MetaVals)
}

// ElemState is the concrete private state of one compiled element
// instance: one key/value map per declared store, in declaration
// order. It is the compiled analogue of ir.State and follows the same
// capacity semantics.
type ElemState struct {
	p      *Program
	stores []map[uint64]uint64
}

// NewElemState returns empty private state for p.
func NewElemState(p *Program) *ElemState {
	s := &ElemState{p: p, stores: make([]map[uint64]uint64, len(p.states))}
	for i := range s.stores {
		s.stores[i] = map[uint64]uint64{}
	}
	return s
}

// Seed pre-populates one entry of the named store, honoring the
// capacity bound exactly like a regular StateWrite — the compiled
// counterpart of dataplane.Runner.SeedState.
func (s *ElemState) Seed(store string, key, val uint64) error {
	idx := s.p.src.StateIndex(store)
	if idx < 0 {
		return fmt.Errorf("compile: element %s has no store %q", s.p.src.Name, store)
	}
	d := s.p.states[idx].decl
	s.write(idx, key&d.KeyW.Mask(), val&d.ValW.Mask())
	return nil
}

// write applies the IR's state-write semantics: a new key is dropped
// when a positive capacity is already reached; existing keys always
// update.
func (s *ElemState) write(idx int, key, val uint64) {
	m := s.stores[idx]
	d := &s.p.states[idx].decl
	if _, exists := m[key]; !exists && d.Capacity > 0 && len(m) >= d.Capacity {
		return
	}
	m[key] = val
}

// Snapshot converts the state to the interpreter's map-of-maps form,
// omitting never-written stores — the shape ir.State takes after the
// same execution, for differential comparison.
func (s *ElemState) Snapshot() ir.State {
	out := ir.State{}
	for i, m := range s.stores {
		if len(m) == 0 {
			continue
		}
		c := make(map[uint64]uint64, len(m))
		for k, v := range m {
			c[k] = v
		}
		out[s.p.states[i].decl.Name] = c
	}
	return out
}

// VM executes one compiled Program. The register file is allocated once
// and cleared in place per run; Run performs no heap allocation except
// on the crash path (the CrashInfo and, for packet-bounds faults, its
// message).
type VM struct {
	p    *Program
	regs []uint64
	prof *OpProfile // nil unless SetProfile enabled opcode profiling
}

// NewVM prepares a reusable VM for p.
func NewVM(p *Program) *VM {
	return &VM{p: p, regs: make([]uint64, p.numRegs)}
}

// Program returns the compiled program this VM executes.
func (vm *VM) Program() *Program { return vm.p }

// Run executes the program once over the frame and state. Packet bytes
// and metadata are mutated in place; state updates persist in st. The
// Outcome — disposition, port, crash, and exact step count — matches
// ir.Exec on the source program bit for bit (the differential fuzzer's
// invariant).
func (vm *VM) Run(fr *Frame, st *ElemState) ir.Outcome {
	regs := vm.regs
	if vm.p.clearRegs {
		// Only when the definitely-assigned proof failed (defassign.go);
		// proven programs never read a stale register.
		clear(regs)
	}
	code := vm.p.code
	masks := vm.p.masks
	data := fr.Data
	prof := vm.prof
	// Profiling attributes step cost by steps-delta: the previous
	// instruction's true charge (static cost plus any dynamic
	// loop-iteration adjustments its case body made) is known only at
	// the next dispatch, so note() settles it there; opEmit/opDrop
	// settle their own charge before returning. The delta cursor lives
	// in the OpProfile, not in locals, so the disabled path carries no
	// loop-carried profiling state — just this one predictable branch
	// on a register already in hand.
	if prof != nil {
		prof.lastOp, prof.lastSteps = 0, 0
	}
	var steps int64
	pc := 0
	for {
		in := &code[pc]
		pc++
		if prof != nil {
			prof.note(in.op, steps)
		}
		steps += int64(in.cost)
		switch in.op {
		case opConst:
			regs[in.dst] = in.imm
		case opAdd:
			regs[in.dst] = (regs[in.a] + regs[in.b]) & masks[in.dst]
		case opSub:
			regs[in.dst] = (regs[in.a] - regs[in.b]) & masks[in.dst]
		case opMul:
			regs[in.dst] = (regs[in.a] * regs[in.b]) & masks[in.dst]
		case opUDiv:
			d := regs[in.b]
			if d == 0 {
				return vm.crash(ir.CrashDivZero, vm.p.msgs[in.aux], steps-int64(in.trail))
			}
			regs[in.dst] = regs[in.a] / d
		case opURem:
			d := regs[in.b]
			if d == 0 {
				return vm.crash(ir.CrashDivZero, vm.p.msgs[in.aux], steps-int64(in.trail))
			}
			regs[in.dst] = regs[in.a] % d
		case opAnd:
			regs[in.dst] = regs[in.a] & regs[in.b]
		case opOr:
			regs[in.dst] = regs[in.a] | regs[in.b]
		case opXor:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
		case opShl:
			if sh := regs[in.b]; sh >= in.imm {
				regs[in.dst] = 0
			} else {
				regs[in.dst] = (regs[in.a] << sh) & masks[in.dst]
			}
		case opLShr:
			if sh := regs[in.b]; sh >= in.imm {
				regs[in.dst] = 0
			} else {
				regs[in.dst] = regs[in.a] >> sh
			}
		case opAShr:
			mask := masks[in.dst]
			a := regs[in.a]
			sign := a&((mask>>1)+1) != 0
			if sh := regs[in.b]; sh >= in.imm {
				if sign {
					regs[in.dst] = mask
				} else {
					regs[in.dst] = 0
				}
			} else {
				u := a >> sh
				if sign {
					u |= mask &^ (mask >> sh)
				}
				regs[in.dst] = u
			}
		case opEq:
			regs[in.dst] = b2u(regs[in.a] == regs[in.b])
		case opNe:
			regs[in.dst] = b2u(regs[in.a] != regs[in.b])
		case opUlt:
			regs[in.dst] = b2u(regs[in.a] < regs[in.b])
		case opUle:
			regs[in.dst] = b2u(regs[in.a] <= regs[in.b])
		case opSlt:
			sh := in.imm
			regs[in.dst] = b2u(int64(regs[in.a]<<sh)>>sh < int64(regs[in.b]<<sh)>>sh)
		case opSle:
			sh := in.imm
			regs[in.dst] = b2u(int64(regs[in.a]<<sh)>>sh <= int64(regs[in.b]<<sh)>>sh)
		case opNot:
			regs[in.dst] = ^regs[in.a] & masks[in.dst]
		case opMov:
			regs[in.dst] = regs[in.a]
		case opTrunc:
			regs[in.dst] = regs[in.a] & masks[in.dst]
		case opSExt:
			v := regs[in.a]
			if v&((in.imm>>1)+1) != 0 {
				v |= ^in.imm
			}
			regs[in.dst] = v & masks[in.dst]
		case opSel:
			if regs[in.a] == 1 {
				regs[in.dst] = regs[in.b]
			} else {
				regs[in.dst] = regs[in.aux]
			}
		case opLoad1:
			off := regs[in.a]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("read", off, 1, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])
		case opLoad2:
			off := regs[in.a]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("read", off, 2, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<8 | uint64(data[off+1])
		case opLoad4:
			off := regs[in.a]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("read", off, 4, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<24 | uint64(data[off+1])<<16 |
				uint64(data[off+2])<<8 | uint64(data[off+3])
		case opStore1:
			off := regs[in.a]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps-int64(in.trail))
			}
			data[off] = byte(regs[in.b])
		case opStore2:
			off := regs[in.a]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("write", off, 2, len(data), steps-int64(in.trail))
			}
			v := regs[in.b]
			data[off] = byte(v >> 8)
			data[off+1] = byte(v)
		case opStore4:
			off := regs[in.a]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("write", off, 4, len(data), steps-int64(in.trail))
			}
			v := regs[in.b]
			data[off] = byte(v >> 24)
			data[off+1] = byte(v >> 16)
			data[off+2] = byte(v >> 8)
			data[off+3] = byte(v)
		case opPktLen:
			regs[in.dst] = uint64(len(data))
		case opMetaLoad:
			regs[in.dst] = fr.MetaVals[in.aux]
		case opMetaStore:
			fr.MetaVals[in.aux] = regs[in.a]
			fr.MetaPresent |= 1 << uint(in.aux)
		case opStateRead:
			v, ok := st.stores[in.aux][regs[in.a]]
			if !ok {
				v = vm.p.states[in.aux].defv
			}
			regs[in.dst] = v
		case opStateWrite:
			st.write(int(in.aux), regs[in.a], regs[in.b])
		case opLookup:
			v, _ := vm.p.tables[in.aux].Lookup(regs[in.a])
			regs[in.dst] = v & in.imm
		case opAssert:
			if regs[in.a] != 1 {
				return vm.crash(ir.CrashAssert, vm.p.msgs[in.aux], steps)
			}
		case opBr:
			if regs[in.a] != 1 {
				pc = int(in.aux)
			}
		case opJump:
			pc = int(in.aux)
		case opBreak:
			pc = int(in.aux)
		case opLoopInit:
			regs[in.dst] = in.imm
		case opLoopBack:
			regs[in.a]--
			if regs[in.a] > 0 {
				pc = int(in.aux)
			} else {
				steps--
			}
		case opEmit:
			if prof != nil {
				prof.settle(in.op, steps)
			}
			return ir.Outcome{Disposition: ir.Emitted, Port: int(in.aux), Steps: steps}
		case opDrop:
			if prof != nil {
				prof.settle(in.op, steps)
			}
			return ir.Outcome{Disposition: ir.Dropped, Steps: steps}
		case opCrashEnd:
			return vm.crash(ir.CrashAssert, vm.p.msgs[in.aux], steps)

		// Superinstructions emitted by the peephole optimizer. Each is
		// semantically the sequential composition of its two source
		// instructions; the cost field already carries both steps.
		case opAddImm:
			regs[in.dst] = (regs[in.a] + in.imm) & masks[in.dst]
		case opSubImm:
			regs[in.dst] = (regs[in.a] - in.imm) & masks[in.dst]
		case opMulImm:
			regs[in.dst] = (regs[in.a] * in.imm) & masks[in.dst]
		case opAndImm:
			regs[in.dst] = regs[in.a] & in.imm
		case opOrImm:
			regs[in.dst] = regs[in.a] | in.imm
		case opXorImm:
			regs[in.dst] = regs[in.a] ^ in.imm
		case opShlImm:
			// Fused only for in-range shift amounts: no overshift case.
			regs[in.dst] = (regs[in.a] << in.imm) & masks[in.dst]
		case opLShrImm:
			regs[in.dst] = regs[in.a] >> in.imm
		case opAShrImm:
			mask := masks[in.dst]
			u := regs[in.a] >> in.imm
			if regs[in.a]&((mask>>1)+1) != 0 {
				u |= mask &^ (mask >> in.imm)
			}
			regs[in.dst] = u
		case opEqImm:
			regs[in.dst] = b2u(regs[in.a] == in.imm)
		case opNeImm:
			regs[in.dst] = b2u(regs[in.a] != in.imm)
		case opUltImm:
			regs[in.dst] = b2u(regs[in.a] < in.imm)
		case opUleImm:
			regs[in.dst] = b2u(regs[in.a] <= in.imm)
		case opSltImm:
			sh := uint64(in.aux)
			regs[in.dst] = b2u(int64(regs[in.a]<<sh)>>sh < int64(in.imm))
		case opSleImm:
			sh := uint64(in.aux)
			regs[in.dst] = b2u(int64(regs[in.a]<<sh)>>sh <= int64(in.imm))
		case opLoad1C:
			off := in.imm
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("read", off, 1, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])
		case opLoad2C:
			off := in.imm
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("read", off, 2, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<8 | uint64(data[off+1])
		case opLoad4C:
			off := in.imm
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("read", off, 4, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<24 | uint64(data[off+1])<<16 |
				uint64(data[off+2])<<8 | uint64(data[off+3])
		case opStore1C:
			off := in.imm
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps-int64(in.trail))
			}
			data[off] = byte(regs[in.b])
		case opStore2C:
			off := in.imm
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("write", off, 2, len(data), steps-int64(in.trail))
			}
			v := regs[in.b]
			data[off] = byte(v >> 8)
			data[off+1] = byte(v)
		case opStore4C:
			off := in.imm
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("write", off, 4, len(data), steps-int64(in.trail))
			}
			v := regs[in.b]
			data[off] = byte(v >> 24)
			data[off+1] = byte(v >> 16)
			data[off+2] = byte(v >> 8)
			data[off+3] = byte(v)
		case opMetaStoreImm:
			fr.MetaVals[in.aux] = in.imm
			fr.MetaPresent |= 1 << uint(in.aux)

		// Fused compare+branch: each branches when the source compare
		// was FALSE (opBr's convention), hence the negated names.
		case opBrNe:
			if regs[in.a] != regs[in.b] {
				pc = int(in.aux)
			}
		case opBrEq:
			if regs[in.a] == regs[in.b] {
				pc = int(in.aux)
			}
		case opBrUge:
			if regs[in.a] >= regs[in.b] {
				pc = int(in.aux)
			}
		case opBrUgt:
			if regs[in.a] > regs[in.b] {
				pc = int(in.aux)
			}
		case opBrSge:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh >= int64(regs[in.b]<<sh)>>sh {
				pc = int(in.aux)
			}
		case opBrSgt:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh > int64(regs[in.b]<<sh)>>sh {
				pc = int(in.aux)
			}
		case opBrNeImm:
			if regs[in.a] != in.imm {
				pc = int(in.aux)
			}
		case opBrEqImm:
			if regs[in.a] == in.imm {
				pc = int(in.aux)
			}
		case opBrUgeImm:
			if regs[in.a] >= in.imm {
				pc = int(in.aux)
			}
		case opBrUgtImm:
			if regs[in.a] > in.imm {
				pc = int(in.aux)
			}
		case opBrSgeImm:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh >= int64(in.imm) {
				pc = int(in.aux)
			}
		case opBrSgtImm:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh > int64(in.imm) {
				pc = int(in.aux)
			}

		// Address-formation fusions: aux is the register index whose
		// mask bounds the folded address arithmetic.
		case opMulAddImm:
			regs[in.dst] = (regs[in.b] + regs[in.a]*in.imm) & masks[in.dst]
		case opLoad1O:
			off := (regs[in.a] + in.imm) & masks[in.aux]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("read", off, 1, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])
		case opLoad2O:
			off := (regs[in.a] + in.imm) & masks[in.aux]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("read", off, 2, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<8 | uint64(data[off+1])
		case opLoad4O:
			off := (regs[in.a] + in.imm) & masks[in.aux]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("read", off, 4, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<24 | uint64(data[off+1])<<16 |
				uint64(data[off+2])<<8 | uint64(data[off+3])
		case opStore1O:
			off := (regs[in.a] + in.imm) & masks[in.aux]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps-int64(in.trail))
			}
			data[off] = byte(regs[in.b])
		case opStore2O:
			off := (regs[in.a] + in.imm) & masks[in.aux]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("write", off, 2, len(data), steps-int64(in.trail))
			}
			v := regs[in.b]
			data[off] = byte(v >> 8)
			data[off+1] = byte(v)
		case opStore4O:
			off := (regs[in.a] + in.imm) & masks[in.aux]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("write", off, 4, len(data), steps-int64(in.trail))
			}
			v := regs[in.b]
			data[off] = byte(v >> 24)
			data[off+1] = byte(v >> 16)
			data[off+2] = byte(v >> 8)
			data[off+3] = byte(v)
		case opLoad1S:
			off := (regs[in.b] + regs[in.a]*in.imm) & masks[in.aux]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("read", off, 1, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])
		case opLoad2S:
			off := (regs[in.b] + regs[in.a]*in.imm) & masks[in.aux]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("read", off, 2, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<8 | uint64(data[off+1])
		case opLoad4S:
			off := (regs[in.b] + regs[in.a]*in.imm) & masks[in.aux]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("read", off, 4, len(data), steps-int64(in.trail))
			}
			regs[in.dst] = uint64(data[off])<<24 | uint64(data[off+1])<<16 |
				uint64(data[off+2])<<8 | uint64(data[off+3])
		case opStore1V:
			off := regs[in.a]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm)
		case opStore2V:
			off := regs[in.a]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("write", off, 2, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm >> 8)
			data[off+1] = byte(in.imm)
		case opStore4V:
			off := regs[in.a]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("write", off, 4, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm >> 24)
			data[off+1] = byte(in.imm >> 16)
			data[off+2] = byte(in.imm >> 8)
			data[off+3] = byte(in.imm)
		case opStore1VO:
			off := (regs[in.a] + uint64(in.dst)) & masks[in.aux]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm)
		case opStore2VO:
			off := (regs[in.a] + uint64(in.dst)) & masks[in.aux]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("write", off, 2, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm >> 8)
			data[off+1] = byte(in.imm)
		case opStore4VO:
			off := (regs[in.a] + uint64(in.dst)) & masks[in.aux]
			if off+4 > uint64(len(data)) {
				return vm.crashOOB("write", off, 4, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm >> 24)
			data[off+1] = byte(in.imm >> 16)
			data[off+2] = byte(in.imm >> 8)
			data[off+3] = byte(in.imm)

		// Positive fused branches (a Not folded into opBr).
		case opBrIf:
			if regs[in.a] == 1 {
				pc = int(in.aux)
			}
		case opBrLtU:
			if regs[in.a] < regs[in.b] {
				pc = int(in.aux)
			}
		case opBrLeU:
			if regs[in.a] <= regs[in.b] {
				pc = int(in.aux)
			}
		case opBrLtS:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh < int64(regs[in.b]<<sh)>>sh {
				pc = int(in.aux)
			}
		case opBrLeS:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh <= int64(regs[in.b]<<sh)>>sh {
				pc = int(in.aux)
			}
		case opBrLtUImm:
			if regs[in.a] < in.imm {
				pc = int(in.aux)
			}
		case opBrLeUImm:
			if regs[in.a] <= in.imm {
				pc = int(in.aux)
			}
		case opBrLtSImm:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh < int64(in.imm) {
				pc = int(in.aux)
			}
		case opBrLeSImm:
			sh := uint64(in.dst)
			if int64(regs[in.a]<<sh)>>sh <= int64(in.imm) {
				pc = int(in.aux)
			}

		// Loop-body superinstructions.
		case opLoad2SAdd:
			// Scaled-index 16-bit load accumulated in place (the checksum
			// inner loop). The trailing statements folded behind the load
			// (in.trail) have not run when it faults.
			off := (regs[in.b] + regs[in.a]*in.imm) & masks[in.aux]
			if off+2 > uint64(len(data)) {
				return vm.crashOOB("read", off, 2, len(data), steps-int64(in.trail))
			}
			w := uint64(data[off])<<8 | uint64(data[off+1])
			regs[in.dst] = (regs[in.dst] + w) & masks[in.dst]
		case opAddImmLoopBack:
			regs[in.dst] = (regs[in.a] + in.imm) & masks[in.dst]
			regs[in.b]--
			if regs[in.b] > 0 {
				pc = int(in.aux)
			} else {
				steps--
			}
		case opStoreV2P:
			// Two fused constant byte stores at independent displacements
			// (EtherEncap interleaves destination- and source-MAC bytes).
			// Each offset is masked exactly like its original Store1VO; a
			// fault at the first store drops the second's cost (trail).
			off := (regs[in.a] + uint64(in.dst)) & masks[in.aux]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps-int64(in.trail))
			}
			data[off] = byte(in.imm >> 8)
			off = (regs[in.a] + uint64(in.b)) & masks[in.aux]
			if off+1 > uint64(len(data)) {
				return vm.crashOOB("write", off, 1, len(data), steps)
			}
			data[off] = byte(in.imm)
		case opAndShrAdd:
			// The ones-complement checksum fold: (s & m) + (s >> k).
			s := regs[in.a]
			regs[in.dst] = ((s & in.imm) + (s >> uint64(in.aux))) & masks[in.dst]

		// Inverted-loop back edges. Step deltas mirror the unfused paths
		// exactly: another iteration re-runs the header test (+test
		// cost); a test failure runs the test and the break (+both); an
		// exhausted counter falls out before the test (the back edge
		// itself goes uncounted, like opLoopBack's exit).
		case opLoopNext:
			regs[in.dst] = (regs[in.dst] + in.imm&(1<<40-1)) & masks[in.dst]
			regs[in.b]--
			if regs[in.b] > 0 {
				steps += int64(in.imm >> 40 & 0xff)
				if regs[in.a] > regs[in.dst] {
					pc = int(in.aux)
				} else {
					steps += int64(in.imm >> 48 & 0xff)
				}
			} else {
				steps--
			}
		case opLoopBackUgt:
			regs[in.a]--
			if regs[in.a] > 0 {
				steps += int64(in.imm >> 40 & 0xff)
				if regs[in.b] > regs[in.dst] {
					pc = int(in.aux)
				} else {
					steps += int64(in.imm >> 48 & 0xff)
				}
			} else {
				steps--
			}
		case opLoad2AddLoop:
			// The whole counted loop in one dispatch. Per-iteration step
			// accounting is identical to the Load2SAdd + LoopNext pair it
			// fused from: the dispatcher charged both instructions' costs
			// on entry, so the latch's share is returned first and then
			// re-charged per path, exactly as the pair would have.
			scale := in.imm & 0xff
			inc := in.imm >> 8 & 0xff
			mask := masks[in.imm>>16&0xff]
			limit := in.imm >> 24 & 0xff
			steps -= int64(in.imm >> 56 & 0xff)
			for {
				off := (regs[in.b] + regs[in.a]*scale) & mask
				if off+2 > uint64(len(data)) {
					return vm.crashOOB("read", off, 2, len(data), steps-int64(in.trail))
				}
				w := uint64(data[off])<<8 | uint64(data[off+1])
				regs[in.dst] = (regs[in.dst] + w) & masks[in.dst]
				regs[in.a] = (regs[in.a] + inc) & masks[in.a]
				regs[in.aux]--
				if regs[in.aux] > 0 {
					if regs[limit] > regs[in.a] {
						steps += int64(in.imm >> 40 & 0xff)
						continue
					}
					steps += int64(in.imm >> 48 & 0xff)
				} else {
					steps += int64(in.imm>>56&0xff) - 1
				}
				break
			}
		default:
			panic(fmt.Sprintf("compile: unknown opcode %d", in.op))
		}
	}
}

func (vm *VM) crash(kind ir.CrashKind, msg string, steps int64) ir.Outcome {
	return ir.Outcome{
		Disposition: ir.Crashed,
		Crash:       &ir.CrashInfo{Kind: kind, Msg: msg},
		Steps:       steps,
	}
}

// crashOOB formats the interpreter's out-of-bounds message; the
// dynamic offsets keep it off the preformatted table (crash paths may
// allocate — the steady state never reaches them).
func (vm *VM) crashOOB(what string, off uint64, n int, pktLen int, steps int64) ir.Outcome {
	return vm.crash(ir.CrashOOB, fmt.Sprintf("%s [%d,%d) beyond %d-byte packet in %s",
		what, off, off+uint64(n), pktLen, vm.p.src.Name), steps)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
