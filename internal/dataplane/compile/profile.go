package compile

import (
	"fmt"
	"sort"
	"strings"
)

// OpProfile accumulates per-opcode dispatch counts and the step cost
// attributed to each opcode across VM runs. Profiling is opt-in: a VM
// only consults a profile installed with SetProfile, and a single
// predictable nil check per dispatch is the entire cost on the disabled
// hot path — no allocation, no atomic, nothing the AllocsPerRun gates
// or the Mpps benchmark can see.
//
// A profile is plain memory with no locking. Share one across VMs only
// when they run on the same goroutine, as the Compiled runner's do;
// concurrent runners each need their own and can Merge afterwards.
type OpProfile struct {
	Counts [opCount]int64 // dispatches per opcode
	Cost   [opCount]int64 // IR step cost charged per opcode

	// Delta-attribution cursor (vm.go): the opcode whose charge is
	// still open and the step count at its dispatch. Kept here rather
	// than in VM.Run locals so the disabled hot path carries no extra
	// loop-carried registers.
	lastOp    op
	lastSteps int64
}

// note records a dispatch of o at step count steps, settling the
// previous instruction's charge. Small enough to inline into the
// dispatch loop.
func (p *OpProfile) note(o op, steps int64) {
	p.Cost[p.lastOp] += steps - p.lastSteps
	p.lastOp, p.lastSteps = o, steps
	p.Counts[o]++
}

// settle closes o's own charge; opEmit/opDrop call it before Run
// returns, since no further dispatch will.
func (p *OpProfile) settle(o op, steps int64) {
	p.Cost[o] += steps - p.lastSteps
}

// SetProfile installs (or, with nil, removes) the profile this VM
// updates on every dispatch.
func (vm *VM) SetProfile(p *OpProfile) { vm.prof = p }

// Merge folds another profile into p.
func (p *OpProfile) Merge(o *OpProfile) {
	if o == nil {
		return
	}
	for i := range p.Counts {
		p.Counts[i] += o.Counts[i]
		p.Cost[i] += o.Cost[i]
	}
}

// Dispatches returns the total instruction dispatch count.
func (p *OpProfile) Dispatches() int64 {
	var n int64
	for _, c := range p.Counts {
		n += c
	}
	return n
}

// Steps returns the total attributed step cost. On crash-free runs
// this equals the summed Outcome.Steps exactly (dynamic loop-iteration
// charges included); a crashing run leaves its faulting instruction's
// charge unattributed — the crash path returns before the delta
// settles — so with crashes Steps is a lower bound on the outcomes.
func (p *OpProfile) Steps() int64 {
	var n int64
	for _, c := range p.Cost {
		n += c
	}
	return n
}

// NumOps returns the number of opcodes (the profile array length).
func NumOps() int { return int(opCount) }

// OpName names opcode i ("?" out of range). The names mirror the
// bytecode mnemonics without their "op" prefix.
func OpName(i int) string {
	if i < 0 || i >= int(opCount) || opNames[i] == "" {
		return "?"
	}
	return opNames[i]
}

// Format renders the top-k opcodes by dispatch count as a table with
// each opcode's share of dispatches and of attributed step cost.
// k <= 0 means all opcodes with at least one dispatch.
func (p *OpProfile) Format(k int) string {
	type row struct {
		op    int
		count int64
		cost  int64
	}
	rows := make([]row, 0, opCount)
	for i := range p.Counts {
		if p.Counts[i] > 0 {
			rows = append(rows, row{i, p.Counts[i], p.Cost[i]})
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].count != rows[b].count {
			return rows[a].count > rows[b].count
		}
		return rows[a].op < rows[b].op
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	totalN, totalC := p.Dispatches(), p.Steps()
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %14s %7s %14s %7s\n", "opcode", "dispatches", "disp%", "steps", "step%")
	pct := func(n, total int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %14d %6.2f%% %14d %6.2f%%\n",
			OpName(r.op), r.count, pct(r.count, totalN), r.cost, pct(r.cost, totalC))
	}
	fmt.Fprintf(&b, "%-18s %14d %7s %14d\n", "total", totalN, "", totalC)
	return b.String()
}

// opNames indexes opcode mnemonics by opcode value. The indexed-literal
// form keeps each entry pinned to its constant, so reordering the enum
// cannot silently mislabel a row; a test asserts full coverage.
var opNames = [opCount]string{
	opConst:          "Const",
	opAdd:            "Add",
	opSub:            "Sub",
	opMul:            "Mul",
	opUDiv:           "UDiv",
	opURem:           "URem",
	opAnd:            "And",
	opOr:             "Or",
	opXor:            "Xor",
	opShl:            "Shl",
	opLShr:           "LShr",
	opAShr:           "AShr",
	opEq:             "Eq",
	opNe:             "Ne",
	opUlt:            "Ult",
	opUle:            "Ule",
	opSlt:            "Slt",
	opSle:            "Sle",
	opNot:            "Not",
	opMov:            "Mov",
	opTrunc:          "Trunc",
	opSExt:           "SExt",
	opSel:            "Sel",
	opLoad1:          "Load1",
	opLoad2:          "Load2",
	opLoad4:          "Load4",
	opStore1:         "Store1",
	opStore2:         "Store2",
	opStore4:         "Store4",
	opPktLen:         "PktLen",
	opMetaLoad:       "MetaLoad",
	opMetaStore:      "MetaStore",
	opStateRead:      "StateRead",
	opStateWrite:     "StateWrite",
	opLookup:         "Lookup",
	opAssert:         "Assert",
	opBr:             "Br",
	opJump:           "Jump",
	opBreak:          "Break",
	opLoopInit:       "LoopInit",
	opLoopBack:       "LoopBack",
	opEmit:           "Emit",
	opDrop:           "Drop",
	opCrashEnd:       "CrashEnd",
	opAddImm:         "AddImm",
	opSubImm:         "SubImm",
	opMulImm:         "MulImm",
	opAndImm:         "AndImm",
	opOrImm:          "OrImm",
	opXorImm:         "XorImm",
	opShlImm:         "ShlImm",
	opLShrImm:        "LShrImm",
	opAShrImm:        "AShrImm",
	opEqImm:          "EqImm",
	opNeImm:          "NeImm",
	opUltImm:         "UltImm",
	opUleImm:         "UleImm",
	opSltImm:         "SltImm",
	opSleImm:         "SleImm",
	opLoad1C:         "Load1C",
	opLoad2C:         "Load2C",
	opLoad4C:         "Load4C",
	opStore1C:        "Store1C",
	opStore2C:        "Store2C",
	opStore4C:        "Store4C",
	opMetaStoreImm:   "MetaStoreImm",
	opBrNe:           "BrNe",
	opBrEq:           "BrEq",
	opBrUge:          "BrUge",
	opBrUgt:          "BrUgt",
	opBrSge:          "BrSge",
	opBrSgt:          "BrSgt",
	opBrNeImm:        "BrNeImm",
	opBrEqImm:        "BrEqImm",
	opBrUgeImm:       "BrUgeImm",
	opBrUgtImm:       "BrUgtImm",
	opBrSgeImm:       "BrSgeImm",
	opBrSgtImm:       "BrSgtImm",
	opMulAddImm:      "MulAddImm",
	opLoad1O:         "Load1O",
	opLoad2O:         "Load2O",
	opLoad4O:         "Load4O",
	opStore1O:        "Store1O",
	opStore2O:        "Store2O",
	opStore4O:        "Store4O",
	opLoad1S:         "Load1S",
	opLoad2S:         "Load2S",
	opLoad4S:         "Load4S",
	opStore1V:        "Store1V",
	opStore2V:        "Store2V",
	opStore4V:        "Store4V",
	opStore1VO:       "Store1VO",
	opStore2VO:       "Store2VO",
	opStore4VO:       "Store4VO",
	opBrIf:           "BrIf",
	opBrLtU:          "BrLtU",
	opBrLeU:          "BrLeU",
	opBrLtS:          "BrLtS",
	opBrLeS:          "BrLeS",
	opBrLtUImm:       "BrLtUImm",
	opBrLeUImm:       "BrLeUImm",
	opBrLtSImm:       "BrLtSImm",
	opBrLeSImm:       "BrLeSImm",
	opLoad2SAdd:      "Load2SAdd",
	opAddImmLoopBack: "AddImmLoopBack",
	opStoreV2P:       "StoreV2P",
	opAndShrAdd:      "AndShrAdd",
	opLoopNext:       "LoopNext",
	opLoopBackUgt:    "LoopBackUgt",
	opLoad2AddLoop:   "Load2AddLoop",
}
