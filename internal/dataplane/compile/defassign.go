package compile

// Definitely-assigned analysis: a forward must-dataflow over the
// bytecode CFG proving that every register read is preceded by a write
// on ALL paths from entry. When the proof goes through, the VM skips
// the per-run register-file clear — the lowering produces def-before-use
// code by construction (expressions write their temporaries before use,
// loop counters are initialized by LoopInit), so the clear is pure
// per-packet overhead; the analysis turns that observation into a
// checked fact instead of an assumption. Stale values from a previous
// run still respect the VM's width invariant (regs[r] <= masks[r]:
// every writer masks), so skipping the clear is invisible exactly when
// no stale value can be read.

// regRefs appends the registers in reads and writes to the given
// slices. Field meanings are opcode-specific; this table must cover
// every opcode that names a register. The aux of O/S-form accesses is
// a mask index, not a live register, and is not included.
func regRefs(in *instr, reads, writes []int32) ([]int32, []int32) {
	switch in.op {
	case opConst, opPktLen, opMetaLoad, opLoopInit,
		opLoad1C, opLoad2C, opLoad4C:
		writes = append(writes, in.dst)
	case opAdd, opSub, opMul, opUDiv, opURem, opAnd, opOr, opXor,
		opShl, opLShr, opAShr, opEq, opNe, opUlt, opUle, opSlt, opSle,
		opMulAddImm, opLoad1S, opLoad2S, opLoad4S:
		reads = append(reads, in.a, in.b)
		writes = append(writes, in.dst)
	case opAddImm, opSubImm, opMulImm, opAndImm, opOrImm, opXorImm,
		opShlImm, opLShrImm, opAShrImm, opEqImm, opNeImm, opUltImm,
		opUleImm, opSltImm, opSleImm,
		opLoad1O, opLoad2O, opLoad4O:
		reads = append(reads, in.a)
		writes = append(writes, in.dst)
	case opNot, opMov, opTrunc, opSExt, opLoad1, opLoad2, opLoad4,
		opStateRead, opLookup:
		reads = append(reads, in.a)
		writes = append(writes, in.dst)
	case opSel:
		reads = append(reads, in.a, in.b, in.aux)
		writes = append(writes, in.dst)
	case opStore1, opStore2, opStore4, opStateWrite,
		opStore1O, opStore2O, opStore4O:
		reads = append(reads, in.a, in.b)
	case opStore1C, opStore2C, opStore4C:
		reads = append(reads, in.b)
	case opMetaStore, opAssert, opBr, opBrIf,
		opStore1V, opStore2V, opStore4V,
		opStore1VO, opStore2VO, opStore4VO,
		opBrNeImm, opBrEqImm, opBrUgeImm, opBrUgtImm, opBrSgeImm, opBrSgtImm,
		opBrLtUImm, opBrLeUImm, opBrLtSImm, opBrLeSImm:
		reads = append(reads, in.a)
	case opBrNe, opBrEq, opBrUge, opBrUgt, opBrSge, opBrSgt,
		opBrLtU, opBrLeU, opBrLtS, opBrLeS:
		reads = append(reads, in.a, in.b)
	case opLoopBack:
		reads = append(reads, in.a)
		writes = append(writes, in.a)
	case opLoad2SAdd:
		reads = append(reads, in.a, in.b, in.dst)
		writes = append(writes, in.dst)
	case opLoopNext:
		reads = append(reads, in.a, in.b, in.dst)
		writes = append(writes, in.dst, in.b)
	case opLoopBackUgt:
		reads = append(reads, in.a, in.b, in.dst)
		writes = append(writes, in.a)
	case opLoad2AddLoop:
		reads = append(reads, in.a, in.b, in.dst, in.aux, int32(in.imm>>24&0xff))
		writes = append(writes, in.dst, in.a, in.aux)
	case opAddImmLoopBack:
		reads = append(reads, in.a, in.b)
		writes = append(writes, in.dst, in.b)
	case opStoreV2P:
		reads = append(reads, in.a)
	case opAndShrAdd:
		reads = append(reads, in.a)
		writes = append(writes, in.dst)
	case opMetaStoreImm, opJump, opBreak, opEmit, opDrop, opCrashEnd:
		// no register operands
	}
	return reads, writes
}

// regSet is a bitset over register indices.
type regSet []uint64

func (s regSet) has(r int32) bool { return s[r>>6]&(1<<(uint(r)&63)) != 0 }
func (s regSet) add(r int32)      { s[r>>6] |= 1 << (uint(r) & 63) }

// intersectInto sets dst = dst ∩ src, reporting whether dst changed.
func (s regSet) intersectInto(src regSet) bool {
	changed := false
	for w := range s {
		if n := s[w] & src[w]; n != s[w] {
			s[w] = n
			changed = true
		}
	}
	return changed
}

// definitelyAssigned proves that on every path from entry, each
// register is written before it is read. in[i] is the set of registers
// definitely written at the entry of instruction i (meet = intersection
// over predecessors; unreached instructions stay at ⊤). The fixpoint is
// reached by sweeping until nothing changes — the CFG is tiny and loop
// nesting shallow, so a worklist would be overkill.
func definitelyAssigned(code []instr, numRegs int) bool {
	if numRegs == 0 {
		return true
	}
	words := (numRegs + 63) / 64
	sets := make([]uint64, (len(code)+1)*words)
	entry := make([]regSet, len(code)+1)
	for i := range entry {
		entry[i] = sets[i*words : (i+1)*words]
		if i > 0 {
			for w := range entry[i] {
				entry[i][w] = ^uint64(0) // ⊤: refined by flow below
			}
		}
	}
	var rbuf, wbuf [4]int32
	out := make(regSet, words)
	for changed := true; changed; {
		changed = false
		for i := range code {
			in := &code[i]
			copy(out, entry[i])
			_, writes := regRefs(in, rbuf[:0], wbuf[:0])
			for _, r := range writes {
				out.add(r)
			}
			flow := func(succ int32) {
				if entry[succ].intersectInto(out) {
					changed = true
				}
			}
			switch {
			case isTerminator(in.op):
				// no successors
			case in.op == opJump || in.op == opBreak:
				flow(in.aux)
			case isBranch(in.op):
				flow(in.aux)
				flow(int32(i) + 1)
			default:
				flow(int32(i) + 1)
			}
		}
	}
	for i := range code {
		reads, _ := regRefs(&code[i], rbuf[:0], wbuf[:0])
		for _, r := range reads {
			if !entry[i].has(r) {
				return false
			}
		}
	}
	return true
}
