// Package compile lowers verified ir.Programs into a compact flat
// bytecode and executes it on a GC-free register virtual machine — the
// dataplane's fast tier.
//
// The tree-walking interpreter in internal/ir is the reference
// semantics: it is what the symbolic engine models and what witnesses
// replay against. This package exists to make the same semantics fast
// enough to carry traffic, which it does by paying every name
// resolution and allocation at compile time instead of per packet:
//
//   - control flow (If/Loop/Break) flattens to conditional jumps over a
//     linear instruction array, so execution is a tight pc loop instead
//     of a recursive tree walk;
//   - registers become a flat []uint64 with per-register width masks
//     precomputed, so bitvector arithmetic is plain machine arithmetic
//     plus one AND;
//   - metadata slots resolve to integer indices in a pipeline-wide
//     packet.MetaLayout, so MetaLoad/MetaStore index a flat array
//     instead of hashing a string into a map;
//   - state stores and static tables pre-bind to their declarations, so
//     StateRead/StateWrite/StaticLookup never scan by name;
//   - crash messages with no dynamic parts are preformatted.
//
// The VM executes with zero per-packet heap allocations in the steady
// state: the register file is reused and cleared in place, packet
// frames come from the runner's pools, and only an actual crash
// allocates (its CrashInfo and message).
//
// # The equivalence obligation
//
// Because the verifier's guarantees are stated about the interpreted
// semantics, the compiled tier is only sound if it is observationally
// identical: same disposition, same output bytes, same metadata, same
// private state, same crash kind and message, and the same Steps count,
// for every packet. Step counts must match exactly — the paper's
// bounded-execution property is a statement about dynamic statement
// counts, and verify.E2-style bounds are checked against concrete
// executions of either tier. The lowering therefore preserves the
// interpreter's step accounting to the statement: each IR statement
// costs one step at its head instruction, a loop costs one step at
// entry plus one per back edge actually taken, and auxiliary jumps cost
// nothing. dataplane.Compare and the differential fuzzer machine-check
// this equivalence over millions of random packets (DESIGN.md §10).
package compile

import (
	"fmt"

	"vsd/internal/bv"
	"vsd/internal/ir"
	"vsd/internal/packet"
)

// op is a bytecode opcode. The set mirrors the IR statement forms, with
// control flow flattened to jumps and packet accesses specialized per
// byte count.
type op uint8

const (
	opConst op = iota
	// Binary ALU ops; operands and destination are already
	// width-masked, the destination mask is reapplied where the raw
	// 64-bit result can overflow the width.
	opAdd
	opSub
	opMul
	opUDiv // aux: preformatted div-by-zero message
	opURem // aux: preformatted div-by-zero message
	opAnd
	opOr
	opXor
	opShl  // imm: operand width in bits
	opLShr // imm: operand width in bits
	opAShr // imm: operand width in bits
	opEq
	opNe
	opUlt
	opUle
	opSlt // imm: 64 - operand width (sign-extension shift)
	opSle // imm: 64 - operand width
	opNot
	opMov   // zero-extension: value is unchanged, widths only grow
	opTrunc // mask to destination width
	opSExt  // imm: source width mask
	opSel   // dst = regs[a]==1 ? regs[b] : regs[aux]
	opLoad1
	opLoad2
	opLoad4
	opStore1
	opStore2
	opStore4
	opPktLen
	opMetaLoad  // aux: slot index
	opMetaStore // aux: slot index
	opStateRead // aux: store index
	opStateWrite
	opLookup // aux: table index; imm: value-width mask
	opAssert // aux: preformatted message
	// Control flow. Costs mirror the interpreter's step accounting:
	// opBr is the If statement (1 step), opBreak is the Break statement
	// (1 step), opJump and opCrashEnd are synthetic (0 steps),
	// opLoopInit is the Loop entry (1 step), opLoopBack costs 1 step
	// when the back edge is taken and 0 when the loop exits.
	opBr   // if regs[a] != 1: pc = aux
	opJump // pc = aux
	opBreak
	opLoopInit // regs[dst] = imm (the static bound)
	opLoopBack // regs[a]--; if regs[a] > 0: pc = aux
	opEmit     // aux: output port
	opDrop
	opCrashEnd // fell off the program end (unreachable for built programs)

	// Superinstructions, produced only by the peephole optimizer. Each
	// carries the summed step cost of the IR statements it replaces, so
	// fusion never changes the observable step count.
	//
	// ALU with an immediate second operand (from a const used once):
	opAddImm
	opSubImm
	opMulImm
	opAndImm
	opOrImm
	opXorImm
	opShlImm  // imm: shift amount, < operand width
	opLShrImm // imm: shift amount, < operand width
	opAShrImm // imm: shift amount, < operand width
	opEqImm
	opNeImm
	opUltImm
	opUleImm
	opSltImm // imm: sign-extended constant; aux: 64 - width
	opSleImm // imm: sign-extended constant; aux: 64 - width
	// Packet access at a constant offset:
	opLoad1C       // imm: byte offset
	opLoad2C       // imm: byte offset
	opLoad4C       // imm: byte offset
	opStore1C      // b: value reg; imm: byte offset
	opStore2C      // b: value reg; imm: byte offset
	opStore4C      // b: value reg; imm: byte offset
	opMetaStoreImm // aux: slot index; imm: value
	// Fused compare+branch, named for the branch-taken condition (the
	// negation of the fused compare, since opBr jumps when the condition
	// is false). Signed forms keep the sign shift in dst.
	opBrNe     // from Eq: jump when a != b
	opBrEq     // from Ne
	opBrUge    // from Ult
	opBrUgt    // from Ule
	opBrSge    // from Slt; dst: 64 - width
	opBrSgt    // from Sle; dst: 64 - width
	opBrNeImm  // from EqImm
	opBrEqImm  // from NeImm
	opBrUgeImm // from UltImm
	opBrUgtImm // from UleImm
	opBrSgeImm // from SltImm; imm sign-extended; dst: 64 - width
	opBrSgtImm // from SleImm; imm sign-extended; dst: 64 - width
	// Address-formation fusions. O forms fold a constant displacement
	// into the access; S forms also fold a scaled index. aux carries the
	// register index whose width mask bounds the folded address
	// arithmetic (the fused AddImm/MulAddImm destination).
	opMulAddImm // dst = (regs[b] + regs[a]*imm) & masks[dst]
	opLoad1O    // dst = data[(regs[a]+imm) & masks[aux]]
	opLoad2O
	opLoad4O
	opStore1O // data[(regs[a]+imm) & masks[aux]] = regs[b]
	opStore2O
	opStore4O
	opLoad1S // dst = data[(regs[b]+regs[a]*imm) & masks[aux]]
	opLoad2S
	opLoad4S
	// Constant-value stores. V forms store imm at a register offset; VO
	// forms add a constant displacement (in dst) to a base register.
	opStore1V // data[regs[a]] = imm
	opStore2V
	opStore4V
	opStore1VO // data[(regs[a]+dst) & masks[aux]] = imm
	opStore2VO
	opStore4VO
	// Positive fused branches: a Not folded into opBr flips the jump
	// condition back to the compare itself (opBrIf when the compare
	// cannot fuse). Signed forms keep the sign shift in dst.
	opBrIf     // jump when regs[a] == 1
	opBrLtU    // from Ult+Not+Br: jump when a < b
	opBrLeU    // from Ule
	opBrLtS    // from Slt; dst: 64 - width
	opBrLeS    // from Sle; dst: 64 - width
	opBrLtUImm // from UltImm
	opBrLeUImm // from UleImm
	opBrLtSImm // from SltImm; imm sign-extended; dst: 64 - width
	opBrLeSImm // from SleImm; imm sign-extended; dst: 64 - width

	// Loop-body superinstructions: the inner-loop shapes the lowering
	// produces for byte scans (the IP checksum) and header rewrites
	// (EtherEncap) fused one level further.
	opLoad2SAdd      // dst = (dst + load2(data, (regs[b]+regs[a]*imm) & masks[aux])) & masks[dst]
	opAddImmLoopBack // dst = (regs[a]+imm) & masks[dst]; regs[b]--; if regs[b] > 0: pc = aux
	opStoreV2P       // data[(regs[a]+dst) & masks[aux]] = imm>>8; data[(regs[a]+b) & masks[aux]] = imm; trail: second store's cost
	opAndShrAdd      // dst = ((regs[a] & imm) + (regs[a] >> aux)) & masks[dst]
	// Inverted-loop back edges (see invertLoops): the header's exit test
	// (BrUgt + Break) is replicated into the back edge, so iterations
	// dispatch one instruction instead of three. The header stays in
	// place for loop entry; imm bits 40..47 carry the test's step cost
	// and bits 48..55 the break's, charged exactly when each replica
	// conceptually executes.
	opLoopNext    // dst += imm&(2^40-1); b--; if b>0: test regs[a] > regs[dst] -> aux or fall through
	opLoopBackUgt // a--; if a>0: test regs[b] > regs[dst] -> aux or fall through
	// Whole-loop superinstruction (see fuseChkLoop): a counted
	// accumulate loop whose body is a single opLoad2SAdd runs entirely
	// inside one dispatch. dst = accumulator, a = index, b = base,
	// aux = loop counter; imm packs (8 bits each, low to high) scale,
	// index increment, address mask index, limit register, and — in
	// bits 40..63 — the continue/fail/latch step costs.
	opLoad2AddLoop

	// opCount is the number of opcodes; it sizes the profiler's
	// per-opcode arrays and must stay last.
	opCount
)

// instr is one bytecode instruction. dst/a/b name registers, aux is an
// opcode-specific small operand (jump target, slot/store/table/message
// index, port), imm an opcode-specific 64-bit operand. cost is the
// number of IR statements this instruction accounts for in the step
// count: 1 for plain lowered statements, 0 for synthetic jumps, the sum
// for fused superinstructions. trail is the share of cost contributed
// by fused statements that sit AFTER the instruction's fault point
// (width-normalizing copies and accumulates folded into a load): a
// crash must not charge them, because the interpreter never reached
// them — the crashing statement itself is the last one counted.
type instr struct {
	op    op
	cost  uint8
	trail uint8
	dst   int32
	a, b  int32
	aux   int32
	imm   uint64
}

// stateInfo is a StateDecl with its runtime-relevant fields pre-masked.
type stateInfo struct {
	decl ir.StateDecl
	defv uint64 // Default masked to ValW
}

// Program is a compiled element body, immutable and shareable across
// VMs (instances with content-identical ir.Programs can share one).
type Program struct {
	src     *ir.Program
	code    []instr
	masks   []uint64 // per-register width mask, loop counters included
	numRegs int
	// clearRegs is set when the definitely-assigned proof failed, so
	// Run must zero the register file to stay deterministic across
	// packets; the lowering's own output always proves clean.
	clearRegs bool
	states    []stateInfo
	tables    []*ir.StaticTable
	msgs      []string
}

// Source returns the ir.Program this was compiled from.
func (p *Program) Source() *ir.Program { return p.src }

// NumInstrs returns the flat instruction count, for reports.
func (p *Program) NumInstrs() int { return len(p.code) }

// BuildLayout merges the metadata slot declarations of the given
// programs into one pipeline-wide layout. It fails if two elements
// declare the same slot at different widths — such a pipeline has no
// consistent flat representation (and the element library never does
// this; packet.MetaWidth fixes the well-known slots).
func BuildLayout(progs []*ir.Program) (*packet.MetaLayout, error) {
	slots := map[string]bv.Width{}
	for _, p := range progs {
		for name, w := range p.MetaSlots {
			if got, ok := slots[name]; ok && got != w {
				return nil, fmt.Errorf("compile: metadata slot %q declared at widths %s and %s", name, got, w)
			}
			slots[name] = w
		}
	}
	return packet.NewMetaLayout(slots)
}

// Compile lowers p to bytecode against the pipeline-wide metadata
// layout. Every slot p references must be present in lay (BuildLayout
// over the pipeline's programs guarantees this).
func Compile(p *ir.Program, lay *packet.MetaLayout) (*Program, error) {
	c := &compiler{p: p, lay: lay}
	c.masks = make([]uint64, len(p.RegWidths), len(p.RegWidths)+p.NumLoops())
	for i, w := range p.RegWidths {
		c.masks[i] = w.Mask()
	}
	for _, s := range p.States {
		c.states = append(c.states, stateInfo{decl: s, defv: s.Default & s.ValW.Mask()})
	}
	c.tables = p.Tables
	c.block(p.Body)
	// Build guarantees every path terminates; the guard keeps VM
	// dispatch total and mirrors the interpreter's fell-off-the-end
	// crash for hand-assembled programs.
	c.emit(instr{op: opCrashEnd, aux: c.msg("fell off program end")})
	if c.err != nil {
		return nil, c.err
	}
	c.code = optimize(c.code, c.masks)
	return &Program{
		src:       p,
		code:      c.code,
		masks:     c.masks,
		numRegs:   len(c.masks),
		clearRegs: !definitelyAssigned(c.code, len(c.masks)),
		states:    c.states,
		tables:    c.tables,
		msgs:      c.msgs,
	}, nil
}

// compiler is one lowering pass.
type compiler struct {
	p      *ir.Program
	lay    *packet.MetaLayout
	code   []instr
	masks  []uint64
	states []stateInfo
	tables []*ir.StaticTable
	msgs   []string
	msgIdx map[string]int32
	// breaks collects the opBreak instruction indices of the innermost
	// open loop, patched to the loop end when the loop closes.
	breaks [][]int
	err    error
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("compile: "+format, args...)
	}
}

// emit appends an instruction and returns its index (for patching).
// Synthetic jumps cost no step; everything else is one IR statement.
func (c *compiler) emit(in instr) int {
	if in.op != opJump && in.op != opCrashEnd {
		in.cost = 1
	}
	c.code = append(c.code, in)
	return len(c.code) - 1
}

// patch sets the jump target of the instruction at idx.
func (c *compiler) patch(idx, target int) { c.code[idx].aux = int32(target) }

// msg interns a preformatted crash message.
func (c *compiler) msg(s string) int32 {
	if c.msgIdx == nil {
		c.msgIdx = map[string]int32{}
	}
	if i, ok := c.msgIdx[s]; ok {
		return i
	}
	i := int32(len(c.msgs))
	c.msgs = append(c.msgs, s)
	c.msgIdx[s] = i
	return i
}

// loopCounter allocates a hidden 64-bit register for a loop's remaining
// iteration count.
func (c *compiler) loopCounter() int32 {
	c.masks = append(c.masks, ^uint64(0))
	return int32(len(c.masks) - 1)
}

func (c *compiler) width(r ir.Reg) bv.Width { return c.p.RegWidths[r] }

func (c *compiler) block(body []ir.Stmt) {
	for _, s := range body {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s ir.Stmt) {
	switch st := s.(type) {
	case ir.ConstStmt:
		c.emit(instr{op: opConst, dst: int32(st.Dst), imm: st.Val.U})
	case ir.BinStmt:
		c.bin(st)
	case ir.NotStmt:
		c.emit(instr{op: opNot, dst: int32(st.Dst), a: int32(st.A)})
	case ir.CastStmt:
		switch st.Kind {
		case ir.ZExt:
			c.emit(instr{op: opMov, dst: int32(st.Dst), a: int32(st.A)})
		case ir.SExt:
			c.emit(instr{op: opSExt, dst: int32(st.Dst), a: int32(st.A), imm: c.width(st.A).Mask()})
		case ir.Trunc:
			c.emit(instr{op: opTrunc, dst: int32(st.Dst), a: int32(st.A)})
		}
	case ir.SelStmt:
		c.emit(instr{op: opSel, dst: int32(st.Dst), a: int32(st.Cond), b: int32(st.A), aux: int32(st.B)})
	case ir.LoadPktStmt:
		var o op
		switch st.N {
		case 1:
			o = opLoad1
		case 2:
			o = opLoad2
		default:
			o = opLoad4
		}
		c.emit(instr{op: o, dst: int32(st.Dst), a: int32(st.Off)})
	case ir.StorePktStmt:
		var o op
		switch st.N {
		case 1:
			o = opStore1
		case 2:
			o = opStore2
		default:
			o = opStore4
		}
		c.emit(instr{op: o, a: int32(st.Off), b: int32(st.Src)})
	case ir.PktLenStmt:
		c.emit(instr{op: opPktLen, dst: int32(st.Dst)})
	case ir.MetaLoadStmt:
		slot, ok := c.lay.Index(st.Slot)
		if !ok {
			c.fail("%s: metadata slot %q not in the pipeline layout", c.p.Name, st.Slot)
			return
		}
		c.emit(instr{op: opMetaLoad, dst: int32(st.Dst), aux: int32(slot)})
	case ir.MetaStoreStmt:
		slot, ok := c.lay.Index(st.Slot)
		if !ok {
			c.fail("%s: metadata slot %q not in the pipeline layout", c.p.Name, st.Slot)
			return
		}
		c.emit(instr{op: opMetaStore, a: int32(st.Src), aux: int32(slot)})
	case ir.StateReadStmt:
		idx := c.p.StateIndex(st.Store)
		if idx < 0 {
			c.fail("%s: undeclared state store %q", c.p.Name, st.Store)
			return
		}
		c.emit(instr{op: opStateRead, dst: int32(st.Dst), a: int32(st.Key), aux: int32(idx)})
	case ir.StateWriteStmt:
		idx := c.p.StateIndex(st.Store)
		if idx < 0 {
			c.fail("%s: undeclared state store %q", c.p.Name, st.Store)
			return
		}
		c.emit(instr{op: opStateWrite, a: int32(st.Key), b: int32(st.Val), aux: int32(idx)})
	case ir.StaticLookupStmt:
		idx := c.p.TableIndex(st.Table)
		if idx < 0 {
			c.fail("%s: undeclared table %q", c.p.Name, st.Table)
			return
		}
		c.emit(instr{op: opLookup, dst: int32(st.Dst), a: int32(st.Key),
			aux: int32(idx), imm: c.p.Tables[idx].ValW.Mask()})
	case ir.AssertStmt:
		c.emit(instr{op: opAssert, a: int32(st.Cond),
			aux: c.msg(fmt.Sprintf("%s in %s", st.Msg, c.p.Name))})
	case ir.IfStmt:
		br := c.emit(instr{op: opBr, a: int32(st.Cond)})
		c.block(st.Then)
		if len(st.Else) > 0 {
			j := c.emit(instr{op: opJump})
			c.patch(br, len(c.code))
			c.block(st.Else)
			c.patch(j, len(c.code))
		} else {
			c.patch(br, len(c.code))
		}
	case ir.LoopStmt:
		ctr := c.loopCounter()
		c.emit(instr{op: opLoopInit, dst: ctr, imm: uint64(st.Bound)})
		top := len(c.code)
		c.breaks = append(c.breaks, nil)
		c.block(st.Body)
		c.emit(instr{op: opLoopBack, a: ctr, aux: int32(top)})
		end := len(c.code)
		for _, idx := range c.breaks[len(c.breaks)-1] {
			c.patch(idx, end)
		}
		c.breaks = c.breaks[:len(c.breaks)-1]
	case ir.BreakStmt:
		if len(c.breaks) == 0 {
			c.fail("%s: break outside loop", c.p.Name)
			return
		}
		idx := c.emit(instr{op: opBreak})
		c.breaks[len(c.breaks)-1] = append(c.breaks[len(c.breaks)-1], idx)
	case ir.EmitStmt:
		c.emit(instr{op: opEmit, aux: int32(st.Port)})
	case ir.DropStmt:
		c.emit(instr{op: opDrop})
	default:
		c.fail("%s: unknown statement %T", c.p.Name, s)
	}
}

func (c *compiler) bin(st ir.BinStmt) {
	in := instr{dst: int32(st.Dst), a: int32(st.A), b: int32(st.B)}
	w := c.width(st.A)
	switch st.Op {
	case ir.Add:
		in.op = opAdd
	case ir.Sub:
		in.op = opSub
	case ir.Mul:
		in.op = opMul
	case ir.UDiv:
		in.op = opUDiv
		in.aux = c.msg(fmt.Sprintf("%s by zero in %s", st.Op, c.p.Name))
	case ir.URem:
		in.op = opURem
		in.aux = c.msg(fmt.Sprintf("%s by zero in %s", st.Op, c.p.Name))
	case ir.And:
		in.op = opAnd
	case ir.Or:
		in.op = opOr
	case ir.Xor:
		in.op = opXor
	case ir.Shl:
		in.op = opShl
		in.imm = uint64(w)
	case ir.LShr:
		in.op = opLShr
		in.imm = uint64(w)
	case ir.AShr:
		in.op = opAShr
		in.imm = uint64(w)
	case ir.Eq:
		in.op = opEq
	case ir.Ne:
		in.op = opNe
	case ir.Ult:
		in.op = opUlt
	case ir.Ule:
		in.op = opUle
	case ir.Slt:
		in.op = opSlt
		in.imm = uint64(64 - w)
	case ir.Sle:
		in.op = opSle
		in.imm = uint64(64 - w)
	default:
		c.fail("%s: unknown binop %v", c.p.Name, st.Op)
		return
	}
	c.emit(in)
}
