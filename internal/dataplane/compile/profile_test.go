package compile

import (
	"strings"
	"testing"

	"vsd/internal/ir"
	"vsd/internal/packet"
)

// TestOpNamesComplete pins the name table to the enum: every opcode
// must have a mnemonic, so a new opcode cannot land without one.
func TestOpNamesComplete(t *testing.T) {
	for i := 0; i < int(opCount); i++ {
		if opNames[i] == "" {
			t.Errorf("opcode %d has no name in opNames", i)
		}
	}
	if OpName(-1) != "?" || OpName(int(opCount)) != "?" {
		t.Errorf("OpName out of range: want %q", "?")
	}
	if NumOps() != int(opCount) {
		t.Errorf("NumOps() = %d, want %d", NumOps(), opCount)
	}
}

// profiledRun compiles p, installs a fresh profile, and runs every
// input, returning the profile and the summed Outcome.Steps.
func profiledRun(t *testing.T, p *ir.Program, inputs []pin) (*OpProfile, int64, int64) {
	t.Helper()
	lay, err := BuildLayout([]*ir.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(p, lay)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(cp)
	prof := &OpProfile{}
	vm.SetProfile(prof)
	es := NewElemState(cp)
	fr := NewFrame(lay.NumSlots())
	var steps, crashes int64
	for _, in := range inputs {
		fr.ResetFrom(lay, &packet.Buffer{Data: append([]byte(nil), in.data...), Meta: in.meta})
		out := vm.Run(fr, es)
		steps += out.Steps
		if out.Disposition == ir.Crashed {
			crashes++
		}
	}
	return prof, steps, crashes
}

// TestOpProfileAccounting checks the profile's two invariants against
// real executions: attributed step cost equals the interpreter-visible
// step count on crash-free runs (and never undercounts when crashes
// refund trailing cost), and every counted opcode has a name.
func TestOpProfileAccounting(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog *ir.Program
		in   []pin
	}{
		{"checksum", checksumProg(), fuzzInputs(11, 150, nil)},
		{"arith", arithProg(), fuzzInputs(12, 100, nil)},
		{"state", stateProg(), fuzzInputs(13, 150, nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prof, steps, crashes := profiledRun(t, tc.prog, tc.in)
			if prof.Dispatches() == 0 {
				t.Fatal("profile recorded no dispatches")
			}
			if crashes == 0 && prof.Steps() != steps {
				t.Errorf("profile steps = %d, outcomes summed to %d", prof.Steps(), steps)
			}
			if prof.Steps() > steps {
				t.Errorf("profile steps %d exceed outcome steps %d", prof.Steps(), steps)
			}
			for i := range prof.Counts {
				if prof.Counts[i] > 0 && OpName(i) == "?" {
					t.Errorf("dispatched opcode %d has no name", i)
				}
			}
		})
	}
}

// TestOpProfileMergeAndFormat checks Merge is additive and Format
// renders named rows plus a total line.
func TestOpProfileMergeAndFormat(t *testing.T) {
	in := fuzzInputs(21, 80, nil)
	a, _, _ := profiledRun(t, checksumProg(), in[:40])
	b, _, _ := profiledRun(t, checksumProg(), in[40:])
	whole, _, _ := profiledRun(t, checksumProg(), in)
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Dispatches() != whole.Dispatches() || a.Steps() != whole.Steps() {
		t.Fatalf("merge: got %d/%d dispatches/steps, want %d/%d",
			a.Dispatches(), a.Steps(), whole.Dispatches(), whole.Steps())
	}
	for i := range a.Counts {
		if a.Counts[i] != whole.Counts[i] || a.Cost[i] != whole.Cost[i] {
			t.Fatalf("merge: opcode %s diverges", OpName(i))
		}
	}
	out := a.Format(5)
	if !strings.Contains(out, "opcode") || !strings.Contains(out, "total") {
		t.Fatalf("Format missing header/total:\n%s", out)
	}
	// 5 rows + header + total.
	if n := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1; n > 7 {
		t.Fatalf("Format(5) rendered %d lines:\n%s", n, out)
	}
}
