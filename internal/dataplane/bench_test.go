package dataplane

import (
	"testing"

	"vsd/internal/packet"
	"vsd/internal/workload"
)

// benchTrace is a fixed working set shared by the forwarding
// benchmarks; ipv4-only so every packet takes the full router path.
func benchTrace(n int) []*packet.Buffer {
	g := workload.New(workload.Spec{Seed: 5})
	pkts := make([]*packet.Buffer, n)
	for i := range pkts {
		pkts[i] = g.IPv4()
	}
	return pkts
}

func BenchmarkInterpreterProcess(b *testing.B) {
	p, err := routerPipeline()
	if err != nil {
		b.Fatal(err)
	}
	r := NewRunner(p)
	pkts := benchTrace(1024)
	r.RunTrace(pkts) // warmup: size the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.scratch.CopyFrom(pkts[i%len(pkts)])
		r.Process(r.scratch)
	}
}

func BenchmarkCompiledProcess(b *testing.B) {
	p, err := routerPipeline()
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewCompiled(p)
	if err != nil {
		b.Fatal(err)
	}
	pkts := benchTrace(1024)
	scratch := packet.NewBuffer(nil)
	for _, pkt := range pkts { // warmup
		scratch.CopyFrom(pkt)
		r.Process(scratch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(pkts[i%len(pkts)])
		r.Process(scratch)
	}
}

func BenchmarkCompiledBatch(b *testing.B) {
	p, err := routerPipeline()
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewCompiled(p)
	if err != nil {
		b.Fatal(err)
	}
	pkts := benchTrace(1024)
	r.RunTrace(pkts) // warmup
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pkts) {
		r.RunTrace(pkts)
	}
}
