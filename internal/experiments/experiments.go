// Package experiments regenerates every result of the paper's
// evaluation ("Preliminary Results", the two figures, and the §3
// path-count analysis) as structured rows. The root bench_test.go and
// cmd/vsdbench both drive these functions; EXPERIMENTS.md records the
// measured outcomes against the paper's.
package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/elements"
	"vsd/internal/faultinject"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/smt"
	"vsd/internal/specs"
	"vsd/internal/symbex"
	"vsd/internal/telemetry"
	"vsd/internal/verify"
	"vsd/internal/workload"
)

// Package-level telemetry, threaded into every verifier the experiment
// drivers construct. The experiments build their verify.Options
// internally (each cell wants a fresh verifier), so callers that want
// traces or metrics install them once here instead of plumbing them
// through every experiment signature.
var (
	telTrace   *telemetry.Tracer
	telMetrics *telemetry.Registry
)

// SetTelemetry installs a tracer and/or metrics registry (either may be
// nil) applied to every verifier subsequently constructed by the
// experiment drivers. Not safe to call concurrently with a running
// experiment.
func SetTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	telTrace, telMetrics = tr, reg
}

// telOpts applies the installed telemetry to one options value.
func telOpts(o verify.Options) verify.Options {
	o.Trace, o.Metrics = telTrace, telMetrics
	return o
}

// IPRouterConfig is the evaluation pipeline: the default Click IP-router
// element set of the paper, in our Click dialect. The checksum option is
// a knob because header checksumming is the single most expensive
// constraint for the solver.
func IPRouterConfig(checksum bool) string {
	chk := "CheckIPHeader(NOCHECKSUM)"
	if checksum {
		chk = "CheckIPHeader"
	}
	return fmt.Sprintf(`
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: %s;
		opt :: IPOptions;
		rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
		ttl :: DecIPTTL;
		encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
		bad :: Discard;

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> opt;
		chk [1] -> bad;
		opt [0] -> rt;
		opt [1] -> bad;
		rt [0] -> ttl;
		rt [1] -> ttl;
		rt [2] -> ttl;
		ttl [0] -> encap;
		ttl [1] -> Discard;
	`, chk)
}

// MustParse parses a configuration with the default registry.
func MustParse(src string) *click.Pipeline {
	p, err := click.Parse(elements.Default(), src)
	if err != nil {
		panic(err)
	}
	return p
}

// E1Row is one pipeline's crash-freedom verification result.
type E1Row struct {
	Pipeline  string
	Verified  bool
	Suspects  int
	Composed  int
	Infeasib  int
	Duration  time.Duration
	MaxLength uint64
	// Solver carries the solver-side counters for the row, including the
	// incremental-session metrics (assumption solves, reused clauses).
	Solver smt.Stats
	// SolveTimes summarizes the per-query solve-time distribution
	// (count, min/max, p50/p95/p99 in nanoseconds) — the BENCH tail-
	// regression signal a single wall-time number hides.
	SolveTimes telemetry.HistSummary
}

// E1CrashFreedom verifies crash freedom for pipelines assembled from the
// IP-router element set, reproducing "any pipeline that consists of
// these elements will not crash for any input". Prefixes of the full
// pipeline stand in for "pipelines that combine elements". keep, when
// non-nil, selects which pipeline cells run (by cell name, e.g.
// "full-router") — the vsdbench -bench filter, so one cell can be
// re-measured without paying for the whole table.
func E1CrashFreedom(maxLen uint64, parallelism int, keep func(cell string) bool) ([]E1Row, error) {
	configs := []struct{ name, src string }{
		{"classifier-only", `
			src :: InfiniteSource;
			cls :: Classifier(12/0800, -);
			src -> cls; cls[1] -> Discard;`},
		{"strip+check", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[1] -> Discard;`},
		{"check+ttl", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[0] -> ttl :: DecIPTTL; chk[1] -> Discard;
			ttl[1] -> Discard;`},
		{"check+options", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[0] -> opt :: IPOptions; chk[1] -> Discard;
			opt[1] -> Discard;`},
		{"check+route+encap", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[0] -> rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1); chk[1] -> Discard;
			rt[0] -> e :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);
			rt[1] -> e;`},
		{"full-router", IPRouterConfig(false)},
	}
	var rows []E1Row
	for _, c := range configs {
		if keep != nil && !keep(c.name) {
			continue
		}
		p := MustParse(c.src)
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.CrashFreedom(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		st := v.Stats()
		rows = append(rows, E1Row{
			Pipeline:   c.name,
			Verified:   rep.Verified,
			Suspects:   st.Suspects,
			Composed:   st.ComposedPaths,
			Infeasib:   st.ComposedInfeasible,
			Duration:   time.Since(start),
			MaxLength:  maxLen,
			Solver:     st.Solver,
			SolveTimes: st.SolveTimes,
		})
	}
	return rows, nil
}

// F1Row is one functional-spec verification outcome (DESIGN.md §6).
type F1Row struct {
	Spec        string
	Pipeline    string
	Verified    bool
	Expected    bool // the verdict the scenario is designed to produce
	Obligations int  // postconditions that reached the solver
	Proved      int  // obligations discharged as valid
	Trivial     int  // postconditions that folded to true syntactically
	Witnesses   int
	Duration    time.Duration
	Solver      smt.Stats
	SolveTimes  telemetry.HistSummary
}

// funcRouterConfig is the IP-router pipeline without IPOptions (the
// options loop dominates solver time and is exercised by E1/A2; the
// functional specs constrain the TTL/checksum/routing elements).
func funcRouterConfig(ttlClass string) string {
	return fmt.Sprintf(`
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		rt :: LookupIPRoute(10.0.0.0/8 0, 192.168.0.0/16 1, 0.0.0.0/0 2);
		ttl :: %s;
		encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> rt;
		chk [1] -> Discard;
		rt [0] -> ttl;
		rt [1] -> ttl;
		rt [2] -> ttl;
		ttl [0] -> encap;
		ttl [1] -> Discard;
	`, ttlClass)
}

// filterRules is the rule set shared by the filter pipeline and its spec.
const filterRules = `allow proto udp dport 53, deny dst 10.0.0.0/8, allow proto tcp`

// F1FunctionalSpecs verifies the functional-property library over the
// example pipelines: one row per spec family, plus the
// deliberately-broken BuggyDecIPTTL scenario whose TTL spec must FAIL
// with a concrete input/output witness. Expected records each
// scenario's designed verdict; a mismatch is returned as an error so
// regressions fail the bench harness loudly, not just a footnote.
func F1FunctionalSpecs(maxLen uint64, parallelism int) ([]F1Row, error) {
	filterPipeline := `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		flt :: IPFilter(` + filterRules + `);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> flt;
		chk [1] -> Discard;
	`
	natPipeline := `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		strip :: Strip(14);
		chk :: CheckIPHeader(NOCHECKSUM);
		nat :: IPRewriter(SNAT 100.64.0.1);
		encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

		src -> cls;
		cls [0] -> strip -> chk;
		cls [1] -> Discard;
		chk [0] -> nat -> encap;
		chk [1] -> Discard;
	`
	dropIff, err := specs.DropIffFilter(filterRules, 14, "flt")
	if err != nil {
		return nil, err
	}
	natSpec, err := specs.NATRewrite("SNAT 100.64.0.1", 14, "nat")
	if err != nil {
		return nil, err
	}
	cases := []struct {
		pipeline string
		src      string
		spec     verify.FuncSpec
		expected bool
	}{
		{"router", funcRouterConfig("DecIPTTL"), specs.TTLDecrement(14, "encap"), true},
		{"router", funcRouterConfig("DecIPTTL"), specs.ChecksumPatched(14, "encap"), true},
		{"router", funcRouterConfig("DecIPTTL"), specs.StripRoundTrip(26, maxLen, "encap"), true},
		{"filter", filterPipeline, dropIff, true},
		{"nat", natPipeline, natSpec, true},
		{"buggy-router", funcRouterConfig("BuggyDecIPTTL"), specs.TTLDecrement(14, "encap"), false},
		{"buggy-router", funcRouterConfig("BuggyDecIPTTL"), specs.ChecksumPatched(14, "encap"), true},
	}
	var rows []F1Row
	for _, c := range cases {
		p := MustParse(c.src)
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.VerifyFunc(p, c.spec)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", c.spec.Name, c.pipeline, err)
		}
		if rep.Verified != c.expected {
			return nil, fmt.Errorf("%s/%s: verified=%v, designed verdict %v",
				c.spec.Name, c.pipeline, rep.Verified, c.expected)
		}
		rows = append(rows, F1Row{
			Spec:        rep.Spec,
			Pipeline:    c.pipeline,
			Verified:    rep.Verified,
			Expected:    c.expected,
			Obligations: rep.Obligations,
			Proved:      rep.Proved,
			Trivial:     rep.Trivial,
			Witnesses:   len(rep.Witnesses),
			Duration:    time.Since(start),
			Solver:      v.Stats().Solver,
			SolveTimes:  v.Stats().SolveTimes,
		})
	}
	return rows, nil
}

// E2Result is the instruction-bound experiment outcome.
type E2Result struct {
	MaxSteps     int64
	StaticBound  int64
	WitnessLen   int
	WitnessSteps int64 // concrete statements executed by the witness
	Exact        bool
	Duration     time.Duration
}

// E2InstructionBound reproduces "the longest pipeline executes up to
// about 3600 instructions per packet, and we also identified the packet
// that yields this maximum result".
func E2InstructionBound(maxLen uint64, parallelism int) (*E2Result, error) {
	p := MustParse(IPRouterConfig(false))
	v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
	start := time.Now()
	rep, err := v.BoundedInstructions(p)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	inlined, err := click.Inline(p)
	if err != nil {
		return nil, err
	}
	res := &E2Result{
		MaxSteps:    rep.MaxSteps,
		StaticBound: inlined.MaxStmts(),
		WitnessLen:  len(rep.Witness.Packet),
		Exact:       !v.Stats().SymbexStats.Merged,
		Duration:    dur,
	}
	// Replay the witness concretely — on both execution tiers, which
	// must agree on the exact statement count (the bound is quoted per
	// packet regardless of how the operator runs the pipeline).
	if rep.Witness.Packet != nil {
		runner := dataplane.NewRunner(p)
		out := runner.Process(packet.NewBuffer(append([]byte{}, rep.Witness.Packet...)))
		res.WitnessSteps = out.Steps
		comp, err := dataplane.NewCompiled(p)
		if err != nil {
			return nil, err
		}
		cout := comp.Process(packet.NewBuffer(append([]byte{}, rep.Witness.Packet...)))
		if cout.Steps != out.Steps || cout.Disposition != out.Disposition {
			return nil, fmt.Errorf("e2: witness replay diverged across tiers: interpreter (%s, %d steps), compiled (%s, %d steps)",
				out.Disposition, out.Steps, cout.Disposition, cout.Steps)
		}
	}
	return res, nil
}

// E3Row compares compositional verification against the monolithic
// baseline for one pipeline length.
type E3Row struct {
	Elements     int
	ComposedTime time.Duration
	ComposedOK   bool
	MonoTime     time.Duration
	MonoPaths    int
	MonoDone     bool
	Speedup      float64
	// Solver carries the compositional side's solver counters.
	Solver smt.Stats
}

// E3ComposedVsMonolithic sweeps chains of synthetic n-branch elements,
// reproducing the shape of "our verification time was about 18 minutes;
// [the monolithic baseline] did not complete within 12 hours": the
// compositional time grows roughly linearly in pipeline length while
// the baseline grows exponentially and hits its budget.
func E3ComposedVsMonolithic(branches, maxElems int, monoBudget int, parallelism int) ([]E3Row, error) {
	var rows []E3Row
	for k := 1; k <= maxElems; k++ {
		pipe, err := syntheticChain(k, branches)
		if err != nil {
			return nil, err
		}
		v := verify.New(telOpts(verify.Options{MinLen: 14, MaxLen: 64, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.CrashFreedom(pipe)
		if err != nil {
			return nil, err
		}
		composedTime := time.Since(start)

		start = time.Now()
		mono, err := verify.Monolithic(pipe, verify.Options{
			MinLen: 14, MaxLen: 64,
			Symbex: symbex.Options{MaxSegments: monoBudget},
		})
		if err != nil {
			return nil, err
		}
		monoTime := time.Since(start)
		row := E3Row{
			Elements:     k,
			ComposedTime: composedTime,
			ComposedOK:   rep.Verified,
			MonoTime:     monoTime,
			MonoPaths:    mono.Paths,
			MonoDone:     mono.Completed,
			Solver:       v.Stats().Solver,
		}
		if composedTime > 0 {
			row.Speedup = float64(monoTime) / float64(composedTime)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// syntheticChain builds a chain of k elements, each with `branches`
// data-dependent branches on its own packet byte — the k·2^n vs 2^(k·n)
// setup of the paper's §3 analysis.
func syntheticChain(k, branches int) (*click.Pipeline, error) {
	var insts []*click.Instance
	var conns []click.Connection
	srcProg, err := elements.InfiniteSource("")
	if err != nil {
		return nil, err
	}
	insts = append(insts, click.NewInstance("src", "InfiniteSource", "", srcProg))
	for i := 0; i < k; i++ {
		prog := branchyElement(fmt.Sprintf("B%d", i), i, branches)
		insts = append(insts, click.NewInstance(fmt.Sprintf("b%d", i), "Branchy", fmt.Sprintf("%d/%d", i, branches), prog))
		conns = append(conns, click.Connection{From: i, FromPort: 0, To: i + 1})
	}
	return click.Build(insts, conns)
}

// branchyElement reads packet byte `pos` and accumulates `branches`
// independent comparisons, yielding 2^branches feasible paths in
// isolation.
func branchyElement(name string, pos, branches int) *ir.Program {
	b := ir.NewBuilder(name, 1, 1)
	v := b.LoadPktC(uint64(pos), 1)
	acc := b.Mov(b.ConstU(8, 0))
	for j := 0; j < branches; j++ {
		cmp := b.BinC(ir.Ult, v, uint64((j+1)*(256/(branches+1))))
		b.If(cmp, func() {
			b.SetReg(acc, b.BinC(ir.Add, acc, 1))
		}, nil)
	}
	b.MetaStore("acc"+name, acc)
	b.Emit(0)
	return b.MustBuild()
}

// CorpusEntry is one submission of the built-in admission corpus.
type CorpusEntry struct {
	Name string
	Src  string
}

// Corpus returns the example admission corpus: the same four pipelines
// as examples/corpus/*.click (kept in sync by TestCorpusMatchesFiles in
// the root package). It is the workload of the B1 experiment and the
// CI warm-store check.
func Corpus() []CorpusEntry {
	return []CorpusEntry{
		{"router.click", IPRouterConfig(false)},
		{"filter.click", `
			src :: InfiniteSource;
			cls :: Classifier(12/0800, -);
			strip :: Strip(14);
			chk :: CheckIPHeader(NOCHECKSUM);
			flt :: IPFilter(` + filterRules + `);

			src -> cls;
			cls [0] -> strip -> chk;
			cls [1] -> Discard;
			chk [0] -> flt;
			chk [1] -> Discard;
		`},
		{"nat.click", `
			src :: InfiniteSource;
			cls :: Classifier(12/0800, -);
			strip :: Strip(14);
			chk :: CheckIPHeader(NOCHECKSUM);
			nat :: IPRewriter(SNAT 100.64.0.1);
			encap :: EtherEncap(0800, 02:00:00:00:00:01, 02:00:00:00:00:02);

			src -> cls;
			cls [0] -> strip -> chk;
			cls [1] -> Discard;
			chk [0] -> nat -> encap;
			chk [1] -> Discard;
		`},
		{"probe.click", `
			src :: InfiniteSource;
			cls :: Classifier(12/0800, -);
			strip :: Strip(14);
			chk :: CheckIPHeader(NOCHECKSUM);
			probe :: FixedReader(60);
			rt :: LookupIPRoute(10.0.0.0/8 0, 0.0.0.0/0 1);

			src -> cls;
			cls [0] -> strip -> chk;
			cls [1] -> Discard;
			chk [0] -> probe -> rt;
			chk [1] -> Discard;
			rt [1] -> Discard;
		`},
	}
}

// B1Row is one batch-admission pass over the example corpus.
type B1Row struct {
	Run         string // "cold" (empty store) or "warm" (store populated by cold)
	Pipelines   int
	Certified   int
	EngineRuns  int // Step-1 symbolic-engine runs
	StoreHits   int
	StoreMisses int
	CacheHits   int // in-memory summary cache hits
	StoreFiles  int // artifacts on disk after the pass
	Duration    time.Duration
	Solver      smt.Stats
}

// B1BatchStore measures the summary store end to end (DESIGN.md §7):
// the example corpus is batch-verified twice against one on-disk store
// directory — first cold (every summary computed by the symbolic
// engine and persisted), then warm in a fresh Verifier (every summary
// loaded). The warm pass must perform zero engine runs and produce
// byte-identical verdicts, enforced here so the bench harness fails
// loudly on a store regression; the CI job store-roundtrip asserts the
// same property through the vsdverify -batch CLI.
func B1BatchStore(maxLen uint64, parallelism int, storeDir string) ([]B1Row, error) {
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "vsd-store-b1-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		storeDir = dir
	}
	store, err := verify.NewDiskStore(storeDir)
	if err != nil {
		return nil, err
	}
	var items []verify.BatchItem
	for _, c := range Corpus() {
		items = append(items, verify.BatchItem{Name: c.Name, Pipeline: MustParse(c.Src)})
	}
	var rows []B1Row
	var coldVerdicts []verify.BatchVerdict
	for _, run := range []string{"cold", "warm"} {
		verdicts, st, dur := verify.Batch(items, telOpts(verify.Options{
			MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism, Store: store,
		}))
		certified := 0
		for _, vd := range verdicts {
			if vd.Error != "" {
				return nil, fmt.Errorf("b1 %s: %s: %s", run, vd.Name, vd.Error)
			}
			if vd.Certified {
				certified++
			}
		}
		files, err := store.Len()
		if err != nil {
			return nil, err
		}
		rows = append(rows, B1Row{
			Run:         run,
			Pipelines:   len(items),
			Certified:   certified,
			EngineRuns:  st.ElementsSummarized,
			StoreHits:   st.StoreHits,
			StoreMisses: st.StoreMisses,
			CacheHits:   st.SummaryCacheHits,
			StoreFiles:  files,
			Duration:    dur,
			Solver:      st.Solver,
		})
		if run == "cold" {
			coldVerdicts = verdicts
		} else {
			if st.ElementsSummarized != 0 {
				return nil, fmt.Errorf("b1: warm run performed %d Step-1 engine runs, want 0", st.ElementsSummarized)
			}
			cold, _ := json.Marshal(coldVerdicts)
			warm, _ := json.Marshal(verdicts)
			if string(cold) != string(warm) {
				return nil, fmt.Errorf("b1: warm verdicts differ from cold:\ncold: %s\nwarm: %s", cold, warm)
			}
		}
	}
	return rows, nil
}

// A1Row reports explored work for the path-scaling analysis.
type A1Row struct {
	Elements      int
	Branches      int
	ComposedSegs  int   // total Step-1 segments (≈ k · 2^n)
	ComposedPaths int   // Step-2 stitched paths
	MonoPaths     int   // monolithic feasible paths (≈ 2^(k·n))
	MonoSteps     int64 // monolithic symbolically executed statements
}

// A1PathScaling measures the §3 claim directly: composed work ≈ k·2^n,
// monolithic work ≈ 2^(k·n).
func A1PathScaling(branches, maxElems int, parallelism int) ([]A1Row, error) {
	var rows []A1Row
	for k := 1; k <= maxElems; k++ {
		pipe, err := syntheticChain(k, branches)
		if err != nil {
			return nil, err
		}
		v := verify.New(telOpts(verify.Options{MinLen: 14, MaxLen: 64, Parallelism: parallelism}))
		if _, err := v.CrashFreedom(pipe); err != nil {
			return nil, err
		}
		// Crash freedom alone may skip Step 2 (no suspects), so force a
		// full walk via the bound property.
		if _, err := v.BoundedInstructions(pipe); err != nil {
			return nil, err
		}
		st := v.Stats()
		mono, err := verify.Monolithic(pipe, verify.Options{MinLen: 14, MaxLen: 64})
		if err != nil {
			return nil, err
		}
		rows = append(rows, A1Row{
			Elements:      k,
			Branches:      branches,
			ComposedSegs:  st.SegmentsTotal,
			ComposedPaths: st.ComposedPaths,
			MonoPaths:     mono.Paths,
			MonoSteps:     mono.SymbexStats.StepsSymbex,
		})
	}
	return rows, nil
}

// A2Row compares loop strategies on the IP options element.
type A2Row struct {
	Mode     string
	MaxLen   uint64
	Segments int
	Steps    int64
	Checks   int64
	Duration time.Duration
	Aborted  bool
}

// a2SolverOptions enables the SAT performance layer (CNF preprocessing,
// the portfolio race, glue-filtered clause sharing) for the standalone
// loop-decomposition engine, mirroring the verifier's solver defaults.
func a2SolverOptions() smt.Options {
	return smt.Options{
		Preprocess: true,
		Portfolio:  verify.DefaultPortfolio,
		Exchange:   smt.NewClauseExchange(0, 0),
	}
}

// A2LoopDecomposition reproduces the loop story: unrolling explodes
// ("millions of segments ... months"), mini-element summarization with
// merging stays flat. keep, when non-nil, selects which cells run (by
// cell name, e.g. "unroll/maxlen=48").
func A2LoopDecomposition(maxLens []uint64, unrollBudget int, keep func(cell string) bool) ([]A2Row, error) {
	prog, err := elements.IPOptions("")
	if err != nil {
		return nil, err
	}
	var rows []A2Row
	for _, ml := range maxLens {
		for _, mode := range []struct {
			name string
			m    symbex.LoopMode
		}{{"merge", symbex.LoopMerge}, {"unroll", symbex.LoopUnroll}} {
			if keep != nil && !keep(fmt.Sprintf("%s/maxlen=%d", mode.name, ml)) {
				continue
			}
			eng := symbex.New(smt.New(a2SolverOptions()), symbex.Options{
				LoopMode:    mode.m,
				MaxSegments: unrollBudget,
			})
			start := time.Now()
			segs, err := eng.Run(prog, symbex.DefaultInput(14, ml))
			row := A2Row{
				Mode:     mode.name,
				MaxLen:   ml,
				Segments: len(segs),
				Steps:    eng.Stats().StepsSymbex,
				Checks:   eng.Stats().SolverChecks,
				Duration: time.Since(start),
				Aborted:  err != nil,
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// A3Row is a stateful-element verification outcome.
type A3Row struct {
	Pipeline   string
	Verified   bool
	Discharged int
	Duration   time.Duration
}

// A3StatefulElements verifies the stateful pipelines: the flow table and
// NAT map via the data-structure model, the overflow counter as the
// reachable-bad-value counterexample, and its saturating fix.
func A3StatefulElements(maxLen uint64, parallelism int) ([]A3Row, error) {
	configs := []struct{ name, src string }{
		{"netflow", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[0] -> NetFlow(1024) -> Discard; chk[1] -> Discard;`},
		{"nat", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[0] -> IPRewriter(SNAT 100.64.0.1) -> Discard; chk[1] -> Discard;`},
		{"counter-overflow", `
			src :: InfiniteSource;
			src -> Counter -> Discard;`},
		{"counter-saturating", `
			src :: InfiniteSource;
			src -> Counter(SATURATE) -> Discard;`},
	}
	var rows []A3Row
	for _, c := range configs {
		p := MustParse(c.src)
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.CrashFreedom(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, A3Row{
			Pipeline:   c.name,
			Verified:   rep.Verified,
			Discharged: rep.Discharged,
			Duration:   time.Since(start),
		})
	}
	return rows, nil
}

// S1Row is one sequence-verification measurement: bounded unrolling at
// a given depth, or k-induction (depth-independent).
type S1Row struct {
	Mode     string // "unroll" or "induction"
	Pipeline string
	Depth    int // unroll depth; for induction, the k that decided
	// Sequences counts explored sequence prefixes (the unrolling work
	// factor); Proved/Refuted/CTI is the verdict; WitnessPackets the
	// refutation length.
	Sequences      int
	Proved         bool
	Refuted        bool
	CTI            bool
	WitnessPackets int
	SolverQueries  int64
	Duration       time.Duration
	Solver         smt.Stats
}

// s1Config is the counter pipeline of the S1 experiment: a classifier
// fork in front of the counter gives each packet two feasible paths, so
// bounded unrolling explores 2^depth sequences while induction stays
// flat.
func s1Config(counterClass string) string {
	return `
		src :: InfiniteSource;
		cls :: Classifier(12/0800, -);
		cnt :: ` + counterClass + `;
		src -> cls;
		cls [0] -> cnt;
		cls [1] -> Discard;
		cnt -> Discard;
	`
}

// S1Induction measures multi-packet state verification (DESIGN.md §8):
// bounded sequence unrolling over the saturating counter grows
// exponentially in the sequence length, while the k-induction proof is
// flat — and, unlike any bounded depth, covers sequences of unbounded
// length. The plain counter shows the refutation side: unrolling finds
// nothing at any affordable depth (the overflow needs 2^32 packets),
// induction returns a 2-packet counterexample-to-induction whose
// dataplane replay is verified here — the harness errors loudly if a
// designed verdict or the replay regresses.
func S1Induction(maxLen uint64, parallelism int) ([]S1Row, error) {
	var rows []S1Row
	satP := MustParse(s1Config("Counter(SATURATE)"))
	for _, depth := range []int{2, 4, 6, 8} {
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.SeqCrashBounded(satP, depth, verify.SeqOptions{MaxSequences: 1 << 16})
		if err != nil {
			return nil, fmt.Errorf("s1 unroll depth %d: %w", depth, err)
		}
		if rep.Refuted {
			return nil, fmt.Errorf("s1: saturating counter crashed within %d packets", depth)
		}
		st := v.Stats()
		rows = append(rows, S1Row{
			Mode: "unroll", Pipeline: "counter-saturating", Depth: depth,
			Sequences: rep.Sequences, Proved: false,
			SolverQueries: st.SolverQueries, Duration: time.Since(start), Solver: st.Solver,
		})
	}
	{
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.SeqCrashFreedom(satP, verify.SeqOptions{})
		if err != nil {
			return nil, fmt.Errorf("s1 induction: %w", err)
		}
		if !rep.Proved {
			return nil, fmt.Errorf("s1: saturating counter not proved by induction: %+v", rep)
		}
		st := v.Stats()
		rows = append(rows, S1Row{
			Mode: "induction", Pipeline: "counter-saturating", Depth: rep.K,
			Sequences: rep.Sequences, Proved: true,
			SolverQueries: st.SolverQueries, Duration: time.Since(start), Solver: st.Solver,
		})
	}
	// The refutation side: plain Counter.
	ovfP := MustParse(s1Config("Counter"))
	{
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.SeqCrashBounded(ovfP, 8, verify.SeqOptions{MaxSequences: 1 << 16})
		if err != nil {
			return nil, fmt.Errorf("s1 unroll overflow: %w", err)
		}
		if rep.Refuted {
			return nil, fmt.Errorf("s1: plain counter crashed from boot state within 8 packets")
		}
		st := v.Stats()
		rows = append(rows, S1Row{
			Mode: "unroll", Pipeline: "counter-overflow", Depth: 8,
			Sequences:     rep.Sequences,
			SolverQueries: st.SolverQueries, Duration: time.Since(start), Solver: st.Solver,
		})
	}
	{
		v := verify.New(telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: parallelism}))
		start := time.Now()
		rep, err := v.SeqCrashFreedom(ovfP, verify.SeqOptions{})
		if err != nil {
			return nil, fmt.Errorf("s1 induction overflow: %w", err)
		}
		if rep.Proved || rep.Refuted || !rep.CTI || rep.Witness == nil {
			return nil, fmt.Errorf("s1: plain counter induction verdict unexpected: %+v", rep)
		}
		if len(rep.Witness.Packets) < 2 {
			return nil, fmt.Errorf("s1: CTI has %d packets, want >= 2", len(rep.Witness.Packets))
		}
		if err := verify.ReplaySeq(ovfP, rep.Witness); err != nil {
			return nil, fmt.Errorf("s1: CTI replay diverged: %w", err)
		}
		st := v.Stats()
		rows = append(rows, S1Row{
			Mode: "induction", Pipeline: "counter-overflow", Depth: rep.K,
			Sequences: rep.Sequences, CTI: true, WitnessPackets: len(rep.Witness.Packets),
			SolverQueries: st.SolverQueries, Duration: time.Since(start), Solver: st.Solver,
		})
	}
	return rows, nil
}

// R1Row is one degradation-ladder pass: the corpus verified clean,
// then again under injected disk and solver faults.
type R1Row struct {
	Run             string // "clean" or "faulted"
	Pipelines       int
	Certified       int
	Unresolved      int // unresolved obligations summed over verdicts
	FaultsInjected  int64
	SolverPanics    int64 // injected panics...
	PanicsRecovered int   // ...and the containments that must match them
	StoreCorrupt    int64 // corrupted artifacts the store rejected (misses)
	Duration        time.Duration
	Solver          smt.Stats
}

// R1Degradation exercises the robustness layer (DESIGN.md §9) as a
// benchmark: the example corpus is admitted once clean and once under
// a seeded fault script — torn/stale store artifacts plus a budgeted
// burst of solver faults. The ladder's contract is enforced, not just
// measured: every injected panic must be contained, and a faulted
// verdict is either byte-identical to the clean one or degraded to
// uncertified-with-unresolved — never a flipped certification.
func R1Degradation(maxLen uint64, seed uint64) ([]R1Row, error) {
	var items []verify.BatchItem
	for _, c := range Corpus() {
		items = append(items, verify.BatchItem{Name: c.Name, Pipeline: MustParse(c.Src)})
	}
	// Serial verification keeps the injector's decision stream — and so
	// the whole row — a pure function of (corpus, seed).
	base := telOpts(verify.Options{MinLen: packet.MinFrame, MaxLen: maxLen, Parallelism: 1})
	cleanVerdicts, st, dur := verify.Batch(items, base)
	rows := []R1Row{{
		Run: "clean", Pipelines: len(items), Certified: countCertified(cleanVerdicts),
		Duration: dur, Solver: st.Solver,
	}}

	dir, err := os.MkdirTemp("", "vsd-r1-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	disk, err := verify.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	in := faultinject.New(seed, faultinject.Rates{
		SolverPanic:   0.05,
		SolverUnknown: 0.05,
		TornWrite:     0.5,
		Stale:         0.25,
	})
	in.SolverBudget = 8
	faulted := base
	faulted.Store = faultinject.WrapStore(in, disk)
	faulted.SolverFaultHook = in.SolverHook()
	verdicts, fst, fdur := verify.Batch(items, faulted)

	ist := in.Stats()
	if ist.Total() == 0 {
		return nil, fmt.Errorf("r1: fault script injected nothing (seed %#x)", seed)
	}
	if fst.PanicsRecovered != int(ist.SolverPanics) {
		return nil, fmt.Errorf("r1: recovered %d panics for %d injected", fst.PanicsRecovered, ist.SolverPanics)
	}
	unresolved := 0
	for i, vd := range verdicts {
		unresolved += vd.Unresolved
		if vd.Certified && vd.Unresolved > 0 {
			return nil, fmt.Errorf("r1: %s certified with %d unresolved obligations", vd.Name, vd.Unresolved)
		}
		if vd.Certified {
			clean, _ := json.Marshal(cleanVerdicts[i])
			got, _ := json.Marshal(vd)
			if string(clean) != string(got) {
				return nil, fmt.Errorf("r1: %s verdict drifted under faults:\nclean: %s\nfaulty: %s", vd.Name, clean, got)
			}
		}
	}
	rows = append(rows, R1Row{
		Run: "faulted", Pipelines: len(items), Certified: countCertified(verdicts),
		Unresolved: unresolved, FaultsInjected: ist.Total(), SolverPanics: ist.SolverPanics,
		PanicsRecovered: fst.PanicsRecovered, StoreCorrupt: disk.Stats().Corrupt,
		Duration: fdur, Solver: fst.Solver,
	})
	return rows, nil
}

func countCertified(verdicts []verify.BatchVerdict) int {
	n := 0
	for _, vd := range verdicts {
		if vd.Certified {
			n++
		}
	}
	return n
}

// TputRow is one execution tier's forwarding throughput on the
// evaluation IP router.
type TputRow struct {
	Tier         string // interpreted | compiled | compiled-batch
	Packets      int64
	Duration     time.Duration
	Mpps         float64
	NsPerPkt     float64
	Speedup      float64 // vs the interpreted tier
	StepsPerPkt  float64
	AllocsPerPkt float64 // heap allocations per packet, measured
}

// TputResult is the throughput experiment: three tiers racing the same
// workload, plus the differential fuzz cell that makes the fast tiers
// trustworthy.
type TputResult struct {
	Rows []TputRow
	// Fuzz cell: packets driven through dataplane.Compare across the
	// corpus pipelines, all demanded divergence-free.
	FuzzPackets   int64
	FuzzPipelines int
	FuzzDuration  time.Duration
}

// tputWorkingSet is the number of distinct packets in the throughput
// working set; tiers cycle over it until they reach the packet budget.
const tputWorkingSet = 4096

// Tput measures forwarding throughput of the paper's IP router on the
// three execution tiers — tree-walking interpreter, compiled bytecode
// VM per packet, and compiled VM with batched dispatch — then runs the
// differential fuzzer over the example corpus (fuzzPackets packets,
// split across pipelines) and fails on any divergence. The throughput
// numbers are only quotable because the fuzz cell passed.
func Tput(packets, fuzzPackets int, seed int64) (*TputResult, error) {
	// The checksum-validating router — E1's full-router pipeline, and
	// the shape the paper's Mpps numbers are about. The RFC 1071 loop
	// is the hottest code in the fast path, so measuring NOCHECKSUM
	// would flatter the interpreter and skip the loop fusion entirely.
	pipe := MustParse(IPRouterConfig(true))
	// Valid IPv4 traffic: the Mpps yardstick is the router forwarding
	// real packets end to end (checksum loop, TTL, route lookup) — the
	// adversarial/random mixes belong to the fuzz gate below, where
	// early-exit packets are a feature, not a distortion.
	g := workload.New(workload.Spec{Seed: seed})
	workload := make([]*packet.Buffer, tputWorkingSet)
	for i := range workload {
		workload[i] = g.IPv4()
	}

	res := &TputResult{}

	interp := dataplane.NewRunner(pipe)
	row, err := tputMeasure("interpreted", packets, workload, interp.RunTrace)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	interpNs := row.NsPerPkt

	comp, err := dataplane.NewCompiled(pipe)
	if err != nil {
		return nil, err
	}
	// Per-packet compiled tier: one pooled scratch buffer, Process per
	// packet — the shape a per-packet forwarding loop would use.
	scratch := packet.NewBuffer(nil)
	row, err = tputMeasure("compiled", packets, workload, func(tr []*packet.Buffer) dataplane.Summary {
		var s dataplane.Summary
		for _, buf := range tr {
			scratch.CopyFrom(buf)
			r := comp.Process(scratch)
			s.Packets++
			s.Steps += r.Steps
		}
		return s
	})
	if err != nil {
		return nil, err
	}
	row.Speedup = interpNs / row.NsPerPkt
	res.Rows = append(res.Rows, row)

	batch, err := dataplane.NewCompiled(pipe)
	if err != nil {
		return nil, err
	}
	row, err = tputMeasure("compiled-batch", packets, workload, batch.RunTrace)
	if err != nil {
		return nil, err
	}
	row.Speedup = interpNs / row.NsPerPkt
	res.Rows = append(res.Rows, row)

	fuzzStart := time.Now()
	pipelines, total, err := TputFuzz(fuzzPackets, seed)
	if err != nil {
		return nil, err
	}
	res.FuzzPipelines = pipelines
	res.FuzzPackets = total
	res.FuzzDuration = time.Since(fuzzStart)
	return res, nil
}

// tputMeasure times one tier over at least `packets` packets, cycling
// the working set. One warmup pass fills every pool first, so the
// steady state is what gets timed — and its allocation count measured.
func tputMeasure(tier string, packets int, workload []*packet.Buffer,
	run func([]*packet.Buffer) dataplane.Summary) (TputRow, error) {
	run(workload) // warmup: pools, maps, and frame storage all sized
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var done, steps int64
	start := time.Now()
	for done < int64(packets) {
		s := run(workload)
		done += s.Packets
		steps += s.Steps
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	if dur <= 0 {
		return TputRow{}, fmt.Errorf("tput: %s tier finished in zero time", tier)
	}
	return TputRow{
		Tier:         tier,
		Packets:      done,
		Duration:     dur,
		Mpps:         float64(done) / dur.Seconds() / 1e6,
		NsPerPkt:     float64(dur.Nanoseconds()) / float64(done),
		Speedup:      1,
		StepsPerPkt:  float64(steps) / float64(done),
		AllocsPerPkt: float64(m1.Mallocs-m0.Mallocs) / float64(done),
	}, nil
}

// tputFuzzChunk is the differential fuzzer's chunk size: private state
// persists across a chunk (long enough to fill NAT tables and hit
// capacity eviction), and chunking keeps the cloned traces bounded.
const tputFuzzChunk = 1 << 16

// TputFuzz drives the differential oracle over every corpus pipeline:
// total random/adversarial packets split evenly, each chunk demanding
// the interpreted, compiled, and batched tiers agree on every
// observable. Returns the pipeline and packet counts; any divergence
// is an error.
func TputFuzz(total int, seed int64) (pipelines int, packets int64, err error) {
	corpus := Corpus()
	per := total / len(corpus)
	if per < 1 {
		per = 1
	}
	for ci, c := range corpus {
		pipe, perr := click.Parse(elements.Default(), c.Src)
		if perr != nil {
			return 0, 0, fmt.Errorf("tput fuzz: %s: %w", c.Name, perr)
		}
		g := workload.New(workload.Spec{Seed: seed + int64(ci)})
		remaining := per
		for remaining > 0 {
			n := remaining
			if n > tputFuzzChunk {
				n = tputFuzzChunk
			}
			rep, cerr := dataplane.Compare(pipe, g.Mix(n))
			if cerr != nil {
				return 0, 0, fmt.Errorf("tput fuzz: %s: %w", c.Name, cerr)
			}
			packets += rep.Packets
			remaining -= n
		}
		pipelines++
	}
	return pipelines, packets, nil
}
