package experiments

import (
	"testing"
)

func TestSyntheticChainScaling(t *testing.T) {
	// The synthetic chain must exhibit the paper's §3 shape: composed
	// segments grow linearly with k, monolithic paths exponentially.
	rows, err := A1PathScaling(3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MonoPaths <= rows[i-1].MonoPaths {
			t.Errorf("monolithic paths not growing: %+v", rows)
		}
	}
	// Exponential vs linear: mono(k)/mono(k-1) should be roughly the
	// per-element path count, while composed grows by one element's
	// segments.
	growth := float64(rows[2].MonoPaths) / float64(rows[1].MonoPaths)
	if growth < 2 {
		t.Errorf("monolithic growth factor %.2f, want >= 2 (exponential)", growth)
	}
	composedGrowth := rows[2].ComposedSegs - rows[1].ComposedSegs
	perElement := rows[0].ComposedSegs
	if composedGrowth > 2*perElement {
		t.Errorf("composed growth %d exceeds 2x per-element segments %d (should be additive)",
			composedGrowth, perElement)
	}
}

func TestE3RowsProduceSpeedup(t *testing.T) {
	rows, err := E3ComposedVsMonolithic(3, 3, 1<<12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.ComposedOK {
			t.Errorf("k=%d composed verification failed", r.Elements)
		}
	}
	// By k=3 the monolithic side must already be doing more work.
	last := rows[len(rows)-1]
	if last.MonoPaths <= rows[0].MonoPaths {
		t.Error("monolithic path count did not grow with k")
	}
}

func TestF1RowsMatchExpectedVerdicts(t *testing.T) {
	rows, err := F1FunctionalSpecs(40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no F1 rows")
	}
	for _, r := range rows {
		if r.Verified != r.Expected {
			t.Errorf("%s/%s: verified=%v, designed verdict %v", r.Spec, r.Pipeline, r.Verified, r.Expected)
		}
		if !r.Verified && r.Witnesses == 0 {
			t.Errorf("%s/%s: failed without witnesses", r.Spec, r.Pipeline)
		}
		if r.Obligations+r.Trivial == 0 {
			t.Errorf("%s/%s: vacuous spec (no obligations stated)", r.Spec, r.Pipeline)
		}
	}
}

func TestA3RowsShape(t *testing.T) {
	rows, err := A3StatefulElements(40, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[r.Pipeline] = r.Verified
	}
	if got["counter-overflow"] {
		t.Error("overflow counter must be rejected")
	}
	if !got["counter-saturating"] {
		t.Error("saturating counter must verify")
	}
	if !got["netflow"] || !got["nat"] {
		t.Error("netflow/nat pipelines must verify")
	}
}

func TestB1WarmRunIsAllStoreHits(t *testing.T) {
	// B1 enforces its own acceptance internally (zero warm engine runs,
	// byte-identical verdicts); the test adds the row-shape checks. A
	// short maxlen keeps this unit-test sized.
	rows, err := B1BatchStore(32, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Run != "cold" || rows[1].Run != "warm" {
		t.Fatalf("rows = %+v", rows)
	}
	cold, warm := rows[0], rows[1]
	if cold.EngineRuns == 0 || cold.StoreHits != 0 {
		t.Errorf("cold row: %+v", cold)
	}
	if warm.EngineRuns != 0 || warm.StoreHits != cold.EngineRuns {
		t.Errorf("warm row: %+v", warm)
	}
	if warm.StoreFiles != cold.EngineRuns {
		t.Errorf("store holds %d artifacts, want %d", warm.StoreFiles, cold.EngineRuns)
	}
	if cold.Certified != cold.Pipelines || warm.Certified != warm.Pipelines {
		t.Errorf("corpus must certify everywhere: cold %+v warm %+v", cold, warm)
	}
}
