package ir

import (
	"fmt"

	"vsd/internal/bv"
)

// Builder constructs Programs with width checking at construction time.
// Element authors use the fluent value-returning methods; control flow is
// expressed with closures so nesting mirrors the program structure:
//
//	b := ir.NewBuilder("DecTTL", 1, 2)
//	ttl := b.LoadPkt(b.ConstU(bv.W32, 22), 1)
//	b.If(b.Bin(ir.Ule, ttl, b.ConstU(bv.W8, 1)), func() {
//	    b.Emit(1) // expired
//	}, nil)
//	...
//	prog := b.MustBuild()
//
// All methods panic on misuse (width mismatches, bad ports); element
// construction happens at configuration time, where a panic is an
// implementation bug, not a data-dependent failure.
type Builder struct {
	name      string
	numIn     int
	numOut    int
	regWidths []bv.Width
	states    []StateDecl
	tables    []*StaticTable
	metaSlots map[string]bv.Width
	stack     []*[]Stmt // innermost block last
	loopDepth int
	err       error
}

// NewBuilder starts a program named name with the given port counts.
func NewBuilder(name string, numIn, numOut int) *Builder {
	root := &[]Stmt{}
	return &Builder{
		name:      name,
		numIn:     numIn,
		numOut:    numOut,
		metaSlots: map[string]bv.Width{},
		stack:     []*[]Stmt{root},
	}
}

func (b *Builder) cur() *[]Stmt { return b.stack[len(b.stack)-1] }

func (b *Builder) push(s Stmt) { *b.cur() = append(*b.cur(), s) }

// Reg allocates a fresh register of width w.
func (b *Builder) Reg(w bv.Width) Reg {
	if !w.Valid() {
		panic(fmt.Sprintf("ir: invalid register width %d", w))
	}
	b.regWidths = append(b.regWidths, w)
	return Reg(len(b.regWidths) - 1)
}

func (b *Builder) width(r Reg) bv.Width {
	if r < 0 || int(r) >= len(b.regWidths) {
		panic(fmt.Sprintf("ir: unknown register %d", r))
	}
	return b.regWidths[r]
}

func (b *Builder) checkBool(r Reg, ctx string) {
	if b.width(r) != 1 {
		panic(fmt.Sprintf("ir: %s requires a 1-bit register, got %s", ctx, b.width(r)))
	}
}

// ConstU emits a constant and returns its register.
func (b *Builder) ConstU(w bv.Width, u uint64) Reg {
	dst := b.Reg(w)
	b.push(ConstStmt{Dst: dst, Val: bv.New(w, u)})
	return dst
}

// Bin emits dst = op(x, y) and returns dst.
func (b *Builder) Bin(op BinOp, x, y Reg) Reg {
	if b.width(x) != b.width(y) {
		panic(fmt.Sprintf("ir: %s operand widths differ: %s vs %s", op, b.width(x), b.width(y)))
	}
	w := b.width(x)
	if op.IsCompare() {
		w = 1
	}
	dst := b.Reg(w)
	b.push(BinStmt{Op: op, Dst: dst, A: x, B: y})
	return dst
}

// BinC emits dst = op(x, const) with the constant widened to x's width.
func (b *Builder) BinC(op BinOp, x Reg, c uint64) Reg {
	return b.Bin(op, x, b.ConstU(b.width(x), c))
}

// Not emits dst = ^x.
func (b *Builder) Not(x Reg) Reg {
	dst := b.Reg(b.width(x))
	b.push(NotStmt{Dst: dst, A: x})
	return dst
}

// ZExt emits a zero-extension of x to width w.
func (b *Builder) ZExt(x Reg, w bv.Width) Reg {
	if w < b.width(x) {
		panic("ir: zext narrows")
	}
	if w == b.width(x) {
		return x
	}
	dst := b.Reg(w)
	b.push(CastStmt{Kind: ZExt, Dst: dst, A: x})
	return dst
}

// SExt emits a sign-extension of x to width w.
func (b *Builder) SExt(x Reg, w bv.Width) Reg {
	if w < b.width(x) {
		panic("ir: sext narrows")
	}
	if w == b.width(x) {
		return x
	}
	dst := b.Reg(w)
	b.push(CastStmt{Kind: SExt, Dst: dst, A: x})
	return dst
}

// Trunc emits a truncation of x to width w.
func (b *Builder) Trunc(x Reg, w bv.Width) Reg {
	if w > b.width(x) {
		panic("ir: trunc widens")
	}
	if w == b.width(x) {
		return x
	}
	dst := b.Reg(w)
	b.push(CastStmt{Kind: Trunc, Dst: dst, A: x})
	return dst
}

// Select emits dst = cond ? x : y.
func (b *Builder) Select(cond, x, y Reg) Reg {
	b.checkBool(cond, "select")
	if b.width(x) != b.width(y) {
		panic("ir: select arm widths differ")
	}
	dst := b.Reg(b.width(x))
	b.push(SelStmt{Dst: dst, Cond: cond, A: x, B: y})
	return dst
}

// Mov emits a copy of src into a fresh register (via or with zero).
func (b *Builder) Mov(src Reg) Reg {
	return b.Bin(Or, src, b.ConstU(b.width(src), 0))
}

// SetReg assigns the value of src to an existing register dst (same
// width), used to update loop-carried values in place.
func (b *Builder) SetReg(dst, src Reg) {
	if b.width(dst) != b.width(src) {
		panic("ir: SetReg width mismatch")
	}
	zero := b.Reg(b.width(src))
	b.push(ConstStmt{Dst: zero, Val: bv.New(b.width(src), 0)})
	b.push(BinStmt{Op: Or, Dst: dst, A: src, B: zero})
}

// LoadPkt emits a bounds-checked big-endian read of n bytes at byte
// offset off (32-bit register) and returns the 8·n-bit destination.
func (b *Builder) LoadPkt(off Reg, n int) Reg {
	if b.width(off) != 32 {
		panic("ir: packet offset must be 32-bit")
	}
	w, ok := byteWidth(n)
	if !ok {
		panic(fmt.Sprintf("ir: LoadPkt n=%d", n))
	}
	dst := b.Reg(w)
	b.push(LoadPktStmt{Dst: dst, Off: off, N: n})
	return dst
}

// LoadPktC is LoadPkt at a constant offset.
func (b *Builder) LoadPktC(off uint64, n int) Reg {
	return b.LoadPkt(b.ConstU(32, off), n)
}

// StorePkt emits a bounds-checked big-endian write of src's n bytes at
// byte offset off.
func (b *Builder) StorePkt(off, src Reg, n int) {
	if b.width(off) != 32 {
		panic("ir: packet offset must be 32-bit")
	}
	w, ok := byteWidth(n)
	if !ok || b.width(src) != w {
		panic(fmt.Sprintf("ir: StorePkt n=%d src width %s", n, b.width(src)))
	}
	b.push(StorePktStmt{Off: off, Src: src, N: n})
}

func byteWidth(n int) (bv.Width, bool) {
	switch n {
	case 1:
		return 8, true
	case 2:
		return 16, true
	case 4:
		return 32, true
	default:
		return 0, false
	}
}

// PktLen emits a read of the packet length (32-bit).
func (b *Builder) PktLen() Reg {
	dst := b.Reg(32)
	b.push(PktLenStmt{Dst: dst})
	return dst
}

// MetaLoad emits a read of the named metadata annotation of width w.
func (b *Builder) MetaLoad(slot string, w bv.Width) Reg {
	b.declMeta(slot, w)
	dst := b.Reg(w)
	b.push(MetaLoadStmt{Dst: dst, Slot: slot})
	return dst
}

// MetaStore emits a write of src to the named metadata annotation.
func (b *Builder) MetaStore(slot string, src Reg) {
	b.declMeta(slot, b.width(src))
	b.push(MetaStoreStmt{Slot: slot, Src: src})
}

func (b *Builder) declMeta(slot string, w bv.Width) {
	if got, ok := b.metaSlots[slot]; ok {
		if got != w {
			panic(fmt.Sprintf("ir: metadata slot %q used at widths %s and %s", slot, got, w))
		}
		return
	}
	b.metaSlots[slot] = w
}

// DeclareState declares a private key/value store for this element.
func (b *Builder) DeclareState(d StateDecl) {
	if !d.KeyW.Valid() || !d.ValW.Valid() {
		panic("ir: invalid state widths")
	}
	for _, s := range b.states {
		if s.Name == d.Name {
			panic(fmt.Sprintf("ir: duplicate state store %q", d.Name))
		}
	}
	b.states = append(b.states, d)
}

// StateRead emits dst = store[key] (or the store default) and returns
// dst.
func (b *Builder) StateRead(store string, key Reg) Reg {
	d := b.stateDecl(store)
	if b.width(key) != d.KeyW {
		panic(fmt.Sprintf("ir: state %q key width %s, got %s", store, d.KeyW, b.width(key)))
	}
	dst := b.Reg(d.ValW)
	b.push(StateReadStmt{Dst: dst, Store: store, Key: key})
	return dst
}

// StateWrite emits store[key] = val.
func (b *Builder) StateWrite(store string, key, val Reg) {
	d := b.stateDecl(store)
	if b.width(key) != d.KeyW || b.width(val) != d.ValW {
		panic(fmt.Sprintf("ir: state %q write widths (%s,%s), got (%s,%s)",
			store, d.KeyW, d.ValW, b.width(key), b.width(val)))
	}
	b.push(StateWriteStmt{Store: store, Key: key, Val: val})
}

func (b *Builder) stateDecl(name string) StateDecl {
	for _, s := range b.states {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("ir: undeclared state store %q", name))
}

// DeclareTable registers a static table; Lookup panics if the table is
// invalid.
func (b *Builder) DeclareTable(t *StaticTable) {
	if err := t.Validate(); err != nil {
		panic("ir: " + err.Error())
	}
	for _, have := range b.tables {
		if have.Name == t.Name {
			panic(fmt.Sprintf("ir: duplicate table %q", t.Name))
		}
	}
	b.tables = append(b.tables, t)
}

// StaticLookup emits dst = table[key] and returns dst.
func (b *Builder) StaticLookup(table string, key Reg) Reg {
	var t *StaticTable
	for _, have := range b.tables {
		if have.Name == table {
			t = have
			break
		}
	}
	if t == nil {
		panic(fmt.Sprintf("ir: undeclared table %q", table))
	}
	if b.width(key) != t.KeyW {
		panic(fmt.Sprintf("ir: table %q key width %s, got %s", table, t.KeyW, b.width(key)))
	}
	dst := b.Reg(t.ValW)
	b.push(StaticLookupStmt{Dst: dst, Table: table, Key: key})
	return dst
}

// Assert emits a crash-if-false check.
func (b *Builder) Assert(cond Reg, msg string) {
	b.checkBool(cond, "assert")
	b.push(AssertStmt{Cond: cond, Msg: msg})
}

// If emits a conditional; then and els (either may be nil) populate the
// branches.
func (b *Builder) If(cond Reg, then, els func()) {
	b.checkBool(cond, "if")
	st := IfStmt{Cond: cond}
	if then != nil {
		blk := &[]Stmt{}
		b.stack = append(b.stack, blk)
		then()
		b.stack = b.stack[:len(b.stack)-1]
		st.Then = *blk
	}
	if els != nil {
		blk := &[]Stmt{}
		b.stack = append(b.stack, blk)
		els()
		b.stack = b.stack[:len(b.stack)-1]
		st.Else = *blk
	}
	b.push(st)
}

// Loop emits a loop executing body up to bound times.
func (b *Builder) Loop(bound int, body func()) {
	if bound <= 0 {
		panic("ir: loop bound must be positive")
	}
	blk := &[]Stmt{}
	b.stack = append(b.stack, blk)
	b.loopDepth++
	body()
	b.loopDepth--
	b.stack = b.stack[:len(b.stack)-1]
	b.push(LoopStmt{Bound: bound, Body: *blk})
}

// Break emits an exit from the innermost loop.
func (b *Builder) Break() {
	if b.loopDepth == 0 {
		panic("ir: break outside loop")
	}
	b.push(BreakStmt{})
}

// Emit emits packet hand-off out of the given output port.
func (b *Builder) Emit(port int) {
	if port < 0 || port >= b.numOut {
		panic(fmt.Sprintf("ir: emit to port %d of %d", port, b.numOut))
	}
	b.push(EmitStmt{Port: port})
}

// Drop emits a packet drop.
func (b *Builder) Drop() { b.push(DropStmt{}) }

// Build finalizes the program. It verifies that every path ends in Emit,
// Drop, or a crash — element execution must always terminate with an
// explicit packet disposition.
func (b *Builder) Build() (*Program, error) {
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("ir: unbalanced blocks in %s", b.name)
	}
	body := *b.stack[0]
	if !alwaysTerminates(body) {
		return nil, fmt.Errorf("ir: %s has a path that falls off the end without Emit/Drop", b.name)
	}
	p := &Program{
		Name:      b.name,
		NumIn:     b.numIn,
		NumOut:    b.numOut,
		RegWidths: b.regWidths,
		States:    b.states,
		Tables:    b.tables,
		Body:      body,
		MetaSlots: b.metaSlots,
	}
	return p, nil
}

// MustBuild is Build, panicking on error; for statically known-correct
// element definitions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// alwaysTerminates reports whether every execution of body reaches an
// Emit or Drop (crashes also terminate but are not required statically).
func alwaysTerminates(body []Stmt) bool {
	for _, s := range body {
		switch st := s.(type) {
		case EmitStmt, DropStmt:
			return true
		case IfStmt:
			if alwaysTerminates(st.Then) && alwaysTerminates(st.Else) {
				return true
			}
		}
	}
	return false
}
