package ir

// Program fingerprinting: a deterministic content hash of a compiled
// program, covering every field that affects its semantics — the
// statement tree, register widths, state and table declarations, port
// counts, and metadata slots. The fingerprint is the canonical identity
// of an element body across processes: the verifier keys its Step-1
// summary cache by it, and the on-disk summary store (DESIGN.md §7)
// addresses artifacts with it. Two programs share a fingerprint iff a
// summary computed for one is valid for the other; unlike the old
// class+config string key it cannot collide across registries that bind
// the same class name to different constructors.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
)

// Fingerprint is a 256-bit content hash of a Program.
type Fingerprint [32]byte

// String returns the lowercase hex form, as used in store filenames and
// verdict records.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// ParseFingerprint parses the hex form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("ir: bad fingerprint %q: %w", s, err)
	}
	if len(b) != len(f) {
		return f, fmt.Errorf("ir: bad fingerprint %q: want %d hex bytes, got %d", s, len(f), len(b))
	}
	copy(f[:], b)
	return f, nil
}

// Fingerprint returns the program's content hash, computed once and
// cached. Programs are immutable after Build, so the cache is sound; it
// is safe for concurrent use.
func (p *Program) Fingerprint() Fingerprint {
	p.fpOnce.Do(func() { p.fp = fingerprint(p) })
	return p.fp
}

// Hasher exposes the fingerprint serialization discipline to the other
// layers that derive fingerprints from this one (pipeline identity in
// internal/click, summary-store keys in internal/verify): every record
// goes length-prefixed into one SHA-256, so the collision guarantees
// are shared rather than re-implemented per caller.
type Hasher struct{ w fpWriter }

// NewHasher starts a fingerprint computation under the given format
// label (a versioned string like "vsd/click/v1"; bump it on any
// encoding change).
func NewHasher(format string) *Hasher {
	h := &Hasher{w: fpWriter{h: sha256.New()}}
	h.w.str(format)
	return h
}

// U64 appends an integer record.
func (h *Hasher) U64(v uint64) { h.w.u64(v) }

// Str appends a length-prefixed string record.
func (h *Hasher) Str(s string) { h.w.str(s) }

// Fingerprint mixes another fingerprint in as a fixed-width record.
func (h *Hasher) Fingerprint(fp Fingerprint) { h.w.h.Write(fp[:]) }

// Sum finalizes the computation.
func (h *Hasher) Sum() Fingerprint {
	var f Fingerprint
	h.w.h.Sum(f[:0])
	return f
}

// fpWriter serializes canonical records into a running hash. Every
// variable-length field is length-prefixed so distinct programs cannot
// collide by field concatenation.
type fpWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (w *fpWriter) u64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *fpWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func fingerprint(p *Program) Fingerprint {
	w := &fpWriter{h: sha256.New()}
	w.str("vsd/ir/v1") // format version: bump on any encoding change
	w.str(p.Name)
	w.u64(uint64(p.NumIn))
	w.u64(uint64(p.NumOut))
	w.u64(uint64(len(p.RegWidths)))
	for _, rw := range p.RegWidths {
		w.u64(uint64(rw))
	}
	w.u64(uint64(len(p.States)))
	for _, s := range p.States {
		w.str(s.Name)
		w.u64(uint64(s.KeyW))
		w.u64(uint64(s.ValW))
		w.u64(s.Default)
		w.u64(uint64(s.Capacity))
	}
	w.u64(uint64(len(p.Tables)))
	for _, t := range p.Tables {
		w.str(t.Name)
		w.u64(uint64(t.KeyW))
		w.u64(uint64(t.ValW))
		w.u64(t.Default)
		w.u64(uint64(len(t.Entries)))
		for _, e := range t.Entries {
			w.u64(e.Lo)
			w.u64(e.Hi)
			w.u64(e.Val)
		}
	}
	slots := make([]string, 0, len(p.MetaSlots))
	for s := range p.MetaSlots {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	w.u64(uint64(len(slots)))
	for _, s := range slots {
		w.str(s)
		w.u64(uint64(p.MetaSlots[s]))
	}
	fpBlock(w, p.Body)
	var f Fingerprint
	w.h.Sum(f[:0])
	return f
}

// Statement tags for the fingerprint stream. The values are part of the
// format: renumbering them changes every fingerprint (bump the version
// string instead of reusing a tag).
const (
	fpConst uint64 = iota + 1
	fpBin
	fpNot
	fpCast
	fpSel
	fpLoadPkt
	fpStorePkt
	fpPktLen
	fpMetaLoad
	fpMetaStore
	fpStateRead
	fpStateWrite
	fpStaticLookup
	fpAssert
	fpIf
	fpLoop
	fpBreak
	fpEmit
	fpDrop
)

func fpBlock(w *fpWriter, body []Stmt) {
	w.u64(uint64(len(body)))
	for _, s := range body {
		fpStmt(w, s)
	}
}

func fpStmt(w *fpWriter, s Stmt) {
	switch st := s.(type) {
	case ConstStmt:
		w.u64(fpConst)
		w.i64(int64(st.Dst))
		w.u64(uint64(st.Val.W))
		w.u64(st.Val.U)
	case BinStmt:
		w.u64(fpBin)
		w.u64(uint64(st.Op))
		w.i64(int64(st.Dst))
		w.i64(int64(st.A))
		w.i64(int64(st.B))
	case NotStmt:
		w.u64(fpNot)
		w.i64(int64(st.Dst))
		w.i64(int64(st.A))
	case CastStmt:
		w.u64(fpCast)
		w.u64(uint64(st.Kind))
		w.i64(int64(st.Dst))
		w.i64(int64(st.A))
	case SelStmt:
		w.u64(fpSel)
		w.i64(int64(st.Dst))
		w.i64(int64(st.Cond))
		w.i64(int64(st.A))
		w.i64(int64(st.B))
	case LoadPktStmt:
		w.u64(fpLoadPkt)
		w.i64(int64(st.Dst))
		w.i64(int64(st.Off))
		w.u64(uint64(st.N))
	case StorePktStmt:
		w.u64(fpStorePkt)
		w.i64(int64(st.Off))
		w.i64(int64(st.Src))
		w.u64(uint64(st.N))
	case PktLenStmt:
		w.u64(fpPktLen)
		w.i64(int64(st.Dst))
	case MetaLoadStmt:
		w.u64(fpMetaLoad)
		w.i64(int64(st.Dst))
		w.str(st.Slot)
	case MetaStoreStmt:
		w.u64(fpMetaStore)
		w.str(st.Slot)
		w.i64(int64(st.Src))
	case StateReadStmt:
		w.u64(fpStateRead)
		w.i64(int64(st.Dst))
		w.str(st.Store)
		w.i64(int64(st.Key))
	case StateWriteStmt:
		w.u64(fpStateWrite)
		w.str(st.Store)
		w.i64(int64(st.Key))
		w.i64(int64(st.Val))
	case StaticLookupStmt:
		w.u64(fpStaticLookup)
		w.i64(int64(st.Dst))
		w.str(st.Table)
		w.i64(int64(st.Key))
	case AssertStmt:
		w.u64(fpAssert)
		w.i64(int64(st.Cond))
		w.str(st.Msg)
	case IfStmt:
		w.u64(fpIf)
		w.i64(int64(st.Cond))
		fpBlock(w, st.Then)
		fpBlock(w, st.Else)
	case LoopStmt:
		w.u64(fpLoop)
		w.u64(uint64(st.Bound))
		fpBlock(w, st.Body)
	case BreakStmt:
		w.u64(fpBreak)
	case EmitStmt:
		w.u64(fpEmit)
		w.u64(uint64(st.Port))
	case DropStmt:
		w.u64(fpDrop)
	default:
		panic(fmt.Sprintf("ir: unknown statement %T in fingerprint", s))
	}
}
