package ir

import (
	"fmt"
	"strings"
)

// String renders the program as indented pseudo-assembly, used by the
// CLI's --dump-ir flag and in test failure output.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (in=%d out=%d regs=%d maxstmts=%d)\n",
		p.Name, p.NumIn, p.NumOut, len(p.RegWidths), p.MaxStmts())
	for _, s := range p.States {
		fmt.Fprintf(&b, "  state %s key=%s val=%s default=%d cap=%d\n",
			s.Name, s.KeyW, s.ValW, s.Default, s.Capacity)
	}
	for _, t := range p.Tables {
		fmt.Fprintf(&b, "  table %s key=%s val=%s entries=%d default=%d\n",
			t.Name, t.KeyW, t.ValW, len(t.Entries), t.Default)
	}
	writeBlock(&b, p.Body, 1)
	return b.String()
}

func writeBlock(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case ConstStmt:
			fmt.Fprintf(b, "%sr%d = %s\n", ind, st.Dst, st.Val)
		case BinStmt:
			fmt.Fprintf(b, "%sr%d = %s r%d, r%d\n", ind, st.Dst, st.Op, st.A, st.B)
		case NotStmt:
			fmt.Fprintf(b, "%sr%d = not r%d\n", ind, st.Dst, st.A)
		case CastStmt:
			kinds := [...]string{ZExt: "zext", SExt: "sext", Trunc: "trunc"}
			fmt.Fprintf(b, "%sr%d = %s r%d\n", ind, st.Dst, kinds[st.Kind], st.A)
		case SelStmt:
			fmt.Fprintf(b, "%sr%d = select r%d ? r%d : r%d\n", ind, st.Dst, st.Cond, st.A, st.B)
		case LoadPktStmt:
			fmt.Fprintf(b, "%sr%d = pkt[r%d .. +%d]\n", ind, st.Dst, st.Off, st.N)
		case StorePktStmt:
			fmt.Fprintf(b, "%spkt[r%d .. +%d] = r%d\n", ind, st.Off, st.N, st.Src)
		case PktLenStmt:
			fmt.Fprintf(b, "%sr%d = pktlen\n", ind, st.Dst)
		case MetaLoadStmt:
			fmt.Fprintf(b, "%sr%d = meta.%s\n", ind, st.Dst, st.Slot)
		case MetaStoreStmt:
			fmt.Fprintf(b, "%smeta.%s = r%d\n", ind, st.Slot, st.Src)
		case StateReadStmt:
			fmt.Fprintf(b, "%sr%d = state.%s[r%d]\n", ind, st.Dst, st.Store, st.Key)
		case StateWriteStmt:
			fmt.Fprintf(b, "%sstate.%s[r%d] = r%d\n", ind, st.Store, st.Key, st.Val)
		case StaticLookupStmt:
			fmt.Fprintf(b, "%sr%d = table.%s[r%d]\n", ind, st.Dst, st.Table, st.Key)
		case AssertStmt:
			fmt.Fprintf(b, "%sassert r%d, %q\n", ind, st.Cond, st.Msg)
		case IfStmt:
			fmt.Fprintf(b, "%sif r%d {\n", ind, st.Cond)
			writeBlock(b, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				writeBlock(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case LoopStmt:
			fmt.Fprintf(b, "%sloop %d {\n", ind, st.Bound)
			writeBlock(b, st.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case BreakStmt:
			fmt.Fprintf(b, "%sbreak\n", ind)
		case EmitStmt:
			fmt.Fprintf(b, "%semit %d\n", ind, st.Port)
		case DropStmt:
			fmt.Fprintf(b, "%sdrop\n", ind)
		}
	}
}
