package ir

import (
	"fmt"

	"vsd/internal/bv"
)

// CrashKind classifies why element code crashed. These are the faults
// the paper's crash-freedom property rules out: failed assertions,
// division by zero, and out-of-bounds packet accesses (the IR analogue
// of a segmentation fault).
type CrashKind uint8

// Crash kinds.
const (
	CrashAssert CrashKind = iota
	CrashDivZero
	CrashOOB
)

func (k CrashKind) String() string {
	switch k {
	case CrashAssert:
		return "assertion failure"
	case CrashDivZero:
		return "division by zero"
	case CrashOOB:
		return "out-of-bounds packet access"
	}
	return "unknown crash"
}

// CrashInfo describes a concrete crash.
type CrashInfo struct {
	Kind CrashKind
	Msg  string
}

func (c *CrashInfo) Error() string { return fmt.Sprintf("%s: %s", c.Kind, c.Msg) }

// Disposition is how an element execution ended.
type Disposition uint8

// Dispositions.
const (
	Emitted Disposition = iota
	Dropped
	Crashed
)

func (d Disposition) String() string {
	switch d {
	case Emitted:
		return "emitted"
	case Dropped:
		return "dropped"
	case Crashed:
		return "crashed"
	}
	return "?"
}

// Outcome is the result of one concrete element execution.
type Outcome struct {
	Disposition Disposition
	Port        int        // valid when Emitted
	Crash       *CrashInfo // valid when Crashed
	Steps       int64      // dynamic statements executed
}

// State is the concrete private state of an element instance: per-store
// key/value maps. It persists across packets, implementing the paper's
// "private state" class.
type State map[string]map[uint64]uint64

// NewState returns empty private state.
func NewState() State { return State{} }

// Read returns the value for key in the named store, or the declared
// default.
func (s State) Read(d StateDecl, key uint64) uint64 {
	if m, ok := s[d.Name]; ok {
		if v, ok := m[key]; ok {
			return v
		}
	}
	return d.Default
}

// Write sets store[key] = val, honoring the capacity bound: writes of
// new keys to a full store are dropped, modeling the pre-allocated
// tables of a real dataplane.
func (s State) Write(d StateDecl, key, val uint64) {
	m, ok := s[d.Name]
	if !ok {
		m = map[uint64]uint64{}
		s[d.Name] = m
	}
	if _, exists := m[key]; !exists && d.Capacity > 0 && len(m) >= d.Capacity {
		return
	}
	m[key] = val
}

// ExecEnv is the mutable environment of one element execution. Pkt and
// Meta are the packet state (owned by the executing element for the
// duration of the call); State is the element's private state.
type ExecEnv struct {
	Pkt   []byte
	Meta  map[string]bv.V
	State State
}

// Exec interprets p once over env. The packet and metadata are mutated
// in place; private state updates persist in env.State. Exec never
// panics on data-dependent conditions: faults become Crashed outcomes,
// exactly the events the verifier proves unreachable.
//
// Exec allocates a fresh register file per call; hot loops (the
// dataplane runner) hold an Executor instead and reuse one.
func Exec(p *Program, env *ExecEnv) Outcome {
	e := Executor{p: p, regs: make([]bv.V, len(p.RegWidths))}
	return e.Run(env)
}

// Executor is a reusable concrete interpreter for one Program. The
// register file is allocated once and reset in place per run, so
// steady-state execution performs zero heap allocations — the
// interpreter-tier half of the dataplane's allocs-per-packet budget.
type Executor struct {
	p    *Program
	regs []bv.V
}

// NewExecutor prepares a reusable interpreter for p.
func NewExecutor(p *Program) *Executor {
	return &Executor{p: p, regs: make([]bv.V, len(p.RegWidths))}
}

// Run interprets the program once over env, exactly like Exec.
func (e *Executor) Run(env *ExecEnv) Outcome {
	for i, w := range e.p.RegWidths {
		e.regs[i] = bv.V{W: w} // == bv.New(w, 0)
	}
	x := interp{p: e.p, env: env, regs: e.regs}
	out := x.block(e.p.Body)
	out.Steps = x.steps
	return out
}

// interp is one concrete execution.
type interp struct {
	p     *Program
	env   *ExecEnv
	regs  []bv.V
	steps int64
}

// blockResult distinguishes fallthrough from the terminating outcomes.
type blockResult uint8

const (
	fellThrough blockResult = iota
	brokeLoop
	terminated
)

func (x *interp) block(body []Stmt) Outcome {
	out, res := x.runBlock(body)
	if res == terminated {
		return out
	}
	// Build verifies this cannot happen for well-formed programs.
	return Outcome{Disposition: Crashed, Crash: &CrashInfo{Kind: CrashAssert, Msg: "fell off program end"}}
}

func (x *interp) runBlock(body []Stmt) (Outcome, blockResult) {
	for _, s := range body {
		x.steps++
		switch st := s.(type) {
		case ConstStmt:
			x.regs[st.Dst] = st.Val
		case BinStmt:
			a, b := x.regs[st.A], x.regs[st.B]
			if st.Op == UDiv || st.Op == URem {
				if b.IsZero() {
					return x.crash(CrashDivZero, fmt.Sprintf("%s by zero in %s", st.Op, x.p.Name)), terminated
				}
			}
			x.regs[st.Dst] = concreteBin(st.Op, a, b)
		case NotStmt:
			x.regs[st.Dst] = bv.Not(x.regs[st.A])
		case CastStmt:
			w := x.p.RegWidth(st.Dst)
			switch st.Kind {
			case ZExt:
				x.regs[st.Dst] = bv.ZExt(x.regs[st.A], w)
			case SExt:
				x.regs[st.Dst] = bv.SExt(x.regs[st.A], w)
			case Trunc:
				x.regs[st.Dst] = bv.Trunc(x.regs[st.A], w)
			}
		case SelStmt:
			if x.regs[st.Cond].IsTrue() {
				x.regs[st.Dst] = x.regs[st.A]
			} else {
				x.regs[st.Dst] = x.regs[st.B]
			}
		case LoadPktStmt:
			off := x.regs[st.Off].Int()
			if off+uint64(st.N) > uint64(len(x.env.Pkt)) {
				return x.crash(CrashOOB, fmt.Sprintf("read [%d,%d) beyond %d-byte packet in %s",
					off, off+uint64(st.N), len(x.env.Pkt), x.p.Name)), terminated
			}
			var u uint64
			for i := 0; i < st.N; i++ {
				u = u<<8 | uint64(x.env.Pkt[off+uint64(i)])
			}
			x.regs[st.Dst] = bv.New(x.p.RegWidth(st.Dst), u)
		case StorePktStmt:
			off := x.regs[st.Off].Int()
			if off+uint64(st.N) > uint64(len(x.env.Pkt)) {
				return x.crash(CrashOOB, fmt.Sprintf("write [%d,%d) beyond %d-byte packet in %s",
					off, off+uint64(st.N), len(x.env.Pkt), x.p.Name)), terminated
			}
			v := x.regs[st.Src].Int()
			for i := 0; i < st.N; i++ {
				x.env.Pkt[off+uint64(i)] = byte(v >> uint(8*(st.N-1-i)))
			}
		case PktLenStmt:
			x.regs[st.Dst] = bv.New(32, uint64(len(x.env.Pkt)))
		case MetaLoadStmt:
			w := x.p.RegWidth(st.Dst)
			if v, ok := x.env.Meta[st.Slot]; ok {
				x.regs[st.Dst] = bv.New(w, v.U)
			} else {
				x.regs[st.Dst] = bv.New(w, 0)
			}
		case MetaStoreStmt:
			x.env.Meta[st.Slot] = x.regs[st.Src]
		case StateReadStmt:
			d, _ := x.p.StateDeclByName(st.Store)
			v := x.env.State.Read(d, x.regs[st.Key].Int())
			x.regs[st.Dst] = bv.New(d.ValW, v)
		case StateWriteStmt:
			d, _ := x.p.StateDeclByName(st.Store)
			x.env.State.Write(d, x.regs[st.Key].Int(), x.regs[st.Val].Int())
		case StaticLookupStmt:
			t, _ := x.p.TableByName(st.Table)
			v, _ := t.Lookup(x.regs[st.Key].Int())
			x.regs[st.Dst] = bv.New(t.ValW, v)
		case AssertStmt:
			if !x.regs[st.Cond].IsTrue() {
				return x.crash(CrashAssert, fmt.Sprintf("%s in %s", st.Msg, x.p.Name)), terminated
			}
		case IfStmt:
			var body []Stmt
			if x.regs[st.Cond].IsTrue() {
				body = st.Then
			} else {
				body = st.Else
			}
			if out, res := x.runBlock(body); res != fellThrough {
				return out, res
			}
		case LoopStmt:
			for i := 0; i < st.Bound; i++ {
				out, res := x.runBlock(st.Body)
				if res == terminated {
					return out, terminated
				}
				if res == brokeLoop {
					break
				}
				if i+1 < st.Bound {
					x.steps++ // back-edge cost, mirrors the symbolic count
				}
			}
		case BreakStmt:
			return Outcome{}, brokeLoop
		case EmitStmt:
			return Outcome{Disposition: Emitted, Port: st.Port}, terminated
		case DropStmt:
			return Outcome{Disposition: Dropped}, terminated
		default:
			panic(fmt.Sprintf("ir: unknown statement %T", s))
		}
	}
	return Outcome{}, fellThrough
}

func (x *interp) crash(kind CrashKind, msg string) Outcome {
	return Outcome{Disposition: Crashed, Crash: &CrashInfo{Kind: kind, Msg: msg}}
}

func concreteBin(op BinOp, a, b bv.V) bv.V {
	switch op {
	case Add:
		return bv.Add(a, b)
	case Sub:
		return bv.Sub(a, b)
	case Mul:
		return bv.Mul(a, b)
	case UDiv:
		return bv.UDiv(a, b)
	case URem:
		return bv.URem(a, b)
	case And:
		return bv.And(a, b)
	case Or:
		return bv.Or(a, b)
	case Xor:
		return bv.Xor(a, b)
	case Shl:
		return bv.Shl(a, b)
	case LShr:
		return bv.LShr(a, b)
	case AShr:
		return bv.AShr(a, b)
	case Eq:
		return bv.Eq(a, b)
	case Ne:
		return bv.Ne(a, b)
	case Ult:
		return bv.Ult(a, b)
	case Ule:
		return bv.Ule(a, b)
	case Slt:
		return bv.Slt(a, b)
	case Sle:
		return bv.Sle(a, b)
	}
	panic("ir: unknown binop")
}
