package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"vsd/internal/bv"
)

// buildFig1 constructs the paper's Fig. 1 toy program:
//
//	assert in >= 0; if in < 10 { out = 10 } else { out = in }; return out
//
// Input is read from metadata slot "in" (32-bit, signed semantics), the
// output goes to slot "out", and "return" is an emit on port 0.
func buildFig1(t testing.TB) *Program {
	t.Helper()
	b := NewBuilder("Fig1", 1, 1)
	in := b.MetaLoad("in", 32)
	zero := b.ConstU(32, 0)
	b.Assert(b.Bin(Sle, zero, in), "in >= 0")
	b.If(b.Bin(Slt, in, b.ConstU(32, 10)), func() {
		b.MetaStore("out", b.ConstU(32, 10))
	}, func() {
		b.MetaStore("out", in)
	})
	b.Emit(0)
	return b.MustBuild()
}

func run(t testing.TB, p *Program, pkt []byte, meta map[string]bv.V) (Outcome, *ExecEnv) {
	t.Helper()
	if meta == nil {
		meta = map[string]bv.V{}
	}
	env := &ExecEnv{Pkt: pkt, Meta: meta, State: NewState()}
	return Exec(p, env), env
}

func TestFig1Semantics(t *testing.T) {
	p := buildFig1(t)
	// in = 5 -> out = 10.
	out, env := run(t, p, nil, map[string]bv.V{"in": bv.New(32, 5)})
	if out.Disposition != Emitted || out.Port != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if got := env.Meta["out"]; got.U != 10 {
		t.Errorf("out = %v, want 10", got)
	}
	// in = 42 -> out = 42.
	out, env = run(t, p, nil, map[string]bv.V{"in": bv.New(32, 42)})
	if got := env.Meta["out"]; got.U != 42 {
		t.Errorf("out = %v, want 42", got)
	}
	// in = -1 -> crash (the paper's p1 path).
	out, _ = run(t, p, nil, map[string]bv.V{"in": bv.New(32, 0xffffffff)})
	if out.Disposition != Crashed || out.Crash.Kind != CrashAssert {
		t.Fatalf("negative input should crash with assert, got %+v", out)
	}
}

func TestFig1BoundedExecution(t *testing.T) {
	p := buildFig1(t)
	bound := p.MaxStmts()
	f := func(in uint32) bool {
		out, _ := run(t, p, nil, map[string]bv.V{"in": bv.New(32, uint64(in))})
		return out.Steps <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketAccessAndBounds(t *testing.T) {
	b := NewBuilder("ReadByte10", 1, 1)
	v := b.LoadPktC(10, 1)
	b.StorePkt(b.ConstU(32, 0), v, 1)
	b.Emit(0)
	p := b.MustBuild()

	pkt := make([]byte, 16)
	pkt[10] = 0x7a
	out, env := run(t, p, pkt, nil)
	if out.Disposition != Emitted {
		t.Fatalf("outcome = %+v", out)
	}
	if env.Pkt[0] != 0x7a {
		t.Errorf("pkt[0] = %#x, want 0x7a", env.Pkt[0])
	}
	// Too-short packet: out-of-bounds crash, not a panic.
	out, _ = run(t, p, make([]byte, 5), nil)
	if out.Disposition != Crashed || out.Crash.Kind != CrashOOB {
		t.Fatalf("short packet: %+v, want OOB crash", out)
	}
}

func TestWideLoadsAreBigEndian(t *testing.T) {
	b := NewBuilder("Load32", 1, 1)
	v := b.LoadPktC(2, 4)
	b.MetaStore("v", v)
	b.Emit(0)
	p := b.MustBuild()
	out, env := run(t, p, []byte{0, 0, 0x12, 0x34, 0x56, 0x78}, nil)
	if out.Disposition != Emitted {
		t.Fatalf("outcome = %+v", out)
	}
	if env.Meta["v"].U != 0x12345678 {
		t.Errorf("v = %#x, want 0x12345678", env.Meta["v"].U)
	}
}

func TestStoreWideRoundTrips(t *testing.T) {
	b := NewBuilder("RT", 1, 1)
	v := b.LoadPktC(0, 4)
	b.StorePkt(b.ConstU(32, 4), v, 4)
	b.Emit(0)
	p := b.MustBuild()
	f := func(a, bb, c, d byte) bool {
		pkt := []byte{a, bb, c, d, 0, 0, 0, 0}
		out, env := run(t, p, pkt, nil)
		return out.Disposition == Emitted &&
			env.Pkt[4] == a && env.Pkt[5] == bb && env.Pkt[6] == c && env.Pkt[7] == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroCrashes(t *testing.T) {
	b := NewBuilder("Div", 1, 1)
	x := b.LoadPktC(0, 1)
	y := b.LoadPktC(1, 1)
	b.MetaStore("q", b.Bin(UDiv, x, y))
	b.Emit(0)
	p := b.MustBuild()
	out, _ := run(t, p, []byte{8, 2}, nil)
	if out.Disposition != Emitted {
		t.Fatalf("8/2: %+v", out)
	}
	out, _ = run(t, p, []byte{8, 0}, nil)
	if out.Disposition != Crashed || out.Crash.Kind != CrashDivZero {
		t.Fatalf("8/0: %+v, want div-zero crash", out)
	}
}

func TestLoopWithBreakAndCarriedState(t *testing.T) {
	// Sum packet bytes 0..len-1 with a bounded loop, stopping at a 0xff
	// sentinel byte.
	b := NewBuilder("SumUntilFF", 1, 1)
	sum := b.Mov(b.ConstU(8, 0))
	idx := b.Mov(b.ConstU(32, 0))
	plen := b.PktLen()
	b.Loop(8, func() {
		atEnd := b.Bin(Ule, plen, idx)
		b.If(atEnd, func() { b.Break() }, nil)
		v := b.LoadPkt(idx, 1)
		isFF := b.BinC(Eq, v, 0xff)
		b.If(isFF, func() { b.Break() }, nil)
		b.SetReg(sum, b.Bin(Add, sum, v))
		b.SetReg(idx, b.BinC(Add, idx, 1))
	})
	b.MetaStore("sum", sum)
	b.Emit(0)
	p := b.MustBuild()

	out, env := run(t, p, []byte{1, 2, 3, 0xff, 9, 9, 9, 9}, nil)
	if out.Disposition != Emitted {
		t.Fatalf("outcome = %+v", out)
	}
	if env.Meta["sum"].U != 6 {
		t.Errorf("sum = %d, want 6", env.Meta["sum"].U)
	}
	// Loop bound caps iterations even without a sentinel.
	out, env = run(t, p, []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, nil)
	if out.Disposition != Emitted {
		t.Fatalf("outcome = %+v", out)
	}
	if env.Meta["sum"].U != 8 {
		t.Errorf("sum = %d, want 8 (bounded)", env.Meta["sum"].U)
	}
}

func TestStateStoreSemantics(t *testing.T) {
	b := NewBuilder("Counter", 1, 1)
	b.DeclareState(StateDecl{Name: "flows", KeyW: 32, ValW: 32, Default: 0, Capacity: 2})
	key := b.LoadPktC(0, 4)
	n := b.StateRead("flows", key)
	n1 := b.BinC(Add, n, 1)
	b.StateWrite("flows", key, n1)
	b.MetaStore("count", n1)
	b.Emit(0)
	p := b.MustBuild()

	env := &ExecEnv{Pkt: []byte{0, 0, 0, 1}, Meta: map[string]bv.V{}, State: NewState()}
	for i := 1; i <= 3; i++ {
		out := Exec(p, env)
		if out.Disposition != Emitted {
			t.Fatalf("outcome = %+v", out)
		}
		if env.Meta["count"].U != uint64(i) {
			t.Fatalf("count after %d packets = %d", i, env.Meta["count"].U)
		}
	}
	// A second flow fits capacity 2.
	env.Pkt = []byte{0, 0, 0, 2}
	Exec(p, env)
	if env.Meta["count"].U != 1 {
		t.Errorf("second flow count = %d, want 1", env.Meta["count"].U)
	}
	// A third flow exceeds capacity: the write is dropped, so the count
	// stays at default+1 on every packet.
	env.Pkt = []byte{0, 0, 0, 3}
	Exec(p, env)
	Exec(p, env)
	if env.Meta["count"].U != 1 {
		t.Errorf("over-capacity flow count = %d, want 1 (write dropped)", env.Meta["count"].U)
	}
}

func TestStaticTableLookup(t *testing.T) {
	table := &StaticTable{
		Name: "rt", KeyW: 32, ValW: 8,
		Entries: []RangeEntry{
			{Lo: 0x0a000000, Hi: 0x0affffff, Val: 1}, // 10.0.0.0/8
			{Lo: 0xc0a80000, Hi: 0xc0a8ffff, Val: 2}, // 192.168.0.0/16
		},
		Default: 0,
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("Route", 1, 3)
	b.DeclareTable(table)
	dst := b.LoadPktC(0, 4)
	port := b.StaticLookup("rt", dst)
	b.MetaStore("port", port)
	b.Emit(0)
	p := b.MustBuild()

	cases := []struct {
		ip   []byte
		want uint64
	}{
		{[]byte{10, 1, 2, 3}, 1},
		{[]byte{192, 168, 9, 9}, 2},
		{[]byte{8, 8, 8, 8}, 0},
	}
	for _, c := range cases {
		_, env := run(t, p, c.ip, nil)
		if env.Meta["port"].U != c.want {
			t.Errorf("route %v = %d, want %d", c.ip, env.Meta["port"].U, c.want)
		}
	}
}

func TestStaticTableValidateRejects(t *testing.T) {
	bad := []*StaticTable{
		{Name: "rev", KeyW: 32, ValW: 8, Entries: []RangeEntry{{Lo: 5, Hi: 3}}},
		{Name: "overlap", KeyW: 32, ValW: 8, Entries: []RangeEntry{{Lo: 0, Hi: 10, Val: 1}, {Lo: 10, Hi: 20, Val: 2}}},
		{Name: "wide", KeyW: 8, ValW: 8, Entries: []RangeEntry{{Lo: 0, Hi: 300}}},
		{Name: "bigval", KeyW: 8, ValW: 8, Entries: []RangeEntry{{Lo: 0, Hi: 1, Val: 300}}},
	}
	for _, tb := range bad {
		if err := tb.Validate(); err == nil {
			t.Errorf("table %s validated but should not", tb.Name)
		}
	}
}

func TestBuilderRejectsNonTerminatingProgram(t *testing.T) {
	b := NewBuilder("NoEnd", 1, 1)
	b.ConstU(8, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("program without Emit/Drop built successfully")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"width mismatch", func(b *Builder) { b.Bin(Add, b.ConstU(8, 1), b.ConstU(16, 1)) }},
		{"if non-bool", func(b *Builder) { b.If(b.ConstU(8, 1), func() {}, nil) }},
		{"emit bad port", func(b *Builder) { b.Emit(7) }},
		{"break outside loop", func(b *Builder) { b.Break() }},
		{"undeclared state", func(b *Builder) { b.StateRead("nope", b.ConstU(32, 0)) }},
		{"undeclared table", func(b *Builder) { b.StaticLookup("nope", b.ConstU(32, 0)) }},
		{"bad loop bound", func(b *Builder) { b.Loop(0, func() {}) }},
		{"meta width clash", func(b *Builder) { b.MetaLoad("m", 8); b.MetaLoad("m", 16) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f(NewBuilder("x", 1, 1))
		})
	}
}

func TestMaxStmtsAccountsForLoops(t *testing.T) {
	b := NewBuilder("L", 1, 1)
	b.Loop(10, func() {
		b.ConstU(8, 1)
		b.ConstU(8, 2)
	})
	b.Emit(0)
	p := b.MustBuild()
	// loop header 1 + 10*(1 + 2 stmts) + emit 1 = 32
	if got := p.MaxStmts(); got != 32 {
		t.Errorf("MaxStmts = %d, want 32", got)
	}
}

func TestStepsNeverExceedMaxStmts(t *testing.T) {
	p := buildFig1(t)
	b := NewBuilder("Loopy", 1, 1)
	idx := b.Mov(b.ConstU(32, 0))
	b.Loop(5, func() {
		v := b.LoadPkt(idx, 1)
		b.If(b.BinC(Eq, v, 0), func() { b.Break() }, nil)
		b.SetReg(idx, b.BinC(Add, idx, 1))
	})
	b.Drop()
	loopy := b.MustBuild()

	for _, prog := range []*Program{p, loopy} {
		f := func(b0, b1, b2, b3, b4 byte, in uint32) bool {
			out, _ := run(t, prog, []byte{b0, b1, b2, b3, b4},
				map[string]bv.V{"in": bv.New(32, uint64(in))})
			return out.Steps <= prog.MaxStmts()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", prog.Name, err)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := buildFig1(t)
	s := p.String()
	for _, want := range []string{"program Fig1", "assert", "if r", "emit 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}
