package ir

import (
	"testing"

	"vsd/internal/bv"
)

// fig1Variant builds the Fig. 1 program with a tweakable constant so
// tests can produce content-distinct programs that share everything
// else.
func fig1Variant(t testing.TB, threshold uint64) *Program {
	t.Helper()
	b := NewBuilder("Fig1", 1, 1)
	in := b.MetaLoad("in", 32)
	zero := b.ConstU(32, 0)
	b.Assert(b.Bin(Sle, zero, in), "in >= 0")
	b.If(b.Bin(Slt, in, b.ConstU(32, threshold)), func() {
		b.MetaStore("out", b.ConstU(32, 10))
	}, func() {
		b.MetaStore("out", in)
	})
	b.Emit(0)
	return b.MustBuild()
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fig1Variant(t, 10)
	b := fig1Variant(t, 10)
	if a == b {
		t.Fatal("want two distinct Program values")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical programs fingerprint differently: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	// Cached value is stable.
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
}

func TestFingerprintSeparatesContent(t *testing.T) {
	base := fig1Variant(t, 10)
	seen := map[Fingerprint]string{base.Fingerprint(): "base"}
	add := func(name string, p *Program) {
		fp := p.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
	// A changed constant inside the body.
	add("different-threshold", fig1Variant(t, 11))
	// Same body, different program name (crash messages embed it, so it
	// is part of the identity).
	b := NewBuilder("Other", 1, 1)
	in := b.MetaLoad("in", 32)
	zero := b.ConstU(32, 0)
	b.Assert(b.Bin(Sle, zero, in), "in >= 0")
	b.If(b.Bin(Slt, in, b.ConstU(32, 10)), func() {
		b.MetaStore("out", b.ConstU(32, 10))
	}, func() {
		b.MetaStore("out", in)
	})
	b.Emit(0)
	add("different-name", b.MustBuild())
	// Declarations matter even with an identical body.
	tbl := &StaticTable{Name: "t", KeyW: 8, ValW: 8, Entries: []RangeEntry{{Lo: 0, Hi: 1, Val: 2}}}
	withTable := fig1Variant(t, 10)
	withTable2 := &Program{
		Name: withTable.Name, NumIn: withTable.NumIn, NumOut: withTable.NumOut,
		RegWidths: withTable.RegWidths, Tables: []*StaticTable{tbl},
		Body: withTable.Body, MetaSlots: withTable.MetaSlots,
	}
	add("extra-table", withTable2)
	// A table entry's value participates.
	tbl2 := &StaticTable{Name: "t", KeyW: 8, ValW: 8, Entries: []RangeEntry{{Lo: 0, Hi: 1, Val: 3}}}
	withTable3 := &Program{
		Name: withTable.Name, NumIn: withTable.NumIn, NumOut: withTable.NumOut,
		RegWidths: withTable.RegWidths, Tables: []*StaticTable{tbl2},
		Body: withTable.Body, MetaSlots: withTable.MetaSlots,
	}
	add("different-table-value", withTable3)
}

// TestFingerprintNoFieldConcatCollision guards the length-prefixing:
// moving a byte between adjacent string fields must change the hash.
func TestFingerprintNoFieldConcatCollision(t *testing.T) {
	mk := func(store, msg string) *Program {
		b := NewBuilder("P", 1, 1)
		b.Assert(b.ConstU(1, 1), msg)
		_ = store
		b.Emit(0)
		return b.MustBuild()
	}
	a := mk("s", "ab")
	bb := mk("sa", "b")
	if a.Fingerprint() == bb.Fingerprint() {
		t.Error("adjacent string fields collide")
	}
}

func TestParseFingerprint(t *testing.T) {
	fp := fig1Variant(t, 10).Fingerprint()
	got, err := ParseFingerprint(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Errorf("round trip: %s != %s", got, fp)
	}
	if _, err := ParseFingerprint("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseFingerprint("abcd"); err == nil {
		t.Error("short fingerprint accepted")
	}
}

// TestFingerprintCoversEveryStatement fingerprints a program using every
// statement form, twice, and checks stability — a canary for a
// statement type missing from the switch (which would panic).
func TestFingerprintCoversEveryStatement(t *testing.T) {
	build := func() *Program {
		b := NewBuilder("All", 1, 2)
		b.DeclareState(StateDecl{Name: "st", KeyW: 32, ValW: 32})
		b.DeclareTable(&StaticTable{Name: "tbl", KeyW: 8, ValW: 8, Entries: []RangeEntry{{Lo: 0, Hi: 9, Val: 1}}})
		c := b.ConstU(32, 7)
		d := b.Bin(Add, c, c)
		n := b.Not(d)
		tr := b.Trunc(n, 8)
		z := b.ZExt(tr, 32)
		sx := b.SExt(tr, 32)
		sel := b.Select(b.Bin(Eq, z, sx), z, sx)
		ln := b.PktLen()
		_ = ln
		pv := b.LoadPktC(0, 1)
		b.StorePkt(b.ConstU(32, 1), pv, 1)
		m := b.MetaLoad("slot", 16)
		b.MetaStore("slot", m)
		sv := b.StateRead("st", sel)
		b.StateWrite("st", sel, sv)
		lk := b.StaticLookup("tbl", tr)
		_ = lk
		b.Assert(b.ConstU(1, 1), "ok")
		b.If(b.Bin(Ult, pv, b.ConstU(8, 10)), func() {
			b.Loop(3, func() { b.Break() })
			b.Emit(1)
		}, nil)
		b.Drop()
		return b.MustBuild()
	}
	if build().Fingerprint() != build().Fingerprint() {
		t.Error("full-coverage program not deterministic")
	}
}

func TestFingerprintWidthMatters(t *testing.T) {
	mk := func(w bv.Width) *Program {
		b := NewBuilder("W", 1, 1)
		b.MetaStore("out", b.ConstU(w, 1))
		b.Emit(0)
		return b.MustBuild()
	}
	if mk(16).Fingerprint() == mk(32).Fingerprint() {
		t.Error("constant width ignored by fingerprint")
	}
}
