// Package ir defines the element intermediate representation: the small
// imperative language in which every packet-processing element of this
// repository is written.
//
// The IR plays the role Click's C++ element code plays in the paper. It
// is executed twice, by two different engines over the same Program
// value:
//
//   - internal/dataplane interprets it concretely to forward real packets
//     (see Exec in interp.go);
//   - internal/symbex executes it symbolically to enumerate segments —
//     complete paths through one element — with their path constraints
//     and symbolic effects.
//
// Verifying the very artifact that forwards packets is the point of the
// paper, so the IR is deliberately restricted to the shapes the paper's
// pipeline structure permits:
//
//   - structured control flow only (If / Loop / Break, no goto), which is
//     what makes loop decomposition into "mini-elements" well-defined;
//   - packet access through bounds-checked loads and stores (an
//     out-of-bounds access is a crash, one of the verified properties);
//   - private state only through named key/value stores (StateRead /
//     StateWrite), the shape the paper's data-structure modeling needs;
//   - static state only through read-only range tables (StaticLookup),
//     matching the paper's observation that forwarding tables can be
//     compiled to pre-allocated array chains.
package ir

import (
	"fmt"
	"sort"
	"sync"

	"vsd/internal/bv"
)

// Stmt is a statement of the element IR. The concrete statement types
// below form a closed set; both interpreters switch exhaustively on it.
type Stmt interface{ stmt() }

// Reg names a register of a Program. Registers are typed (fixed width)
// mutable locals; they do not persist across packets.
type Reg int32

// NoReg is the absent-register sentinel.
const NoReg Reg = -1

// BinOp enumerates the binary operators of the IR. The set mirrors
// expr.Op so symbolic execution is a direct mapping.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	UDiv // implicit divide-by-zero crash check
	URem // implicit divide-by-zero crash check
	And
	Or
	Xor
	Shl
	LShr
	AShr
	Eq
	Ne
	Ult
	Ule
	Slt
	Sle
)

var binOpNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", UDiv: "udiv", URem: "urem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", LShr: "lshr", AShr: "ashr",
	Eq: "eq", Ne: "ne", Ult: "ult", Ule: "ule", Slt: "slt", Sle: "sle",
}

func (o BinOp) String() string { return binOpNames[o] }

// IsCompare reports whether o yields a 1-bit result.
func (o BinOp) IsCompare() bool { return o >= Eq }

// ---- statements ----

// ConstStmt sets Dst to a constant.
type ConstStmt struct {
	Dst Reg
	Val bv.V
}

// BinStmt sets Dst to Op(A, B). UDiv and URem crash on a zero divisor.
type BinStmt struct {
	Op   BinOp
	Dst  Reg
	A, B Reg
}

// NotStmt sets Dst to the bitwise complement of A.
type NotStmt struct{ Dst, A Reg }

// CastStmt converts A to Dst's width. Kind selects zero-extension,
// sign-extension, or truncation; the builder checks width compatibility.
type CastStmt struct {
	Kind CastKind
	Dst  Reg
	A    Reg
}

// CastKind selects the conversion of a CastStmt.
type CastKind uint8

// Cast kinds.
const (
	ZExt CastKind = iota
	SExt
	Trunc
)

// SelStmt sets Dst to A if Cond (1-bit) is true, else B.
type SelStmt struct {
	Dst  Reg
	Cond Reg
	A, B Reg
}

// LoadPktStmt reads N bytes (1, 2, or 4) at byte offset Off from the
// packet, big-endian, into Dst (width 8·N). Reading past the packet
// length is a crash (CrashOOB).
type LoadPktStmt struct {
	Dst Reg
	Off Reg // 32-bit byte offset
	N   int
}

// StorePktStmt writes the low 8·N bits of Src at byte offset Off,
// big-endian. Writing past the packet length is a crash (CrashOOB).
type StorePktStmt struct {
	Off Reg // 32-bit byte offset
	Src Reg
	N   int
}

// PktLenStmt sets Dst (32-bit) to the packet length in bytes.
type PktLenStmt struct{ Dst Reg }

// MetaLoadStmt reads the named metadata annotation into Dst. Annotation
// widths are fixed by convention (see packet.MetaWidth).
type MetaLoadStmt struct {
	Dst  Reg
	Slot string
}

// MetaStoreStmt writes Src to the named metadata annotation.
type MetaStoreStmt struct {
	Slot string
	Src  Reg
}

// StateReadStmt reads private state: Dst = store[Key], or the store's
// default value when the key is absent. Key and Dst widths are fixed
// per store (see StateDecl).
type StateReadStmt struct {
	Dst   Reg
	Store string
	Key   Reg
}

// StateWriteStmt writes private state: store[Key] = Val.
type StateWriteStmt struct {
	Store string
	Key   Reg
	Val   Reg
}

// StaticLookupStmt performs a read-only lookup in a named static range
// table: Dst = table value whose [Lo, Hi] key range contains Key, or the
// table default.
type StaticLookupStmt struct {
	Dst   Reg
	Table string
	Key   Reg
}

// AssertStmt crashes the element (CrashAssert) when Cond (1-bit) is
// false.
type AssertStmt struct {
	Cond Reg
	Msg  string
}

// IfStmt executes Then when Cond (1-bit) is true, else Else (which may
// be empty).
type IfStmt struct {
	Cond Reg
	Then []Stmt
	Else []Stmt
}

// LoopStmt executes Body up to Bound times. A BreakStmt in the body
// leaves the loop early. Bound must be a compile-time constant: packet
// processing code always has a static iteration bound (e.g. the maximum
// number of IP options), which is what makes the bounded-execution
// property meaningful.
type LoopStmt struct {
	Bound int
	Body  []Stmt
}

// BreakStmt exits the innermost enclosing loop.
type BreakStmt struct{}

// EmitStmt ends element execution, transferring packet ownership out of
// output port Port.
type EmitStmt struct{ Port int }

// DropStmt ends element execution, dropping the packet.
type DropStmt struct{}

func (ConstStmt) stmt()        {}
func (BinStmt) stmt()          {}
func (NotStmt) stmt()          {}
func (CastStmt) stmt()         {}
func (SelStmt) stmt()          {}
func (LoadPktStmt) stmt()      {}
func (StorePktStmt) stmt()     {}
func (PktLenStmt) stmt()       {}
func (MetaLoadStmt) stmt()     {}
func (MetaStoreStmt) stmt()    {}
func (StateReadStmt) stmt()    {}
func (StateWriteStmt) stmt()   {}
func (StaticLookupStmt) stmt() {}
func (AssertStmt) stmt()       {}
func (IfStmt) stmt()           {}
func (LoopStmt) stmt()         {}
func (BreakStmt) stmt()        {}
func (EmitStmt) stmt()         {}
func (DropStmt) stmt()         {}

// ---- declarations ----

// StateDecl declares a private key/value store.
type StateDecl struct {
	Name    string
	KeyW    bv.Width
	ValW    bv.Width
	Default uint64 // value returned for absent keys
	// Capacity bounds the number of live keys; a write that would
	// exceed it behaves per the element's code (stores are
	// pre-allocated in real dataplanes). 0 means unbounded.
	Capacity int
}

// RangeEntry is one [Lo, Hi] -> Val row of a static table.
type RangeEntry struct {
	Lo, Hi uint64
	Val    uint64
}

// StaticTable is an immutable range-compressed lookup table: the static
// state of the paper (forwarding tables, filter tables). Entries must be
// sorted and disjoint; Lookup returns Default when no range contains the
// key. Range compression is what keeps symbolic lookups tractable — a
// symbolic key forks one path per range, not one per table entry.
type StaticTable struct {
	Name    string
	KeyW    bv.Width
	ValW    bv.Width
	Entries []RangeEntry
	Default uint64
}

// Lookup returns the value for key and whether a range matched.
func (t *StaticTable) Lookup(key uint64) (uint64, bool) {
	lo, hi := 0, len(t.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		e := t.Entries[mid]
		switch {
		case key < e.Lo:
			hi = mid
		case key > e.Hi:
			lo = mid + 1
		default:
			return e.Val, true
		}
	}
	return t.Default, false
}

// Validate checks that entries are sorted, disjoint, and within the key
// width.
func (t *StaticTable) Validate() error {
	mask := t.KeyW.Mask()
	var prevHi uint64
	for i, e := range t.Entries {
		if e.Lo > e.Hi {
			return fmt.Errorf("table %s: entry %d has Lo > Hi", t.Name, i)
		}
		if e.Hi > mask {
			return fmt.Errorf("table %s: entry %d exceeds key width", t.Name, i)
		}
		if e.Val > t.ValW.Mask() {
			return fmt.Errorf("table %s: entry %d value exceeds value width", t.Name, i)
		}
		if i > 0 && e.Lo <= prevHi {
			return fmt.Errorf("table %s: entry %d overlaps or is unsorted", t.Name, i)
		}
		prevHi = e.Hi
	}
	return nil
}

// Program is a complete element body: a register file, declarations, and
// a statement list. Programs are immutable after Build and are always
// handled by pointer (the cached fingerprint below must not be copied).
type Program struct {
	Name      string
	NumIn     int // input ports (for documentation; the body is per-packet)
	NumOut    int // output ports; Emit must stay below this
	RegWidths []bv.Width
	States    []StateDecl
	Tables    []*StaticTable
	Body      []Stmt
	MetaSlots map[string]bv.Width // metadata annotations referenced

	// fp caches Fingerprint(); see fingerprint.go.
	fpOnce sync.Once
	fp     Fingerprint
}

// RegWidth returns the declared width of r.
func (p *Program) RegWidth(r Reg) bv.Width { return p.RegWidths[r] }

// StateDeclByName returns the declaration of the named store.
func (p *Program) StateDeclByName(name string) (StateDecl, bool) {
	for _, s := range p.States {
		if s.Name == name {
			return s, true
		}
	}
	return StateDecl{}, false
}

// TableByName returns the named static table.
func (p *Program) TableByName(name string) (*StaticTable, bool) {
	for _, t := range p.Tables {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// ---- compile-oriented accessors ----
//
// The bytecode compiler (internal/dataplane/compile) resolves every
// name-keyed reference of the IR — state stores, static tables,
// metadata slots — to a dense integer index at compile time, so the VM
// never performs a string lookup on the hot path. The accessors below
// define those bindings once, here, so the compiler and any future
// backend agree on the numbering: state and table indices are the
// declaration order (the order symbolic execution and the fingerprint
// serialize them in), and metadata slots are sorted by name.

// StateIndex returns the declaration-order index of the named store, or
// -1 when the program declares no such store. The index is stable: it
// is the position in p.States, the same order Fingerprint hashes.
func (p *Program) StateIndex(name string) int {
	for i, s := range p.States {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// TableIndex returns the declaration-order index of the named static
// table, or -1 when the program declares no such table.
func (p *Program) TableIndex(name string) int {
	for i, t := range p.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// SortedMetaSlots returns the metadata slot names the program
// references, sorted. Sorting makes slot numbering deterministic for
// any consumer that assigns indices by iteration order.
func (p *Program) SortedMetaSlots() []string {
	out := make([]string, 0, len(p.MetaSlots))
	for s := range p.MetaSlots {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NumLoops returns the number of static LoopStmt nodes in the body. The
// compiler allocates one hidden iteration-counter register per loop.
func (p *Program) NumLoops() int { return countLoops(p.Body) }

func countLoops(body []Stmt) int {
	n := 0
	for _, s := range body {
		switch st := s.(type) {
		case IfStmt:
			n += countLoops(st.Then) + countLoops(st.Else)
		case LoopStmt:
			n += 1 + countLoops(st.Body)
		}
	}
	return n
}

// MaxStmts returns an upper bound on the number of dynamic statements a
// single execution of the program can perform, with loops fully
// expanded. It is finite by construction (static loop bounds) — the
// structural guarantee behind the bounded-execution property.
func (p *Program) MaxStmts() int64 { return maxStmts(p.Body) }

func maxStmts(body []Stmt) int64 {
	var n int64
	for _, s := range body {
		switch st := s.(type) {
		case IfStmt:
			t, e := maxStmts(st.Then), maxStmts(st.Else)
			if e > t {
				t = e
			}
			n += 1 + t
		case LoopStmt:
			n += 1 + int64(st.Bound)*(1+maxStmts(st.Body))
		default:
			n++
		}
	}
	return n
}
