package click

import (
	"strings"
	"testing"

	"vsd/internal/bv"
	"vsd/internal/ir"
)

// testRegistry builds a tiny registry with synthetic classes so the
// click package tests do not depend on the real element library (which
// lives above it).
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Register("Src", func(cfg string) (*ir.Program, error) {
		b := ir.NewBuilder("Src", 0, 1)
		b.Emit(0)
		return b.Build()
	})
	reg.Register("Sink", func(cfg string) (*ir.Program, error) {
		b := ir.NewBuilder("Sink", 1, 0)
		b.Drop()
		return b.Build()
	})
	// Fan(N): dispatch on pkt[0] % N.
	reg.Register("Fan", func(cfg string) (*ir.Program, error) {
		n := 2
		if cfg == "3" {
			n = 3
		}
		b := ir.NewBuilder("Fan", 1, n)
		v := b.LoadPktC(0, 1)
		m := b.BinC(ir.URem, v, uint64(n))
		for i := 0; i < n; i++ {
			b.If(b.BinC(ir.Eq, m, uint64(i)), func() { b.Emit(i) }, nil)
		}
		b.Drop()
		return b.Build()
	})
	// Inc: increment pkt[1].
	reg.Register("Inc", func(cfg string) (*ir.Program, error) {
		b := ir.NewBuilder("Inc", 1, 1)
		off := b.ConstU(32, 1)
		v := b.LoadPkt(off, 1)
		b.StorePkt(off, b.BinC(ir.Add, v, 1), 1)
		b.Emit(0)
		return b.Build()
	})
	return reg
}

func TestParseDeclarationsAndChains(t *testing.T) {
	reg := testRegistry(t)
	p, err := Parse(reg, `
		// a pipeline with declarations, a chain, and port selectors
		src :: Src;
		f :: Fan(3);
		sink :: Sink;
		src -> f;
		f [0] -> Inc -> sink;
		f [1] -> Inc;   /* anonymous, leaves the pipeline */
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Elements) != 5 {
		t.Fatalf("got %d elements, want 5: %s", len(p.Elements), p)
	}
	if p.Elements[p.Entry].Class() != "Src" {
		t.Errorf("entry = %s, want the source", p.Elements[p.Entry].Name())
	}
	// f[2] and the second Inc's output are unconnected -> 2 egresses,
	// plus none from sink (0 outputs).
	if p.NumEgress() != 2 {
		t.Errorf("NumEgress = %d, want 2: %s", p.NumEgress(), p)
	}
}

func TestParseErrors(t *testing.T) {
	reg := testRegistry(t)
	cases := []struct {
		name, src string
	}{
		{"unknown class", "x :: Bogus;"},
		{"unknown element", "Src -> nothere;"},
		{"duplicate name", "a :: Src; a :: Sink;"},
		{"double connect", "s :: Src; a :: Sink; b :: Sink; s -> a; s -> b;"},
		{"bad port syntax", "s :: Src; s [x] -> Sink;"},
		{"port out of range", "s :: Src; s [4] -> Sink;"},
		{"unterminated comment", "/* oops"},
		{"unbalanced parens", "x :: Fan(3;"},
		{"stray character", "x :: Src; !"},
		{"cycle", "a :: Inc; b :: Inc; a -> b; b -> a;"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(reg, c.src); err == nil {
				t.Errorf("%s parsed without error", c.name)
			}
		})
	}
}

func TestBuildRejectsMultipleEntries(t *testing.T) {
	reg := testRegistry(t)
	_, err := Parse(reg, "a :: Src; b :: Src; k :: Sink; a -> k;")
	if err == nil || !strings.Contains(err.Error(), "multiple entry") {
		t.Fatalf("err = %v, want multiple-entry complaint", err)
	}
}

func TestPathsEnumeration(t *testing.T) {
	reg := testRegistry(t)
	p, err := Parse(reg, `
		src :: Src;
		f :: Fan(3);
		src -> f;
		f[0] -> i1 :: Inc;
		f[1] -> i2 :: Inc;
		// f[2], i1, i2 outputs are egresses
	`)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := p.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	seen := map[int]bool{}
	for _, path := range paths {
		if path.Elems[0] != p.Entry {
			t.Errorf("path does not start at entry: %v", path)
		}
		seen[path.Egress] = true
	}
	if len(seen) != 3 {
		t.Errorf("paths reach %d distinct egresses, want 3", len(seen))
	}
	if _, err := p.Paths(2); err == nil {
		t.Error("path limit not enforced")
	}
}

func TestSummaryKeySharing(t *testing.T) {
	reg := testRegistry(t)
	a, _ := reg.Make("a", "Fan", "3")
	b, _ := reg.Make("b", "Fan", "3")
	c, _ := reg.Make("c", "Fan", "")
	if a.SummaryKey() != b.SummaryKey() {
		t.Error("same class+config must share a summary key")
	}
	if a.SummaryKey() == c.SummaryKey() {
		t.Error("different configs must not share a summary key")
	}
}

// TestSummaryKeyIsContentAddressed is the stale-summary regression: two
// registries binding the same class name and config to DIFFERENT
// programs must not alias each other's Step-1 summaries. The old
// class+config string key could not tell them apart; the program
// fingerprint can.
func TestSummaryKeyIsContentAddressed(t *testing.T) {
	progA := mustProg(t, "Probe", func(b *ir.Builder) {
		b.MetaStore("tag", b.ConstU(8, 1))
		b.Emit(0)
	})
	progB := mustProg(t, "Probe", func(b *ir.Builder) {
		b.MetaStore("tag", b.ConstU(8, 2)) // same name+cfg, different code
		b.Emit(0)
	})
	a := NewInstance("a", "Probe", "", progA)
	b := NewInstance("b", "Probe", "", progB)
	if a.Class() != b.Class() || a.Config() != b.Config() {
		t.Fatal("test setup: class/config must collide")
	}
	if a.SummaryKey() == b.SummaryKey() {
		t.Error("different programs under one class name share a summary key — stale summaries")
	}
	// And the converse: content-identical programs share the key even
	// under different class names.
	c := NewInstance("c", "Renamed", "x", mustProg(t, "Probe", func(b *ir.Builder) {
		b.MetaStore("tag", b.ConstU(8, 1))
		b.Emit(0)
	}))
	if a.SummaryKey() != c.SummaryKey() {
		t.Error("content-identical programs must share a summary key")
	}
}

func mustProg(t *testing.T, name string, body func(b *ir.Builder)) *ir.Program {
	t.Helper()
	b := ir.NewBuilder(name, 1, 1)
	body(b)
	return b.MustBuild()
}

func TestPipelineFingerprint(t *testing.T) {
	reg := testRegistry(t)
	parse := func(src string) *Pipeline {
		p, err := Parse(reg, src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := parse("s :: Src; s -> Inc -> Sink;")
	b := parse("s :: Src; s -> Inc -> Sink;")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical pipelines fingerprint differently")
	}
	// Topology matters.
	c := parse("s :: Src; s -> Inc -> Inc -> Sink;")
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different topologies share a fingerprint")
	}
	// Instance names matter (they appear in witness paths).
	d := parse("t :: Src; t -> Inc -> Sink;")
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("renamed instances share a fingerprint")
	}
}

// TestInlineMatchesRunner is the inliner's correctness property: for
// every packet, interpreting the inlined whole-pipeline program gives
// the same disposition, egress, packet bytes, and statement count as
// walking the pipeline element by element.
func TestInlineMatchesRunner(t *testing.T) {
	reg := testRegistry(t)
	p, err := Parse(reg, `
		src :: Src;
		f :: Fan(3);
		src -> f;
		f[0] -> Inc -> Inc -> s1 :: Sink;
		f[1] -> Inc;
		// f[2] egress
	`)
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := Inline(p)
	if err != nil {
		t.Fatal(err)
	}
	for b0 := 0; b0 < 6; b0++ {
		pkt := []byte{byte(b0), 10, 0, 0}

		// Element-by-element walk.
		wantSteps := int64(0)
		wantPkt := append([]byte{}, pkt...)
		meta := map[string]bv.V{}
		elem := p.Entry
		var wantDisp ir.Disposition
		wantEgress := -1
		for {
			env := &ir.ExecEnv{Pkt: wantPkt, Meta: meta, State: ir.NewState()}
			out := ir.Exec(p.Elements[elem].Program(), env)
			wantSteps += out.Steps
			wantPkt = env.Pkt
			if out.Disposition != ir.Emitted {
				wantDisp = out.Disposition
				break
			}
			edge := p.Edges[elem][out.Port]
			if edge.To < 0 {
				wantDisp = ir.Emitted
				wantEgress = p.EgressID(elem, out.Port)
				break
			}
			elem = edge.To
		}

		// Inlined execution.
		env := &ir.ExecEnv{Pkt: append([]byte{}, pkt...), Meta: map[string]bv.V{}, State: ir.NewState()}
		got := ir.Exec(inlined, env)
		if got.Disposition != wantDisp {
			t.Fatalf("pkt[0]=%d: inlined %v, walk %v", b0, got.Disposition, wantDisp)
		}
		if wantDisp == ir.Emitted && got.Port != wantEgress {
			t.Fatalf("pkt[0]=%d: inlined egress %d, walk %d", b0, got.Port, wantEgress)
		}
		if got.Steps != wantSteps {
			t.Fatalf("pkt[0]=%d: inlined steps %d, walk %d", b0, got.Steps, wantSteps)
		}
		for i := range pkt {
			if env.Pkt[i] != wantPkt[i] {
				t.Fatalf("pkt[0]=%d: byte %d differs: %d vs %d", b0, i, env.Pkt[i], wantPkt[i])
			}
		}
	}
}

func TestInlineNamespacesState(t *testing.T) {
	reg := testRegistry(t)
	reg.Register("Count", func(cfg string) (*ir.Program, error) {
		b := ir.NewBuilder("Count", 1, 1)
		b.DeclareState(ir.StateDecl{Name: "n", KeyW: 8, ValW: 32})
		k := b.ConstU(8, 0)
		v := b.StateRead("n", k)
		b.StateWrite("n", k, b.BinC(ir.Add, v, 1))
		b.Emit(0)
		return b.Build()
	})
	p, err := Parse(reg, "s :: Src; s -> c1 :: Count -> c2 :: Count;")
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := Inline(p)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range inlined.States {
		names[d.Name] = true
	}
	if !names["c1.n"] || !names["c2.n"] {
		t.Errorf("state stores not namespaced: %v", names)
	}
	// Both counters tick independently.
	env := &ir.ExecEnv{Pkt: make([]byte, 4), Meta: map[string]bv.V{}, State: ir.NewState()}
	ir.Exec(inlined, env)
	ir.Exec(inlined, env)
	if env.State["c1.n"][0] != 2 || env.State["c2.n"][0] != 2 {
		t.Errorf("counts = %v", env.State)
	}
}

func TestPipelineString(t *testing.T) {
	reg := testRegistry(t)
	p, err := Parse(reg, "s :: Src; s -> k :: Sink;")
	if err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if !strings.Contains(out, "s :: Src") || !strings.Contains(out, "k :: Sink") {
		t.Errorf("String() = %q", out)
	}
}
