// Package click implements the pipeline framework: a Click-style
// directed graph of packet-processing elements, a parser for a subset of
// the Click configuration language (parse.go), and the program
// transformations the verifier needs — path enumeration for
// compositional verification and whole-pipeline inlining for the
// monolithic baseline (inline.go).
//
// The paper's pipeline structure rules are enforced here: elements
// exchange only packet state (the packet buffer and its metadata
// annotations, handed off port-to-port), private state never leaves an
// element (state stores are namespaced per instance), and static state
// is read-only by construction (ir.StaticTable). Build additionally
// validates that ports are in range, each output port is connected at
// most once, the entry element is unique, and the graph is acyclic.
//
// Instance.SummaryKey is the contract with the verifier's Step-1 cache
// and the persistent summary store (DESIGN.md §3, §7): it is the
// compiled program's content fingerprint, so instances with identical
// element code share summaries — the paper's "we process each element
// once, even if it may be called from different points in the
// pipeline" — while same-named classes from different registries can
// never alias each other's. Pipeline.Fingerprint lifts the identity to
// whole configurations for batch-admission deduplication.
package click
