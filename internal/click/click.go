package click

import (
	"fmt"
	"sort"
	"strings"

	"vsd/internal/ir"
)

// Instance is one element in a pipeline: a named instantiation of an
// element class with its configuration compiled to an ir.Program.
type Instance struct {
	name  string
	class string
	cfg   string
	prog  *ir.Program
}

// NewInstance wraps a compiled program as a pipeline element.
func NewInstance(name, class, cfg string, prog *ir.Program) *Instance {
	return &Instance{name: name, class: class, cfg: cfg, prog: prog}
}

// Name returns the instance name (unique within a pipeline).
func (e *Instance) Name() string { return e.name }

// Class returns the element class name.
func (e *Instance) Class() string { return e.class }

// Config returns the raw configuration string.
func (e *Instance) Config() string { return e.cfg }

// Program returns the element body.
func (e *Instance) Program() *ir.Program { return e.prog }

// SummaryKey identifies the Step-1 summary this element can share:
// instances with content-identical programs have interchangeable segment
// summaries. This is the paper's "we process each element once, even if
// it may be called from different points in the pipeline". The key is
// the compiled program's content fingerprint, not the class+config
// string: two registries (or a re-registered class) binding the same
// name to different element code can never alias each other's
// summaries, and identical programs registered under different names
// still share one.
func (e *Instance) SummaryKey() ir.Fingerprint { return e.prog.Fingerprint() }

// Constructor builds an element program from a configuration string.
type Constructor func(cfg string) (*ir.Program, error)

// Registry maps element class names to constructors.
type Registry struct {
	classes map[string]Constructor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{classes: map[string]Constructor{}} }

// Register adds a class; it panics on duplicates (registration happens
// at init time).
func (r *Registry) Register(class string, c Constructor) {
	if _, dup := r.classes[class]; dup {
		panic(fmt.Sprintf("click: duplicate element class %q", class))
	}
	r.classes[class] = c
}

// Classes returns the sorted registered class names.
func (r *Registry) Classes() []string {
	out := make([]string, 0, len(r.classes))
	for c := range r.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Make instantiates class with the given configuration.
func (r *Registry) Make(name, class, cfg string) (*Instance, error) {
	c, ok := r.classes[class]
	if !ok {
		return nil, fmt.Errorf("click: unknown element class %q", class)
	}
	prog, err := c(cfg)
	if err != nil {
		return nil, fmt.Errorf("click: %s :: %s(%s): %w", name, class, cfg, err)
	}
	return &Instance{name: name, class: class, cfg: cfg, prog: prog}, nil
}

// Fingerprint returns a deterministic content hash of the whole
// pipeline: every element's program fingerprint and instance name plus
// the topology. Two pipelines share a fingerprint iff verification
// would produce identical reports (instance names appear in witness
// paths, so they are part of the identity). Batch admission uses this
// to deduplicate resubmitted configurations.
func (p *Pipeline) Fingerprint() ir.Fingerprint {
	h := ir.NewHasher("vsd/click/v1")
	h.U64(uint64(len(p.Elements)))
	for _, e := range p.Elements {
		h.Str(e.Name())
		h.Fingerprint(e.Program().Fingerprint())
	}
	h.U64(uint64(p.Entry))
	for _, edges := range p.Edges {
		h.U64(uint64(len(edges)))
		for _, edge := range edges {
			h.U64(uint64(int64(edge.To) + 1))
			h.U64(uint64(edge.ToPort))
		}
	}
	return h.Sum()
}

// Edge connects an output port to an element's input port.
type Edge struct {
	To     int // downstream element index, -1 when unconnected (egress)
	ToPort int // downstream input port
}

// Pipeline is a validated element DAG.
type Pipeline struct {
	Elements []*Instance
	// Edges[i][p] is the connection of element i's output port p.
	Edges [][]Edge
	// Entry is the index of the unique element with no incoming edges.
	Entry int
	// egress assigns a stable id to every unconnected output port.
	egress map[[2]int]int
	// egrNames caches the rendered name per egress id; the dataplane
	// reads it per packet, so it must not format on demand.
	egrNames []string
	nEgr     int
}

// NewPipeline builds and validates a pipeline. Connections are given as
// (from, fromPort, to, toPort) tuples.
type Connection struct {
	From, FromPort, To, ToPort int
}

// Build assembles a pipeline from elements and connections, validating
// the paper's structural rules: ports in range, each output port
// connected at most once, a unique entry element, and acyclicity.
func Build(elements []*Instance, conns []Connection) (*Pipeline, error) {
	names := map[string]bool{}
	for _, e := range elements {
		if names[e.Name()] {
			return nil, fmt.Errorf("click: duplicate element name %q", e.Name())
		}
		names[e.Name()] = true
	}
	p := &Pipeline{Elements: elements, Edges: make([][]Edge, len(elements))}
	for i, e := range elements {
		p.Edges[i] = make([]Edge, e.Program().NumOut)
		for j := range p.Edges[i] {
			p.Edges[i][j] = Edge{To: -1}
		}
	}
	hasIncoming := make([]bool, len(elements))
	for _, c := range conns {
		if c.From < 0 || c.From >= len(elements) || c.To < 0 || c.To >= len(elements) {
			return nil, fmt.Errorf("click: connection references unknown element (%d -> %d)", c.From, c.To)
		}
		fe, te := elements[c.From], elements[c.To]
		if c.FromPort < 0 || c.FromPort >= fe.Program().NumOut {
			return nil, fmt.Errorf("click: %s has no output port %d", fe.Name(), c.FromPort)
		}
		if c.ToPort < 0 || c.ToPort >= te.Program().NumIn {
			return nil, fmt.Errorf("click: %s has no input port %d", te.Name(), c.ToPort)
		}
		if p.Edges[c.From][c.FromPort].To != -1 {
			return nil, fmt.Errorf("click: output port %s[%d] connected twice", fe.Name(), c.FromPort)
		}
		p.Edges[c.From][c.FromPort] = Edge{To: c.To, ToPort: c.ToPort}
		hasIncoming[c.To] = true
	}
	// Unique entry.
	entry := -1
	for i := range elements {
		if !hasIncoming[i] {
			if entry != -1 {
				return nil, fmt.Errorf("click: multiple entry elements (%s and %s)",
					elements[entry].Name(), elements[i].Name())
			}
			entry = i
		}
	}
	if entry == -1 {
		return nil, fmt.Errorf("click: no entry element (cycle spans the whole graph)")
	}
	p.Entry = entry
	if err := p.checkAcyclic(); err != nil {
		return nil, err
	}
	p.numberEgress()
	return p, nil
}

func (p *Pipeline) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(p.Elements))
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = gray
		for _, e := range p.Edges[i] {
			if e.To < 0 {
				continue
			}
			switch color[e.To] {
			case gray:
				return fmt.Errorf("click: cycle through %s", p.Elements[e.To].Name())
			case white:
				if err := visit(e.To); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := range p.Elements {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Pipeline) numberEgress() {
	p.egress = map[[2]int]int{}
	for i := range p.Elements {
		for port, e := range p.Edges[i] {
			if e.To < 0 {
				p.egress[[2]int{i, port}] = p.nEgr
				p.egrNames = append(p.egrNames, fmt.Sprintf("%s[%d]", p.Elements[i].Name(), port))
				p.nEgr++
			}
		}
	}
}

// NumEgress returns the number of pipeline egress points (unconnected
// output ports).
func (p *Pipeline) NumEgress() int { return p.nEgr }

// EgressID returns the egress id of element elem's output port, or -1
// if that port is connected.
func (p *Pipeline) EgressID(elem, port int) int {
	if id, ok := p.egress[[2]int{elem, port}]; ok {
		return id
	}
	return -1
}

// EgressName renders an egress id for reports ("rt[2]").
func (p *Pipeline) EgressName(id int) string {
	if id >= 0 && id < len(p.egrNames) {
		return p.egrNames[id]
	}
	return fmt.Sprintf("egress%d", id)
}

// Path is one element-level path through the pipeline: the sequence of
// elements a packet traverses and the output port taken at each.
type Path struct {
	Elems  []int // element indices, starting at Entry
	Ports  []int // output port taken at each element
	Egress int   // pipeline egress id reached
}

// String renders the path for reports.
func (p *Pipeline) PathString(path Path) string {
	var b strings.Builder
	for i, e := range path.Elems {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s[%d]", p.Elements[e].Name(), path.Ports[i])
	}
	return b.String()
}

// Paths enumerates every element-level path from the entry to an egress.
// The count is exponential in branching depth, but pipeline graphs are
// shallow; limit guards against misuse (0 means no limit).
func (p *Pipeline) Paths(limit int) ([]Path, error) {
	var out []Path
	var walk func(elem int, elems, ports []int) error
	walk = func(elem int, elems, ports []int) error {
		elems = append(elems, elem)
		for port, e := range p.Edges[elem] {
			ports2 := append(append([]int{}, ports...), port)
			if e.To < 0 {
				out = append(out, Path{
					Elems:  append([]int{}, elems...),
					Ports:  ports2,
					Egress: p.EgressID(elem, port),
				})
				if limit > 0 && len(out) > limit {
					return fmt.Errorf("click: more than %d pipeline paths", limit)
				}
				continue
			}
			if err := walk(e.To, elems, ports2); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(p.Entry, nil, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the pipeline topology.
func (p *Pipeline) String() string {
	var b strings.Builder
	for i, e := range p.Elements {
		fmt.Fprintf(&b, "%s :: %s(%s)", e.Name(), e.Class(), e.Config())
		for port, edge := range p.Edges[i] {
			if edge.To >= 0 {
				fmt.Fprintf(&b, "  [%d]->[%d]%s", port, edge.ToPort, p.Elements[edge.To].Name())
			} else {
				fmt.Fprintf(&b, "  [%d]->egress%d", port, p.EgressID(i, port))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
