package click

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a subset of the Click configuration language and builds a
// validated pipeline using the registry for element construction.
//
// Supported syntax:
//
//	// line comments and /* block comments */
//	name :: Class(arg, arg);           // declaration
//	name :: Class;                     // declaration, empty config
//	a -> b -> c;                       // connection chains (port 0)
//	a [1] -> b;  a -> [0] b;           // output/input port selectors
//	a -> Class(arg) -> b;              // anonymous elements in chains
//
// This covers the pipelines of the paper's evaluation (the default Click
// IP-router configuration and variants).
func Parse(reg *Registry, src string) (*Pipeline, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{reg: reg, toks: toks, index: map[string]int{}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return Build(p.elements, p.conns)
}

type tokKind uint8

const (
	tokIdent  tokKind = iota
	tokArrow          // ->
	tokColons         // ::
	tokSemi           // ;
	tokLBracket
	tokRBracket
	tokNumber
	tokConfig // parenthesized raw configuration text
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("click: line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tokArrow, "->", line})
			i += 2
		case c == ':' && i+1 < len(src) && src[i+1] == ':':
			toks = append(toks, token{tokColons, "::", line})
			i += 2
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", line})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", line})
			i++
		case c == '(':
			// Raw configuration text up to the matching parenthesis.
			depth := 1
			j := i + 1
			for j < len(src) && depth > 0 {
				switch src[j] {
				case '(':
					depth++
				case ')':
					depth--
				case '\n':
					line++
				}
				j++
			}
			if depth != 0 {
				return nil, fmt.Errorf("click: line %d: unbalanced parentheses", line)
			}
			toks = append(toks, token{tokConfig, strings.TrimSpace(src[i+1 : j-1]), line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("click: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' || r == '@' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '@'
}

type parser struct {
	reg      *Registry
	toks     []token
	pos      int
	elements []*Instance
	conns    []Connection
	index    map[string]int // name -> element index
	anon     int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("click: line %d: "+format, append([]any{p.cur().line}, args...)...)
}

func (p *parser) run() error {
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokSemi {
			p.next()
			continue
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

// statement parses either a declaration (name :: Class(cfg)) or a
// connection chain.
func (p *parser) statement() error {
	// Lookahead for "ident ::".
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokColons {
		name := p.next().text
		p.next() // ::
		if p.cur().kind != tokIdent {
			return p.errf("expected class name after ::")
		}
		class := p.next().text
		cfg := ""
		if p.cur().kind == tokConfig {
			cfg = p.next().text
		}
		if _, dup := p.index[name]; dup {
			return p.errf("duplicate element %q", name)
		}
		inst, err := p.reg.Make(name, class, cfg)
		if err != nil {
			return err
		}
		p.index[name] = len(p.elements)
		p.elements = append(p.elements, inst)
		// A declaration may start a chain: "a :: C(x) -> b;".
		if p.cur().kind == tokArrow {
			return p.chainFrom(p.index[name])
		}
		return p.expectSemi()
	}
	// Connection chain starting with an element reference.
	from, err := p.elementRef()
	if err != nil {
		return err
	}
	return p.chainFrom(from)
}

func (p *parser) expectSemi() error {
	if p.cur().kind != tokSemi && p.cur().kind != tokEOF {
		return p.errf("expected ';', got %q", p.cur().text)
	}
	if p.cur().kind == tokSemi {
		p.next()
	}
	return nil
}

// elementRef parses a reference to an existing element by name, an
// inline declaration "name :: Class(cfg)", or an anonymous
// instantiation Class(cfg), returning the element index.
func (p *parser) elementRef() (int, error) {
	if p.cur().kind != tokIdent {
		return 0, p.errf("expected element name or class, got %q", p.cur().text)
	}
	name := p.next().text
	if p.cur().kind == tokColons {
		// Inline declaration inside a chain: "-> s :: Sink ->".
		p.next()
		if p.cur().kind != tokIdent {
			return 0, p.errf("expected class name after ::")
		}
		class := p.next().text
		cfg := ""
		if p.cur().kind == tokConfig {
			cfg = p.next().text
		}
		if _, dup := p.index[name]; dup {
			return 0, p.errf("duplicate element %q", name)
		}
		inst, err := p.reg.Make(name, class, cfg)
		if err != nil {
			return 0, err
		}
		p.index[name] = len(p.elements)
		p.elements = append(p.elements, inst)
		return p.index[name], nil
	}
	if p.cur().kind == tokConfig || isAnonClass(p.reg, name, p.index) {
		cfg := ""
		if p.cur().kind == tokConfig {
			cfg = p.next().text
		}
		p.anon++
		inst, err := p.reg.Make(fmt.Sprintf("%s@%d", name, p.anon), name, cfg)
		if err != nil {
			return 0, err
		}
		p.index[inst.Name()] = len(p.elements)
		p.elements = append(p.elements, inst)
		return p.index[inst.Name()], nil
	}
	idx, ok := p.index[name]
	if !ok {
		return 0, p.errf("unknown element %q", name)
	}
	return idx, nil
}

// isAnonClass decides whether an identifier in a chain denotes an
// anonymous class instantiation: it is a registered class name and not a
// declared element name.
func isAnonClass(reg *Registry, name string, index map[string]int) bool {
	if _, declared := index[name]; declared {
		return false
	}
	_, isClass := reg.classes[name]
	return isClass
}

// chainFrom parses "[p] -> [q] elem [r] -> ..." starting after the first
// element (index from).
func (p *parser) chainFrom(from int) error {
	for {
		fromPort := 0
		if p.cur().kind == tokLBracket {
			var err error
			fromPort, err = p.portSelector()
			if err != nil {
				return err
			}
		}
		if p.cur().kind != tokArrow {
			return p.expectSemi()
		}
		p.next() // ->
		toPort := 0
		if p.cur().kind == tokLBracket {
			var err error
			toPort, err = p.portSelector()
			if err != nil {
				return err
			}
		}
		to, err := p.elementRef()
		if err != nil {
			return err
		}
		p.conns = append(p.conns, Connection{From: from, FromPort: fromPort, To: to, ToPort: toPort})
		from = to
	}
}

func (p *parser) portSelector() (int, error) {
	p.next() // [
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected port number, got %q", p.cur().text)
	}
	n, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, p.errf("bad port number: %v", err)
	}
	if p.cur().kind != tokRBracket {
		return 0, p.errf("expected ']', got %q", p.cur().text)
	}
	p.next()
	return n, nil
}
