package click

import (
	"fmt"

	"vsd/internal/bv"
	"vsd/internal/ir"
)

// Inline flattens the pipeline into a single ir.Program: each element's
// body is spliced in place of the upstream Emit that reaches it, state
// stores and static tables are namespaced per instance, and Emits on
// unconnected ports become pipeline-level Emits on egress ids.
//
// This is the monolithic baseline of the paper's evaluation — "when we
// fed the same code to the symbex engine (without using pipeline
// decomposition or any of the other presented ideas)". An element
// reachable along several paths is spliced once per path, so the inlined
// program's path count is the product of the per-element counts
// (~2^(k·n)), versus the sum (~k·2^n) the compositional verifier
// explores.
func Inline(p *Pipeline) (*ir.Program, error) {
	in := &inliner{p: p}
	// Allocate the merged register file: one contiguous block per
	// element. Register values are path-local, so an element spliced at
	// several points can reuse its block — duplication of code, not of
	// registers, is what makes the baseline exponential.
	var regW []bv.Width
	in.regBase = make([]ir.Reg, len(p.Elements))
	for i, e := range p.Elements {
		in.regBase[i] = ir.Reg(len(regW))
		regW = append(regW, e.Program().RegWidths...)
	}
	// A scratch register receives a unit-cost marker statement wherever
	// an internal Emit hand-off is spliced away, so the inlined
	// program's dynamic statement counts match the composed pipeline's
	// exactly (each Emit costs one statement in a segment summary).
	in.scratch = ir.Reg(len(regW))
	regW = append(regW, 8)
	var states []ir.StateDecl
	var tables []*ir.StaticTable
	meta := map[string]bv.Width{}
	for _, e := range p.Elements {
		prog := e.Program()
		for _, d := range prog.States {
			d2 := d
			d2.Name = e.Name() + "." + d.Name
			states = append(states, d2)
		}
		for _, t := range prog.Tables {
			t2 := *t
			t2.Name = e.Name() + "." + t.Name
			tables = append(tables, &t2)
		}
		for slot, w := range prog.MetaSlots {
			if have, ok := meta[slot]; ok && have != w {
				return nil, fmt.Errorf("click: metadata slot %q used at widths %s and %s", slot, have, w)
			}
			meta[slot] = w
		}
	}
	body, err := in.splice(p.Entry, 0)
	if err != nil {
		return nil, err
	}
	nOut := p.NumEgress()
	if nOut == 0 {
		nOut = 1
	}
	return &ir.Program{
		Name:      "inline",
		NumIn:     1,
		NumOut:    nOut,
		RegWidths: regW,
		States:    states,
		Tables:    tables,
		Body:      body,
		MetaSlots: meta,
	}, nil
}

type inliner struct {
	p       *Pipeline
	regBase []ir.Reg
	scratch ir.Reg
}

// maxInlineDepth guards against pathological graphs; the DAG check in
// Build makes real recursion impossible beyond the element count.
const maxInlineDepth = 1 << 10

func (in *inliner) splice(elem, depth int) ([]ir.Stmt, error) {
	if depth > maxInlineDepth {
		return nil, fmt.Errorf("click: inline depth exceeded")
	}
	e := in.p.Elements[elem]
	return in.rewriteBlock(elem, e.Program().Body, depth)
}

func (in *inliner) rewriteBlock(elem int, body []ir.Stmt, depth int) ([]ir.Stmt, error) {
	base := in.regBase[elem]
	name := in.p.Elements[elem].Name()
	out := make([]ir.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case ir.ConstStmt:
			st.Dst += base
			out = append(out, st)
		case ir.BinStmt:
			st.Dst += base
			st.A += base
			st.B += base
			out = append(out, st)
		case ir.NotStmt:
			st.Dst += base
			st.A += base
			out = append(out, st)
		case ir.CastStmt:
			st.Dst += base
			st.A += base
			out = append(out, st)
		case ir.SelStmt:
			st.Dst += base
			st.Cond += base
			st.A += base
			st.B += base
			out = append(out, st)
		case ir.LoadPktStmt:
			st.Dst += base
			st.Off += base
			out = append(out, st)
		case ir.StorePktStmt:
			st.Off += base
			st.Src += base
			out = append(out, st)
		case ir.PktLenStmt:
			st.Dst += base
			out = append(out, st)
		case ir.MetaLoadStmt:
			st.Dst += base
			out = append(out, st)
		case ir.MetaStoreStmt:
			st.Src += base
			out = append(out, st)
		case ir.StateReadStmt:
			st.Dst += base
			st.Key += base
			st.Store = name + "." + st.Store
			out = append(out, st)
		case ir.StateWriteStmt:
			st.Key += base
			st.Val += base
			st.Store = name + "." + st.Store
			out = append(out, st)
		case ir.StaticLookupStmt:
			st.Dst += base
			st.Key += base
			st.Table = name + "." + st.Table
			out = append(out, st)
		case ir.AssertStmt:
			st.Cond += base
			out = append(out, st)
		case ir.IfStmt:
			then, err := in.rewriteBlock(elem, st.Then, depth)
			if err != nil {
				return nil, err
			}
			els, err := in.rewriteBlock(elem, st.Else, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, ir.IfStmt{Cond: st.Cond + base, Then: then, Else: els})
		case ir.LoopStmt:
			b, err := in.rewriteBlock(elem, st.Body, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, ir.LoopStmt{Bound: st.Bound, Body: b})
		case ir.BreakStmt, ir.DropStmt:
			out = append(out, st)
		case ir.EmitStmt:
			edge := in.p.Edges[elem][st.Port]
			if edge.To < 0 {
				out = append(out, ir.EmitStmt{Port: in.p.EgressID(elem, st.Port)})
				continue
			}
			// Splice the downstream element in place of the hand-off:
			// the packet, its metadata, and control continue there. The
			// marker preserves the Emit's unit cost.
			spliced, err := in.splice(edge.To, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, ir.ConstStmt{Dst: in.scratch, Val: bv.New(8, 0)})
			out = append(out, spliced...)
		default:
			return nil, fmt.Errorf("click: cannot inline statement %T", s)
		}
	}
	return out, nil
}
