package workload

import (
	"testing"

	"vsd/internal/packet"
)

func TestGeneratorIsDeterministic(t *testing.T) {
	a := New(Spec{Seed: 7}).Mix(50)
	b := New(Spec{Seed: 7}).Mix(50)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("packet %d differs between runs with the same seed", i)
		}
	}
	c := New(Spec{Seed: 8}).Mix(50)
	same := true
	for i := range a {
		if string(a[i].Data) != string(c[i].Data) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestIPv4PacketsAreWellFormed(t *testing.T) {
	g := New(Spec{Seed: 3})
	for i := 0; i < 200; i++ {
		buf := g.IPv4()
		eth, err := packet.EthernetAt(buf.Data, 0)
		if err != nil {
			t.Fatal(err)
		}
		if eth.Type() != packet.EtherTypeIPv4 {
			t.Fatalf("packet %d: ethertype %#x", i, eth.Type())
		}
		ip, err := packet.IPv4At(buf.Data, packet.EthernetHeaderLen)
		if err != nil {
			t.Fatal(err)
		}
		if ip.Version() != 4 || ip.IHL() < 5 {
			t.Fatalf("packet %d: bad version/ihl", i)
		}
		want, err := ip.ComputeChecksum()
		if err != nil {
			t.Fatal(err)
		}
		if ip.Checksum() != want {
			t.Fatalf("packet %d: bad checksum", i)
		}
		if int(ip.TotalLen())+packet.EthernetHeaderLen != len(buf.Data) {
			t.Fatalf("packet %d: total length %d vs frame %d", i, ip.TotalLen(), len(buf.Data))
		}
	}
}

func TestRandomRespectsBounds(t *testing.T) {
	g := New(Spec{Seed: 1})
	for i := 0; i < 100; i++ {
		buf := g.Random(100)
		if len(buf.Data) < packet.MinFrame || len(buf.Data) > 100 {
			t.Fatalf("random frame length %d out of bounds", len(buf.Data))
		}
	}
	// Degenerate max clamps to MinFrame.
	buf := g.Random(1)
	if len(buf.Data) != packet.MinFrame {
		t.Errorf("clamped length = %d", len(buf.Data))
	}
}

func TestMixComposition(t *testing.T) {
	g := New(Spec{Seed: 9})
	mix := g.Mix(100)
	if len(mix) != 100 {
		t.Fatalf("mix size %d", len(mix))
	}
	// The mix must contain some packets that fail IPv4 validation
	// (adversarial/random shares).
	bad := 0
	for _, buf := range mix {
		ip, err := packet.IPv4At(buf.Data, packet.EthernetHeaderLen)
		if err != nil {
			bad++
			continue
		}
		want, err := ip.ComputeChecksum()
		if err != nil || ip.Checksum() != want || ip.Version() != 4 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("mix contains no adversarial packets")
	}
	if bad > 60 {
		t.Errorf("mix is mostly garbage (%d/100); well-formed share too small", bad)
	}
}
