// Package workload generates synthetic packet workloads.
//
// The paper's testbed used live traffic through SMPClick on a Xeon
// server; no such traces ship with a paper reproduction, so this package
// provides the synthetic equivalents the examples, the vsdrun CLI, and
// the failure-injection tests use: protocol-shaped IPv4 mixes, uniform
// random frames, and adversarial mutations (truncations, corrupted
// checksums, fuzzed IP options) that specifically target the code paths
// the verifier reasons about.
package workload

import (
	"math/rand"

	"vsd/internal/packet"
)

// Spec configures a generator.
type Spec struct {
	Seed int64
	// Hosts bounds the address pool (flows are picked among them).
	Hosts int
	// Prefixes to draw destination addresses from; defaults to a mix of
	// 10/8, 192.168/16 and random space.
	Prefixes []uint32
}

// Generator produces packet workloads deterministically from a seed.
type Generator struct {
	rng  *rand.Rand
	spec Spec
}

// New returns a generator.
func New(spec Spec) *Generator {
	if spec.Hosts <= 0 {
		spec.Hosts = 64
	}
	if len(spec.Prefixes) == 0 {
		spec.Prefixes = []uint32{
			packet.IP4(10, 0, 0, 0),
			packet.IP4(192, 168, 0, 0),
			packet.IP4(8, 8, 0, 0),
		}
	}
	return &Generator{rng: rand.New(rand.NewSource(spec.Seed)), spec: spec}
}

func (g *Generator) addr() uint32 {
	p := g.spec.Prefixes[g.rng.Intn(len(g.spec.Prefixes))]
	return p | uint32(g.rng.Intn(g.spec.Hosts)+1)
}

// IPv4 produces one well-formed Ethernet+IPv4+UDP frame with random
// addresses, TTL, and payload size.
func (g *Generator) IPv4() *packet.Buffer {
	payload := make([]byte, 8+g.rng.Intn(64))
	// UDP-ish header in the payload: random ports.
	payload[0] = byte(g.rng.Intn(256))
	payload[1] = byte(g.rng.Intn(256))
	payload[2] = byte(g.rng.Intn(256))
	payload[3] = byte(g.rng.Intn(256))
	var opts []byte
	if g.rng.Intn(4) == 0 {
		opts = g.options(false)
	}
	buf, err := packet.BuildIPv4(packet.IPv4Spec{
		SrcMAC:   [6]byte{2, 0, 0, 0, 0, byte(g.rng.Intn(255))},
		DstMAC:   [6]byte{2, 0, 0, 0, 1, byte(g.rng.Intn(255))},
		SrcIP:    g.addr(),
		DstIP:    g.addr(),
		TTL:      uint8(1 + g.rng.Intn(254)),
		Protocol: []uint8{packet.ProtoUDP, packet.ProtoTCP, packet.ProtoICMP}[g.rng.Intn(3)],
		Options:  opts,
		Payload:  payload,
	})
	if err != nil {
		panic("trace: generator produced invalid spec: " + err.Error())
	}
	return buf
}

// options produces an IP options area; when malformed is set, the
// area violates TLV rules (bad lengths, truncation).
func (g *Generator) options(malformed bool) []byte {
	n := 4 * (1 + g.rng.Intn(3))
	opts := make([]byte, n)
	i := 0
	for i < n {
		switch g.rng.Intn(3) {
		case 0:
			opts[i] = 1 // NOP
			i++
		case 1:
			opts[i] = 0 // EOL
			i = n
		default:
			l := 2 + g.rng.Intn(4)
			if i+l > n {
				l = n - i
			}
			if l < 2 {
				opts[i] = 1
				i++
				continue
			}
			opts[i] = byte(7 + g.rng.Intn(60))
			opts[i+1] = byte(l)
			i += l
		}
	}
	if malformed && n >= 2 {
		switch g.rng.Intn(3) {
		case 0:
			opts[0], opts[1] = 9, 0 // length 0
		case 1:
			opts[0], opts[1] = 9, 1 // length 1
		default:
			opts[0], opts[1] = 9, byte(n+10) // overruns the area
		}
	}
	return opts
}

// Random produces a frame of uniformly random bytes with length in
// [packet.MinFrame, maxLen].
func (g *Generator) Random(maxLen int) *packet.Buffer {
	if maxLen < packet.MinFrame {
		maxLen = packet.MinFrame
	}
	n := packet.MinFrame + g.rng.Intn(maxLen-packet.MinFrame+1)
	data := make([]byte, n)
	g.rng.Read(data)
	return packet.NewBuffer(data)
}

// Adversarial produces a frame crafted to stress verification-relevant
// paths: truncated headers, corrupted checksums, hostile IP options,
// wrong versions, and huge claimed total lengths.
func (g *Generator) Adversarial() *packet.Buffer {
	base := g.IPv4()
	data := base.Data
	switch g.rng.Intn(6) {
	case 0: // truncate inside the IP header
		if len(data) > 16 {
			data = data[:14+g.rng.Intn(7)]
		}
	case 1: // corrupt the checksum
		data[14+10] ^= byte(1 + g.rng.Intn(255))
	case 2: // wrong version nibble
		data[14] = data[14]&0x0f | byte(g.rng.Intn(16))<<4
	case 3: // absurd total length
		data[14+2] = 0xff
		data[14+3] = 0xff
	case 4: // hostile options
		buf, err := packet.BuildIPv4(packet.IPv4Spec{
			SrcIP: g.addr(), DstIP: g.addr(), TTL: 3,
			Protocol: packet.ProtoUDP,
			Options:  g.options(true),
			Payload:  []byte{0, 1, 2, 3, 4, 5, 6, 7},
		})
		if err == nil {
			data = buf.Data
		}
	case 5: // zero TTL
		data[14+8] = 0
		ip, err := packet.IPv4At(data, 14)
		if err == nil {
			if ck, err2 := ip.ComputeChecksum(); err2 == nil {
				ip.SetChecksum(ck)
			}
		}
	}
	return packet.NewBuffer(data)
}

// Mix produces a trace of n packets: mostly well-formed, a fraction
// adversarial and a fraction uniformly random, the workload shape used
// across the examples and benchmarks.
func (g *Generator) Mix(n int) []*packet.Buffer {
	out := make([]*packet.Buffer, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%10 == 7:
			out = append(out, g.Adversarial())
		case i%10 == 9:
			out = append(out, g.Random(128))
		default:
			out = append(out, g.IPv4())
		}
	}
	return out
}
