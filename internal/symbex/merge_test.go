package symbex

import (
	"math/rand"
	"testing"

	"vsd/internal/bv"
	"vsd/internal/expr"
	"vsd/internal/ir"
)

// TestLoopMergeSoundness checks the merged-mode contract: segments still
// partition the input space, the predicted disposition/port/packet
// bytes/metadata match the interpreter, and step counts are upper
// bounds (not necessarily exact).
func TestLoopMergeSoundness(t *testing.T) {
	p := buildOptionsLoop(6)
	e := newEngine(Options{LoopMode: LoopMerge})
	segs, err := e.Run(p, DefaultInput(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(16)
		pkt := make([]byte, n)
		r.Read(pkt)
		pkt[0] = byte(r.Intn(n + 2))
		for i := 1; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				pkt[i] = 0
			case 1:
				pkt[i] = 1
			case 2:
				pkt[i] = byte(2 + r.Intn(4))
			}
		}
		asn := assignmentFor(pkt, nil)
		var match *Segment
		for _, s := range segs {
			if evalSegment(s, asn) {
				if match != nil {
					t.Fatalf("packet % x satisfies two merged segments", pkt)
				}
				match = s
			}
		}
		if match == nil {
			t.Fatalf("packet % x satisfies no merged segment", pkt)
		}
		env2 := &ir.ExecEnv{Pkt: append([]byte{}, pkt...), Meta: map[string]bv.V{}, State: ir.NewState()}
		out := ir.Exec(p, env2)
		if out.Disposition != match.Disposition {
			t.Fatalf("packet % x: concrete %v, merged symbolic %v", pkt, out.Disposition, match.Disposition)
		}
		if out.Disposition == ir.Emitted && out.Port != match.Port {
			t.Fatalf("packet % x: port %d vs %d", pkt, out.Port, match.Port)
		}
		if out.Steps > match.Steps {
			t.Fatalf("packet % x: concrete steps %d exceed merged upper bound %d", pkt, out.Steps, match.Steps)
		}
		if out.Disposition != ir.Crashed {
			for i := range pkt {
				got := expr.Eval(expr.Select(match.Pkt, expr.Const(32, uint64(i))), asn)
				if byte(got.Int()) != env2.Pkt[i] {
					t.Fatalf("packet % x: byte %d mismatch under merge", pkt, i)
				}
			}
		}
	}
	if !e.Stats().Merged {
		t.Error("merge mode reported no merging on a loop with multiple continuations")
	}
}

// TestLoopMergeKeepsCrashDetection ensures merging never hides a crash:
// a loop whose body crashes on a specific byte still yields a crash
// segment whose witness the interpreter confirms.
func TestLoopMergeKeepsCrashDetection(t *testing.T) {
	b := ir.NewBuilder("CrashInLoop", 1, 1)
	idx := b.Mov(b.ConstU(32, 0))
	plen := b.PktLen()
	b.Loop(6, func() {
		done := b.Bin(ir.Ule, plen, idx)
		b.If(done, func() { b.Break() }, nil)
		v := b.LoadPkt(idx, 1)
		b.Assert(b.Not(b.BinC(ir.Eq, v, 0x66)), "byte 0x66 is fatal")
		b.SetReg(idx, b.BinC(ir.Add, idx, 1))
	})
	b.Emit(0)
	p := b.MustBuild()

	e := newEngine(Options{LoopMode: LoopMerge})
	segs, err := e.Run(p, DefaultInput(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range segs {
		if s.Crash != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("merge mode lost the in-loop crash")
	}
	// A packet with 0x66 at any position must match a crash segment.
	for pos := 0; pos < 4; pos++ {
		pkt := []byte{1, 1, 1, 1}
		pkt[pos] = 0x66
		asn := assignmentFor(pkt, nil)
		var match *Segment
		for _, s := range segs {
			if evalSegment(s, asn) {
				match = s
				break
			}
		}
		if match == nil || match.Disposition != ir.Crashed {
			t.Fatalf("0x66 at %d not predicted to crash", pos)
		}
	}
}
