package symbex

import (
	"testing"

	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
)

// buildCounter is the paper's overflow counter: read, assert below max,
// write incremented.
func buildCounter(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("Counter", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "count", KeyW: 8, ValW: 32})
	key := b.ConstU(8, 0)
	n := b.StateRead("count", key)
	b.Assert(b.BinC(ir.Ult, n, 0xffffffff), "overflow")
	b.StateWrite("count", key, b.BinC(ir.Add, n, 1))
	b.Emit(0)
	return b.MustBuild()
}

func dispositions(p *SeqPath) []ir.Disposition {
	var out []ir.Disposition
	for _, st := range p.Steps {
		out = append(out, st.Seg.Disposition)
	}
	return out
}

// From boot state the counter cannot overflow in any short sequence:
// state threading resolves each read to the concrete running count, so
// the crash segment is infeasible at every step.
func TestSeqCounterDefaultInitCannotCrash(t *testing.T) {
	e := newEngine(Options{})
	sum, err := e.RunSeq(buildCounter(t), DefaultInput(14, 48), 3, InitDefault)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Paths) != 1 {
		t.Fatalf("got %d sequence paths, want exactly the emit,emit,emit path", len(sum.Paths))
	}
	for _, d := range dispositions(sum.Paths[0]) {
		if d != ir.Emitted {
			t.Fatalf("unexpected disposition %v from boot state", d)
		}
	}
}

// From an arbitrary state (the induction hypothesis) the overflow IS
// reachable: a crash at step 0 directly, and — the multi-packet case —
// a non-crashing step followed by a crash, which needs the threaded
// write of step 0 to flow into step 1's read.
func TestSeqCounterSymbolicInitReachesOverflow(t *testing.T) {
	e := newEngine(Options{})
	sum, err := e.RunSeq(buildCounter(t), DefaultInput(14, 48), 2, InitSymbolic)
	if err != nil {
		t.Fatal(err)
	}
	var crashAt0, crashAt1, allEmit bool
	for _, p := range sum.Paths {
		d := dispositions(p)
		switch {
		case len(d) == 1 && d[0] == ir.Crashed:
			crashAt0 = true
		case len(d) == 2 && d[0] == ir.Emitted && d[1] == ir.Crashed:
			crashAt1 = true
		case len(d) == 2 && d[0] == ir.Emitted && d[1] == ir.Emitted:
			allEmit = true
		}
	}
	if !crashAt0 || !crashAt1 || !allEmit {
		t.Fatalf("crashAt0=%v crashAt1=%v allEmit=%v, want all three reachable from arbitrary state",
			crashAt0, crashAt1, allEmit)
	}
}

// A read after a write on the same path must observe the written value:
// the access-order Seq numbers carry the interleaving that the separate
// Reads/Writes slices lose.
func TestSeqReadAfterWriteSamePacket(t *testing.T) {
	b := ir.NewBuilder("WriteThenRead", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "s", KeyW: 8, ValW: 32})
	key := b.ConstU(8, 0)
	b.StateWrite("s", key, b.ConstU(32, 7))
	v := b.StateRead("s", key)
	b.Assert(b.BinC(ir.Eq, v, 7), "read sees own write")
	b.Emit(0)
	prog := b.MustBuild()

	e := newEngine(Options{})
	sum, err := e.RunSeq(prog, DefaultInput(14, 48), 1, InitSymbolic)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sum.Paths {
		for _, d := range dispositions(p) {
			if d == ir.Crashed {
				t.Fatalf("assert refuted: read did not observe the same-packet write")
			}
		}
	}
	if len(sum.Paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(sum.Paths))
	}
}

// Symbolic initial state must be functional: two steps reading the same
// key (from different packets) see the same unknown value. The element
// asserts the read is zero, so an (emit, crash) sequence needs the two
// keys to differ — forcing them equal must be unsatisfiable.
func TestSeqInitConsistencyAxioms(t *testing.T) {
	b := ir.NewBuilder("KeyedReader", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "s", KeyW: 8, ValW: 32})
	key := b.LoadPktC(0, 1)
	v := b.StateRead("s", key)
	b.Assert(b.BinC(ir.Eq, v, 0), "zero")
	b.Emit(0)
	prog := b.MustBuild()

	e := newEngine(Options{})
	sum, err := e.RunSeq(prog, DefaultInput(14, 48), 2, InitSymbolic)
	if err != nil {
		t.Fatal(err)
	}
	var mixed *SeqPath
	for _, p := range sum.Paths {
		d := dispositions(p)
		if len(d) == 2 && d[0] == ir.Emitted && d[1] == ir.Crashed {
			mixed = p
		}
	}
	if mixed == nil {
		t.Fatal("emit,crash sequence not found (should be feasible with distinct keys)")
	}
	sameKey := expr.Eq(
		expr.Select(expr.BaseArray(SeqScope(0)+PktArrayName), expr.Const(32, 0)),
		expr.Select(expr.BaseArray(SeqScope(1)+PktArrayName), expr.Const(32, 0)),
	)
	sess := smt.New(smt.Options{}).NewSession()
	if r, _ := sess.Check(append(mixed.Conds(), sameKey)); r != smt.Unsat {
		t.Fatalf("same-key emit,crash sequence is %v, want Unsat (consistency axiom missing?)", r)
	}
}

// Writes to capacity-bounded stores may be dropped by a full table; the
// symbolic model covers that with a free landed-guard, so a read-back
// assert can fail even from boot state — while the same program over an
// unbounded store cannot.
func TestSeqCapacityGuardOverApproximates(t *testing.T) {
	build := func(capacity int) *ir.Program {
		b := ir.NewBuilder("CapWriter", 1, 1)
		b.DeclareState(ir.StateDecl{Name: "s", KeyW: 8, ValW: 32, Capacity: capacity})
		key := b.LoadPktC(0, 1)
		b.StateWrite("s", key, b.ConstU(32, 1))
		v := b.StateRead("s", key)
		b.Assert(b.BinC(ir.Eq, v, 1), "write landed")
		b.Emit(0)
		return b.MustBuild()
	}
	crashes := func(capacity int) bool {
		e := newEngine(Options{})
		sum, err := e.RunSeq(build(capacity), DefaultInput(14, 48), 1, InitDefault)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range sum.Paths {
			for _, d := range dispositions(p) {
				if d == ir.Crashed {
					return true
				}
			}
		}
		return false
	}
	if crashes(0) {
		t.Error("unbounded store: read-back assert refuted, want proof")
	}
	if !crashes(1) {
		t.Error("capacity-1 store: dropped-write case not covered by the model")
	}
}

// Sequence scoping must rename every per-packet input, including
// element-level metadata variables, so steps cannot alias.
func TestSeqScopesMetadataPerStep(t *testing.T) {
	b := ir.NewBuilder("MetaGate", 1, 1)
	m := b.MetaLoad("gate", 8)
	b.Assert(b.BinC(ir.Eq, m, 0), "gate closed")
	b.Emit(0)
	prog := b.MustBuild()

	e := newEngine(Options{})
	sum, err := e.RunSeq(prog, DefaultInput(14, 48), 2, InitDefault)
	if err != nil {
		t.Fatal(err)
	}
	// emit,crash requires gate_0 = 0 and gate_1 != 0: only satisfiable
	// when the metadata input is per-step.
	found := false
	for _, p := range sum.Paths {
		d := dispositions(p)
		if len(d) == 2 && d[0] == ir.Emitted && d[1] == ir.Crashed {
			found = true
		}
	}
	if !found {
		t.Fatal("emit,crash not feasible: metadata inputs are aliased across steps")
	}
}
