package symbex

// Sequence execution (DESIGN.md §8): symbolic execution of k packets
// *in order* through the same element, threading the private state
// store across packets. Step 1 models every state read as an
// unconstrained fresh variable; here a read instead resolves against a
// symbolic write log — packet i's writes become the values packet i+1
// can observe — turning the per-packet over-approximation into the
// exact multi-packet transition relation. The machinery mirrors
// loop.go: the element is summarized once, and each step of the
// sequence is substitution (step-scoped input renaming plus state
// resolution) and a feasibility check, never re-execution.
//
// Two initial-state modes select what a read of a never-written key
// returns: InitDefault uses the declared default (the dataplane's boot
// state — bounded sequence checks and induction base cases), and
// InitSymbolic uses Ackermann-style fresh variables with pairwise
// consistency axioms (an arbitrary reachable state — the induction
// hypothesis of verify's k-induction).

import (
	"fmt"
	"sort"

	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
)

// InitMode selects the initial private state of a sequence.
type InitMode uint8

// Initial-state modes.
const (
	// InitDefault starts from the dataplane's boot state: every store
	// key holds its declared default.
	InitDefault InitMode = iota
	// InitSymbolic starts from an arbitrary state: reads of unwritten
	// keys return fresh variables constrained only to be functional
	// (equal keys read equal values).
	InitSymbolic
)

// InitPrefix prefixes the Ackermann variables standing for the unknown
// initial state of an InitSymbolic sequence ("s0.<store>.<n>") and the
// landed-guards of capacity-bounded writes ("s0.w.<n>").
const InitPrefix = "s0."

// SeqScope returns the variable-name prefix for step t of a sequence:
// step t's input packet is the base array "q<t>.pkt", its length the
// variable "q<t>.len", and so on for every other per-packet input.
func SeqScope(t int) string { return fmt.Sprintf("q%d.", t) }

// InitRead records one probe of the initial state: the store, the key
// expression the sequence read with, and the variable standing for the
// unknown initial value. Witness extraction evaluates Key and Var under
// a model to recover the concrete state a counterexample starts from.
type InitRead struct {
	Store string
	Key   *expr.Expr
	Var   *expr.Expr
}

// seqWrite is one logged write. landed is nil for unbounded stores;
// for capacity-bounded stores it is a free boolean covering both the
// write landing and being dropped by a full table (a sound
// over-approximation of the concrete occupancy check, which the
// symbolic store does not track).
type seqWrite struct {
	key, val *expr.Expr
	landed   *expr.Expr
}

// SeqState is the symbolic private state threaded through a packet
// sequence: per-store ordered write logs over an initial state chosen
// by the InitMode. It is shared mutable state of one sequence prefix;
// Fork it before exploring alternative continuations.
type SeqState struct {
	mode   InitMode
	decls  map[string]ir.StateDecl
	logs   map[string][]seqWrite
	inits  []InitRead
	conds  []*expr.Expr
	nFresh int
}

// NewSeqState returns an empty state in the given mode. Every store the
// sequence may touch must be Declared before its first access.
func NewSeqState(mode InitMode) *SeqState {
	return &SeqState{
		mode:  mode,
		decls: map[string]ir.StateDecl{},
		logs:  map[string][]seqWrite{},
	}
}

// Declare registers a store's declaration under the given name (the
// verifier qualifies names by element instance, "inst.store").
func (s *SeqState) Declare(name string, d ir.StateDecl) { s.decls[name] = d }

// Fork returns an independent copy sharing all interned expressions.
func (s *SeqState) Fork() *SeqState {
	c := &SeqState{
		mode:   s.mode,
		decls:  s.decls, // immutable after declaration
		logs:   make(map[string][]seqWrite, len(s.logs)),
		inits:  append([]InitRead{}, s.inits...),
		conds:  append([]*expr.Expr{}, s.conds...),
		nFresh: s.nFresh,
	}
	for k, v := range s.logs {
		c.logs[k] = v[:len(v):len(v)]
	}
	return c
}

// Conds returns the side constraints the state model has accumulated:
// the Ackermann consistency axioms of symbolic initial reads. They must
// be conjoined to every feasibility query over the sequence.
func (s *SeqState) Conds() []*expr.Expr { return s.conds }

// InitReads returns the initial-state probes performed so far.
func (s *SeqState) InitReads() []InitRead { return s.inits }

// Mark is a snapshot of the write-log lengths, taken between steps so
// sequence specs can read the state "as of step t" (ReadAt).
type Mark map[string]int

// Mark snapshots the current log position of every store.
func (s *SeqState) Mark() Mark {
	m := make(Mark, len(s.logs))
	for k, v := range s.logs {
		m[k] = len(v)
	}
	return m
}

// Read returns the value the named store currently holds for key: the
// latest logged write of an equal key, else the initial state.
func (s *SeqState) Read(store string, key *expr.Expr) *expr.Expr {
	return s.ReadAt(nil, store, key)
}

// ReadAt is Read against the state as of an earlier Mark (nil = now).
func (s *SeqState) ReadAt(at Mark, store string, key *expr.Expr) *expr.Expr {
	d, ok := s.decls[store]
	if !ok {
		panic(fmt.Sprintf("symbex: sequence read of undeclared store %q", store))
	}
	log := s.logs[store]
	if at != nil {
		log = log[:at[store]]
	}
	v := s.initial(store, key, d)
	for _, w := range log {
		hit := expr.Eq(key, w.key)
		if w.landed != nil {
			hit = expr.And(hit, w.landed)
		}
		v = expr.Ite(hit, w.val, v)
	}
	return v
}

// initial models the pre-sequence value of store[key].
func (s *SeqState) initial(store string, key *expr.Expr, d ir.StateDecl) *expr.Expr {
	if s.mode == InitDefault {
		return expr.Const(d.ValW, d.Default)
	}
	// Syntactically identical keys share one variable outright; distinct
	// keys get fresh variables tied together by consistency axioms
	// (key_i = key_j ⇒ v_i = v_j), the Ackermann encoding of an
	// uninterpreted initial-state function.
	for _, p := range s.inits {
		if p.Store == store && p.Key == key {
			return p.Var
		}
	}
	g := expr.Var(fmt.Sprintf("%s%s.%d", InitPrefix, store, s.nFresh), d.ValW)
	s.nFresh++
	for _, p := range s.inits {
		if p.Store != store {
			continue
		}
		s.conds = append(s.conds, expr.Implies(expr.Eq(key, p.Key), expr.Eq(g, p.Var)))
	}
	s.inits = append(s.inits, InitRead{Store: store, Key: key, Var: g})
	return g
}

// Write appends store[key] = val to the log. Writes to capacity-bounded
// stores are guarded by a free boolean: the concrete dataplane drops
// new keys once the store is full, and the symbolic model covers both
// outcomes rather than tracking occupancy.
func (s *SeqState) Write(store string, key, val *expr.Expr) {
	d, ok := s.decls[store]
	if !ok {
		panic(fmt.Sprintf("symbex: sequence write of undeclared store %q", store))
	}
	var landed *expr.Expr
	if d.Capacity > 0 {
		landed = expr.Var(fmt.Sprintf("%sw.%d", InitPrefix, s.nFresh), 1)
		s.nFresh++
	}
	s.logs[store] = append(s.logs[store], seqWrite{key: key, val: val, landed: landed})
}

// ThreadState replays one execution's state accesses — reads and
// writes, interleaved by their Seq order — against st. Each read
// variable is bound in sub to the value the store holds at that point;
// each write is appended to the log. Keys and values are rewritten
// through sub first, so the caller's input renaming and all earlier
// read resolutions apply. Store names pass through rename, so the
// verifier can qualify them by element instance.
func ThreadState(st *SeqState, sub *expr.Subst, reads []StateAccess, writes []StateUpdate, rename func(string) string) {
	if rename == nil {
		rename = func(s string) string { return s }
	}
	type event struct {
		seq int
		rd  *StateAccess
		wr  *StateUpdate
	}
	evs := make([]event, 0, len(reads)+len(writes))
	for i := range reads {
		evs = append(evs, event{seq: reads[i].Seq, rd: &reads[i]})
	}
	for i := range writes {
		evs = append(evs, event{seq: writes[i].Seq, wr: &writes[i]})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	for _, ev := range evs {
		if ev.rd != nil {
			key := sub.Apply(ev.rd.Key)
			sub.BindVar(ev.rd.Var.Name, st.Read(rename(ev.rd.Store), key))
		} else {
			st.Write(rename(ev.wr.Store), sub.Apply(ev.wr.Key), sub.Apply(ev.wr.Val))
		}
	}
}

// SeqStep is one packet of a sequence path: the segment the packet
// took, with its conditions and output packet rewritten into the step's
// scope and its state reads resolved.
type SeqStep struct {
	Seg   *Segment
	Conds []*expr.Expr
	Pkt   *expr.Array
}

// SeqPath is one feasible symbolic execution of a packet sequence
// through an element. A path is shorter than the requested k when a
// step crashes (the element — and with it the dataplane — stops).
type SeqPath struct {
	Steps []SeqStep
	State *SeqState
}

// Conds returns the path's full constraint set: every step's scoped
// conditions plus the state model's consistency axioms.
func (p *SeqPath) Conds() []*expr.Expr {
	var out []*expr.Expr
	for _, st := range p.Steps {
		out = append(out, st.Conds...)
	}
	return append(out, p.State.Conds()...)
}

// SeqSummary is the result of RunSeq: every feasible sequence of (up
// to) K packets through the element.
type SeqSummary struct {
	K     int
	Paths []*SeqPath
}

// RunSeq symbolically executes sequences of k packets through p,
// threading private state across packets. The element is summarized
// once with Run; sequences are then built by per-step substitution over
// the segment set, so the cost is the number of feasible sequences, not
// k re-explorations. Each step's inputs live in SeqScope(t); in.Pre is
// instantiated per step.
//
// RunSeq is the ENGINE-LEVEL driver: one element, its own segments. It
// exists to specify (and unit-test) the sequence semantics of the
// primitives above in isolation; production sequence verification
// stitches terminal COMPOSED paths of a whole pipeline instead
// (verify/induction.go), reusing SeqState/ThreadState/ScopeSubst but
// not this driver. A semantic change to the extend step belongs in the
// primitives, where both layers inherit it.
func (e *Engine) RunSeq(p *ir.Program, in Input, k int, mode InitMode) (*SeqSummary, error) {
	segs, err := e.Run(p, in)
	if err != nil {
		return nil, err
	}
	sum := &SeqSummary{K: k}
	root := &SeqPath{State: NewSeqState(mode)}
	for _, d := range p.States {
		root.State.Declare(d.Name, d)
	}
	if err := e.seqDFS(p, in, segs, root, k, sum); err != nil {
		return nil, err
	}
	return sum, nil
}

// seqDFS extends path one step at a time, emitting complete (or
// crash-terminated) paths into sum.
func (e *Engine) seqDFS(p *ir.Program, in Input, segs []*Segment, path *SeqPath, k int, sum *SeqSummary) error {
	t := len(path.Steps)
	if t == k {
		sum.Paths = append(sum.Paths, path)
		return nil
	}
	for _, seg := range segs {
		next, err := e.seqExtend(in, path, seg, t)
		if err != nil {
			return err
		}
		if next == nil {
			continue
		}
		if seg.Disposition == ir.Crashed {
			// The element faulted: the sequence cannot continue.
			sum.Paths = append(sum.Paths, next)
			continue
		}
		if err := e.seqDFS(p, in, segs, next, k, sum); err != nil {
			return err
		}
	}
	return nil
}

// seqExtend stitches seg as step t of path, returning nil when the
// extended sequence constraint is infeasible.
func (e *Engine) seqExtend(in Input, path *SeqPath, seg *Segment, t int) (*SeqPath, error) {
	scope := SeqScope(t)
	state := path.State.Fork()
	sub := ScopeSubst(scope, seg.Cond, seg.Pkt, seg.Reads, seg.Writes, readVarNames(seg.Reads))
	ThreadState(state, sub, seg.Reads, seg.Writes, nil)
	var conds []*expr.Expr
	for _, pre := range in.Pre {
		conds = append(conds, sub.Apply(pre))
	}
	feasible := true
	for _, c := range seg.Cond {
		ic := sub.Apply(c)
		if ic.IsTrue() {
			continue
		}
		if ic.IsFalse() {
			feasible = false
			break
		}
		conds = append(conds, ic)
	}
	if !feasible {
		return nil, nil
	}
	// The forked state's Conds already include the parent's axioms, so
	// the step conditions are collected from the steps alone.
	var all []*expr.Expr
	for _, st := range path.Steps {
		all = append(all, st.Conds...)
	}
	all = append(all, conds...)
	all = append(all, state.Conds()...)
	e.stats.SolverChecks++
	if r, _ := e.session.Check(all); r == smt.Unsat {
		e.stats.ForksCut++
		return nil, nil
	}
	next := &SeqPath{
		Steps: append(path.Steps[:len(path.Steps):len(path.Steps)], SeqStep{
			Seg:   seg,
			Conds: conds,
			Pkt:   sub.ApplyArray(seg.Pkt),
		}),
		State: state,
	}
	return next, nil
}

// readVarNames collects the fresh-variable names of a path's state
// reads: the one variable class ScopeSubst must NOT rename, because
// ThreadState binds them to resolved state values instead.
func readVarNames(reads []StateAccess) map[string]bool {
	names := make(map[string]bool, len(reads))
	for _, rd := range reads {
		names[rd.Var.Name] = true
	}
	return names
}

// ScopeSubst builds the step-t input renaming for one execution: the
// entry packet array and length move into the scope, and every other
// free variable of the execution's conditions, effects, and state
// access expressions — element-level metadata inputs, loop leftovers —
// is scoped likewise, except the state-read variables in keep, which
// ThreadState resolves. Renaming everything (rather than an allowlist)
// is what guarantees two steps of a sequence share no accidental
// variables.
func ScopeSubst(scope string, conds []*expr.Expr, pkt *expr.Array, reads []StateAccess, writes []StateUpdate, keep map[string]bool) *expr.Subst {
	sub := expr.NewSubst()
	sub.BindArr(PktArrayName, expr.BaseArray(scope+PktArrayName))
	sub.BindVar(PktLenVar, expr.Var(scope+PktLenVar, 32))
	seen := map[string]bool{PktLenVar: true}
	bind := func(vs []*expr.Expr) {
		for _, v := range vs {
			if seen[v.Name] || keep[v.Name] {
				continue
			}
			seen[v.Name] = true
			sub.BindVar(v.Name, expr.Var(scope+v.Name, v.Width()))
		}
	}
	for _, c := range conds {
		bind(expr.Vars(c, nil))
	}
	for a := pkt; a != nil && a.Prev != nil; a = a.Prev {
		bind(expr.Vars(a.Idx, nil))
		bind(expr.Vars(a.Val, nil))
	}
	for _, rd := range reads {
		bind(expr.Vars(rd.Key, nil))
	}
	for _, wr := range writes {
		bind(expr.Vars(wr.Key, nil))
		bind(expr.Vars(wr.Val, nil))
	}
	return sub
}
