package symbex

import (
	"errors"
	"fmt"

	"vsd/internal/bv"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
)

// Input variable naming conventions. Composition (internal/verify)
// substitutes these away when stitching segments.
const (
	// PktArrayName is the base name of the symbolic input packet array.
	PktArrayName = "pkt"
	// PktLenVar is the 32-bit symbolic packet length variable.
	PktLenVar = "len"
	// MetaVarPrefix prefixes input metadata annotation variables
	// ("m.<slot>").
	MetaVarPrefix = "m."
	// StateReadPrefix prefixes the fresh variables returned by symbolic
	// state reads ("sr.<store>.<n>").
	StateReadPrefix = "sr."
)

// MetaVar returns the canonical input variable for a metadata slot.
func MetaVar(slot string, w bv.Width) *expr.Expr {
	return expr.Var(MetaVarPrefix+slot, w)
}

// StateAccess logs one symbolic state read: the store, the key
// expression, and the fresh variable holding the unconstrained result.
// Seq is the access-order position of the read among all state accesses
// (reads and writes) of its path, counted from zero: sequence execution
// (seq.go) replays the interleaving to decide which writes a read can
// observe, which the two separate Reads/Writes slices alone cannot
// express.
type StateAccess struct {
	Store string
	Key   *expr.Expr
	Var   *expr.Expr
	Seq   int
}

// StateUpdate logs one symbolic state write. Seq orders the write
// against the path's other state accesses (see StateAccess.Seq).
type StateUpdate struct {
	Store string
	Key   *expr.Expr
	Val   *expr.Expr
	Seq   int
}

// AccessSpan returns the number of access slots a path's read/write
// logs occupy: one past the largest Seq. For exactly-explored paths
// this equals len(reads)+len(writes); loop-state merging unions sibling
// logs, where only the upper bound survives. Step-2 composition uses it
// to renumber a segment's accesses into the composed path's order.
func AccessSpan(reads []StateAccess, writes []StateUpdate) int {
	n := 0
	for _, rd := range reads {
		if rd.Seq+1 > n {
			n = rd.Seq + 1
		}
	}
	for _, wr := range writes {
		if wr.Seq+1 > n {
			n = wr.Seq + 1
		}
	}
	return n
}

// CrashRecord tags a crashing segment.
type CrashRecord struct {
	Kind ir.CrashKind
	Msg  string
}

// Segment is one feasible complete path through an element: the unit the
// paper's composition works with.
type Segment struct {
	Element string
	Index   int // position in discovery order
	// Cond is the path constraint: a conjunction of 1-bit expressions
	// over the element's symbolic inputs.
	Cond []*expr.Expr
	// Pkt is the output packet array (a store chain over the input).
	Pkt *expr.Array
	// Meta holds the final value of every metadata slot the path wrote;
	// slots not present pass through unchanged.
	Meta map[string]*expr.Expr
	// Disposition, Port, and Crash describe how the path ended.
	Disposition ir.Disposition
	Port        int
	Crash       *CrashRecord
	// Steps is the dynamic statement count along the path (concrete:
	// a path is a fixed instruction sequence).
	Steps int64
	// Reads and Writes log private-state accesses along the path.
	Reads  []StateAccess
	Writes []StateUpdate
}

// CondExpr returns the path constraint as a single conjunction.
func (s *Segment) CondExpr() *expr.Expr { return expr.And(s.Cond...) }

// IsSuspect reports whether the segment is tagged suspect for crash
// freedom (it crashes in isolation).
func (s *Segment) IsSuspect() bool { return s.Disposition == ir.Crashed }

// LoopMode selects the loop strategy.
type LoopMode uint8

// Loop strategies.
const (
	// LoopMerge applies the paper's mini-element decomposition and
	// additionally merges the per-iteration continuation states into a
	// single state with disjunctive conditions and ite-selected values —
	// the state-merging technique of the paper's own group (its citation
	// [23], Kuznetsov et al., PLDI'12). This keeps loop exploration
	// linear in the bound instead of exponential, at the cost of making
	// per-segment step counts upper bounds rather than exact values
	// (Stats.Merged reports whether any merge happened).
	LoopMerge LoopMode = iota
	// LoopSummarize applies the mini-element decomposition with exact
	// path enumeration: each feasible iteration interleaving is its own
	// path. Exponential in the bound; exact step accounting.
	LoopSummarize
	// LoopUnroll inlines loop bodies up to their bound — the naive
	// baseline ("millions of segments" for IP options).
	LoopUnroll
)

// PruneMode selects how aggressively infeasible branches are cut during
// exploration.
type PruneMode uint8

// Pruning strategies.
const (
	// PruneSolver queries the solver at every fork (constant folding
	// runs first; most queries are decided by the cheap passes).
	PruneSolver PruneMode = iota
	// PruneFold only cuts branches whose condition folds to a constant.
	// Segments with unsatisfiable path constraints may be reported; the
	// verifier's composition step re-checks feasibility, so the end
	// result is unchanged — only the work factor differs.
	PruneFold
)

// Options configures an Engine.
type Options struct {
	LoopMode  LoopMode
	PruneMode PruneMode
	// MaxSegments bounds the number of segments explored (0 = default).
	// Exceeding it aborts with ErrBudget — how the "did not complete in
	// 12 hours" baseline manifests at our scale.
	MaxSegments int
	// MaxSteps bounds the total symbolically executed statements
	// (0 = default).
	MaxSteps int64
}

// Defaults for Options zero values.
const (
	DefaultMaxSegments = 1 << 18
	DefaultMaxSteps    = int64(1) << 26
)

// ErrBudget reports that exploration exceeded the configured budget.
var ErrBudget = errors.New("symbex: exploration budget exceeded")

// Stats counts exploration work.
type Stats struct {
	Segments     int   // feasible segments found
	ForksCut     int   // branches pruned as infeasible
	StepsSymbex  int64 // statements symbolically executed
	SolverChecks int64 // feasibility queries issued
	// Merged reports that loop-state merging occurred, in which case
	// segment step counts are upper bounds rather than exact values.
	Merged bool
}

// Add accumulates o into s. The verifier aggregates per-engine counters
// across its worker pool with this.
func (s *Stats) Add(o Stats) {
	s.Segments += o.Segments
	s.ForksCut += o.ForksCut
	s.StepsSymbex += o.StepsSymbex
	s.SolverChecks += o.SolverChecks
	s.Merged = s.Merged || o.Merged
}

// Input describes the symbolic environment an element starts from. The
// zero value is completed by Run: a fresh packet array, symbolic length,
// and symbolic metadata.
type Input struct {
	Pkt  *expr.Array
	Len  *expr.Expr
	Meta map[string]*expr.Expr
	// Pre holds global constraints (e.g. packet length bounds) assumed
	// during pruning but not recorded in segment conditions.
	Pre []*expr.Expr
}

// DefaultInput returns the unconstrained per-element input of Step 1,
// with packet length bounded to [minLen, maxLen].
func DefaultInput(minLen, maxLen uint64) Input {
	l := expr.Var(PktLenVar, 32)
	return Input{
		Pkt: expr.BaseArray(PktArrayName),
		Len: l,
		Pre: []*expr.Expr{
			expr.Ule(expr.Const(32, minLen), l),
			expr.Ule(l, expr.Const(32, maxLen)),
		},
	}
}

// Engine symbolically executes programs. Engines are stateless between
// Run calls except for loop-body summary memoization, statistics, and
// the incremental solver session shared by all feasibility checks.
type Engine struct {
	Solver *smt.Solver
	Opts   Options

	stats    Stats
	loopMemo map[*ir.Stmt][]*bodySummary
	session  *smt.IncrementalSession
}

// New returns an engine using the given solver.
func New(solver *smt.Solver, opts Options) *Engine {
	return &Engine{
		Solver:   solver,
		Opts:     opts,
		loopMemo: map[*ir.Stmt][]*bodySummary{},
		session:  solver.NewSession(),
	}
}

// Stats returns accumulated exploration statistics.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the statistics counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

func (e *Engine) maxSegments() int {
	if e.Opts.MaxSegments > 0 {
		return e.Opts.MaxSegments
	}
	return DefaultMaxSegments
}

func (e *Engine) maxSteps() int64 {
	if e.Opts.MaxSteps > 0 {
		return e.Opts.MaxSteps
	}
	return DefaultMaxSteps
}

// Run symbolically executes p from the given input and returns every
// feasible segment. The error is non-nil only when the exploration
// budget is exceeded.
func (e *Engine) Run(p *ir.Program, in Input) ([]*Segment, error) {
	if in.Pkt == nil {
		in.Pkt = expr.BaseArray(PktArrayName)
	}
	if in.Len == nil {
		in.Len = expr.Var(PktLenVar, 32)
	}
	meta := map[string]*expr.Expr{}
	for k, v := range in.Meta {
		meta[k] = v
	}
	st := &pathState{
		prog:  p,
		regs:  make([]*expr.Expr, len(p.RegWidths)),
		pkt:   in.Pkt,
		plen:  in.Len,
		meta:  meta,
		conds: append([]*expr.Expr{}, nil...),
	}
	for i, w := range p.RegWidths {
		st.regs[i] = expr.Const(w, 0)
	}
	x := &exec{eng: e, prog: p, pre: in.Pre}
	if err := x.block(p.Body, st); err != nil {
		return nil, err
	}
	return x.out, nil
}

// pathState is the mutable symbolic state of one explored path. fork()
// copies the parts that diverge.
type pathState struct {
	prog   *ir.Program
	regs   []*expr.Expr
	pkt    *expr.Array
	plen   *expr.Expr
	meta   map[string]*expr.Expr
	conds  []*expr.Expr
	steps  int64
	reads  []StateAccess
	writes []StateUpdate
	nRead  map[string]int // per-store read counter for fresh names
	nAcc   int            // state-access counter (assigns StateAccess/StateUpdate.Seq)
	// model is a concrete witness satisfying conds (and the global Pre),
	// or nil when none is cached. Forks whose branch condition the
	// witness satisfies are feasible without a solver call — the
	// counterexample-caching trick real symbex engines rely on.
	model *expr.Assignment
}

func (s *pathState) fork() *pathState {
	c := &pathState{
		prog:   s.prog,
		regs:   append([]*expr.Expr{}, s.regs...),
		pkt:    s.pkt,
		plen:   s.plen,
		meta:   make(map[string]*expr.Expr, len(s.meta)),
		conds:  append([]*expr.Expr{}, s.conds...),
		steps:  s.steps,
		reads:  append([]StateAccess{}, s.reads...),
		writes: append([]StateUpdate{}, s.writes...),
		nRead:  make(map[string]int, len(s.nRead)),
		nAcc:   s.nAcc,
		model:  s.model,
	}
	for k, v := range s.meta {
		c.meta[k] = v
	}
	for k, v := range s.nRead {
		c.nRead[k] = v
	}
	return c
}

func (s *pathState) assume(c *expr.Expr) {
	s.conds = append(s.conds, c)
	if s.model != nil && !expr.Eval(c, s.model).IsTrue() {
		s.model = nil // witness no longer covers this path
	}
}

// exec drives the exploration of one Run call.
type exec struct {
	eng  *Engine
	prog *ir.Program
	pre  []*expr.Expr
	out  []*Segment
}

// feasibleM reports whether the path extended by extra can still be
// satisfied, returning a concrete witness of (conds ∧ extra) when one is
// known. Unknown counts as feasible with a nil witness (sound
// over-approximation). The cached per-path witness is consulted first:
// when it satisfies extra, no solver query is needed.
func (x *exec) feasibleM(st *pathState, extra *expr.Expr) (bool, *expr.Assignment) {
	if extra.IsFalse() {
		return false, nil
	}
	if st.model != nil && expr.Eval(extra, st.model).IsTrue() {
		return true, st.model
	}
	if x.eng.Opts.PruneMode == PruneFold {
		return true, nil
	}
	cons := make([]*expr.Expr, 0, len(x.pre)+len(st.conds)+1)
	cons = append(cons, x.pre...)
	cons = append(cons, st.conds...)
	if !extra.IsTrue() {
		cons = append(cons, extra)
	}
	x.eng.stats.SolverChecks++
	r, m := x.eng.session.Check(cons)
	if r == smt.Unsat {
		x.eng.stats.ForksCut++
		return false, nil
	}
	if r == smt.Unknown {
		return true, nil
	}
	return true, m
}

// feasible is feasibleM without witness plumbing.
func (x *exec) feasible(st *pathState, extra *expr.Expr) bool {
	ok, _ := x.feasibleM(st, extra)
	return ok
}

// forkWith returns a fork of st constrained by cond, carrying witness m
// (which must satisfy the fork's full constraint set, or be nil).
func forkWith(st *pathState, cond *expr.Expr, m *expr.Assignment) *pathState {
	cs := st.fork()
	cs.assume(cond)
	cs.model = m
	return cs
}

func (x *exec) emitSegment(st *pathState, disp ir.Disposition, port int, crash *CrashRecord) error {
	if len(x.out) >= x.eng.maxSegments() {
		return ErrBudget
	}
	seg := &Segment{
		Element:     x.prog.Name,
		Index:       len(x.out),
		Cond:        append([]*expr.Expr{}, st.conds...),
		Pkt:         st.pkt,
		Meta:        st.meta,
		Disposition: disp,
		Port:        port,
		Crash:       crash,
		Steps:       st.steps,
		Reads:       st.reads,
		Writes:      st.writes,
	}
	x.out = append(x.out, seg)
	x.eng.stats.Segments++
	return nil
}

// blockOutcome signals how a block finished on a given path.
type blockOutcome uint8

const (
	fellThrough blockOutcome = iota
	brokeLoop
)

// block executes the whole element body on st. Every path must
// terminate (the builder guarantees it); leftover continuations become
// defensive crash segments.
func (x *exec) block(body []Stmt, st *pathState) error {
	conts, err := x.runBlock(body, st)
	if err != nil {
		return err
	}
	for _, c := range conts {
		if err := x.emitSegment(c.st, ir.Crashed, 0, &CrashRecord{Kind: ir.CrashAssert, Msg: "fell off program end"}); err != nil {
			return err
		}
	}
	return nil
}

// Stmt aliases keep signatures readable.
type Stmt = ir.Stmt

type continuation struct {
	st  *pathState
	how blockOutcome
}

// runBlock symbolically executes body over st, returning every
// continuation state: paths that reached the block end (fellThrough) and
// paths that hit a break inside it (brokeLoop, to be resolved by the
// nearest enclosing loop). Terminated paths emit segments as a side
// effect.
func (x *exec) runBlock(body []Stmt, st *pathState) ([]continuation, error) {
	states := []*pathState{st}
	var escaped []continuation
	for _, s := range body {
		var next []*pathState
		for _, cur := range states {
			cur.steps++
			x.eng.stats.StepsSymbex++
			if x.eng.stats.StepsSymbex > x.eng.maxSteps() {
				return nil, ErrBudget
			}
			produced, conts, err := x.step(s, cur)
			if err != nil {
				return nil, err
			}
			next = append(next, produced...)
			escaped = append(escaped, conts...)
		}
		states = next
		if len(states) == 0 {
			break
		}
	}
	out := escaped
	for _, s2 := range states {
		out = append(out, continuation{st: s2, how: fellThrough})
	}
	return out, nil
}

// step executes one statement on one path state, returning the states
// that continue to the next statement in the same block. Paths that
// terminate (emit/drop/crash) emit segments; paths that break out of a
// loop are recorded on the exec's breakStates stack.
func (x *exec) step(s Stmt, st *pathState) ([]*pathState, []continuation, error) {
	switch stmt := s.(type) {
	case ir.ConstStmt:
		st.regs[stmt.Dst] = expr.ConstV(stmt.Val)
	case ir.BinStmt:
		a, b := st.regs[stmt.A], st.regs[stmt.B]
		if stmt.Op == ir.UDiv || stmt.Op == ir.URem {
			zero := expr.Const(b.Width(), 0)
			isZero := expr.Eq(b, zero)
			// Crash branch.
			if ok, m := x.feasibleM(st, isZero); ok {
				cs := forkWith(st, isZero, m)
				if err := x.emitSegment(cs, ir.Crashed, 0, &CrashRecord{Kind: ir.CrashDivZero,
					Msg: fmt.Sprintf("%s by zero in %s", stmt.Op, x.prog.Name)}); err != nil {
					return nil, nil, err
				}
			}
			notZero := expr.Not(isZero)
			ok, m := x.feasibleM(st, notZero)
			if !ok {
				return nil, nil, nil
			}
			st.assume(notZero)
			st.model = m
		}
		st.regs[stmt.Dst] = symBin(stmt.Op, a, b)
	case ir.NotStmt:
		st.regs[stmt.Dst] = expr.Not(st.regs[stmt.A])
	case ir.CastStmt:
		w := x.prog.RegWidth(stmt.Dst)
		switch stmt.Kind {
		case ir.ZExt:
			st.regs[stmt.Dst] = expr.ZExt(st.regs[stmt.A], w)
		case ir.SExt:
			st.regs[stmt.Dst] = expr.SExt(st.regs[stmt.A], w)
		case ir.Trunc:
			st.regs[stmt.Dst] = expr.Trunc(st.regs[stmt.A], w)
		}
	case ir.SelStmt:
		st.regs[stmt.Dst] = expr.Ite(st.regs[stmt.Cond], st.regs[stmt.A], st.regs[stmt.B])
	case ir.LoadPktStmt:
		off := st.regs[stmt.Off]
		ok, err := x.boundsCheck(st, off, stmt.N)
		if err != nil || !ok {
			return nil, nil, err
		}
		st.regs[stmt.Dst] = expr.SelectWide(st.pkt, off, stmt.N)
	case ir.StorePktStmt:
		off := st.regs[stmt.Off]
		ok, err := x.boundsCheck(st, off, stmt.N)
		if err != nil || !ok {
			return nil, nil, err
		}
		st.pkt = expr.StoreWide(st.pkt, off, st.regs[stmt.Src], stmt.N)
	case ir.PktLenStmt:
		st.regs[stmt.Dst] = st.plen
	case ir.MetaLoadStmt:
		w := x.prog.RegWidth(stmt.Dst)
		v, okm := st.meta[stmt.Slot]
		if !okm {
			v = MetaVar(stmt.Slot, w)
		}
		st.regs[stmt.Dst] = v
	case ir.MetaStoreStmt:
		st.meta[stmt.Slot] = st.regs[stmt.Src]
	case ir.StateReadStmt:
		if st.nRead == nil {
			st.nRead = map[string]int{}
		}
		d, _ := x.prog.StateDeclByName(stmt.Store)
		n := st.nRead[stmt.Store]
		st.nRead[stmt.Store] = n + 1
		// Fresh unconstrained result, per the paper's data-structure
		// model: a read may return any previously written value or the
		// default. The verifier's bad-value analysis refines this.
		v := expr.Var(fmt.Sprintf("%s%s.%d", StateReadPrefix, stmt.Store, n), d.ValW)
		st.reads = append(st.reads, StateAccess{Store: stmt.Store, Key: st.regs[stmt.Key], Var: v, Seq: st.nAcc})
		st.nAcc++
		st.regs[stmt.Dst] = v
	case ir.StateWriteStmt:
		st.writes = append(st.writes, StateUpdate{Store: stmt.Store, Key: st.regs[stmt.Key], Val: st.regs[stmt.Val], Seq: st.nAcc})
		st.nAcc++
	case ir.StaticLookupStmt:
		return x.staticLookup(stmt, st)
	case ir.AssertStmt:
		c := st.regs[stmt.Cond]
		notC := expr.Not(c)
		if ok, m := x.feasibleM(st, notC); ok {
			cs := forkWith(st, notC, m)
			if err := x.emitSegment(cs, ir.Crashed, 0, &CrashRecord{Kind: ir.CrashAssert,
				Msg: fmt.Sprintf("%s in %s", stmt.Msg, x.prog.Name)}); err != nil {
				return nil, nil, err
			}
		}
		ok, m := x.feasibleM(st, c)
		if !ok {
			return nil, nil, nil
		}
		st.assume(c)
		st.model = m
	case ir.IfStmt:
		return x.ifStmt(stmt, st)
	case ir.LoopStmt:
		if x.eng.Opts.LoopMode == LoopUnroll {
			return x.loopUnroll(stmt, st)
		}
		return x.loopSummarize(stmt, st)
	case ir.BreakStmt:
		return nil, []continuation{{st: st, how: brokeLoop}}, nil
	case ir.EmitStmt:
		return nil, nil, x.emitSegment(st, ir.Emitted, stmt.Port, nil)
	case ir.DropStmt:
		return nil, nil, x.emitSegment(st, ir.Dropped, 0, nil)
	default:
		panic(fmt.Sprintf("symbex: unknown statement %T", s))
	}
	return []*pathState{st}, nil, nil
}

func symBin(op ir.BinOp, a, b *expr.Expr) *expr.Expr {
	m := map[ir.BinOp]expr.Op{
		ir.Add: expr.OpAdd, ir.Sub: expr.OpSub, ir.Mul: expr.OpMul,
		ir.UDiv: expr.OpUDiv, ir.URem: expr.OpURem, ir.And: expr.OpAnd,
		ir.Or: expr.OpOr, ir.Xor: expr.OpXor, ir.Shl: expr.OpShl,
		ir.LShr: expr.OpLShr, ir.AShr: expr.OpAShr, ir.Eq: expr.OpEq,
		ir.Ne: expr.OpNe, ir.Ult: expr.OpUlt, ir.Ule: expr.OpUle,
		ir.Slt: expr.OpSlt, ir.Sle: expr.OpSle,
	}
	return expr.Bin(m[op], a, b)
}

// boundsCheck forks the out-of-bounds crash path and constrains st to
// the in-bounds case; it returns false when the in-bounds case is
// infeasible.
func (x *exec) boundsCheck(st *pathState, off *expr.Expr, n int) (bool, error) {
	end := expr.Add(expr.ZExt(off, 32), expr.Const(32, uint64(n)))
	// Overflow-safe: off + n can wrap only when off > 2^32 - n, which is
	// itself out of bounds for any real packet length; include the
	// wrap condition in the OOB branch.
	inBounds := expr.And(expr.Ule(end, st.plen), expr.Ule(off, end))
	oob := expr.Not(inBounds)
	if ok, m := x.feasibleM(st, oob); ok {
		cs := forkWith(st, oob, m)
		if err := x.emitSegment(cs, ir.Crashed, 0, &CrashRecord{Kind: ir.CrashOOB,
			Msg: fmt.Sprintf("packet access beyond length in %s", x.prog.Name)}); err != nil {
			return false, err
		}
	}
	ok, m := x.feasibleM(st, inBounds)
	if !ok {
		return false, nil
	}
	st.assume(inBounds)
	st.model = m
	return true, nil
}

// staticLookup forks one path per table range plus the default, the
// range-compressed static state lookup of the paper.
func (x *exec) staticLookup(stmt ir.StaticLookupStmt, st *pathState) ([]*pathState, []continuation, error) {
	t, _ := x.prog.TableByName(stmt.Table)
	key := st.regs[stmt.Key]
	if kv, ok := key.IsConst(); ok {
		v, _ := t.Lookup(kv.U)
		st.regs[stmt.Dst] = expr.Const(t.ValW, v)
		return []*pathState{st}, nil, nil
	}
	var out []*pathState
	notAny := expr.True()
	for _, ent := range t.Entries {
		inRange := expr.And(
			expr.Ule(expr.Const(t.KeyW, ent.Lo), key),
			expr.Ule(key, expr.Const(t.KeyW, ent.Hi)),
		)
		if ok, m := x.feasibleM(st, inRange); ok {
			cs := forkWith(st, inRange, m)
			cs.regs[stmt.Dst] = expr.Const(t.ValW, ent.Val)
			out = append(out, cs)
		}
		notAny = expr.And(notAny, expr.Not(inRange))
	}
	if ok, m := x.feasibleM(st, notAny); ok {
		cs := forkWith(st, notAny, m)
		cs.regs[stmt.Dst] = expr.Const(t.ValW, t.Default)
		out = append(out, cs)
	}
	return out, nil, nil
}

// ifStmt forks on the condition and joins the surviving continuations.
func (x *exec) ifStmt(stmt ir.IfStmt, st *pathState) ([]*pathState, []continuation, error) {
	c := st.regs[stmt.Cond]
	var through []*pathState
	var conts []continuation
	explore := func(cond *expr.Expr, body []Stmt) error {
		ok, m := x.feasibleM(st, cond)
		if !ok {
			return nil
		}
		cs := st.fork()
		if !cond.IsTrue() {
			cs.assume(cond)
			cs.model = m
		}
		got, err := x.runBlock(body, cs)
		if err != nil {
			return err
		}
		for _, g := range got {
			if g.how == fellThrough {
				through = append(through, g.st)
			} else {
				conts = append(conts, g)
			}
		}
		return nil
	}
	if err := explore(c, stmt.Then); err != nil {
		return nil, nil, err
	}
	if err := explore(expr.Not(c), stmt.Else); err != nil {
		return nil, nil, err
	}
	return through, conts, nil
}

// loopUnroll inlines up to Bound iterations, the naive baseline.
func (x *exec) loopUnroll(stmt ir.LoopStmt, st *pathState) ([]*pathState, []continuation, error) {
	through := []*pathState{}
	active := []*pathState{st}
	for iter := 0; iter < stmt.Bound && len(active) > 0; iter++ {
		if iter > 0 {
			for _, a := range active {
				a.steps++ // back-edge cost, matching the interpreter
			}
		}
		var nextActive []*pathState
		for _, a := range active {
			got, err := x.runBlock(stmt.Body, a)
			if err != nil {
				return nil, nil, err
			}
			for _, g := range got {
				if g.how == brokeLoop {
					through = append(through, g.st)
				} else {
					nextActive = append(nextActive, g.st)
				}
			}
		}
		active = nextActive
	}
	// Paths that completed all iterations fall through too.
	through = append(through, active...)
	return through, nil, nil
}
