// Package symbex implements symbolic execution of element IR.
//
// This is the reproduction's stand-in for the S2E engine the paper used:
// it executes an ir.Program with a fully symbolic packet (a symbolic bit
// vector, as in the paper), forking at every data-dependent branch, and
// produces one Segment per feasible complete path through the element —
// exactly the per-element artifacts of the paper's Step 1:
//
//   - the path constraint C (over the symbolic input packet, packet
//     length, metadata annotations, and unconstrained state reads);
//   - the symbolic state S: the output packet as a store chain over the
//     input array (Segment.Pkt), final metadata (Segment.Meta), and the
//     output port or drop. The composition layer threads this output
//     state through stitched paths, which is what lets functional specs
//     (DESIGN.md §6) relate a pipeline's input packet to its output
//     packet;
//   - the dynamic instruction count (for the bounded-execution property);
//   - a crash tag when the path faults (assert, division by zero,
//     out-of-bounds packet access) — the "suspect" marker.
//
// Loops are handled two ways, selected by Options.LoopMode:
//
//   - LoopUnroll inlines the body up to its static bound, the naive
//     strategy the paper estimates at "millions of segments" for the IP
//     options element;
//   - LoopSummarize applies the paper's decomposition: the body is
//     symbexed once as a "mini-element" with fresh symbolic loop-carried
//     state, and iterations are composed by substitution with eager
//     infeasibility pruning, the same mechanism used to compose pipeline
//     elements;
//   - LoopMerge (the default) additionally merges per-iteration
//     continuations into one state with ite-selected values, keeping
//     loop exploration linear in the bound (loop.go).
//
// Mutable data structures (StateRead/StateWrite) follow the paper's
// modeling: a read returns a fresh unconstrained symbolic value and is
// logged, a write is logged; the verifier later checks whether any "bad"
// read value could actually have been written.
//
// Feasibility checks run on an incremental solver session per engine
// (DESIGN.md §2), with per-path witness caching so most forks never
// reach the solver.
//
// A Summary (summary.go) packages one element's segment set as an
// engine-independent artifact with a stable binary codec
// (EncodeSummary/DecodeSummary, DESIGN.md §7): decoding re-interns
// every term through the expr constructors, so a summary loaded from
// the verifier's persistent store composes exactly like one the engine
// just produced.
//
// Sequence execution (seq.go, DESIGN.md §8) lifts the single-packet
// model to packet sequences: SeqState holds an ordered symbolic write
// log per store, ThreadState replays a path's state accesses in their
// recorded interleaving (the Seq field on StateAccess/StateUpdate)
// against it, and ScopeSubst renames every per-packet input into a
// per-step namespace — so k packets through an element are k
// substitutions over the segment set, never k re-executions. Initial
// state is either the declared defaults (InitDefault, bounded checks
// and induction base cases) or an arbitrary Ackermann-encoded store
// (InitSymbolic, the induction hypothesis of verify's k-induction).
package symbex
