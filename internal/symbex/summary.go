package symbex

// Summary artifacts: the serializable form of a Step-1 result
// (DESIGN.md §7). A Summary is engine-independent — it carries only the
// segment set (path constraints, packet store chains, metadata, state
// access logs, crash records) plus the exactness flag, all expressed in
// the hash-consed expr universe. EncodeSummary/DecodeSummary are the
// stable binary codec behind the verifier's on-disk summary store:
// decoding re-interns every term through the expr constructors, so a
// loaded summary composes exactly like a freshly computed one.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"vsd/internal/expr"
	"vsd/internal/ir"
)

// Summary is the complete, portable Step-1 artifact for one element
// program: its segment set and whether loop-state merging made the
// per-segment step counts upper bounds rather than exact values.
type Summary struct {
	Segments []*Segment
	Merged   bool
}

// summaryMagic versions the segment-table layout; the expr record
// stream is versioned separately by its own tags. v2 added the
// access-order Seq field to state reads and writes (sequence execution
// needs the interleaving); v1 artifacts fail the magic check and decode
// as store misses, which re-summarizes — exactly the invalidation the
// format change requires.
const summaryMagic = "vsdsum2\n"

// EncodeSummary serializes s into a self-contained byte stream:
// the magic, one shared expr/array record stream, and the segment
// table referencing it by node index.
func EncodeSummary(s *Summary) []byte {
	enc := expr.NewEncoder()
	var seg []byte
	u := func(v uint64) { seg = binary.AppendUvarint(seg, v) }
	str := func(v string) { u(uint64(len(v))); seg = append(seg, v...) }
	u(boolU(s.Merged))
	u(uint64(len(s.Segments)))
	for _, sg := range s.Segments {
		str(sg.Element)
		u(uint64(sg.Index))
		u(uint64(len(sg.Cond)))
		for _, c := range sg.Cond {
			u(enc.AddExpr(c))
		}
		u(enc.AddArray(sg.Pkt))
		slots := make([]string, 0, len(sg.Meta))
		for k := range sg.Meta {
			slots = append(slots, k)
		}
		sort.Strings(slots)
		u(uint64(len(slots)))
		for _, k := range slots {
			str(k)
			u(enc.AddExpr(sg.Meta[k]))
		}
		u(uint64(sg.Disposition))
		u(uint64(sg.Port))
		if sg.Crash != nil {
			u(1)
			u(uint64(sg.Crash.Kind))
			str(sg.Crash.Msg)
		} else {
			u(0)
		}
		u(uint64(sg.Steps))
		u(uint64(len(sg.Reads)))
		for _, rd := range sg.Reads {
			str(rd.Store)
			u(enc.AddExpr(rd.Key))
			u(enc.AddExpr(rd.Var))
			u(uint64(rd.Seq))
		}
		u(uint64(len(sg.Writes)))
		for _, wr := range sg.Writes {
			str(wr.Store)
			u(enc.AddExpr(wr.Key))
			u(enc.AddExpr(wr.Val))
			u(uint64(wr.Seq))
		}
	}
	out := append([]byte{}, summaryMagic...)
	nodes := enc.Bytes()
	out = binary.AppendUvarint(out, uint64(len(nodes)))
	out = append(out, nodes...)
	return append(out, seg...)
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// DecodeSummary parses an EncodeSummary stream, re-interning every term
// into the process's expression universe. Any malformation — truncation,
// unknown tags, out-of-range references, width violations — yields an
// error, never a panic: the store treats a failed decode as a cache miss
// and falls back to re-summarizing.
func DecodeSummary(data []byte) (s *Summary, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("symbex: corrupt summary: %v", p)
		}
	}()
	if len(data) < len(summaryMagic) || string(data[:len(summaryMagic)]) != summaryMagic {
		return nil, errors.New("symbex: not a summary artifact (bad magic)")
	}
	data = data[len(summaryMagic):]
	nodeLen, n := binary.Uvarint(data)
	if n <= 0 || nodeLen > uint64(len(data)-n) {
		return nil, errors.New("symbex: corrupt summary: truncated node stream")
	}
	data = data[n:]
	tab, rest, err := expr.DecodeTable(data[:nodeLen])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("symbex: corrupt summary: trailing bytes in node stream")
	}
	r := &sreader{data: data[nodeLen:], tab: tab}
	s = &Summary{Merged: r.u64() != 0}
	nSegs := r.u64()
	if r.err == nil && nSegs > uint64(len(r.data)) {
		return nil, errors.New("symbex: corrupt summary: segment count exceeds input")
	}
	for i := uint64(0); i < nSegs && r.err == nil; i++ {
		sg := &Segment{
			Element: r.str(),
			Index:   int(r.u64()),
		}
		nCond := r.u64()
		for j := uint64(0); j < nCond && r.err == nil; j++ {
			sg.Cond = append(sg.Cond, r.expr())
		}
		sg.Pkt = r.array()
		nMeta := r.u64()
		if nMeta > 0 && r.err == nil {
			sg.Meta = make(map[string]*expr.Expr, nMeta)
			for j := uint64(0); j < nMeta && r.err == nil; j++ {
				k := r.str()
				sg.Meta[k] = r.expr()
			}
		}
		disp := r.u64()
		if r.err == nil && disp > uint64(ir.Crashed) {
			r.err = fmt.Errorf("symbex: corrupt summary: bad disposition %d", disp)
		}
		sg.Disposition = ir.Disposition(disp)
		sg.Port = int(r.u64())
		if r.u64() != 0 {
			kind := r.u64()
			if r.err == nil && kind > uint64(ir.CrashOOB) {
				r.err = fmt.Errorf("symbex: corrupt summary: bad crash kind %d", kind)
			}
			sg.Crash = &CrashRecord{Kind: ir.CrashKind(kind), Msg: r.str()}
		}
		sg.Steps = int64(r.u64())
		nReads := r.u64()
		for j := uint64(0); j < nReads && r.err == nil; j++ {
			sg.Reads = append(sg.Reads, StateAccess{Store: r.str(), Key: r.expr(), Var: r.expr(), Seq: int(r.u64())})
		}
		nWrites := r.u64()
		for j := uint64(0); j < nWrites && r.err == nil; j++ {
			sg.Writes = append(sg.Writes, StateUpdate{Store: r.str(), Key: r.expr(), Val: r.expr(), Seq: int(r.u64())})
		}
		s.Segments = append(s.Segments, sg)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, errors.New("symbex: corrupt summary: trailing bytes")
	}
	return s, nil
}

// sreader decodes the segment table with error-once semantics.
type sreader struct {
	data []byte
	pos  int
	tab  *expr.Table
	err  error
}

func (r *sreader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = errors.New("symbex: corrupt summary: truncated varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *sreader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.pos) {
		r.err = errors.New("symbex: corrupt summary: truncated string")
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *sreader) expr() *expr.Expr {
	id := r.u64()
	if r.err != nil {
		return nil
	}
	e, err := r.tab.Expr(id)
	if err != nil {
		r.err = err
		return nil
	}
	return e
}

func (r *sreader) array() *expr.Array {
	id := r.u64()
	if r.err != nil {
		return nil
	}
	a, err := r.tab.Array(id)
	if err != nil {
		r.err = err
		return nil
	}
	return a
}
