package symbex

import (
	"fmt"

	"vsd/internal/expr"
	"vsd/internal/ir"
)

// This file implements the paper's loop decomposition: "If a loop has t
// iterations, we view it as a sequence of t mini-elements, each one
// corresponding to one iteration of the loop. [...] we symbex one
// mini-element in isolation, then use the results to reason about the
// entire loop."
//
// The loop body is symbolically executed exactly once against fully
// generic inputs — fresh variables for every register, a fresh packet
// array, fresh metadata — yielding a set of bodySummary values: the
// body's segments, expressed over those generic inputs. Composing
// iteration k is then pure substitution (the parent path's current state
// replaces the generic inputs) plus a feasibility check, the same
// mechanism internal/verify uses to compose pipeline elements.

// Generic input names used by loop-body summaries. They never escape:
// instantiation substitutes all of them.
const (
	loopPktName   = "lpkt"
	loopLenName   = "llen"
	loopRegPrefix = "lr"
	loopMetaPref  = "lm."
)

// summaryKind is how a body path ended.
type summaryKind uint8

const (
	bodyFellThrough summaryKind = iota // continue to next iteration
	bodyBroke                          // break: exit the loop
	bodyTerminated                     // emit/drop/crash: the element ends inside the loop
)

// bodySummary is one path through the loop body, over generic inputs.
type bodySummary struct {
	how   summaryKind
	conds []*expr.Expr
	// Effects (always present).
	pkt    *expr.Array
	meta   map[string]*expr.Expr
	steps  int64
	reads  []StateAccess
	writes []StateUpdate
	// regs are the final register values, needed for fellThrough and
	// brokeLoop to continue the parent path.
	regs []*expr.Expr
	// Terminal information for bodyTerminated.
	disposition ir.Disposition
	port        int
	crash       *CrashRecord
}

// loopKey gives a LoopStmt a stable identity for memoization: statement
// values are copied when ranged over, but the body's backing array is
// built once by the Builder and shared by all copies.
func loopKey(stmt ir.LoopStmt) *ir.Stmt {
	if len(stmt.Body) == 0 {
		return nil
	}
	return &stmt.Body[0]
}

// summaries returns the memoized mini-element summaries for the loop.
func (x *exec) summaries(stmt ir.LoopStmt) ([]*bodySummary, error) {
	key := loopKey(stmt)
	if got, ok := x.eng.loopMemo[key]; ok {
		return got, nil
	}
	// Build the generic input state.
	st := &pathState{
		prog: x.prog,
		regs: make([]*expr.Expr, len(x.prog.RegWidths)),
		pkt:  expr.BaseArray(loopPktName),
		plen: expr.Var(loopLenName, 32),
		meta: map[string]*expr.Expr{},
	}
	for i, w := range x.prog.RegWidths {
		st.regs[i] = expr.Var(fmt.Sprintf("%s%d", loopRegPrefix, i), w)
	}
	for slot, w := range x.prog.MetaSlots {
		st.meta[slot] = expr.Var(loopMetaPref+slot, w)
	}
	// Execute the body once in a sub-exec that captures terminated
	// segments separately instead of emitting them.
	sub := &exec{eng: x.eng, prog: x.prog}
	conts, err := sub.runBlock(stmt.Body, st)
	if err != nil {
		return nil, err
	}
	var sums []*bodySummary
	for _, seg := range sub.out {
		sums = append(sums, &bodySummary{
			how:         bodyTerminated,
			conds:       seg.Cond,
			pkt:         seg.Pkt,
			meta:        seg.Meta,
			steps:       seg.Steps,
			reads:       seg.Reads,
			writes:      seg.Writes,
			disposition: seg.Disposition,
			port:        seg.Port,
			crash:       seg.Crash,
		})
	}
	for _, c := range conts {
		how := bodyFellThrough
		if c.how == brokeLoop {
			how = bodyBroke
		}
		sums = append(sums, &bodySummary{
			how:    how,
			conds:  c.st.conds,
			pkt:    c.st.pkt,
			meta:   c.st.meta,
			steps:  c.st.steps,
			reads:  c.st.reads,
			writes: c.st.writes,
			regs:   c.st.regs,
		})
	}
	x.eng.loopMemo[key] = sums
	return sums, nil
}

// instantiate applies a body summary to a concrete parent path state,
// returning the successor state (with conds appended and effects
// applied) or nil if infeasible.
func (x *exec) instantiate(sum *bodySummary, parent *pathState) (*pathState, error) {
	sub := expr.NewSubst()
	sub.BindArr(loopPktName, parent.pkt)
	sub.BindVar(loopLenName, parent.plen)
	for i, r := range parent.regs {
		sub.BindVar(fmt.Sprintf("%s%d", loopRegPrefix, i), r)
	}
	for slot, w := range x.prog.MetaSlots {
		v, ok := parent.meta[slot]
		if !ok {
			v = MetaVar(slot, w)
		}
		sub.BindVar(loopMetaPref+slot, v)
	}
	// Rename the summary's state-read variables to fresh parent-scope
	// names: each dynamic iteration performs its own reads.
	cs := parent.fork()
	if cs.nRead == nil {
		cs.nRead = map[string]int{}
	}
	for _, rd := range sum.reads {
		n := cs.nRead[rd.Store]
		cs.nRead[rd.Store] = n + 1
		fresh := expr.Var(fmt.Sprintf("%s%s.%d", StateReadPrefix, rd.Store, n), rd.Var.Width())
		sub.BindVar(rd.Var.Name, fresh)
	}
	// Feasibility of the instantiated conditions.
	newConds := make([]*expr.Expr, 0, len(sum.conds))
	for _, c := range sum.conds {
		ic := sub.Apply(c)
		if ic.IsTrue() {
			continue
		}
		if ic.IsFalse() {
			return nil, nil
		}
		newConds = append(newConds, ic)
	}
	if len(newConds) > 0 {
		ok, m := x.feasibleM(parent, expr.And(newConds...))
		if !ok {
			return nil, nil
		}
		for _, c := range newConds {
			cs.assume(c)
		}
		cs.model = m
	}
	cs.pkt = sub.ApplyArray(sum.pkt)
	for slot, v := range sum.meta {
		cs.meta[slot] = sub.Apply(v)
	}
	cs.steps = parent.steps + sum.steps
	// Access-order numbers shift by the parent's counter so the body's
	// read/write interleaving stays exact in the instantiated path.
	base := parent.nAcc
	for _, rd := range sum.reads {
		cs.reads = append(cs.reads, StateAccess{
			Store: rd.Store,
			Key:   sub.Apply(rd.Key),
			Var:   sub.Apply(rd.Var),
			Seq:   base + rd.Seq,
		})
	}
	for _, wr := range sum.writes {
		cs.writes = append(cs.writes, StateUpdate{
			Store: wr.Store,
			Key:   sub.Apply(wr.Key),
			Val:   sub.Apply(wr.Val),
			Seq:   base + wr.Seq,
		})
	}
	cs.nAcc = base + AccessSpan(sum.reads, sum.writes)
	if sum.regs != nil {
		for i, r := range sum.regs {
			cs.regs[i] = sub.Apply(r)
		}
	}
	return cs, nil
}

// loopSummarize drives a loop using mini-element summaries: a DFS over
// iterations where each step is substitution plus a feasibility check —
// no re-execution of the body. In LoopMerge mode the continuation states
// of each iteration are merged per parent, keeping the frontier linear
// in the bound.
func (x *exec) loopSummarize(stmt ir.LoopStmt, st *pathState) ([]*pathState, []continuation, error) {
	if len(stmt.Body) == 0 {
		return []*pathState{st}, nil, nil
	}
	sums, err := x.summaries(stmt)
	if err != nil {
		return nil, nil, err
	}
	merge := x.eng.Opts.LoopMode == LoopMerge
	var through []*pathState
	// In merge mode, paths that terminate inside the loop are collected
	// and merged per terminal kind against the loop-entry state before
	// segments are emitted: forty per-iteration "malformed option" exits
	// become one segment with a disjunctive constraint, and downstream
	// composition sees a handful of loop segments instead of hundreds.
	type termKey struct {
		disp  ir.Disposition
		port  int
		kind  ir.CrashKind
		msg   string
		crash bool
	}
	terminated := map[termKey][]*pathState{}
	var termOrder []termKey
	emitTerm := func(cs *pathState, sum *bodySummary) error {
		if !merge {
			return x.emitSegment(cs, sum.disposition, sum.port, sum.crash)
		}
		k := termKey{disp: sum.disposition, port: sum.port}
		if sum.crash != nil {
			k.crash = true
			k.kind = sum.crash.Kind
			k.msg = sum.crash.Msg
		}
		if _, ok := terminated[k]; !ok {
			termOrder = append(termOrder, k)
		}
		terminated[k] = append(terminated[k], cs)
		return nil
	}
	active := []*pathState{st}
	for iter := 0; iter < stmt.Bound && len(active) > 0; iter++ {
		if iter > 0 {
			for _, a := range active {
				a.steps++ // back-edge cost, matching the interpreter
			}
		}
		var next []*pathState
		var broke []*pathState
		for _, a := range active {
			var nextHere, brokeHere []*pathState
			for _, sum := range sums {
				cs, err := x.instantiate(sum, a)
				if err != nil {
					return nil, nil, err
				}
				if cs == nil {
					continue
				}
				switch sum.how {
				case bodyTerminated:
					if err := emitTerm(cs, sum); err != nil {
						return nil, nil, err
					}
				case bodyBroke:
					brokeHere = append(brokeHere, cs)
				case bodyFellThrough:
					nextHere = append(nextHere, cs)
				}
			}
			if merge {
				nextHere = x.mergeStates(a, nextHere)
				brokeHere = x.mergeStates(a, brokeHere)
			}
			next = append(next, nextHere...)
			broke = append(broke, brokeHere...)
		}
		through = append(through, broke...)
		active = next
	}
	through = append(through, active...)
	if merge {
		for _, k := range termOrder {
			var crash *CrashRecord
			if k.crash {
				crash = &CrashRecord{Kind: k.kind, Msg: k.msg}
			}
			for _, m := range x.mergeStates(st, terminated[k]) {
				if err := x.emitSegment(m, k.disp, k.port, crash); err != nil {
					return nil, nil, err
				}
			}
		}
		through = x.mergeStates(st, through)
	}
	return through, nil, nil
}

// mergeStates merges sibling continuation states derived from the same
// parent into one state per packet-array value: conditions become a
// disjunction of the siblings' condition deltas, register and metadata
// values become ite-chains guarded by those deltas, and the step count
// becomes the maximum (an upper bound — Stats.Merged records the loss of
// exactness). Sibling deltas are mutually exclusive by construction
// (they partition the body's input space), so the ite guards are
// unambiguous.
func (x *exec) mergeStates(parent *pathState, states []*pathState) []*pathState {
	if len(states) <= 1 {
		return states
	}
	groups := map[*expr.Array][]*pathState{}
	var order []*expr.Array
	for _, s := range states {
		if _, ok := groups[s.pkt]; !ok {
			order = append(order, s.pkt)
		}
		groups[s.pkt] = append(groups[s.pkt], s)
	}
	var out []*pathState
	base := len(parent.conds)
	for _, pktKey := range order {
		g := groups[pktKey]
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		x.eng.stats.Merged = true
		deltas := make([]*expr.Expr, len(g))
		for i, s := range g {
			deltas[i] = expr.And(s.conds[base:]...)
		}
		m := g[0].fork()
		m.conds = append(append([]*expr.Expr{}, parent.conds...), expr.Or(deltas...))
		// Values: fold right-to-left so g[0] ends outermost.
		for r := range m.regs {
			v := g[len(g)-1].regs[r]
			for i := len(g) - 2; i >= 0; i-- {
				if g[i].regs[r] != v {
					v = expr.Ite(deltas[i], g[i].regs[r], v)
				}
			}
			m.regs[r] = v
		}
		slots := map[string]bool{}
		for _, s := range g {
			for slot := range s.meta {
				slots[slot] = true
			}
		}
		for slot := range slots {
			valOf := func(s *pathState) *expr.Expr {
				if v, ok := s.meta[slot]; ok {
					return v
				}
				if v, ok := parent.meta[slot]; ok {
					return v
				}
				return MetaVar(slot, x.prog.MetaSlots[slot])
			}
			v := valOf(g[len(g)-1])
			for i := len(g) - 2; i >= 0; i-- {
				if vi := valOf(g[i]); vi != v {
					v = expr.Ite(deltas[i], vi, v)
				}
			}
			m.meta[slot] = v
		}
		// Steps: worst case across siblings.
		for _, s := range g[1:] {
			if s.steps > m.steps {
				m.steps = s.steps
			}
		}
		// Reads and writes: union (sound over-approximation for the
		// bad-value analysis); fresh-name counters take the maximum so
		// future reads cannot collide with any sibling's names.
		seenReads := map[*expr.Expr]bool{}
		for _, rd := range m.reads {
			seenReads[rd.Var] = true
		}
		for _, s := range g[1:] {
			for _, rd := range s.reads {
				if !seenReads[rd.Var] {
					seenReads[rd.Var] = true
					m.reads = append(m.reads, rd)
				}
			}
			m.writes = append(m.writes, s.writes[len(parent.writes):]...)
			if s.nAcc > m.nAcc {
				m.nAcc = s.nAcc
			}
			for store, n := range s.nRead {
				if m.nRead == nil {
					m.nRead = map[string]int{}
				}
				if n > m.nRead[store] {
					m.nRead[store] = n
				}
			}
		}
		// Any sibling's witness satisfies the disjunction.
		m.model = nil
		for _, s := range g {
			if s.model != nil {
				m.model = s.model
				break
			}
		}
		out = append(out, m)
	}
	return out
}
