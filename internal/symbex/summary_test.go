package symbex

import (
	"math/rand"
	"testing"

	"vsd/internal/bv"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
)

// summarizeStateful builds and summarizes an element exercising every
// segment feature: packet loads/stores, metadata, state reads/writes,
// crashes (bounds + divide), multiple dispositions, and a loop.
func summarizeStateful(t *testing.T) *Summary {
	t.Helper()
	b := ir.NewBuilder("Rich", 1, 2)
	b.DeclareState(ir.StateDecl{Name: "flows", KeyW: 32, ValW: 32, Default: 1})
	v := b.LoadPktC(0, 2)
	m := b.MetaLoad("mark", 16)
	b.MetaStore("mark", b.Bin(ir.Add, m, v))
	key := b.ZExt(v, 32)
	cnt := b.StateRead("flows", key)
	q := b.Bin(ir.UDiv, b.ConstU(32, 100), cnt) // divide crash branch
	b.StateWrite("flows", key, q)
	b.Loop(2, func() {
		b.StorePkt(b.ConstU(32, 2), b.ConstU(8, 0xfe), 1)
	})
	b.If(b.BinC(ir.Ult, v, 1000), func() {
		b.Emit(0)
	}, func() {
		b.If(b.BinC(ir.Ult, v, 40000), func() { b.Drop() }, nil)
		b.Emit(1)
	})
	prog := b.MustBuild()
	eng := New(smt.New(smt.Options{}), Options{})
	segs, err := eng.Run(prog, DefaultInput(14, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return &Summary{Segments: segs, Merged: eng.Stats().Merged}
}

// TestSummaryRoundTrip: encode → decode must reproduce every segment
// field, with all expression nodes pointer-identical (re-interning into
// the same hash-consed universe).
func TestSummaryRoundTrip(t *testing.T) {
	sum := summarizeStateful(t)
	got, err := DecodeSummary(EncodeSummary(sum))
	if err != nil {
		t.Fatal(err)
	}
	if got.Merged != sum.Merged {
		t.Errorf("Merged = %v, want %v", got.Merged, sum.Merged)
	}
	if len(got.Segments) != len(sum.Segments) {
		t.Fatalf("segments = %d, want %d", len(got.Segments), len(sum.Segments))
	}
	for i, want := range sum.Segments {
		g := got.Segments[i]
		if g.Element != want.Element || g.Index != want.Index ||
			g.Disposition != want.Disposition || g.Port != want.Port ||
			g.Steps != want.Steps {
			t.Errorf("segment %d scalar fields differ: %+v vs %+v", i, g, want)
		}
		if (g.Crash == nil) != (want.Crash == nil) {
			t.Fatalf("segment %d crash presence differs", i)
		}
		if g.Crash != nil && *g.Crash != *want.Crash {
			t.Errorf("segment %d crash = %+v, want %+v", i, g.Crash, want.Crash)
		}
		if len(g.Cond) != len(want.Cond) {
			t.Fatalf("segment %d: %d conds, want %d", i, len(g.Cond), len(want.Cond))
		}
		for j := range want.Cond {
			if g.Cond[j] != want.Cond[j] {
				t.Errorf("segment %d cond %d not pointer-equal", i, j)
			}
		}
		if g.Pkt != want.Pkt {
			t.Errorf("segment %d packet array not pointer-equal", i)
		}
		if len(g.Meta) != len(want.Meta) {
			t.Fatalf("segment %d meta size differs", i)
		}
		for k, e := range want.Meta {
			if g.Meta[k] != e {
				t.Errorf("segment %d meta %q not pointer-equal", i, k)
			}
		}
		// Slices compare element-wise (nil vs empty is not a difference:
		// the engine's fork() materializes empty slices, the decoder
		// leaves absent ones nil).
		if len(g.Reads) != len(want.Reads) {
			t.Fatalf("segment %d: %d reads, want %d", i, len(g.Reads), len(want.Reads))
		}
		for j := range want.Reads {
			if g.Reads[j] != want.Reads[j] {
				t.Errorf("segment %d read %d differs", i, j)
			}
		}
		if len(g.Writes) != len(want.Writes) {
			t.Fatalf("segment %d: %d writes, want %d", i, len(g.Writes), len(want.Writes))
		}
		for j := range want.Writes {
			if g.Writes[j] != want.Writes[j] {
				t.Errorf("segment %d write %d differs", i, j)
			}
		}
	}
}

// TestSummaryRoundTripMerged covers the loop-merging path (ite-heavy
// packet chains) on a realistic element shape.
func TestSummaryRoundTripMerged(t *testing.T) {
	b := ir.NewBuilder("Opts", 1, 1)
	n := b.LoadPktC(0, 1)
	b.Loop(4, func() {
		done := b.BinC(ir.Eq, n, 0)
		b.If(done, func() { b.Break() }, nil)
		b.StorePkt(b.ZExt(n, 32), b.ConstU(8, 1), 1)
		b.SetReg(n, b.BinC(ir.Sub, n, 1))
	})
	b.Emit(0)
	prog := b.MustBuild()
	eng := New(smt.New(smt.Options{}), Options{LoopMode: LoopMerge})
	segs, err := eng.Run(prog, DefaultInput(14, 32))
	if err != nil {
		t.Fatal(err)
	}
	sum := &Summary{Segments: segs, Merged: eng.Stats().Merged}
	got, err := DecodeSummary(EncodeSummary(sum))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sum.Segments {
		if got.Segments[i].Pkt != sum.Segments[i].Pkt {
			t.Errorf("merged segment %d packet array not pointer-equal", i)
		}
		if expr.And(got.Segments[i].Cond...) != expr.And(sum.Segments[i].Cond...) {
			t.Errorf("merged segment %d conds not pointer-equal", i)
		}
	}
}

// TestSummaryTruncation: every proper prefix must fail with an error,
// never panic and never decode — the store's corrupt-entry fallback
// depends on this.
func TestSummaryTruncation(t *testing.T) {
	data := EncodeSummary(summarizeStateful(t))
	for n := 0; n < len(data); n += 1 {
		if _, err := DecodeSummary(data[:n]); err == nil {
			t.Fatalf("prefix %d/%d decoded without error", n, len(data))
		}
	}
}

// TestSummaryMutation: random corruption must never panic.
func TestSummaryMutation(t *testing.T) {
	data := EncodeSummary(summarizeStateful(t))
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1500; i++ {
		mut := append([]byte{}, data...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		DecodeSummary(mut) // must not panic
	}
}

// TestSummaryBadValues rejects structurally invalid dispositions and
// crash kinds even when the stream is otherwise well-formed.
func TestSummaryBadValues(t *testing.T) {
	sum := &Summary{Segments: []*Segment{{
		Element:     "X",
		Cond:        []*expr.Expr{expr.Eq(expr.Var("v", bv.W8), expr.Const(bv.W8, 3))},
		Pkt:         expr.BaseArray(PktArrayName),
		Disposition: ir.Emitted,
	}}}
	data := EncodeSummary(sum)
	if _, err := DecodeSummary(data); err != nil {
		t.Fatalf("baseline must decode: %v", err)
	}
	if _, err := DecodeSummary([]byte("not a summary at all")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeSummary(append(append([]byte{}, data...), 0x7)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
