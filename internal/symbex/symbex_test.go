package symbex

import (
	"errors"
	"math/rand"
	"testing"

	"vsd/internal/bv"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/smt"
)

func newEngine(opts Options) *Engine { return New(smt.New(smt.Options{}), opts) }

// buildFig1 is the paper's Fig. 1 toy program (input via metadata).
func buildFig1() *ir.Program {
	b := ir.NewBuilder("Fig1", 1, 1)
	in := b.MetaLoad("in", 32)
	zero := b.ConstU(32, 0)
	b.Assert(b.Bin(ir.Sle, zero, in), "in >= 0")
	b.If(b.Bin(ir.Slt, in, b.ConstU(32, 10)), func() {
		b.MetaStore("out", b.ConstU(32, 10))
	}, func() {
		b.MetaStore("out", in)
	})
	b.Emit(0)
	return b.MustBuild()
}

func TestFig1SegmentsMatchPaper(t *testing.T) {
	// The paper's Fig. 1 execution tree has exactly three feasible
	// paths: crash (in < 0), return 10 (0 <= in < 10), return in
	// (in >= 10).
	e := newEngine(Options{})
	segs, err := e.Run(buildFig1(), DefaultInput(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3:\n%v", len(segs), describe(segs))
	}
	var crashes, emits int
	for _, s := range segs {
		switch s.Disposition {
		case ir.Crashed:
			crashes++
			if s.Crash.Kind != ir.CrashAssert {
				t.Errorf("crash kind = %v, want assert", s.Crash.Kind)
			}
		case ir.Emitted:
			emits++
		}
	}
	if crashes != 1 || emits != 2 {
		t.Errorf("crashes=%d emits=%d, want 1 and 2", crashes, emits)
	}
}

func describe(segs []*Segment) string {
	out := ""
	for _, s := range segs {
		out += s.CondExpr().String() + " -> " + s.Disposition.String() + "\n"
	}
	return out
}

// buildParser is a small packet parser: dispatch on byte 0, read a word,
// divide by a packet byte, and classify. It exercises loads, stores,
// division crashes, bounds crashes, and If forking.
func buildParser() *ir.Program {
	b := ir.NewBuilder("Parser", 1, 2)
	tag := b.LoadPktC(0, 1)
	b.If(b.BinC(Eq, tag, 1), func() {
		v := b.LoadPktC(1, 4) // may be out of bounds on short packets
		b.If(b.BinC(ir.Ult, v, 1000), func() {
			b.StorePkt(b.ConstU(32, 1), b.ConstU(32, 0xdeadbeef), 4)
			b.Emit(0)
		}, func() {
			b.Emit(1)
		})
	}, nil)
	b.If(b.BinC(Eq, tag, 2), func() {
		d := b.LoadPktC(1, 1)
		q := b.Bin(ir.UDiv, b.ConstU(8, 100), d) // crash when pkt[1] == 0
		b.MetaStore("q", q)
		b.Emit(0)
	}, nil)
	b.Drop()
	return b.MustBuild()
}

// Eq is a shorthand used by buildParser.
const Eq = ir.Eq

// evalSegment reports whether asn satisfies every condition of s.
func evalSegment(s *Segment, asn *expr.Assignment) bool {
	for _, c := range s.Cond {
		if !expr.Eval(c, asn).IsTrue() {
			return false
		}
	}
	return true
}

// assignmentFor builds the evaluation environment corresponding to a
// concrete packet.
func assignmentFor(pkt []byte, meta map[string]bv.V) *expr.Assignment {
	asn := expr.NewAssignment()
	asn.Arrays[PktArrayName] = pkt
	asn.Vars[PktLenVar] = bv.New(32, uint64(len(pkt)))
	for k, v := range meta {
		asn.Vars[MetaVarPrefix+k] = v
	}
	return asn
}

// checkAgreement runs the cross-validation property at the heart of the
// test suite: for a concrete packet, exactly one segment's constraint is
// satisfied, and that segment's symbolic effect predicts the concrete
// interpreter's behaviour exactly (disposition, port, crash kind, step
// count, every packet byte, every written metadata slot).
func checkAgreement(t *testing.T, p *ir.Program, segs []*Segment, pkt []byte, meta map[string]bv.V) {
	t.Helper()
	asn := assignmentFor(pkt, meta)
	var match *Segment
	for _, s := range segs {
		if evalSegment(s, asn) {
			if match != nil {
				t.Fatalf("packet % x satisfies two segments:\n%s\n%s",
					pkt, match.CondExpr(), s.CondExpr())
			}
			match = s
		}
	}
	if match == nil {
		t.Fatalf("packet % x satisfies no segment of %s", pkt, p.Name)
	}
	env := &ir.ExecEnv{Pkt: append([]byte{}, pkt...), Meta: map[string]bv.V{}, State: ir.NewState()}
	for k, v := range meta {
		env.Meta[k] = v
	}
	out := ir.Exec(p, env)
	if out.Disposition != match.Disposition {
		t.Fatalf("packet % x: concrete %v, symbolic %v", pkt, out.Disposition, match.Disposition)
	}
	if out.Disposition == ir.Emitted && out.Port != match.Port {
		t.Fatalf("packet % x: concrete port %d, symbolic %d", pkt, out.Port, match.Port)
	}
	if out.Disposition == ir.Crashed && out.Crash.Kind != match.Crash.Kind {
		t.Fatalf("packet % x: concrete crash %v, symbolic %v", pkt, out.Crash.Kind, match.Crash.Kind)
	}
	if out.Steps != match.Steps {
		t.Fatalf("packet % x: concrete steps %d, symbolic %d", pkt, out.Steps, match.Steps)
	}
	if out.Disposition != ir.Crashed {
		for i := range pkt {
			want := env.Pkt[i]
			got := expr.Eval(expr.Select(match.Pkt, expr.Const(32, uint64(i))), asn)
			if byte(got.Int()) != want {
				t.Fatalf("packet % x: byte %d concrete %#x symbolic %#x", pkt, i, want, got.Int())
			}
		}
		for slot, e := range match.Meta {
			got := expr.Eval(e, asn)
			want, ok := env.Meta[slot]
			if !ok {
				t.Fatalf("symbolic wrote meta %q but concrete did not", slot)
			}
			if got.U != want.U {
				t.Fatalf("meta %q: concrete %v symbolic %v", slot, want, got)
			}
		}
	}
}

func TestParserSymbexAgreesWithInterpreter(t *testing.T) {
	p := buildParser()
	for _, mode := range []LoopMode{LoopSummarize, LoopUnroll} {
		e := newEngine(Options{LoopMode: mode})
		segs, err := e.Run(p, DefaultInput(1, 16))
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(3))
		for trial := 0; trial < 300; trial++ {
			n := 1 + r.Intn(16)
			pkt := make([]byte, n)
			r.Read(pkt)
			// Bias byte 0 toward interesting tags.
			if r.Intn(2) == 0 {
				pkt[0] = byte(1 + r.Intn(2))
			}
			if n > 1 && r.Intn(3) == 0 {
				pkt[1] = 0 // trigger the division crash path
			}
			checkAgreement(t, p, segs, pkt, nil)
		}
	}
}

func TestParserFindsAllCrashKinds(t *testing.T) {
	e := newEngine(Options{})
	segs, err := e.Run(buildParser(), DefaultInput(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[ir.CrashKind]bool{}
	for _, s := range segs {
		if s.Crash != nil {
			kinds[s.Crash.Kind] = true
		}
	}
	if !kinds[ir.CrashOOB] {
		t.Error("missed the out-of-bounds crash (tag 1, short packet)")
	}
	if !kinds[ir.CrashDivZero] {
		t.Error("missed the division-by-zero crash (tag 2, pkt[1]=0)")
	}
}

// buildOptionsLoop models the shape of IP options parsing: a cursor
// walks TLV-encoded options with a bounded loop.
func buildOptionsLoop(bound int) *ir.Program {
	b := ir.NewBuilder("TLVWalk", 1, 1)
	cur := b.Mov(b.ConstU(32, 1))
	end := b.ZExt(b.LoadPktC(0, 1), 32) // option bytes end (from packet)
	b.Loop(bound, func() {
		done := b.Bin(ir.Ule, end, cur)
		b.If(done, func() { b.Break() }, nil)
		typ := b.LoadPkt(cur, 1)
		b.If(b.BinC(ir.Eq, typ, 0), func() { b.Break() }, nil) // EOL
		b.If(b.BinC(ir.Eq, typ, 1), func() {                   // NOP: advance 1
			b.SetReg(cur, b.BinC(ir.Add, cur, 1))
		}, func() { // TLV: advance by length byte
			ln := b.ZExt(b.LoadPkt(b.BinC(ir.Add, cur, 1), 1), 32)
			b.Assert(b.Bin(ir.Ule, b.ConstU(32, 2), ln), "option length >= 2")
			b.SetReg(cur, b.Bin(ir.Add, cur, ln))
		})
	})
	b.Emit(0)
	return b.MustBuild()
}

func TestLoopModesAgreeWithInterpreter(t *testing.T) {
	p := buildOptionsLoop(4)
	for _, mode := range []LoopMode{LoopUnroll, LoopSummarize} {
		e := newEngine(Options{LoopMode: mode})
		segs, err := e.Run(p, DefaultInput(1, 12))
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		r := rand.New(rand.NewSource(11))
		for trial := 0; trial < 250; trial++ {
			n := 1 + r.Intn(12)
			pkt := make([]byte, n)
			r.Read(pkt)
			pkt[0] = byte(r.Intn(n + 2)) // end cursor near packet size
			for i := 1; i < n; i++ {
				// Bias option bytes toward the interesting kinds.
				switch r.Intn(4) {
				case 0:
					pkt[i] = 0
				case 1:
					pkt[i] = 1
				case 2:
					pkt[i] = byte(2 + r.Intn(4))
				}
			}
			checkAgreement(t, p, segs, pkt, nil)
		}
	}
}

func TestLoopSummarizeExploresFewerStepsThanUnroll(t *testing.T) {
	// The point of the paper's loop decomposition: the body is executed
	// once; iterations are composed. The unrolled engine re-executes the
	// body per iteration per path, so its symbolic step count grows much
	// faster with the bound.
	p := buildOptionsLoop(5)
	eu := newEngine(Options{LoopMode: LoopUnroll})
	if _, err := eu.Run(p, DefaultInput(1, 12)); err != nil {
		t.Fatal(err)
	}
	es := newEngine(Options{LoopMode: LoopSummarize})
	if _, err := es.Run(p, DefaultInput(1, 12)); err != nil {
		t.Fatal(err)
	}
	if es.Stats().StepsSymbex >= eu.Stats().StepsSymbex {
		t.Errorf("summarize executed %d statements, unroll %d; expected summarize < unroll",
			es.Stats().StepsSymbex, eu.Stats().StepsSymbex)
	}
}

func TestStaticLookupForksPerRange(t *testing.T) {
	table := &ir.StaticTable{
		Name: "rt", KeyW: 32, ValW: 8,
		Entries: []ir.RangeEntry{
			{Lo: 100, Hi: 199, Val: 1},
			{Lo: 200, Hi: 299, Val: 2},
		},
		Default: 0,
	}
	b := ir.NewBuilder("Route", 1, 3)
	b.DeclareTable(table)
	dst := b.LoadPktC(0, 4)
	port := b.StaticLookup("rt", dst)
	b.If(b.BinC(ir.Eq, b.ZExt(port, 32), 1), func() { b.Emit(1) }, nil)
	b.If(b.BinC(ir.Eq, b.ZExt(port, 32), 2), func() { b.Emit(2) }, nil)
	b.Emit(0)
	p := b.MustBuild()

	e := newEngine(Options{})
	segs, err := e.Run(p, DefaultInput(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	// 3 lookup outcomes + 1 OOB crash branch is impossible (len >= 4), so
	// expect exactly 3 emitted segments on ports 1, 2, 0.
	ports := map[int]int{}
	for _, s := range segs {
		if s.Disposition != ir.Emitted {
			t.Fatalf("unexpected %v segment: %s", s.Disposition, s.CondExpr())
		}
		ports[s.Port]++
	}
	if ports[0] != 1 || ports[1] != 1 || ports[2] != 1 {
		t.Errorf("port distribution = %v, want one segment per port", ports)
	}
}

func TestStateReadsAreLoggedAndUnconstrained(t *testing.T) {
	b := ir.NewBuilder("Flow", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "tbl", KeyW: 32, ValW: 32})
	key := b.LoadPktC(0, 4)
	v := b.StateRead("tbl", key)
	// Counter overflow assertion, the paper's example of a checkable
	// property on stateful elements.
	b.Assert(b.BinC(ir.Ult, v, 0xffffffff), "counter overflow")
	b.StateWrite("tbl", key, b.BinC(ir.Add, v, 1))
	b.Emit(0)
	p := b.MustBuild()

	e := newEngine(Options{})
	segs, err := e.Run(p, DefaultInput(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	var crash, emit *Segment
	for _, s := range segs {
		if s.Disposition == ir.Crashed {
			crash = s
		}
		if s.Disposition == ir.Emitted {
			emit = s
		}
	}
	if crash == nil {
		t.Fatal("overflow crash not found: the state read must be unconstrained")
	}
	if emit == nil {
		t.Fatal("normal path not found")
	}
	if len(emit.Reads) != 1 || len(emit.Writes) != 1 {
		t.Fatalf("reads=%d writes=%d, want 1 and 1", len(emit.Reads), len(emit.Writes))
	}
	if emit.Reads[0].Store != "tbl" || emit.Writes[0].Store != "tbl" {
		t.Error("wrong store names in access log")
	}
}

func TestSegmentBudgetExceeded(t *testing.T) {
	// A chain of independent packet-byte branches has 2^12 paths; a
	// budget of 16 segments must abort with ErrBudget.
	b := ir.NewBuilder("Wide", 1, 1)
	acc := b.Mov(b.ConstU(8, 0))
	for i := 0; i < 12; i++ {
		v := b.LoadPktC(uint64(i), 1)
		b.If(b.BinC(ir.Ult, v, 128), func() {
			b.SetReg(acc, b.BinC(ir.Add, acc, 1))
		}, nil)
	}
	b.MetaStore("acc", acc)
	b.Emit(0)
	p := b.MustBuild()

	e := newEngine(Options{MaxSegments: 16})
	_, err := e.Run(p, DefaultInput(12, 64))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestPruneFoldStillSound(t *testing.T) {
	// With solver pruning off, extra (infeasible) segments may appear,
	// but every concrete packet must still match exactly one segment
	// whose prediction is correct.
	p := buildParser()
	e := newEngine(Options{PruneMode: PruneFold})
	segs, err := e.Run(p, DefaultInput(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(16)
		pkt := make([]byte, n)
		r.Read(pkt)
		checkAgreement(t, p, segs, pkt, nil)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	p := buildOptionsLoop(8)
	e := newEngine(Options{LoopMode: LoopUnroll, MaxSteps: 50})
	_, err := e.Run(p, DefaultInput(1, 40))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
