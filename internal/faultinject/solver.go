package faultinject

import "vsd/internal/smt"

// SolverHook returns the per-search fault function to plug into
// verify.Options.SolverFaultHook (or smt.Options.FaultHook directly).
// Each SAT search consumes one decision from the injector's stream:
// NoFault lets the search run, ForceUnknown/ForceTimeout make it
// degrade, ForcePanic raises inside it — which must then be contained
// by the verify layer's recover, never reach the daemon.
func (in *Injector) SolverHook() func() smt.SolveFault {
	return func() smt.SolveFault {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.SolverBudget > 0 &&
			in.stats.SolverUnknowns+in.stats.SolverTimeouts+in.stats.SolverPanics >= in.SolverBudget {
			return smt.NoFault
		}
		switch {
		case in.roll(in.Rates.SolverPanic):
			in.stats.SolverPanics++
			return smt.ForcePanic
		case in.roll(in.Rates.SolverTimeout):
			in.stats.SolverTimeouts++
			return smt.ForceTimeout
		case in.roll(in.Rates.SolverUnknown):
			in.stats.SolverUnknowns++
			return smt.ForceUnknown
		}
		return smt.NoFault
	}
}
