// Package faultinject is the deterministic fault-injection harness
// behind the robustness layer (DESIGN.md §9). It wraps the two places
// the certification service touches the outside world — the summary
// store's disk I/O and the SAT solver's search — and injects the
// failure modes the degradation ladder promises to absorb:
//
//   - store faults: torn writes, bit flips, write failures (ENOSPC),
//     stale artifacts under the wrong key, slow reads;
//   - solver faults: forced Unknown verdicts, forced timeouts, forced
//     panics inside the search.
//
// Every decision is drawn from one seeded splitmix64 stream, so a
// chaos run is a pure function of (corpus, seed): re-running with the
// same seed injects the same faults at the same points, which is what
// lets CI assert "same certified set as the clean run" instead of
// "probably fine". Determinism requires that the injector's decision
// points are visited in a deterministic order — chaos harnesses run
// the verifier with Parallelism 1 and a single queue worker.
package faultinject

import (
	"os"
	"sync"
	"time"
)

// Rates configures per-decision injection probabilities in [0,1].
// A zero Rates injects nothing.
type Rates struct {
	// Store-side faults, rolled per Save (the first three) or per Load
	// (the last two).
	TornWrite float64 // truncate the artifact after a successful save
	BitFlip   float64 // flip one payload byte after a successful save
	WriteFail float64 // drop the save entirely (ENOSPC)
	Stale     float64 // re-key the artifact before a load (wrong fingerprint)
	SlowRead  float64 // delay the load by SlowReadDelay

	// Solver-side faults, rolled per SAT search.
	SolverUnknown float64 // force the search to return Unknown
	SolverTimeout float64 // force the search to report a timeout
	SolverPanic   float64 // panic inside the search
}

// Stats counts injected faults by kind.
type Stats struct {
	TornWrites     int64
	BitFlips       int64
	WriteFailures  int64
	StaleArtifacts int64
	SlowReads      int64
	SolverUnknowns int64
	SolverTimeouts int64
	SolverPanics   int64
}

// Total sums all injected faults.
func (s Stats) Total() int64 {
	return s.TornWrites + s.BitFlips + s.WriteFailures + s.StaleArtifacts +
		s.SlowReads + s.SolverUnknowns + s.SolverTimeouts + s.SolverPanics
}

// Injector draws fault decisions from a seeded deterministic stream.
// Safe for concurrent use, but determinism across runs additionally
// requires a deterministic visit order (single-threaded verification).
type Injector struct {
	Rates Rates
	// SlowReadDelay is how long an injected slow read stalls
	// (default 10ms).
	SlowReadDelay time.Duration
	// SolverBudget caps total injected solver faults (0 = unlimited):
	// the burst subsides once the budget is spent, modelling a
	// transient crash storm. Solver faults are the only kind that can
	// degrade a verdict, so a finite budget is what lets a retrying
	// service provably converge back to the clean verdict set.
	SolverBudget int64

	mu    sync.Mutex
	state uint64
	stats Stats
}

// New returns an injector seeded with seed.
func New(seed uint64, rates Rates) *Injector {
	return &Injector{Rates: rates, state: seed}
}

// next is splitmix64: a full-period 64-bit stream good enough for
// fault scheduling and cheap enough to sit on the solver's hot path.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll consumes one decision and reports whether a fault with the
// given rate fires. Called under mu.
func (in *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(in.next()>>11)/(1<<53) < rate
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// corruptFile applies f to the file's bytes in place (best-effort: a
// vanished file injects nothing).
func corruptFile(path string, f func([]byte) []byte) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	os.WriteFile(path, f(data), 0o644)
}
