package faultinject

import (
	"time"

	"vsd/internal/ir"
	"vsd/internal/symbex"
	"vsd/internal/verify"
)

// Store wraps a DiskStore and injects the disk-side failure modes
// around it. The wrapped store's own validation (magic, embedded key,
// checksum) is the mechanism under test: every injected corruption
// must surface as a miss at the verify layer — re-summarization, never
// a wrong hit and never a panic. Store implements verify.SummaryStore.
type Store struct {
	in    *Injector
	inner *verify.DiskStore
}

// WrapStore interposes the injector on a disk store.
func WrapStore(in *Injector, inner *verify.DiskStore) *Store {
	return &Store{in: in, inner: inner}
}

// Inner returns the wrapped store (for its stats).
func (s *Store) Inner() *verify.DiskStore { return s.inner }

// Load implements verify.SummaryStore: it may stall (slow read) or
// re-key the artifact to a wrong fingerprint (stale artifact) before
// delegating; the inner store's content addressing must reject the
// stale entry.
func (s *Store) Load(fp ir.Fingerprint) (*symbex.Summary, bool) {
	s.in.mu.Lock()
	slow := s.in.roll(s.in.Rates.SlowRead)
	stale := s.in.roll(s.in.Rates.Stale)
	if slow {
		s.in.stats.SlowReads++
	}
	if stale {
		s.in.stats.StaleArtifacts++
	}
	delay := s.in.SlowReadDelay
	s.in.mu.Unlock()
	if slow {
		if delay == 0 {
			delay = 10 * time.Millisecond
		}
		time.Sleep(delay)
	}
	if stale {
		// A stale artifact is a well-formed entry that answers to the
		// wrong key — exactly what a mis-rename or a content drift would
		// produce. Flipping one embedded-fingerprint byte fabricates it.
		corruptFile(s.inner.Path(fp), func(data []byte) []byte {
			if i := staleOffset(len(data)); i >= 0 {
				data[i] ^= 0x01
			}
			return data
		})
	}
	return s.inner.Load(fp)
}

// staleOffset picks the byte to re-key: the first fingerprint byte,
// which sits right after the 10-byte magic. -1 when the file is too
// short to carry one.
func staleOffset(n int) int {
	const magicLen = 10 // "VSDSTORE1\n"
	if n <= magicLen {
		return -1
	}
	return magicLen
}

// Save implements verify.SummaryStore: it may drop the save (ENOSPC),
// or complete it and then tear or bit-flip the artifact on disk.
func (s *Store) Save(fp ir.Fingerprint, sum *symbex.Summary) {
	s.in.mu.Lock()
	fail := s.in.roll(s.in.Rates.WriteFail)
	torn := s.in.roll(s.in.Rates.TornWrite)
	flip := s.in.roll(s.in.Rates.BitFlip)
	switch {
	case fail:
		s.in.stats.WriteFailures++
	case torn:
		s.in.stats.TornWrites++
	case flip:
		s.in.stats.BitFlips++
	}
	s.in.mu.Unlock()
	if fail {
		return
	}
	s.inner.Save(fp, sum)
	switch {
	case torn:
		corruptFile(s.inner.Path(fp), func(data []byte) []byte {
			return data[:len(data)/2]
		})
	case flip:
		corruptFile(s.inner.Path(fp), func(data []byte) []byte {
			if len(data) > 0 {
				data[len(data)-1] ^= 0x40
			}
			return data
		})
	}
}
