package faultinject

import (
	"encoding/json"
	"testing"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/packet"
	"vsd/internal/verify"
)

func parsePipeline(t *testing.T, src string) *click.Pipeline {
	t.Helper()
	p, err := click.Parse(elements.Default(), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const safePipeline = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	ttl :: DecIPTTL;
	src -> cls; cls[0] -> strip -> chk; cls[1] -> Discard;
	chk[0] -> ttl; chk[1] -> Discard; ttl[1] -> Discard;
`

const crashyPipeline = `
	src :: InfiniteSource; e2 :: ToyE2; sink :: Discard;
	src -> e2 -> sink;
`

func TestSeedDeterminism(t *testing.T) {
	a := New(42, Rates{})
	b := New(42, Rates{})
	for i := 0; i < 4096; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
	c := New(43, Rates{})
	same := 0
	for i := 0; i < 64; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestSolverBudgetQuiesces pins the convergence lever: a budgeted
// injector stops firing solver faults once the budget is spent, so a
// retrying service is guaranteed a clean attempt eventually.
func TestSolverBudgetQuiesces(t *testing.T) {
	in := New(5, Rates{SolverUnknown: 1})
	in.SolverBudget = 3
	hook := in.SolverHook()
	fired := 0
	for i := 0; i < 100; i++ {
		if hook() != 0 { // smt.NoFault
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("budgeted injector fired %d solver faults, want exactly 3", fired)
	}
	if st := in.Stats(); st.SolverUnknowns != 3 {
		t.Fatalf("stats counted %d, want 3", st.SolverUnknowns)
	}
}

// runBatch runs a one-item-per-pipeline admission batch over the given
// store with the injector's solver hook attached, single-threaded.
func runBatch(t *testing.T, store verify.SummaryStore, in *Injector, srcs ...string) (*verify.Verifier, []verify.BatchVerdict) {
	t.Helper()
	opts := verify.Options{MinLen: packet.MinFrame, MaxLen: 48, Parallelism: 1, Store: store}
	if in != nil {
		opts.SolverFaultHook = in.SolverHook()
	}
	v := verify.New(opts)
	items := make([]verify.BatchItem, len(srcs))
	for i, src := range srcs {
		items[i] = verify.BatchItem{Name: string(rune('a' + i)), Pipeline: parsePipeline(t, src)}
	}
	return v, v.Batch(items)
}

func TestWriteFailDropsArtifacts(t *testing.T) {
	disk, err := verify.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := New(1, Rates{WriteFail: 1})
	_, verdicts := runBatch(t, WrapStore(in, disk), nil, safePipeline)
	if !verdicts[0].Certified {
		t.Fatalf("ENOSPC on saves must not affect the verdict: %+v", verdicts[0])
	}
	n, err := disk.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("WriteFail=1 persisted %d artifacts, want 0", n)
	}
	if st := in.Stats(); st.WriteFailures == 0 {
		t.Fatalf("write failures not counted: %+v", st)
	}
}

// TestCorruptionFaultsDegradeToMiss drives each disk-corruption mode at
// rate 1 through a cold-then-warm run: the warm run must re-summarize
// (misses, not wrong hits), reproduce the clean verdict byte for byte,
// and the store's corrupt counter must match the injected fault count.
func TestCorruptionFaultsDegradeToMiss(t *testing.T) {
	for _, tc := range []struct {
		name string
		cold Rates // faults applied while populating the store
		warm Rates // faults applied while reading it back
	}{
		{"torn-write", Rates{TornWrite: 1}, Rates{}},
		{"bit-flip", Rates{BitFlip: 1}, Rates{}},
		{"stale-artifact", Rates{}, Rates{Stale: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cleanDisk, err := verify.NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			_, clean := runBatch(t, cleanDisk, nil, safePipeline)

			disk, err := verify.NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			coldIn := New(7, tc.cold)
			_, cold := runBatch(t, WrapStore(coldIn, disk), nil, safePipeline)
			warmIn := New(7, tc.warm)
			warmV, warm := runBatch(t, WrapStore(warmIn, disk), nil, safePipeline)

			for i, got := range [][]verify.BatchVerdict{cold, warm} {
				a, _ := json.Marshal(clean[0])
				b, _ := json.Marshal(got[0])
				if string(a) != string(b) {
					t.Fatalf("run %d verdict drifted under %s:\nclean: %s\nfaulty: %s", i, tc.name, a, b)
				}
			}
			// The warm run may not consume poisoned artifacts as hits: every
			// injected corruption must be a rejection plus a re-summarize.
			st := warmV.Stats()
			if st.ElementsSummarized == 0 {
				t.Fatalf("%s: warm run did not re-summarize: %+v", tc.name, st)
			}
			injected := coldIn.Stats().Total() + warmIn.Stats().Total()
			if injected == 0 {
				t.Fatalf("%s: no faults injected", tc.name)
			}
			if disk.Stats().Corrupt == 0 {
				t.Fatalf("%s: store accepted corrupted artifacts: %+v", tc.name, disk.Stats())
			}
		})
	}
}

// TestStaleCountersMatchInjected pins the exact counter relationship on
// the stale path: a fully populated store read back under Stale=1 must
// reject exactly one artifact per injected stale fault.
func TestStaleCountersMatchInjected(t *testing.T) {
	disk, err := verify.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, verdicts := runBatch(t, disk, nil, safePipeline); !verdicts[0].Certified {
		t.Fatal("population run must certify")
	}
	before := disk.Stats().Corrupt
	in := New(99, Rates{Stale: 1})
	runBatch(t, WrapStore(in, disk), nil, safePipeline)
	injected := in.Stats().StaleArtifacts
	if injected == 0 {
		t.Fatal("no stale faults injected")
	}
	if got := disk.Stats().Corrupt - before; got != injected {
		t.Fatalf("store rejected %d artifacts for %d injected stale faults", got, injected)
	}
}

// TestDegradationLadderEndToEnd is the headline chaos property: a
// mixed-fault run over a mixed corpus crashes nothing, reports every
// injected solver panic as a contained panic, never certifies a
// submission with unresolved obligations, and every submission it DOES
// certify carries a verdict byte-identical to the clean run's.
func TestDegradationLadderEndToEnd(t *testing.T) {
	cleanDisk, err := verify.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, clean := runBatch(t, cleanDisk, nil, safePipeline, crashyPipeline)
	cleanByName := map[string]string{}
	for _, verdict := range clean {
		blob, _ := json.Marshal(verdict)
		cleanByName[verdict.Name] = string(blob)
	}

	disk, err := verify.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := New(0xc0ffee, Rates{
		SolverPanic:   0.05,
		SolverUnknown: 0.05,
		TornWrite:     0.5,
		Stale:         0.25,
	})
	v, faulty := runBatch(t, WrapStore(in, disk), in, safePipeline, crashyPipeline)

	ist := in.Stats()
	if ist.Total() == 0 {
		t.Fatal("chaos run injected nothing; raise the rates or change the seed")
	}
	vst := v.Stats()
	if vst.PanicsRecovered != int(ist.SolverPanics) {
		t.Fatalf("recovered %d panics for %d injected", vst.PanicsRecovered, ist.SolverPanics)
	}
	for _, verdict := range faulty {
		if verdict.Unresolved > 0 && verdict.Certified {
			t.Fatalf("%s: certified with %d unresolved obligations", verdict.Name, verdict.Unresolved)
		}
		if verdict.Certified {
			blob, _ := json.Marshal(verdict)
			if string(blob) != cleanByName[verdict.Name] {
				t.Fatalf("%s: certified verdict drifted under faults:\nclean: %s\nfaulty: %s",
					verdict.Name, cleanByName[verdict.Name], blob)
			}
		}
		// Degradation may withhold certification, never invent it: a
		// submission the clean run rejected stays rejected.
		var cleanVerdict verify.BatchVerdict
		json.Unmarshal([]byte(cleanByName[verdict.Name]), &cleanVerdict)
		if verdict.Certified && !cleanVerdict.Certified {
			t.Fatalf("%s: faults manufactured a certification", verdict.Name)
		}
	}
}
