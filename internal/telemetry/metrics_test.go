package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank percentile over a sorted slice —
// the oracle the bucketed histogram is checked against.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestBucketGeometry(t *testing.T) {
	// Every representable value maps into a bucket whose bounds
	// contain it, and the buckets tile the domain contiguously.
	values := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range values {
		idx := bucketIndex(v)
		lo, hi := bucketLower(idx), bucketUpper(idx)
		// hi == MaxInt64 marks the open-ended top bucket (+Inf).
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d mapped to bucket %d = [%d,%d)", v, idx, lo, hi)
		}
		// Relative bucket width bound: width <= lower/16 above the
		// exact range, which is the 6.25% error contract.
		if lo >= 16 && hi != math.MaxInt64 && hi-lo > lo/16 {
			t.Fatalf("bucket %d = [%d,%d) wider than 6.25%% of lower bound", idx, lo, hi)
		}
	}
	for idx := 0; idx < 500; idx++ {
		if got := bucketUpper(idx); got != bucketLower(idx+1) {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d", idx, got, idx+1, bucketLower(idx+1))
		}
		if bucketIndex(bucketLower(idx)) != idx {
			t.Fatalf("bucketLower(%d)=%d maps back to %d", idx, bucketLower(idx), bucketIndex(bucketLower(idx)))
		}
	}
}

func TestQuantileAgainstExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":  func() int64 { return rng.Int63n(1_000_000) },
		"exp-tail": func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(100_000)
			}
			return rng.Int63n(10_000)
		},
		"tiny":     func() int64 { return rng.Int63n(12) },
		"constant": func() int64 { return 777 },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			samples := make([]int64, 0, 5000)
			for i := 0; i < 5000; i++ {
				v := draw()
				samples = append(samples, v)
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
				exact := exactQuantile(samples, q)
				got := h.Quantile(q)
				tol := exact / 16 // 6.25% of the true value
				if tol < 1 {
					tol = 1
				}
				if got < exact-tol || got > exact+tol {
					t.Errorf("q=%g: histogram %d vs exact %d (tol %d)", q, got, exact, tol)
				}
			}
			if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
				t.Errorf("min/max %d/%d vs exact %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
			var sum int64
			for _, v := range samples {
				sum += v
			}
			if h.Sum() != sum || h.Count() != int64(len(samples)) {
				t.Errorf("sum/count %d/%d vs exact %d/%d", h.Sum(), h.Count(), sum, len(samples))
			}
		})
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 3000; i++ {
		v := rng.Int63n(1 << 30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		whole.Record(v)
	}
	merged := NewHistogram()
	merged.Merge(a)
	merged.Merge(b)
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge lost mass: count %d/%d sum %d/%d min %d/%d max %d/%d",
			merged.Count(), whole.Count(), merged.Sum(), whole.Sum(),
			merged.Min(), whole.Min(), merged.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merge changed q=%g: %d vs %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram is a no-op.
	before := merged.Summary()
	merged.Merge(NewHistogram())
	if merged.Summary() != before {
		t.Fatal("merging an empty histogram changed the summary")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost samples: count %d != %d", h.Count(), workers*per)
	}
	var bucketTotal int64
	for i := 0; i < histBuckets; i++ {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket mass %d != count %d", bucketTotal, workers*per)
	}
	if h.Quantile(1.0) < h.Quantile(0.5) {
		t.Fatal("quantiles not monotone")
	}
}

func TestNilMetricsAreInertAndAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", 1e9)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Record(123)
		_ = h.Quantile(0.5)
		_ = h.Summary()
		_ = c.Value()
		_ = g.Value()
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocates: %v allocs/op", allocs)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote output: %q", buf.String())
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vsd_requests_total", "requests admitted")
	c.Add(42)
	g := r.Gauge("vsd_queue_depth", "jobs pending")
	g.Set(7)
	r.GaugeFunc("vsd_cache_entries", "summary cache size", func() float64 { return 13 })
	h := r.Histogram("vsd_admission_latency_seconds", "admission latency", 1e9)
	h.Record(1_500_000) // 1.5ms
	h.Record(2_000_000)
	h.Record(500_000_000) // 0.5s

	// Idempotent re-registration hands back the same metric.
	if r.Counter("vsd_requests_total", "requests admitted") != c {
		t.Fatal("re-registration returned a different counter")
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE vsd_requests_total counter\nvsd_requests_total 42\n",
		"# TYPE vsd_queue_depth gauge\nvsd_queue_depth 7\n",
		"vsd_cache_entries 13\n",
		"# TYPE vsd_admission_latency_seconds histogram\n",
		`vsd_admission_latency_seconds_bucket{le="+Inf"} 3`,
		"vsd_admission_latency_seconds_count 3\n",
		"# HELP vsd_requests_total requests admitted\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted and le values increasing.
	idxA := strings.Index(out, "vsd_admission_latency_seconds")
	idxB := strings.Index(out, "vsd_cache_entries")
	idxC := strings.Index(out, "vsd_queue_depth")
	if !(idxA < idxB && idxB < idxC) {
		t.Errorf("families not sorted: %d %d %d", idxA, idxB, idxC)
	}
}
