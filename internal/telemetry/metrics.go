package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and serializes them in Prometheus text
// exposition format. A nil *Registry hands out nil metrics whose
// methods are allocation-free no-ops, so instrumented code never
// branches on "is telemetry on".
type Registry struct {
	mu     sync.Mutex
	names  []string // registration order is not stable; output is sorted
	metric map[string]metric
}

type metric interface {
	write(w io.Writer, name string)
	helpText() string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metric: make(map[string]metric)}
}

func (r *Registry) register(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metric[name]; ok {
		return old
	}
	r.metric[name] = m
	r.names = append(r.names, name)
	return m
}

// Counter returns the named monotonically increasing counter,
// creating it on first use. Nil registry returns nil (inert) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, &Counter{help: help}).(*Counter)
}

// Gauge returns the named settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, &Gauge{help: help}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from f at scrape
// time — ideal for surfacing existing Stats() snapshots (queue depth,
// cache size) without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.register(name, &gaugeFunc{help: help, f: f})
}

// Histogram returns the named log-bucketed histogram. unitDiv scales
// recorded raw values into exposition units: a latency histogram
// recording nanoseconds passes 1e9 so Prometheus sees seconds, a size
// histogram passes 1. Nil registry returns nil (inert) histogram.
func (r *Registry) Histogram(name, help string, unitDiv float64) *Histogram {
	if r == nil {
		return nil
	}
	if unitDiv <= 0 {
		unitDiv = 1
	}
	return r.register(name, &Histogram{help: help, unitDiv: unitDiv}).(*Histogram)
}

// WritePrometheus serializes every registered metric in Prometheus
// text exposition format, sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	ms := make(map[string]metric, len(r.metric))
	for k, v := range r.metric {
		ms[k] = v
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		m := ms[name]
		if h := m.helpText(); h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		m.write(w, name)
	}
}

// Counter is a monotonically increasing counter. Nil-safe.
type Counter struct {
	v    atomic.Int64
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) helpText() string { return c.help }
func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.v.Load())
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct {
	v    atomic.Int64 // math.Float64bits encoded
	help string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(int64(math.Float64bits(v)))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(uint64(g.v.Load()))
}

func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(g.Value()))
}

type gaugeFunc struct {
	help string
	f    func() float64
}

func (g *gaugeFunc) helpText() string { return g.help }
func (g *gaugeFunc) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(g.f()))
}

// Histogram bucket geometry: HDR-style log-linear buckets. Values
// 0..15 get exact unit buckets; above that, each power-of-two octave
// is split into 16 linear sub-buckets, so the bucket width is always
// at most 1/16 of the bucket's lower bound — every recorded value is
// reconstructed with <= 6.25% relative error, which makes the
// extracted p50/p95/p99 "exact enough" for latency work while the
// record path stays a shift, a mask and one atomic add.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // 16 sub-buckets per octave
	// Positive int64 values span exponents histSubBits..62, so the
	// highest bucket index is (62-histSubBits+1)*histSubCount+15 = 959.
	histBuckets = (63-histSubBits)*histSubCount + histSubCount // 960
)

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int(v>>uint(exp-histSubBits)) & (histSubCount - 1)
	return (exp-histSubBits+1)*histSubCount + sub
}

// bucketLower returns the smallest value mapping to bucket idx.
func bucketLower(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := idx/histSubCount + histSubBits - 1
	sub := idx % histSubCount
	return (int64(histSubCount) + int64(sub)) << uint(exp-histSubBits)
}

// bucketUpper returns the exclusive upper bound of bucket idx.
func bucketUpper(idx int) int64 {
	if idx+1 >= histBuckets {
		return math.MaxInt64
	}
	return bucketLower(idx + 1)
}

// Histogram is a concurrent log-bucketed histogram over non-negative
// int64 samples (typically nanoseconds). Record is lock-free; nil
// histograms ignore Record without allocating.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	// min and max store sample+1 so the zero value means "unset";
	// samples are clamped non-negative, so the encoding never wraps.
	min atomic.Int64
	max atomic.Int64

	help    string
	unitDiv float64
}

// NewHistogram builds a standalone histogram (outside any registry).
func NewHistogram() *Histogram { return &Histogram{unitDiv: 1} }

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	updateMin(&h.min, v+1)
	updateMax(&h.max, v+1)
}

func updateMin(a *atomic.Int64, enc int64) {
	for {
		cur := a.Load()
		if cur != 0 && cur <= enc {
			return
		}
		if a.CompareAndSwap(cur, enc) {
			return
		}
	}
}

func updateMax(a *atomic.Int64, enc int64) {
	for {
		cur := a.Load()
		if cur >= enc {
			return
		}
		if a.CompareAndSwap(cur, enc) {
			return
		}
	}
}

// Count returns the number of recorded samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	enc := h.min.Load()
	if enc == 0 {
		return 0
	}
	return enc - 1
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	enc := h.max.Load()
	if enc == 0 {
		return 0
	}
	return enc - 1
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded
// samples, accurate to the bucket geometry (<= 6.25% relative error).
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the sample we want, 1-based, matching the
	// nearest-rank definition used by the tests' exact oracle.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			// Midpoint of the bucket, clamped to observed extremes so
			// quantiles never step outside [Min, Max].
			lo, hi := bucketLower(i), bucketUpper(i)
			mid := lo + (hi-lo)/2
			if hi == math.MaxInt64 {
				mid = lo
			}
			if mn := h.Min(); mid < mn {
				mid = mn
			}
			if mx := h.Max(); mid > mx {
				mid = mx
			}
			return mid
		}
	}
	return h.Max()
}

// Merge adds all samples recorded in other into h (bucket-wise; min
// and max merge exactly).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	n := other.count.Load()
	if n == 0 {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.sum.Add(other.sum.Load())
	if enc := other.min.Load(); enc != 0 {
		updateMin(&h.min, enc)
	}
	if enc := other.max.Load(); enc != 0 {
		updateMax(&h.max, enc)
	}
	h.count.Add(n)
}

// HistSummary is a point-in-time percentile digest of a histogram.
type HistSummary struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	P50   int64
	P95   int64
	P99   int64
}

// Summary extracts count/sum/min/max and p50/p95/p99 in one call.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	return HistSummary{
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
}

func (h *Histogram) helpText() string { return h.help }

// write emits the histogram in Prometheus exposition format:
// cumulative _bucket{le=...} lines for each occupied bucket boundary,
// then the +Inf bucket, _sum and _count. Raw values are divided by
// unitDiv (1e9 turns recorded nanoseconds into seconds).
func (h *Histogram) write(w io.Writer, name string) {
	div := h.unitDiv
	if div <= 0 {
		div = 1
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if upper := bucketUpper(i); upper != math.MaxInt64 {
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				name, formatFloat(float64(upper)/div), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.sum.Load())/div))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
