package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock is a deterministic injectable clock.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { c.t += 1000; return c.t }

func TestTracerEmitsValidChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Opts{Now: clk.now})
	main := tr.Lane("verify")
	worker := tr.Lane("worker-0")

	outer := main.Begin("phase", "step1")
	inner := main.Begin("element", "summarize:CheckIPHeader")
	inner.SetInt("paths", 12)
	inner.SetStr("fingerprint", "ab12")
	inner.End()
	main.Instant("store", "store-hit")
	outer.End()

	solve := worker.Begin("smt", "obligation:crash?path3")
	solve.SetInt("conflicts", 64)
	solve.SetStr("verdict", "unsat")
	solve.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails own validator: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	var sawThreadName, sawArgs bool
	for _, e := range doc.TraceEvents {
		names = append(names, e["name"].(string))
		if e["ph"] == "M" && e["name"] == "thread_name" {
			sawThreadName = true
		}
		if e["name"] == "obligation:crash?path3" {
			args := e["args"].(map[string]any)
			if args["conflicts"].(float64) != 64 || args["verdict"].(string) != "unsat" {
				t.Fatalf("span args lost: %v", args)
			}
			sawArgs = true
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"step1", "summarize:CheckIPHeader", "store-hit", "obligation:crash?path3"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing event %q in %s", want, joined)
		}
	}
	if !sawThreadName || !sawArgs {
		t.Fatalf("thread_name=%v args=%v", sawThreadName, sawArgs)
	}
}

func TestNilTracerIsInertAndAllocationFree(t *testing.T) {
	var tr *Tracer
	lane := tr.Lane("anything")
	if lane != nil {
		t.Fatal("nil tracer returned a live lane")
	}
	allocs := testing.AllocsPerRun(200, func() {
		sp := lane.Begin("cat", "name")
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		_ = sp.Enabled()
		sp.End()
		lane.Instant("cat", "marker")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op", allocs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err == nil {
		t.Fatal("empty trace should fail validation (no spans)")
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents":`,
		"no array":        `{}`,
		"missing ph":      `{"traceEvents":[{"name":"a","ts":1}]}`,
		"negative ts":     `{"traceEvents":[{"name":"a","ph":"X","ts":-5,"dur":1}]}`,
		"missing dur":     `{"traceEvents":[{"name":"a","ph":"X","ts":1}]}`,
		"unsorted":        `{"traceEvents":[{"name":"a","ph":"X","ts":10,"dur":1},{"name":"b","ph":"X","ts":5,"dur":1}]}`,
		"partial overlap": `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":10},{"name":"b","ph":"X","ts":5,"dur":10}]}`,
		"bad phase":       `{"traceEvents":[{"name":"a","ph":"Q","ts":1}]}`,
	}
	for name, raw := range cases {
		if err := ValidateTrace([]byte(raw)); err == nil {
			t.Errorf("%s: validator accepted %s", name, raw)
		}
	}
	good := `{"traceEvents":[
		{"name":"thread_name","ph":"M","tid":0,"pid":1,"args":{"name":"w"}},
		{"name":"outer","ph":"X","ts":0,"dur":10,"tid":0},
		{"name":"inner","ph":"X","ts":2,"dur":3,"tid":0},
		{"name":"later","ph":"X","ts":6,"dur":4,"tid":0},
		{"name":"other-lane","ph":"X","ts":1,"dur":100,"tid":1},
		{"name":"mark","ph":"i","ts":3,"tid":0}]}`
	if err := ValidateTrace([]byte(good)); err != nil {
		t.Errorf("validator rejected well-formed trace: %v", err)
	}
}
