// Package telemetry is the observability spine of the repo: a span
// tracer that exports Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing), and a metrics registry with counters, gauges and
// log-bucketed latency histograms exposable in Prometheus text format.
//
// Everything in this package is nil-safe: a nil *Tracer, nil *Lane,
// zero Span, nil *Registry, nil *Counter, nil *Gauge and nil
// *Histogram all turn every method into a no-op that performs zero
// heap allocations. That is the contract that lets telemetry stay
// compiled into the hot paths (the verifier's solve loop, the queue
// worker, the VM dispatch) permanently: when the operator does not ask
// for a trace, the instrumented code is a nil check and nothing else,
// and the dataplane's AllocsPerRun gates keep it honest.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records spans and instants and serializes them as Chrome
// trace-event JSON. The zero value is not useful; construct with New.
// A nil *Tracer is fully functional as a disabled tracer.
type Tracer struct {
	mu      sync.Mutex
	now     func() int64 // monotonic nanoseconds
	events  []event
	lanes   []*Lane
	nextTID int
}

// Opts configures a Tracer.
type Opts struct {
	// Now returns a monotonic timestamp in nanoseconds. Injectable so
	// tests produce deterministic traces. Nil means "nanoseconds since
	// the tracer was created" on the real monotonic clock.
	Now func() int64
}

// event is one Chrome trace event. Complete spans use ph "X" with a
// duration; instants use ph "i"; metadata (thread names) uses ph "M".
type event struct {
	name string
	cat  string
	ph   string
	tid  int
	ts   int64 // nanoseconds
	dur  int64 // nanoseconds, ph "X" only
	args []Field
}

// Field is one key/value annotation on a span. Values are kept typed
// so that annotating a disabled span never boxes into an interface.
type Field struct {
	Key string
	Str string
	Int int64
	IsI bool
}

// New builds a Tracer. Pass Opts{} for the real clock.
func New(opts Opts) *Tracer {
	t := &Tracer{now: opts.Now}
	if t.now == nil {
		base := time.Now()
		t.now = func() int64 { return int64(time.Since(base)) }
	}
	return t
}

// Lane allocates a named event lane (a Chrome "thread"). Spans on one
// lane must be strictly nested, which is natural when a lane is owned
// by one goroutine (e.g. one verifier worker). Returns nil on a nil
// tracer.
func (t *Tracer) Lane(name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &Lane{t: t, tid: t.nextTID, name: name}
	t.nextTID++
	t.lanes = append(t.lanes, l)
	return l
}

// Lane is an ordered stream of spans sharing a Chrome tid. A nil
// *Lane is a disabled lane: Begin returns a zero Span and Instant is
// a no-op, both allocation-free.
type Lane struct {
	t    *Tracer
	tid  int
	name string
}

// Begin opens a span. End it with Span.End; annotate it before ending
// with SetInt/SetStr. On a nil lane the returned zero Span is inert.
func (l *Lane) Begin(cat, name string) Span {
	if l == nil {
		return Span{}
	}
	return Span{d: &spanData{lane: l, cat: cat, name: name, start: l.t.now()}}
}

// Instant records a zero-duration marker event on the lane.
func (l *Lane) Instant(cat, name string) {
	if l == nil {
		return
	}
	l.t.push(event{name: name, cat: cat, ph: "i", tid: l.tid, ts: l.t.now()})
}

// Span is an in-progress trace span. The zero Span (from a nil lane)
// ignores every method without allocating.
type Span struct {
	d *spanData
}

type spanData struct {
	lane  *Lane
	cat   string
	name  string
	start int64
	args  []Field
}

// Enabled reports whether the span is actually recording, letting
// callers skip expensive label construction on the disabled path.
func (s Span) Enabled() bool { return s.d != nil }

// SetInt attaches an integer annotation to the span.
func (s Span) SetInt(key string, v int64) {
	if s.d == nil {
		return
	}
	s.d.args = append(s.d.args, Field{Key: key, Int: v, IsI: true})
}

// SetStr attaches a string annotation to the span.
func (s Span) SetStr(key, v string) {
	if s.d == nil {
		return
	}
	s.d.args = append(s.d.args, Field{Key: key, Str: v})
}

// End closes the span and commits it to the tracer as a Chrome "X"
// (complete) event. Calling End on a zero Span is a no-op.
func (s Span) End() {
	if s.d == nil {
		return
	}
	l := s.d.lane
	end := l.t.now()
	dur := end - s.d.start
	if dur < 0 {
		dur = 0
	}
	l.t.push(event{
		name: s.d.name, cat: s.d.cat, ph: "X",
		tid: l.tid, ts: s.d.start, dur: dur, args: s.d.args,
	})
}

func (t *Tracer) push(e event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// jsonEvent is the wire form of one trace event. Timestamps and
// durations are microseconds (the Chrome convention); fractional
// microseconds keep full nanosecond precision.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON serializes all finished spans as a Chrome trace-event
// JSON object ({"traceEvents": [...]}) that Perfetto and
// chrome://tracing load directly. Events are ordered by (tid, ts) so
// the output is stable and the per-lane streams read top to bottom.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := make([]event, len(t.events))
	copy(events, t.events)
	lanes := make([]*Lane, len(t.lanes))
	copy(lanes, t.lanes)
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].tid != events[j].tid {
			return events[i].tid < events[j].tid
		}
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		// Outer spans first on identical start: longer duration wins.
		return events[i].dur > events[j].dur
	})

	out := make([]jsonEvent, 0, len(events)+len(lanes))
	for _, l := range lanes {
		out = append(out, jsonEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: l.tid,
			Args: map[string]any{"name": l.name},
		})
	}
	for _, e := range events {
		je := jsonEvent{
			Name: e.name, Cat: e.cat, Ph: e.ph, PID: 1, TID: e.tid,
			TS: float64(e.ts) / 1e3,
		}
		if e.ph == "X" {
			d := float64(e.dur) / 1e3
			je.Dur = &d
		}
		if e.ph == "i" {
			je.S = "t" // thread-scoped instant
		}
		if len(e.args) > 0 {
			je.Args = make(map[string]any, len(e.args))
			for _, f := range e.args {
				if f.IsI {
					je.Args[f.Key] = f.Int
				} else {
					je.Args[f.Key] = f.Str
				}
			}
		}
		out = append(out, je)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// WriteFile writes the trace to path via WriteJSON.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create trace file: %w", err)
	}
	werr := t.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
