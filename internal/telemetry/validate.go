package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ValidateTrace checks that data is well-formed Chrome trace-event
// JSON of the shape this package emits: an object with a traceEvents
// array whose "X" events have non-negative, per-lane monotone
// timestamps and non-negative durations, and whose spans nest
// properly within each lane (no partially overlapping intervals on
// one tid — exactly the property Perfetto needs to draw a lane as a
// flame graph). It is the schema gate behind `make trace-smoke`.
func ValidateTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			TID  int      `json:"tid"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}

	type span struct {
		name    string
		ts, dur float64
	}
	lanes := make(map[int][]span)
	for i, e := range doc.TraceEvents {
		if e.Ph == nil || e.Name == nil {
			return fmt.Errorf("trace: event %d missing ph or name", i)
		}
		switch *e.Ph {
		case "M":
			continue // metadata carries no timestamp contract
		case "X", "i", "I":
		default:
			return fmt.Errorf("trace: event %d (%s) has unexpected phase %q", i, *e.Name, *e.Ph)
		}
		if e.TS == nil || *e.TS < 0 {
			return fmt.Errorf("trace: event %d (%s) missing or negative ts", i, *e.Name)
		}
		if *e.Ph != "X" {
			continue
		}
		if e.Dur == nil || *e.Dur < 0 {
			return fmt.Errorf("trace: span %d (%s) missing or negative dur", i, *e.Name)
		}
		lanes[e.TID] = append(lanes[e.TID], span{name: *e.Name, ts: *e.TS, dur: *e.Dur})
	}

	var tids []int
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	total := 0
	for _, tid := range tids {
		spans := lanes[tid]
		total += len(spans)
		// Events in a lane must already be ordered by start time
		// (that is the monotonicity the emitter guarantees).
		for i := 1; i < len(spans); i++ {
			if spans[i].ts < spans[i-1].ts {
				return fmt.Errorf("trace: tid %d: span %q starts at %g before preceding span %q at %g",
					tid, spans[i].name, spans[i].ts, spans[i-1].name, spans[i-1].ts)
			}
		}
		// Balanced nesting: walking in start order with a stack of
		// open intervals, every span must fit entirely inside the
		// innermost still-open span (or start after it closes).
		const slack = 1e-3 // one nanosecond in microsecond units
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && s.ts >= stack[len(stack)-1].ts+stack[len(stack)-1].dur-slack {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if s.ts+s.dur > top.ts+top.dur+slack {
					return fmt.Errorf("trace: tid %d: span %q [%g,%g] overlaps but is not nested in %q [%g,%g]",
						tid, s.name, s.ts, s.ts+s.dur, top.name, top.ts, top.ts+top.dur)
				}
			}
			stack = append(stack, s)
		}
	}
	if total == 0 {
		return fmt.Errorf("trace: no complete (ph=X) spans recorded")
	}
	return nil
}
