package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsd/internal/bv"
)

func TestInterningGivesPointerEquality(t *testing.T) {
	a1 := Add(Var("x", 32), Const(32, 5))
	a2 := Add(Var("x", 32), Const(32, 5))
	if a1 != a2 {
		t.Error("structurally equal expressions are different pointers")
	}
	// Commutative canonicalization: x+5 and 5+x intern to the same node.
	a3 := Add(Const(32, 5), Var("x", 32))
	if a1 != a3 {
		t.Error("commutative operands not canonicalized")
	}
	if Var("x", 32) == Var("y", 32) {
		t.Error("distinct variables interned together")
	}
}

func TestConstantFolding(t *testing.T) {
	cases := []struct {
		got  *Expr
		want uint64
		w    bv.Width
	}{
		{Add(Const(8, 200), Const(8, 100)), 44, 8},
		{Mul(Const(16, 300), Const(16, 300)), 90000 & 0xffff, 16},
		{UDiv(Const(32, 7), Const(32, 0)), 0xffffffff, 32},
		{Eq(Const(8, 3), Const(8, 3)), 1, 1},
		{Ult(Const(8, 0xff), Const(8, 1)), 0, 1},
		{Not(Const(1, 0)), 1, 1},
		{Shl(Const(8, 1), Const(8, 9)), 0, 8},
		{Extract(Const(32, 0xdeadbeef), 8, 8), 0xbe, 8},
	}
	for i, c := range cases {
		v, ok := c.got.IsConst()
		if !ok {
			t.Errorf("case %d: not folded to constant: %s", i, c.got)
			continue
		}
		if v.U != c.want || v.W != c.w {
			t.Errorf("case %d: got %v, want %d:u%d", i, v, c.want, c.w)
		}
	}
}

func TestIdentitySimplifications(t *testing.T) {
	x := Var("x", 32)
	if Add(x, Const(32, 0)) != x {
		t.Error("x+0 != x")
	}
	if Sub(x, x).Kind != KConst {
		t.Error("x-x not folded")
	}
	if Mul(x, Const(32, 1)) != x {
		t.Error("x*1 != x")
	}
	if BvAnd(x, Const(32, 0)).Kind != KConst {
		t.Error("x&0 not folded")
	}
	if BvAnd(x, Const(32, 0xffffffff)) != x {
		t.Error("x&~0 != x")
	}
	if BvOr(x, x) != x {
		t.Error("x|x != x")
	}
	if BvXor(x, x).Kind != KConst {
		t.Error("x^x not folded")
	}
	if Eq(x, x) != True() {
		t.Error("x==x != true")
	}
	if Ult(x, x) != False() {
		t.Error("x<x != false")
	}
	if Not(Not(x)) != x {
		t.Error("double negation survives")
	}
	b := Var("b", 1)
	if Ite(b, True(), False()) != b {
		t.Error("ite(b,1,0) != b")
	}
	if Ite(Not(b), x, Var("y", 32)) != Ite(b, Var("y", 32), x) {
		t.Error("ite(not b, x, y) not normalized")
	}
}

func TestBooleanConnectives(t *testing.T) {
	p, q := Var("p", 1), Var("q", 1)
	if And(p, True()) != p || And(p, False()) != False() {
		t.Error("And constant short-circuit broken")
	}
	if Or(p, False()) != p || Or(p, True()) != True() {
		t.Error("Or constant short-circuit broken")
	}
	if And(p, p) != p {
		t.Error("And(p,p) != p")
	}
	if Implies(False(), q) != True() {
		t.Error("false -> q should be true")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched widths did not panic")
		}
	}()
	Add(Var("a", 8), Var("b", 16))
}

// randomExpr builds a random expression over variables x(8), y(8) with
// the given depth budget.
func randomExpr(r *rand.Rand, depth int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return Const(8, uint64(r.Intn(256)))
		case 1:
			return Var("x", 8)
		default:
			return Var("y", 8)
		}
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr}
	switch r.Intn(6) {
	case 0:
		return Not(randomExpr(r, depth-1))
	case 1:
		return Neg(randomExpr(r, depth-1))
	case 2:
		cmp := []Op{OpEq, OpNe, OpUlt, OpUle, OpSlt, OpSle}[r.Intn(6)]
		c := Bin(cmp, randomExpr(r, depth-1), randomExpr(r, depth-1))
		return Ite(c, randomExpr(r, depth-1), randomExpr(r, depth-1))
	default:
		op := ops[r.Intn(len(ops))]
		return Bin(op, randomExpr(r, depth-1), randomExpr(r, depth-1))
	}
}

// refEval evaluates without any of the constructor simplifications by
// mirroring the semantics directly, for cross-checking. Because
// constructors fold eagerly, we instead check that evaluation of the
// built expression matches evaluation of the same tree built purely from
// leaves: the simplifications must be semantics-preserving for every
// assignment.
func TestSimplificationsPreserveSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(r, 4)
		// Evaluate under several assignments; compare against an
		// evaluation that substitutes constants first (exercising the
		// constructor rewrites a second time along a different path).
		for k := 0; k < 4; k++ {
			xv := bv.New(8, uint64(r.Intn(256)))
			yv := bv.New(8, uint64(r.Intn(256)))
			a := NewAssignment()
			a.Vars["x"] = xv
			a.Vars["y"] = yv
			direct := Eval(e, a)
			sub := NewSubst().BindVar("x", ConstV(xv)).BindVar("y", ConstV(yv))
			folded := sub.Apply(e)
			fv, ok := folded.IsConst()
			if !ok {
				t.Fatalf("substituting constants did not fold: %s", folded)
			}
			if fv != direct {
				t.Fatalf("semantics changed by simplification: eval=%v folded=%v expr=%s x=%v y=%v",
					direct, fv, e, xv, yv)
			}
		}
	}
}

func TestEvalUnboundVarIsZero(t *testing.T) {
	e := Add(Var("unbound", 16), Const(16, 3))
	if got := Eval(e, NewAssignment()); got.U != 3 {
		t.Errorf("Eval with unbound var = %v, want 3", got)
	}
}

func TestArrayReadOverWrite(t *testing.T) {
	pkt := BaseArray("pkt")
	i5 := Const(32, 5)
	i6 := Const(32, 6)
	a := Store(pkt, i5, Const(8, 0xaa))
	a = Store(a, i6, Const(8, 0xbb))

	if got := Select(a, i5); !got.IsConstEq(0xaa) {
		t.Errorf("read of written byte = %s", got)
	}
	if got := Select(a, i6); !got.IsConstEq(0xbb) {
		t.Errorf("read of written byte = %s", got)
	}
	// Read of an unwritten constant index skips both stores and reads the
	// base array directly.
	got := Select(a, Const(32, 7))
	if got.Kind != KSelect || got.Arr != pkt {
		t.Errorf("read of unwritten byte should reach base array, got %s", got)
	}
	// Overwrite at the same index collapses.
	b := Store(a, i5, Const(8, 0xcc))
	if got := Select(b, i5); !got.IsConstEq(0xcc) {
		t.Errorf("overwrite not visible: %s", got)
	}
}

func TestArraySymbolicIndex(t *testing.T) {
	pkt := BaseArray("pkt")
	k := Var("k", 32)
	a := Store(pkt, k, Const(8, 0x42))
	// Read at the same symbolic index resolves immediately.
	if got := Select(a, k); !got.IsConstEq(0x42) {
		t.Errorf("symbolic same-index read = %s", got)
	}
	// Read at a different index produces an ite guarded by k == 3.
	got := Select(a, Const(32, 3))
	if got.Kind != KIte {
		t.Fatalf("expected ite for may-alias read, got %s", got)
	}
	// Evaluate both branches.
	asn := NewAssignment()
	asn.Arrays["pkt"] = []byte{0, 1, 2, 3}
	asn.Vars["k"] = bv.New(32, 3)
	if v := Eval(got, asn); v.U != 0x42 {
		t.Errorf("aliased read = %v, want 0x42", v)
	}
	asn.Vars["k"] = bv.New(32, 9)
	if v := Eval(got, asn); v.U != 3 {
		t.Errorf("non-aliased read = %v, want base byte 3", v)
	}
}

func TestSelectWideBigEndian(t *testing.T) {
	pkt := BaseArray("pkt")
	asn := NewAssignment()
	asn.Arrays["pkt"] = []byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0}
	e := SelectWide(pkt, Const(32, 0), 4)
	if e.W != 32 {
		t.Fatalf("SelectWide width = %d", e.W)
	}
	if v := Eval(e, asn); v.U != 0x12345678 {
		t.Errorf("SelectWide = %#x, want 0x12345678", v.U)
	}
	e2 := SelectWide(pkt, Const(32, 6), 2)
	if v := Eval(e2, asn); v.U != 0xdef0 {
		t.Errorf("SelectWide@6 = %#x, want 0xdef0", v.U)
	}
}

func TestStoreWideRoundTrip(t *testing.T) {
	f := func(val uint32, off uint8) bool {
		pkt := BaseArray("p")
		idx := Const(32, uint64(off))
		a := StoreWide(pkt, idx, Const(32, uint64(val)), 4)
		back := SelectWide(a, idx, 4)
		v, ok := back.IsConst()
		return ok && uint32(v.U) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubstComposesStateCorrectly(t *testing.T) {
	// Mirror the paper's Fig. 2 stitching: E1 output out = ite(in<0, 0, in);
	// E2 asserts in' >= 0. After substitution the crash condition
	// (in' < 0) composed with S1 must be infeasible (here: fold to a
	// contradiction checkable by evaluation).
	in := Var("in", 32)
	zero := Const(32, 0)
	s1out := Ite(Bin(OpSlt, in, zero), zero, in)
	crashCond := Bin(OpSlt, Var("in2", 32), zero)
	stitched := NewSubst().BindVar("in2", s1out).Apply(crashCond)
	// stitched = (ite(in<0,0,in) <s 0) which is false for all in.
	for _, u := range []uint64{0, 1, 0x7fffffff, 0x80000000, 0xffffffff} {
		a := NewAssignment()
		a.Vars["in"] = bv.New(32, u)
		if Eval(stitched, a).IsTrue() {
			t.Errorf("stitched crash condition satisfiable at in=%#x", u)
		}
	}
}

func TestSubstArrays(t *testing.T) {
	// Element 2 reads byte 0 of its input packet; element 1 wrote 0x11
	// there. Substituting e1's output array into e2's read must resolve.
	p1 := BaseArray("pkt1")
	out1 := Store(p1, Const(32, 0), Const(8, 0x11))
	read2 := Select(BaseArray("pkt2"), Const(32, 0))
	stitched := NewSubst().BindArr("pkt2", out1).Apply(read2)
	if !stitched.IsConstEq(0x11) {
		t.Errorf("array substitution did not resolve: %s", stitched)
	}
}

func TestVarsCollection(t *testing.T) {
	e := Add(Var("a", 8), Ite(Var("c", 1), Var("b", 8), Select(Store(BaseArray("p"), Var("i", 32), Var("v", 8)), Const(32, 9))))
	names := SortVarNames(Vars(e, nil))
	want := []string{"a", "b", "c", "i", "v"}
	if len(names) != len(want) {
		t.Fatalf("Vars = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", names, want)
		}
	}
}

func TestStringOutput(t *testing.T) {
	e := Ult(Add(Var("x", 8), Const(8, 1)), Const(8, 10))
	if got := e.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestConcatMatchesBV(t *testing.T) {
	f := func(hi, lo uint8) bool {
		e := Concat(Const(8, uint64(hi)), Const(8, uint64(lo)))
		v, ok := e.IsConst()
		return ok && v.U == bv.Concat(bv.New(8, uint64(hi)), bv.New(8, uint64(lo))).U
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
