// Package expr implements the symbolic expression DAG used throughout the
// verifier.
//
// Expressions are immutable, hash-consed bitvector terms: two structurally
// equal expressions are always the same pointer, so pointer equality is
// structural equality and maps keyed by *Expr memoize correctly. The
// constructors fold constants eagerly (using internal/bv semantics, the
// same semantics the concrete interpreter and the bit-blaster use) and
// apply a small set of algebraic simplifications, which keeps the terms
// produced by symbolic execution compact.
//
// Packets are modeled as byte arrays (see Array): a base symbolic array
// plus a chain of stores. Select applies read-over-write rewriting at
// construction time, so reads of concretely-addressed, concretely-written
// bytes resolve without ever reaching the solver.
//
// Substitution (Subst) is the composition primitive from the paper: to
// stitch segment e2 after segment e1, the verifier substitutes e1's output
// state for e2's input variables in e2's path constraint.
//
// The codec (codec.go) serializes DAGs into a stable binary record
// stream and decodes by rebuilding through the constructors, so decoded
// terms re-intern into this universe — the foundation of the verifier's
// persistent summary store (DESIGN.md §7).
package expr

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vsd/internal/bv"
)

// Kind discriminates expression nodes.
type Kind uint8

// Expression node kinds.
const (
	KConst   Kind = iota // constant bitvector
	KVar                 // free bitvector variable
	KBin                 // binary operation (arithmetic, bitwise, comparison)
	KNot                 // bitwise complement
	KNeg                 // two's-complement negation
	KIte                 // if-then-else on a 1-bit condition
	KZExt                // zero extension
	KSExt                // sign extension
	KTrunc               // truncation
	KExtract             // bit-field extraction
	KSelect              // byte read from an Array
)

// Op identifies the operator of a KBin node.
type Op uint8

// Binary operators. Comparison operators produce 1-bit results; the
// remaining operators require both operands to share a width and produce
// that width. On 1-bit values And/Or/Xor double as the boolean
// connectives.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	OpEq
	OpNe
	OpUlt
	OpUle
	OpSlt
	OpSle
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr",
	OpAShr: "ashr", OpEq: "eq", OpNe: "ne", OpUlt: "ult", OpUle: "ule",
	OpSlt: "slt", OpSle: "sle",
}

func (o Op) String() string { return opNames[o] }

// IsCompare reports whether o produces a 1-bit comparison result.
func (o Op) IsCompare() bool { return o >= OpEq }

// Expr is an immutable, interned expression node. Do not construct Expr
// values directly; use the package constructors, which intern, fold, and
// validate widths.
type Expr struct {
	Kind  Kind
	Op    Op       // for KBin
	W     bv.Width // result width
	Val   bv.V     // for KConst
	Name  string   // for KVar
	A, B  *Expr    // operands (A for unary; A,B for binary; unused for const/var)
	Cond  *Expr    // for KIte
	Arr   *Array   // for KSelect
	Lo    int      // for KExtract: low bit index
	hash  uint64
	id    uint64 // interning sequence number, unique per distinct term
	depth int32  // max node depth, used to bound printing and recursion
}

// ID returns the node's interning sequence number: distinct terms have
// distinct IDs, equal terms share one. Callers use it for stable,
// order-insensitive hashing of term sets (e.g. the solver query cache).
func (e *Expr) ID() uint64 { return e.id }

// Hash returns the node's structural hash, memoized at construction.
// Interning makes it as exact as pointer identity for most purposes, and
// callers hashing large term sets (the solver's verdict cache) use it to
// avoid re-walking DAGs.
func (e *Expr) Hash() uint64 { return e.hash }

// Width returns the bitvector width of the expression's value.
func (e *Expr) Width() bv.Width { return e.W }

// Array is an immutable, interned byte-array value: a named base array
// with a linked chain of byte stores (most recent first). Index
// expressions are 32-bit; stored values are 8-bit.
type Array struct {
	Name     string // base array name (only on the chain root)
	Prev     *Array // previous version, nil at the root
	Idx      *Expr  // store index (nil at the root)
	Val      *Expr  // stored byte (nil at the root)
	hash     uint64
	numStore int
}

// Base returns the root array this chain was built from.
func (a *Array) Base() *Array {
	for a.Prev != nil {
		a = a.Prev
	}
	return a
}

// BaseName returns the name of the root array.
func (a *Array) BaseName() string { return a.Base().Name }

// NumStores returns the number of stores layered on the base array.
func (a *Array) NumStores() int { return a.numStore }

// ---- interning ----

type internTable struct {
	mu    sync.Mutex
	exprs map[uint64][]*Expr
	arrs  map[uint64][]*Array
}

var interned = internTable{
	exprs: make(map[uint64][]*Expr),
	arrs:  make(map[uint64][]*Array),
}

var internSeq uint64

func mix(h uint64, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = mix(h, uint64(s[i]))
	}
	return h
}

func (e *Expr) computeHash() uint64 {
	h := uint64(0xcbf29ce484222325)
	h = mix(h, uint64(e.Kind))
	h = mix(h, uint64(e.Op))
	h = mix(h, uint64(e.W))
	h = mix(h, e.Val.U)
	h = mix(h, uint64(e.Lo))
	h = hashString(h, e.Name)
	if e.A != nil {
		h = mix(h, e.A.hash)
	}
	if e.B != nil {
		h = mix(h, e.B.hash)
	}
	if e.Cond != nil {
		h = mix(h, e.Cond.hash)
	}
	if e.Arr != nil {
		h = mix(h, e.Arr.hash)
	}
	return h
}

func sameExpr(a, b *Expr) bool {
	return a.Kind == b.Kind && a.Op == b.Op && a.W == b.W && a.Val == b.Val &&
		a.Name == b.Name && a.A == b.A && a.B == b.B && a.Cond == b.Cond &&
		a.Arr == b.Arr && a.Lo == b.Lo
}

func intern(e *Expr) *Expr {
	e.hash = e.computeHash()
	d := int32(0)
	for _, c := range []*Expr{e.A, e.B, e.Cond} {
		if c != nil && c.depth > d {
			d = c.depth
		}
	}
	e.depth = d + 1
	interned.mu.Lock()
	defer interned.mu.Unlock()
	for _, x := range interned.exprs[e.hash] {
		if sameExpr(x, e) {
			return x
		}
	}
	internSeq++
	e.id = internSeq
	interned.exprs[e.hash] = append(interned.exprs[e.hash], e)
	return e
}

func internArray(a *Array) *Array {
	h := uint64(0x9e3779b97f4a7c15)
	h = hashString(h, a.Name)
	if a.Prev != nil {
		h = mix(h, a.Prev.hash)
	}
	if a.Idx != nil {
		h = mix(h, a.Idx.hash)
	}
	if a.Val != nil {
		h = mix(h, a.Val.hash)
	}
	a.hash = h
	interned.mu.Lock()
	defer interned.mu.Unlock()
	for _, x := range interned.arrs[h] {
		if x.Name == a.Name && x.Prev == a.Prev && x.Idx == a.Idx && x.Val == a.Val {
			return x
		}
	}
	interned.arrs[h] = append(interned.arrs[h], a)
	return a
}

// ---- constructors ----

// Const returns the constant expression with value u truncated to width w.
func Const(w bv.Width, u uint64) *Expr {
	return intern(&Expr{Kind: KConst, W: w, Val: bv.New(w, u)})
}

// ConstV returns the constant expression for the bitvector v.
func ConstV(v bv.V) *Expr { return intern(&Expr{Kind: KConst, W: v.W, Val: v}) }

// True is the 1-bit constant 1.
func True() *Expr { return Const(1, 1) }

// False is the 1-bit constant 0.
func False() *Expr { return Const(1, 0) }

// Bool returns True or False.
func Bool(b bool) *Expr {
	if b {
		return True()
	}
	return False()
}

// Var returns the free variable with the given name and width. Two Var
// calls with the same name must use the same width; widths are the
// caller's responsibility (the IR layer guarantees this).
func Var(name string, w bv.Width) *Expr {
	return intern(&Expr{Kind: KVar, W: w, Name: name})
}

// IsConst reports whether e is a constant, returning its value.
func (e *Expr) IsConst() (bv.V, bool) {
	if e.Kind == KConst {
		return e.Val, true
	}
	return bv.V{}, false
}

// IsConstEq reports whether e is a constant with unsigned value u.
func (e *Expr) IsConstEq(u uint64) bool { return e.Kind == KConst && e.Val.U == u }

// IsTrue reports whether e is the constant true.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Val.IsTrue() }

// IsFalse reports whether e is the constant false (1-bit zero).
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.W == 1 && e.Val.IsZero() }

var binFold = map[Op]func(a, b bv.V) bv.V{
	OpAdd: bv.Add, OpSub: bv.Sub, OpMul: bv.Mul, OpUDiv: bv.UDiv,
	OpURem: bv.URem, OpAnd: bv.And, OpOr: bv.Or, OpXor: bv.Xor,
	OpShl: bv.Shl, OpLShr: bv.LShr, OpAShr: bv.AShr, OpEq: bv.Eq,
	OpNe: bv.Ne, OpUlt: bv.Ult, OpUle: bv.Ule, OpSlt: bv.Slt, OpSle: bv.Sle,
}

// Bin returns the binary operation op(a, b), constant-folding and
// simplifying where possible.
func Bin(op Op, a, b *Expr) *Expr {
	if a.W != b.W {
		panic(fmt.Sprintf("expr: %s width mismatch %s vs %s", op, a.W, b.W))
	}
	av, ac := a.IsConst()
	bvv, bc := b.IsConst()
	if ac && bc {
		return ConstV(binFold[op](av, bvv))
	}
	w := a.W
	if op.IsCompare() {
		w = 1
	}
	// Algebraic simplifications. Each is a semantics-preserving rewrite
	// verified by TestSimplificationsPreserveSemantics.
	switch op {
	case OpAdd:
		if ac && av.IsZero() {
			return b
		}
		if bc && bvv.IsZero() {
			return a
		}
	case OpSub:
		if bc && bvv.IsZero() {
			return a
		}
		if a == b {
			return Const(w, 0)
		}
	case OpMul:
		if ac && av.IsZero() || bc && bvv.IsZero() {
			return Const(w, 0)
		}
		if ac && av.Int() == 1 {
			return b
		}
		if bc && bvv.Int() == 1 {
			return a
		}
	case OpAnd:
		if ac && av.IsZero() || bc && bvv.IsZero() {
			return Const(w, 0)
		}
		if ac && av.Int() == w.Mask() {
			return b
		}
		if bc && bvv.Int() == w.Mask() {
			return a
		}
		if a == b {
			return a
		}
	case OpOr:
		if ac && av.IsZero() {
			return b
		}
		if bc && bvv.IsZero() {
			return a
		}
		if ac && av.Int() == w.Mask() || bc && bvv.Int() == w.Mask() {
			return Const(w, w.Mask())
		}
		if a == b {
			return a
		}
	case OpXor:
		if ac && av.IsZero() {
			return b
		}
		if bc && bvv.IsZero() {
			return a
		}
		if a == b {
			return Const(w, 0)
		}
	case OpShl, OpLShr, OpAShr:
		if bc && bvv.IsZero() {
			return a
		}
	case OpEq:
		if a == b {
			return True()
		}
		if a.W == 1 {
			// (a == true) -> a ; (a == false) -> !a
			if bc {
				if bvv.IsTrue() {
					return a
				}
				return Not(a)
			}
			if ac {
				if av.IsTrue() {
					return b
				}
				return Not(b)
			}
		}
		// Addition cancellation (valid in modular arithmetic: x+y = x+z
		// iff y = z). Packet-parsing code compares base+offset indices
		// constantly — the solver's Ackermann consistency axioms hinge on
		// these equalities folding when the offsets differ.
		if r, ok := cancelAddEq(a, b); ok {
			return r
		}
	case OpNe:
		if a == b {
			return False()
		}
		return Not(Bin(OpEq, a, b))
	case OpUlt, OpSlt:
		if a == b {
			return False()
		}
	case OpUle, OpSle:
		if a == b {
			return True()
		}
	}
	// Canonicalize commutative operand order so interning catches
	// symmetric duplicates.
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq:
		if b.hash < a.hash || (b.hash == a.hash && b.Kind < a.Kind) {
			a, b = b, a
		}
	}
	return intern(&Expr{Kind: KBin, Op: op, W: w, A: a, B: b})
}

// cancelAddEq simplifies equalities between sums sharing an operand:
// (x+y == x+z) -> (y == z), (x+y == x) -> (y == 0), and the symmetric
// variants. Sound for any width because bitvector addition is a group
// (cancel by adding -x to both sides). Reports ok=false when no shared
// operand exists.
func cancelAddEq(a, b *Expr) (*Expr, bool) {
	aAdd := a.Kind == KBin && a.Op == OpAdd
	bAdd := b.Kind == KBin && b.Op == OpAdd
	switch {
	case aAdd && bAdd:
		switch {
		case a.A == b.A:
			return Bin(OpEq, a.B, b.B), true
		case a.A == b.B:
			return Bin(OpEq, a.B, b.A), true
		case a.B == b.A:
			return Bin(OpEq, a.A, b.B), true
		case a.B == b.B:
			return Bin(OpEq, a.A, b.A), true
		}
	case aAdd:
		if a.A == b {
			return Bin(OpEq, a.B, Const(a.W, 0)), true
		}
		if a.B == b {
			return Bin(OpEq, a.A, Const(a.W, 0)), true
		}
	case bAdd:
		if b.A == a {
			return Bin(OpEq, b.B, Const(b.W, 0)), true
		}
		if b.B == a {
			return Bin(OpEq, b.A, Const(b.W, 0)), true
		}
	}
	return nil, false
}

// Convenience binary constructors.

// Add returns a + b.
func Add(a, b *Expr) *Expr { return Bin(OpAdd, a, b) }

// Sub returns a - b.
func Sub(a, b *Expr) *Expr { return Bin(OpSub, a, b) }

// Mul returns a * b.
func Mul(a, b *Expr) *Expr { return Bin(OpMul, a, b) }

// UDiv returns the unsigned quotient a / b (all-ones when b is zero).
func UDiv(a, b *Expr) *Expr { return Bin(OpUDiv, a, b) }

// URem returns the unsigned remainder a % b (a when b is zero).
func URem(a, b *Expr) *Expr { return Bin(OpURem, a, b) }

// BvAnd returns the bitwise conjunction a & b.
func BvAnd(a, b *Expr) *Expr { return Bin(OpAnd, a, b) }

// BvOr returns the bitwise disjunction a | b.
func BvOr(a, b *Expr) *Expr { return Bin(OpOr, a, b) }

// BvXor returns the bitwise exclusive-or a ^ b.
func BvXor(a, b *Expr) *Expr { return Bin(OpXor, a, b) }

// Shl returns a << b.
func Shl(a, b *Expr) *Expr { return Bin(OpShl, a, b) }

// LShr returns the logical right shift a >> b.
func LShr(a, b *Expr) *Expr { return Bin(OpLShr, a, b) }

// Eq returns the 1-bit comparison a == b.
func Eq(a, b *Expr) *Expr { return Bin(OpEq, a, b) }

// Ne returns the 1-bit comparison a != b.
func Ne(a, b *Expr) *Expr { return Bin(OpNe, a, b) }

// Ult returns the 1-bit unsigned comparison a < b.
func Ult(a, b *Expr) *Expr { return Bin(OpUlt, a, b) }

// Ule returns the 1-bit unsigned comparison a <= b.
func Ule(a, b *Expr) *Expr { return Bin(OpUle, a, b) }

// Not returns the bitwise complement of a; on 1-bit values this is
// boolean negation. Double negation cancels.
func Not(a *Expr) *Expr {
	if v, ok := a.IsConst(); ok {
		return ConstV(bv.Not(v))
	}
	if a.Kind == KNot {
		return a.A
	}
	return intern(&Expr{Kind: KNot, W: a.W, A: a})
}

// Neg returns the two's-complement negation of a.
func Neg(a *Expr) *Expr {
	if v, ok := a.IsConst(); ok {
		return ConstV(bv.Neg(v))
	}
	if a.Kind == KNeg {
		return a.A
	}
	return intern(&Expr{Kind: KNeg, W: a.W, A: a})
}

// And returns the boolean conjunction of 1-bit expressions, short-
// circuiting constants.
func And(xs ...*Expr) *Expr {
	r := True()
	for _, x := range xs {
		if x.W != 1 {
			panic("expr: And on non-boolean")
		}
		if x.IsFalse() {
			return False()
		}
		if x.IsTrue() || x == r {
			continue
		}
		if r.IsTrue() {
			r = x
		} else {
			r = Bin(OpAnd, r, x)
		}
	}
	return r
}

// Or returns the boolean disjunction of 1-bit expressions, short-
// circuiting constants.
func Or(xs ...*Expr) *Expr {
	r := False()
	for _, x := range xs {
		if x.W != 1 {
			panic("expr: Or on non-boolean")
		}
		if x.IsTrue() {
			return True()
		}
		if x.IsFalse() || x == r {
			continue
		}
		if r.IsFalse() {
			r = x
		} else {
			r = Bin(OpOr, r, x)
		}
	}
	return r
}

// Implies returns the boolean implication a -> b.
func Implies(a, b *Expr) *Expr { return Or(Not(a), b) }

// Ite returns if cond then a else b. cond must be 1-bit; a and b must
// share a width.
func Ite(cond, a, b *Expr) *Expr {
	if cond.W != 1 {
		panic("expr: Ite condition must be 1-bit")
	}
	if a.W != b.W {
		panic(fmt.Sprintf("expr: Ite width mismatch %s vs %s", a.W, b.W))
	}
	if cond.IsTrue() {
		return a
	}
	if cond.IsFalse() {
		return b
	}
	if a == b {
		return a
	}
	if a.W == 1 {
		// Boolean Ite lowers to connectives, which fold better.
		if a.IsTrue() && b.IsFalse() {
			return cond
		}
		if a.IsFalse() && b.IsTrue() {
			return Not(cond)
		}
		return Or(And(cond, a), And(Not(cond), b))
	}
	if cond.Kind == KNot {
		return Ite(cond.A, b, a)
	}
	return intern(&Expr{Kind: KIte, W: a.W, Cond: cond, A: a, B: b})
}

// ZExt zero-extends a to width w (identity when w == a.W).
func ZExt(a *Expr, w bv.Width) *Expr {
	if w == a.W {
		return a
	}
	if w < a.W {
		panic(fmt.Sprintf("expr: zext to narrower width %s -> %s", a.W, w))
	}
	if v, ok := a.IsConst(); ok {
		return ConstV(bv.ZExt(v, w))
	}
	if a.Kind == KZExt {
		return ZExt(a.A, w)
	}
	return intern(&Expr{Kind: KZExt, W: w, A: a})
}

// SExt sign-extends a to width w (identity when w == a.W).
func SExt(a *Expr, w bv.Width) *Expr {
	if w == a.W {
		return a
	}
	if w < a.W {
		panic(fmt.Sprintf("expr: sext to narrower width %s -> %s", a.W, w))
	}
	if v, ok := a.IsConst(); ok {
		return ConstV(bv.SExt(v, w))
	}
	return intern(&Expr{Kind: KSExt, W: w, A: a})
}

// Trunc truncates a to width w (identity when w == a.W).
func Trunc(a *Expr, w bv.Width) *Expr {
	if w == a.W {
		return a
	}
	if w > a.W {
		panic(fmt.Sprintf("expr: trunc to wider width %s -> %s", a.W, w))
	}
	if v, ok := a.IsConst(); ok {
		return ConstV(bv.Trunc(v, w))
	}
	if a.Kind == KZExt || a.Kind == KSExt {
		if w <= a.A.W {
			return Trunc(a.A, w)
		}
	}
	return Extract(a, 0, w)
}

// Extract returns bits [lo, lo+w) of a as a width-w expression.
func Extract(a *Expr, lo int, w bv.Width) *Expr {
	if lo < 0 || lo+int(w) > int(a.W) {
		panic(fmt.Sprintf("expr: extract [%d,%d) out of range for width %d", lo, lo+int(w), a.W))
	}
	if lo == 0 && w == a.W {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return ConstV(bv.Extract(v, lo, w))
	}
	if a.Kind == KExtract {
		return Extract(a.A, a.Lo+lo, w)
	}
	if a.Kind == KZExt && lo+int(w) <= int(a.A.W) {
		return Extract(a.A, lo, w)
	}
	return intern(&Expr{Kind: KExtract, W: w, A: a, Lo: lo})
}

// Concat returns hi:lo with hi in the high bits, implemented with
// shifts so the bit-blaster needs no dedicated node.
func Concat(hi, lo *Expr) *Expr {
	w := bv.Width(uint(hi.W) + uint(lo.W))
	if uint(hi.W)+uint(lo.W) > uint(bv.MaxWidth) {
		panic("expr: concat exceeds max width")
	}
	return BvOr(Shl(ZExt(hi, w), Const(w, uint64(lo.W))), ZExt(lo, w))
}

// ---- arrays ----

// BaseArray returns the named symbolic byte array with no stores.
func BaseArray(name string) *Array { return internArray(&Array{Name: name}) }

// Store returns arr with the byte val (8-bit) written at idx (32-bit).
func Store(arr *Array, idx, val *Expr) *Array {
	if idx.W != 32 {
		panic("expr: array index must be 32-bit")
	}
	if val.W != 8 {
		panic("expr: array value must be 8-bit")
	}
	// Overwrite of the same syntactic index collapses the chain.
	if arr.Prev != nil && arr.Idx == idx {
		arr = arr.Prev
	}
	return internArray(&Array{Prev: arr, Idx: idx, Val: val, numStore: arr.numStore + 1})
}

// Select returns the byte of arr at idx (32-bit), applying read-over-write
// rewriting: stores at syntactically equal indices resolve immediately,
// stores at provably different constant indices are skipped, and the
// remainder becomes an Ite chain over a base-array read.
func Select(arr *Array, idx *Expr) *Expr {
	if idx.W != 32 {
		panic("expr: array index must be 32-bit")
	}
	iv, ic := idx.IsConst()
	// Walk the store chain, skipping stores that provably differ.
	type pending struct{ idx, val *Expr }
	var hits []pending
	a := arr
	for a.Prev != nil {
		if a.Idx == idx {
			// Same syntactic index: definite hit, shadows everything older.
			r := a.Val
			for i := len(hits) - 1; i >= 0; i-- {
				r = Ite(Eq(idx, hits[i].idx), hits[i].val, r)
			}
			return r
		}
		if jv, jc := a.Idx.IsConst(); jc && ic && jv != iv {
			a = a.Prev // provably disjoint, skip
			continue
		}
		hits = append(hits, pending{a.Idx, a.Val})
		a = a.Prev
	}
	r := intern(&Expr{Kind: KSelect, W: 8, Arr: a, B: idx})
	for i := len(hits) - 1; i >= 0; i-- {
		r = Ite(Eq(idx, hits[i].idx), hits[i].val, r)
	}
	return r
}

// SelectWide reads n consecutive bytes starting at idx and concatenates
// them big-endian (network byte order) into an 8n-bit expression.
// n must be 1, 2, 4, or 8.
func SelectWide(arr *Array, idx *Expr, n int) *Expr {
	switch n {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("expr: SelectWide n=%d", n))
	}
	r := Select(arr, idx)
	for i := 1; i < n; i++ {
		r = Concat(r, Select(arr, Add(idx, Const(32, uint64(i)))))
	}
	return r
}

// StoreWide writes the 8n-bit value val at idx..idx+n-1 in big-endian
// byte order. n must be 1, 2, 4, or 8 and val must be 8n bits wide.
func StoreWide(arr *Array, idx, val *Expr, n int) *Array {
	if int(val.W) != 8*n {
		panic(fmt.Sprintf("expr: StoreWide width %d != %d", val.W, 8*n))
	}
	for i := 0; i < n; i++ {
		b := Extract(val, 8*(n-1-i), 8)
		arr = Store(arr, Add(idx, Const(32, uint64(i))), b)
	}
	return arr
}

// ---- traversal ----

// Vars appends to dst the distinct free variables of e in first-visit
// order, including variables reachable through array store chains, and
// returns the extended slice.
func Vars(e *Expr, dst []*Expr) []*Expr {
	seen := map[*Expr]bool{}
	seenArr := map[*Array]bool{}
	var walkA func(a *Array)
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		if x.Kind == KVar {
			dst = append(dst, x)
			return
		}
		walk(x.Cond)
		walk(x.A)
		walk(x.B)
		if x.Arr != nil {
			walkA(x.Arr)
		}
	}
	walkA = func(a *Array) {
		for a != nil && !seenArr[a] {
			seenArr[a] = true
			walk(a.Idx)
			walk(a.Val)
			a = a.Prev
		}
	}
	walk(e)
	return dst
}

// SelectsOf appends to dst every KSelect node in e (deduplicated) and
// returns the extended slice. The solver Ackermannizes these.
func SelectsOf(e *Expr, dst []*Expr) []*Expr {
	seen := map[*Expr]bool{}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		if x.Kind == KSelect {
			dst = append(dst, x)
		}
		walk(x.Cond)
		walk(x.A)
		walk(x.B)
	}
	walk(e)
	return dst
}

// ---- substitution ----

// Subst maps variable names to replacement expressions and base-array
// names to replacement arrays. It is the stitching primitive of Step 2:
// composing segment summaries substitutes the upstream segment's output
// state into the downstream segment's constraint and effect.
type Subst struct {
	Vars map[string]*Expr
	Arrs map[string]*Array
	memo map[*Expr]*Expr
	amem map[*Array]*Array
}

// NewSubst returns an empty substitution.
func NewSubst() *Subst {
	return &Subst{Vars: map[string]*Expr{}, Arrs: map[string]*Array{}}
}

// BindVar adds the mapping name -> r. Binding invalidates the Apply
// memo: substitutions may be extended between Apply calls (sequence
// execution binds each state read as it is resolved), and results
// cached under the old binding set would otherwise leak through.
func (s *Subst) BindVar(name string, r *Expr) *Subst {
	s.Vars[name] = r
	s.memo, s.amem = nil, nil
	return s
}

// BindArr adds the mapping of base array name -> r (same memo
// invalidation as BindVar).
func (s *Subst) BindArr(name string, r *Array) *Subst {
	s.Arrs[name] = r
	s.memo, s.amem = nil, nil
	return s
}

// Apply rewrites e under the substitution, rebuilding (and thus
// re-simplifying) every affected node. Results are memoized per Subst.
func (s *Subst) Apply(e *Expr) *Expr {
	if s.memo == nil {
		s.memo = map[*Expr]*Expr{}
		s.amem = map[*Array]*Array{}
	}
	return s.apply(e)
}

func (s *Subst) apply(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	if r, ok := s.memo[e]; ok {
		return r
	}
	var r *Expr
	switch e.Kind {
	case KConst:
		r = e
	case KVar:
		if b, ok := s.Vars[e.Name]; ok {
			if b.W != e.W {
				panic(fmt.Sprintf("expr: substitution width mismatch for %s: %s vs %s", e.Name, e.W, b.W))
			}
			r = b
		} else {
			r = e
		}
	case KBin:
		r = Bin(e.Op, s.apply(e.A), s.apply(e.B))
	case KNot:
		r = Not(s.apply(e.A))
	case KNeg:
		r = Neg(s.apply(e.A))
	case KIte:
		r = Ite(s.apply(e.Cond), s.apply(e.A), s.apply(e.B))
	case KZExt:
		r = ZExt(s.apply(e.A), e.W)
	case KSExt:
		r = SExt(s.apply(e.A), e.W)
	case KTrunc:
		r = Trunc(s.apply(e.A), e.W)
	case KExtract:
		r = Extract(s.apply(e.A), e.Lo, e.W)
	case KSelect:
		r = Select(s.ApplyArray(e.Arr), s.apply(e.B))
	default:
		panic("expr: unknown kind in substitution")
	}
	s.memo[e] = r
	return r
}

// ApplyArray rewrites an array value under the substitution.
func (s *Subst) ApplyArray(a *Array) *Array {
	if s.memo == nil {
		s.memo = map[*Expr]*Expr{}
		s.amem = map[*Array]*Array{}
	}
	return s.applyArray(a)
}

func (s *Subst) applyArray(a *Array) *Array {
	if a == nil {
		return nil
	}
	if r, ok := s.amem[a]; ok {
		return r
	}
	var r *Array
	if a.Prev == nil {
		if b, ok := s.Arrs[a.Name]; ok {
			r = b
		} else {
			r = a
		}
	} else {
		r = Store(s.applyArray(a.Prev), s.apply(a.Idx), s.apply(a.Val))
	}
	s.amem[a] = r
	return r
}

// ---- evaluation ----

// Assignment provides concrete values for free variables and base-array
// bytes during evaluation.
type Assignment struct {
	Vars map[string]bv.V
	// Arrays maps base array name -> byte content; reads beyond the
	// slice return 0.
	Arrays map[string][]byte
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{Vars: map[string]bv.V{}, Arrays: map[string][]byte{}}
}

// Eval computes the concrete value of e under a. Unbound variables
// evaluate to zero, matching the solver's model-completion convention.
func Eval(e *Expr, a *Assignment) bv.V {
	memo := map[*Expr]bv.V{}
	return eval(e, a, memo)
}

func eval(e *Expr, a *Assignment, memo map[*Expr]bv.V) bv.V {
	if v, ok := memo[e]; ok {
		return v
	}
	var r bv.V
	switch e.Kind {
	case KConst:
		r = e.Val
	case KVar:
		if v, ok := a.Vars[e.Name]; ok {
			if v.W != e.W {
				panic(fmt.Sprintf("expr: assignment width mismatch for %s", e.Name))
			}
			r = v
		} else {
			r = bv.New(e.W, 0)
		}
	case KBin:
		r = binFold[e.Op](eval(e.A, a, memo), eval(e.B, a, memo))
	case KNot:
		r = bv.Not(eval(e.A, a, memo))
	case KNeg:
		r = bv.Neg(eval(e.A, a, memo))
	case KIte:
		if eval(e.Cond, a, memo).IsTrue() {
			r = eval(e.A, a, memo)
		} else {
			r = eval(e.B, a, memo)
		}
	case KZExt:
		r = bv.ZExt(eval(e.A, a, memo), e.W)
	case KSExt:
		r = bv.SExt(eval(e.A, a, memo), e.W)
	case KTrunc:
		r = bv.Trunc(eval(e.A, a, memo), e.W)
	case KExtract:
		r = bv.Extract(eval(e.A, a, memo), e.Lo, e.W)
	case KSelect:
		idx := eval(e.B, a, memo).Int()
		r = bv.New(8, uint64(evalArray(e.Arr, idx, a, memo)))
	default:
		panic("expr: unknown kind in evaluation")
	}
	memo[e] = r
	return r
}

func evalArray(arr *Array, idx uint64, a *Assignment, memo map[*Expr]bv.V) byte {
	for arr.Prev != nil {
		if eval(arr.Idx, a, memo).Int() == idx {
			return byte(eval(arr.Val, a, memo).Int())
		}
		arr = arr.Prev
	}
	content := a.Arrays[arr.Name]
	if idx < uint64(len(content)) {
		return content[idx]
	}
	return 0
}

// ---- printing ----

// String renders the expression in a compact prefix syntax, useful in
// error messages, logs, and the CLI report.
func (e *Expr) String() string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

const printDepthLimit = 12

func writeExpr(b *strings.Builder, e *Expr, depth int) {
	if depth > printDepthLimit {
		b.WriteString("…")
		return
	}
	switch e.Kind {
	case KConst:
		fmt.Fprintf(b, "%s", e.Val)
	case KVar:
		b.WriteString(e.Name)
	case KBin:
		fmt.Fprintf(b, "(%s ", e.Op)
		writeExpr(b, e.A, depth+1)
		b.WriteByte(' ')
		writeExpr(b, e.B, depth+1)
		b.WriteByte(')')
	case KNot:
		b.WriteString("(not ")
		writeExpr(b, e.A, depth+1)
		b.WriteByte(')')
	case KNeg:
		b.WriteString("(neg ")
		writeExpr(b, e.A, depth+1)
		b.WriteByte(')')
	case KIte:
		b.WriteString("(ite ")
		writeExpr(b, e.Cond, depth+1)
		b.WriteByte(' ')
		writeExpr(b, e.A, depth+1)
		b.WriteByte(' ')
		writeExpr(b, e.B, depth+1)
		b.WriteByte(')')
	case KZExt:
		fmt.Fprintf(b, "(zext%d ", e.W)
		writeExpr(b, e.A, depth+1)
		b.WriteByte(')')
	case KSExt:
		fmt.Fprintf(b, "(sext%d ", e.W)
		writeExpr(b, e.A, depth+1)
		b.WriteByte(')')
	case KTrunc:
		fmt.Fprintf(b, "(trunc%d ", e.W)
		writeExpr(b, e.A, depth+1)
		b.WriteByte(')')
	case KExtract:
		fmt.Fprintf(b, "(extract[%d:%d] ", e.Lo+int(e.W)-1, e.Lo)
		writeExpr(b, e.A, depth+1)
		b.WriteByte(')')
	case KSelect:
		fmt.Fprintf(b, "(select %s[+%d] ", e.Arr.BaseName(), e.Arr.numStore)
		writeExpr(b, e.B, depth+1)
		b.WriteByte(')')
	}
}

// SortVarNames returns the sorted names of the given variables,
// deduplicated; a convenience for deterministic reporting.
func SortVarNames(vars []*Expr) []string {
	set := map[string]bool{}
	for _, v := range vars {
		set[v.Name] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
