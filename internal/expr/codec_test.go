package expr

import (
	"math/rand"
	"testing"

	"vsd/internal/bv"
)

// roundTrip encodes es, decodes the stream, and returns the decoded
// counterparts.
func roundTrip(t *testing.T, es ...*Expr) []*Expr {
	t.Helper()
	enc := NewEncoder()
	ids := make([]uint64, len(es))
	for i, e := range es {
		ids[i] = enc.AddExpr(e)
	}
	tab, rest, err := DecodeTable(enc.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	out := make([]*Expr, len(es))
	for i, id := range ids {
		got, err := tab.Expr(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = got
	}
	return out
}

// TestCodecRoundTripPointerEquality is the codec's core property:
// because expressions are hash-consed and the decoder rebuilds through
// the constructors, a decoded term is the SAME pointer as the original.
func TestCodecRoundTripPointerEquality(t *testing.T) {
	x := Var("x", 32)
	y := Var("y", 32)
	arr := BaseArray("pkt")
	arr2 := Store(arr, Const(32, 5), Const(8, 0xab))
	arr3 := Store(arr2, Add(x, Const(32, 1)), Extract(y, 3, 8))
	terms := []*Expr{
		Const(16, 0xbeef),
		True(),
		x,
		Add(x, y),
		Sub(x, y),
		Mul(x, Const(32, 3)),
		UDiv(x, y),
		URem(x, y),
		BvAnd(x, y),
		BvOr(x, y),
		BvXor(x, y),
		Shl(x, Const(32, 4)),
		LShr(x, Const(32, 2)),
		Bin(OpAShr, x, y),
		Eq(x, y),
		Ne(x, y),
		Ult(x, y),
		Ule(x, y),
		Bin(OpSlt, x, y),
		Bin(OpSle, x, y),
		Not(x),
		Neg(x),
		Ite(Eq(x, y), x, Add(x, y)),
		ZExt(Var("b", 8), 32),
		SExt(Var("c", 8), 64),
		Trunc(x, 8),
		Extract(x, 5, 16),
		Select(arr, Const(32, 0)),
		Select(arr3, y),
		SelectWide(arr3, Const(32, 3), 4),
		And(Eq(x, y), Ult(x, Const(32, 99)), Ne(y, Const(32, 0))),
	}
	got := roundTrip(t, terms...)
	for i, e := range terms {
		if got[i] != e {
			t.Errorf("term %d: decoded %s is not pointer-equal to original %s", i, got[i], e)
		}
	}
}

// TestCodecSharingPreserved: a node referenced twice is encoded once and
// both references resolve to it.
func TestCodecSharingPreserved(t *testing.T) {
	shared := Add(Var("s", 32), Const(32, 7))
	a := Mul(shared, shared)
	b := Eq(shared, Const(32, 0))
	enc := NewEncoder()
	ia, ib := enc.AddExpr(a), enc.AddExpr(b)
	n := enc.recs
	// Re-adding costs nothing.
	if enc.AddExpr(a) != ia || enc.recs != n {
		t.Error("re-adding an encoded term emitted new records")
	}
	tab, _, err := DecodeTable(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := tab.Expr(ia)
	gb, _ := tab.Expr(ib)
	if ga != a || gb != b {
		t.Error("shared-subterm round trip lost identity")
	}
}

// randomExpr generates a random well-formed expression over a small
// variable/array pool — the property-test generator for the codec.
func randomCodecExpr(r *rand.Rand, depth int) *Expr {
	w := []bv.Width{1, 8, 16, 32, 64}[r.Intn(5)]
	return randomCodecExprW(r, depth, w)
}

func randomCodecExprW(r *rand.Rand, depth int, w bv.Width) *Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return Const(w, r.Uint64())
		}
		return Var(string(rune('a'+r.Intn(4)))+w.String(), w)
	}
	switch r.Intn(8) {
	case 0:
		return Bin(Op(r.Intn(int(OpAShr)+1)), randomCodecExprW(r, depth-1, w), randomCodecExprW(r, depth-1, w))
	case 1:
		if w == 1 {
			sub := []bv.Width{8, 16, 32}[r.Intn(3)]
			return Bin(OpEq+Op(r.Intn(6)), randomCodecExprW(r, depth-1, sub), randomCodecExprW(r, depth-1, sub))
		}
		return Not(randomCodecExprW(r, depth-1, w))
	case 2:
		return Neg(randomCodecExprW(r, depth-1, w))
	case 3:
		return Ite(randomCodecExprW(r, depth-1, 1), randomCodecExprW(r, depth-1, w), randomCodecExprW(r, depth-1, w))
	case 4:
		if w > 8 {
			return ZExt(randomCodecExprW(r, depth-1, 8), w)
		}
		return Trunc(randomCodecExprW(r, depth-1, 32), w)
	case 5:
		if w > 8 {
			return SExt(randomCodecExprW(r, depth-1, 8), w)
		}
		return Extract(randomCodecExprW(r, depth-1, 64), r.Intn(64-int(w)), w)
	case 6:
		if w == 8 {
			return Select(randomArray(r, depth-1), randomCodecExprW(r, depth-1, 32))
		}
		return randomCodecExprW(r, depth-1, w)
	default:
		return randomCodecExprW(r, depth-1, w)
	}
}

func randomArray(r *rand.Rand, depth int) *Array {
	a := BaseArray([]string{"pkt", "buf"}[r.Intn(2)])
	n := r.Intn(depth + 1)
	for i := 0; i < n; i++ {
		a = Store(a, randomCodecExprW(r, 1, 32), randomCodecExprW(r, 1, 8))
	}
	return a
}

// TestCodecRandomRoundTrip is the fuzz-flavored property test: many
// random DAGs, each must decode to pointer-identical terms.
func TestCodecRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		e := randomCodecExpr(r, 5)
		got := roundTrip(t, e)[0]
		if got != e {
			t.Fatalf("iteration %d: decoded %s != original %s", i, got, e)
		}
	}
}

// TestCodecTruncation: every proper prefix of a valid stream must fail
// with an error — never panic, never succeed.
func TestCodecTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	enc := NewEncoder()
	for i := 0; i < 20; i++ {
		enc.AddExpr(randomCodecExpr(r, 4))
	}
	data := enc.Bytes()
	if _, _, err := DecodeTable(data); err != nil {
		t.Fatalf("full stream must decode: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := DecodeTable(data[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestCodecMutation: flipping bytes may produce a different valid
// stream, but must never panic (constructor panics are converted to
// errors).
func TestCodecMutation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	enc := NewEncoder()
	for i := 0; i < 10; i++ {
		enc.AddExpr(randomCodecExpr(r, 4))
	}
	data := enc.Bytes()
	for i := 0; i < 2000; i++ {
		mut := append([]byte{}, data...)
		for k := 0; k < 1+r.Intn(3); k++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		DecodeTable(mut) // must not panic
	}
}

// TestCodecRejectsOutOfRangeIDs: forward references are structurally
// impossible to encode and must be rejected on decode.
func TestCodecRejectsOutOfRangeIDs(t *testing.T) {
	// Hand-craft: 1 record, a Not referencing expr id 5.
	data := []byte{1, byte(tagNot), 5}
	if _, _, err := DecodeTable(data); err == nil {
		t.Error("forward reference accepted")
	}
	// Record count lies about the input size.
	data = []byte{200, byte(tagNot)}
	if _, _, err := DecodeTable(data); err == nil {
		t.Error("oversized record count accepted")
	}
}
