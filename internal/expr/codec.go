package expr

// Binary codec for the interned expression DAG (DESIGN.md §7). The
// encoder emits a flat, topologically ordered record stream: every
// distinct node (expression or array) appears exactly once, children
// before parents, and later records reference earlier ones by index.
// The decoder rebuilds nodes through the public constructors, so decoded
// terms are re-interned into the process's hash-consed universe: a
// round trip lands on pointer-identical nodes when the term already
// exists, and on canonically simplified ones when it does not. That is
// what makes summaries engine-independent artifacts — the file format
// carries structure only, never pointers or intern sequence numbers.
//
// Records (all integers are uvarints; strings are length-prefixed):
//
//	tag      payload
//	const    width value
//	var      width name
//	bin      op a b
//	not      a
//	neg      a
//	ite      cond a b
//	zext     width a
//	sext     width a
//	extract  width lo a
//	select   arr idx
//	arrbase  name
//	arrstore prev idx val
//
// Expression and array records share one stream but index two separate
// tables, in record order.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vsd/internal/bv"
)

// Record tags. Part of the on-disk format: do not renumber.
const (
	tagConst uint64 = iota + 1
	tagVar
	tagBin
	tagNot
	tagNeg
	tagIte
	tagZExt
	tagSExt
	tagExtract
	tagSelect
	tagArrBase
	tagArrStore
)

// Encoder serializes expression DAGs into a self-contained record
// stream. One Encoder produces one stream; nodes added several times
// (or shared between added terms) are emitted once.
type Encoder struct {
	buf  []byte
	recs int
	eids map[*Expr]uint64
	aids map[*Array]uint64
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{eids: map[*Expr]uint64{}, aids: map[*Array]uint64{}}
}

func (enc *Encoder) u64(v uint64) { enc.buf = binary.AppendUvarint(enc.buf, v) }

func (enc *Encoder) str(s string) {
	enc.u64(uint64(len(s)))
	enc.buf = append(enc.buf, s...)
}

// AddExpr encodes e (and, transitively, its children) and returns its
// expression-table index.
func (enc *Encoder) AddExpr(e *Expr) uint64 {
	if id, ok := enc.eids[e]; ok {
		return id
	}
	var rec func() // emits the record once children are in place
	switch e.Kind {
	case KConst:
		rec = func() { enc.u64(tagConst); enc.u64(uint64(e.W)); enc.u64(e.Val.U) }
	case KVar:
		rec = func() { enc.u64(tagVar); enc.u64(uint64(e.W)); enc.str(e.Name) }
	case KBin:
		a, b := enc.AddExpr(e.A), enc.AddExpr(e.B)
		rec = func() { enc.u64(tagBin); enc.u64(uint64(e.Op)); enc.u64(a); enc.u64(b) }
	case KNot:
		a := enc.AddExpr(e.A)
		rec = func() { enc.u64(tagNot); enc.u64(a) }
	case KNeg:
		a := enc.AddExpr(e.A)
		rec = func() { enc.u64(tagNeg); enc.u64(a) }
	case KIte:
		c, a, b := enc.AddExpr(e.Cond), enc.AddExpr(e.A), enc.AddExpr(e.B)
		rec = func() { enc.u64(tagIte); enc.u64(c); enc.u64(a); enc.u64(b) }
	case KZExt:
		a := enc.AddExpr(e.A)
		rec = func() { enc.u64(tagZExt); enc.u64(uint64(e.W)); enc.u64(a) }
	case KSExt:
		a := enc.AddExpr(e.A)
		rec = func() { enc.u64(tagSExt); enc.u64(uint64(e.W)); enc.u64(a) }
	case KTrunc, KExtract:
		// KTrunc never survives construction (Trunc lowers to Extract),
		// but encode it as the equivalent extract defensively.
		a := enc.AddExpr(e.A)
		rec = func() { enc.u64(tagExtract); enc.u64(uint64(e.W)); enc.u64(uint64(e.Lo)); enc.u64(a) }
	case KSelect:
		arr, idx := enc.AddArray(e.Arr), enc.AddExpr(e.B)
		rec = func() { enc.u64(tagSelect); enc.u64(arr); enc.u64(idx) }
	default:
		panic(fmt.Sprintf("expr: unknown kind %d in encoder", e.Kind))
	}
	rec()
	id := uint64(len(enc.eids))
	enc.eids[e] = id
	enc.recs++
	return id
}

// AddArray encodes the array value a (its whole store chain) and
// returns its array-table index.
func (enc *Encoder) AddArray(a *Array) uint64 {
	if id, ok := enc.aids[a]; ok {
		return id
	}
	// Iterative chain walk: store chains can be as long as a packet.
	var chain []*Array
	base := a
	for base.Prev != nil {
		if _, ok := enc.aids[base]; ok {
			break
		}
		chain = append(chain, base)
		base = base.Prev
	}
	if _, ok := enc.aids[base]; !ok {
		if base.Prev == nil {
			enc.u64(tagArrBase)
			enc.str(base.Name)
			enc.aids[base] = uint64(len(enc.aids))
			enc.recs++
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		prev, idx, val := enc.aids[n.Prev], enc.AddExpr(n.Idx), enc.AddExpr(n.Val)
		enc.u64(tagArrStore)
		enc.u64(prev)
		enc.u64(idx)
		enc.u64(val)
		enc.aids[n] = uint64(len(enc.aids))
		enc.recs++
	}
	return enc.aids[a]
}

// Bytes returns the encoded stream: a record count followed by the
// records.
func (enc *Encoder) Bytes() []byte {
	out := binary.AppendUvarint(nil, uint64(enc.recs))
	return append(out, enc.buf...)
}

// Table holds the decoded node tables of one record stream.
type Table struct {
	exprs []*Expr
	arrs  []*Array
}

// Expr returns the expression at table index id.
func (t *Table) Expr(id uint64) (*Expr, error) {
	if id >= uint64(len(t.exprs)) {
		return nil, fmt.Errorf("expr: codec: expression id %d out of range (%d decoded)", id, len(t.exprs))
	}
	return t.exprs[id], nil
}

// Array returns the array at table index id.
func (t *Table) Array(id uint64) (*Array, error) {
	if id >= uint64(len(t.arrs)) {
		return nil, fmt.Errorf("expr: codec: array id %d out of range (%d decoded)", id, len(t.arrs))
	}
	return t.arrs[id], nil
}

// reader tracks a decode position with error-once semantics.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = errors.New("expr: codec: truncated or malformed varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.pos) {
		r.err = fmt.Errorf("expr: codec: string length %d exceeds remaining input", n)
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *reader) width() bv.Width {
	w := r.u64()
	if r.err == nil && !bv.Width(w).Valid() {
		r.err = fmt.Errorf("expr: codec: invalid width %d", w)
	}
	return bv.Width(w)
}

// DecodeTable decodes one record stream produced by Encoder.Bytes,
// rebuilding every node through the package constructors (and thus
// re-interning it), and returns the node tables plus the unconsumed
// remainder of data. Constructor panics (width mismatches and the like,
// from corrupt input) are converted to errors.
func DecodeTable(data []byte) (t *Table, rest []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			t, rest, err = nil, nil, fmt.Errorf("expr: codec: corrupt input: %v", p)
		}
	}()
	r := &reader{data: data}
	n := r.u64()
	if r.err != nil {
		return nil, nil, r.err
	}
	if n > uint64(len(data)) {
		// Each record is at least one byte; a count beyond the input size
		// is corruption, caught here before any large allocation.
		return nil, nil, fmt.Errorf("expr: codec: record count %d exceeds input size %d", n, len(data))
	}
	t = &Table{}
	getE := func(id uint64) *Expr {
		e, gerr := t.Expr(id)
		if gerr != nil {
			panic(gerr)
		}
		return e
	}
	getA := func(id uint64) *Array {
		a, gerr := t.Array(id)
		if gerr != nil {
			panic(gerr)
		}
		return a
	}
	for i := uint64(0); i < n; i++ {
		tag := r.u64()
		if r.err != nil {
			return nil, nil, r.err
		}
		switch tag {
		case tagConst:
			w := r.width()
			v := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			if v&^w.Mask() != 0 {
				return nil, nil, fmt.Errorf("expr: codec: constant %#x exceeds width %s", v, w)
			}
			t.exprs = append(t.exprs, ConstV(bv.New(w, v)))
		case tagVar:
			w := r.width()
			name := r.str()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, Var(name, w))
		case tagBin:
			op := r.u64()
			a, b := r.u64(), r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			if op > uint64(OpSle) {
				return nil, nil, fmt.Errorf("expr: codec: unknown operator %d", op)
			}
			t.exprs = append(t.exprs, Bin(Op(op), getE(a), getE(b)))
		case tagNot:
			a := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, Not(getE(a)))
		case tagNeg:
			a := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, Neg(getE(a)))
		case tagIte:
			c, a, b := r.u64(), r.u64(), r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, Ite(getE(c), getE(a), getE(b)))
		case tagZExt:
			w := r.width()
			a := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, ZExt(getE(a), w))
		case tagSExt:
			w := r.width()
			a := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, SExt(getE(a), w))
		case tagExtract:
			w := r.width()
			lo := r.u64()
			a := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, Extract(getE(a), int(lo), w))
		case tagSelect:
			arr, idx := r.u64(), r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.exprs = append(t.exprs, Select(getA(arr), getE(idx)))
		case tagArrBase:
			name := r.str()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.arrs = append(t.arrs, BaseArray(name))
		case tagArrStore:
			prev, idx, val := r.u64(), r.u64(), r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.arrs = append(t.arrs, Store(getA(prev), getE(idx), getE(val)))
		default:
			return nil, nil, fmt.Errorf("expr: codec: unknown record tag %d", tag)
		}
	}
	return t, r.data[r.pos:], nil
}
