package queue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts returns queue options tuned for test latency.
func fastOpts(dir string) Options {
	return Options{Dir: dir, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

// drainAll runs the queue until it empties, collecting outcomes.
func drainAll(t *testing.T, q *Queue, process func(context.Context, *Job) error) (done []*Job, dead []*Job) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		q.Run(ctx, func(ctx context.Context, j *Job) error {
			err := process(ctx, j)
			if err == nil {
				mu.Lock()
				done = append(done, j)
				mu.Unlock()
			}
			return err
		}, func(j *Job, err error) {
			mu.Lock()
			dead = append(dead, j)
			mu.Unlock()
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for q.Depth() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-finished
	return done, dead
}

func TestEnqueueProcessComplete(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := q.Enqueue(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done, dead := drainAll(t, q, func(context.Context, *Job) error { return nil })
	if len(done) != 5 || len(dead) != 0 {
		t.Fatalf("done=%d dead=%d, want 5/0", len(done), len(dead))
	}
	// FIFO order and journal cleanup.
	for i := 1; i < len(done); i++ {
		if done[i-1].ID >= done[i].ID {
			t.Fatalf("completion out of order: %d before %d", done[i-1].ID, done[i].ID)
		}
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == jobExt {
			t.Fatalf("journal entry %s left after completion", e.Name())
		}
	}
	st := q.Stats()
	if st.Enqueued != 5 || st.Completed != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCrashReplayConverges(t *testing.T) {
	dir := t.TempDir()
	q1, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := q1.Enqueue(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Process exactly one job, then "crash" (abandon q1 without Close —
	// the journal is the only survivor, as after kill -9).
	ctx, cancel := context.WithCancel(context.Background())
	processed := make(chan *Job, 1)
	go q1.Run(ctx, func(_ context.Context, j *Job) error {
		select {
		case processed <- j:
		default:
		}
		cancel()
		return nil
	}, nil)
	first := <-processed
	<-ctx.Done()

	q2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Stats().Replayed; got < 3 {
		t.Fatalf("replayed %d jobs, want at least the 3 unprocessed", got)
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	drainAll(t, q2, func(_ context.Context, j *Job) error {
		mu.Lock()
		seen[j.Key] = true
		mu.Unlock()
		return nil
	})
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if !seen[k] && k != first.Key {
			t.Fatalf("job %s lost across the crash", k)
		}
	}
}

func TestReplayQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	q1, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		j, err := q1.Enqueue(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, q1.jobPath(j.ID))
	}
	// Corrupt one entry three ways across test runs: truncate.
	data, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// And bit-flip another.
	data2, err := os.ReadFile(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	data2[len(data2)/2] ^= 0x10
	if err := os.WriteFile(paths[2], data2, 0o644); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := q2.Stats()
	if st.Replayed != 1 || st.Quarantined != 2 {
		t.Fatalf("replayed=%d quarantined=%d, want 1/2", st.Replayed, st.Quarantined)
	}
	// The corrupt bytes are preserved for inspection, not deleted.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qents) != 2 {
		t.Fatalf("quarantine holds %d entries (err %v), want 2", len(qents), err)
	}
	done, _ := drainAll(t, q2, func(context.Context, *Job) error { return nil })
	if len(done) != 1 || done[0].Key != "k0" {
		t.Fatalf("surviving job wrong: %+v", done)
	}
}

func TestOverloadBackpressure(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.MaxDepth = 2
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("c", nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third enqueue: %v, want ErrOverloaded", err)
	}
	if st := q.Stats(); st.Overflows != 1 {
		t.Fatalf("overflow not counted: %+v", st)
	}
	// Refused jobs leave no journal entries behind.
	ents, _ := os.ReadDir(opts.Dir)
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == jobExt {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("journal holds %d entries, want 2", n)
	}
}

func TestIdempotentResubmission(t *testing.T) {
	q, err := Open(fastOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.Enqueue("same", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Enqueue("same", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("resubmitting a pending key must return the pending job")
	}
	if q.Depth() != 1 {
		t.Fatalf("depth %d, want 1", q.Depth())
	}
	if st := q.Stats(); st.Deduped != 1 {
		t.Fatalf("dedup not counted: %+v", st)
	}
	// After completion the key is free again.
	drainAll(t, q, func(context.Context, *Job) error { return nil })
	q.mu.Lock()
	q.closed = false // reopen for the test; Drain/Close is covered elsewhere
	q.mu.Unlock()
	c, err := q.Enqueue("same", []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("completed key did not free")
	}
}

func TestRetryBackoffThenExhaustion(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.MaxAttempts = 3
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("flaky", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("doomed", nil); err != nil {
		t.Fatal(err)
	}
	var flakyTries atomic.Int64
	done, dead := drainAll(t, q, func(_ context.Context, j *Job) error {
		if j.Key == "flaky" {
			if flakyTries.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		}
		return errors.New("permanent")
	})
	if len(done) != 1 || done[0].Key != "flaky" {
		t.Fatalf("flaky job did not converge: done=%+v", done)
	}
	if len(dead) != 1 || dead[0].Key != "doomed" || dead[0].Attempts != 3 {
		t.Fatalf("doomed job not exhausted after 3 attempts: %+v", dead)
	}
	st := q.Stats()
	if st.Retries == 0 || st.Exhausted != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestJobDeadlineExhausts(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.JobTimeout = 20 * time.Millisecond
	opts.MaxAttempts = 1000
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("slow", nil); err != nil {
		t.Fatal(err)
	}
	_, dead := drainAll(t, q, func(context.Context, *Job) error {
		time.Sleep(10 * time.Millisecond)
		return errors.New("keep failing")
	})
	if len(dead) != 1 {
		t.Fatalf("deadline did not exhaust the job: %+v", dead)
	}
	if dead[0].Attempts >= 1000 {
		t.Fatal("deadline should fire long before the attempt budget")
	}
}

func TestDrainStopsIntakeKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("pending", nil); err != nil {
		t.Fatal(err)
	}
	// No worker: the drain must time out, refuse new work, and leave
	// the journal for the next Open.
	if q.Drain(30 * time.Millisecond) {
		t.Fatal("drain reported success with a pending job and no worker")
	}
	if _, err := q.Enqueue("late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain enqueue: %v, want ErrClosed", err)
	}
	q2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if q2.Stats().Replayed != 1 {
		t.Fatalf("undrained job not replayed: %+v", q2.Stats())
	}
}

func TestConcurrentEnqueueAndProcess(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.MaxDepth = 1 << 20
	q, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 8, 25
	var wg sync.WaitGroup
	var enqueued atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue(fmt.Sprintf("p%d-%d", p, i), nil); err == nil {
					enqueued.Add(1)
				}
			}
		}(p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var processed atomic.Int64
	workers := make(chan struct{}, 3)
	for w := 0; w < 3; w++ {
		workers <- struct{}{}
		go func() {
			defer func() { <-workers }()
			q.Run(ctx, func(context.Context, *Job) error {
				processed.Add(1)
				return nil
			}, nil)
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for q.Depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	for i := 0; i < cap(workers); i++ {
		workers <- struct{}{}
	}
	if processed.Load() != enqueued.Load() {
		t.Fatalf("processed %d of %d enqueued", processed.Load(), enqueued.Load())
	}
}
