// Package queue is the crash-safe submission queue in front of the
// certification service (DESIGN.md §9). A daemon that accepts
// verification jobs over HTTP owes its callers two things a bare
// handler cannot give: accepted work survives a crash, and overload is
// refused explicitly instead of absorbed until the process dies.
//
//   - Durability: every accepted job is journaled to disk (temp file,
//     fsync, rename, directory fsync) before Enqueue returns; Open
//     replays the journal, so a kill -9 mid-batch loses nothing that
//     was acknowledged. Corrupt journal entries are quarantined aside
//     — counted and kept for inspection, never replayed and never
//     fatal.
//   - Backpressure: depth is bounded; past the bound Enqueue returns
//     ErrOverloaded, which the HTTP layer maps to 503 + Retry-After.
//   - Idempotency: jobs carry a caller-supplied key (the pipeline
//     fingerprint); re-submitting a key that is still pending returns
//     the existing job instead of queueing twice.
//   - Bounded effort: each job carries a deadline and a retry budget;
//     failed attempts back off exponentially with seeded jitter, and
//     exhaustion surfaces as an explicit terminal failure, never a
//     hang or a silent drop.
package queue

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vsd/internal/telemetry"
)

// ErrOverloaded is returned by Enqueue when the queue is at capacity.
// Callers translate it into backpressure (HTTP 503 + Retry-After).
var ErrOverloaded = errors.New("queue: at capacity")

// ErrClosed is returned by Enqueue after Close (graceful drain).
var ErrClosed = errors.New("queue: closed")

// Job is one accepted submission.
type Job struct {
	// ID orders jobs; it is unique within a journal directory and
	// preserved across restarts.
	ID uint64
	// Key is the caller-supplied idempotency key.
	Key string
	// Payload is the opaque submission body.
	Payload []byte
	// Attempts counts processing attempts so far (not persisted: a
	// restart resets the retry budget along with the in-flight state).
	Attempts int
	// Deadline bounds the job's total wall time in the queue; zero
	// means no deadline.
	Deadline time.Time
	// enqueuedAt feeds the wait-time histogram (not persisted: a
	// replayed job's wait restarts at Open).
	enqueuedAt time.Time
}

// Options configures a Queue.
type Options struct {
	// Dir is the journal directory (required).
	Dir string
	// MaxDepth bounds pending jobs (0 = 256).
	MaxDepth int
	// MaxAttempts bounds processing attempts per job (0 = 3).
	MaxAttempts int
	// BaseBackoff is the first retry delay (0 = 50ms); attempt n waits
	// BaseBackoff << (n-1), jittered, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff (0 = 5s).
	MaxBackoff time.Duration
	// JobTimeout is each job's wall budget from acceptance to terminal
	// state (0 = none).
	JobTimeout time.Duration
	// Seed seeds the backoff jitter stream (deterministic chaos runs).
	Seed uint64
	// Trace records enqueue-journal spans and per-job processing spans
	// (one lane per Run worker) into the given tracer; nil disables
	// tracing at zero cost.
	Trace *telemetry.Tracer
	// Metrics registers queue counters and the wait/processing latency
	// histograms (vsd_queue_*) on the given registry; nil skips them.
	Metrics *telemetry.Registry
}

func (o Options) maxDepth() int {
	if o.MaxDepth > 0 {
		return o.MaxDepth
	}
	return 256
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 3
}

func (o Options) baseBackoff() time.Duration {
	if o.BaseBackoff > 0 {
		return o.BaseBackoff
	}
	return 50 * time.Millisecond
}

func (o Options) maxBackoff() time.Duration {
	if o.MaxBackoff > 0 {
		return o.MaxBackoff
	}
	return 5 * time.Second
}

// Stats counts queue traffic.
type Stats struct {
	Enqueued    int64 // jobs accepted (journaled)
	Deduped     int64 // Enqueue calls answered by a pending job with the same key
	Overflows   int64 // Enqueue calls refused at capacity
	Replayed    int64 // jobs recovered from the journal at Open
	Quarantined int64 // corrupt journal entries set aside at Open
	Completed   int64 // jobs processed successfully
	Retries     int64 // failed attempts that were re-scheduled
	Exhausted   int64 // jobs that ran out of attempts or deadline
}

// Queue is a durable bounded FIFO work queue. Safe for concurrent use.
type Queue struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*Job          // FIFO order
	byKey    map[string]*Job // pending + in-flight jobs by idempotency key
	nextID   uint64
	closed   bool
	inFlight int
	jitter   uint64
	stats    Stats

	// Telemetry (all nil-safe; see internal/telemetry). enqLane carries
	// instant markers only — Enqueue is called concurrently, so spans
	// (which must nest per lane) live on the per-worker lanes in Run.
	enqLane     *telemetry.Lane
	workerLanes int
	waitHist    *telemetry.Histogram // pending-to-taken latency
	procHist    *telemetry.Histogram // per-attempt processing latency
	journalHist *telemetry.Histogram // durable journal-write latency
}

// Open opens (creating if needed) the queue journaled at opts.Dir and
// replays every intact entry. Corrupt entries are renamed aside into
// the quarantine subdirectory.
func Open(opts Options) (*Queue, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("queue: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: opening journal: %w", err)
	}
	q := &Queue{
		opts:   opts,
		byKey:  map[string]*Job{},
		jitter: opts.Seed ^ 0x9e3779b97f4a7c15,
	}
	q.cond = sync.NewCond(&q.mu)
	q.enqLane = opts.Trace.Lane("queue-enqueue")
	q.waitHist = opts.Metrics.Histogram("vsd_queue_wait_seconds",
		"time jobs spend pending before a worker takes them", 1e9)
	q.procHist = opts.Metrics.Histogram("vsd_queue_process_seconds",
		"per-attempt job processing time", 1e9)
	q.journalHist = opts.Metrics.Histogram("vsd_queue_journal_seconds",
		"durable journal-write latency on the enqueue path", 1e9)
	opts.Metrics.GaugeFunc("vsd_queue_depth",
		"pending plus in-flight jobs", func() float64 { return float64(q.Depth()) })
	if err := q.replay(); err != nil {
		return nil, err
	}
	return q, nil
}

// jobExt and quarantineDir name the journal's on-disk artifacts.
const (
	jobExt        = ".job"
	quarantineDir = "quarantine"
)

// journalMagic frames job files.
const journalMagic = "VSDQJOB1\n"

// encodeJob frames a job for the journal: magic, id, key, payload,
// then a checksum over everything before it.
func encodeJob(j *Job) []byte {
	buf := make([]byte, 0, len(journalMagic)+8+4+len(j.Key)+4+len(j.Payload)+sha256.Size)
	buf = append(buf, journalMagic...)
	buf = binary.BigEndian.AppendUint64(buf, j.ID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(j.Key)))
	buf = append(buf, j.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(j.Payload)))
	buf = append(buf, j.Payload...)
	check := sha256.Sum256(buf)
	return append(buf, check[:]...)
}

// decodeJob validates a journal entry. Any framing violation is an
// error (the caller quarantines).
func decodeJob(data []byte) (*Job, error) {
	rest := data
	minLen := len(journalMagic) + 8 + 4 + 4 + sha256.Size
	if len(rest) < minLen || string(rest[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("queue: journal entry has bad header")
	}
	body, check := rest[:len(rest)-sha256.Size], rest[len(rest)-sha256.Size:]
	if sha256.Sum256(body) != [sha256.Size]byte(check) {
		return nil, fmt.Errorf("queue: journal entry checksum mismatch")
	}
	body = body[len(journalMagic):]
	id := binary.BigEndian.Uint64(body)
	body = body[8:]
	keyLen := binary.BigEndian.Uint32(body)
	body = body[4:]
	if uint64(keyLen)+4 > uint64(len(body)) {
		return nil, fmt.Errorf("queue: journal entry key truncated")
	}
	key := string(body[:keyLen])
	body = body[keyLen:]
	payLen := binary.BigEndian.Uint32(body)
	body = body[4:]
	if uint32(len(body)) != payLen {
		return nil, fmt.Errorf("queue: journal entry payload length mismatch")
	}
	return &Job{ID: id, Key: key, Payload: append([]byte(nil), body...)}, nil
}

func (q *Queue) jobPath(id uint64) string {
	return filepath.Join(q.opts.Dir, fmt.Sprintf("%016x%s", id, jobExt))
}

// persist writes the job's journal entry durably: temp file, write,
// fsync, rename into place, directory fsync.
func (q *Queue) persist(j *Job) error {
	tmp, err := os.CreateTemp(q.opts.Dir, "tmp-*"+jobExt)
	if err != nil {
		return err
	}
	_, werr := tmp.Write(encodeJob(j))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), q.jobPath(j.ID)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(q.opts.Dir)
	return nil
}

// syncDir fsyncs a directory so completed renames survive a crash
// (best-effort, as in the summary store).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// replay loads every journal entry at Open, quarantining the ones that
// fail validation. Jobs resume in ID order; stray temp files from a
// crashed persist are removed (their jobs were never acknowledged).
func (q *Queue) replay() error {
	ents, err := os.ReadDir(q.opts.Dir)
	if err != nil {
		return fmt.Errorf("queue: reading journal: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(q.opts.Dir, name))
			continue
		}
		if strings.HasSuffix(name, jobExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names) // zero-padded hex IDs sort chronologically
	for _, name := range names {
		path := filepath.Join(q.opts.Dir, name)
		job, err := q.loadEntry(path, name)
		if err != nil {
			q.quarantine(path, name)
			continue
		}
		q.admit(job)
		q.stats.Replayed++
		if job.ID >= q.nextID {
			q.nextID = job.ID + 1
		}
	}
	return nil
}

// loadEntry reads and validates one journal file, also rejecting
// entries whose file name disagrees with the embedded ID (a renamed
// journal file is as suspect as a renamed store artifact).
func (q *Queue) loadEntry(path, name string) (*Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	job, err := decodeJob(data)
	if err != nil {
		return nil, err
	}
	wantID, err := strconv.ParseUint(strings.TrimSuffix(name, jobExt), 16, 64)
	if err != nil || wantID != job.ID {
		return nil, fmt.Errorf("queue: journal entry ID mismatch")
	}
	return job, nil
}

// quarantine moves a corrupt journal entry aside, preserving the bytes
// for inspection. A failed rename falls back to removal: a corrupt
// entry may never be replayed as a job.
func (q *Queue) quarantine(path, name string) {
	qdir := filepath.Join(q.opts.Dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil || os.Rename(path, filepath.Join(qdir, name)) != nil {
		os.Remove(path)
	}
	q.stats.Quarantined++
}

// admit appends a job to the pending list (caller holds mu or is
// single-threaded during replay).
func (q *Queue) admit(j *Job) {
	if q.opts.JobTimeout > 0 && j.Deadline.IsZero() {
		j.Deadline = time.Now().Add(q.opts.JobTimeout)
	}
	j.enqueuedAt = time.Now()
	q.pending = append(q.pending, j)
	q.byKey[j.Key] = j
}

// Enqueue journals a new job and admits it. At capacity it returns
// ErrOverloaded; if key matches a pending or in-flight job, that job
// is returned instead (idempotent resubmission, not an error).
func (q *Queue) Enqueue(key string, payload []byte) (*Job, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if prev, ok := q.byKey[key]; ok {
		q.stats.Deduped++
		q.mu.Unlock()
		q.enqLane.Instant("queue", "dedup")
		return prev, nil
	}
	if len(q.pending)+q.inFlight >= q.opts.maxDepth() {
		q.stats.Overflows++
		q.mu.Unlock()
		q.enqLane.Instant("queue", "overflow")
		return nil, ErrOverloaded
	}
	job := &Job{ID: q.nextID, Key: key, Payload: append([]byte(nil), payload...)}
	q.nextID++
	q.mu.Unlock()

	// Durability before acknowledgement: the journal write happens
	// outside the lock (it fsyncs), and only a persisted job is
	// admitted.
	jStart := time.Now()
	if err := q.persist(job); err != nil {
		return nil, fmt.Errorf("queue: journaling job: %w", err)
	}
	q.journalHist.Record(int64(time.Since(jStart)))
	q.enqLane.Instant("queue", "enqueue")

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		os.Remove(q.jobPath(job.ID))
		return nil, ErrClosed
	}
	if prev, ok := q.byKey[key]; ok {
		// A concurrent Enqueue with the same key won the race; keep the
		// earlier job and drop this journal entry.
		os.Remove(q.jobPath(job.ID))
		q.stats.Deduped++
		return prev, nil
	}
	q.admit(job)
	q.stats.Enqueued++
	q.cond.Broadcast()
	return job, nil
}

// Depth reports pending plus in-flight jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending) + q.inFlight
}

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// backoff returns the jittered delay before retry attempt n (1-based
// count of failures so far): base << (n-1), jittered to [50%,100%],
// capped.
func (q *Queue) backoff(n int) time.Duration {
	d := q.opts.baseBackoff()
	for i := 1; i < n && d < q.opts.maxBackoff(); i++ {
		d *= 2
	}
	if max := q.opts.maxBackoff(); d > max {
		d = max
	}
	q.mu.Lock()
	q.jitter += 0x9e3779b97f4a7c15
	z := q.jitter
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	q.mu.Unlock()
	// Jitter to [d/2, d): full-jitter spreads thundering herds, the
	// lower bound keeps retries meaningfully spaced.
	return d/2 + time.Duration(z%uint64(d/2+1))
}

// take blocks until a job is available or the context/queue ends.
func (q *Queue) take(ctx context.Context) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		if len(q.pending) > 0 {
			job := q.pending[0]
			q.pending = q.pending[1:]
			q.inFlight++
			if !job.enqueuedAt.IsZero() {
				q.waitHist.Record(int64(time.Since(job.enqueuedAt)))
			}
			return job
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// finish retires an in-flight job: its journal entry is removed and
// its key freed.
func (q *Queue) finish(job *Job, ok bool) {
	os.Remove(q.jobPath(job.ID))
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.byKey, job.Key)
	q.inFlight--
	if ok {
		q.stats.Completed++
	} else {
		q.stats.Exhausted++
	}
	q.cond.Broadcast()
}

// requeue puts a failed job back at the head of the line after its
// backoff (still journaled, still holding its key).
func (q *Queue) requeue(job *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = append([]*Job{job}, q.pending...)
	q.inFlight--
	q.stats.Retries++
	q.cond.Broadcast()
}

// Run processes jobs with process until ctx is cancelled, retrying
// failures on the backoff schedule within each job's attempt and
// deadline budget. When a job exhausts its budget, exhausted (if
// non-nil) receives it with the final error; the job is then retired.
// Run returns once ctx is done and no job is in flight in this call.
func (q *Queue) Run(ctx context.Context, process func(context.Context, *Job) error, exhausted func(*Job, error)) {
	// ctx cancellation must wake take's cond wait.
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	// Each Run call is one goroutine, so it owns a lane: spans on it
	// nest properly no matter how many workers run concurrently.
	var lane *telemetry.Lane
	if q.opts.Trace != nil {
		q.mu.Lock()
		n := q.workerLanes
		q.workerLanes++
		q.mu.Unlock()
		lane = q.opts.Trace.Lane(fmt.Sprintf("queue-worker-%d", n))
	}
	for {
		job := q.take(ctx)
		if job == nil {
			return
		}
		if !job.Deadline.IsZero() && time.Now().After(job.Deadline) {
			if exhausted != nil {
				exhausted(job, fmt.Errorf("queue: job %d missed its deadline before processing", job.ID))
			}
			lane.Instant("queue", "deadline-miss")
			q.finish(job, false)
			continue
		}
		job.Attempts++
		sp := lane.Begin("queue", "job:"+strconv.FormatUint(job.ID, 10))
		if sp.Enabled() {
			sp.SetStr("key", job.Key)
			sp.SetInt("attempt", int64(job.Attempts))
		}
		pStart := time.Now()
		err := process(ctx, job)
		q.procHist.Record(int64(time.Since(pStart)))
		if sp.Enabled() {
			if err == nil {
				sp.SetStr("result", "ok")
			} else {
				sp.SetStr("result", "error")
			}
		}
		sp.End()
		if err == nil {
			q.finish(job, true)
			continue
		}
		expired := !job.Deadline.IsZero() && time.Now().After(job.Deadline)
		if job.Attempts >= q.opts.maxAttempts() || expired || ctx.Err() != nil {
			if exhausted != nil {
				exhausted(job, err)
			}
			q.finish(job, false)
			continue
		}
		delay := q.backoff(job.Attempts)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		q.requeue(job)
	}
}

// Close stops accepting new jobs. Pending jobs stay journaled (a
// restart replays them); combine with a cancelled Run context for a
// drain.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Drain closes the queue and waits until nothing is pending or in
// flight, or the timeout passes. It reports whether the queue fully
// drained; journaled leftovers survive for the next Open.
func (q *Queue) Drain(timeout time.Duration) bool {
	q.Close()
	deadline := time.Now().Add(timeout)
	for {
		q.mu.Lock()
		empty := len(q.pending) == 0 && q.inFlight == 0
		q.mu.Unlock()
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
