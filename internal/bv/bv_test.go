package bv

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewMasks(t *testing.T) {
	cases := []struct {
		w    Width
		in   uint64
		want uint64
	}{
		{W8, 0x1ff, 0xff},
		{W1, 2, 0},
		{W1, 3, 1},
		{W16, 0x12345, 0x2345},
		{W32, 0x1_0000_0001, 1},
		{W64, ^uint64(0), ^uint64(0)},
		{Width(5), 0xff, 0x1f},
	}
	for _, c := range cases {
		if got := New(c.w, c.in); got.U != c.want {
			t.Errorf("New(%d, %#x) = %#x, want %#x", c.w, c.in, got.U, c.want)
		}
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	for _, w := range []Width{0, 65, 200} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, 0) did not panic", w)
				}
			}()
			New(w, 0)
		}()
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched widths did not panic")
		}
	}()
	Add(New(W8, 1), New(W16, 1))
}

func TestSigned(t *testing.T) {
	cases := []struct {
		v    V
		want int64
	}{
		{New(W8, 0x7f), 127},
		{New(W8, 0x80), -128},
		{New(W8, 0xff), -1},
		{New(W1, 1), -1},
		{New(W1, 0), 0},
		{New(W64, ^uint64(0)), -1},
		{New(W32, 0x8000_0000), -2147483648},
		{New(Width(3), 4), -4},
	}
	for _, c := range cases {
		if got := c.v.Signed(); got != c.want {
			t.Errorf("%v.Signed() = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	a := New(W16, 1234)
	z := New(W16, 0)
	if got := UDiv(a, z); got.U != W16.Mask() {
		t.Errorf("UDiv by zero = %v, want all-ones", got)
	}
	if got := URem(a, z); got != a {
		t.Errorf("URem by zero = %v, want %v", got, a)
	}
}

func TestShifts(t *testing.T) {
	a := New(W8, 0x81)
	if got := Shl(a, New(W8, 1)); got.U != 0x02 {
		t.Errorf("Shl = %#x, want 0x02", got.U)
	}
	if got := LShr(a, New(W8, 1)); got.U != 0x40 {
		t.Errorf("LShr = %#x, want 0x40", got.U)
	}
	if got := AShr(a, New(W8, 1)); got.U != 0xc0 {
		t.Errorf("AShr = %#x, want 0xc0", got.U)
	}
	// Oversized shift amounts.
	if got := Shl(a, New(W8, 8)); got.U != 0 {
		t.Errorf("Shl by width = %#x, want 0", got.U)
	}
	if got := LShr(a, New(W8, 200)); got.U != 0 {
		t.Errorf("LShr by 200 = %#x, want 0", got.U)
	}
	if got := AShr(a, New(W8, 8)); got.U != 0xff {
		t.Errorf("AShr negative by width = %#x, want 0xff", got.U)
	}
	if got := AShr(New(W8, 0x7f), New(W8, 8)); got.U != 0 {
		t.Errorf("AShr positive by width = %#x, want 0", got.U)
	}
}

func TestExtendTruncExtract(t *testing.T) {
	v := New(W8, 0x8a)
	if got := ZExt(v, W16); got.U != 0x8a || got.W != W16 {
		t.Errorf("ZExt = %v", got)
	}
	if got := SExt(v, W16); got.U != 0xff8a {
		t.Errorf("SExt = %#x, want 0xff8a", got.U)
	}
	if got := Trunc(New(W16, 0x1234), W8); got.U != 0x34 {
		t.Errorf("Trunc = %#x, want 0x34", got.U)
	}
	if got := Extract(New(W16, 0x1234), 8, W8); got.U != 0x12 {
		t.Errorf("Extract = %#x, want 0x12", got.U)
	}
	if got := Extract(New(W16, 0x1234), 4, W8); got.U != 0x23 {
		t.Errorf("Extract mid = %#x, want 0x23", got.U)
	}
}

func TestConcat(t *testing.T) {
	hi := New(W8, 0x12)
	lo := New(W8, 0x34)
	if got := Concat(hi, lo); got.W != W16 || got.U != 0x1234 {
		t.Errorf("Concat = %v, want 0x1234:u16", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Concat beyond 64 bits did not panic")
		}
	}()
	Concat(New(W64, 0), New(W1, 0))
}

func TestBit(t *testing.T) {
	v := New(W8, 0b1010_0101)
	want := []bool{true, false, true, false, false, true, false, true}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("Bit(%d) = %v, want %v", i, v.Bit(i), w)
		}
	}
}

// refBig computes the reference result of op using arbitrary-precision
// arithmetic, reduced mod 2^w, mirroring SMT-LIB bitvector semantics.
func refBig(op string, w Width, a, b uint64) uint64 {
	mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	r := new(big.Int)
	switch op {
	case "add":
		r.Add(x, y)
	case "sub":
		r.Sub(x, y)
		r.Add(r, mod) // avoid negative before Mod
	case "mul":
		r.Mul(x, y)
	case "udiv":
		if b == 0 {
			return w.Mask()
		}
		r.Div(x, y)
	case "urem":
		if b == 0 {
			return a
		}
		r.Mod(x, y)
	case "and":
		r.And(x, y)
	case "or":
		r.Or(x, y)
	case "xor":
		r.Xor(x, y)
	default:
		panic("unknown op " + op)
	}
	r.Mod(r, mod)
	return r.Uint64()
}

func TestOpsAgainstBigIntReference(t *testing.T) {
	ops := map[string]func(a, b V) V{
		"add": Add, "sub": Sub, "mul": Mul,
		"udiv": UDiv, "urem": URem,
		"and": And, "or": Or, "xor": Xor,
	}
	widths := []Width{1, 3, 8, 13, 16, 31, 32, 33, 63, 64}
	for name, fn := range ops {
		for _, w := range widths {
			f := func(a, b uint64) bool {
				av, bvv := New(w, a), New(w, b)
				return fn(av, bvv).U == refBig(name, w, av.U, bvv.U)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Errorf("%s at width %d: %v", name, w, err)
			}
		}
	}
}

func TestCompareProperties(t *testing.T) {
	// ult is a strict total order consistent with eq; slt consistent with
	// the Signed interpretation.
	f := func(a, b uint64) bool {
		for _, w := range []Width{1, 7, 8, 16, 32, 64} {
			x, y := New(w, a), New(w, b)
			if Ult(x, y).IsTrue() && Ult(y, x).IsTrue() {
				return false
			}
			if Eq(x, y).IsTrue() != (x.U == y.U) {
				return false
			}
			if Ule(x, y).IsTrue() != (Ult(x, y).IsTrue() || Eq(x, y).IsTrue()) {
				return false
			}
			if Slt(x, y).IsTrue() != (x.Signed() < y.Signed()) {
				return false
			}
			if Sle(x, y).IsTrue() != (x.Signed() <= y.Signed()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlgebraicProperties(t *testing.T) {
	// x - x == 0; x + neg(x) == 0; not(not(x)) == x; double-shift identity.
	f := func(a uint64) bool {
		for _, w := range []Width{1, 8, 16, 32, 64} {
			x := New(w, a)
			if !Sub(x, x).IsZero() {
				return false
			}
			if !Add(x, Neg(x)).IsZero() {
				return false
			}
			if Not(Not(x)) != x {
				return false
			}
			if Xor(x, x).U != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtractConcatRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		v := New(W32, a)
		hi := Extract(v, 16, W16)
		lo := Extract(v, 0, W16)
		return Concat(hi, lo) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSExtZExtAgreeOnNonNegative(t *testing.T) {
	f := func(a uint64) bool {
		v := New(W8, a&0x7f) // clear sign bit
		return SExt(v, W32) == ZExt(v, W32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := New(W8, 255).String(); got != "255u8" {
		t.Errorf("String = %q", got)
	}
	if got := W16.String(); got != "u16" {
		t.Errorf("Width.String = %q", got)
	}
}
