// Package bv implements fixed-width bitvector arithmetic with widths from
// 1 to 64 bits.
//
// Bitvectors are the value domain shared by every layer of the verifier:
// the expression DAG (internal/expr) folds constants with these operations,
// the IR interpreter (internal/ir) executes packet-processing code with
// them, and the bit-blaster (internal/smt) must agree with them bit for
// bit. All operations are total: division by zero yields the all-ones
// value (the SMT-LIB convention for bvudiv) so that the semantics used by
// constant folding, concrete interpretation, and bit-blasting coincide.
// The IR separately guards division instructions with an explicit crash
// check, mirroring how a real dataplane would fault.
package bv

import (
	"fmt"
	"strconv"
)

// Width is a bitvector width in bits. Valid widths are 1..64.
type Width uint8

// Common widths used by the packet-processing IR.
const (
	W1  Width = 1 // booleans / compare results
	W8  Width = 8
	W16 Width = 16
	W32 Width = 32
	W64 Width = 64
)

// MaxWidth is the largest supported bitvector width.
const MaxWidth Width = 64

// Valid reports whether w is a supported width.
func (w Width) Valid() bool { return w >= 1 && w <= MaxWidth }

func (w Width) String() string { return "u" + strconv.Itoa(int(w)) }

// Mask returns the bitmask with the low w bits set.
func (w Width) Mask() uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// V is a bitvector value: a width and the value truncated to that width.
// The zero V is the 0-width invalid value; use New to construct values.
type V struct {
	W Width
	U uint64 // always masked to W bits
}

// New returns the bitvector of width w holding u truncated to w bits.
func New(w Width, u uint64) V {
	if !w.Valid() {
		panic(fmt.Sprintf("bv: invalid width %d", w))
	}
	return V{W: w, U: u & w.Mask()}
}

// Bool returns the 1-bit bitvector for b.
func Bool(b bool) V {
	if b {
		return V{W: 1, U: 1}
	}
	return V{W: 1, U: 0}
}

// IsTrue reports whether v is the 1-bit value 1.
func (v V) IsTrue() bool { return v.W == 1 && v.U == 1 }

// IsZero reports whether all bits of v are zero.
func (v V) IsZero() bool { return v.U == 0 }

// Int returns the unsigned value as a uint64.
func (v V) Int() uint64 { return v.U }

// Signed returns the value interpreted as a two's-complement signed
// integer of width v.W, sign-extended to 64 bits.
func (v V) Signed() int64 {
	if v.W == 64 {
		return int64(v.U)
	}
	sign := uint64(1) << (v.W - 1)
	if v.U&sign != 0 {
		return int64(v.U | ^v.W.Mask())
	}
	return int64(v.U)
}

func (v V) String() string {
	return fmt.Sprintf("%d%s", v.U, v.W)
}

// Bit returns bit i of v (0 = least significant).
func (v V) Bit(i int) bool {
	if i < 0 || i >= int(v.W) {
		panic(fmt.Sprintf("bv: bit index %d out of range for width %d", i, v.W))
	}
	return v.U>>uint(i)&1 == 1
}

func checkSameWidth(op string, a, b V) {
	if a.W != b.W {
		panic(fmt.Sprintf("bv: %s width mismatch %s vs %s", op, a.W, b.W))
	}
}

// Add returns a+b mod 2^w.
func Add(a, b V) V { checkSameWidth("add", a, b); return New(a.W, a.U+b.U) }

// Sub returns a-b mod 2^w.
func Sub(a, b V) V { checkSameWidth("sub", a, b); return New(a.W, a.U-b.U) }

// Mul returns a*b mod 2^w.
func Mul(a, b V) V { checkSameWidth("mul", a, b); return New(a.W, a.U*b.U) }

// UDiv returns the unsigned quotient a/b, or the all-ones value when b is
// zero (SMT-LIB bvudiv semantics).
func UDiv(a, b V) V {
	checkSameWidth("udiv", a, b)
	if b.U == 0 {
		return New(a.W, a.W.Mask())
	}
	return New(a.W, a.U/b.U)
}

// URem returns the unsigned remainder a%b, or a when b is zero (SMT-LIB
// bvurem semantics).
func URem(a, b V) V {
	checkSameWidth("urem", a, b)
	if b.U == 0 {
		return a
	}
	return New(a.W, a.U%b.U)
}

// And returns the bitwise conjunction.
func And(a, b V) V { checkSameWidth("and", a, b); return New(a.W, a.U&b.U) }

// Or returns the bitwise disjunction.
func Or(a, b V) V { checkSameWidth("or", a, b); return New(a.W, a.U|b.U) }

// Xor returns the bitwise exclusive or.
func Xor(a, b V) V { checkSameWidth("xor", a, b); return New(a.W, a.U^b.U) }

// Not returns the bitwise complement.
func Not(a V) V { return New(a.W, ^a.U) }

// Neg returns the two's-complement negation.
func Neg(a V) V { return New(a.W, -a.U) }

// Shl returns a shifted left by b bits; shifts >= w yield zero.
func Shl(a, b V) V {
	checkSameWidth("shl", a, b)
	if b.U >= uint64(a.W) {
		return New(a.W, 0)
	}
	return New(a.W, a.U<<b.U)
}

// LShr returns a logically shifted right by b bits; shifts >= w yield zero.
func LShr(a, b V) V {
	checkSameWidth("lshr", a, b)
	if b.U >= uint64(a.W) {
		return New(a.W, 0)
	}
	return New(a.W, a.U>>b.U)
}

// AShr returns a arithmetically shifted right by b bits; shifts >= w
// yield 0 or all-ones depending on the sign bit.
func AShr(a, b V) V {
	checkSameWidth("ashr", a, b)
	sign := a.Bit(int(a.W) - 1)
	if b.U >= uint64(a.W) {
		if sign {
			return New(a.W, a.W.Mask())
		}
		return New(a.W, 0)
	}
	u := a.U >> b.U
	if sign {
		u |= a.W.Mask() &^ (a.W.Mask() >> b.U)
	}
	return New(a.W, u)
}

// Eq returns the 1-bit result of a == b.
func Eq(a, b V) V { checkSameWidth("eq", a, b); return Bool(a.U == b.U) }

// Ne returns the 1-bit result of a != b.
func Ne(a, b V) V { checkSameWidth("ne", a, b); return Bool(a.U != b.U) }

// Ult returns the 1-bit result of unsigned a < b.
func Ult(a, b V) V { checkSameWidth("ult", a, b); return Bool(a.U < b.U) }

// Ule returns the 1-bit result of unsigned a <= b.
func Ule(a, b V) V { checkSameWidth("ule", a, b); return Bool(a.U <= b.U) }

// Slt returns the 1-bit result of signed a < b.
func Slt(a, b V) V { checkSameWidth("slt", a, b); return Bool(a.Signed() < b.Signed()) }

// Sle returns the 1-bit result of signed a <= b.
func Sle(a, b V) V { checkSameWidth("sle", a, b); return Bool(a.Signed() <= b.Signed()) }

// ZExt zero-extends v to width w. It panics if w < v.W.
func ZExt(v V, w Width) V {
	if w < v.W {
		panic(fmt.Sprintf("bv: zext to narrower width %s -> %s", v.W, w))
	}
	return New(w, v.U)
}

// SExt sign-extends v to width w. It panics if w < v.W.
func SExt(v V, w Width) V {
	if w < v.W {
		panic(fmt.Sprintf("bv: sext to narrower width %s -> %s", v.W, w))
	}
	return New(w, uint64(v.Signed()))
}

// Trunc truncates v to width w. It panics if w > v.W.
func Trunc(v V, w Width) V {
	if w > v.W {
		panic(fmt.Sprintf("bv: trunc to wider width %s -> %s", v.W, w))
	}
	return New(w, v.U)
}

// Extract returns bits [lo, lo+w) of v as a width-w value.
func Extract(v V, lo int, w Width) V {
	if lo < 0 || lo+int(w) > int(v.W) {
		panic(fmt.Sprintf("bv: extract [%d,%d) out of range for width %d", lo, lo+int(w), v.W))
	}
	return New(w, v.U>>uint(lo))
}

// Concat returns the concatenation hi:lo, with hi in the high bits.
// The combined width must not exceed 64.
func Concat(hi, lo V) V {
	w := Width(uint(hi.W) + uint(lo.W))
	if uint(hi.W)+uint(lo.W) > uint(MaxWidth) {
		panic(fmt.Sprintf("bv: concat width %d+%d exceeds %d", hi.W, lo.W, MaxWidth))
	}
	return New(w, hi.U<<uint(lo.W)|lo.U)
}
