package verify

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vsd/internal/click"
	"vsd/internal/elements"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/symbex"
)

const storeTestPipeline = `
	src :: InfiniteSource;
	cls :: Classifier(12/0800, -);
	strip :: Strip(14);
	chk :: CheckIPHeader(NOCHECKSUM);
	ttl :: DecIPTTL;
	src -> cls; cls[0] -> strip -> chk; cls[1] -> Discard;
	chk[0] -> ttl; chk[1] -> Discard; ttl[1] -> Discard;
`

// crashReports runs CrashFreedom + BoundedInstructions with the given
// store and returns the serialized reports plus the stats.
func storeVerdict(t *testing.T, store SummaryStore, src string) (string, Stats) {
	t.Helper()
	p := parsePipeline(t, src)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 48, Store: store})
	crash, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := v.BoundedInstructions(p)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(struct {
		Crash *CrashReport
		Bound *BoundReport
	}{crash, bound})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob), v.Stats()
}

// TestDiskStoreWarmRun is the headline property: a second verifier over
// a populated store performs ZERO Step-1 engine runs and reproduces the
// cold run's reports byte for byte.
func TestDiskStoreWarmRun(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStats := storeVerdict(t, store, storeTestPipeline)
	if coldStats.ElementsSummarized == 0 {
		t.Fatal("cold run should hit the engine")
	}
	if coldStats.StoreHits != 0 {
		t.Errorf("cold run reported %d store hits", coldStats.StoreHits)
	}
	warm, warmStats := storeVerdict(t, store, storeTestPipeline)
	if warmStats.ElementsSummarized != 0 {
		t.Errorf("warm run performed %d engine runs, want 0", warmStats.ElementsSummarized)
	}
	if warmStats.StoreHits != coldStats.ElementsSummarized {
		t.Errorf("warm run had %d store hits, want %d", warmStats.StoreHits, coldStats.ElementsSummarized)
	}
	if warm != cold {
		t.Errorf("warm reports differ from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	// Stats describing the summaries in use must match too (suspects,
	// segment counts — composition depends on them).
	if warmStats.SegmentsTotal != coldStats.SegmentsTotal || warmStats.Suspects != coldStats.Suspects {
		t.Errorf("summary stats differ: warm %+v vs cold %+v", warmStats, coldStats)
	}
}

// TestDiskStoreCorruptionFallsBack: a truncated or bit-flipped entry is
// treated as a miss — the verifier silently re-summarizes and the
// verdict is unchanged.
func TestDiskStoreCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := storeVerdict(t, store, storeTestPipeline)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("cold run persisted nothing")
	}
	// Truncate one entry, bit-flip another, delete a third (if present).
	for i, e := range ents {
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			os.WriteFile(path, data[:len(data)/2], 0o644)
		case 1:
			data[len(data)/2] ^= 0xff
			os.WriteFile(path, data, 0o644)
		default:
			os.Remove(path)
		}
	}
	warm, warmStats := storeVerdict(t, store, storeTestPipeline)
	if warm != cold {
		t.Errorf("corrupted store changed the verdict:\ncold: %s\nwarm: %s", cold, warm)
	}
	if warmStats.ElementsSummarized == 0 {
		t.Error("corrupted entries should force re-summarization")
	}
	if st := store.Stats(); st.Corrupt == 0 {
		t.Errorf("store did not report corrupt entries: %+v", st)
	}
}

// TestDiskStoreRejectsFingerprintMismatch: renaming an artifact to
// another program's key must not let it load (content addressing).
func TestDiskStoreRejectsFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := parsePipeline(t, storeTestPipeline)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 48, Store: store})
	if _, err := v.CrashFreedom(p); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 2 {
		t.Fatalf("want at least 2 artifacts, got %d", len(ents))
	}
	// Swap one artifact's name for another's key.
	a := filepath.Join(dir, ents[0].Name())
	b := filepath.Join(dir, ents[1].Name())
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}
	keyB, err := ir.ParseFingerprint(ents[1].Name()[:64])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(keyB); ok {
		t.Error("store loaded an artifact whose embedded fingerprint differs from its key")
	}
	if st := store.Stats(); st.Corrupt == 0 {
		t.Error("mismatch not counted as corrupt")
	}
}

// TestStoreKeyBindsLengthBounds is the cross-configuration soundness
// regression: the engine assumes the [MinLen,MaxLen] bounds during
// pruning without recording them in segment conditions, so a summary
// computed under one range must NEVER serve a verifier using another.
// UnsafeReader(60) is the discriminating workload: under [64,128] its
// unguarded read is always in bounds (pipeline verifies), under
// [14,48] it always crashes.
func TestStoreKeyBindsLengthBounds(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := `s :: InfiniteSource; s -> UnsafeReader(60) -> Discard;`
	long := New(Options{MinLen: 64, MaxLen: 128, Store: store})
	repLong, err := long.CrashFreedom(parsePipeline(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !repLong.Verified {
		t.Fatal("setup: [64,128] should verify (read always in bounds)")
	}
	short := New(Options{MinLen: 14, MaxLen: 48, Store: store})
	repShort, err := short.CrashFreedom(parsePipeline(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if repShort.Verified {
		t.Fatal("summary computed under [64,128] was reused at [14,48] — unsound store key")
	}
	if short.Stats().StoreHits != 0 {
		t.Error("differently-bounded verifier hit the other configuration's artifacts")
	}
	// Same bounds DO share: a third verifier at [64,128] is all hits.
	warm := New(Options{MinLen: 64, MaxLen: 128, Store: store})
	if _, err := warm.CrashFreedom(parsePipeline(t, src)); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.ElementsSummarized != 0 || st.StoreHits == 0 {
		t.Errorf("equal configuration did not reuse artifacts: %+v", st)
	}
}

// TestMemStoreSharesAcrossVerifiers: the in-memory implementation gives
// cross-Verifier reuse within a process.
func TestMemStoreSharesAcrossVerifiers(t *testing.T) {
	store := NewMemStore()
	_, coldStats := storeVerdict(t, store, storeTestPipeline)
	_, warmStats := storeVerdict(t, store, storeTestPipeline)
	if warmStats.ElementsSummarized != 0 {
		t.Errorf("warm run over MemStore ran the engine %d times", warmStats.ElementsSummarized)
	}
	if warmStats.StoreHits != coldStats.ElementsSummarized {
		t.Errorf("store hits %d, want %d", warmStats.StoreHits, coldStats.ElementsSummarized)
	}
	if st := store.Stats(); st.Saves == 0 || st.Hits == 0 {
		t.Errorf("unexpected MemStore stats: %+v", st)
	}
}

// TestStoreRoundTripSegmentsUsable loads segments through the disk
// store directly and checks they are the interned equivalents of the
// originals.
func TestStoreRoundTripSegmentsUsable(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := parsePipeline(t, `src :: InfiniteSource; src -> c :: Counter; c -> Discard;`)
	opts := Options{MinLen: packet.MinFrame, MaxLen: 48, Store: store}
	v := New(opts)
	var orig [][]*symbex.Segment
	for _, e := range p.Elements {
		segs, err := v.Summarize(e)
		if err != nil {
			t.Fatal(err)
		}
		orig = append(orig, segs)
	}
	for i, e := range p.Elements {
		sum, ok := store.Load(StoreKey(e.Program(), opts))
		if !ok {
			t.Fatalf("element %d not persisted", i)
		}
		if len(sum.Segments) != len(orig[i]) {
			t.Fatalf("element %d: %d segments, want %d", i, len(sum.Segments), len(orig[i]))
		}
		for j, sg := range sum.Segments {
			want := orig[i][j]
			if sg.Pkt != want.Pkt {
				t.Errorf("element %d seg %d packet array not interned to original", i, j)
			}
			if len(sg.Cond) != len(want.Cond) {
				t.Fatalf("element %d seg %d cond count", i, j)
			}
			for k := range sg.Cond {
				if sg.Cond[k] != want.Cond[k] {
					t.Errorf("element %d seg %d cond %d not interned to original", i, j, k)
				}
			}
		}
	}
}

// twoReadPipeline builds a pipeline whose single crash path depends on
// TWO state reads returning values nothing ever writes: the bad-value
// refinement discharges it — but only if the cap lets it enumerate both
// reads.
func twoReadPipeline(t *testing.T) *click.Pipeline {
	t.Helper()
	b := ir.NewBuilder("TwoReads", 1, 1)
	b.DeclareState(ir.StateDecl{Name: "st", KeyW: 32, ValW: 32, Default: 0})
	a := b.StateRead("st", b.ConstU(32, 0))
	c := b.StateRead("st", b.ConstU(32, 1))
	both := b.Bin(ir.And, b.BinC(ir.Eq, a, 1), b.BinC(ir.Eq, c, 1))
	b.Assert(b.Not(both), "both reads returned the unwritable value")
	b.Emit(0)
	prog := b.MustBuild()
	srcProg, err := elements.InfiniteSource("")
	if err != nil {
		t.Fatal(err)
	}
	p, err := click.Build([]*click.Instance{
		click.NewInstance("src", "InfiniteSource", "", srcProg),
		click.NewInstance("probe", "TwoReads", "", prog),
	}, []click.Connection{{From: 0, FromPort: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMaxRefinedReadsOption: with the default cap the two-read crash is
// discharged; with MaxRefinedReads=1 the combination search is skipped,
// the path stays suspect (sound over-approximation), and the truncation
// is reported in the new Stats counter.
func TestMaxRefinedReadsOption(t *testing.T) {
	base := New(Options{MinLen: packet.MinFrame, MaxLen: 48})
	repBase, err := base.CrashFreedom(twoReadPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !repBase.Verified || repBase.Discharged == 0 {
		t.Fatalf("default cap: verified=%v discharged=%d, want discharged proof", repBase.Verified, repBase.Discharged)
	}
	if got := base.Stats().RefinementTruncated; got != 0 {
		t.Errorf("default cap truncated %d paths, want 0", got)
	}

	capped := New(Options{MinLen: packet.MinFrame, MaxLen: 48, MaxRefinedReads: 1})
	repCapped, err := capped.CrashFreedom(twoReadPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if repCapped.Verified {
		t.Error("cap=1 must leave the two-read path suspect (sound over-approximation)")
	}
	if got := capped.Stats().RefinementTruncated; got == 0 {
		t.Error("cap=1 did not report the truncated path")
	}

	// Raising the cap explicitly restores the proof.
	wide := New(Options{MinLen: packet.MinFrame, MaxLen: 48, MaxRefinedReads: 8})
	repWide, err := wide.CrashFreedom(twoReadPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !repWide.Verified {
		t.Error("cap=8 should discharge the two-read path")
	}
}

// TestDiskStoreTornWriteDegradesToMiss covers every torn-write shape a
// crashed writer (or the fault injector) can leave at an entry's path:
// empty file, partial magic, magic-only, header-without-payload, and a
// valid entry cut mid-checksum. Each must degrade to a miss — never a
// panic, never a summary that was not stored under the key.
func TestDiskStoreTornWriteDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := parsePipeline(t, storeTestPipeline)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 48, Store: store})
	if _, err := v.CrashFreedom(p); err != nil {
		t.Fatal(err)
	}
	key := StoreKey(p.Elements[0].Program(), Options{MinLen: packet.MinFrame, MaxLen: 48})
	path := store.Path(key)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("expected an artifact at Path(%s): %v", key, err)
	}
	torn := [][]byte{
		{},
		[]byte(diskMagic[:4]),
		[]byte(diskMagic),
		whole[:len(diskMagic)+len(key)],
		whole[:len(whole)-7],
	}
	for i, frag := range torn {
		if err := os.WriteFile(path, frag, 0o644); err != nil {
			t.Fatal(err)
		}
		if sum, ok := store.Load(key); ok || sum != nil {
			t.Fatalf("torn shape %d (%d bytes) loaded as a hit", i, len(frag))
		}
	}
	// All five shapes are rejections, not absences.
	if st := store.Stats(); st.Corrupt < int64(len(torn)) {
		t.Fatalf("torn writes not counted as corrupt: %+v", st)
	}
	// Restoring the original bytes restores the hit.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); !ok {
		t.Fatal("restored entry no longer loads")
	}
}
