// Package verify implements the paper's two-step compositional
// dataplane verification — the primary contribution of "Toward a
// Verifiable Software Dataplane" (Dobrescu & Argyraki, HotNets 2013).
//
// # Step 1 — element verification
//
// Every element of a pipeline is symbolically executed once, in
// isolation, with an unconstrained symbolic packet. The result is a set
// of segment summaries — path constraint C, symbolic state transformer
// S, instruction count, crash tag. Summaries are cached by element
// class and configuration, so an element appearing at several pipeline
// positions (or in several pipelines) is processed once. Segments that
// can violate the target property in isolation are tagged "suspect".
//
// # Step 2 — composition
//
// Element-level paths through the pipeline DAG are stitched by
// substitution — the upstream segment's output packet array and
// metadata replace the downstream segment's input variables, exactly
// the C1(in) ∧ C2(S1(in)) construction of the paper — and each stitched
// path's feasibility is decided by the solver without re-executing any
// code. Suspect segments whose stitched constraint is unsatisfiable are
// discharged (the paper's e3/p1/p4 example); feasible ones yield
// concrete witness packets.
//
// # Properties
//
// Four property families run over the same walk:
//
//   - CrashFreedom — no input can crash the pipeline (with the
//     "bad value" data-structure refinement for stateful elements,
//     stateful.go);
//   - BoundedInstructions — the worst-case instruction count and the
//     packet attaining it;
//   - Reachability — configuration-specific egress properties under
//     input assumptions;
//   - VerifyFunc — declarative functional specs (FuncSpec, funcspec.go):
//     postconditions relating the symbolic input packet to the symbolic
//     output packet, egress, and final metadata of every composed path,
//     discharged per path on the incremental solver sessions. The
//     reusable spec library lives in internal/specs. See DESIGN.md §6.
//
// # Concurrency
//
// Both steps exploit the problem's embarrassing parallelism (DESIGN.md
// §3): distinct element classes are summarized concurrently, and the
// composed-path walk fans subtrees out to a bounded worker pool, each
// worker discharging suspect paths on its own incremental solver
// session (DESIGN.md §2). Options.Parallelism bounds the pool; every
// verdict is independent of the schedule.
//
// # Persistence and batch admission
//
// Step-1 summaries are durable artifacts (DESIGN.md §7): keyed by
// StoreKey (the ir.Program content fingerprint bound to the
// packet-length bounds and engine modes the summary depends on),
// cached in-memory per Verifier, and — with Options.Store set —
// persisted through a SummaryStore. MemStore
// shares summaries across Verifiers in one process; DiskStore is the
// content-addressed on-disk form (one fingerprint-named file per
// program, checksummed; corrupt or mismatched entries fall back to
// re-summarizing). A warm store makes verification of known element
// programs skip symbolic execution entirely — Stats.StoreHits counts
// it.
//
// Batch (batch.go) is the admission-service entry point on top: a
// corpus of pipelines verified over one Verifier (shared cache, store,
// and solver sessions), duplicates deduplicated by pipeline
// fingerprint, one deterministic serializable verdict per submission.
// cmd/vsdverify -batch and the cmd/vsdserve daemon are its CLIs.
//
// # Multi-packet state verification
//
// Everything above asks single-packet questions; induction.go asks
// sequence questions (DESIGN.md §8). The terminal composed paths
// become a per-packet transition relation: symbex.SeqState threads
// packet i's state writes into packet i+1's reads, so properties can
// relate DIFFERENT packets of one traffic stream. Three entry points:
//
//   - SeqCrashFreedom / ProveInvariant — crash freedom or a declared
//     StateInvariant proved for packet sequences of UNBOUNDED length by
//     k-induction: a base case from the declared boot state, an
//     inductive step from an arbitrary (Ackermann-encoded) state. A
//     base-case failure is a real violation; a step-only failure is a
//     counterexample to induction (CTI), concrete enough to replay.
//   - SeqCrashBounded — the unrolling baseline (exhaustive sequences up
//     to a depth), which the S1 experiment contrasts with induction.
//   - VerifySeq — declarative SeqSpec sequence contracts (the
//     multi-packet analogue of FuncSpec): postconditions over a whole
//     explored sequence's inputs, outputs, and state. The library lives
//     in internal/specs (seqspecs.go).
//
// Refutations are MultiWitness values — ordered concrete packets plus,
// for CTIs, the seeded state — and ReplaySeq reproduces them on the
// concrete dataplane byte for byte. Batch admission runs the
// crash-freedom induction automatically for stateful submissions and
// records per-invariant InductionResults in the verdict.
//
// The package also provides the monolithic baseline (symbolic execution
// of the whole inlined pipeline, the paper's >12-hour comparison point,
// monolithic.go).
package verify
