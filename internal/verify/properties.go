package verify

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"vsd/internal/click"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/symbex"
)

// Witness is a concrete input demonstrating a property violation (or,
// for the instruction bound, attaining the maximum): the "example packet
// sequences" the paper requires a verifier to produce.
type Witness struct {
	Packet []byte
	// Output is the concrete packet the pipeline produces for Packet.
	// It is set by functional-spec violations (the properties that relate
	// input to output; DESIGN.md §6) and nil for the other properties.
	Output []byte
	Path   string // element-level path, for the report
	Detail string
}

// errUnresolved marks an obligation the solver could neither prove nor
// refute within its conflict/deadline budget. Property drivers convert
// it into an Unresolved count — never into a verdict.
var errUnresolved = errors.New("verify: obligation unresolved within solver budget")

// errInterrupted marks work cancelled by a watchdog Interrupt; it is an
// errUnresolved, so every degradation path treats it like budget
// exhaustion.
var errInterrupted = fmt.Errorf("%w: cancelled by watchdog interrupt", errUnresolved)

// CrashReport is the outcome of the crash-freedom property.
type CrashReport struct {
	// Verified is true when no packet can crash the pipeline.
	Verified bool
	// Witnesses lists feasible crashing inputs (empty when Verified).
	Witnesses []Witness
	// StatefulAssumed lists crash paths that are only realizable if a
	// "bad value" lives in private state and were discharged by the
	// data-structure refinement (see stateful.go).
	Discharged int
	// Unresolved counts crash paths the solver budget left undecided
	// (Options.SolverMaxConflicts / SolverTimeout), plus obligations lost
	// to contained engine panics or a watchdog interrupt. They block
	// Verified: an undecided obligation is reported, never assumed away.
	Unresolved int
	// UnresolvedCauses carries one line per unresolved obligation (sorted
	// for determinism) so reports and /stats can attribute degradation.
	UnresolvedCauses []string
}

// CrashFreedom proves that no input packet can crash the pipeline, for
// any packet contents and any length within the configured bounds.
// If the proof fails it returns concrete witness packets.
func (v *Verifier) CrashFreedom(p *click.Pipeline) (*CrashReport, error) {
	sp := v.tel.main.Begin("property", "crash-freedom")
	defer sp.End()
	// Step-1 fast path: if no element has a suspect segment, the
	// pipeline cannot crash — no composition needed (the paper's "if
	// this step does not yield any suspect segments, we are done").
	// Summarization fans out across the worker pool; when the check
	// fails, walk reuses every summary from the cache.
	summaries, err := v.summarizeAll(p.Elements)
	if errors.Is(err, errUnresolved) {
		// A contained summarization panic or interrupt: without summaries
		// nothing can be proved, but the daemon degrades, never fabricates.
		return &CrashReport{Unresolved: 1, UnresolvedCauses: []string{unresolvedCause(err)}}, nil
	}
	if err != nil {
		return nil, err
	}
	anySuspect := false
	for _, segs := range summaries {
		for _, s := range segs {
			if s.IsSuspect() {
				anySuspect = true
				break
			}
		}
		if anySuspect {
			break
		}
	}
	rep := &CrashReport{Verified: true}
	if !anySuspect {
		return rep, nil
	}
	err = v.walk(p, nil, func(end pathEnd) error {
		if end.disp != ir.Crashed {
			return nil
		}
		// Stateful refinement: a crash whose constraint mentions
		// private-state reads is realizable only if a bad value can
		// actually be in the store.
		realizable, err := v.statefulRealizable(p, end.state)
		if err != nil {
			return err
		}
		if !realizable {
			rep.Discharged++
			return nil
		}
		w, err := v.witness(p, end.state, nil)
		if errors.Is(err, errUnresolved) {
			rep.Unresolved++
			rep.Verified = false
			rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
			return nil
		}
		if err != nil {
			return err
		}
		w.Detail = fmt.Sprintf("%s: %s", end.crash.Kind, end.crash.Msg)
		rep.Verified = false
		rep.Witnesses = append(rep.Witnesses, w)
		return nil
	})
	if errors.Is(err, errUnresolved) {
		// The walk itself degraded (contained walker panic, watchdog
		// interrupt): the unexplored part of the path tree is an
		// unresolved obligation, not an error.
		rep.Unresolved++
		rep.Verified = false
		rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
		err = nil
	}
	if err != nil {
		return nil, err
	}
	sortWitnesses(rep.Witnesses)
	sort.Strings(rep.UnresolvedCauses)
	return rep, nil
}

// BoundReport is the outcome of the bounded-execution property.
type BoundReport struct {
	// MaxSteps is the maximum dynamic statement count any packet can
	// incur, over all feasible paths.
	MaxSteps int64
	// Witness attains MaxSteps.
	Witness Witness
	// CrashPossible notes that some input crashes the pipeline (the
	// bound then covers only non-crashing executions).
	CrashPossible bool
}

// BoundedInstructions computes the pipeline's worst-case instruction
// count and a packet that attains it — the paper's "maximum number of
// instructions that each pipeline may ever execute and which input
// causes it".
func (v *Verifier) BoundedInstructions(p *click.Pipeline) (*BoundReport, error) {
	sp := v.tel.main.Begin("property", "bounded-instructions")
	defer sp.End()
	rep := &BoundReport{}
	var maxState *composed
	err := v.walk(p, nil, func(end pathEnd) error {
		if end.disp == ir.Crashed {
			realizable, err := v.statefulRealizable(p, end.state)
			if err != nil {
				return err
			}
			if realizable {
				rep.CrashPossible = true
			}
			return nil
		}
		// Ties break on path name so the reported witness does not
		// depend on the parallel walk's schedule.
		if end.state.steps < rep.MaxSteps {
			return nil
		}
		if end.state.steps == rep.MaxSteps && maxState != nil &&
			pathName(p, end.state) >= pathName(p, maxState) {
			return nil
		}
		rep.MaxSteps = end.state.steps
		maxState = end.state
		return nil
	})
	if err != nil {
		return nil, err
	}
	if maxState != nil {
		w, err := v.witness(p, maxState, nil)
		switch {
		case errors.Is(err, errUnresolved):
			// The bound itself stays sound (it is a maximum over paths the
			// solver could not rule out); only the attaining packet is
			// missing.
			rep.Witness = Witness{Path: pathName(p, maxState),
				Detail: fmt.Sprintf("executes %d statements (witness unresolved within solver budget)", rep.MaxSteps)}
		case err != nil:
			return nil, err
		default:
			w.Detail = fmt.Sprintf("executes %d statements", rep.MaxSteps)
			rep.Witness = w
		}
	}
	return rep, nil
}

// ReachSpec is a configuration-specific reachability property: under the
// given input assumptions, every feasible path must end at an accepted
// egress (and never drop or crash). This expresses properties like "any
// well-formed packet with destination IP X is never dropped".
type ReachSpec struct {
	// Name labels the property in reports.
	Name string
	// Assume constrains the input packet (expressions over the symbolic
	// entry packet, see symbex naming conventions).
	Assume []*expr.Expr
	// AcceptEgress reports whether ending at the given pipeline egress
	// id satisfies the property.
	AcceptEgress func(egress int) bool
}

// ReachReport is the outcome of a reachability property.
type ReachReport struct {
	Verified  bool
	Witnesses []Witness
	// Unresolved counts violating paths left undecided by the solver
	// budget, contained panics, or a watchdog interrupt (they block
	// Verified, like CrashReport.Unresolved).
	Unresolved int
	// UnresolvedCauses carries one line per unresolved obligation, sorted.
	UnresolvedCauses []string
}

// Reachability proves a ReachSpec over the pipeline.
func (v *Verifier) Reachability(p *click.Pipeline, spec ReachSpec) (*ReachReport, error) {
	sp := v.tel.main.Begin("property", "reachability:"+spec.Name)
	defer sp.End()
	rep := &ReachReport{Verified: true}
	err := v.walk(p, spec.Assume, func(end pathEnd) error {
		bad := ""
		switch end.disp {
		case ir.Crashed:
			realizable, err := v.statefulRealizable(p, end.state)
			if err != nil {
				return err
			}
			if realizable {
				bad = "crashes"
			}
		case ir.Dropped:
			bad = "is dropped"
		case ir.Emitted:
			if !spec.AcceptEgress(end.egress) {
				bad = fmt.Sprintf("exits at %s", p.EgressName(end.egress))
			}
		}
		if bad == "" {
			return nil
		}
		w, err := v.witness(p, end.state, spec.Assume)
		if errors.Is(err, errUnresolved) {
			rep.Unresolved++
			rep.Verified = false
			rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
			return nil
		}
		if err != nil {
			return err
		}
		w.Detail = fmt.Sprintf("%s: packet %s", spec.Name, bad)
		rep.Verified = false
		rep.Witnesses = append(rep.Witnesses, w)
		return nil
	})
	if errors.Is(err, errUnresolved) {
		rep.Unresolved++
		rep.Verified = false
		rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
		err = nil
	}
	if err != nil {
		return nil, err
	}
	sortWitnesses(rep.Witnesses)
	sort.Strings(rep.UnresolvedCauses)
	return rep, nil
}

// checkedModel returns a model for the path's stitched constraints plus
// extra (nil = none): m is reused when the caller already has one, the
// root session is queried otherwise. Either way the result is
// cross-checked under evaluation semantics — a failure there indicates
// a solver or composition bug, not a property violation. It queries the
// root session, so it must only run under visitMu (visit callbacks) or
// after the walk has completed.
func (v *Verifier) checkedModel(p *click.Pipeline, st *composed, m *expr.Assignment, extraPre []*expr.Expr, extra *expr.Expr) (*expr.Assignment, error) {
	cons := append([]*expr.Expr{}, st.conds...)
	if extra != nil {
		cons = append(cons, extra)
	}
	if m == nil {
		lbl := ""
		if v.tel.active() {
			lbl = pathName(p, st)
		}
		ok, got, unknown := v.feasibleRoot(&composed{}, append(append([]*expr.Expr{}, extraPre...), cons...), nil, "witness", lbl)
		if unknown {
			return nil, fmt.Errorf("%w: %s", errUnresolved, pathName(p, st))
		}
		if !ok || got == nil {
			return nil, fmt.Errorf("verify: cannot produce witness for feasible path %s", pathName(p, st))
		}
		m = got
	}
	for _, c := range cons {
		if !expr.Eval(c, m).IsTrue() {
			return nil, fmt.Errorf("verify: internal error: witness model violates path constraint %s on %s",
				c, pathName(p, st))
		}
	}
	return m, nil
}

// witness turns a feasible composed path into a concrete packet (under
// the same visitMu caveat as checkedModel). A panic during extraction is
// contained into an unresolved obligation and resets the root session
// it was querying.
func (v *Verifier) witness(p *click.Pipeline, st *composed, extraPre []*expr.Expr) (w Witness, err error) {
	defer v.capturePanic("witness extraction", v.rootSession, &err)
	m, err := v.checkedModel(p, st, st.model, extraPre, nil)
	if err != nil {
		return Witness{}, err
	}
	return Witness{Packet: packetFromModel(m, v.opts.MinLen, v.opts.MaxLen), Path: pathName(p, st)}, nil
}

// packetFromModel materializes the symbolic entry packet of a model.
func packetFromModel(m *expr.Assignment, minLen, maxLen uint64) []byte {
	n := uint64(0)
	if v, ok := m.Vars[symbex.PktLenVar]; ok {
		n = v.Int()
	}
	if n < minLen {
		n = minLen
	}
	if n > maxLen {
		n = maxLen
	}
	pkt := make([]byte, n)
	copy(pkt, m.Arrays[symbex.PktArrayName])
	return pkt
}

// FormatWitness renders a witness for CLI reports. Spec-violation
// witnesses additionally carry the concrete output packet; the dump
// marks the bytes that differ from the input with a trailing asterisk.
func FormatWitness(w Witness) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  path:   %s\n", w.Path)
	fmt.Fprintf(&b, "  detail: %s\n", w.Detail)
	fmt.Fprintf(&b, "  packet: (%d bytes)", len(w.Packet))
	hexDump(&b, w.Packet, nil)
	if w.Output != nil {
		fmt.Fprintf(&b, "  output: (%d bytes, * marks bytes changed by the pipeline)", len(w.Output))
		hexDump(&b, w.Output, w.Packet)
	}
	return b.String()
}

// hexDump writes the 16-per-line hex dump used by witness reports,
// truncating past 64 bytes. When ref is non-nil, bytes differing from
// the same offset in ref are marked with '*' (and matching bytes carry a
// space so columns stay aligned; line ends are trimmed).
func hexDump(b *strings.Builder, data, ref []byte) {
	var line strings.Builder
	flush := func() {
		b.WriteString(strings.TrimRight(line.String(), " "))
		line.Reset()
	}
	for i, by := range data {
		if i%16 == 0 {
			flush()
			fmt.Fprintf(&line, "\n    %04x:", i)
		}
		mark := ""
		if ref != nil {
			mark = " "
			if i >= len(ref) || ref[i] != by {
				mark = "*"
			}
		}
		fmt.Fprintf(&line, " %02x%s", by, mark)
		if i >= 63 && len(data) > 64 {
			fmt.Fprintf(&line, " … (+%d)", len(data)-i-1)
			break
		}
	}
	flush()
	b.WriteByte('\n')
}
