package verify

import (
	"sync"
	"testing"

	"vsd/internal/packet"
)

// TestParallelMatchesSequential runs the same verifications with a
// single walker and with a pool of eight and requires identical
// verdicts, witness sets (by path), and schedule-independent counters.
func TestParallelMatchesSequential(t *testing.T) {
	configs := []struct {
		name string
		src  string
	}{
		{"fig2", "s :: InfiniteSource; s -> ToyE1 -> ToyE2 -> Discard;"},
		{"e2-alone", "s :: InfiniteSource; s -> ToyE2 -> Discard;"},
		{"unsafe-reader", "s :: InfiniteSource; s -> UnsafeReader(16) -> Discard;"},
		{"ip-router-prefix", `
			src :: InfiniteSource;
			src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
			chk[0] -> ttl :: DecIPTTL; chk[1] -> Discard;
			ttl[1] -> Discard;`},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			p1 := parsePipeline(t, c.src)
			seq := New(Options{MinLen: packet.MinFrame, MaxLen: 64, Parallelism: 1})
			repSeq, err := seq.CrashFreedom(p1)
			if err != nil {
				t.Fatal(err)
			}
			p2 := parsePipeline(t, c.src)
			par := New(Options{MinLen: packet.MinFrame, MaxLen: 64, Parallelism: 8})
			repPar, err := par.CrashFreedom(p2)
			if err != nil {
				t.Fatal(err)
			}
			if repSeq.Verified != repPar.Verified {
				t.Fatalf("verdict: sequential=%v parallel=%v", repSeq.Verified, repPar.Verified)
			}
			if len(repSeq.Witnesses) != len(repPar.Witnesses) {
				t.Fatalf("witnesses: sequential=%d parallel=%d",
					len(repSeq.Witnesses), len(repPar.Witnesses))
			}
			for i := range repSeq.Witnesses {
				if repSeq.Witnesses[i].Path != repPar.Witnesses[i].Path {
					t.Errorf("witness %d: path %q vs %q",
						i, repSeq.Witnesses[i].Path, repPar.Witnesses[i].Path)
				}
			}
			ss, sp := seq.Stats(), par.Stats()
			if ss.ComposedPaths != sp.ComposedPaths {
				t.Errorf("composed paths: sequential=%d parallel=%d", ss.ComposedPaths, sp.ComposedPaths)
			}
			if ss.ComposedInfeasible != sp.ComposedInfeasible {
				t.Errorf("infeasible: sequential=%d parallel=%d", ss.ComposedInfeasible, sp.ComposedInfeasible)
			}
			if ss.SegmentsTotal != sp.SegmentsTotal {
				t.Errorf("segments: sequential=%d parallel=%d", ss.SegmentsTotal, sp.SegmentsTotal)
			}
			// Instruction bound is a max over all paths: schedule-free.
			b1, err := seq.BoundedInstructions(parsePipeline(t, c.src))
			if err != nil {
				t.Fatal(err)
			}
			b2, err := par.BoundedInstructions(parsePipeline(t, c.src))
			if err != nil {
				t.Fatal(err)
			}
			if b1.MaxSteps != b2.MaxSteps {
				t.Errorf("bound: sequential=%d parallel=%d", b1.MaxSteps, b2.MaxSteps)
			}
		})
	}
}

// TestParallelVerifierRace exercises the synchronized paths under -race:
// one Verifier fanning a parallel walk out while other goroutines hammer
// Stats() and Summarize() on the same instance.
func TestParallelVerifierRace(t *testing.T) {
	src := `
		src :: InfiniteSource;
		src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
		chk[0] -> ttl :: DecIPTTL; chk[1] -> Discard;
		ttl[1] -> Discard;`
	p := parsePipeline(t, src)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 48, Parallelism: 8})
	done := make(chan struct{})
	var wg sync.WaitGroup
	// Stats readers run for the whole verification.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = v.Stats()
				}
			}
		}()
	}
	// Concurrent summarizers on the same cache.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, e := range p.Elements {
				if _, err := v.Summarize(e); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	rep, err := v.CrashFreedom(p)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("pipeline must verify; witnesses: %v", rep.Witnesses)
	}
	st := v.Stats()
	if st.ElementsSummarized == 0 || st.Solver.SessionsOpened == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
}
