package verify

// Multi-packet state verification (DESIGN.md §8). The single-packet
// pipeline properties treat every private-state read as unconstrained
// and refine crash suspects with the bad-value search (stateful.go) —
// which answers "can SOME state make this packet crash", never "can any
// SEQUENCE of packets drive the state there". This file closes that
// gap: terminal composed paths become the per-packet transition
// relation, symbex.SeqState threads the write log of packet i into the
// reads of packet i+1, and properties over unbounded packet counts are
// proved by k-induction:
//
//   - base case: from the declared initial state (store defaults — part
//     of the program fingerprint, hence of the induction key), no
//     sequence of up to k packets violates the property;
//   - inductive step: from an ARBITRARY state (Ackermann-encoded
//     initial reads), k non-violating packets followed by a violating
//     one is unsatisfiable.
//
// Refutations come back as multi-packet witnesses: an ordered list of
// concrete packets, plus — for counterexamples to induction — the
// concrete seeded state the sequence starts from. ReplaySeq reproduces
// either kind on the concrete dataplane, byte for byte.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"vsd/internal/click"
	"vsd/internal/dataplane"
	"vsd/internal/expr"
	"vsd/internal/ir"
	"vsd/internal/packet"
	"vsd/internal/smt"
	"vsd/internal/symbex"
)

// SeqOptions bounds one sequence-verification call.
type SeqOptions struct {
	// MaxK is the deepest induction step attempted (0 = default 2).
	MaxK int
	// MaxSequences bounds the number of feasible sequence prefixes
	// explored across the call (0 = default).
	MaxSequences int
}

// Sequence-exploration defaults.
const (
	DefaultSeqMaxK         = 2
	DefaultSeqMaxSequences = 1 << 13
)

func (o SeqOptions) maxK() int {
	if o.MaxK > 0 {
		return o.MaxK
	}
	return DefaultSeqMaxK
}

func (o SeqOptions) maxSequences() int {
	if o.MaxSequences > 0 {
		return o.MaxSequences
	}
	return DefaultSeqMaxSequences
}

// MultiWitness is a concrete multi-packet counterexample: the packets
// in arrival order, the composed path and disposition of each, the
// output packet of each emitted step, and — when the sequence starts
// from the arbitrary-state induction hypothesis rather than boot state
// — the private state to seed ("inst" -> store -> key -> value).
type MultiWitness struct {
	Packets      [][]byte
	Outputs      [][]byte
	Paths        []string
	Dispositions []ir.Disposition
	InitState    map[string]map[string]map[uint64]uint64
	Detail       string
}

// InductionReport is the outcome of an unbounded-sequence proof.
type InductionReport struct {
	// Property names what was proved or refuted.
	Property string
	// Proved is true when the property holds for packet sequences of ANY
	// length: the base case held to depth K and the inductive step
	// closed at K.
	Proved bool
	// K is the induction depth that closed the proof, or the deepest
	// attempted when it did not.
	K int
	// Refuted is true when the base case failed: Witness is a real
	// violation reachable from boot state.
	Refuted bool
	// CTI is true when only the inductive step failed: Witness is a
	// counterexample to induction — a violating sequence from a seeded
	// (arbitrary but concrete) state. The property may still hold from
	// boot state; it is not established for unbounded sequences.
	CTI bool
	// Witness is the refutation or CTI evidence (nil when Proved).
	Witness *MultiWitness
	// Sequences counts feasible sequence prefixes explored.
	Sequences int
}

// BoundedSeqReport is the outcome of SeqCrashBounded: exhaustive
// exploration of all packet sequences up to a fixed length from boot
// state — the unrolling baseline k-induction replaces.
type BoundedSeqReport struct {
	Depth     int
	Sequences int // feasible complete sequences
	Refuted   bool
	Witness   *MultiWitness
}

// ---- sequence stitching over terminal composed paths ----

// seqEnd is one collected terminal composed path, with a deterministic
// sort key so sequence exploration order (and thus witness choice) is
// independent of the parallel walk schedule.
type seqEnd struct {
	end pathEnd
	key string
}

// terminalPaths collects every feasible terminal composed path of the
// pipeline in deterministic order. The walk shares the verifier's
// summary cache, so this reuses Step-1 work from earlier properties.
func (v *Verifier) terminalPaths(p *click.Pipeline) ([]seqEnd, error) {
	var ends []seqEnd
	err := v.walk(p, nil, func(end pathEnd) error {
		var b strings.Builder
		b.WriteString(pathName(p, end.state))
		fmt.Fprintf(&b, "|%d|%d|%d|", end.disp, end.egress, end.state.steps)
		for _, c := range end.state.conds {
			b.WriteString(c.String())
			b.WriteByte('&')
		}
		ends = append(ends, seqEnd{end: end, key: b.String()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].key < ends[j].key })
	return ends, nil
}

// seqStepRec is one committed step of a sequence prefix.
type seqStepRec struct {
	end  *pathEnd
	pkt  *expr.Array // step-scoped output packet
	mark symbex.Mark // state-log position after this step
}

// seqPrefix is a sequence of committed steps: their scoped conditions,
// the threaded state, and the model of the last feasibility check.
type seqPrefix struct {
	steps []seqStepRec
	conds []*expr.Expr
	store *symbex.SeqState
	model *expr.Assignment
}

// seqCtx carries one sequence-verification call's shared pieces.
type seqCtx struct {
	v        *Verifier
	p        *click.Pipeline
	sess     *smt.IncrementalSession
	budget   int
	explored int
}

func (c *seqCtx) spend() error {
	c.explored++
	if c.explored > c.budget {
		return fmt.Errorf("verify: more than %d sequence prefixes (budget)", c.budget)
	}
	return nil
}

// newSeqRoot builds the empty prefix with every pipeline store declared
// under its instance-qualified name.
func newSeqRoot(p *click.Pipeline, mode symbex.InitMode) *seqPrefix {
	st := symbex.NewSeqState(mode)
	for _, e := range p.Elements {
		for _, d := range e.Program().States {
			st.Declare(e.Name()+"."+d.Name, d)
		}
	}
	return &seqPrefix{store: st}
}

// extend stitches end as the next step of pre, returning nil when the
// extended sequence constraint is infeasible.
func (c *seqCtx) extend(pre *seqPrefix, se *seqEnd) (*seqPrefix, error) {
	if err := c.spend(); err != nil {
		return nil, err
	}
	t := len(pre.steps)
	scope := symbex.SeqScope(t)
	end := se.end
	store := pre.store.Fork()
	keep := make(map[string]bool, len(end.state.reads))
	for _, rd := range end.state.reads {
		keep[rd.Var.Name] = true
	}
	sub := symbex.ScopeSubst(scope, end.state.conds, end.state.pkt,
		end.state.reads, end.state.writes, keep)
	symbex.ThreadState(store, sub, end.state.reads, end.state.writes, nil)
	newConds := make([]*expr.Expr, 0, len(end.state.conds)+2)
	for _, pe := range c.v.Pre() {
		newConds = append(newConds, sub.Apply(pe))
	}
	feasible := true
	for _, cond := range end.state.conds {
		ic := sub.Apply(cond)
		if ic.IsTrue() {
			continue
		}
		if ic.IsFalse() {
			feasible = false
			break
		}
		newConds = append(newConds, ic)
	}
	var m *expr.Assignment
	if feasible {
		cons := make([]*expr.Expr, 0, len(pre.conds)+len(newConds)+len(store.Conds()))
		cons = append(cons, pre.conds...)
		cons = append(cons, newConds...)
		cons = append(cons, store.Conds()...)
		c.v.solverQueries.Add(1)
		sp, started := c.v.tel.beginSolve(c.sess, "seq-extend", "")
		var r smt.Result
		r, m = c.sess.Check(cons)
		c.v.tel.recordSolve(c.sess, "seq-extend", "seq-extend", started, sp)
		feasible = r != smt.Unsat
	}
	if !feasible {
		c.v.mu.Lock()
		c.v.stats.SeqInfeasible++
		c.v.mu.Unlock()
		return nil, nil
	}
	next := &seqPrefix{
		steps: append(pre.steps[:len(pre.steps):len(pre.steps)], seqStepRec{
			end: &se.end,
			pkt: sub.ApplyArray(end.state.pkt),
		}),
		conds: append(pre.conds[:len(pre.conds):len(pre.conds)], newConds...),
		store: store,
		model: m,
	}
	next.steps[len(next.steps)-1].mark = store.Mark()
	c.v.mu.Lock()
	c.v.stats.SeqSequences++
	c.v.mu.Unlock()
	return next, nil
}

// seqSupported rejects pipelines whose summaries cannot be threaded
// exactly: loop-state merging unions sibling access logs, losing the
// read/write interleaving that sequence semantics depend on. (Stateless
// merged loops — the IP options walk — are fine; only merged summaries
// that touch state are unsound to thread.)
func (v *Verifier) seqSupported(p *click.Pipeline) error {
	for _, e := range p.Elements {
		if len(e.Program().States) == 0 {
			continue
		}
		if _, err := v.Summarize(e); err != nil {
			return err
		}
		v.mu.Lock()
		var merged bool
		if v.opts.DisableSummaryCache {
			// No per-program record without the cache; the verifier-wide
			// flag is the conservative stand-in (may reject a clean
			// element, never accepts a merged one).
			merged = v.stats.SymbexStats.Merged
		} else if ent, ok := v.cache[e.SummaryKey()]; ok {
			merged = ent.merged
		}
		v.mu.Unlock()
		if merged {
			return fmt.Errorf("verify: %s: loop-state merging unioned the state-access logs; sequence verification needs exact interleavings (rerun with LoopSummarize)", e.Name())
		}
	}
	return nil
}

// prepareSeq validates that the pipeline's summaries can be threaded
// exactly and collects its terminal composed paths — the per-pipeline
// setup every sequence entry point needs. Batch admission prepares once
// and shares the path set across all of a submission's obligations.
func (v *Verifier) prepareSeq(p *click.Pipeline) ([]seqEnd, error) {
	if err := v.seqSupported(p); err != nil {
		return nil, err
	}
	return v.terminalPaths(p)
}

// pipelineHasState reports whether any element declares a private
// store; stateless pipelines have nothing to induct over.
func pipelineHasState(p *click.Pipeline) bool {
	for _, e := range p.Elements {
		if len(e.Program().States) > 0 {
			return true
		}
	}
	return false
}

// ---- crash freedom by k-induction ----

// SeqCrashFreedom proves (or refutes) crash freedom for packet
// sequences of UNBOUNDED length by k-induction over the private state:
// the base case explores up to MaxK packets from boot state; the
// inductive step shows that after k non-crashing packets from an
// arbitrary state, packet k+1 cannot crash. Contrast with CrashFreedom,
// whose bad-value refinement answers the one-packet question only.
//
// A base-case failure is a real violation (Refuted, with a multi-packet
// witness from boot state). A step-only failure yields a counterexample
// to induction (CTI): a seeded state plus packets that drive it to a
// crash — evidence the proof cannot close, and concrete enough for
// ReplaySeq to reproduce. One caveat on witnesses touching
// capacity-bounded stores: the free "landed" boolean (symbex.SeqState)
// over-approximates the full-table drop, so a refutation can in
// principle assume a drop no concrete run performs — callers that act
// on a Refuted verdict should ReplaySeq it first (batch admission and
// the CLI both do).
func (v *Verifier) SeqCrashFreedom(p *click.Pipeline, opts SeqOptions) (*InductionReport, error) {
	ends, err := v.prepareSeq(p)
	if err != nil {
		return nil, err
	}
	return v.seqCrashFreedom(p, ends, opts)
}

func (v *Verifier) seqCrashFreedom(p *click.Pipeline, ends []seqEnd, opts SeqOptions) (rep *InductionReport, err error) {
	rep = &InductionReport{Property: "crash-freedom"}
	ctx := &seqCtx{v: v, p: p, sess: v.getSession(), budget: opts.maxSequences()}
	defer func() {
		rep.Sequences = ctx.explored
		v.putSession(ctx.sess)
	}()
	// Registered after the session-return defer, so containment resets the
	// (possibly poisoned) session before it re-enters the pool.
	defer v.capturePanic("crash-freedom induction", ctx.sess, &err)
	maxK := opts.maxK()
	var cti *MultiWitness
	for k := 1; k <= maxK; k++ {
		v.noteInductionDepth(k)
		// Base: no crash within k packets of boot state. Positions < k
		// were discharged by the earlier iterations, so only k = 1 must
		// look at every position; deeper rounds check exactly position k.
		w, err := ctx.findCrashSeq(ends, newSeqRoot(p, symbex.InitDefault), k, k == 1)
		if err != nil {
			return nil, err
		}
		if w != nil {
			w.Detail = fmt.Sprintf("crash freedom refuted by a %d-packet sequence from boot state", len(w.Packets))
			rep.K, rep.Refuted, rep.Witness = k, true, w
			v.countInduction(false)
			return rep, nil
		}
		// Step: k non-crashing packets from an arbitrary state, then a
		// crash at EXACTLY packet k+1 — the non-crashing prefix is the
		// induction hypothesis, so the crash may not come earlier (that
		// would re-find the weaker k-1 counterexample and the deeper
		// hypothesis would never help). Unsatisfiable closes the proof.
		w, err = ctx.findCrashSeq(ends, newSeqRoot(p, symbex.InitSymbolic), k+1, false)
		if err != nil {
			return nil, err
		}
		if w == nil {
			rep.Proved, rep.K = true, k
			v.countInduction(true)
			return rep, nil
		}
		if cti == nil {
			w.Detail = fmt.Sprintf("counterexample to %d-induction: %d packets from the seeded state end in a crash",
				k, len(w.Packets))
			cti = w
		}
	}
	rep.K, rep.CTI, rep.Witness = maxK, true, cti
	return rep, nil
}

// findCrashSeq searches for a feasible sequence of at most depth steps
// built from non-crashing prefixes plus one crashing step, returning
// its witness or nil. With crashAnywhere the crash may occur at any
// position (the base case: any crash from boot state refutes); without
// it the crash must land exactly at position depth (the inductive step:
// the depth-1 non-crashing prefix is the induction hypothesis).
func (c *seqCtx) findCrashSeq(ends []seqEnd, pre *seqPrefix, depth int, crashAnywhere bool) (*MultiWitness, error) {
	t := len(pre.steps)
	final := t == depth-1
	for i := range ends {
		se := &ends[i]
		if se.end.disp == ir.Crashed {
			if !crashAnywhere && !final {
				continue
			}
			got, err := c.extend(pre, se)
			if err != nil {
				return nil, err
			}
			if got != nil {
				return c.v.seqWitness(c.p, got)
			}
			continue
		}
		if final {
			continue
		}
		got, err := c.extend(pre, se)
		if err != nil {
			return nil, err
		}
		if got == nil {
			continue
		}
		w, err := c.findCrashSeq(ends, got, depth, crashAnywhere)
		if err != nil || w != nil {
			return w, err
		}
	}
	return nil, nil
}

// SeqCrashBounded is the unrolling baseline: it explores EVERY feasible
// packet sequence of up to depth packets from boot state, reporting a
// crash if one is reachable. Its cost grows with the sequence space
// (the S1 experiment measures exactly that); SeqCrashFreedom's
// induction replaces it with a depth-independent proof.
func (v *Verifier) SeqCrashBounded(p *click.Pipeline, depth int, opts SeqOptions) (*BoundedSeqReport, error) {
	ends, err := v.prepareSeq(p)
	if err != nil {
		return nil, err
	}
	ctx := &seqCtx{v: v, p: p, sess: v.getSession(), budget: opts.maxSequences()}
	defer v.putSession(ctx.sess)
	rep := &BoundedSeqReport{Depth: depth}
	var walk func(pre *seqPrefix) error
	walk = func(pre *seqPrefix) error {
		t := len(pre.steps)
		if t == depth {
			rep.Sequences++
			return nil
		}
		for i := range ends {
			se := &ends[i]
			got, err := ctx.extend(pre, se)
			if err != nil {
				return err
			}
			if got == nil {
				continue
			}
			if se.end.disp == ir.Crashed {
				rep.Sequences++
				if !rep.Refuted {
					w, err := v.seqWitness(p, got)
					if err != nil {
						return err
					}
					w.Detail = fmt.Sprintf("crash reached by a %d-packet sequence from boot state", len(w.Packets))
					rep.Refuted, rep.Witness = true, w
				}
				continue
			}
			if err := walk(got); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(newSeqRoot(p, symbex.InitDefault)); err != nil {
		return nil, err
	}
	if rep.Refuted {
		v.countSeqRefuted()
	}
	return rep, nil
}

// ---- state invariants by k-induction ----

// StateView exposes the threaded symbolic state to an invariant
// predicate: Read returns the value the instance-qualified store
// ("inst.store") holds for key at the step boundary the view is
// anchored to.
type StateView struct {
	store *symbex.SeqState
	at    symbex.Mark
}

// Read returns store[key] at the view's step boundary.
func (sv *StateView) Read(store string, key *expr.Expr) *expr.Expr {
	return sv.store.ReadAt(sv.at, store, key)
}

// StateInvariant is a predicate over the private state of a pipeline,
// to be proved preserved by every packet: "the token count never
// exceeds the bucket capacity", "the flow table only holds saturating
// counts". Pred builds the 1-bit obligation from a view of the state.
type StateInvariant struct {
	Name string
	Pred func(sv *StateView) *expr.Expr
}

// ProveInvariant proves inv holds after every packet of every sequence,
// of any length, by k-induction: the base case checks it after each of
// the first MaxK packets from boot state; the inductive step assumes it
// at k consecutive step boundaries of an arbitrary state and shows
// packet k+1 preserves it. Crashing paths terminate a sequence and are
// not extended (crash reachability is SeqCrashFreedom's property).
func (v *Verifier) ProveInvariant(p *click.Pipeline, inv StateInvariant, opts SeqOptions) (*InductionReport, error) {
	ends, err := v.prepareSeq(p)
	if err != nil {
		return nil, err
	}
	return v.proveInvariant(p, ends, inv, opts)
}

func (v *Verifier) proveInvariant(p *click.Pipeline, ends []seqEnd, inv StateInvariant, opts SeqOptions) (rep *InductionReport, err error) {
	rep = &InductionReport{Property: inv.Name}
	ctx := &seqCtx{v: v, p: p, sess: v.getSession(), budget: opts.maxSequences()}
	defer func() {
		rep.Sequences = ctx.explored
		v.putSession(ctx.sess)
	}()
	defer v.capturePanic(fmt.Sprintf("induction for invariant %s", inv.Name), ctx.sess, &err)
	maxK := opts.maxK()
	var cti *MultiWitness
	for k := 1; k <= maxK; k++ {
		v.noteInductionDepth(k)
		// Base: boundaries < k were discharged by earlier iterations, so
		// only k = 1 checks every boundary (including boot state itself).
		w, err := ctx.findInvariantBreak(ends, inv, newSeqRoot(p, symbex.InitDefault), k, false, k == 1)
		if err != nil {
			return nil, err
		}
		if w != nil {
			w.Detail = fmt.Sprintf("invariant %s refuted after a %d-packet sequence from boot state",
				inv.Name, len(w.Packets))
			rep.K, rep.Refuted, rep.Witness = k, true, w
			v.countInduction(false)
			return rep, nil
		}
		w, err = ctx.findInvariantBreak(ends, inv, newSeqRoot(p, symbex.InitSymbolic), k, true, false)
		if err != nil {
			return nil, err
		}
		if w == nil {
			rep.Proved, rep.K = true, k
			v.countInduction(true)
			return rep, nil
		}
		if cti == nil {
			w.Detail = fmt.Sprintf("counterexample to %d-induction for invariant %s", k, inv.Name)
			cti = w
		}
	}
	rep.K, rep.CTI, rep.Witness = maxK, true, cti
	return rep, nil
}

// findInvariantBreak searches for a sequence of at most depth
// non-crashing steps after which ¬inv is satisfiable. With hypothesis
// set (the inductive step), inv is assumed at every earlier step
// boundary including the initial state. With checkEvery the invariant
// is checked at every boundary from the initial state on; without it
// only full-depth sequences are checked (the deeper base-case rounds,
// whose earlier boundaries previous rounds discharged).
func (c *seqCtx) findInvariantBreak(ends []seqEnd, inv StateInvariant, pre *seqPrefix, depth int, hypothesis, checkEvery bool) (*MultiWitness, error) {
	t := len(pre.steps)
	if checkEvery || t == depth {
		// Check the invariant at this boundary (in the base case that
		// includes t = 0, the boot state itself).
		bad := expr.Not(inv.Pred(&StateView{store: pre.store, at: pre.store.Mark()}))
		var assume []*expr.Expr
		if hypothesis {
			assume = append(assume, inv.Pred(&StateView{store: pre.store, at: symbex.Mark{}}))
			for _, st := range pre.steps[:t-1] {
				assume = append(assume, inv.Pred(&StateView{store: pre.store, at: st.mark}))
			}
		}
		cons := make([]*expr.Expr, 0, len(pre.conds)+len(pre.store.Conds())+len(assume)+1)
		cons = append(cons, pre.conds...)
		cons = append(cons, pre.store.Conds()...)
		cons = append(cons, assume...)
		cons = append(cons, bad)
		c.v.solverQueries.Add(1)
		sp, started := c.v.tel.beginSolve(c.sess, "induction", "")
		r, m := c.sess.Check(cons)
		c.v.tel.recordSolve(c.sess, "induction", "invariant-check", started, sp)
		if r != smt.Unsat {
			broken := &seqPrefix{steps: pre.steps, conds: cons, store: pre.store, model: m}
			return c.v.seqWitness(c.p, broken)
		}
	}
	if t == depth {
		return nil, nil
	}
	for i := range ends {
		se := &ends[i]
		if se.end.disp == ir.Crashed {
			continue
		}
		got, err := c.extend(pre, se)
		if err != nil {
			return nil, err
		}
		if got == nil {
			continue
		}
		w, err := c.findInvariantBreak(ends, inv, got, depth, hypothesis, checkEvery)
		if err != nil || w != nil {
			return w, err
		}
	}
	return nil, nil
}

func (v *Verifier) noteInductionDepth(k int) {
	v.mu.Lock()
	if k > v.stats.InductionDepth {
		v.stats.InductionDepth = k
	}
	v.mu.Unlock()
}

// countSeqRefuted counts bounded-exploration refutations (SeqSpec
// violations, bounded crash searches) — deliberately NOT the induction
// counters, so /stats induction_refuted reconciles with the verdicts'
// induction[] lists.
func (v *Verifier) countSeqRefuted() {
	v.mu.Lock()
	v.stats.SeqSpecRefuted++
	v.mu.Unlock()
}

func (v *Verifier) countInduction(proved bool) {
	v.mu.Lock()
	if proved {
		v.stats.InductionProved++
	} else {
		v.stats.InductionRefuted++
	}
	v.mu.Unlock()
}

// ---- sequence contracts ----

// SeqSpec is a declarative contract over a packet SEQUENCE, the
// multi-packet analogue of FuncSpec: Post is consulted once per
// feasible sequence of Steps packets (from boot state) and returns the
// proof obligation relating the steps' inputs, outputs, and state — or
// nil when the sequence shape carries no obligation. NAT mapping
// stability ("the same flow keeps its translation") is the canonical
// example: it is a relation between packets i and j, inexpressible as
// any single-packet property.
type SeqSpec struct {
	Name string
	// Steps is the sequence length to explore.
	Steps int
	// Post builds the obligation for one terminal sequence (nil = none).
	Post func(si *SeqInfo) *expr.Expr
	// AllowCrash tolerates sequences that crash the pipeline; by default
	// a realizable crashing sequence violates the contract.
	AllowCrash bool
}

// SeqInfo exposes one explored sequence to a SeqSpec postcondition.
type SeqInfo struct {
	p   *click.Pipeline
	pre *seqPrefix
}

// Steps returns the number of packets in the sequence.
func (si *SeqInfo) Steps() int { return len(si.pre.steps) }

// Disposition returns how step t's packet left the pipeline.
func (si *SeqInfo) Disposition(t int) ir.Disposition { return si.pre.steps[t].end.disp }

// Emitted reports whether step t's packet left at an egress.
func (si *SeqInfo) Emitted(t int) bool { return si.pre.steps[t].end.disp == ir.Emitted }

// EgressElem returns the instance name step t's packet exited from
// ("" unless emitted).
func (si *SeqInfo) EgressElem(t int) string {
	end := si.pre.steps[t].end
	if end.disp != ir.Emitted || len(end.state.elems) == 0 {
		return ""
	}
	return si.p.Elements[end.state.elems[len(end.state.elems)-1]].Name()
}

// EgressPort returns the output port step t's packet left through (-1
// unless emitted).
func (si *SeqInfo) EgressPort(t int) int {
	end := si.pre.steps[t].end
	if end.disp != ir.Emitted || len(end.state.ports) == 0 {
		return -1
	}
	return end.state.ports[len(end.state.ports)-1]
}

// Visited reports whether step t's packet traversed the named element.
func (si *SeqInfo) Visited(t int, inst string) bool {
	for _, e := range si.pre.steps[t].end.state.elems {
		if si.p.Elements[e].Name() == inst {
			return true
		}
	}
	return false
}

// Len returns step t's symbolic packet length.
func (si *SeqInfo) Len(t int) *expr.Expr {
	return expr.Var(symbex.SeqScope(t)+symbex.PktLenVar, 32)
}

// In reads n bytes of step t's INPUT packet at concrete offset off,
// big-endian.
func (si *SeqInfo) In(t int, off uint64, n int) *expr.Expr {
	return expr.SelectWide(expr.BaseArray(symbex.SeqScope(t)+symbex.PktArrayName),
		expr.Const(32, off), n)
}

// Out reads n bytes of step t's OUTPUT packet — as the pipeline left it
// — at concrete offset off, big-endian.
func (si *SeqInfo) Out(t int, off uint64, n int) *expr.Expr {
	return expr.SelectWide(si.pre.steps[t].pkt, expr.Const(32, off), n)
}

// StateAfter returns the value the instance-qualified store holds for
// key after step t completed.
func (si *SeqInfo) StateAfter(t int, store string, key *expr.Expr) *expr.Expr {
	return si.pre.store.ReadAt(si.pre.steps[t].mark, store, key)
}

// SeqReport is the outcome of checking one SeqSpec.
type SeqReport struct {
	Spec     string
	Steps    int
	Verified bool
	// Sequences counts feasible terminal sequences; Obligations those
	// whose postcondition reached the solver; Proved those discharged;
	// Trivial those that folded to true syntactically (from boot state
	// the threaded state is often concrete, so folding IS the proof).
	Sequences   int
	Obligations int
	Proved      int
	Trivial     int
	// Unresolved counts obligations left undecided (solver budget,
	// contained panics, watchdog interrupts); they block Verified.
	Unresolved int
	// UnresolvedCauses carries one line per unresolved obligation, sorted.
	UnresolvedCauses []string
	Witnesses        []*MultiWitness
}

// VerifySeq checks a sequence contract over every feasible sequence of
// spec.Steps packets from boot state. State threading is exact here
// (unlike the single-packet walk), so a reported witness is a real
// multi-packet trace — ReplaySeq reproduces it on the dataplane.
func (v *Verifier) VerifySeq(p *click.Pipeline, spec SeqSpec) (*SeqReport, error) {
	ends, err := v.prepareSeq(p)
	if err != nil {
		return nil, err
	}
	return v.verifySeq(p, ends, spec)
}

func (v *Verifier) verifySeq(p *click.Pipeline, ends []seqEnd, spec SeqSpec) (*SeqReport, error) {
	if spec.Steps <= 0 {
		return nil, fmt.Errorf("verify: sequence spec %s: Steps must be positive", spec.Name)
	}
	rep := &SeqReport{Spec: spec.Name, Steps: spec.Steps, Verified: true}
	ctx := &seqCtx{v: v, p: p, sess: v.getSession(), budget: DefaultSeqMaxSequences}
	defer v.putSession(ctx.sess)
	var walk func(pre *seqPrefix) error
	check := func(pre *seqPrefix, crashed bool) error {
		rep.Sequences++
		si := &SeqInfo{p: p, pre: pre}
		if crashed && !spec.AllowCrash {
			w, err := v.seqWitness(p, pre)
			if err != nil {
				return err
			}
			w.Detail = fmt.Sprintf("spec %s: sequence crashes at packet %d", spec.Name, len(pre.steps))
			rep.Verified = false
			rep.Witnesses = append(rep.Witnesses, w)
			return nil
		}
		if spec.Post == nil {
			return nil
		}
		post := spec.Post(si)
		if post == nil {
			return nil
		}
		if post.IsTrue() {
			rep.Trivial++
			return nil
		}
		rep.Obligations++
		cons := make([]*expr.Expr, 0, len(pre.conds)+len(pre.store.Conds())+1)
		cons = append(cons, pre.conds...)
		cons = append(cons, pre.store.Conds()...)
		cons = append(cons, expr.Not(post))
		v.solverQueries.Add(1)
		sp, started := v.tel.beginSolve(ctx.sess, "seq-spec", "")
		r, m := ctx.sess.Check(cons)
		v.tel.recordSolve(ctx.sess, "seq-spec", "seq-spec:"+spec.Name, started, sp)
		if r == smt.Unsat {
			rep.Proved++
			return nil
		}
		if r == smt.Unknown {
			// Undecided is neither proved nor violated: report it, never
			// guess (the solver-budget contract, DESIGN.md §9).
			rep.Unresolved++
			rep.Verified = false
			rep.UnresolvedCauses = append(rep.UnresolvedCauses,
				fmt.Sprintf("spec %s: obligation on a %d-packet sequence unresolved within solver budget", spec.Name, len(pre.steps)))
			return nil
		}
		broken := &seqPrefix{steps: pre.steps, conds: cons, store: pre.store, model: m}
		w, err := v.seqWitness(p, broken)
		if err != nil {
			return err
		}
		w.Detail = fmt.Sprintf("spec %s: postcondition violated by a %d-packet sequence", spec.Name, len(pre.steps))
		rep.Verified = false
		rep.Witnesses = append(rep.Witnesses, w)
		return nil
	}
	walk = func(pre *seqPrefix) error {
		if len(pre.steps) == spec.Steps {
			return check(pre, false)
		}
		for i := range ends {
			se := &ends[i]
			got, err := ctx.extend(pre, se)
			if err != nil {
				return err
			}
			if got == nil {
				continue
			}
			if se.end.disp == ir.Crashed {
				if err := check(got, true); err != nil {
					return err
				}
				continue
			}
			if err := walk(got); err != nil {
				return err
			}
		}
		return nil
	}
	err := func() (err error) {
		defer v.capturePanic(fmt.Sprintf("sequence walk for spec %s", spec.Name), ctx.sess, &err)
		return walk(newSeqRoot(p, symbex.InitDefault))
	}()
	if errors.Is(err, errUnresolved) {
		rep.Unresolved++
		rep.Verified = false
		rep.UnresolvedCauses = append(rep.UnresolvedCauses, unresolvedCause(err))
		err = nil
	}
	if err != nil {
		return nil, err
	}
	sort.Strings(rep.UnresolvedCauses)
	if !rep.Verified {
		v.countSeqRefuted()
	}
	return rep, nil
}

// ---- witnesses ----

// seqWitness materializes a multi-packet witness from a feasible
// sequence prefix. The prefix's cached model (from the feasibility or
// violation query) is validated under evaluation semantics; a mismatch
// is an internal error, never a property verdict.
func (v *Verifier) seqWitness(p *click.Pipeline, pre *seqPrefix) (*MultiWitness, error) {
	m := pre.model
	all := make([]*expr.Expr, 0, len(pre.conds)+len(pre.store.Conds()))
	all = append(all, pre.conds...)
	all = append(all, pre.store.Conds()...)
	if m == nil {
		v.visitMu.Lock()
		v.solverQueries.Add(1)
		sp, started := v.tel.beginSolve(v.rootSession, "witness", "")
		r, got := v.rootSession.Check(all)
		v.tel.recordSolve(v.rootSession, "witness", "seq-witness", started, sp)
		v.visitMu.Unlock()
		if r == smt.Unknown {
			return nil, fmt.Errorf("%w: sequence witness query", errUnresolved)
		}
		if r == smt.Unsat || got == nil {
			return nil, fmt.Errorf("verify: cannot produce witness for feasible sequence")
		}
		m = got
	}
	for _, c := range all {
		if !expr.Eval(c, m).IsTrue() {
			return nil, fmt.Errorf("verify: internal error: sequence witness violates constraint %s", c)
		}
	}
	w := &MultiWitness{}
	for t, st := range pre.steps {
		scope := symbex.SeqScope(t)
		n := uint64(0)
		if lv, ok := m.Vars[scope+symbex.PktLenVar]; ok {
			n = lv.Int()
		}
		if n < v.opts.MinLen {
			n = v.opts.MinLen
		}
		if n > v.opts.MaxLen {
			n = v.opts.MaxLen
		}
		pkt := make([]byte, n)
		copy(pkt, m.Arrays[scope+symbex.PktArrayName])
		w.Packets = append(w.Packets, pkt)
		w.Paths = append(w.Paths, pathName(p, st.end.state))
		w.Dispositions = append(w.Dispositions, st.end.disp)
		var out []byte
		if st.end.disp == ir.Emitted {
			out = make([]byte, n)
			for i := range out {
				out[i] = byte(expr.Eval(expr.Select(st.pkt, expr.Const(32, uint64(i))), m).Int())
			}
		}
		w.Outputs = append(w.Outputs, out)
	}
	for _, init := range pre.store.InitReads() {
		dot := strings.Index(init.Store, ".")
		inst, store := init.Store[:dot], init.Store[dot+1:]
		key := expr.Eval(init.Key, m).Int()
		val := expr.Eval(init.Var, m).Int()
		if w.InitState == nil {
			w.InitState = map[string]map[string]map[uint64]uint64{}
		}
		if w.InitState[inst] == nil {
			w.InitState[inst] = map[string]map[uint64]uint64{}
		}
		if w.InitState[inst][store] == nil {
			w.InitState[inst][store] = map[uint64]uint64{}
		}
		w.InitState[inst][store][key] = val
	}
	return w, nil
}

// FormatMultiWitness renders a multi-packet witness for CLI reports:
// the seeded state (if any), then each packet via the single-packet
// FormatWitness dump.
func FormatMultiWitness(w *MultiWitness) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  sequence: %d packet(s) — %s\n", len(w.Packets), w.Detail)
	if len(w.InitState) > 0 {
		b.WriteString("  seeded state (counterexample to induction starts here):\n")
		var insts []string
		for inst := range w.InitState {
			insts = append(insts, inst)
		}
		sort.Strings(insts)
		for _, inst := range insts {
			var stores []string
			for s := range w.InitState[inst] {
				stores = append(stores, s)
			}
			sort.Strings(stores)
			for _, s := range stores {
				kv := w.InitState[inst][s]
				keys := make([]uint64, 0, len(kv))
				for k := range kv {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, k := range keys {
					fmt.Fprintf(&b, "    %s.%s[%#x] = %#x\n", inst, s, k, kv[k])
				}
			}
		}
	}
	for i, pkt := range w.Packets {
		b.WriteString(FormatWitness(Witness{
			Packet: pkt,
			Output: w.Outputs[i],
			Path:   w.Paths[i],
			Detail: fmt.Sprintf("packet %d/%d: %s", i+1, len(w.Packets), w.Dispositions[i]),
		}))
	}
	return b.String()
}

// ReplaySeq replays a multi-packet witness on fresh concrete dataplane
// runners — the oracle check that the symbolic sequence is real: the
// seeded state is installed, every packet must reproduce its recorded
// disposition, and every emitted step's output must match byte for
// byte. The replay runs on BOTH execution tiers — the tree-walking
// interpreter and the compiled bytecode VM — and additionally demands
// the tiers agree with each other on output bytes and exact step
// counts, so a witness certifies the same behavior no matter which
// tier the operator deploys.
func ReplaySeq(p *click.Pipeline, w *MultiWitness) error {
	interp := dataplane.NewRunner(p)
	comp, err := dataplane.NewCompiled(p)
	if err != nil {
		return fmt.Errorf("verify: replay: compile tier: %w", err)
	}
	for inst, stores := range w.InitState {
		for store, kv := range stores {
			for k, val := range kv {
				if err := interp.SeedState(inst, store, k, val); err != nil {
					return err
				}
				if err := comp.SeedState(inst, store, k, val); err != nil {
					return err
				}
			}
		}
	}
	for i, pkt := range w.Packets {
		ibuf := packet.NewBuffer(append([]byte{}, pkt...))
		cbuf := packet.NewBuffer(append([]byte{}, pkt...))
		ires := interp.Process(ibuf)
		cres := comp.Process(cbuf)
		if ires.Disposition != w.Dispositions[i] {
			return fmt.Errorf("verify: replay diverged at packet %d: got %s, witness says %s",
				i+1, ires.Disposition, w.Dispositions[i])
		}
		if w.Outputs[i] != nil && !bytes.Equal(ibuf.Data, w.Outputs[i]) {
			return fmt.Errorf("verify: replay diverged at packet %d: output differs from witness", i+1)
		}
		if cres.Disposition != ires.Disposition {
			return fmt.Errorf("verify: tiers diverged at packet %d: interpreter %s, compiled %s",
				i+1, ires.Disposition, cres.Disposition)
		}
		if !bytes.Equal(ibuf.Data, cbuf.Data) {
			return fmt.Errorf("verify: tiers diverged at packet %d: output bytes differ", i+1)
		}
		if cres.Steps != ires.Steps {
			return fmt.Errorf("verify: tiers diverged at packet %d: interpreter %d steps, compiled %d",
				i+1, ires.Steps, cres.Steps)
		}
	}
	return nil
}
