package verify

import (
	"testing"

	"vsd/internal/packet"
)

// TestSolverBudgetReportsUnresolved pins the budget contract end to
// end: with an absurdly small per-obligation conflict budget on a
// pipeline whose obligations need real search (the IP-options loop),
// the verifier must degrade to "unresolved" — Verified=false with
// Unresolved>0 — and must never fabricate a verdict or an error. A
// trivially crashing pipeline under the same budget must still produce
// a genuine witness (small obligations fit any budget, and witnesses
// are cross-checked under evaluation semantics before being reported).
func TestSolverBudgetReportsUnresolved(t *testing.T) {
	p := parsePipeline(t, `
		src :: InfiniteSource;
		src -> Strip(14) -> chk :: CheckIPHeader(NOCHECKSUM);
		chk[0] -> opt :: IPOptions; chk[1] -> Discard;
		opt[1] -> Discard;`)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 40, SolverMaxConflicts: 1})
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified {
		t.Fatal("a starved solver must not certify the pipeline")
	}
	if rep.Unresolved == 0 {
		t.Fatal("starved obligations must surface as Unresolved")
	}
	if v.Stats().Solver.Unknowns == 0 {
		t.Fatal("Unresolved reported but no SAT search ended Unknown")
	}

	crash := parsePipeline(t, `
		src :: InfiniteSource;
		e2 :: ToyE2;
		sink :: Discard;
		src -> e2 -> sink;
	`)
	vc := New(Options{MinLen: packet.MinFrame, MaxLen: 64, SolverMaxConflicts: 1})
	crep, err := vc.CrashFreedom(crash)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Verified || len(crep.Witnesses) == 0 {
		t.Fatalf("budgeted verifier lost the easy witness: verified=%v witnesses=%d",
			crep.Verified, len(crep.Witnesses))
	}
}

// TestSolverBudgetGenerousMatchesUnbudgeted asserts that a budget large
// enough for the instance changes nothing: same verdict, no unresolved
// obligations.
func TestSolverBudgetGenerousMatchesUnbudgeted(t *testing.T) {
	p := parsePipeline(t, `
		src :: InfiniteSource;
		e1 :: ToyE1;
		e2 :: ToyE2;
		sink :: Discard;
		src -> e1 -> e2 -> sink;
	`)
	v := New(Options{MinLen: packet.MinFrame, MaxLen: 64, SolverMaxConflicts: 100000})
	rep, err := v.CrashFreedom(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified || rep.Unresolved != 0 {
		t.Fatalf("generous budget changed the verdict: verified=%v unresolved=%d",
			rep.Verified, rep.Unresolved)
	}
}
